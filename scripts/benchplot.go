// Command benchplot renders the perf trajectory accumulated by
// `twbench -json`: one BENCH_<date>.json lands per PR, and this tool
// turns the pile into a per-benchmark text table plus an SVG line chart
// (log-scale ns/op over time), so a hot-path regression shows up as a
// kink instead of hiding inside a single run's noise.
//
// Usage:
//
//	go run ./scripts -dir . -out bench_trajectory.svg
//	make benchplot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type benchReport struct {
	Date       string        `json:"date"`
	Benchmarks []benchResult `json:"benchmarks"`
}

var (
	flagDir = flag.String("dir", ".", "directory holding BENCH_*.json reports")
	flagOut = flag.String("out", "bench_trajectory.svg", "output SVG path (empty = table only)")
)

func main() {
	flag.Parse()
	reports, err := loadReports(*flagDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no BENCH_*.json under %s\n", *flagDir)
		os.Exit(1)
	}
	names, series := buildSeries(reports)
	printTable(reports, names, series)
	if *flagOut == "" {
		return
	}
	svg := renderSVG(reports, names, series)
	if err := os.WriteFile(*flagOut, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d reports, %d benchmarks)\n", *flagOut, len(reports), len(names))
}

func loadReports(dir string) ([]benchReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var out []benchReport
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if r.Date == "" {
			// Fall back to the filename's date so hand-renamed reports
			// still sort.
			r.Date = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Date < out[j].Date })
	return out, nil
}

// buildSeries pivots the reports into one ns/op series per benchmark
// name; a benchmark absent from a report (added in a later PR) holds
// zero there and the table/plot skip the gap.
func buildSeries(reports []benchReport) (names []string, series map[string][]int64) {
	series = make(map[string][]int64)
	for ri, r := range reports {
		for _, b := range r.Benchmarks {
			s, ok := series[b.Name]
			if !ok {
				s = make([]int64, len(reports))
				series[b.Name] = s
				names = append(names, b.Name)
			}
			s[ri] = b.NsPerOp
		}
	}
	sort.Strings(names)
	return names, series
}

func printTable(reports []benchReport, names []string, series map[string][]int64) {
	fmt.Printf("%-24s", "benchmark (ns/op)")
	for _, r := range reports {
		fmt.Printf(" %12s", r.Date)
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-24s", name)
		for _, v := range series[name] {
			if v == 0 {
				fmt.Printf(" %12s", "-")
			} else {
				fmt.Printf(" %12d", v)
			}
		}
		fmt.Println()
	}
}

// palette cycles through visually-distinct line colors.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// renderSVG draws each benchmark's ns/op over the report dates on a
// log10 y-axis (the series span ~1ns counters to ~1µs dispatches).
func renderSVG(reports []benchReport, names []string, series map[string][]int64) string {
	const (
		w, h                      = 960, 480
		mLeft, mRight, mTop, mBot = 70, 230, 30, 50
	)
	plotW, plotH := w-mLeft-mRight, h-mTop-mBot

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			if v <= 0 {
				continue
			}
			l := math.Log10(float64(v))
			lo, hi = math.Min(lo, l), math.Max(hi, l)
		}
	}
	lo, hi = math.Floor(lo), math.Ceil(hi)
	if hi <= lo {
		hi = lo + 1
	}
	x := func(i int) float64 {
		if len(reports) == 1 {
			return float64(mLeft + plotW/2)
		}
		return float64(mLeft) + float64(i)/float64(len(reports)-1)*float64(plotW)
	}
	y := func(ns int64) float64 {
		return float64(mTop) + (1-(math.Log10(float64(ns))-lo)/(hi-lo))*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">twbench micro-benchmark trajectory (ns/op, log scale)</text>`+"\n", mLeft)

	// Gridlines and y labels at each decade.
	for d := lo; d <= hi; d++ {
		yy := y(int64(math.Pow(10, d)))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mLeft, yy, w-mRight, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%g</text>`+"\n", mLeft-8, yy+4, math.Pow(10, d))
	}
	// X labels: report dates.
	for i, r := range reports {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", x(i), h-mBot+20, r.Date)
	}

	for ni, name := range names {
		color := palette[ni%len(palette)]
		var pts []string
		for i, v := range series[name] {
			if v <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i, v := range series[name] {
			if v > 0 {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", x(i), y(v), color)
			}
		}
		// Legend entry.
		ly := mTop + 14*ni
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			w-mRight+10, ly+8, w-mRight+30, ly+8, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", w-mRight+36, ly+12, name)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
