package timewheel

// The benchmark harness regenerates the reproduction's experiment suite
// (DESIGN.md E1–E9) as testing.B benchmarks, one per table/figure, plus
// the ablations DESIGN.md calls out. Protocol benchmarks run on the
// deterministic simulator, so b.N iterations measure simulation work;
// the reported custom metrics (recovery_ms, msgs/cycle, ...) are the
// protocol-level quantities the paper's claims are about.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"timewheel/internal/broadcast"
	"timewheel/internal/check"
	"timewheel/internal/engine"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/scenario"
	"timewheel/internal/wire"
)

// --- E1: the state machine itself -------------------------------------------

// BenchmarkFSMStep measures the group creator's per-message cost on its
// hottest input: adopting a rotation decision (the failure-free path),
// across group sizes.
func BenchmarkFSMStep(b *testing.B) {
	for _, n := range []int{3, 5, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			params := model.DefaultParams(n)
			env := &benchEnv{now: 1_000_000}
			bc := broadcast.New(model.ProcessID(n-1), params, broadcast.Config{})
			m := member.New(model.ProcessID(n-1), params, member.Config{}, env, bc)
			m.Start()
			var members []model.ProcessID
			for i := 0; i < n; i++ {
				members = append(members, model.ProcessID(i))
			}
			g := model.NewGroup(1, members)
			l := oal.NewList()
			l.AppendMembership(g)
			m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now}, Group: g, OAL: *l, Alive: g.Members})

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.now += 1000
				view := bc.CurrentView()
				m.OnMessage(&wire.Decision{
					Header: wire.Header{From: model.ProcessID(i % (n - 1)), SendTS: env.now},
					Group:  g, OAL: *view, Alive: g.Members,
				})
			}
		})
	}
}

type benchEnv struct{ now model.Time }

func (e *benchEnv) Now() model.Time                       { return e.now }
func (e *benchEnv) Broadcast(wire.Message)                {}
func (e *benchEnv) Unicast(model.ProcessID, wire.Message) {}
func (e *benchEnv) SetTimer(member.TimerID, model.Time)   {}
func (e *benchEnv) CancelTimer(member.TimerID)            {}

// --- E2: failure-free traffic -------------------------------------------------

// BenchmarkFailureFreeTraffic reproduces the zero-membership-message
// claim: msgs/cycle metrics come from a formed group running quietly.
func BenchmarkFailureFreeTraffic(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var member, decision float64
			for i := 0; i < b.N; i++ {
				r := scenario.FailureFree(n, int64(i), 20)
				if r.Failed != "" {
					b.Fatal(r.Failed)
				}
				member += r.Metrics["membership_msgs"]
				decision += r.Metrics["decision_msgs"]
			}
			b.ReportMetric(member/float64(b.N)/20, "membership_msgs/cycle")
			b.ReportMetric(decision/float64(b.N)/20, "decision_msgs/cycle")
		})
	}
}

// BenchmarkHeartbeatBaseline quantifies what a conventional heartbeat
// failure detector would send over the same period (the ablation the
// paper's claim is implicitly against).
func BenchmarkHeartbeatBaseline(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			params := model.DefaultParams(n)
			var total float64
			for i := 0; i < b.N; i++ {
				total += scenario.HeartbeatBaseline(n, 20, params)
			}
			b.ReportMetric(total/float64(b.N)/20, "heartbeat_msgs/cycle")
		})
	}
}

// --- E3: single-failure recovery ----------------------------------------------

func BenchmarkSingleFailureRecovery(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var rec float64
			for i := 0; i < b.N; i++ {
				r := scenario.SingleCrash(n, int64(i))
				if r.Failed != "" {
					b.Fatal(r.Failed)
				}
				rec += r.Metrics["recovery_us"]
			}
			b.ReportMetric(rec/float64(b.N)/1000, "recovery_ms")
		})
	}
}

// BenchmarkAlwaysReconfigureAblation disables the single-failure fast
// path, forcing the time-slotted election for every failure — the
// design alternative the paper's optimisation is measured against.
func BenchmarkAlwaysReconfigureAblation(b *testing.B) {
	for _, n := range []int{5, 8} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var rec float64
			ok := 0
			for i := 0; i < b.N; i++ {
				c := node.NewCluster(node.Options{
					Seed: int64(i), Params: model.DefaultParams(n),
					PerfectClocks: true, DisableFastPath: true,
				})
				c.Start()
				c.Run(model.Duration(6) * c.Params.CycleLen())
				victim := model.ProcessID(1)
				c.Crash(victim)
				crashAt := c.Sim.Now()
				c.Run(model.Duration(10) * c.Params.CycleLen())
				last := c.Node(0).Views
				if len(last) > 0 && !last[len(last)-1].Group.Contains(victim) {
					rec += float64(last[len(last)-1].At.Sub(crashAt))
					ok++
				}
			}
			if ok > 0 {
				b.ReportMetric(rec/float64(ok)/1000, "recovery_ms")
			}
		})
	}
}

// --- E4: false suspicion -------------------------------------------------------

func BenchmarkFalseSuspicion(b *testing.B) {
	var masked, ws float64
	for i := 0; i < b.N; i++ {
		r := scenario.FalseSuspicion(5, int64(i))
		if r.Failed != "" {
			b.Fatal(r.Failed)
		}
		masked += r.Metrics["masked"]
		ws += r.Metrics["wrong_suspicions"]
	}
	b.ReportMetric(masked/float64(b.N), "masked_fraction")
	b.ReportMetric(ws/float64(b.N), "wrong_suspicions")
}

// --- E5: multi-failure recovery -----------------------------------------------

func BenchmarkMultiFailureRecovery(b *testing.B) {
	for _, cfg := range []struct{ n, f int }{{8, 2}, {8, 3}, {12, 4}} {
		b.Run(fmt.Sprintf("N=%d/f=%d", cfg.n, cfg.f), func(b *testing.B) {
			var cyc float64
			for i := 0; i < b.N; i++ {
				r := scenario.MultiCrash(cfg.n, cfg.f, int64(i))
				if r.Failed != "" {
					b.Fatal(r.Failed)
				}
				cyc += r.Metrics["recovery_cycles"]
			}
			b.ReportMetric(cyc/float64(b.N), "recovery_cycles")
		})
	}
}

// --- E6: formation and rejoin ---------------------------------------------------

func BenchmarkGroupFormation(b *testing.B) {
	for _, n := range []int{3, 5, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var form float64
			for i := 0; i < b.N; i++ {
				r := scenario.FailureFree(n, int64(i), 1)
				if r.Failed != "" {
					b.Fatal(r.Failed)
				}
				form += r.Metrics["formation_us"]
			}
			b.ReportMetric(form/float64(b.N)/1000, "formation_ms")
		})
	}
}

func BenchmarkRejoin(b *testing.B) {
	var rej float64
	for i := 0; i < b.N; i++ {
		r := scenario.Rejoin(5, int64(i))
		if r.Failed != "" {
			b.Fatal(r.Failed)
		}
		rej += r.Metrics["rejoin_us"]
	}
	b.ReportMetric(rej/float64(b.N)/1000, "rejoin_ms")
}

// --- E7: engines (paper §5) ------------------------------------------------------

func benchEngine(b *testing.B, mk func(engine.Handler) engine.Engine) {
	e := mk(func(engine.Event) {})
	defer e.Stop()
	b.ResetTimer()
	accepted := uint64(0)
	for i := 0; i < b.N; i++ {
		for !e.Post(engine.Event{Type: engine.EventType(i % engine.NumEventTypes)}) {
			// Queue full: let the loop drain rather than measuring drops.
			time.Sleep(time.Microsecond)
		}
		accepted++
	}
	for e.Handled() < accepted {
		time.Sleep(10 * time.Microsecond)
	}
}

func BenchmarkEngineEventLoop(b *testing.B) {
	benchEngine(b, func(h engine.Handler) engine.Engine { return engine.NewEventLoop(h, 4096) })
}

func BenchmarkEngineThreaded(b *testing.B) {
	benchEngine(b, func(h engine.Handler) engine.Engine { return engine.NewThreaded(h, 512) })
}

// --- E8: broadcast semantics across view changes ---------------------------------

func BenchmarkViewChangePurge(b *testing.B) {
	sems := map[string]oal.Semantics{
		"unordered-weak": {Order: oal.Unordered, Atomicity: oal.WeakAtomicity},
		"total-strong":   {Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		"total-strict":   {Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		"time-strong":    {Order: oal.TimeOrder, Atomicity: oal.StrongAtomicity},
	}
	for name, sem := range sems {
		b.Run(name, func(b *testing.B) {
			var p50 float64
			for i := 0; i < b.N; i++ {
				r := scenario.Workload(5, int64(i), sem, 30)
				if r.Failed != "" {
					b.Fatal(r.Failed)
				}
				p50 += r.Metrics["latency_p50_us"]
			}
			b.ReportMetric(p50/float64(b.N)/1000, "p50_ms")
		})
	}
}

// --- E9: property checking over histories ---------------------------------------

func BenchmarkPropertyCheck(b *testing.B) {
	r := scenario.MultiCrash(8, 2, 1)
	if r.Failed != "" {
		b.Fatal(r.Failed)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := check.All(r.Cluster); !res.OK() {
			b.Fatal(res)
		}
	}
}

// --- Ablations and micro-benchmarks ----------------------------------------------

// BenchmarkDelayDistributionAblation: formation latency under different
// network delay models (constant, uniform, heavy-tail).
func BenchmarkDelayDistributionAblation(b *testing.B) {
	params := model.DefaultParams(5)
	dists := map[string]netsim.DelayFn{
		"constant":   netsim.ConstantDelay(params.Delta / 4),
		"uniform":    netsim.UniformDelay(params.Delta/10, params.Delta/2),
		"heavy-tail": netsim.HeavyTailDelay(params.Delta/10, params.Delta/2, 0.05, 4),
	}
	for name, d := range dists {
		b.Run(name, func(b *testing.B) {
			var form float64
			formed := 0
			for i := 0; i < b.N; i++ {
				c := node.NewCluster(node.Options{
					Seed: int64(i), Params: params, PerfectClocks: true, Delay: d,
				})
				c.Start()
				deadline := model.Duration(8) * c.Params.CycleLen()
				c.Run(deadline)
				ok := true
				for _, nd := range c.Nodes {
					g, have := nd.CurrentGroup()
					if !have || g.Size() != 5 {
						ok = false
					}
				}
				if ok {
					var worst model.Time
					for _, nd := range c.Nodes {
						if len(nd.Views) > 0 && nd.Views[0].At > worst {
							worst = nd.Views[0].At
						}
					}
					form += float64(worst)
					formed++
				}
			}
			if formed > 0 {
				b.ReportMetric(form/float64(formed)/1000, "formation_ms")
			}
			b.ReportMetric(float64(formed)/float64(b.N), "formed_fraction")
		})
	}
}

// BenchmarkDeciderHoldAblation: rotation rate vs the decider batching
// window (trade-off between failure-detection latency and message rate).
func BenchmarkDeciderHoldAblation(b *testing.B) {
	params := model.DefaultParams(5)
	for _, hold := range []model.Duration{params.D / 10, params.D / 4, params.D / 2, params.D * 3 / 4} {
		b.Run(fmt.Sprintf("hold=%v", hold), func(b *testing.B) {
			var perCycle float64
			for i := 0; i < b.N; i++ {
				c := node.NewCluster(node.Options{
					Seed: int64(i), Params: params, PerfectClocks: true, DeciderHold: hold,
				})
				c.Start()
				c.Run(model.Duration(4) * c.Params.CycleLen())
				before := c.Net.Stats().Broadcasts[wire.KindDecision]
				c.Run(model.Duration(10) * c.Params.CycleLen())
				after := c.Net.Stats().Broadcasts[wire.KindDecision]
				perCycle += float64(after-before) / 10
			}
			b.ReportMetric(perCycle/float64(b.N), "decisions/cycle")
		})
	}
}

// BenchmarkWireCodec: encode/decode cost of the heaviest message (a
// decision with a populated oal).
func BenchmarkWireCodec(b *testing.B) {
	l := oal.NewList()
	for i := 0; i < 32; i++ {
		l.AppendUpdate(oal.ProposalID{Proposer: model.ProcessID(i % 5), Seq: uint64(i)},
			oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
			model.Time(i*1000), oal.Ordinal(i/2), oal.AckSet(0x1f))
	}
	dec := &wire.Decision{
		Header: wire.Header{From: 2, SendTS: 123456},
		Group:  model.NewGroup(7, []model.ProcessID{0, 1, 2, 3, 4}),
		OAL:    *l,
		Alive:  []model.ProcessID{0, 1, 2, 3, 4},
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = wire.Encode(dec)
		}
	})
	data := wire.Encode(dec)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOALOps: the ordering-and-acknowledgement list's hot
// operations.
func BenchmarkOALOps(b *testing.B) {
	b.Run("append+ack", func(b *testing.B) {
		l := oal.NewList()
		for i := 0; i < b.N; i++ {
			id := oal.ProposalID{Proposer: model.ProcessID(i % 8), Seq: uint64(i)}
			l.AppendUpdate(id, oal.Semantics{}, model.Time(i), oal.None, 0)
			l.Ack(id, model.ProcessID(i%8))
			if l.Len() > 64 {
				l.TruncateStable(func(*oal.Descriptor) bool { return true })
			}
		}
	})
	b.Run("findOrdinal", func(b *testing.B) {
		l := oal.NewList()
		for i := 0; i < 64; i++ {
			l.AppendUpdate(oal.ProposalID{Proposer: 0, Seq: uint64(i)}, oal.Semantics{}, 0, oal.None, 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if l.FindOrdinal(oal.Ordinal(i%64+1)) == nil {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkEndToEndRealTime: wall-clock latency of a strong total-order
// broadcast on a live three-node in-memory cluster.
func BenchmarkEndToEndRealTime(b *testing.B) {
	hub := NewMemoryHub(HubConfig{MaxDelay: 200 * time.Microsecond, Seed: 5})
	defer hub.Close()
	const n = 3
	delivered := make(chan struct{}, 1024)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		var err error
		id := i
		nodes[i], err = NewNode(Config{
			ID: i, ClusterSize: n, Transport: hub.Transport(i), Params: fastParams(),
			OnDeliver: func(Delivery) {
				if id == 0 {
					delivered <- struct{}{}
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i].Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if v, ok := nodes[0].CurrentView(); ok && len(v.Members) == n {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("no formation")
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := nodes[i%n].Propose([]byte("bench"), TotalOrder, Strong)
			if err == nil {
				break
			}
			if err != ErrNotMember {
				b.Fatal(err)
			}
			// A transient suspicion under benchmark load: wait out the
			// churn and retry.
			time.Sleep(time.Millisecond)
		}
		<-delivered
	}
}

// BenchmarkChaos runs the randomized fault schedule (crashes, recoveries,
// partitions, mixed-semantics proposals) once per iteration, with the
// invariant suite validating each run.
func BenchmarkChaos(b *testing.B) {
	var views float64
	for i := 0; i < b.N; i++ {
		r := scenario.Chaos(scenario.DefaultChaos(5, int64(i)))
		if r.Failed != "" {
			b.Fatal(r.Failed)
		}
		if res := check.All(r.Cluster); !res.OK() {
			b.Fatal(res)
		}
		views += r.Metrics["views_installed_total"]
	}
	b.ReportMetric(views/float64(b.N), "views_installed")
}

// BenchmarkSlotPadAblation varies the slot padding (the slack absorbing
// clock deviation and scheduling delay on top of the model's D+delta
// minimum) and measures formation reliability and latency with drifting
// clocks: too little pad and slot boundaries observed on different
// synchronized clocks stop overlapping.
func BenchmarkSlotPadAblation(b *testing.B) {
	base := model.DefaultParams(5)
	for _, pad := range []model.Duration{0, base.Epsilon, base.Epsilon + base.Sigma + 3*model.Millisecond} {
		b.Run(fmt.Sprintf("pad=%v", pad), func(b *testing.B) {
			params := base
			params.SlotPad = pad
			formedCount := 0
			var latency float64
			for i := 0; i < b.N; i++ {
				c := node.NewCluster(node.Options{
					Seed: int64(i), Params: params,
					PerfectClocks:  false,
					MaxClockOffset: params.Epsilon,
				})
				c.Start()
				c.Run(model.Duration(8) * params.CycleLen())
				ok := true
				var worst model.Time
				for _, nd := range c.Nodes {
					g, have := nd.CurrentGroup()
					if !have || g.Size() != 5 {
						ok = false
						break
					}
					if len(nd.Views) > 0 && nd.Views[0].At > worst {
						worst = nd.Views[0].At
					}
				}
				if ok {
					formedCount++
					latency += float64(worst)
				}
			}
			b.ReportMetric(float64(formedCount)/float64(b.N), "formed_fraction")
			if formedCount > 0 {
				b.ReportMetric(latency/float64(formedCount)/1000, "formation_ms")
			}
		})
	}
}

// BenchmarkClockSyncModes compares the two clock-synchronization
// mechanisms (one-way beacons with the midpoint assumption vs fail-aware
// probe/echo round trips with measured bounds) by the worst pairwise
// deviation they sustain on a running cluster.
func BenchmarkClockSyncModes(b *testing.B) {
	params := model.DefaultParams(5)
	for _, mode := range []struct {
		name string
		rt   bool
	}{{"beacon", false}, {"round-trip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				c := node.NewCluster(node.Options{
					Seed:           int64(i),
					Params:         params,
					PerfectClocks:  false,
					RoundTripSync:  mode.rt,
					MaxClockOffset: params.Epsilon,
					Delay:          netsim.UniformDelay(params.Epsilon/4, params.Epsilon-1),
				})
				c.Start()
				c.Run(model.Duration(4) * params.CycleLen())
				var dev float64
				for k := 0; k < 20; k++ {
					c.Run(params.D)
					var readings []model.Time
					for _, n := range c.Nodes {
						readings = append(readings, n.SyncedNow())
					}
					for x := 0; x < len(readings); x++ {
						for y := x + 1; y < len(readings); y++ {
							d := float64(readings[x].Sub(readings[y]))
							if d < 0 {
								d = -d
							}
							if d > dev {
								dev = d
							}
						}
					}
				}
				worst += dev
			}
			b.ReportMetric(worst/float64(b.N)/1000, "worst_deviation_ms")
		})
	}
}

// BenchmarkMixedChurn is the §4.3 torture workload: all nine semantics
// under repeated membership churn, invariant-checked per iteration.
func BenchmarkMixedChurn(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		r := scenario.MixedChurn(5, int64(i), 2)
		if r.Failed != "" {
			b.Fatal(r.Failed)
		}
		if res := check.All(r.Cluster); !res.OK() {
			b.Fatal(res)
		}
		delivered += r.Metrics["deliveries_total"]
	}
	b.ReportMetric(delivered/float64(b.N), "deliveries")
}
