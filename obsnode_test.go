package timewheel

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The acceptance criteria: /metrics serves valid Prometheus text with
// the protocol's key instrument families, /healthz tracks guard and
// membership state, /debug/events streams the trace ring.
func TestObsEndpoints(t *testing.T) {
	// Ring recording normally starts when the first ObsHandler is
	// created; enable it up front so the formation history (view
	// installs, state changes) is in the ring when we scrape it.
	defer tracer.EnableRing()()

	nodes, _, stop := startCluster(t, 3)
	defer stop()

	srv, err := nodes[0].ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Traffic so latency histograms and counters are non-trivial.
	for i := 0; i < 5; i++ {
		if err := nodes[0].Propose([]byte("x"), TotalOrder, Strong); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// The acceptance-critical families.
	for _, want := range []string{
		"timewheel_engine_queue_depth",
		"timewheel_fsm_transitions_total",
		"timewheel_view_install_latency_seconds_bucket",
		"timewheel_decision_latency_seconds_bucket",
		`timewheel_peer_delay_seconds_bucket{peer="1"`,
		`timewheel_peer_delay_seconds_bucket{peer="2"`,
		"timewheel_guard_trips_total",
		"timewheel_handler_latency_seconds_count",
		"timewheel_member_view_changes_total",
		"timewheel_transport_sends_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Prometheus text format sanity: TYPE lines, cumulative +Inf buckets.
	if !strings.Contains(body, "# TYPE timewheel_peer_delay_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
	if !strings.Contains(body, `le="+Inf"`) {
		t.Error("missing +Inf bucket")
	}
	// The node has handled events, so the handler histogram is live.
	if hs, ok := nodes[0].HistogramStat("timewheel_handler_latency_seconds"); !ok || hs.Count == 0 {
		t.Errorf("handler latency histogram empty: %+v ok=%v", hs, ok)
	}
	// Peer delay (the timeliness-graph edge weights) observed for both peers.
	if hs, ok := nodes[0].HistogramStat("timewheel_peer_delay_seconds"); !ok || hs.Count == 0 {
		t.Errorf("peer delay histogram empty: %+v ok=%v", hs, ok)
	}

	code, body = get("/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", code)
	}
	var jm []map[string]any
	if err := json.Unmarshal([]byte(body), &jm); err != nil {
		t.Fatalf("metrics JSON not parseable: %v", err)
	}
	if len(jm) == 0 {
		t.Fatal("metrics JSON empty")
	}

	// Healthy formed member: 200. Poll briefly — under heavy load (the
	// race detector) a transient wrong suspicion can catch the node
	// mid-rejoin at the moment of a single-shot scrape.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = get("/healthz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz = %d (%s), want 200", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Healthy || !h.InView {
		t.Fatalf("healthz body %s (err %v)", body, err)
	}

	// Trace ring records protocol history (view installs at minimum).
	code, body = get("/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events status %d", code)
	}
	var evs struct {
		Next   uint64       `json:"next"`
		Events []TraceEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range evs.Events {
		seen[ev.Type] = true
	}
	if !seen["view-install"] || !seen["state-change"] {
		t.Errorf("trace ring missing protocol events; saw %v", seen)
	}

	// expvar is wired.
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"timewheel"`) {
		t.Errorf("/debug/vars = %d, timewheel key present=%v",
			code, strings.Contains(body, `"timewheel"`))
	}
}

// A node that has not joined (no view installed) must report unhealthy.
func TestHealthzUnhealthyBeforeJoin(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	n, err := NewNode(Config{ID: 0, ClusterSize: 3, Transport: hub.Transport(0), Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	srv, err := n.ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-join /healthz = %d, want 503", resp.StatusCode)
	}
}

// Health must reflect a tripped guard, and must stay readable while the
// event loop is stalled — the condition it exists to observe.
func TestHealthzGuardTripped(t *testing.T) {
	hub := NewMemoryHub(HubConfig{})
	defer hub.Close()
	n, err := NewNode(Config{
		ID: 0, ClusterSize: 1, Transport: hub.Transport(0), Params: fastParams(),
		Guard: GuardConfig{
			Enabled:       true,
			HandlerBudget: time.Millisecond,
			TripCount:     1,
			Enforce:       false, // observe-only: the trip latches
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := n.CurrentView(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("single-node group never formed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// No pre-stall "healthy" assertion: with a 1ms budget and TripCount 1
	// the hair-trigger guard can legitimately trip on ordinary scheduling
	// noise before the injected stall. The property under test is only
	// trip -> unhealthy, which the wait below covers either way.

	n.InjectStall(50 * time.Millisecond) // blows the 1ms budget, trips at 1 violation
	deadline = time.Now().Add(5 * time.Second)
	for {
		if h := n.Health(); h.GuardTripped && !h.Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("guard trip never reflected in health: %+v", n.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v, ok := n.CounterValue("timewheel_guard_trips_total"); !ok || v == 0 {
		t.Errorf("guard trip counter = %d ok=%v", v, ok)
	}
}

// Observe delivers the same protocol events to an embedder-provided
// sink, and cancel detaches it.
func TestObservePublicHook(t *testing.T) {
	var mu sync.Mutex
	byType := map[string]int{}
	cancel := Observe(func(ev TraceEvent) {
		mu.Lock()
		byType[ev.Type]++
		mu.Unlock()
	})
	defer cancel()

	nodes, _, stop := startCluster(t, 3)
	defer stop()
	if err := nodes[0].Propose([]byte("x"), TotalOrder, Strong); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := byType["view-install"] > 0 && byType["state-change"] > 0 && byType["decider-start"] > 0
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("observe sink missing events: %v", byType)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	mu.Lock()
	before := byType["state-change"]
	mu.Unlock()
	// New cluster activity after cancel must not reach the sink.
	nodes[1].Propose([]byte("y"), TotalOrder, Strong) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	after := byType["state-change"]
	mu.Unlock()
	if after != before {
		t.Errorf("cancelled sink still receiving (%d -> %d)", before, after)
	}
}

// /debug/events?follow=1 streams the trace ring as server-sent events:
// correct content type, monotone ids with next-cursor semantics, and
// live events arriving after the stream opened.
func TestObsEventsFollowSSE(t *testing.T) {
	defer tracer.EnableRing()()

	nodes, _, stop := startCluster(t, 3)
	defer stop()

	srv, err := nodes[0].ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/debug/events?follow=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Generate fresh protocol events while the stream is open.
	go func() {
		for i := 0; i < 5; i++ {
			nodes[0].Propose([]byte("sse"), TotalOrder, Strong) //nolint:errcheck
			time.Sleep(10 * time.Millisecond)
		}
	}()

	type sseEvent struct {
		id   uint64
		data TraceEvent
	}
	events := make(chan sseEvent, 64)
	readErr := make(chan error, 1)
	go func() {
		defer close(events)
		var cur sseEvent
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				v, err := strconv.ParseUint(line[4:], 10, 64)
				if err != nil {
					readErr <- err
					return
				}
				cur.id = v
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
					readErr <- err
					return
				}
			case line == "": // dispatch boundary
				if cur.id != 0 {
					events <- cur
					cur = sseEvent{}
				}
			}
		}
	}()

	var got []sseEvent
	deadline := time.After(10 * time.Second)
	for len(got) < 5 {
		select {
		case err := <-readErr:
			t.Fatalf("stream decode: %v", err)
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed after %d events", len(got))
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("timed out with %d events", len(got))
		}
	}
	var lastID uint64
	for _, ev := range got {
		if ev.id <= lastID {
			t.Fatalf("ids not monotone: %d after %d", ev.id, lastID)
		}
		// id is the next-poll cursor: one past the event's sequence.
		if ev.id != ev.data.Seq+1 {
			t.Fatalf("id %d does not follow seq %d", ev.id, ev.data.Seq)
		}
		lastID = ev.id
		if ev.data.Type == "" {
			t.Fatalf("event without a type: %+v", ev.data)
		}
	}

	// Resume: a one-shot poll from the last cursor returns only newer
	// events.
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/events?since=" + strconv.FormatUint(lastID, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out struct {
		Next   uint64       `json:"next"`
		Events []TraceEvent `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, ev := range out.Events {
		if ev.Seq < lastID {
			t.Fatalf("resume re-delivered seq %d (cursor %d)", ev.Seq, lastID)
		}
	}
}
