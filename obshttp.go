package timewheel

// HTTP export of the observability layer: Prometheus text + JSON
// metrics, a stall-safe health endpoint, the live protocol event ring,
// expvar and pprof — everything an operator needs to watch a node
// honour (or miss) its timed guarantees.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"timewheel/internal/member"
)

// Health is a point-in-time liveness summary, collected entirely from
// atomics: it stays readable while the node's event goroutine is
// stalled, which is exactly when an external health check matters.
type Health struct {
	// Healthy is true when the node is an operating group member: a
	// view is installed and current, the membership state is not join
	// or n-failure, and the timeliness guard (if enabled) is not
	// tripped.
	Healthy bool `json:"healthy"`
	// State is the membership state name ("failure-free", "join", ...).
	State string `json:"state"`
	// InView reports whether a membership view is installed and has not
	// been abandoned since.
	InView bool `json:"in_view"`
	// GuardTripped reports a currently tripped timeliness guard (always
	// false when the guard is disabled).
	GuardTripped bool `json:"guard_tripped"`
	// InvariantViolations is the live auditor's total §3 violation
	// count. Nonzero marks the node unhealthy: a safety violation is a
	// permanent fact about this run, not a transient condition.
	InvariantViolations uint64 `json:"invariant_violations"`
}

// Health reports the node's health without touching the event loop.
func (n *Node) Health() Health {
	st := member.State(n.obs.state.Value())
	tripped := n.guard != nil && n.guard.Tripped()
	inView := n.obs.inView.Value() == 1
	viol := n.auditor.Violations()
	return Health{
		Healthy:             inView && healthyState(st) && !tripped && viol == 0,
		State:               st.String(),
		InView:              inView,
		GuardTripped:        tripped,
		InvariantViolations: viol,
	}
}

// AuditStats snapshots the live invariant auditor: the total violation
// count and the per-invariant breakdown (empty while everything holds).
func (n *Node) AuditStats() (total uint64, byInvariant map[string]uint64) {
	return n.auditor.Violations(), n.auditor.ByInvariant()
}

// ObsHandler returns the node's observability HTTP handler:
//
//	/metrics        Prometheus text exposition (?format=json for JSON)
//	/healthz        200 when healthy, 503 otherwise; JSON body either way
//	/debug/events   protocol trace ring as JSON (?since=<cursor> to poll,
//	                ?follow=1 for a server-sent-event stream)
//	/debug/blackbox POST: dump a flight-recorder bundle now (requires a
//	                configured blackbox directory); returns its path
//	/debug/vars     expvar (includes the "timewheel" per-node snapshot)
//	/debug/pprof/   runtime profiles
//
// Creating the handler enables trace-ring recording for the rest of
// the process lifetime (the per-event cost goes from one atomic load
// to one ring write — still lock-free and allocation-free).
func (n *Node) ObsHandler() http.Handler {
	tracer.EnableRing() // intentionally never disabled; see doc comment
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			n.refreshMirror(defaultMirrorTimeout)
			n.obs.reg.WriteJSON(w) //nolint:errcheck // client gone
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.WriteMetrics(w) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := n.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h) //nolint:errcheck
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor", http.StatusBadRequest)
				return
			}
			since = v
		}
		if r.URL.Query().Get("follow") != "" {
			followEvents(w, r, since)
			return
		}
		evs, next, truncated := tracer.Since(since)
		out := struct {
			Next uint64 `json:"next"`
			// Truncated reports that the ring overwrote events between
			// the requested cursor and the oldest event returned — a
			// merged cluster timeline must treat the gap as real.
			Truncated bool         `json:"truncated"`
			Dropped   uint64       `json:"dropped"`
			Events    []TraceEvent `json:"events"`
		}{Next: next, Truncated: truncated, Dropped: tracer.Dropped(),
			Events: make([]TraceEvent, 0, len(evs))}
		for _, ev := range evs {
			out.Events = append(out.Events, TraceEvent{
				Seq: ev.Seq, At: ev.Time(), Node: int(ev.Node),
				Type: ev.Type.String(), A: ev.A, B: ev.B,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out) //nolint:errcheck
	})
	mux.HandleFunc("/debug/blackbox", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		path, err := n.DumpBlackbox("http")
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"bundle": path}) //nolint:errcheck
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultMirrorTimeout bounds how long a scrape waits for the event
// loop to refresh the mirrored Stats counters.
const defaultMirrorTimeout = 200 * time.Millisecond

// followEvents streams the trace ring as server-sent events
// (/debug/events?follow=1): each protocol event is one SSE message with
// its ring sequence as the event id, so a dropped client reconnects
// with Last-Event-ID (or ?since=) and misses nothing still in the ring.
// The source is the same seqlock ring the one-shot endpoint reads —
// polled, never subscribed, so a stuck client costs the node nothing on
// the hot path. Comment-line keepalives hold idle connections open
// through proxies.
func followEvents(w http.ResponseWriter, r *http.Request, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if v, err := strconv.ParseUint(id, 10, 64); err == nil {
			since = v
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // nginx: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	const (
		pollEvery = 25 * time.Millisecond
		keepalive = 15 * time.Second
	)
	poll := time.NewTicker(pollEvery)
	defer poll.Stop()
	cursor := since
	lastWrite := time.Now()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-poll.C:
		}
		evs, next, _ := tracer.Since(cursor)
		if next > cursor {
			cursor = next
		}
		if len(evs) == 0 {
			if time.Since(lastWrite) >= keepalive {
				if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
					return
				}
				fl.Flush()
				lastWrite = time.Now()
			}
			continue
		}
		for _, ev := range evs {
			payload, err := json.Marshal(TraceEvent{
				Seq: ev.Seq, At: ev.Time(), Node: int(ev.Node),
				Type: ev.Type.String(), A: ev.A, B: ev.B,
			})
			if err != nil {
				continue
			}
			// Cursor semantics match ?since=: the id is the *next* poll
			// position, so Last-Event-ID resumes without re-delivery.
			if _, err := fmt.Fprintf(w, "id: %d\nevent: trace\ndata: %s\n\n", ev.Seq+1, payload); err != nil {
				return
			}
		}
		fl.Flush()
		lastWrite = time.Now()
	}
}

// ObsServer is a running observability HTTP listener (see ServeObs).
type ObsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *ObsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down. The node keeps running.
func (s *ObsServer) Close() error { return s.srv.Close() }

// ServeObs binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// node's observability endpoints on it until Close. The server is
// independent of the node's lifecycle: metrics stay scrapeable while
// the event loop is stalled, and after Stop.
func (n *Node) ServeObs(addr string) (*ObsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: n.ObsHandler()}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return &ObsServer{ln: ln, srv: srv}, nil
}
