package timewheel

// Live observability for real nodes: every Node owns an obs.Registry
// holding its protocol metrics, and all nodes in the process share one
// trace ring (package-level, so timewheel.Observe and /debug/events see
// the whole in-process cluster; Event.Node tells emitters apart).
//
// Two consistency domains coexist here, deliberately:
//
//   - hot-path instruments (histograms, FSM transition counters, peer
//     delay, guard trips, queue depth) are pure atomics written by the
//     emitting goroutine — always readable, even while the event loop
//     is stalled, which is when they matter most;
//   - the member/broadcast Stats blocks are event-loop confined, so
//     /metrics mirrors them by posting a copy command with a short
//     timeout; a stalled loop leaves the mirror stale (flagged by
//     timewheel_mirror_stale) without stalling the scrape.

import (
	"expvar"
	"io"
	"sync"
	"time"

	"timewheel/internal/check"
	"timewheel/internal/engine"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/obs"
	"timewheel/internal/wire"
)

// tracer is the process-wide protocol event ring shared by all Nodes.
var tracer = obs.NewTracer(8192)

// TraceEvent is one protocol event delivered to Observe sinks: a state
// transition, view install, decider handoff, election, suspicion, guard
// trip, WAL sync or snapshot.
type TraceEvent struct {
	// Seq is a process-wide dense sequence number.
	Seq uint64
	// At is the emit time.
	At time.Time
	// Node is the emitting node's ID.
	Node int
	// Type names the event (e.g. "state-change", "view-install",
	// "election-end", "guard-trip").
	Type string
	// A and B are the type-specific arguments; see docs/OBSERVABILITY.md
	// for the per-type meaning.
	A, B int64
}

// Observe attaches a sink to the process-wide protocol event stream of
// every Node in this process. The sink runs synchronously on the
// emitting goroutine — protocol hot paths — so it must be fast and
// non-blocking (enqueue and return). The returned cancel detaches it.
// With no sink attached (and no /debug/events consumer) emitting is a
// single atomic check, so idle instrumentation is effectively free.
func Observe(sink func(TraceEvent)) (cancel func()) {
	return tracer.Attach(func(ev obs.Event) {
		sink(TraceEvent{
			Seq:  ev.Seq,
			At:   ev.Time(),
			Node: int(ev.Node),
			Type: ev.Type.String(),
			A:    ev.A,
			B:    ev.B,
		})
	})
}

// healthy membership states: everything except join (not/no longer a
// member) and n-failure (the view is in doubt; a reconfiguration
// election is running).
func healthyState(s member.State) bool {
	switch s {
	case member.StateFailureFree, member.StateWrongSuspicion,
		member.State1FailureReceive, member.State1FailureSend:
		return true
	}
	return false
}

// nodeObs is one node's instrument set. Hot-path fields are written
// from the event goroutine (hooks) or transport goroutines and read
// from scrapers; episode fields are event-loop confined.
type nodeObs struct {
	id  int32
	reg *obs.Registry

	// Engine / dispatch (atomics, live).
	handlerLatency *obs.Histogram
	timerLateness  *obs.Histogram

	// Membership (hook-driven, live).
	viewInstall   *obs.Histogram
	electionSing  *obs.Histogram
	electionReco  *obs.Histogram
	decisionLat   *obs.Histogram
	suspicionLag  *obs.Histogram
	fsmMu         sync.Mutex
	fsmTransition [6][6]*obs.Counter

	// Broadcast (live).
	deliveryLag *obs.Histogram

	// Transport (live).
	sends     *obs.Counter
	recvs     *obs.Counter
	recvDrops *obs.Counter
	peerDelay []*obs.Histogram // indexed by peer ID

	// Slot-boundary micro-batching (Config.SlotBatch; zero otherwise).
	slotbatchHeld    *obs.Counter
	slotbatchFlushes *obs.Counter

	// Durable (live).
	fsyncLat   *obs.Histogram
	snapBytes  *obs.Histogram
	replaySize *obs.Histogram

	// Mirror of event-loop-confined Stats blocks (Store'd on scrape).
	mirrorStale  *obs.Gauge
	mirror       map[string]*obs.Counter
	mirrorMu     sync.Mutex
	lastMirrorAt time.Time

	// Health state, readable while the loop is stalled.
	state  obs.Gauge // member.State as int64
	inView obs.Gauge // 1 after a view install, 0 after dropping to join

	// Election episode tracking: event-loop confined (StateChange and
	// ViewChange hooks both run on the event goroutine). episodeStart
	// anchors election duration (cleared on return to failure-free);
	// installAnchor anchors view-install latency (cleared on the next
	// installed view).
	episodeStart  time.Time
	installAnchor time.Time
	sawNFailure   bool
	// Decider tenure tracking for decision latency (event-loop confined).
	tenureStart time.Time
}

// mirrorNames lists the event-loop-confined counters /metrics mirrors,
// in the order of Metrics' fields.
var mirrorNames = []string{
	"timewheel_member_view_changes_total",
	"timewheel_member_single_elections_total",
	"timewheel_member_reconfig_elections_total",
	"timewheel_member_wrong_suspicions_total",
	"timewheel_member_nodecisions_sent_total",
	"timewheel_member_reconfigs_sent_total",
	"timewheel_member_joins_sent_total",
	"timewheel_member_decisions_sent_total",
	"timewheel_member_admissions_total",
	"timewheel_member_self_exclusions_total",
	"timewheel_surveil_suspicions_total",
	"timewheel_surveil_refutes_total",
	"timewheel_surveil_relays_total",
	"timewheel_surveil_duplicates_total",
	"timewheel_surveil_stale_total",
	"timewheel_broadcast_proposed_total",
	"timewheel_broadcast_delivered_total",
	"timewheel_broadcast_delivered_fast_total",
	"timewheel_broadcast_purged_total",
	"timewheel_broadcast_retransmits_total",
	"timewheel_broadcast_state_fulls_total",
	"timewheel_broadcast_state_deltas_total",
	"timewheel_broadcast_replay_applied_total",
}

func newNodeObs(n *Node) *nodeObs {
	o := &nodeObs{id: int32(n.cfg.ID), reg: obs.NewRegistry()}
	r := o.reg
	if n.cfg.Group != 0 {
		// Fabric nodes host many groups, each with its own registry;
		// the group label keeps their series apart when scraped merged.
		r.SetBaseLabels(obs.L("group", "g"+itoa(int(n.cfg.Group))))
	}

	// Engine.
	r.GaugeFunc("timewheel_engine_queue_depth", "events queued and not yet dispatched", nil,
		func() int64 {
			if n.loop == nil {
				return 0
			}
			return int64(n.loop.QueueLen())
		})
	r.CounterFunc("timewheel_engine_handled_total", "events dispatched", nil,
		func() uint64 {
			if n.loop == nil {
				return 0
			}
			return n.loop.Handled()
		})
	r.CounterFunc("timewheel_engine_queue_drops_total", "events rejected by the full bounded queue", nil,
		func() uint64 {
			if n.loop == nil {
				return 0
			}
			return n.loop.Dropped()
		})
	o.handlerLatency = r.Histogram("timewheel_handler_latency_seconds",
		"wall-clock time per event handler", obs.LatencyBuckets, obs.Seconds, nil)
	o.timerLateness = r.Histogram("timewheel_timer_lateness_seconds",
		"timer dispatch time past the armed deadline (OS slip + queueing)",
		obs.LatencyBuckets, obs.Seconds, nil)

	// Membership timeliness — the paper's claims, as distributions.
	o.viewInstall = r.Histogram("timewheel_view_install_latency_seconds",
		"leaving failure-free operation (or starting to join) to the next installed view",
		obs.LatencyBuckets, obs.Seconds, nil)
	o.electionSing = r.Histogram("timewheel_election_duration_seconds",
		"membership disagreement episode length, by election kind",
		obs.LatencyBuckets, obs.Seconds, obs.L("kind", "single"))
	o.electionReco = r.Histogram("timewheel_election_duration_seconds",
		"membership disagreement episode length, by election kind",
		obs.LatencyBuckets, obs.Seconds, obs.L("kind", "reconfig"))
	o.decisionLat = r.Histogram("timewheel_decision_latency_seconds",
		"decider tenure length for tenures that produced a decision",
		obs.LatencyBuckets, obs.Seconds, nil)
	o.suspicionLag = r.Histogram("timewheel_suspicion_reaction_seconds",
		"suspicion handler lag past the ts+2D expectation deadline",
		obs.LatencyBuckets, obs.Seconds, nil)

	// Broadcast.
	o.deliveryLag = r.Histogram("timewheel_delivery_lag_seconds",
		"proposer synchronized send time to local delivery (stability lag)",
		obs.LatencyBuckets, obs.Seconds, nil)

	// Transport: per-peer one-way delay is the timeliness-graph edge
	// weight, so the series are pre-created for every peer.
	o.sends = r.Counter("timewheel_transport_sends_total", "frames handed to the transport", nil)
	o.recvs = r.Counter("timewheel_transport_recvs_total", "frames decoded from the transport", nil)
	o.recvDrops = r.Counter("timewheel_transport_recv_drops_total",
		"received frames dropped (corrupt, or engine queue full)", nil)
	r.CounterFunc("timewheel_transport_send_errors_total",
		"datagram sends that failed (per-peer write errors; omissions are in-model but no longer invisible)", nil,
		func() uint64 {
			v := n.sendErrs.Load()
			if n.trSendErrs != nil {
				v += n.trSendErrs()
			}
			return v
		})
	o.slotbatchHeld = r.Counter("timewheel_slotbatch_held_events_total",
		"reactive events whose coalesced frames were held for a timer-path flush (SlotBatch mode)", nil)
	o.slotbatchFlushes = r.Counter("timewheel_slotbatch_flushes_total",
		"slot-edge backstop flushes fired (SlotBatch mode)", nil)

	// Trace-ring overflow accounting (process-wide ring, so multi-node
	// processes report the same number per node) and the live invariant
	// auditor's violation count.
	r.CounterFunc("timewheel_trace_dropped_total",
		"trace-ring events overwritten before any reader saw them", nil,
		tracer.Dropped)
	r.CounterFunc("timewheel_invariant_violations_total",
		"live §3 invariant violations detected by the auditor (fifo/duplicate/order/view checks)", nil,
		func() uint64 {
			if n.auditor == nil {
				return 0
			}
			return n.auditor.Violations()
		})
	o.peerDelay = make([]*obs.Histogram, n.cfg.ClusterSize)
	for p := 0; p < n.cfg.ClusterSize; p++ {
		if p == n.cfg.ID {
			continue
		}
		o.peerDelay[p] = r.Histogram("timewheel_peer_delay_seconds",
			"observed one-way delay per peer, from synchronized send timestamps",
			obs.LatencyBuckets, obs.Seconds, obs.L("peer", itoa(p)))
	}

	// Guard (nil-safe: the CounterFuncs read zero when disabled).
	r.CounterFunc("timewheel_guard_trips_total", "armed-to-tripped guard transitions", nil,
		func() uint64 {
			if n.guard == nil {
				return 0
			}
			return n.guard.Stats().Trips
		})
	r.CounterFunc("timewheel_guard_overruns_total", "handlers over HandlerBudget", nil,
		func() uint64 {
			if n.guard == nil {
				return 0
			}
			return n.guard.Stats().Overruns
		})
	r.CounterFunc("timewheel_guard_late_timers_total", "timers over TimerLateBudget", nil,
		func() uint64 {
			if n.guard == nil {
				return 0
			}
			return n.guard.Stats().LateTimers
		})
	r.CounterFunc("timewheel_guard_suppressed_sends_total", "control sends withheld while tripped", nil,
		func() uint64 {
			if n.guard == nil {
				return 0
			}
			return n.guard.Stats().SuppressedSends
		})
	r.GaugeFunc("timewheel_guard_tripped", "1 while the guard is tripped", nil,
		func() int64 {
			if n.guard == nil || !n.guard.Tripped() {
				return 0
			}
			return 1
		})

	// Durable.
	o.fsyncLat = r.Histogram("timewheel_wal_fsync_seconds",
		"write-ahead log fsync latency", obs.LatencyBuckets, obs.Seconds, nil)
	o.snapBytes = r.Histogram("timewheel_snapshot_bytes",
		"encoded snapshot sizes", obs.ByteBuckets, obs.Raw, nil)
	o.replaySize = r.Histogram("timewheel_replay_delta_records",
		"records per served rejoin replay delta", obs.CountBuckets, obs.Raw, nil)

	// Health + mirror bookkeeping.
	r.GaugeFunc("timewheel_member_state", "member.State as an integer (0=join..5=n-failure)", nil, o.state.Value)
	r.GaugeFunc("timewheel_in_view", "1 when a membership view is installed and current", nil, o.inView.Value)
	o.mirrorStale = r.Gauge("timewheel_mirror_stale",
		"1 when the last scrape could not refresh event-loop-confined counters (loop stalled)", nil)
	o.mirror = make(map[string]*obs.Counter, len(mirrorNames))
	for _, name := range mirrorNames {
		o.mirror[name] = r.Counter(name, "event-loop-confined protocol counter (mirrored on scrape)", nil)
	}
	return o
}

// registerAdaptive wires the adaptive-timeout instruments. The
// expect-overwrite counter is always registered (the fdetect bug it
// surfaces predates adaptation); the adapt_* series only exist when
// Adaptive is enabled. Gauges are exported in microseconds (suffix _us)
// because GaugeFunc carries no unit scaling; the histogram families
// remain the *_seconds source of truth for distributions.
func (o *nodeObs) registerAdaptive(n *Node) {
	r := o.reg
	r.CounterFunc("timewheel_fd_expect_overwrites_total",
		"armed failure-detector expectations replaced before firing", nil,
		func() uint64 { return n.machine.Detector().ExpectOverwrites() })
	if n.adaptDelay == nil {
		return
	}
	r.CounterFunc("timewheel_adapt_widened_total",
		"per-peer suspicion grants widened by the delay estimator", nil,
		func() uint64 { return n.machine.Detector().AdaptStats().Widened })
	r.CounterFunc("timewheel_adapt_shrunk_total",
		"per-peer suspicion grants shrunk past the hysteresis threshold", nil,
		func() uint64 { return n.machine.Detector().AdaptStats().Shrunk })
	r.CounterFunc("timewheel_adapt_flap_boosts_total",
		"suspicion-triggered grant boosts to the ceiling (flap suppression)", nil,
		func() uint64 { return n.machine.Detector().AdaptStats().FlapBoosts })
	r.GaugeFunc("timewheel_adapt_noise_handler_us",
		"EWMA of observed handler runtime feeding the adaptive guard budget (microseconds)", nil,
		func() int64 { return n.adaptNoise.HandlerEstimate().Microseconds() })
	r.GaugeFunc("timewheel_adapt_noise_lateness_us",
		"EWMA of observed scheduling lateness feeding the adaptive guard budget (microseconds)", nil,
		func() int64 { return n.adaptNoise.LatenessEstimate().Microseconds() })
	for p := 0; p < n.cfg.ClusterSize; p++ {
		if p == n.cfg.ID {
			continue
		}
		peer := model.ProcessID(p)
		r.GaugeFunc("timewheel_adapt_peer_deadline_us",
			"current adaptive expectation-deadline span granted to the peer (microseconds; 0 before first grant)",
			obs.L("peer", itoa(p)),
			func() int64 { return int64(n.machine.Detector().DeadlineSpan(peer)) })
	}
}

// itoa avoids strconv in the hot-path file's imports for one call site.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (o *nodeObs) emit(typ obs.EventType, a, b int64) { tracer.Emit(typ, o.id, a, b) }

// onWireEvent taps the membership machine's send/receive hot path with
// the causal context the v7 envelope carries. It packs everything into
// the event's two scalar arguments (A = causal chain timestamp, B =
// kind/peer/origin/slot via PackWireMeta), so the tap stays
// allocation-free and costs one atomic load while tracing is off.
func (o *nodeObs) onWireEvent(dir member.WireDir, kind wire.Kind, peer model.ProcessID, ctx wire.Causal) {
	typ := obs.EvWireSend
	if dir == member.WireRecv {
		typ = obs.EvWireRecv
	}
	p := uint16(obs.WirePeerBroadcast)
	if peer != model.NoProcess {
		p = uint16(peer)
	}
	o.emit(typ, ctx.TS, obs.PackWireMeta(uint8(kind), p, uint16(ctx.Origin), ctx.Slot))
}

// invariantCode maps auditor invariant names to the stable small
// integers the EvInvariant trace event carries in A.
func invariantCode(inv string) int64 {
	switch inv {
	case check.InvFIFOOrder:
		return 1
	case check.InvDuplicate:
		return 2
	case check.InvTotalOrder:
		return 3
	case check.InvTimeOrder:
		return 4
	case check.InvViewMonotonic:
		return 5
	case check.InvMajorityView:
		return 6
	default:
		return 0
	}
}

// fsmCounter lazily creates the {from,to} transition series (36
// possible; only the protocol's legal handful materialise).
func (o *nodeObs) fsmCounter(from, to member.State) *obs.Counter {
	if int(from) > 5 || int(to) > 5 {
		return nil
	}
	o.fsmMu.Lock()
	defer o.fsmMu.Unlock()
	c := o.fsmTransition[from][to]
	if c == nil {
		c = o.reg.Counter("timewheel_fsm_transitions_total",
			"membership state machine transitions",
			obs.L("from", from.String(), "to", to.String()))
		o.fsmTransition[from][to] = c
	}
	return c
}

// onStateChange is the member.Hooks.StateChange tap (event goroutine).
func (o *nodeObs) onStateChange(from, to member.State) {
	now := time.Now()
	o.fsmCounter(from, to).Inc()
	o.state.Set(int64(to))
	o.emit(obs.EvStateChange, int64(from), int64(to))

	switch {
	case to == member.StateJoin:
		// (Re)joining: the old view is gone.
		o.inView.Set(0)
		if o.episodeStart.IsZero() {
			o.episodeStart, o.sawNFailure = now, false
		}
		o.installAnchor = now
	case from == member.StateFailureFree && to != member.StateFailureFree:
		// Leaving failure-free operation: an election episode begins.
		o.episodeStart, o.sawNFailure = now, false
		o.installAnchor = now
		o.emit(obs.EvElectionStart, int64(to), 0)
	}
	if to == member.StateNFailure {
		o.sawNFailure = true
	}
	if to == member.StateFailureFree && !o.episodeStart.IsZero() {
		d := now.Sub(o.episodeStart)
		if o.sawNFailure {
			o.electionReco.ObserveDuration(d)
		} else {
			o.electionSing.ObserveDuration(d)
		}
		o.emit(obs.EvElectionEnd, int64(d), 0)
		o.episodeStart = time.Time{}
	}
}

// onViewChange is the member.Hooks.ViewChange tap (event goroutine).
func (o *nodeObs) onViewChange(g model.Group) {
	o.inView.Set(1)
	if !o.installAnchor.IsZero() {
		o.viewInstall.ObserveSince(o.installAnchor)
		o.installAnchor = time.Time{}
	}
	o.emit(obs.EvViewInstall, int64(g.Seq), int64(len(g.Members)))
}

// onDecider is the member.Hooks.Decider tap (event goroutine).
func (o *nodeObs) onDecider(isDecider, sent bool) {
	if isDecider {
		o.tenureStart = time.Now()
		o.emit(obs.EvDeciderStart, 0, 0)
		return
	}
	if sent && !o.tenureStart.IsZero() {
		o.decisionLat.ObserveSince(o.tenureStart)
	}
	o.tenureStart = time.Time{}
	var a int64
	if sent {
		a = 1
	}
	o.emit(obs.EvDeciderEnd, a, 0)
}

// onSuspicion is the member.Hooks.Suspicion tap (event goroutine).
// deadline and now are synchronized-clock microseconds.
func (o *nodeObs) onSuspicion(suspect model.ProcessID, deadline, now model.Time) {
	lagNs := int64(now-deadline) * int64(time.Microsecond)
	if lagNs < 0 {
		lagNs = 0
	}
	o.suspicionLag.Observe(lagNs)
	o.emit(obs.EvSuspicion, int64(suspect), lagNs)
}

// onRecv records a decoded frame from peer from, sent at sendTS
// (synchronized-clock microseconds). Transport goroutine context.
func (o *nodeObs) onRecv(from model.ProcessID, sendTS model.Time) {
	o.recvs.Inc()
	if int(from) >= 0 && int(from) < len(o.peerDelay) {
		delayNs := time.Now().UnixMicro() - int64(sendTS)
		delayNs *= int64(time.Microsecond)
		if delayNs < 0 {
			delayNs = 0 // clock skew within Epsilon can go slightly negative
		}
		o.peerDelay[from].Observe(delayNs)
	}
}

// refreshMirror copies the event-loop-confined member/broadcast Stats
// into the mirror counters by posting a command; a loop stalled past
// timeout leaves the previous values and flags timewheel_mirror_stale.
func (n *Node) refreshMirror(timeout time.Duration) {
	o := n.obs
	o.mirrorMu.Lock()
	defer o.mirrorMu.Unlock()
	done := make(chan struct{})
	posted := n.post(engine.Event{Type: engine.EvCommand, Cmd: func() {
		m := n.machine.Stats()
		b := n.bc.Stats()
		vals := []uint64{
			m.ViewChanges, m.SingleElections, m.ReconfigElections, m.WrongSuspicions,
			m.NDsSent, m.ReconfigsSent, m.JoinsSent, m.DecisionsSent,
			m.Admissions, m.SelfExclusions,
			m.SuspicionsGossiped, m.RefutesSent, m.GossipRelays,
			m.GossipDuplicates, m.StaleSuspicions,
			b.Proposed, b.Delivered, b.DeliveredFast, b.Purged, b.Retransmits,
			b.StateFulls, b.StateDeltas, b.ReplayApplied,
		}
		for i, name := range mirrorNames {
			o.mirror[name].Store(vals[i])
		}
		close(done)
	}})
	if !posted {
		o.mirrorStale.Set(1)
		return
	}
	select {
	case <-done:
		o.mirrorStale.Set(0)
		o.lastMirrorAt = time.Now()
	case <-time.After(timeout):
		o.mirrorStale.Set(1)
	}
}

// WriteMetrics renders the node's full metric registry in Prometheus
// text exposition format, refreshing the event-loop-confined mirror
// first (bounded wait; a stalled loop yields stale mirror values,
// flagged by timewheel_mirror_stale, while every hot-path instrument
// stays live).
func (n *Node) WriteMetrics(w io.Writer) error {
	n.refreshMirror(defaultMirrorTimeout)
	return n.obs.reg.WritePrometheus(w)
}

// CounterValue returns a metric family's summed value by Prometheus
// name (e.g. "timewheel_guard_trips_total"); ok is false for unknown
// names. Lock-free with respect to the node's event loop.
func (n *Node) CounterValue(name string) (v uint64, ok bool) {
	return n.obs.reg.CounterValue(name)
}

// HistogramStat summarises a latency histogram by Prometheus name. For
// *_seconds families the fields are nanoseconds; for byte/count
// families they are in the family's raw unit.
type HistogramStat struct {
	Count              uint64
	Sum                int64
	P50, P90, P99, Max int64
}

// HistogramStat returns the summary of a histogram family (series
// merged) by Prometheus name; ok is false for unknown names.
func (n *Node) HistogramStat(name string) (HistogramStat, bool) {
	s, ok := n.obs.reg.HistogramSnapshot(name)
	if !ok {
		return HistogramStat{}, false
	}
	return HistogramStat{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}, true
}

// --- expvar --------------------------------------------------------------------

// liveNodes is the process-wide set of running nodes, exported once
// under the "timewheel" expvar key (expvar forbids re-publishing, and
// tests create many short-lived nodes).
var (
	liveMu    sync.Mutex
	liveNodes = map[*Node]struct{}{}
	expvarReg sync.Once
)

func registerExpvar(n *Node) {
	liveMu.Lock()
	liveNodes[n] = struct{}{}
	liveMu.Unlock()
	expvarReg.Do(func() {
		expvar.Publish("timewheel", expvar.Func(func() any {
			liveMu.Lock()
			nodes := make([]*Node, 0, len(liveNodes))
			for ln := range liveNodes {
				nodes = append(nodes, ln)
			}
			liveMu.Unlock()
			out := make(map[string][]obs.JSONMetric, len(nodes))
			for _, ln := range nodes {
				out[itoa(ln.cfg.ID)] = ln.obs.reg.Snapshot()
			}
			return out
		}))
	})
}

func unregisterExpvar(n *Node) {
	liveMu.Lock()
	delete(liveNodes, n)
	liveMu.Unlock()
}
