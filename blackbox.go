package timewheel

// Cluster flight recorder: when a node detects that something has
// gone wrong — the timeliness guard trips, the node self-excludes, the
// live invariant auditor counts a violation, an operator hits the HTTP
// trigger or sends SIGQUIT — it dumps a self-contained "black box"
// bundle to disk. The bundle captures exactly the state needed to
// reconstruct the incident after the fact: the protocol trace ring
// (with the causal wire hops the v7 envelope carries), a full metrics
// snapshot, the adaptive estimator and guard state, the auditor's
// per-invariant counts, and goroutine/heap profiles.
//
// Bundles are written atomically (staged under a dot-prefixed temp
// name, renamed into place), automatic triggers are rate-limited so a
// flapping guard cannot fill the disk, and only the newest bundles are
// retained.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"timewheel/internal/obs"
)

const (
	// blackboxPrefix names bundle directories: bb-<stamp>-<reason>.
	blackboxPrefix = "bb-"
	// blackboxKeep is how many bundles a directory retains.
	blackboxKeep = 8
	// blackboxMinGap rate-limits automatic triggers; explicit
	// DumpBlackbox calls bypass it.
	blackboxMinGap = 30 * time.Second
)

// Blackbox trigger reasons, recorded in the bundle's meta.json and as
// the A argument of the blackbox trace event.
const (
	bbReasonManual = iota
	bbReasonGuardTrip
	bbReasonSelfExclude
	bbReasonInvariant
	bbReasonSignal
	bbReasonHTTP
)

func blackboxReasonCode(reason string) int64 {
	switch {
	case reason == "guard-trip":
		return bbReasonGuardTrip
	case reason == "self-exclude":
		return bbReasonSelfExclude
	case strings.HasPrefix(reason, "invariant"):
		return bbReasonInvariant
	case reason == "signal":
		return bbReasonSignal
	case reason == "http":
		return bbReasonHTTP
	default:
		return bbReasonManual
	}
}

// blackboxMeta is the bundle's meta.json.
type blackboxMeta struct {
	Node       int               `json:"node"`
	Group      uint32            `json:"group,omitempty"`
	Reason     string            `json:"reason"`
	At         time.Time         `json:"at"`
	Health     Health            `json:"health"`
	Guard      GuardStats        `json:"guard"`
	Adaptive   AdaptiveStats     `json:"adaptive"`
	Invariants map[string]uint64 `json:"invariant_violations,omitempty"`
	Recovery   RecoveryReport    `json:"recovery"`
}

// blackboxEvents is the bundle's events.json: the full trace ring at
// dump time, plus the overflow accounting a merger needs to treat gaps
// as real.
type blackboxEvents struct {
	Node      int          `json:"node"`
	Next      uint64       `json:"next"`
	Truncated bool         `json:"truncated"`
	Dropped   uint64       `json:"dropped"`
	Events    []TraceEvent `json:"events"`
}

// DumpBlackbox writes a flight-recorder bundle for this node and
// returns the bundle directory. The node must have a blackbox
// directory configured (Config.BlackboxDir, or DataDir/blackbox when
// the node is durable); otherwise it returns an error. Explicit calls
// are not rate-limited.
func (n *Node) DumpBlackbox(reason string) (string, error) {
	if n.bboxDir == "" {
		return "", fmt.Errorf("timewheel: no blackbox directory configured")
	}
	if reason == "" {
		reason = "manual"
	}
	now := time.Now()
	n.obs.emit(obs.EvBlackbox, blackboxReasonCode(reason), 0)

	// Stage under a dot-prefixed temp name in the same directory, fill
	// it, then rename: a bundle either exists completely or not at all,
	// and sweepers can skip dot-entries.
	if err := os.MkdirAll(n.bboxDir, 0o755); err != nil {
		return "", err
	}
	safe := strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
			return r
		}
		return '_'
	}, reason)
	name := fmt.Sprintf("%s%s-%s", blackboxPrefix, now.UTC().Format("20060102T150405.000000000"), safe)
	tmp := filepath.Join(n.bboxDir, "."+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after the rename succeeds

	meta := blackboxMeta{
		Node:     n.cfg.ID,
		Group:    n.cfg.Group,
		Reason:   reason,
		At:       now,
		Health:   n.Health(),
		Guard:    n.GuardStats(),
		Adaptive: n.AdaptiveStats(),
		Recovery: n.recovery,
	}
	if n.auditor != nil {
		meta.Invariants = n.auditor.ByInvariant()
	}
	if err := writeBlackboxJSON(filepath.Join(tmp, "meta.json"), meta); err != nil {
		return "", err
	}

	evs, next, truncated := tracer.Since(0)
	dump := blackboxEvents{
		Node: n.cfg.ID, Next: next, Truncated: truncated, Dropped: tracer.Dropped(),
		Events: make([]TraceEvent, 0, len(evs)),
	}
	for _, ev := range evs {
		dump.Events = append(dump.Events, TraceEvent{
			Seq: ev.Seq, At: ev.Time(), Node: int(ev.Node),
			Type: ev.Type.String(), A: ev.A, B: ev.B,
		})
	}
	if err := writeBlackboxJSON(filepath.Join(tmp, "events.json"), dump); err != nil {
		return "", err
	}

	if err := writeBlackboxFile(filepath.Join(tmp, "metrics.prom"), func(f *os.File) error {
		return n.WriteMetrics(f)
	}); err != nil {
		return "", err
	}
	// Profiles are best-effort: a bundle without them still tells the
	// protocol-level story.
	writeBlackboxFile(filepath.Join(tmp, "goroutine.txt"), func(f *os.File) error { //nolint:errcheck
		return pprof.Lookup("goroutine").WriteTo(f, 1)
	})
	writeBlackboxFile(filepath.Join(tmp, "heap.pprof"), func(f *os.File) error { //nolint:errcheck
		return pprof.Lookup("heap").WriteTo(f, 0)
	})

	final := filepath.Join(n.bboxDir, name)
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	pruneBlackbox(n.bboxDir, blackboxKeep)
	return final, nil
}

// triggerBlackbox is the automatic-trigger path (guard trip,
// self-exclusion, invariant violation): rate-limited, asynchronous,
// and silent when no blackbox directory is configured — the callers
// run on the event goroutine or inside protocol hooks and must not
// block on disk I/O.
func (n *Node) triggerBlackbox(reason string) {
	if n.bboxDir == "" {
		return
	}
	for {
		last := n.bboxLast.Load()
		now := time.Now().UnixNano()
		if now-last < int64(blackboxMinGap) {
			return
		}
		if n.bboxLast.CompareAndSwap(last, now) {
			break
		}
	}
	go n.DumpBlackbox(reason) //nolint:errcheck // best-effort crash artifact
}

func writeBlackboxJSON(path string, v any) error {
	return writeBlackboxFile(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

func writeBlackboxFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pruneBlackbox removes the oldest bundles beyond keep. Bundle names
// embed a sortable UTC timestamp, so lexical order is age order.
func pruneBlackbox(dir string, keep int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), blackboxPrefix) {
			names = append(names, e.Name())
		}
	}
	if len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-keep] {
		os.RemoveAll(filepath.Join(dir, name)) //nolint:errcheck
	}
}
