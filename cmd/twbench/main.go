// Command twbench runs the reproduction's full experiment suite (E1–E9
// of DESIGN.md) and prints one table per experiment, in the shape the
// paper's claims take: who wins, what the bounds are, where the
// crossovers fall. Absolute numbers reflect the simulated timed
// asynchronous system (delta=10ms, D=20ms LAN model), not the authors'
// 1998 SGI testbed; the relationships are what reproduce.
//
// Usage:
//
//	twbench              # all experiments
//	twbench -exp e3      # one experiment
//	twbench -seeds 5     # average over more seeds
//	twbench -json        # machine-readable micro-benchmarks -> BENCH_<date>.json
//	twbench -json -compare bench_baseline.json   # CI regression smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"timewheel/internal/check"
	"timewheel/internal/engine"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/scenario"
)

var (
	flagExp       = flag.String("exp", "all", "experiment to run: e1..e9 or all")
	flagSeeds     = flag.Int("seeds", 3, "seeds to average over")
	flagJSON      = flag.Bool("json", false, "run micro-benchmarks + a live-cluster sample and write BENCH_<date>.json")
	flagOut       = flag.String("out", ".", "directory for the BENCH_<date>.json report (with -json)")
	flagCompare   = flag.String("compare", "", "baseline BENCH json to compare against (with -json); exit 1 on regression")
	flagThreshold = flag.Float64("threshold", 10, "ns/op slowdown factor that counts as a regression (with -compare)")
)

func main() {
	flag.Parse()
	if *flagJSON {
		os.Exit(runBenchJSON(*flagOut, *flagCompare, *flagThreshold))
	}
	experiments := map[string]func(){
		"e1": e1FSMCoverage,
		"e2": e2FailureFreeTraffic,
		"e3": e3SingleFailureRecovery,
		"e4": e4FalseSuspicion,
		"e5": e5MultiFailureRecovery,
		"e6": e6Formation,
		"e7": e7Engines,
		"e8": e8ViewChangePurge,
		"e9": e9Properties,
	}
	if *flagExp != "all" {
		f, ok := experiments[*flagExp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *flagExp)
			os.Exit(2)
		}
		f()
		return
	}
	keys := make([]string, 0, len(experiments))
	for k := range experiments {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		experiments[k]()
		fmt.Println()
	}
}

func header(id, claim string) {
	fmt.Printf("=== %s — %s\n", strings.ToUpper(id), claim)
}

// avg runs a metric-producing scenario over the configured seeds and
// averages the named metric, also asserting invariants.
func avg(metric string, run func(seed int64) *scenario.Result) float64 {
	var sum float64
	n := 0
	for s := 0; s < *flagSeeds; s++ {
		r := run(int64(1000 + s))
		if r.Failed != "" {
			fmt.Printf("    !! %s failed (seed %d): %s\n", r.Name, 1000+s, r.Failed)
			continue
		}
		if res := check.All(r.Cluster); !res.OK() {
			fmt.Printf("    !! %s invariants (seed %d): %s\n", r.Name, 1000+s, res)
			continue
		}
		sum += r.Metrics[metric]
		n++
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

func e1FSMCoverage() {
	header("e1", "Figure 2: group-creator state machine (see `twfsm` for the full diagram)")
	fmt.Println("    run `go run ./cmd/twfsm` — 15/15 labelled transitions exercised")
}

func e2FailureFreeTraffic() {
	header("e2", "zero membership messages in failure-free periods (paper §1/§4)")
	const cycles = 50
	fmt.Printf("  %4s %18s %18s %24s\n", "N", "membership msgs", "decision msgs", "heartbeat baseline msgs")
	for _, n := range []int{3, 5, 8, 16} {
		member := avg("membership_msgs", func(seed int64) *scenario.Result {
			return scenario.FailureFree(n, seed, cycles)
		})
		dec := avg("decision_msgs", func(seed int64) *scenario.Result {
			return scenario.FailureFree(n, seed, cycles)
		})
		hb := scenario.HeartbeatBaseline(n, cycles, model.DefaultParams(n))
		fmt.Printf("  %4d %18.0f %18.0f %24.0f\n", n, member, dec, hb)
	}
	fmt.Println("  shape: membership column is 0 at every N; a conventional heartbeat")
	fmt.Println("  detector would add the last column on top of the decision traffic.")
}

func e3SingleFailureRecovery() {
	header("e3", "single-failure recovery is fast: detect <=2D, elect <=(N-1) ring hops")
	p := model.DefaultParams(5)
	fmt.Printf("  (D = %v)\n", p.D)
	fmt.Printf("  %4s %16s %14s %16s\n", "N", "recovery (ms)", "recovery/D", "nd messages")
	for _, n := range []int{3, 5, 8, 12, 16} {
		rec := avg("recovery_us", func(seed int64) *scenario.Result { return scenario.SingleCrash(n, seed) })
		ratio := avg("recovery_over_D", func(seed int64) *scenario.Result { return scenario.SingleCrash(n, seed) })
		nds := avg("nd_messages", func(seed int64) *scenario.Result { return scenario.SingleCrash(n, seed) })
		fmt.Printf("  %4d %16.1f %14.2f %16.1f\n", n, rec/1000, ratio, nds)
	}
	fmt.Println("  shape: recovery stays a small multiple of D and grows only with the")
	fmt.Println("  ring length (N-2 no-decision messages), as the paper claims.")
}

func e4FalseSuspicion() {
	header("e4", "a false suspicion is masked: service continues, membership unchanged")
	ws := avg("wrong_suspicions", func(seed int64) *scenario.Result { return scenario.FalseSuspicion(5, seed) })
	masked, runs := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		r := scenario.FalseSuspicion(5, seed)
		if r.Failed != "" {
			continue
		}
		runs++
		if r.Metrics["masked"] == 1 {
			masked++
		}
	}
	fmt.Printf("  wrong-suspicion states entered: %.1f (suspicion was provoked)\n", ws)
	fmt.Printf("  masked without membership change: %d/%d runs\n", masked, runs)
	fmt.Println("  shape: the false alarm is masked in the common case (the paper's")
	fmt.Println("  claim); when the suspect's retransmission is itself lost, the")
	fmt.Println("  protocol excludes and readmits — which the paper explicitly allows.")
}

func e5MultiFailureRecovery() {
	header("e5", "multiple simultaneous failures recover via reconfiguration in ~2 cycles")
	fmt.Printf("  %4s %4s %16s %18s\n", "N", "f", "recovery (ms)", "recovery (cycles)")
	for _, cfg := range []struct{ n, f int }{{8, 2}, {8, 3}, {12, 2}, {12, 4}} {
		rec := avg("recovery_us", func(seed int64) *scenario.Result { return scenario.MultiCrash(cfg.n, cfg.f, seed) })
		cyc := avg("recovery_cycles", func(seed int64) *scenario.Result { return scenario.MultiCrash(cfg.n, cfg.f, seed) })
		fmt.Printf("  %4d %4d %16.1f %18.2f\n", cfg.n, cfg.f, rec/1000, cyc)
	}
	fmt.Println("  shape: recovery is measured in cycles (time-slotted election), not in")
	fmt.Println("  D; the paper's 'a new decider is typically elected in two rounds'.")
}

func e6Formation() {
	header("e6", "initial group formation and rejoin latency")
	fmt.Printf("  %4s %18s %18s\n", "N", "formation (ms)", "rejoin (ms)")
	for _, n := range []int{3, 5, 8, 12, 16} {
		form := avg("formation_us", func(seed int64) *scenario.Result {
			return scenario.FailureFree(n, seed, 1)
		})
		rejoin := avg("rejoin_us", func(seed int64) *scenario.Result { return scenario.Rejoin(n, seed) })
		fmt.Printf("  %4d %18.1f %18.1f\n", n, form/1000, rejoin/1000)
	}
	fmt.Println("  shape: both scale with the cycle length (N slots), since joins and")
	fmt.Println("  admissions ride the time-slotted protocol.")
}

func e7Engines() {
	header("e7", "event-based vs thread-based engine (paper §5)")
	// The protocol core is sequential (one event at a time), so the
	// relevant dispatch cost is the post -> handled round trip.
	measure := func(mk func(engine.Handler) engine.Engine) (perEvent, lifecycle time.Duration) {
		const events = 50_000
		e := mk(func(engine.Event) {})
		start := time.Now()
		for i := uint64(0); i < events; i++ {
			for !e.Post(engine.Event{Type: engine.EventType(i % uint64(engine.NumEventTypes))}) {
				runtime.Gosched()
			}
			for e.Handled() <= i {
				runtime.Gosched()
			}
		}
		perEvent = time.Since(start) / events
		e.Stop()
		const engines = 2000
		start = time.Now()
		for i := 0; i < engines; i++ {
			e := mk(func(engine.Event) {})
			e.Stop()
		}
		lifecycle = time.Since(start) / engines
		return perEvent, lifecycle
	}
	loopEv, loopLife := measure(func(h engine.Handler) engine.Engine { return engine.NewEventLoop(h, 4096) })
	thrEv, thrLife := measure(func(h engine.Handler) engine.Engine { return engine.NewThreaded(h, 512) })
	fmt.Printf("  %-24s %12s %14s %12s\n", "engine", "threads", "ns/event", "setup+teardown")
	fmt.Printf("  %-24s %12d %14d %12v\n", "event loop", 1, loopEv.Nanoseconds(), loopLife)
	fmt.Printf("  %-24s %12d %14d %12v\n", "thread per event type", engine.NumEventTypes, thrEv.Nanoseconds(), thrLife)
	fmt.Printf("  thread-based overhead: %.2fx dispatch, %.1fx lifecycle, %dx concurrency footprint\n",
		float64(thrEv)/float64(loopEv), float64(thrLife)/float64(loopLife), engine.NumEventTypes)
	fmt.Println("  shape: the event loop wins on every axis, as the paper found — though")
	fmt.Println("  Go's goroutines shrink the dispatch gap the 1998 IRIX kernel threads")
	fmt.Println("  showed; the footprint and lifecycle costs still scale with the number")
	fmt.Println("  of event types, which is the paper's stated complaint.")
}

func e8ViewChangePurge() {
	header("e8", "order & atomicity across view changes (§4.3 purge machinery)")
	sems := []oal.Semantics{
		{Order: oal.Unordered, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.StrongAtomicity},
	}
	fmt.Printf("  %-18s %12s %16s %16s\n", "semantics", "delivered", "p50 latency(ms)", "p99 latency(ms)")
	for _, sem := range sems {
		name := sem.String()
		del := avg("delivered", func(seed int64) *scenario.Result { return scenario.Workload(5, seed, sem, 40) })
		p50 := avg("latency_p50_us", func(seed int64) *scenario.Result { return scenario.Workload(5, seed, sem, 40) })
		p99 := avg("latency_p99_us", func(seed int64) *scenario.Result { return scenario.Workload(5, seed, sem, 40) })
		fmt.Printf("  %-18s %12.0f %16.2f %16.2f\n", name, del, p50/1000, p99/1000)
	}
	fmt.Println("  shape: stronger semantics trade latency for guarantees; every")
	fmt.Println("  delivered count is complete and every run passes the §4.3 validators")
	fmt.Println("  (purge safety, order agreement, atomicity convergence).")
}

func e9Properties() {
	header("e9", "fail-aware membership properties under randomized faults (§3)")
	violations := 0
	runs := 0
	for seed := int64(0); seed < int64(*flagSeeds*4); seed++ {
		for _, run := range []func(int64) *scenario.Result{
			func(s int64) *scenario.Result { return scenario.SingleCrash(5, s) },
			func(s int64) *scenario.Result { return scenario.MultiCrash(8, 2, s) },
			func(s int64) *scenario.Result { return scenario.Partition(5, s) },
			func(s int64) *scenario.Result { return scenario.Rejoin(5, s) },
			func(s int64) *scenario.Result { return scenario.SlowMember(5, s) },
			func(s int64) *scenario.Result { return scenario.Chaos(scenario.DefaultChaos(5, s)) },
		} {
			r := run(seed)
			runs++
			if r.Failed != "" {
				violations++
				continue
			}
			if res := check.All(r.Cluster); !res.OK() {
				violations++
				fmt.Printf("    !! %s\n", res)
			}
		}
	}
	fmt.Printf("  fault scenarios checked: %d, invariant violations: %d\n", runs, violations)
	fmt.Println("  invariants: view agreement, majority views, at-most-one-decider,")
	fmt.Println("  total/time order, FIFO, no-dup, purge safety, strict atomicity.")
}
