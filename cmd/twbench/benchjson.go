// Machine-readable benchmarking: `twbench -json` runs the hot-path
// micro-benchmarks (engine dispatch, observability emit, histogram
// observe) plus a short live-cluster run, and writes the results as
// BENCH_<date>.json so the perf trajectory accumulates across PRs.
// `-compare <baseline.json> -threshold <x>` turns the same run into a
// regression smoke test for CI: exit non-zero when any micro-benchmark
// slows down by more than the (deliberately generous) threshold.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"timewheel"
	"timewheel/internal/engine"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/obs"
	"timewheel/internal/scenario"
	"timewheel/internal/transport"
	"timewheel/internal/wire"
)

// benchResult is one micro-benchmark measurement, the stable unit the
// baseline comparison keys on.
type benchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Iterations  int    `json:"iterations"`
}

// histSummary is a live-cluster latency distribution (nanoseconds).
// These are wall-clock dependent and recorded for trend-watching only;
// they are excluded from the regression comparison.
type histSummary struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// adaptiveSummary records what the adaptive-timeout estimators settled
// on during the live-cluster run: the budgets the guard actually
// enforced vs the statically-configured ones, the scheduling-noise
// estimates behind them, and the widest per-peer surveillance deadline.
// Wall-clock dependent, trend-watching only — excluded from the
// regression comparison like the histograms.
type adaptiveSummary struct {
	Widened           uint64 `json:"widened"`
	Shrunk            uint64 `json:"shrunk"`
	FlapBoosts        uint64 `json:"flap_boosts"`
	ExpectOverwrites  uint64 `json:"expect_overwrites"`
	HandlerBudgetNs   int64  `json:"handler_budget_ns"`
	TimerLateBudgetNs int64  `json:"timer_late_budget_ns"`
	NoiseHandlerNs    int64  `json:"noise_handler_ns"`
	NoiseLatenessNs   int64  `json:"noise_lateness_ns"`
	MaxPeerDeadlineNs int64  `json:"max_peer_deadline_ns"`
}

// slotBatchSummary records the slot-boundary micro-batching headline
// number: datagrams over an identical loaded netsim steady state with
// the coalescer off vs on (scenario.SlotBatchLoad), plus the honesty
// counters — LateFlushes must stay 0 and MaxHold within one slot.
// Deterministic (simulated clock), but recorded alongside the
// histograms for trend-watching rather than the regression gate.
type slotBatchSummary struct {
	PerEventDatagrams uint64  `json:"per_event_datagrams"`
	BatchedDatagrams  uint64  `json:"batched_datagrams"`
	Reduction         float64 `json:"reduction"`
	MaxHoldNs         int64   `json:"max_hold_ns"`
	LateFlushes       uint64  `json:"late_flushes"`
}

type benchReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	Benchmarks []benchResult     `json:"benchmarks"`
	Histograms []histSummary     `json:"histograms"`
	Adaptive   *adaptiveSummary  `json:"adaptive,omitempty"`
	SlotBatch  *slotBatchSummary `json:"slot_batch,omitempty"`
}

func runBenchJSON(outDir, baseline string, threshold float64) int {
	report := benchReport{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	micro := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"EventLoopDispatch", benchEventLoopDispatch},
		{"ThreadedDispatch", benchThreadedDispatch},
		{"ObsEmitDisabled", benchObsEmitDisabled},
		{"ObsEmitRingEnabled", benchObsEmitRingEnabled},
		{"HistogramObserve", benchHistogramObserve},
		{"CounterInc", benchCounterInc},
		{"WireEncodeDecision", benchWireEncodeDecision},
		{"WireEncodeSuspicion", benchWireEncodeSuspicion},
		{"WireEncodeCausalTagged", benchWireEncodeCausalTagged},
		{"WireDecodeDecision", benchWireDecodeDecision},
		{"WireRoundTripDelta", benchWireRoundTripDelta},
		{"FabricDemux", benchFabricDemux},
		{"ShardedFabricDispatch", benchShardedFabricDispatch},
		{"MmsgSend", benchMmsgSend},
	}
	for _, m := range micro {
		r := testing.Benchmark(m.fn)
		br := benchResult{
			Name:        m.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, br)
		fmt.Printf("  %-22s %10d ns/op %6d B/op %4d allocs/op\n",
			m.name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
	}

	hists, ad, err := liveClusterHistograms()
	if err != nil {
		fmt.Fprintf(os.Stderr, "live-cluster run: %v\n", err)
		return 1
	}
	report.Histograms = hists
	report.Adaptive = ad
	for _, h := range hists {
		fmt.Printf("  %-42s n=%-6d p50=%-8s p99=%-8s max=%s\n",
			h.Name, h.Count,
			time.Duration(h.P50Ns), time.Duration(h.P99Ns), time.Duration(h.MaxNs))
	}
	if ad != nil {
		fmt.Printf("  adaptive: budgets handler=%s timer=%s (noise handler=%s lateness=%s) widened=%d shrunk=%d maxPeerDeadline=%s\n",
			time.Duration(ad.HandlerBudgetNs), time.Duration(ad.TimerLateBudgetNs),
			time.Duration(ad.NoiseHandlerNs), time.Duration(ad.NoiseLatenessNs),
			ad.Widened, ad.Shrunk, time.Duration(ad.MaxPeerDeadlineNs))
	}

	perEvent, _, errOff := scenario.SlotBatchLoad(false)
	batched, stats, errOn := scenario.SlotBatchLoad(true)
	if errOff != nil || errOn != nil {
		fmt.Fprintf(os.Stderr, "slot-batch run: %v %v\n", errOff, errOn)
		return 1
	}
	report.SlotBatch = &slotBatchSummary{
		PerEventDatagrams: perEvent,
		BatchedDatagrams:  batched,
		Reduction:         1 - float64(batched)/float64(perEvent),
		MaxHoldNs:         int64(stats.MaxHold.Std()),
		LateFlushes:       stats.LateFlushes,
	}
	fmt.Printf("  slot-batch: datagrams %d -> %d (-%.0f%%), max hold %s, late flushes %d\n",
		perEvent, batched, 100*report.SlotBatch.Reduction,
		stats.MaxHold.Std(), stats.LateFlushes)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "out dir: %v\n", err)
		return 1
	}
	path := filepath.Join(outDir, "BENCH_"+report.Date+".json")
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encode: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)

	if baseline == "" {
		return 0
	}
	return compareBaseline(report, baseline, threshold)
}

// compareBaseline flags micro-benchmarks that regressed by more than
// threshold x vs the committed baseline. The threshold is generous on
// purpose: CI machines are noisy, and the point is catching order-of-
// magnitude mistakes (an allocation on the emit path, a lock on the
// dispatch path), not 10% drift.
func compareBaseline(cur benchReport, baselinePath string, threshold float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
		return 1
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", baselinePath, err)
		return 1
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	regressions := 0
	for _, b := range cur.Benchmarks {
		old, ok := byName[b.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		ratio := float64(b.NsPerOp) / float64(old.NsPerOp)
		status := "ok"
		if ratio > threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("  compare %-22s %10d -> %10d ns/op (%.2fx, limit %.1fx) %s\n",
			b.Name, old.NsPerOp, b.NsPerOp, ratio, threshold, status)
		// A newly-allocating zero-alloc path is a regression regardless
		// of wall time — it is the property the acceptance criteria pin.
		if old.AllocsPerOp == 0 && b.AllocsPerOp > 0 {
			fmt.Printf("  compare %-22s now allocates (%d allocs/op, was 0) REGRESSION\n",
				b.Name, b.AllocsPerOp)
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark regression(s) vs %s\n", regressions, baselinePath)
		return 1
	}
	fmt.Printf("no regressions vs %s\n", baselinePath)
	return 0
}

// The protocol core handles one event at a time, so the number that
// matters is the post -> handled round trip through the engine.
func benchEventLoopDispatch(b *testing.B) {
	benchDispatch(b, engine.NewEventLoop(func(engine.Event) {}, 4096))
}

func benchThreadedDispatch(b *testing.B) {
	benchDispatch(b, engine.NewThreaded(func(engine.Event) {}, 512))
}

func benchDispatch(b *testing.B, e engine.Engine) {
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !e.Post(engine.Event{Type: engine.EventType(i % int(engine.NumEventTypes))}) {
			runtime.Gosched()
		}
		for e.Handled() <= uint64(i) {
			runtime.Gosched()
		}
	}
}

// The cost every instrumented hot path pays when nobody is watching —
// the acceptance criteria require this to stay allocation-free.
func benchObsEmitDisabled(b *testing.B) {
	t := obs.NewTracer(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Emit(obs.EvStateChange, 0, int64(i), 0)
	}
}

func benchObsEmitRingEnabled(b *testing.B) {
	t := obs.NewTracer(1024)
	defer t.EnableRing()()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Emit(obs.EvStateChange, 0, int64(i), 0)
	}
}

func benchHistogramObserve(b *testing.B) {
	h := obs.NewHistogram(obs.LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%1000) * 1000)
	}
}

func benchCounterInc(b *testing.B) {
	var c obs.Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// --- Wire hot path ------------------------------------------------------------
//
// The pooled codec's acceptance criterion is 0 allocs/op at steady
// state; the baseline comparison's zero-alloc gate turns any new
// allocation here into a CI failure.

// benchDecision builds the heaviest steady-state frame: a decision with
// a 32-entry unstable-oal window. delta=true instead builds what wire v5
// rotation actually ships — four changed entries against that baseline.
func benchDecision(delta bool) *wire.Decision {
	entries, ordBase, seqBase := 32, 0, 0
	if delta {
		entries, ordBase, seqBase = 4, 40, 1000
	}
	l := oal.NewList()
	for i := 0; i < entries; i++ {
		id := oal.ProposalID{Proposer: model.ProcessID(i % 5), Seq: uint64(seqBase + i)}
		l.AppendUpdate(id, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
			model.Time(1000+i), oal.Ordinal(ordBase+i), oal.AckSet(0b10111))
	}
	dec := &wire.Decision{
		Header:  wire.Header{From: 2, SendTS: 5_000_000},
		Group:   model.NewGroup(7, []model.ProcessID{0, 1, 2, 3, 4}),
		OAL:     *l,
		Alive:   []model.ProcessID{0, 1, 2, 3, 4},
		Lineage: 7,
	}
	if delta {
		dec.BaseTS = 4_000_000
		dec.TruncBelow = 3
	}
	return dec
}

func benchWireEncodeDecision(b *testing.B) {
	dec := benchDecision(false)
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeTo(buf, dec)
	}
}

// The v8 surveillance gossip emit path: a Suspicion is the smallest
// fixed-size control frame and rides the same pooled encoder. The
// zero-alloc gate keeps the gossip fan-out (k unicasts per suspicion
// event) off the allocator even at large N.
func benchWireEncodeSuspicion(b *testing.B) {
	sus := &wire.Suspicion{
		Header:      wire.Header{From: 3, SendTS: 5_000_000},
		Suspect:     7,
		Origin:      3,
		Incarnation: 42,
		OriginTS:    5_000_000,
	}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeTo(buf, sus)
	}
}

// The v7 tagged emit path: the same heavy decision with a causal trace
// context stamped into its header. The context is 16 flat bytes copied
// by value — the zero-alloc gate below makes any allocation the tagging
// introduces over the plain v6 encode a CI failure.
func benchWireEncodeCausalTagged(b *testing.B) {
	dec := benchDecision(false)
	dec.Ctx = wire.Causal{Origin: 2, Slot: 417, TS: 5_000_000}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeTo(buf, dec)
	}
}

func benchWireDecodeDecision(b *testing.B) {
	frame := wire.Encode(benchDecision(false))
	var dc wire.Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrunk is a loopback trunk for the demux benchmark: the demux
// registers its receiver here and the benchmark drives it directly.
type benchTrunk struct{ recv transport.Receiver }

func (t *benchTrunk) Self() model.ProcessID                 { return 0 }
func (t *benchTrunk) Broadcast([]byte) error                { return nil }
func (t *benchTrunk) Unicast(model.ProcessID, []byte) error { return nil }
func (t *benchTrunk) SetReceiver(r transport.Receiver)      { t.recv = r }
func (t *benchTrunk) Close() error                          { return nil }

// benchFabricDemux measures the fabric receive hot path: one grouped
// (wire v6) datagram of four coalesced frames routed through the demux
// to its group port. Acceptance: 0 allocs/op — the multi-group fabric
// must not tax the wire path it multiplexes.
func benchFabricDemux(b *testing.B) {
	trunk := &benchTrunk{}
	d := transport.NewDemux(trunk)
	sink := 0
	d.Port(3).SetReceiver(func(frame []byte) { sink += len(frame) })
	var c wire.Coalescer
	c.SetGroup(3)
	for i := 0; i < 4; i++ {
		if !c.TryAppend(&wire.Nack{Header: wire.Header{From: model.ProcessID(i), SendTS: model.Time(i)}}) {
			b.Fatal("TryAppend refused")
		}
	}
	data := append([]byte(nil), c.Datagram()...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trunk.recv(data)
	}
	_ = sink
	_ = d
}

// benchShardedFabricDispatch measures the sharded fabric runtime's unit
// of work: one event posted to one of eight group engines multiplexed
// onto a four-shard pool and dispatched by the shard's goroutine.
// Acceptance: 0 allocs/op — the shard queue item travels by value end
// to end, so hosting many groups on few cores taxes only the channel.
func benchShardedFabricDispatch(b *testing.B) {
	pool := engine.NewPool(4, 4096)
	defer pool.Close()
	const groups = 8
	engines := make([]*engine.Sharded, groups)
	for i := range engines {
		engines[i] = pool.Engine(i, func(engine.Event) {})
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
	}()
	posted := make([]uint64, groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engines[i%groups]
		for !e.Post(engine.Event{Type: engine.EventType(i % int(engine.NumEventTypes))}) {
			runtime.Gosched()
		}
		posted[i%groups]++
		for e.Handled() < posted[i%groups] {
			runtime.Gosched()
		}
	}
}

// benchMmsgSend measures the batched UDP send path: a four-destination
// flush through SendBatch — one sendmmsg kernel crossing on 64-bit
// linux, the portable per-datagram loop elsewhere. Acceptance:
// 0 allocs/op — peer sockaddrs are pre-resolved at transport creation
// and the iovec/mmsghdr arrays are reused across flushes.
func benchMmsgSend(b *testing.B) {
	const peers = 4
	addrs := map[model.ProcessID]string{0: "127.0.0.1:0"}
	for i := 1; i <= peers; i++ {
		rx, err := transport.NewUDP(model.ProcessID(i),
			map[model.ProcessID]string{model.ProcessID(i): "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		defer rx.Close()
		rx.SetReceiver(func([]byte) {})
		addrs[model.ProcessID(i)] = rx.LocalAddr()
	}
	tx, err := transport.NewUDP(0, addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer tx.Close()
	payload := make([]byte, 256)
	msgs := make([]transport.BatchMsg, peers)
	for i := range msgs {
		msgs[i] = transport.BatchMsg{To: model.ProcessID(i + 1), Data: payload}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.SendBatch(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireRoundTripDelta(b *testing.B) {
	dec := benchDecision(true)
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	var dc wire.Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := wire.EncodeTo(buf, dec)
		if _, err := dc.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// liveClusterHistograms forms a three-node in-memory cluster with
// adaptive timeouts on (guard in observe mode, budgets driven by the
// scheduling-noise estimator), pushes a burst of ordered broadcasts
// through it, and snapshots the latency distributions and adaptation
// state the observability layer accumulated — the same numbers /metrics
// would export from a real deployment.
func liveClusterHistograms() ([]histSummary, *adaptiveSummary, error) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
	defer hub.Close()
	const n = 3
	nodes := make([]*timewheel.Node, n)
	for i := 0; i < n; i++ {
		node, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: n,
			Transport:   hub.Transport(i),
			Params:      timewheel.Params{Delta: 2 * time.Millisecond, D: 4 * time.Millisecond},
			Adaptive:    timewheel.AdaptiveConfig{Enabled: true},
			// No explicit budgets: the noise estimator drives them.
			Guard: timewheel.GuardConfig{Enabled: true, Enforce: false},
		})
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = node
		defer node.Stop()
	}
	for _, node := range nodes {
		node.Start()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		formed := true
		for _, node := range nodes {
			if v, ok := node.CurrentView(); !ok || len(v.Members) < n {
				formed = false
			}
		}
		if formed {
			break
		}
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("cluster never formed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		err := nodes[i%n].Propose([]byte("bench"), timewheel.TotalOrder, timewheel.Strong)
		if errors.Is(err, timewheel.ErrNotMember) {
			// A transient wrong suspicion mid-burst (easy to provoke on
			// a loaded single-CPU runner with these tight params) drops
			// the proposer out of the group until its automatic rejoin;
			// skip the slot — this sampler collects histograms, it is
			// not a liveness assertion.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	var out []histSummary
	for _, name := range []string{
		"timewheel_handler_latency_seconds",
		"timewheel_timer_lateness_seconds",
		"timewheel_view_install_latency_seconds",
		"timewheel_decision_latency_seconds",
		"timewheel_delivery_lag_seconds",
		"timewheel_peer_delay_seconds",
	} {
		hs, ok := nodes[0].HistogramStat(name)
		if !ok {
			continue
		}
		out = append(out, histSummary{
			Name:  name,
			Count: int64(hs.Count),
			P50Ns: hs.P50,
			P90Ns: hs.P90,
			P99Ns: hs.P99,
			MaxNs: hs.Max,
		})
	}
	st := nodes[0].AdaptiveStats()
	ad := &adaptiveSummary{
		Widened:           st.Widened,
		Shrunk:            st.Shrunk,
		FlapBoosts:        st.FlapBoosts,
		ExpectOverwrites:  st.ExpectOverwrites,
		HandlerBudgetNs:   int64(st.HandlerBudget),
		TimerLateBudgetNs: int64(st.TimerLateBudget),
		NoiseHandlerNs:    int64(st.NoiseHandler),
		NoiseLatenessNs:   int64(st.NoiseLateness),
	}
	for _, span := range st.PeerDeadlineSpans {
		if int64(span) > ad.MaxPeerDeadlineNs {
			ad.MaxPeerDeadlineNs = int64(span)
		}
	}
	return out, ad, nil
}
