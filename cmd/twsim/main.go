// Command twsim runs a named timewheel protocol scenario on the
// deterministic simulator and prints its metrics, the membership
// timeline, and the protocol invariant report.
//
// Usage:
//
//	twsim -scenario single-crash -n 5 -seed 1
//	twsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"timewheel/internal/check"
	"timewheel/internal/livechaos"
	"timewheel/internal/oal"
	"timewheel/internal/scenario"
	"timewheel/internal/trace"
)

type runner func(n int, seed int64) *scenario.Result

var scenarios = map[string]struct {
	desc string
	run  runner
}{
	"failure-free": {
		"formed group runs with zero membership messages",
		func(n int, seed int64) *scenario.Result { return scenario.FailureFree(n, seed, 20) },
	},
	"single-crash": {
		"decider crashes; single-failure election recovers",
		scenario.SingleCrash,
	},
	"false-suspicion": {
		"a decision is lost; wrong-suspicion masks the false alarm",
		scenario.FalseSuspicion,
	},
	"multi-crash": {
		"two simultaneous crashes; reconfiguration election recovers",
		func(n int, seed int64) *scenario.Result { return scenario.MultiCrash(n, 2, seed) },
	},
	"rejoin": {
		"a crashed member recovers and is readmitted with state transfer",
		scenario.Rejoin,
	},
	"durable-rejoin": {
		"a durable member is killed, restarts from its WAL and rejoins via a replay delta",
		scenario.DurableRejoin,
	},
	"partition": {
		"majority/minority split, then healing",
		scenario.Partition,
	},
	"workload": {
		"total-order/strong-atomicity broadcast load on a stable group",
		func(n int, seed int64) *scenario.Result {
			return scenario.Workload(n, seed, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}, 50)
		},
	},
	"slow-member": {
		"one member suffers chronic performance failures (3x delta lag)",
		scenario.SlowMember,
	},
	"chaos": {
		"randomized crashes, recoveries, partitions and proposals",
		func(n int, seed int64) *scenario.Result { return scenario.Chaos(scenario.DefaultChaos(n, seed)) },
	},
	"surveil-soak": {
		"large-N k-successor surveillance soak: drifting degraded link, forged suspicions, crashes, partition",
		scenario.SurveilSoak,
	},
	"surveil-scaling": {
		"suspicion gossip grows O(N*k) while the all-to-all channel grows O(N^2)",
		func(_ int, seed int64) *scenario.Result { return scenario.SurveilScaling(seed) },
	},
}

func main() {
	var (
		name     = flag.String("scenario", "single-crash", "scenario to run (see -list)")
		n        = flag.Int("n", 5, "team size N")
		seed     = flag.Int64("seed", 1, "simulation seed")
		list     = flag.Bool("list", false, "list scenarios and exit")
		quiet    = flag.Bool("quiet", false, "suppress the timeline")
		jsonOut  = flag.Bool("json", false, "emit the timeline as JSON lines")
		script   = flag.String("script", "", "run a fault-schedule script file instead of a named scenario")
		duration = flag.Duration("duration", 1500*time.Millisecond, "nemesis phase length (live-chaos only)")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(scenarios))
		for k := range scenarios {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("%-16s %s\n", k, scenarios[k].desc)
		}
		fmt.Printf("%-16s %s\n", "live-chaos",
			"live cluster (real clocks and goroutines) under chaos middleware, a nemesis, and an injected stall")
		return
	}

	if *name == "live-chaos" {
		// Not a simulator scenario: real nodes on real clocks, so it has
		// its own runner and its own (wall-time-adapted) invariant check.
		runLiveChaos(*n, *seed, *duration, *quiet)
		return
	}

	var r *scenario.Result
	if *script != "" {
		text, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read script: %v\n", err)
			os.Exit(2)
		}
		parsed, err := scenario.ParseScript(string(text))
		if err != nil {
			fmt.Fprintf(os.Stderr, "parse script: %v\n", err)
			os.Exit(2)
		}
		r = parsed.Run(*n, *seed)
	} else {
		sc, ok := scenarios[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (use -list)\n", *name)
			os.Exit(2)
		}
		r = sc.run(*n, *seed)
	}
	fmt.Printf("scenario: %s\n", r.Name)
	if r.Failed != "" {
		fmt.Printf("FAILED: %s\n", r.Failed)
	}
	fmt.Println("metrics:")
	for _, k := range r.MetricNames() {
		fmt.Printf("  %-24s %12.1f\n", k, r.Metrics[k])
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, e := range trace.Collect(r.Cluster, trace.Options{}) {
			enc.Encode(map[string]any{ //nolint:errcheck
				"at_us": int64(e.At),
				"node":  int(e.Node),
				"kind":  e.Kind.String(),
				"text":  e.Text,
			})
		}
	} else if !*quiet {
		events := trace.Collect(r.Cluster, trace.Options{
			Kinds: []trace.Kind{trace.KindState, trace.KindView, trace.KindFault},
		})
		fmt.Println("protocol timeline:")
		trace.Render(os.Stdout, events) //nolint:errcheck
		fmt.Println("event summary (including deliveries and decider tenures):")
		fmt.Print(trace.Summary(trace.Collect(r.Cluster, trace.Options{})))
	}

	res := check.All(r.Cluster)
	fmt.Printf("invariants: %s\n", res)
	if r.Failed != "" || !res.OK() {
		os.Exit(1)
	}
}

// runLiveChaos drives internal/livechaos: a real N-node cluster on the
// in-memory hub, chaos middleware with a scripted nemesis, an injected
// event-goroutine stall, and the wall-clock-adapted membership checks.
func runLiveChaos(n int, seed int64, duration time.Duration, quiet bool) {
	logf := func(string, ...any) {}
	if !quiet {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	rep, err := livechaos.Run(livechaos.Options{
		N: n, Seed: seed, Duration: duration, Victim: -1, Logf: logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "live-chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("scenario: live-chaos")
	fmt.Println("metrics:")
	fmt.Printf("  %-24s %12d\n", "victim", rep.Victim)
	fmt.Printf("  %-24s %12d\n", "self_exclusions", rep.SelfExclusions)
	fmt.Printf("  %-24s %12d\n", "warm_rejoins", rep.WarmRejoins)
	fmt.Printf("  %-24s %12d\n", "chaos_dropped", rep.Chaos.Dropped)
	fmt.Printf("  %-24s %12d\n", "chaos_blocked", rep.Chaos.Blocked)
	fmt.Printf("  %-24s %12d\n", "chaos_reordered", rep.Chaos.Reordered)
	for i, d := range rep.Delivered {
		fmt.Printf("  delivered[%d]%13s %12d\n", i, "", d)
	}
	for i, g := range rep.Guard {
		fmt.Printf("  guard[%d]: overruns=%d lateTimers=%d selfExclusions=%d suppressed=%d tripped=%v\n",
			i, g.Overruns, g.LateTimers, g.SelfExclusions, g.SuppressedSends, g.Tripped)
	}
	fmt.Printf("converged: %v\n", rep.Converged)
	fmt.Printf("invariants: %s\n", rep.Invariants)
	if !rep.Converged || !rep.Invariants.OK() {
		os.Exit(1)
	}
}
