// Command twdashcheck validates a Grafana dashboard against the node's
// actual /metrics catalog. It boots a throwaway in-memory node with
// every optional subsystem enabled (guard, adaptive timeouts, group
// label), scrapes its metric families, and cross-checks the dashboard:
//
//   - every timewheel_* name the dashboard references must exist in the
//     scraped catalog (a typo or a renamed metric fails the build);
//   - every scraped family must be referenced somewhere in the
//     dashboard (adding a metric forces a dashboard update).
//
// Usage:
//
//	twdashcheck docs/grafana/timewheel.json
//	twdashcheck -list          # print the catalog and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"timewheel"
)

func main() {
	list := flag.Bool("list", false, "print the scraped metric catalog and exit")
	flag.Parse()

	catalog, err := scrapeCatalog()
	if err != nil {
		fmt.Fprintf(os.Stderr, "twdashcheck: building catalog: %v\n", err)
		os.Exit(2)
	}
	if *list {
		for _, name := range catalog {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: twdashcheck <dashboard.json>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "twdashcheck: %v\n", err)
		os.Exit(2)
	}

	known := make(map[string]bool, len(catalog))
	for _, name := range catalog {
		known[name] = true
	}
	// Histogram families expose _bucket/_sum/_count series; counters may
	// be referenced without promQL suffix stripping. Accept a reference
	// if the name or its de-suffixed base is a scraped family.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				return strings.TrimSuffix(name, suf)
			}
		}
		return name
	}

	refs := regexp.MustCompile(`timewheel_[a-z0-9_]+`).FindAllString(string(raw), -1)
	referenced := make(map[string]bool)
	var unknown []string
	for _, ref := range refs {
		b := base(ref)
		if !known[b] {
			unknown = append(unknown, ref)
			continue
		}
		referenced[b] = true
	}
	sort.Strings(unknown)
	unknown = dedup(unknown)
	var uncovered []string
	for _, name := range catalog {
		if !referenced[name] {
			uncovered = append(uncovered, name)
		}
	}

	for _, name := range unknown {
		fmt.Fprintf(os.Stderr, "unknown metric referenced: %s\n", name)
	}
	for _, name := range uncovered {
		fmt.Fprintf(os.Stderr, "catalog family not on the dashboard: %s\n", name)
	}
	if len(unknown) > 0 || len(uncovered) > 0 {
		fmt.Fprintf(os.Stderr, "twdashcheck: FAIL (%d unknown, %d uncovered of %d families)\n",
			len(unknown), len(uncovered), len(catalog))
		os.Exit(1)
	}
	fmt.Printf("twdashcheck: OK — %d metric families, all referenced\n", len(catalog))
}

// scrapeCatalog boots a maximal throwaway cluster — every optional
// subsystem on, and actually formed, so lazily-created families (FSM
// transition counters materialize on the first transition) are present
// — and extracts the metric family names from node 0's exposition.
func scrapeCatalog() ([]string, error) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
	defer hub.Close()
	dir, err := os.MkdirTemp("", "twdashcheck")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	nodes := make([]*timewheel.Node, 3)
	for i := range nodes {
		cfg := timewheel.Config{
			ID: i, ClusterSize: 3,
			Transport: hub.Transport(i),
			Adaptive:  timewheel.AdaptiveConfig{Enabled: true},
			Guard: timewheel.GuardConfig{
				Enabled:       true,
				HandlerBudget: 50 * time.Millisecond,
			},
		}
		if i == 0 {
			cfg.DataDir = dir
		}
		nodes[i], err = timewheel.NewNode(cfg)
		if err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		defer n.Stop()
		n.Start()
	}
	n := nodes[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := n.CurrentView(); ok && len(v.Members) == 3 {
			n.Propose([]byte("x"), timewheel.TotalOrder, timewheel.Strong) //nolint:errcheck
			time.Sleep(100 * time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("throwaway cluster never formed a view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sb strings.Builder
	if err := n.WriteMetrics(&sb); err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			if name, _, ok := strings.Cut(rest, " "); ok {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return dedup(names), nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
