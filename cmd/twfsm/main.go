// Command twfsm regenerates the paper's Figure 2 — the state transition
// diagram of the group creator — from the implementation itself: it runs
// the scripted fault scenarios, records every state transition the
// machines take, and prints them as a table or a Graphviz dot graph,
// flagging any labelled transition of the figure that was not exercised.
//
// Usage:
//
//	twfsm            # transition table + coverage report
//	twfsm -dot       # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"timewheel/internal/broadcast"
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// newBroadcast builds the broadcast substrate for a scripted machine.
func newBroadcast(self model.ProcessID, params model.Params) *broadcast.Broadcast {
	return broadcast.New(self, params, broadcast.Config{})
}

type transition struct{ from, to member.State }

// figure2 lists the labelled transitions of the paper's Figure 2 (plus
// the start arrow into join, which is implicit).
var figure2 = []struct {
	t     transition
	label string
}{
	{transition{member.StateJoin, member.StateFailureFree}, "D (first decision received / group formed)"},
	{transition{member.StateFailureFree, member.State1FailureReceive}, "timeout"},
	{transition{member.StateFailureFree, member.State1FailureSend}, "timeout & NDsend"},
	{transition{member.StateFailureFree, member.StateWrongSuspicion}, "ND from expected sender"},
	{transition{member.StateFailureFree, member.StateNFailure}, "R from expected sender"},
	{transition{member.State1FailureReceive, member.State1FailureSend}, "ND (ring predecessor), NDsend"},
	{transition{member.State1FailureReceive, member.StateWrongSuspicion}, "D from suspect"},
	{transition{member.State1FailureReceive, member.StateFailureFree}, "D (election win or fresh decision)"},
	{transition{member.State1FailureReceive, member.StateNFailure}, "timeout, R"},
	{transition{member.State1FailureSend, member.StateFailureFree}, "D"},
	{transition{member.State1FailureSend, member.StateNFailure}, "timeout, R"},
	{transition{member.StateWrongSuspicion, member.StateFailureFree}, "ND from predecessor (take over) or D"},
	{transition{member.StateWrongSuspicion, member.StateNFailure}, "timeout, R"},
	{transition{member.StateNFailure, member.StateFailureFree}, "D (reconfiguration win or inclusion)"},
	{transition{member.StateNFailure, member.StateJoin}, "excluded: D from all new members"},
}

// exercise runs the fault scenarios that traverse the whole diagram and
// returns the set of transitions actually taken, with counts.
func exercise() map[transition]int {
	seen := make(map[transition]int)
	collect := func(c *node.Cluster) {
		for _, nd := range c.Nodes {
			for _, s := range nd.StateLog {
				seen[transition{s.From, s.To}]++
			}
		}
	}
	mk := func(n int, seed int64) *node.Cluster {
		return node.NewCluster(node.Options{Seed: seed, Params: model.DefaultParams(n), PerfectClocks: true})
	}
	cyc := func(c *node.Cluster, k int) model.Duration {
		return model.Duration(k) * c.Params.CycleLen()
	}

	// Formation + single crash (join->FF, FF->1FR/1FS, 1FR->1FS, ->FF).
	c := mk(5, 1)
	c.Start()
	c.Run(cyc(c, 4))
	c.Crash(2)
	c.Run(cyc(c, 4))
	collect(c)

	// False suspicion (FF->WS, 1FR->WS, WS->FF).
	c = mk(5, 2)
	c.Start()
	c.Run(cyc(c, 4))
	dropping := true
	c.Net.AddFilter(func(from, to model.ProcessID, m wire.Message) (netsim.Verdict, model.Duration) {
		switch m.Kind() {
		case wire.KindDecision:
			if dropping {
				return netsim.Drop, 0
			}
		case wire.KindNoDecision:
			dropping = false
		}
		return netsim.Pass, 0
	})
	c.Run(cyc(c, 4))
	c.Net.ClearFilters()
	c.Run(cyc(c, 2))
	collect(c)

	// Double crash (->NF, NF->FF).
	c = mk(5, 3)
	c.Start()
	c.Run(cyc(c, 4))
	c.Crash(1)
	c.Crash(2)
	c.Run(cyc(c, 8))
	collect(c)

	// Partition + heal (NF->join via exclusion, rejoin).
	c = mk(5, 4)
	c.Start()
	c.Run(cyc(c, 4))
	c.Net.Partition([]model.ProcessID{0, 1, 2}, []model.ProcessID{3, 4})
	c.Run(cyc(c, 10))
	c.Net.Heal()
	c.Run(cyc(c, 12))
	collect(c)

	// The remaining transitions need precise interleavings that whole-
	// cluster runs rarely produce; drive single machines directly.
	for t, n := range scriptedTransitions() {
		seen[t] += n
	}
	return seen
}

// scriptedEnv is a minimal member.Env for machine-level scripts.
type scriptedEnv struct{ now model.Time }

func (e *scriptedEnv) Now() model.Time                       { return e.now }
func (e *scriptedEnv) Broadcast(wire.Message)                {}
func (e *scriptedEnv) Unicast(model.ProcessID, wire.Message) {}
func (e *scriptedEnv) SetTimer(member.TimerID, model.Time)   {}
func (e *scriptedEnv) CancelTimer(member.TimerID)            {}

// scriptedTransitions drives machines through the transitions Figure 2
// labels that depend on exact message interleavings: FF->NF (R from
// expected sender), 1FS->NF (ring stall after sending ND), WS->NF
// (stall while masking).
func scriptedTransitions() map[transition]int {
	seen := make(map[transition]int)
	params := model.DefaultParams(5)
	boot := func(self model.ProcessID) (*member.Machine, *scriptedEnv) {
		env := &scriptedEnv{now: 1_000_000}
		m := member.New(self, params, member.Config{Hooks: member.Hooks{
			StateChange: func(from, to member.State, _ model.Time) {
				seen[transition{from, to}]++
			},
		}}, env, newBroadcast(self, params))
		m.Start()
		g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4})
		l := oal.NewList()
		l.AppendMembership(g)
		m.OnMessage(&wire.Decision{
			Header: wire.Header{From: 0, SendTS: env.now},
			Group:  g, OAL: *l, Alive: g.Members,
		})
		return m, env
	}
	timeout := func(m *member.Machine, env *scriptedEnv) {
		_, deadline, _ := m.Detector().Expected()
		env.now = deadline.Add(2)
		m.OnTimer(member.TimerExpect)
	}

	// FF -> NF: reconfiguration from the expected sender.
	m, env := boot(3)
	env.now += 1000
	m.OnMessage(&wire.Reconfig{
		Header:       wire.Header{From: 1, SendTS: env.now},
		ReconfigList: []model.ProcessID{1},
		GroupSeq:     1,
	})

	// 1FS -> NF: the ND sender's ring stalls.
	m, env = boot(2) // successor of expected sender p1
	timeout(m, env)  // sends ND, 1FS
	timeout(m, env)  // ring stalls -> NF

	// WS -> NF: masking stalls.
	m, env = boot(3)
	env.now += 1000
	m.OnMessage(&wire.NoDecision{
		Header:   wire.Header{From: 1, SendTS: env.now},
		Suspect:  0,
		GroupSeq: 1,
	})
	timeout(m, env)
	return seen
}

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz dot")
	flag.Parse()

	seen := exercise()

	if *dot {
		fmt.Println("digraph timewheel_group_creator {")
		fmt.Println("  rankdir=LR;")
		fmt.Println("  start [shape=point];")
		fmt.Printf("  start -> %q;\n", member.StateJoin)
		for _, f := range figure2 {
			style := "solid"
			if seen[f.t] == 0 {
				style = "dashed"
			}
			fmt.Printf("  %q -> %q [label=%q, style=%s];\n", f.t.from, f.t.to, f.label, style)
		}
		fmt.Println("}")
		return
	}

	fmt.Println("Group creator state transition diagram (paper Figure 2)")
	fmt.Println()
	fmt.Printf("%-20s %-20s %8s  %s\n", "FROM", "TO", "COUNT", "LABEL")
	missing := 0
	for _, f := range figure2 {
		count := seen[f.t]
		mark := ""
		if count == 0 {
			mark = "  <-- NOT EXERCISED"
			missing++
		}
		fmt.Printf("%-20s %-20s %8d  %s%s\n", f.t.from, f.t.to, count, f.label, mark)
	}

	// Transitions taken that the figure does not label (should be none).
	var extra []transition
	known := make(map[transition]bool)
	for _, f := range figure2 {
		known[f.t] = true
	}
	for t := range seen {
		if !known[t] {
			extra = append(extra, t)
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].from != extra[j].from {
			return extra[i].from < extra[j].from
		}
		return extra[i].to < extra[j].to
	})
	if len(extra) > 0 {
		fmt.Println("\ntransitions outside Figure 2:")
		for _, t := range extra {
			fmt.Printf("  %v -> %v (%d times)\n", t.from, t.to, seen[t])
		}
	}
	fmt.Printf("\ncoverage: %d/%d labelled transitions exercised\n", len(figure2)-missing, len(figure2))
	if missing > 0 {
		os.Exit(1)
	}
}
