// Command twtrace reconstructs one causally-ordered cluster timeline
// from the trace rings of N timewheel nodes — pulled live from their
// /debug/events endpoints, or read offline from flight-recorder
// (blackbox) bundles — and flags causal anomalies: a receive whose
// matching send appears nowhere, a cross-node edge that breaks the ε
// clock bound, a node whose delivery stream skips an update another
// node applied.
//
// Usage:
//
//	twtrace -nodes http://a:8080,http://b:8080,http://c:8080
//	twtrace -bundles /data/blackbox/bb-...-guard-trip,/data2/blackbox/bb-...
//	twtrace -nodes ... -epsilon 2ms -html timeline.html
//
// Exit status: 0 on a clean merge, 1 when the timeline contains
// causal-ordering violations, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"timewheel/internal/trace"
)

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated node base URLs (http://host:port) to pull /debug/events from")
		bundles = flag.String("bundles", "", "comma-separated blackbox bundle directories to read offline")
		epsilon = flag.Duration("epsilon", 2*time.Millisecond, "synchronized-clock deviation bound ε for cross-node edges")
		htmlOut = flag.String("html", "", "write the timeline as an HTML page to this file (default: text to stdout)")
		quiet   = flag.Bool("quiet", false, "suppress the per-hop timeline; print only the summary and findings")
	)
	flag.Parse()
	if (*nodes == "") == (*bundles == "") {
		fmt.Fprintln(os.Stderr, "twtrace: exactly one of -nodes or -bundles is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		perNode   [][]trace.Hop
		truncated bool
	)
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "twtrace: %v\n", err)
		os.Exit(2)
	}
	if *nodes != "" {
		for _, base := range strings.Split(*nodes, ",") {
			hops, trunc, err := fetchNode(strings.TrimSpace(base))
			if err != nil {
				fail(err)
			}
			perNode = append(perNode, hops)
			truncated = truncated || trunc
		}
	} else {
		for _, dir := range strings.Split(*bundles, ",") {
			hops, trunc, err := readBundle(strings.TrimSpace(dir))
			if err != nil {
				fail(err)
			}
			perNode = append(perNode, hops)
			truncated = truncated || trunc
		}
	}

	tl := trace.MergeCluster(perNode, int64(*epsilon), truncated)

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fail(err)
		}
		if err := trace.RenderTimelineHTML(f, tl); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d hops, %d edges, %d violations, %d anomalies\n",
			*htmlOut, len(tl.Hops), len(tl.Edges), len(tl.Violations), len(tl.Anomalies))
	} else if *quiet {
		fmt.Printf("hops=%d edges=%d unmatched=%d violations=%d anomalies=%d truncated=%v\n",
			len(tl.Hops), len(tl.Edges), tl.Unmatched, len(tl.Violations), len(tl.Anomalies), tl.Truncated)
		for _, v := range tl.Violations {
			fmt.Printf("VIOLATION: %s\n", v.Text)
		}
		for _, a := range tl.Anomalies {
			fmt.Printf("anomaly: %s\n", a.Text)
		}
	} else {
		if err := trace.RenderTimeline(os.Stdout, tl); err != nil {
			fail(err)
		}
	}
	if len(tl.Violations) > 0 {
		os.Exit(1)
	}
}

// eventsDoc is the shared JSON shape of /debug/events and a bundle's
// events.json (the bundle adds fields the merge does not need).
type eventsDoc struct {
	Truncated bool              `json:"truncated"`
	Dropped   uint64            `json:"dropped"`
	Events    []trace.EventJSON `json:"events"`
}

func fetchNode(base string) ([]trace.Hop, bool, error) {
	url := strings.TrimRight(base, "/") + "/debug/events"
	resp, err := http.Get(url)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var doc eventsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, false, fmt.Errorf("%s: %v", url, err)
	}
	return trace.HopsFromJSON(doc.Events), doc.Truncated || doc.Dropped > 0, nil
}

func readBundle(dir string) ([]trace.Hop, bool, error) {
	f, err := os.Open(filepath.Join(dir, "events.json"))
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	var doc eventsDoc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, false, fmt.Errorf("%s: %v", dir, err)
	}
	return trace.HopsFromJSON(doc.Events), doc.Truncated || doc.Dropped > 0, nil
}
