package main

// Fabric mode (-groups): instead of one timewheel group spanning all
// peers, the peer list becomes a shared trunk and this process hosts
// one member of every group whose replica list names its host id. Typed
// lines are routed by key — the first whitespace-separated token —
// through the consistent-hash ring, exactly the sharded deployment
// docs/FABRIC.md describes.

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"timewheel"
	"timewheel/fabric"
)

// parseGroups parses the -groups syntax: semicolon-separated
// "<gid>:<host>,<host>,..." placements, e.g. "1:0,1,2;2:1,2,3".
func parseGroups(s string) ([]fabric.GroupSpec, error) {
	var specs []fabric.GroupSpec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		gidStr, hostsStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("group %q: want <gid>:<host>,<host>,...", part)
		}
		gid, err := strconv.ParseUint(strings.TrimSpace(gidStr), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("group %q: bad id: %v", part, err)
		}
		spec := fabric.GroupSpec{ID: uint32(gid)}
		for _, h := range strings.Split(hostsStr, ",") {
			host, err := strconv.Atoi(strings.TrimSpace(h))
			if err != nil {
				return nil, fmt.Errorf("group %q: bad host: %v", part, err)
			}
			spec.Replicas = append(spec.Replicas, host)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-groups is empty")
	}
	return specs, nil
}

// runFabric is twnode's fabric mode main loop.
func runFabric(host int, tr timewheel.Transport, specs []fabric.GroupSpec, vnodes, shards int,
	slotBatch bool, params timewheel.Params, dataDir, fsync string, adaptive bool, httpAddr string) {
	ids := make([]uint32, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	ring, err := fabric.NewRing(ids, vnodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ring: %v\n", err)
		os.Exit(1)
	}
	dir := ""
	if dataDir != "" {
		dir = fmt.Sprintf("%s/host-%d", dataDir, host)
	}
	node, err := fabric.New(fabric.Config{
		Host:      host,
		Transport: tr,
		Groups:    specs,
		Ring:      ring,
		Params:    params,
		DataDir:   dir,
		Fsync:     fsync,
		Shards:    shards,
		SlotBatch: slotBatch,
		Adaptive:  timewheel.AdaptiveConfig{Enabled: adaptive},
		OnDeliver: func(gid uint32, d timewheel.Delivery) {
			fmt.Printf("[deliver] g%d o%-4d from p%d: %s\n", gid, d.Ordinal, d.Proposer, d.Payload)
		},
		OnViewChange: func(gid uint32, v timewheel.View) {
			fmt.Printf("[view]    g%d view %d %v\n", gid, v.Seq, v.Members)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
		os.Exit(1)
	}
	hosted := node.Hosted()
	if len(hosted) == 0 {
		fmt.Fprintf(os.Stderr, "host %d appears in no group's replica list\n", host)
		os.Exit(1)
	}
	if httpAddr != "" {
		// Observability rides the first hosted group's node; all groups
		// share the process, and per-group series carry {group="gN"}.
		if g := node.Group(hosted[0]); g != nil {
			if srv, err := g.ServeObs(httpAddr); err == nil {
				defer srv.Close()
				fmt.Printf("[http]    observability at http://%s (group g%d's registry)\n", srv.Addr(), hosted[0])
			} else {
				fmt.Fprintf(os.Stderr, "http: %v\n", err)
			}
		}
	}
	node.Start()
	defer node.Stop()
	router := fabric.NewRouter(node.Ring())

	fmt.Printf("fabric host %d up, hosting groups %v of %d on the ring — "+
		"type '<key> <text>' to route a broadcast, 'status' for state, ctrl-D to quit\n",
		host, hosted, len(ids))

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "status":
			for _, gid := range node.Hosted() {
				g := node.Group(gid)
				v, ok := g.CurrentView()
				fmt.Printf("[status]  g%d view=%d %v (member=%v) delivered=%d\n",
					gid, v.Seq, v.Members, ok, g.Metrics().Delivered)
			}
			st := node.DemuxStats()
			fmt.Printf("[demux]   unknownGroup=%d malformed=%d ring epoch=%d\n",
				st.UnknownGroup, st.Malformed, node.Ring().Epoch())
		default:
			key, _, _ := strings.Cut(line, " ")
			err := router.Do([]byte(key), 3,
				func() { router.Update(node.Ring()) },
				func(gid uint32, epoch uint64) error {
					return node.ProposeKey(epoch, []byte(key), []byte(line), timewheel.TotalOrder, timewheel.Strong)
				})
			if err != nil {
				gid, _ := router.Route([]byte(key))
				fmt.Printf("[error]   key %q (group g%d): %v\n", key, gid, err)
			}
		}
	}
}
