// Command twnode runs one live timewheel node over UDP — the deployment
// shape of the paper's implementation (§5: Unix workstations exchanging
// UDP datagrams). Start N of them (one per terminal or host), watch the
// group form, and type lines to broadcast them with total order and
// strong atomicity.
//
// Usage (three nodes on localhost):
//
//	twnode -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	twnode -id 1 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	twnode -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// With -data-dir the node keeps a write-ahead log and snapshots under
// <dir>/node-<id> and survives crashes: kill -9 it, restart it with the
// same flags, and it comes back warm — application deliveries replayed
// from disk and only the missed suffix fetched from the group.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"timewheel"
)

func main() {
	var (
		id    = flag.Int("id", 0, "this node's ID (index into -peers)")
		peers = flag.String("peers", "127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002",
			"comma-separated host:port list, one per node, in ID order")
		delta       = flag.Duration("delta", 10*time.Millisecond, "one-way timeout delay")
		dd          = flag.Duration("D", 20*time.Millisecond, "max decider interval")
		dataDir     = flag.String("data-dir", "", "directory for the write-ahead log and snapshots (empty: volatile)")
		fsync       = flag.String("fsync", "batched", "fsync policy: always | batched | none")
		guardBudget = flag.Duration("guard-budget", 0,
			"enable the fail-aware timeliness guard with this handler/timer budget; "+
				"a sustained violation makes the node self-exclude and rejoin warm (0: off)")
		surveilK = flag.Int("surveil-k", 0,
			"k-successor surveillance: watch k hashed-ring successors and gossip suspicions instead of all-to-all timing (0 disables)")
		adaptive = flag.Bool("adaptive", false,
			"estimate per-peer delay online and adapt the failure-detector deadlines "+
				"and guard budgets to it (floor 2D, ceiling 4×2D)")
		chaosSeed = flag.Int64("chaos-seed", 0,
			"wrap the transport in deterministic chaos middleware with this seed (0: off)")
		httpAddr = flag.String("http", "",
			"serve observability endpoints on this address "+
				"(/metrics, /healthz, /debug/events, /debug/pprof; empty: off)")
		groups = flag.String("groups", "",
			"fabric mode: semicolon-separated group placements <gid>:<host>,<host>,... "+
				"(e.g. '1:0,1,2;2:1,2,3'); -id becomes the host id on the shared trunk "+
				"and this process hosts every group listing it (empty: single-group mode)")
		ringVnodes = flag.Int("ring", 0,
			"fabric mode: virtual points per group on the consistent-hash ring (0: default)")
		shards = flag.Int("shards", 0,
			"fabric mode: engine worker-pool shards multiplexing every hosted "+
				"group's event loop (0: GOMAXPROCS)")
		slotBatch = flag.Bool("slot-batch", false,
			"coalesce application broadcasts until the wheel-slot edge and send "+
				"each flush as one batched syscall (control frames stay per-event)")
		blackboxDir = flag.String("blackbox-dir", "",
			"arm the flight recorder: dump incident bundles (trace ring, metrics, "+
				"profiles) here on guard trips, self-exclusions, invariant violations "+
				"and SIGQUIT (empty with -data-dir: <data-dir>/node-<id>/blackbox)")
	)
	flag.Parse()

	list := strings.Split(*peers, ",")
	addrs := make(map[int]string, len(list))
	for i, a := range list {
		addrs[i] = strings.TrimSpace(a)
	}
	if *id < 0 || *id >= len(list) {
		fmt.Fprintf(os.Stderr, "id %d out of range for %d peers\n", *id, len(list))
		os.Exit(2)
	}

	tr, err := timewheel.NewUDPTransport(*id, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transport: %v\n", err)
		os.Exit(1)
	}
	var chaos *timewheel.ChaosNet
	if *chaosSeed != 0 {
		// A mild demo mix: enough loss and reordering to exercise the
		// retransmit and election paths without drowning the group.
		chaos = timewheel.NewChaosNet(timewheel.ChaosConfig{
			Seed:        *chaosSeed,
			MaxDelay:    *delta / 4,
			DropProb:    0.02,
			DupProb:     0.02,
			CorruptProb: 0.01,
			ReorderProb: 0.05,
		})
		tr = chaos.Wrap(*id, tr)
		fmt.Printf("[chaos]   transport wrapped, seed=%d\n", *chaosSeed)
	}
	if *groups != "" {
		specs, err := parseGroups(*groups)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-groups: %v\n", err)
			os.Exit(2)
		}
		runFabric(*id, tr, specs, *ringVnodes, *shards, *slotBatch,
			timewheel.Params{Delta: *delta, D: *dd}, *dataDir, *fsync, *adaptive, *httpAddr)
		return
	}
	dir := ""
	if *dataDir != "" {
		dir = fmt.Sprintf("%s/node-%d", *dataDir, *id)
	}
	node, err := timewheel.NewNode(timewheel.Config{
		ID:          *id,
		ClusterSize: len(list),
		Transport:   tr,
		Params:      timewheel.Params{Delta: *delta, D: *dd},
		DataDir:     dir,
		Fsync:       *fsync,
		SlotBatch:   *slotBatch,
		BlackboxDir: *blackboxDir,
		Adaptive:    timewheel.AdaptiveConfig{Enabled: *adaptive},
		Surveillance: timewheel.SurveillanceConfig{
			Enabled: *surveilK > 0,
			K:       *surveilK,
		},
		Guard: timewheel.GuardConfig{
			Enabled:         *guardBudget > 0,
			HandlerBudget:   *guardBudget,
			TimerLateBudget: *guardBudget,
			Enforce:         true,
		},
		OnDeliver: func(d timewheel.Delivery) {
			fmt.Printf("[deliver] o%-4d from p%d: %s\n", d.Ordinal, d.Proposer, d.Payload)
		},
		OnViewChange: func(v timewheel.View) {
			fmt.Printf("[view]    g%d %v\n", v.Seq, v.Members)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	if rec := node.Recovery(); rec.Durable {
		fmt.Printf("[recover] snapshot=%v updates=%d views=%d covered=o%d lineage=%d torn=%v\n",
			rec.HaveSnapshot, rec.LoggedUpdates, rec.LoggedViews, rec.Covered, rec.Lineage, rec.TornTail)
		for _, d := range rec.Discarded {
			fmt.Printf("[recover] discarded: %s\n", d)
		}
	}
	if *httpAddr != "" {
		obsSrv, err := node.ServeObs(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "http: %v\n", err)
			os.Exit(1)
		}
		defer obsSrv.Close()
		fmt.Printf("[http]    metrics at http://%s/metrics, health at /healthz, events at /debug/events\n",
			obsSrv.Addr())
	}
	node.Start()

	// A signal must flush the log before the process dies: Stop closes
	// the store, syncing any batched appends. (kill -9 skips this — that
	// is exactly the crash the recovery path is for.)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Printf("\n[signal]  %v: flushing log and stopping\n", s)
		node.Stop()
		os.Exit(0)
	}()
	// SIGQUIT is the operator's flight-recorder trigger: dump a black
	// box bundle and keep running (Go's default SIGQUIT stack dump is
	// replaced — use /debug/pprof or the bundle's goroutine.txt).
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if path, err := node.DumpBlackbox("signal"); err != nil {
				fmt.Printf("[blackbox] %v\n", err)
			} else {
				fmt.Printf("[blackbox] dumped %s\n", path)
			}
		}
	}()
	defer node.Stop()
	fmt.Printf("node p%d up at %s — type lines to broadcast, 'status' for state, ctrl-D to quit\n",
		*id, addrs[*id])

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
		case "status":
			v, ok := node.CurrentView()
			fmt.Printf("[status]  state=%s view=g%d %v (member=%v)\n", node.StateName(), v.Seq, v.Members, ok)
			if total, byInv := node.AuditStats(); total == 0 {
				fmt.Printf("[audit]   invariants clean\n")
			} else {
				fmt.Printf("[audit]   VIOLATIONS total=%d %v\n", total, byInv)
			}
			if *guardBudget > 0 {
				g := node.GuardStats()
				fmt.Printf("[guard]   overruns=%d lateTimers=%d clockJumps=%d selfExclusions=%d suppressed=%d queueDrops=%d tripped=%v\n",
					g.Overruns, g.LateTimers, g.ClockJumps, g.SelfExclusions, g.SuppressedSends, g.QueueDrops, g.Tripped)
			}
			if *adaptive {
				a := node.AdaptiveStats()
				fmt.Printf("[adapt]   widened=%d shrunk=%d flapBoosts=%d overwrites=%d noise(handler=%v late=%v) budgets(handler=%v timer=%v) spans=%v\n",
					a.Widened, a.Shrunk, a.FlapBoosts, a.ExpectOverwrites,
					a.NoiseHandler, a.NoiseLateness, a.HandlerBudget, a.TimerLateBudget, a.PeerDeadlineSpans)
			}
			if chaos != nil {
				fmt.Printf("[chaos]   %+v\n", chaos.Stats())
			}
		default:
			if err := node.Propose([]byte(line), timewheel.TotalOrder, timewheel.Strong); err != nil {
				fmt.Printf("[error]   %v\n", err)
			}
		}
	}
}
