package fabric

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"timewheel"
)

func TestRouterUpdateOrdering(t *testing.T) {
	r1, _ := NewRing([]uint32{1, 2}, 8)
	r2 := r1.WithEpoch(2)
	rt := NewRouter(r1)
	if rt.Update(r1) {
		t.Fatal("same-epoch update accepted")
	}
	if !rt.Update(r2) {
		t.Fatal("newer epoch rejected")
	}
	if rt.Update(r1) {
		t.Fatal("stale epoch accepted after advance")
	}
	if rt.Ring().Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", rt.Ring().Epoch())
	}
}

func TestRouterDoRetriesOnWrongGroup(t *testing.T) {
	r1, _ := NewRing([]uint32{1, 2}, 8)
	rt := NewRouter(r1)
	r2 := r1.WithEpoch(2)

	calls := 0
	err := rt.Do([]byte("k"), 3,
		func() { rt.Update(r2) }, // the refresh fetches the post-move ring
		func(gid uint32, epoch uint64) error {
			calls++
			if epoch != 2 {
				return ErrWrongGroup
			}
			return nil
		})
	if err != nil || calls != 2 {
		t.Fatalf("Do = %v after %d calls; want nil after 2", err, calls)
	}

	// Non-routing errors surface immediately, un-retried.
	boom := errors.New("boom")
	calls = 0
	err = rt.Do([]byte("k"), 3, nil, func(uint32, uint64) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("Do = %v after %d calls; want boom after 1", err, calls)
	}

	// Exhausted attempts wrap ErrWrongGroup.
	err = rt.Do([]byte("k"), 2, nil, func(uint32, uint64) error { return ErrWrongGroup })
	if !errors.Is(err, ErrWrongGroup) {
		t.Fatalf("exhausted Do = %v; want ErrWrongGroup", err)
	}
}

func TestGroupSpecValidation(t *testing.T) {
	cases := []GroupSpec{
		{ID: 0, Replicas: []int{0}},
		{ID: 1},
		{ID: 1, Replicas: []int{0, 1, 0}},
		{ID: 1, Replicas: []int{-1}},
	}
	for _, s := range cases {
		if err := s.validate(); err == nil {
			t.Fatalf("spec %+v accepted", s)
		}
	}
	if err := (GroupSpec{ID: 3, Replicas: []int{2, 0, 1}}).validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// fastParams mirrors the root package's test timing model.
func fastParams() timewheel.Params {
	return timewheel.Params{
		Delta:   2 * time.Millisecond,
		D:       4 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: 500 * time.Microsecond,
	}
}

// startFabric boots two 3-replica groups across three hosts on one
// shared hub and waits for both groups to form full views everywhere.
func startFabric(t *testing.T) ([]*Node, *timewheel.MemoryHub) {
	t.Helper()
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 11})
	specs := []GroupSpec{
		{ID: 1, Replicas: []int{0, 1, 2}},
		{ID: 2, Replicas: []int{2, 0, 1}},
	}
	nodes := make([]*Node, 3)
	for h := 0; h < 3; h++ {
		n, err := New(Config{
			Host:      h,
			Transport: hub.Transport(h),
			Groups:    specs,
			Params:    fastParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[h] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		hub.Close()
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		formed := true
		for _, n := range nodes {
			for _, gid := range []uint32{1, 2} {
				v, ok := n.Group(gid).CurrentView()
				if !ok || len(v.Members) != 3 {
					formed = false
				}
			}
		}
		if formed {
			return nodes, hub
		}
		if time.Now().After(deadline) {
			t.Fatal("fabric groups never formed full views")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Two groups sharing one trunk: both form, and a proposal on each group
// delivers without crossing into the other.
func TestFabricTwoGroupsOneTrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fabric test")
	}
	nodes, _ := startFabric(t)

	for _, gid := range []uint32{1, 2} {
		payload := []byte(fmt.Sprintf("hello-g%d", gid))
		if err := nodes[0].Group(gid).Propose(payload, timewheel.TotalOrder, timewheel.Strong); err != nil {
			t.Fatalf("propose on g%d: %v", gid, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, n := range nodes {
			for _, gid := range []uint32{1, 2} {
				if n.Group(gid).Metrics().Delivered < 1 {
					done = false
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proposals never delivered on both groups")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, n := range nodes {
		st := n.DemuxStats()
		if st.UnknownGroup != 0 || st.Malformed != 0 {
			t.Fatalf("host %d demux drops: %+v", n.Host(), st)
		}
	}
}

// ProposeKey enforces the routing epoch and group placement.
func TestFabricProposeKeyEpochGate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fabric test")
	}
	nodes, _ := startFabric(t)
	n := nodes[0]

	ring := n.Ring()
	// Find a key for each group so both paths are exercised.
	for _, gid := range []uint32{1, 2} {
		var key []byte
		for i := 0; ; i++ {
			k := []byte(fmt.Sprintf("probe-%d", i))
			if ring.Route(k) == gid {
				key = k
				break
			}
		}
		if err := n.ProposeKey(ring.Epoch(), key, []byte("v"), timewheel.TotalOrder, timewheel.Strong); err != nil {
			t.Fatalf("ProposeKey(g%d): %v", gid, err)
		}
		if err := n.ProposeKey(ring.Epoch()+1, key, []byte("v"), timewheel.TotalOrder, timewheel.Strong); !errors.Is(err, ErrWrongGroup) {
			t.Fatalf("stale-epoch ProposeKey = %v; want ErrWrongGroup", err)
		}
	}
}

func TestFabricConfigValidation(t *testing.T) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
	defer hub.Close()
	if _, err := New(Config{Host: 0, Groups: []GroupSpec{{ID: 1, Replicas: []int{0}}}}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := New(Config{Host: 0, Transport: hub.Transport(0)}); err == nil {
		t.Fatal("no groups and no ring accepted")
	}
	if _, err := New(Config{Host: 0, Transport: hub.Transport(1), Groups: []GroupSpec{
		{ID: 1, Replicas: []int{0}}, {ID: 1, Replicas: []int{1}},
	}}); err == nil {
		t.Fatal("duplicate group ids accepted")
	}
}
