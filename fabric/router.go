package fabric

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrWrongGroup reports that a key was presented to a node that does
// not host the key's group under the current routing epoch — the
// client's ring is stale (a move flipped the epoch) or its per-group
// placement table is. The caller refreshes its ring and retries;
// Router.Do packages that loop.
var ErrWrongGroup = errors.New("fabric: wrong group for key")

// Router is the client-side routing table: an atomically swapped Ring.
// Route never locks; Update installs a newer ring (stale epochs are
// ignored, so refreshes racing a move converge on the newest table).
type Router struct {
	ring atomic.Pointer[Ring]
}

// NewRouter starts a router at the given ring.
func NewRouter(r *Ring) *Router {
	rt := &Router{}
	rt.ring.Store(r)
	return rt
}

// Ring returns the current routing table.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// Update installs r if it is newer than the current table; it reports
// whether the table changed.
func (rt *Router) Update(r *Ring) bool {
	for {
		cur := rt.ring.Load()
		if r == nil || r.Epoch() <= cur.Epoch() {
			return false
		}
		if rt.ring.CompareAndSwap(cur, r) {
			return true
		}
	}
}

// Route maps a key to its group under the current table, reporting the
// table's epoch alongside so the caller can present it to the serving
// node (which rejects stale epochs with ErrWrongGroup).
func (rt *Router) Route(key []byte) (gid uint32, epoch uint64) {
	r := rt.ring.Load()
	return r.Route(key), r.Epoch()
}

// Do runs fn against the key's group, retrying on ErrWrongGroup with a
// freshly loaded table each attempt — the refresh hook (typically a
// fetch of the serving cluster's current ring, fed to Update) runs
// between attempts; nil skips refreshing and just re-reads the local
// table, which covers a concurrent Update by another client goroutine.
func (rt *Router) Do(key []byte, attempts int, refresh func(), fn func(gid uint32, epoch uint64) error) error {
	if attempts <= 0 {
		attempts = 3
	}
	var err error
	for i := 0; i < attempts; i++ {
		gid, epoch := rt.Route(key)
		if err = fn(gid, epoch); !errors.Is(err, ErrWrongGroup) {
			return err
		}
		if refresh != nil {
			refresh()
		}
	}
	return fmt.Errorf("fabric: routing did not converge after %d attempts: %w", attempts, err)
}
