package fabric

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]uint32{1, 0}, 0); err == nil {
		t.Fatal("group id 0 accepted")
	}
	if _, err := NewRing([]uint32{1, 2, 1}, 0); err == nil {
		t.Fatal("duplicate group accepted")
	}
}

func TestRingRouteDeterministic(t *testing.T) {
	r, err := NewRing([]uint32{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if a, b := r.Route(key), r.Route(key); a != b {
			t.Fatalf("Route(%q) unstable: %d vs %d", key, a, b)
		}
	}
}

func TestRingBalance(t *testing.T) {
	groups := []uint32{1, 2, 3, 4}
	r, err := NewRing(groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	counts := map[uint32]int{}
	for i := 0; i < keys; i++ {
		counts[r.Route([]byte(fmt.Sprintf("object/%d", i)))]++
	}
	want := keys / len(groups)
	for _, gid := range groups {
		c := counts[gid]
		if c < want/2 || c > want*2 {
			t.Fatalf("group %d owns %d of %d keys (want ~%d): imbalanced ring %v",
				gid, c, keys, want, counts)
		}
	}
}

// Adding one group to the ring must remap only roughly its fair share of
// keys — the consistent-hashing property the vnode scheme exists for.
func TestRingMinimalRemapOnGrowth(t *testing.T) {
	old, _ := NewRing([]uint32{1, 2, 3, 4}, 0)
	grown, _ := NewRing([]uint32{1, 2, 3, 4, 5}, 0)
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("object/%d", i))
		a, b := old.Route(key), grown.Route(key)
		if a != b {
			if b != 5 {
				t.Fatalf("key %q moved between surviving groups: %d -> %d", key, a, b)
			}
			moved++
		}
	}
	// Fair share is 1/5 = 2000; allow generous slack for hash variance.
	if moved < keys/10 || moved > keys/2 {
		t.Fatalf("adding one group remapped %d of %d keys; want ~%d", moved, keys, keys/5)
	}
}

func TestRingWithEpochKeepsMapping(t *testing.T) {
	r, _ := NewRing([]uint32{7, 9}, 8)
	next := r.WithEpoch(r.Epoch() + 1)
	if next.Epoch() != 2 || r.Epoch() != 1 {
		t.Fatalf("epochs: old %d new %d", r.Epoch(), next.Epoch())
	}
	for i := 0; i < 200; i++ {
		key := []byte{byte(i), byte(i >> 4)}
		if r.Route(key) != next.Route(key) {
			t.Fatalf("WithEpoch changed the mapping for key %v", key)
		}
	}
}

func TestRingRouteZeroAlloc(t *testing.T) {
	r, _ := NewRing([]uint32{1, 2, 3}, 0)
	key := []byte("allocation-probe")
	if n := testing.AllocsPerRun(200, func() { r.Route(key) }); n != 0 {
		t.Fatalf("Route allocates %v per op", n)
	}
}
