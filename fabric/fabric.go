// Package fabric shards a keyspace over many timewheel groups sharing
// one transport — the multi-group scaling path: the paper's protocol
// runs each group at its sweet-spot N, and capacity grows by adding
// groups, not members.
//
// A fabric Node is one host. It multiplexes every group it hosts over a
// single socket: each group's timewheel engine tags its datagrams with
// the group-id (the wire v6 grouped envelope) and a demux stage routes
// inbound datagrams to the hosting engine. A consistent-hash Ring maps
// keys to groups; the client-side Router retries on ErrWrongGroup after
// a routing-epoch flip. MoveGroup rebalances: it moves one replica of a
// group between hosts using a durable snapshot clone plus the
// protocol's own replay-delta rejoin, then flips the ring epoch.
//
// See docs/FABRIC.md for the wire format, ring semantics and the move
// protocol.
package fabric

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"timewheel"
	"timewheel/internal/durable"
	"timewheel/internal/model"
	"timewheel/internal/transport"
)

// GroupSpec places one timewheel group on the fabric: the group's wire
// id and the hosts its members run on — member i of the group is the
// timewheel node with ID i on host Replicas[i].
type GroupSpec struct {
	// ID is the group's wire id, nonzero (0 is the legacy untagged
	// format) and unique across the fabric.
	ID uint32
	// Replicas maps member index to host id. Hosts must be distinct:
	// co-hosting two members of the same group would fold two engines
	// onto one demux port.
	Replicas []int
}

func (s GroupSpec) clone() GroupSpec {
	s.Replicas = append([]int(nil), s.Replicas...)
	return s
}

func (s GroupSpec) memberOn(host int) (int, bool) {
	for i, h := range s.Replicas {
		if h == host {
			return i, true
		}
	}
	return -1, false
}

func (s GroupSpec) validate() error {
	if s.ID == 0 {
		return fmt.Errorf("fabric: group id 0 is reserved for the legacy wire format")
	}
	if len(s.Replicas) == 0 {
		return fmt.Errorf("fabric: group %d has no replicas", s.ID)
	}
	seen := make(map[int]bool, len(s.Replicas))
	for _, h := range s.Replicas {
		if h < 0 {
			return fmt.Errorf("fabric: group %d: negative host %d", s.ID, h)
		}
		if seen[h] {
			return fmt.Errorf("fabric: group %d places two members on host %d", s.ID, h)
		}
		seen[h] = true
	}
	return nil
}

// Config configures a fabric Node.
type Config struct {
	// Host is this node's id on the shared transport.
	Host int
	// Transport is the shared trunk socket connecting all fabric hosts
	// (addressed by host id). The node installs the demux as its
	// receiver and closes it on Stop.
	Transport timewheel.Transport
	// Groups is the fabric-wide placement; the node hosts the subset
	// whose Replicas include Host.
	Groups []GroupSpec
	// Ring is the initial routing table. Nil builds an epoch-1 ring
	// over Groups with DefaultVnodes.
	Ring *Ring
	// Params tune every hosted group's timing model.
	Params timewheel.Params
	// DataDir, when set, makes every hosted group durable under
	// DataDir/g<id> — required on both ends for snapshot-clone moves
	// (without it MoveGroup falls back to a full state transfer).
	DataDir string
	// Fsync and SnapshotEvery pass through to each hosted group.
	Fsync         string
	SnapshotEvery int
	// Adaptive and Guard pass through to each hosted group.
	Adaptive timewheel.AdaptiveConfig
	Guard    timewheel.GuardConfig
	// Shards sizes the node's engine worker pool (<= 0: GOMAXPROCS).
	// Every hosted group's event dispatch is pinned round-robin to one
	// pool shard: per-group dispatch stays strictly sequential, groups
	// on different shards run on different cores. A 64-group host runs
	// Shards dispatch goroutines instead of 64.
	Shards int
	// SlotBatch passes through to each hosted group: hold reactive
	// control frames and ship them on the timer path, at the latest at
	// the wheel-slot edge (see timewheel.Config.SlotBatch).
	SlotBatch bool
	// OnDeliver, OnViewChange, Snapshot and Install are the per-group
	// application hooks, keyed by group id.
	OnDeliver    func(gid uint32, d timewheel.Delivery)
	OnViewChange func(gid uint32, v timewheel.View)
	Snapshot     func(gid uint32) []byte
	Install      func(gid uint32, state []byte)
}

// Node is one fabric host: the demux over the shared trunk plus a
// timewheel engine per hosted group.
type Node struct {
	cfg   Config
	demux *transport.Demux
	ring  atomic.Pointer[Ring]
	pool  *timewheel.EnginePool

	mu        sync.Mutex
	hosted    map[uint32]*hostedGroup
	nextShard int
	started   bool
	stopped   bool
}

type hostedGroup struct {
	spec GroupSpec // current layout (rewritten by UpdateGroup under Node.mu)
	idx  int       // this host's member index
	node *timewheel.Node
	port *groupPort
}

// New builds a fabric node and its hosted group engines; call Start to
// join. The transport's receiver is taken over immediately.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("fabric: Transport is required")
	}
	if cfg.Host < 0 {
		return nil, fmt.Errorf("fabric: negative host id %d", cfg.Host)
	}
	ids := make([]uint32, 0, len(cfg.Groups))
	seen := make(map[uint32]bool, len(cfg.Groups))
	for _, s := range cfg.Groups {
		if err := s.validate(); err != nil {
			return nil, err
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("fabric: duplicate group id %d", s.ID)
		}
		seen[s.ID] = true
		ids = append(ids, s.ID)
	}
	ring := cfg.Ring
	if ring == nil {
		if len(ids) == 0 {
			return nil, fmt.Errorf("fabric: no groups and no ring")
		}
		var err error
		if ring, err = NewRing(ids, 0); err != nil {
			return nil, err
		}
	}
	n := &Node{
		cfg:    cfg,
		demux:  transport.NewDemux(trunkAdapter{t: cfg.Transport, id: model.ProcessID(cfg.Host)}),
		hosted: make(map[uint32]*hostedGroup),
		pool:   timewheel.NewEnginePool(cfg.Shards),
	}
	n.ring.Store(ring)
	for _, s := range cfg.Groups {
		if _, ok := s.memberOn(cfg.Host); !ok {
			continue
		}
		if err := n.addGroupLocked(s.clone()); err != nil {
			n.Stop()
			return nil, err
		}
	}
	return n, nil
}

// addGroupLocked builds the engine for one hosted group. Callers hold
// no lock during New (single goroutine) — AddGroup wraps it.
func (n *Node) addGroupLocked(spec GroupSpec) error {
	idx, ok := spec.memberOn(n.cfg.Host)
	if !ok {
		return fmt.Errorf("fabric: host %d is not a replica of group %d", n.cfg.Host, spec.ID)
	}
	if _, dup := n.hosted[spec.ID]; dup {
		return fmt.Errorf("fabric: group %d already hosted", spec.ID)
	}
	gp := &groupPort{
		port:    n.demux.Port(spec.ID),
		self:    model.ProcessID(n.cfg.Host),
		selfIdx: idx,
	}
	gp.setReplicas(spec.Replicas)
	gid := spec.ID
	twc := timewheel.Config{
		ID:            idx,
		ClusterSize:   len(spec.Replicas),
		Transport:     gp,
		Params:        n.cfg.Params,
		Group:         gid,
		Fsync:         n.cfg.Fsync,
		SnapshotEvery: n.cfg.SnapshotEvery,
		Adaptive:      n.cfg.Adaptive,
		Guard:         n.cfg.Guard,
		Pool:          n.pool,
		PoolShard:     n.nextShard,
		SlotBatch:     n.cfg.SlotBatch,
	}
	n.nextShard++
	if n.cfg.DataDir != "" {
		twc.DataDir = n.groupDir(gid)
	}
	if cb := n.cfg.OnDeliver; cb != nil {
		twc.OnDeliver = func(d timewheel.Delivery) { cb(gid, d) }
	}
	if cb := n.cfg.OnViewChange; cb != nil {
		twc.OnViewChange = func(v timewheel.View) { cb(gid, v) }
	}
	if cb := n.cfg.Snapshot; cb != nil {
		twc.Snapshot = func() []byte { return cb(gid) }
	}
	if cb := n.cfg.Install; cb != nil {
		twc.Install = func(state []byte) { cb(gid, state) }
	}
	tn, err := timewheel.NewNode(twc)
	if err != nil {
		gp.Close() //nolint:errcheck // deregistration only
		return err
	}
	n.hosted[spec.ID] = &hostedGroup{spec: spec, idx: idx, node: tn, port: gp}
	return nil
}

// groupDir is the durable directory for one hosted group's member.
func (n *Node) groupDir(gid uint32) string {
	return filepath.Join(n.cfg.DataDir, fmt.Sprintf("g%d", gid))
}

// Start starts every hosted group engine.
func (n *Node) Start() {
	n.mu.Lock()
	n.started = true
	gs := make([]*hostedGroup, 0, len(n.hosted))
	for _, h := range n.hosted {
		gs = append(gs, h)
	}
	n.mu.Unlock()
	for _, h := range gs {
		h.node.Start()
	}
}

// Stop stops every hosted engine and closes the shared trunk.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	gs := make([]*hostedGroup, 0, len(n.hosted))
	for _, h := range n.hosted {
		gs = append(gs, h)
	}
	n.mu.Unlock()
	for _, h := range gs {
		h.node.Stop()
	}
	n.demux.Close() //nolint:errcheck // trunk close
	n.pool.Close()  // after every engine has stopped
}

// Ring returns the node's current routing table.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// SetRing installs a newer routing table (stale epochs are ignored).
func (n *Node) SetRing(r *Ring) {
	for {
		cur := n.ring.Load()
		if r == nil || r.Epoch() <= cur.Epoch() {
			return
		}
		if n.ring.CompareAndSwap(cur, r) {
			return
		}
	}
}

// Host returns this node's host id.
func (n *Node) Host() int { return n.cfg.Host }

// Hosted returns the ids of the groups this node currently hosts.
func (n *Node) Hosted() []uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]uint32, 0, len(n.hosted))
	for gid := range n.hosted {
		out = append(out, gid)
	}
	return out
}

// Group returns the engine for a hosted group, or nil.
func (n *Node) Group(gid uint32) *timewheel.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosted[gid]; h != nil {
		return h.node
	}
	return nil
}

// Spec returns the node's current layout for a hosted group.
func (n *Node) Spec(gid uint32) (GroupSpec, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h := n.hosted[gid]; h != nil {
		return h.spec.clone(), true
	}
	return GroupSpec{}, false
}

// DemuxStats snapshots the demux drop counters.
func (n *Node) DemuxStats() transport.DemuxStats { return n.demux.Stats() }

// AddGroup hosts a new group on this node (it must appear in
// spec.Replicas). If the node is started, the engine starts joining
// immediately — with a durable directory seeded by CloneSnapshot it
// advertises the cloned coverage and rejoins by replay delta.
func (n *Node) AddGroup(spec GroupSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return timewheel.ErrStopped
	}
	if err := n.addGroupLocked(spec.clone()); err != nil {
		n.mu.Unlock()
		return err
	}
	h := n.hosted[spec.ID]
	started := n.started
	n.mu.Unlock()
	if started {
		h.node.Start()
	}
	return nil
}

// RemoveGroup stops and unhosts a group's engine; its demux port is
// deregistered (the shared trunk stays open). The durable directory is
// left in place — it seeds a snapshot clone if the group moves on.
func (n *Node) RemoveGroup(gid uint32) error {
	n.mu.Lock()
	h := n.hosted[gid]
	delete(n.hosted, gid)
	n.mu.Unlock()
	if h == nil {
		return fmt.Errorf("fabric: group %d not hosted", gid)
	}
	h.node.Stop()
	return nil
}

// UpdateGroup installs a new replica layout for gid on this node: a
// hosted engine's sends to the moved member start flowing to its new
// host. No-op for groups this node does not host. The node itself must
// still be a replica at its old index (moving the local member is
// Remove/AddGroup territory — see MoveGroup).
func (n *Node) UpdateGroup(spec GroupSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.hosted[spec.ID]
	if h == nil {
		return nil
	}
	if len(spec.Replicas) != len(h.spec.Replicas) {
		return fmt.Errorf("fabric: group %d resize (%d → %d members) is not a layout update",
			spec.ID, len(h.spec.Replicas), len(spec.Replicas))
	}
	if idx, ok := spec.memberOn(n.cfg.Host); !ok || idx != h.idx {
		return fmt.Errorf("fabric: layout update would move the local member of group %d", spec.ID)
	}
	h.spec = spec.clone()
	h.port.setReplicas(h.spec.Replicas)
	return nil
}

// ProposeKey routes a key through the node's ring and proposes the
// payload on the owning group. The caller presents the routing epoch
// its table came from; a stale epoch — or a key owned by a group this
// node does not host — returns ErrWrongGroup, telling the client to
// refresh its ring (Router.Do automates the retry).
func (n *Node) ProposeKey(epoch uint64, key, payload []byte, o timewheel.Order, a timewheel.Atomicity) error {
	r := n.ring.Load()
	if epoch != r.Epoch() {
		return ErrWrongGroup
	}
	gid := r.Route(key)
	n.mu.Lock()
	h := n.hosted[gid]
	n.mu.Unlock()
	if h == nil {
		return ErrWrongGroup
	}
	return h.node.Propose(payload, o, a)
}

// MoveGroup moves group gid's replica from host src to host dst — the
// scripted rebalancing step. The sequence:
//
//  1. Checkpoint the source member (durable snapshot at the current
//     delivery frontier) and stop it.
//  2. Clone the snapshot into the destination's group directory
//     (skipped — full transfer fallback — when either side is not
//     durable or the checkpoint failed).
//  3. Install the new layout on every fabric node and flip the ring
//     epoch atomically on each.
//  4. Start the destination member: recovery advertises the cloned
//     coverage and the ordinary rejoin machinery replays the delta
//     written since the checkpoint from the group's live members.
//
// The group keeps operating on its surviving majority throughout; the
// returned ring (epoch+1) is what clients' Routers should Update to.
// all must include every fabric node, src and dst among them.
func MoveGroup(gid uint32, src, dst *Node, all []*Node) (*Ring, error) {
	src.mu.Lock()
	h := src.hosted[gid]
	src.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("fabric: group %d not hosted on source host %d", gid, src.cfg.Host)
	}
	if _, hosts := dst.Spec(gid); hosts {
		return nil, fmt.Errorf("fabric: group %d already hosted on destination host %d", gid, dst.cfg.Host)
	}
	spec := h.spec.clone()
	if _, ok := spec.memberOn(dst.cfg.Host); ok {
		return nil, fmt.Errorf("fabric: host %d is already a replica of group %d", dst.cfg.Host, gid)
	}

	// 1. Fix the transfer base and stop the source member. Checkpoint
	// failure is not fatal — the destination then starts cold and the
	// protocol's full state transfer covers the move.
	snapshotted := h.node.Checkpoint() == nil
	if err := src.RemoveGroup(gid); err != nil {
		return nil, err
	}

	// 2. Seed the destination directory. Any doubt — no snapshot, dirty
	// destination, I/O error — falls back to full transfer.
	if snapshotted && src.cfg.DataDir != "" && dst.cfg.DataDir != "" {
		durable.CloneSnapshot(src.groupDir(gid), dst.groupDir(gid)) //nolint:errcheck
	}

	// 3. New layout everywhere, then the epoch flip.
	spec.Replicas[h.idx] = dst.cfg.Host
	for _, m := range all {
		if m == src || m == dst {
			continue
		}
		if err := m.UpdateGroup(spec); err != nil {
			return nil, err
		}
	}
	next := src.Ring().WithEpoch(src.Ring().Epoch() + 1)
	for _, m := range all {
		m.SetRing(next)
	}

	// 4. Bring up the destination member; it joins the surviving
	// members and fetches the delta (or the full state) from them.
	if err := dst.AddGroup(spec); err != nil {
		return nil, err
	}
	return next, nil
}

// --- Transport adapters ------------------------------------------------------

// trunkAdapter lifts the public Transport to the internal interface the
// demux consumes (which additionally knows its own process id).
type trunkAdapter struct {
	t  timewheel.Transport
	id model.ProcessID
}

func (a trunkAdapter) Self() model.ProcessID            { return a.id }
func (a trunkAdapter) Broadcast(data []byte) error      { return a.t.Broadcast(data) }
func (a trunkAdapter) SetReceiver(r transport.Receiver) { a.t.SetReceiver(r) }
func (a trunkAdapter) Close() error                     { return a.t.Close() }
func (a trunkAdapter) Unicast(to model.ProcessID, data []byte) error {
	return a.t.Unicast(int(to), data)
}

// groupPort adapts a demux port to one group engine's Transport,
// translating member indexes to host ids. Broadcast is a unicast
// fan-out over the replica hosts: the trunk's own broadcast would reach
// every fabric host, including those not hosting this group. The
// replica table is swapped atomically by layout updates (group moves)
// while the engine keeps sending.
type groupPort struct {
	port     *transport.Port
	self     model.ProcessID
	selfIdx  int
	replicas atomic.Value // []model.ProcessID, member index → host
}

func (g *groupPort) setReplicas(rs []int) {
	hosts := make([]model.ProcessID, len(rs))
	for i, h := range rs {
		hosts[i] = model.ProcessID(h)
	}
	g.replicas.Store(hosts)
}

func (g *groupPort) Broadcast(data []byte) error {
	hosts := g.replicas.Load().([]model.ProcessID)
	var firstErr error
	for i, h := range hosts {
		if i == g.selfIdx {
			continue
		}
		if err := g.port.Unicast(h, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (g *groupPort) Unicast(to int, data []byte) error {
	hosts := g.replicas.Load().([]model.ProcessID)
	if to < 0 || to >= len(hosts) {
		return fmt.Errorf("fabric: member %d out of range", to)
	}
	return g.port.Unicast(hosts[to], data)
}

func (g *groupPort) SetReceiver(r func(data []byte)) { g.port.SetReceiver(transport.Receiver(r)) }

// Close deregisters the group's demux port; the shared trunk stays
// open for every other hosted group.
func (g *groupPort) Close() error { return g.port.Close() }
