package fabric

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping keys to groups. Each group
// contributes Vnodes virtual points so the keyspace splits evenly and a
// group addition or removal only remaps the slices adjacent to its own
// points — the MapleJuice-style ID ring, with groups instead of hosts
// as the owning unit (a group's *replicas* move freely without touching
// the key mapping at all; see MoveGroup).
//
// A Ring is immutable after construction; Epoch stamps the routing
// configuration it belongs to. Routers compare epochs to detect stale
// client-side tables (ErrWrongGroup → refresh → retry).
type Ring struct {
	epoch  uint64
	vnodes int
	groups []uint32
	points []point // sorted by hash
}

type point struct {
	hash uint64
	gid  uint32
}

// DefaultVnodes is the virtual-point count per group when NewRing is
// given zero: enough for <10% keyspace imbalance at small group counts.
const DefaultVnodes = 64

// NewRing builds an epoch-1 ring over the given group ids. vnodes <= 0
// takes DefaultVnodes. Group ids must be nonzero (group 0 is the legacy
// untagged wire format) and unique.
func NewRing(groups []uint32, vnodes int) (*Ring, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("fabric: ring needs at least one group")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[uint32]bool, len(groups))
	r := &Ring{epoch: 1, vnodes: vnodes, groups: append([]uint32(nil), groups...)}
	r.points = make([]point, 0, len(groups)*vnodes)
	for _, gid := range groups {
		if gid == 0 {
			return nil, fmt.Errorf("fabric: group id 0 is reserved for the legacy wire format")
		}
		if seen[gid] {
			return nil, fmt.Errorf("fabric: duplicate group id %d", gid)
		}
		seen[gid] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(gid, v), gid: gid})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// WithEpoch returns a ring with the same key mapping at a new epoch —
// the atomic flip at the end of a group move or any other routing
// reconfiguration.
func (r *Ring) WithEpoch(epoch uint64) *Ring {
	cp := *r
	cp.epoch = epoch
	return &cp
}

// Epoch returns the routing-configuration epoch this ring belongs to.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Groups returns the group ids on the ring.
func (r *Ring) Groups() []uint32 { return append([]uint32(nil), r.groups...) }

// Route maps a key to its owning group: the first virtual point at or
// clockwise after the key's hash.
func (r *Ring) Route(key []byte) uint32 {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].gid
}

// FNV-1a 64-bit with an avalanche finalizer, inlined so Route stays
// allocation-free. Raw FNV clusters badly on short low-entropy inputs
// (the gid/vnode pairs are mostly zero bytes), which skews point
// placement enough to unbalance the ring; the Murmur3-style fmix64
// finalizer spreads those few input bits across the whole word.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func keyHash(key []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return mix64(h)
}

func vnodeHash(gid uint32, v int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 4; i++ {
		h ^= uint64(gid >> (8 * i) & 0xFF)
		h *= fnvPrime
	}
	for i := 0; i < 4; i++ {
		h ^= uint64(v >> (8 * i) & 0xFF)
		h *= fnvPrime
	}
	return mix64(h)
}
