// Package rsm layers a replicated state machine on the timewheel group
// communication service — the construction the paper's introduction
// motivates: "a dependable service ... implemented by a team of
// replicated servers [that] maintain a consistent replicated service
// state and, if one member fails, the others form a new group and
// continue to provide the service."
//
// The application supplies a deterministic StateMachine; rsm broadcasts
// commands with total order and strong atomicity, applies them in the
// agreed order on every replica, and reports command outcomes to the
// submitting replica through the broadcast's termination semantic.
//
//	sm := rsm.New(rsm.Config{Node: nodeCfg, Machine: &counter{}})
//	sm.Start()
//	res, err := sm.Submit(ctx, []byte("deposit 100"))
package rsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"timewheel"
)

// StateMachine is the deterministic application core. Apply must produce
// identical results on every replica given the same command sequence.
// Implementations need no locking: rsm serialises all calls.
type StateMachine interface {
	// Apply executes one committed command and returns its result.
	Apply(cmd []byte) []byte
}

// Snapshotter is the optional state-transfer extension: machines that
// implement it survive replica restarts — a rejoining replica receives
// the snapshot of a current member instead of starting empty.
type Snapshotter interface {
	// Snapshot serialises the full machine state.
	Snapshot() []byte
	// Restore replaces the machine state from a snapshot.
	Restore([]byte)
}

// ErrAbandoned reports that a submitted command's termination window
// expired without delivery (e.g. it was purged at a view change or the
// replica lost its group); the client should re-submit after the view
// stabilises if the command is still wanted.
var ErrAbandoned = errors.New("rsm: command abandoned")

// ErrStopped is returned after Stop.
var ErrStopped = errors.New("rsm: stopped")

// Config assembles a replica.
type Config struct {
	// Node configures the underlying timewheel node. Its OnDeliver,
	// OnOutcome and Termination fields are owned by rsm and must be
	// left unset.
	Node timewheel.Config
	// Machine is the deterministic application core.
	Machine StateMachine
	// Timeout bounds how long a submitted command may remain
	// undetermined (default: 10 seconds).
	Timeout time.Duration
}

// Result is the outcome of a locally submitted command.
type Result struct {
	// Response is the state machine's return value on this replica.
	Response []byte
}

// Replica is one member of the replicated service.
type Replica struct {
	node    *timewheel.Node
	machine StateMachine
	timeout time.Duration
	selfID  int

	mu      sync.Mutex
	pending map[uint64]chan submitResult // own commands awaiting outcome
	results map[uint64][]byte            // responses for own delivered commands
	applied uint64
	stopped bool
}

type submitResult struct {
	response []byte
	err      error
}

// New builds a replica; call Start to join the service.
func New(cfg Config) (*Replica, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("rsm: Machine is required")
	}
	if cfg.Node.OnDeliver != nil || cfg.Node.OnOutcome != nil || cfg.Node.Termination != 0 {
		return nil, fmt.Errorf("rsm: Node.OnDeliver/OnOutcome/Termination are owned by rsm")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	r := &Replica{
		machine: cfg.Machine,
		timeout: timeout,
		selfID:  cfg.Node.ID,
		pending: make(map[uint64]chan submitResult),
		results: make(map[uint64][]byte),
	}
	nodeCfg := cfg.Node
	nodeCfg.OnDeliver = r.onDeliver
	nodeCfg.Termination = timeout
	nodeCfg.OnOutcome = r.onOutcome
	if snap, ok := cfg.Machine.(Snapshotter); ok {
		nodeCfg.Snapshot = snap.Snapshot
		nodeCfg.Install = snap.Restore
	}
	node, err := timewheel.NewNode(nodeCfg)
	if err != nil {
		return nil, err
	}
	r.node = node
	return r, nil
}

// Start joins the replica to the team.
func (r *Replica) Start() { r.node.Start() }

// Stop shuts the replica down; in-flight Submits fail with ErrStopped.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	for seq, ch := range r.pending {
		ch <- submitResult{err: ErrStopped}
		delete(r.pending, seq)
	}
	r.mu.Unlock()
	r.node.Stop()
}

// onDeliver applies committed commands in the agreed order (runs on the
// node's event loop: total order is the application order). Empty
// commands are barriers: they order and commit like any command but are
// not handed to the application.
func (r *Replica) onDeliver(d timewheel.Delivery) {
	var resp []byte
	if len(d.Payload) > 0 {
		resp = r.machine.Apply(d.Payload)
	}
	r.mu.Lock()
	r.applied++
	if d.Proposer == r.selfID {
		// Remember our own responses until the outcome report claims
		// them (delivery and outcome both run on the event loop, in
		// that order, but Submit consumes asynchronously).
		r.results[d.Seq] = resp
	}
	r.mu.Unlock()
}

// onOutcome resolves a local Submit.
func (r *Replica) onOutcome(o timewheel.Outcome) {
	r.mu.Lock()
	ch, ok := r.pending[o.Seq]
	delete(r.pending, o.Seq)
	resp := r.results[o.Seq]
	delete(r.results, o.Seq)
	r.mu.Unlock()
	if !ok {
		return
	}
	if o.Delivered {
		ch <- submitResult{response: resp}
	} else {
		ch <- submitResult{err: ErrAbandoned}
	}
}

// Submit broadcasts a command and blocks until it is applied on this
// replica (returning the state machine's response) or abandoned. The
// replica must currently be a group member.
func (r *Replica) Submit(ctx context.Context, cmd []byte) (Result, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return Result{}, ErrStopped
	}
	r.mu.Unlock()

	ch := make(chan submitResult, 1)
	// Register before proposing: the outcome may fire immediately.
	// The sequence number is not known until Propose returns, so park
	// the channel under a temporary key and move it. Proposals are
	// serialised through ProposeSeq below.
	seq, err := r.node.ProposeSeq(cmd, timewheel.TotalOrder, timewheel.Strong, func(seq uint64) {
		r.mu.Lock()
		r.pending[seq] = ch
		r.mu.Unlock()
	})
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return Result{Response: res.response}, res.err
	case <-ctx.Done():
		r.mu.Lock()
		delete(r.pending, seq)
		r.mu.Unlock()
		return Result{}, ctx.Err()
	}
}

// Barrier submits an empty command through the replicated log and waits
// for it to be applied locally. When Barrier returns, this replica's
// state machine reflects every command committed before the barrier was
// submitted — the standard recipe for linearizable local reads:
//
//	if err := rep.Barrier(ctx); err == nil {
//	    value := myMachine.Read() // up to date as of the barrier
//	}
//
// Empty commands are consumed by rsm itself and never reach Apply.
func (r *Replica) Barrier(ctx context.Context) error {
	_, err := r.Submit(ctx, nil)
	return err
}

// View returns the replica's current membership view.
func (r *Replica) View() (timewheel.View, bool) { return r.node.CurrentView() }

// Recovery reports what the underlying node rebuilt from its data
// directory at construction time (zero value when Node.DataDir is
// unset). When Durable is set, the state machine has already been
// restored from the latest snapshot and replayed through the logged
// deliveries by the time New returns.
func (r *Replica) Recovery() timewheel.RecoveryReport { return r.node.Recovery() }

// UpToDate reports the fail-awareness predicate of the underlying node.
func (r *Replica) UpToDate() bool { return r.node.UpToDate() }

// Applied returns the number of commands applied on this replica.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}
