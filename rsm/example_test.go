package rsm_test

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"timewheel"
	"timewheel/rsm"
)

// register is a deterministic state machine: every command adds its
// integer payload to a running total and returns the new total.
type register struct{ total int64 }

func (r *register) Apply(cmd []byte) []byte {
	n, _ := strconv.ParseInt(string(cmd), 10, 64)
	r.total += n
	return []byte(strconv.FormatInt(r.total, 10))
}

// Example_replicatedRegister runs a three-replica service and submits
// two commands through different replicas; total order makes the
// responses consistent.
func Example_replicatedRegister() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 500 * time.Microsecond, Seed: 2})
	defer hub.Close()

	replicas := make([]*rsm.Replica, 3)
	for i := range replicas {
		rep, err := rsm.New(rsm.Config{
			Node: timewheel.Config{
				ID:          i,
				ClusterSize: 3,
				Transport:   hub.Transport(i),
				Params: timewheel.Params{
					Delta: 4 * time.Millisecond,
					D:     8 * time.Millisecond,
				},
			},
			Machine: &register{},
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		replicas[i] = rep
		rep.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for {
		formed := true
		for _, r := range replicas {
			if v, ok := r.View(); !ok || len(v.Members) != 3 {
				formed = false
			}
		}
		if formed {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("formation timeout")
			return
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	submit := func(r *rsm.Replica, cmd string) (string, error) {
		for {
			res, err := r.Submit(ctx, []byte(cmd))
			switch err {
			case nil:
				return string(res.Response), nil
			case timewheel.ErrNotMember, rsm.ErrAbandoned:
				// Transient view change: retry.
				time.Sleep(time.Millisecond)
			default:
				return "", err
			}
		}
	}
	out, err := submit(replicas[0], "40")
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	fmt.Println("after first command:", out)
	out, err = submit(replicas[2], "2")
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	fmt.Println("after second command:", out)

	// Output:
	// after first command: 40
	// after second command: 42
}
