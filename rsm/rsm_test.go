package rsm

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timewheel"
)

// counter is a deterministic state machine: "add <k>" adds k and returns
// the new total; "get" returns the total.
type counter struct {
	mu    sync.Mutex
	total int64
	log   []string
}

func (c *counter) Apply(cmd []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := string(cmd)
	c.log = append(c.log, s)
	if k, ok := strings.CutPrefix(s, "add "); ok {
		n, _ := strconv.ParseInt(k, 10, 64)
		c.total += n
	}
	return []byte(strconv.FormatInt(c.total, 10))
}

func (c *counter) snapshot() (int64, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, append([]string(nil), c.log...)
}

func fastParams() timewheel.Params {
	// Loose enough to stay stable on loaded CI machines and under the
	// race detector, tight enough to keep the suite fast.
	return timewheel.Params{
		Delta:   4 * time.Millisecond,
		D:       8 * time.Millisecond,
		Epsilon: 2 * time.Millisecond,
		Sigma:   2 * time.Millisecond,
		SlotPad: time.Millisecond,
	}
}

func startReplicas(t *testing.T, n int) ([]*Replica, []*counter, func()) {
	t.Helper()
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 9})
	reps := make([]*Replica, n)
	machines := make([]*counter, n)
	for i := 0; i < n; i++ {
		machines[i] = &counter{}
		rep, err := New(Config{
			Node: timewheel.Config{
				ID: i, ClusterSize: n, Transport: hub.Transport(i), Params: fastParams(),
			},
			Machine: machines[i],
			Timeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
		rep.Start()
	}
	stop := func() {
		for _, r := range reps {
			r.Stop()
		}
		hub.Close()
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for _, r := range reps {
			if v, have := r.View(); !have || len(v.Members) != n {
				ok = false
			}
		}
		if ok {
			return reps, machines, stop
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("replicas never formed a view")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitAppliesEverywhere(t *testing.T) {
	reps, machines, stop := startReplicas(t, 3)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := reps[0].Submit(ctx, []byte("add 40"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if string(res.Response) != "40" {
		t.Fatalf("response: %q", res.Response)
	}
	res, err = reps[1].Submit(ctx, []byte("add 2"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if string(res.Response) != "42" {
		t.Fatalf("response: %q", res.Response)
	}

	// Every replica converges to the same total and command log.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, m := range machines {
			if total, _ := m.snapshot(); total != 42 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, m := range machines {
				total, log := m.snapshot()
				t.Logf("replica %d: total=%d log=%v", i, total, log)
			}
			t.Fatalf("replicas did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, refLog := machines[0].snapshot()
	for i := 1; i < 3; i++ {
		_, log := machines[i].snapshot()
		if fmt.Sprint(log) != fmt.Sprint(refLog) {
			t.Fatalf("replica %d log diverges: %v vs %v", i, log, refLog)
		}
	}
}

func TestConcurrentSubmitsLinearise(t *testing.T) {
	reps, machines, stop := startReplicas(t, 3)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	const per = 5
	for i, rep := range reps {
		i, rep := i, rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if _, err := rep.Submit(ctx, []byte(fmt.Sprintf("add %d", i+1))); err != nil {
					t.Errorf("replica %d submit: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := int64(per * (1 + 2 + 3))
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, m := range machines {
			if total, _ := m.snapshot(); total != want {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals did not converge to %d", want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitWhileNotMemberFails(t *testing.T) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
	defer hub.Close()
	rep, err := New(Config{
		Node:    timewheel.Config{ID: 0, ClusterSize: 3, Transport: hub.Transport(0), Params: fastParams()},
		Machine: &counter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	rep.Start()
	ctx := context.Background()
	if _, err := rep.Submit(ctx, []byte("add 1")); err != timewheel.ErrNotMember {
		t.Fatalf("submit while joining: %v", err)
	}
	if rep.UpToDate() {
		t.Fatalf("lone replica claims up-to-date view")
	}
}

func TestSubmitAfterStopFails(t *testing.T) {
	reps, _, stop := startReplicas(t, 3)
	stop()
	if _, err := reps[0].Submit(context.Background(), []byte("add 1")); err != ErrStopped {
		t.Fatalf("submit after stop: %v", err)
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	reps, _, stop := startReplicas(t, 3)
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reps[0].Submit(ctx, []byte("add 1")); err != context.Canceled {
		t.Fatalf("cancelled submit: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{})
	defer hub.Close()
	if _, err := New(Config{Node: timewheel.Config{ID: 0, ClusterSize: 1, Transport: hub.Transport(0)}}); err == nil {
		t.Fatalf("missing machine accepted")
	}
	if _, err := New(Config{
		Node:    timewheel.Config{ID: 0, ClusterSize: 1, Transport: hub.Transport(1), OnDeliver: func(timewheel.Delivery) {}},
		Machine: &counter{},
	}); err == nil {
		t.Fatalf("reserved callback accepted")
	}
}

func TestAppliedCounter(t *testing.T) {
	reps, _, stop := startReplicas(t, 3)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := reps[2].Submit(ctx, []byte("add 7")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reps[0].Applied() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("apply not observed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBarrierOrdersReads(t *testing.T) {
	reps, machines, stop := startReplicas(t, 3)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	if _, err := reps[0].Submit(ctx, []byte("add 10")); err != nil {
		t.Fatal(err)
	}
	// A barrier at replica 1 guarantees replica 1 has applied everything
	// committed before it — including replica 0's command.
	if err := reps[1].Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	if total, _ := machines[1].snapshot(); total != 10 {
		t.Fatalf("read after barrier: %d, want 10", total)
	}
	// Barriers do not reach the application.
	_, log := machines[1].snapshot()
	for _, cmd := range log {
		if cmd == "" {
			t.Fatalf("barrier leaked into Apply")
		}
	}
}

// snapCounter extends counter with snapshot/restore.
type snapCounter struct {
	counter
}

func (s *snapCounter) Snapshot() []byte {
	total, _ := s.counter.snapshot()
	return []byte(strconv.FormatInt(total, 10))
}

func (s *snapCounter) Restore(b []byte) {
	n, _ := strconv.ParseInt(string(b), 10, 64)
	s.mu.Lock()
	s.total = n
	s.log = nil
	s.mu.Unlock()
}

func TestReplicaRestartRecoversStateViaSnapshot(t *testing.T) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 31})
	defer hub.Close()
	const n = 3
	machines := make([]*snapCounter, n)
	reps := make([]*Replica, n)
	mk := func(i int) *Replica {
		rep, err := New(Config{
			Node: timewheel.Config{
				ID: i, ClusterSize: n, Transport: hub.Transport(i), Params: fastParams(),
			},
			Machine: machines[i],
			Timeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		return rep
	}
	for i := 0; i < n; i++ {
		machines[i] = &snapCounter{}
		reps[i] = mk(i)
	}
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()
	waitView := func(r *Replica, size int) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			if v, ok := r.View(); ok && len(v.Members) == size {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("view of size %d never formed", size)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, r := range reps {
		waitView(r, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	submit := func(r *Replica, cmd string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, err := r.Submit(ctx, []byte(cmd))
			if err == nil {
				return
			}
			if (err == timewheel.ErrNotMember || err == ErrAbandoned) && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			t.Fatalf("submit %q: %v", cmd, err)
		}
	}
	submit(reps[0], "add 100")

	// Kill replica 2, commit more state without it, then restart it
	// fresh (empty machine): the join-time snapshot must restore the
	// missed history.
	reps[2].Stop()
	waitView(reps[0], n-1)
	submit(reps[0], "add 11")
	machines[2] = &snapCounter{} // crash-amnesia: brand-new machine
	reps[2] = mk(2)
	waitView(reps[2], n)

	if err := reps[2].Barrier(ctx); err != nil {
		t.Fatalf("barrier on rejoined replica: %v", err)
	}
	if err := reps[0].Barrier(ctx); err != nil {
		t.Fatalf("barrier on stable replica: %v", err)
	}
	// The retry loop above gives at-least-once semantics (a command
	// reported abandoned during churn may still commit), so the absolute
	// total can exceed 111; the replicated-state property is that the
	// rejoined replica's state equals the stable members' — which it can
	// only reach through the join-time snapshot, having started empty.
	want, _ := machines[0].counter.snapshot()
	got, _ := machines[2].counter.snapshot()
	if want < 111 {
		t.Fatalf("stable replica missed commands: %d", want)
	}
	if got != want {
		_, log2 := machines[2].counter.snapshot()
		_, log0 := machines[0].counter.snapshot()
		t.Fatalf("rejoined replica state %d, stable replicas have %d\n p2 post-restore log: %v\n p0 log: %v",
			got, want, log2, log0)
	}
}

// restoreCounter counts Restore calls so the durable restart test can
// tell a warm (log-replayed) rejoin from a full state transfer.
type restoreCounter struct {
	snapCounter
	restores atomic.Int64
}

func (r *restoreCounter) Restore(b []byte) {
	r.restores.Add(1)
	r.snapCounter.Restore(b)
}

func TestReplicaDurableRestartWarmRejoin(t *testing.T) {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 17})
	defer hub.Close()
	const n = 3
	base := t.TempDir()
	machines := make([]*restoreCounter, n)
	reps := make([]*Replica, n)
	mk := func(i int) *Replica {
		rep, err := New(Config{
			Node: timewheel.Config{
				ID: i, ClusterSize: n, Transport: hub.Transport(i), Params: fastParams(),
				DataDir:       filepath.Join(base, fmt.Sprintf("replica-%d", i)),
				Fsync:         "always",
				SnapshotEvery: 4,
			},
			Machine: machines[i],
			Timeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for i := 0; i < n; i++ {
		machines[i] = &restoreCounter{}
		reps[i] = mk(i)
		reps[i].Start()
	}
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()
	waitView := func(r *Replica, size int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			if v, ok := r.View(); ok && len(v.Members) == size {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("view of size %d never formed", size)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, r := range reps {
		waitView(r, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	submit := func(r *Replica, cmd string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, err := r.Submit(ctx, []byte(cmd))
			if err == nil {
				return
			}
			if (err == timewheel.ErrNotMember || err == ErrAbandoned) && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			t.Fatalf("submit %q: %v", cmd, err)
		}
	}
	for k := 0; k < 6; k++ {
		submit(reps[0], "add 1")
	}
	// The barrier pins replica 2's applied state before it goes down:
	// everything submitted above is on its disk when Stop returns.
	if err := reps[2].Barrier(ctx); err != nil {
		t.Fatalf("pre-stop barrier: %v", err)
	}
	preTotal, _ := machines[2].counter.snapshot()

	reps[2].Stop()
	waitView(reps[0], n-1)
	for k := 0; k < 5; k++ {
		submit(reps[0], "add 10")
	}

	// Restart on the same data directory with an empty machine: New must
	// rebuild the pre-stop state from disk before the node ever joins.
	machines[2] = &restoreCounter{}
	reps[2] = mk(2)
	rec := reps[2].Recovery()
	if !rec.Durable {
		t.Fatalf("restarted replica did not recover from its data directory")
	}
	if got, _ := machines[2].counter.snapshot(); got != preTotal {
		t.Fatalf("boot recovery rebuilt total %d, want pre-stop total %d (report %+v)", got, preTotal, rec)
	}
	bootRestores := machines[2].restores.Load()

	reps[2].Start()
	waitView(reps[2], n)
	if err := reps[2].Barrier(ctx); err != nil {
		t.Fatalf("barrier on rejoined replica: %v", err)
	}
	if err := reps[0].Barrier(ctx); err != nil {
		t.Fatalf("barrier on stable replica: %v", err)
	}
	want, _ := machines[0].counter.snapshot()
	got, _ := machines[2].counter.snapshot()
	if got != want {
		t.Fatalf("rejoined replica state %d, stable replicas have %d", got, want)
	}
	// A warm rejoin fetches the missed commands as a replay delta through
	// Apply; a Restore after Start would mean it fell back to a full
	// state transfer.
	if r := machines[2].restores.Load(); r != bootRestores {
		t.Fatalf("rejoin fell back to a full state transfer (%d restores after start)", r-bootRestores)
	}
}
