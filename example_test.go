package timewheel_test

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"timewheel"
)

// Example_cluster boots a three-node in-memory cluster, waits for the
// membership view to form, broadcasts one totally ordered update and
// prints each node's delivery.
func Example_cluster() {
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 500 * time.Microsecond, Seed: 1})
	defer hub.Close()

	var mu sync.Mutex
	var delivered []string
	nodes := make([]*timewheel.Node, 3)
	for i := range nodes {
		i := i
		n, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: 3,
			Transport:   hub.Transport(i),
			Params: timewheel.Params{
				Delta: 4 * time.Millisecond,
				D:     8 * time.Millisecond,
			},
			OnDeliver: func(d timewheel.Delivery) {
				mu.Lock()
				delivered = append(delivered, fmt.Sprintf("node %d got %q from node %d", i, d.Payload, d.Proposer))
				mu.Unlock()
			},
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		nodes[i] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// Wait until every node holds the full view, then broadcast.
	deadline := time.Now().Add(20 * time.Second)
	for {
		formed := true
		for _, n := range nodes {
			if v, ok := n.CurrentView(); !ok || len(v.Members) != 3 {
				formed = false
			}
		}
		if formed {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("formation timeout")
			return
		}
		time.Sleep(time.Millisecond)
	}
	// A propose can race a transient view change (ErrNotMember): retry.
	for {
		err := nodes[1].Propose([]byte("hello"), timewheel.TotalOrder, timewheel.Strong)
		if err == nil {
			break
		}
		if err != timewheel.ErrNotMember || time.Now().After(deadline) {
			fmt.Println("propose:", err)
			return
		}
		time.Sleep(time.Millisecond)
	}
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("delivery timeout")
			return
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	sort.Strings(delivered)
	for _, d := range delivered {
		fmt.Println(d)
	}
	mu.Unlock()

	// Output:
	// node 0 got "hello" from node 1
	// node 1 got "hello" from node 1
	// node 2 got "hello" from node 1
}
