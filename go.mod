module timewheel

go 1.23
