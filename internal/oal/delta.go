package oal

// Delta encoding of oal content for wire v5 decision/no-decision frames.
//
// A decision re-ships the decider's whole retained oal every cycle; in
// steady state most entries are unchanged since the previous decision the
// receiver already adopted. Diff/ReconstructInto let the sender ship only
// the entries that changed (plus the truncation point), and the receiver
// rebuild the identical full list from its pristine copy of the previous
// decision. Both sides key entries by ordinal: lists hold entries in
// strictly increasing ordinal order by construction (ordinals are
// assigned at append time), which the functions verify defensively so a
// corrupt or divergent peer degrades to a full-list resend instead of a
// wrong reconstruction.

// strictlyOrdered reports whether entries are in strictly increasing
// ordinal order with no unassigned ordinals — the precondition for
// ordinal-keyed delta merging.
func strictlyOrdered(entries []Descriptor) bool {
	prev := None
	for i := range entries {
		o := entries[i].Ordinal
		if o == None || o <= prev {
			return false
		}
		prev = o
	}
	return true
}

// descriptorEqual is Equal's per-entry comparison, shared with Diff.
func descriptorEqual(a, b *Descriptor) bool {
	if a.Kind != b.Kind || a.Ordinal != b.Ordinal || a.ID != b.ID ||
		a.Sem != b.Sem || a.HDO != b.HDO || a.Acks != b.Acks ||
		a.Undeliverable != b.Undeliverable || a.SendTS != b.SendTS ||
		a.StableTS != b.StableTS || a.GroupSeq != b.GroupSeq {
		return false
	}
	if len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return true
}

// Diff computes the entries of full that are new or changed relative to
// base: entries whose ordinal base does not hold, or holds with any
// differing field (acks, marks, stability — the per-field comparison of
// Equal). The returned descriptors are deep copies, safe to hand to a
// wire message that outlives full. ok is false when either list violates
// the strictly-increasing-ordinal precondition; callers must then fall
// back to shipping the full list.
func Diff(base, full *List) (delta []Descriptor, ok bool) {
	if !strictlyOrdered(base.Entries) || !strictlyOrdered(full.Entries) {
		return nil, false
	}
	for i := range full.Entries {
		f := &full.Entries[i]
		b := base.FindOrdinal(f.Ordinal)
		if b == nil || !descriptorEqual(b, f) {
			delta = append(delta, f.Clone())
		}
	}
	return delta, true
}

// TruncationPoint returns the first retained ordinal of l (Next when the
// list is empty): everything below it has been truncated by the sender
// and must be dropped by a receiver reconstructing from an older base.
func TruncationPoint(l *List) Ordinal {
	l.norm()
	if len(l.Entries) == 0 {
		return l.Next
	}
	return l.Entries[0].Ordinal
}

// ReconstructInto rebuilds the sender's full list into dst from the
// receiver's pristine base (the content of the previous decision both
// sides share), the sender's truncation point, and the delta entries.
// Base entries below truncBelow are dropped; a delta entry replaces the
// base entry with the same ordinal; delta entries beyond base extend the
// list. Entries taken from base are deep-copied so base stays pristine;
// delta entries are shallow-copied (the caller owns the decoded message).
// dst's slices are reused when capacity allows. ok is false when either
// input violates the ordinal-order precondition — dst is then
// unspecified and the caller must request a full list instead.
func ReconstructInto(dst *List, base *List, truncBelow Ordinal, delta *List) (ok bool) {
	if !strictlyOrdered(base.Entries) || !strictlyOrdered(delta.Entries) {
		return false
	}
	dst.Entries = dst.Entries[:0]
	dst.Next = delta.Next
	dst.norm()
	bi, di := 0, 0
	for bi < len(base.Entries) && base.Entries[bi].Ordinal < truncBelow {
		bi++
	}
	for bi < len(base.Entries) || di < len(delta.Entries) {
		switch {
		case bi == len(base.Entries):
			dst.Entries = append(dst.Entries, delta.Entries[di])
			di++
		case di == len(delta.Entries):
			dst.Entries = append(dst.Entries, base.Entries[bi].Clone())
			bi++
		case base.Entries[bi].Ordinal == delta.Entries[di].Ordinal:
			dst.Entries = append(dst.Entries, delta.Entries[di])
			bi++
			di++
		case base.Entries[bi].Ordinal < delta.Entries[di].Ordinal:
			dst.Entries = append(dst.Entries, base.Entries[bi].Clone())
			bi++
		default:
			dst.Entries = append(dst.Entries, delta.Entries[di])
			di++
		}
	}
	return true
}
