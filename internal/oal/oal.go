// Package oal implements the ordering and acknowledgement list ("oal")
// of the timewheel atomic broadcast protocol, together with the protocol
// vocabulary that hangs off it: proposal identifiers, ordinals, ordering
// and atomicity semantics, and acknowledgement sets.
//
// A decision message carries an oal: a sequence of update and membership
// change descriptors, each tagged with a unique ordinal, plus information
// about which group members have received (acknowledged) each
// update/membership change. The oal is the protocol's shared log
// metadata: it establishes ordinals, records stability, and — across view
// changes — carries the undeliverable marks of §4.3 of the paper.
package oal

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"

	"timewheel/internal/model"
)

// Ordinal is the unique number a decision message associates with an
// update or membership change. Ordinal 0 means "not yet assigned"; real
// ordinals start at 1 and increase without gaps in decision order.
type Ordinal uint64

// None is the unassigned ordinal.
const None Ordinal = 0

// ProposalID names a proposal uniquely: the proposing process plus a
// per-proposer sequence number (FIFO order per proposer).
type ProposalID struct {
	Proposer model.ProcessID
	Seq      uint64
}

func (id ProposalID) String() string {
	return fmt.Sprintf("%v#%d", id.Proposer, id.Seq)
}

// Order is an ordering semantic of the timewheel broadcast service.
type Order uint8

const (
	// Unordered delivery: any order once atomicity is satisfied
	// (per-sender FIFO is still preserved).
	Unordered Order = iota
	// TotalOrder delivery: all members deliver updates in ordinal order.
	TotalOrder
	// TimeOrder delivery: all members deliver updates in send-timestamp
	// order of their synchronized clocks.
	TimeOrder
)

func (o Order) String() string {
	switch o {
	case Unordered:
		return "unordered"
	case TotalOrder:
		return "total"
	case TimeOrder:
		return "time"
	default:
		return fmt.Sprintf("order(%d)", uint8(o))
	}
}

// Atomicity is an atomicity semantic of the timewheel broadcast service.
type Atomicity uint8

const (
	// WeakAtomicity: deliver as soon as the update is received locally
	// and has an ordinal.
	WeakAtomicity Atomicity = iota
	// StrongAtomicity: deliver only after a majority of the group has
	// acknowledged every proposal the update may depend on (ordinals up
	// to its hdo).
	StrongAtomicity
	// StrictAtomicity: as strong, but every current group member must
	// have acknowledged.
	StrictAtomicity
)

func (a Atomicity) String() string {
	switch a {
	case WeakAtomicity:
		return "weak"
	case StrongAtomicity:
		return "strong"
	case StrictAtomicity:
		return "strict"
	default:
		return fmt.Sprintf("atomicity(%d)", uint8(a))
	}
}

// Semantics couples the ordering and atomicity requested for a proposal.
type Semantics struct {
	Order     Order
	Atomicity Atomicity
}

func (s Semantics) String() string { return s.Order.String() + "/" + s.Atomicity.String() }

// AckSet is a bitmask of process IDs that have acknowledged a descriptor.
// The implementation supports teams of up to 64 processes, far beyond the
// workstation-cluster scale the protocol targets.
type AckSet uint64

// MaxProcesses is the largest team size an AckSet can represent.
const MaxProcesses = 64

// Add marks p as having acknowledged.
func (a *AckSet) Add(p model.ProcessID) {
	if p >= 0 && p < MaxProcesses {
		*a |= 1 << uint(p)
	}
}

// Has reports whether p has acknowledged.
func (a AckSet) Has(p model.ProcessID) bool {
	return p >= 0 && p < MaxProcesses && a&(1<<uint(p)) != 0
}

// Count returns the number of acknowledgements.
func (a AckSet) Count() int { return bits.OnesCount64(uint64(a)) }

// CountIn returns how many members of g have acknowledged.
func (a AckSet) CountIn(g model.Group) int {
	n := 0
	for _, m := range g.Members {
		if a.Has(m) {
			n++
		}
	}
	return n
}

// Union merges two ack sets.
func (a AckSet) Union(b AckSet) AckSet { return a | b }

func (a AckSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for p := model.ProcessID(0); p < MaxProcesses; p++ {
		if a.Has(p) {
			if !first {
				sb.WriteByte(',')
			}
			sb.WriteString(p.String())
			first = false
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// DescriptorKind distinguishes update descriptors from membership change
// descriptors in the oal.
type DescriptorKind uint8

const (
	// UpdateDesc describes a broadcast update (a proposal).
	UpdateDesc DescriptorKind = iota
	// MembershipDesc describes a membership change (a new group-list).
	MembershipDesc
)

func (k DescriptorKind) String() string {
	if k == MembershipDesc {
		return "membership"
	}
	return "update"
}

// Descriptor is one entry of the oal.
type Descriptor struct {
	Kind    DescriptorKind
	Ordinal Ordinal

	// Update descriptors.
	ID     ProposalID // which proposal
	SendTS model.Time // proposal send timestamp (synchronized clock)
	Sem    Semantics
	HDO    Ordinal // highest dependency ordinal carried by the proposal
	Acks   AckSet  // members known to have received the proposal

	// Undeliverable marks a purged update (§4.3): no group member may
	// deliver it. Set only on update descriptors.
	Undeliverable bool

	// StableTS is the synchronized-clock time at which the descriptor
	// became stable (acknowledged by every group member, marked
	// undeliverable, or — for membership descriptors — created). Zero
	// means not yet stable. Deciders truncate descriptors whose
	// stability is older than one cycle: by then every member has
	// rotated through the decider role and consumed them.
	StableTS model.Time

	// Membership descriptors.
	GroupSeq model.GroupSeq
	Members  []model.ProcessID
}

// Clone deep-copies the descriptor.
func (d Descriptor) Clone() Descriptor {
	d.Members = slices.Clone(d.Members)
	return d
}

func (d Descriptor) String() string {
	if d.Kind == MembershipDesc {
		return fmt.Sprintf("[o%d member g%d %v]", d.Ordinal, d.GroupSeq, d.Members)
	}
	mark := ""
	if d.Undeliverable {
		mark = " UNDELIVERABLE"
	}
	return fmt.Sprintf("[o%d %v %v acks=%d%s]", d.Ordinal, d.ID, d.Sem, d.Acks.Count(), mark)
}

// List is an ordering and acknowledgement list: descriptors in ordinal
// order, plus the next ordinal to assign. The zero value is an empty list
// whose first assigned ordinal is 1.
type List struct {
	// Entries are in strictly increasing ordinal order. The head may
	// have been truncated (stable prefix purged); FirstOrdinal tracks
	// how many ordinals precede Entries[0].
	Entries []Descriptor
	// Next is the next ordinal a decider will assign. A zero value is
	// normalised to 1 on first use.
	Next Ordinal
}

// NewList returns an empty list that will assign ordinals from 1.
func NewList() *List { return &List{Next: 1} }

func (l *List) norm() {
	if l.Next == 0 {
		l.Next = 1
	}
}

// Len returns the number of descriptors currently held.
func (l *List) Len() int { return len(l.Entries) }

// HighestOrdinal returns the largest ordinal ever assigned (Next-1).
func (l *List) HighestOrdinal() Ordinal {
	l.norm()
	return l.Next - 1
}

// AppendUpdate assigns the next ordinal to proposal id and appends its
// descriptor, returning the assigned ordinal. Only deciders append.
func (l *List) AppendUpdate(id ProposalID, sem Semantics, sendTS model.Time, hdo Ordinal, acks AckSet) Ordinal {
	l.norm()
	ord := l.Next
	l.Next++
	l.Entries = append(l.Entries, Descriptor{
		Kind:    UpdateDesc,
		Ordinal: ord,
		ID:      id,
		SendTS:  sendTS,
		Sem:     sem,
		HDO:     hdo,
		Acks:    acks,
	})
	return ord
}

// AppendMembership assigns the next ordinal to a membership change and
// appends its descriptor, returning the assigned ordinal.
func (l *List) AppendMembership(g model.Group) Ordinal {
	l.norm()
	ord := l.Next
	l.Next++
	l.Entries = append(l.Entries, Descriptor{
		Kind:     MembershipDesc,
		Ordinal:  ord,
		GroupSeq: g.Seq,
		Members:  slices.Clone(g.Members),
	})
	return ord
}

// Find returns a pointer to the descriptor with the given proposal ID, or
// nil if absent (never for membership descriptors).
func (l *List) Find(id ProposalID) *Descriptor {
	for i := range l.Entries {
		d := &l.Entries[i]
		if d.Kind == UpdateDesc && d.ID == id {
			return d
		}
	}
	return nil
}

// FindOrdinal returns a pointer to the descriptor with the given ordinal,
// or nil if it is absent (unassigned, or already purged from the head).
func (l *List) FindOrdinal(ord Ordinal) *Descriptor {
	if ord == None {
		return nil
	}
	i, ok := slices.BinarySearchFunc(l.Entries, ord, func(d Descriptor, o Ordinal) int {
		switch {
		case d.Ordinal < o:
			return -1
		case d.Ordinal > o:
			return 1
		default:
			return 0
		}
	})
	if !ok {
		return nil
	}
	return &l.Entries[i]
}

// Ack records that process p has received the proposal with ID id.
// It reports whether the descriptor was found.
func (l *List) Ack(id ProposalID, p model.ProcessID) bool {
	if d := l.Find(id); d != nil {
		d.Acks.Add(p)
		return true
	}
	return false
}

// MergeAcks unions acknowledgement bits from another view of the same
// log. Only descriptors present in both lists are merged; ordinal
// mismatches for the same proposal ID indicate divergent logs and panic.
func (l *List) MergeAcks(other *List) {
	for i := range other.Entries {
		od := &other.Entries[i]
		if od.Kind != UpdateDesc {
			continue
		}
		if d := l.Find(od.ID); d != nil {
			if d.Ordinal != od.Ordinal {
				panic(fmt.Sprintf("oal: divergent ordinal for %v: %d vs %d", od.ID, d.Ordinal, od.Ordinal))
			}
			d.Acks = d.Acks.Union(od.Acks)
			if od.Undeliverable {
				d.Undeliverable = true
			}
		}
	}
}

// MarkUndeliverable sets the undeliverable flag on the descriptor with
// proposal ID id, reporting whether it was found.
func (l *List) MarkUndeliverable(id ProposalID) bool {
	if d := l.Find(id); d != nil && d.Kind == UpdateDesc {
		d.Undeliverable = true
		return true
	}
	return false
}

// IsPrefixOf reports whether l is a prefix of longer: every descriptor of
// l appears at the same position in longer with the same ordinal, kind
// and identity (acknowledgement bits and undeliverable marks are views
// and may differ; the paper's prefix relation explicitly ignores them).
func (l *List) IsPrefixOf(longer *List) bool {
	if len(l.Entries) > len(longer.Entries) {
		return false
	}
	for i := range l.Entries {
		a := &l.Entries[i]
		b := longer.FindOrdinal(a.Ordinal)
		if b == nil {
			return false
		}
		if a.Kind != b.Kind {
			return false
		}
		if a.Kind == UpdateDesc && a.ID != b.ID {
			return false
		}
		if a.Kind == MembershipDesc && a.GroupSeq != b.GroupSeq {
			return false
		}
	}
	return true
}

// TruncateStable removes the longest prefix of descriptors for which
// stable reports true. It returns the removed descriptors. Deciders call
// this to keep decision messages bounded; the predicate typically checks
// "acknowledged by all members and delivered everywhere" or
// "undeliverable mark reached the head" (§4.3).
func (l *List) TruncateStable(stable func(*Descriptor) bool) []Descriptor {
	cut := 0
	for cut < len(l.Entries) && stable(&l.Entries[cut]) {
		cut++
	}
	removed := slices.Clone(l.Entries[:cut])
	l.Entries = slices.Delete(l.Entries, 0, cut)
	return removed
}

// Clone deep-copies the list.
func (l *List) Clone() *List {
	out := &List{Next: l.Next, Entries: make([]Descriptor, len(l.Entries))}
	for i := range l.Entries {
		out.Entries[i] = l.Entries[i].Clone()
	}
	out.norm()
	return out
}

// Equal reports structural equality (including acks and marks).
func (l *List) Equal(o *List) bool {
	if l.HighestOrdinal() != o.HighestOrdinal() || len(l.Entries) != len(o.Entries) {
		return false
	}
	for i := range l.Entries {
		a, b := l.Entries[i], o.Entries[i]
		if a.Kind != b.Kind || a.Ordinal != b.Ordinal || a.ID != b.ID ||
			a.Sem != b.Sem || a.HDO != b.HDO || a.Acks != b.Acks ||
			a.Undeliverable != b.Undeliverable || a.SendTS != b.SendTS ||
			a.StableTS != b.StableTS ||
			a.GroupSeq != b.GroupSeq || !slices.Equal(a.Members, b.Members) {
			return false
		}
	}
	return true
}

func (l *List) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oal(next=%d", l.Next)
	for i := range l.Entries {
		b.WriteByte(' ')
		b.WriteString(l.Entries[i].String())
	}
	b.WriteByte(')')
	return b.String()
}
