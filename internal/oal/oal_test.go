package oal

import (
	"testing"
	"testing/quick"

	"timewheel/internal/model"
)

func TestOrdinalAssignment(t *testing.T) {
	l := NewList()
	o1 := l.AppendUpdate(ProposalID{0, 1}, Semantics{}, 10, None, 0)
	o2 := l.AppendUpdate(ProposalID{1, 1}, Semantics{}, 20, None, 0)
	o3 := l.AppendMembership(model.NewGroup(1, []model.ProcessID{0, 1}))
	if o1 != 1 || o2 != 2 || o3 != 3 {
		t.Fatalf("ordinals %d %d %d, want 1 2 3", o1, o2, o3)
	}
	if l.HighestOrdinal() != 3 {
		t.Fatalf("highest %d", l.HighestOrdinal())
	}
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
}

func TestZeroValueListNormalises(t *testing.T) {
	var l List
	if got := l.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0); got != 1 {
		t.Fatalf("first ordinal %d, want 1", got)
	}
	var l2 List
	if l2.HighestOrdinal() != 0 {
		t.Fatalf("empty highest %d", l2.HighestOrdinal())
	}
}

func TestFindAndFindOrdinal(t *testing.T) {
	l := NewList()
	id := ProposalID{2, 7}
	ord := l.AppendUpdate(id, Semantics{TotalOrder, StrongAtomicity}, 5, None, 0)
	l.AppendMembership(model.NewGroup(0, []model.ProcessID{0}))

	if d := l.Find(id); d == nil || d.Ordinal != ord {
		t.Fatalf("Find: %v", d)
	}
	if d := l.Find(ProposalID{2, 8}); d != nil {
		t.Fatalf("Find absent: %v", d)
	}
	if d := l.FindOrdinal(ord); d == nil || d.ID != id {
		t.Fatalf("FindOrdinal: %v", d)
	}
	if d := l.FindOrdinal(None); d != nil {
		t.Fatalf("FindOrdinal(None): %v", d)
	}
	if d := l.FindOrdinal(99); d != nil {
		t.Fatalf("FindOrdinal absent: %v", d)
	}
}

func TestAcks(t *testing.T) {
	l := NewList()
	id := ProposalID{0, 1}
	l.AppendUpdate(id, Semantics{}, 0, None, 0)
	if !l.Ack(id, 3) {
		t.Fatalf("Ack reported missing")
	}
	if l.Ack(ProposalID{0, 9}, 3) {
		t.Fatalf("Ack on absent descriptor")
	}
	d := l.Find(id)
	if !d.Acks.Has(3) || d.Acks.Has(2) {
		t.Fatalf("acks: %v", d.Acks)
	}
	g := model.NewGroup(0, []model.ProcessID{1, 3, 5})
	if got := d.Acks.CountIn(g); got != 1 {
		t.Fatalf("CountIn: %d", got)
	}
	if d.Acks.Count() != 1 {
		t.Fatalf("Count: %d", d.Acks.Count())
	}
}

func TestAckSetBounds(t *testing.T) {
	var a AckSet
	a.Add(model.NoProcess) // out of range: ignored
	a.Add(64)              // out of range: ignored
	a.Add(0)
	a.Add(63)
	if a.Count() != 2 || !a.Has(0) || !a.Has(63) {
		t.Fatalf("ackset: %v count=%d", a, a.Count())
	}
	if a.Has(model.NoProcess) || a.Has(64) {
		t.Fatalf("out-of-range Has true")
	}
	b := AckSet(0)
	b.Add(1)
	if u := a.Union(b); u.Count() != 3 {
		t.Fatalf("union count: %d", u.Count())
	}
}

func TestMergeAcks(t *testing.T) {
	mk := func() *List {
		l := NewList()
		l.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
		l.AppendUpdate(ProposalID{1, 1}, Semantics{}, 0, None, 0)
		return l
	}
	a, b := mk(), mk()
	a.Ack(ProposalID{0, 1}, 0)
	b.Ack(ProposalID{0, 1}, 1)
	b.Ack(ProposalID{1, 1}, 2)
	b.MarkUndeliverable(ProposalID{1, 1})
	a.MergeAcks(b)
	d0 := a.Find(ProposalID{0, 1})
	if !d0.Acks.Has(0) || !d0.Acks.Has(1) {
		t.Fatalf("merged acks: %v", d0.Acks)
	}
	d1 := a.Find(ProposalID{1, 1})
	if !d1.Acks.Has(2) || !d1.Undeliverable {
		t.Fatalf("merged second: %+v", d1)
	}
}

func TestMergeAcksDivergentOrdinalsPanics(t *testing.T) {
	a, b := NewList(), NewList()
	a.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0) // ordinal 1
	b.AppendUpdate(ProposalID{9, 9}, Semantics{}, 0, None, 0) // ordinal 1
	b.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0) // ordinal 2 — diverges
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on divergent logs")
		}
	}()
	a.MergeAcks(b)
}

func TestMarkUndeliverable(t *testing.T) {
	l := NewList()
	id := ProposalID{0, 1}
	l.AppendUpdate(id, Semantics{}, 0, None, 0)
	l.AppendMembership(model.NewGroup(0, []model.ProcessID{0}))
	if !l.MarkUndeliverable(id) {
		t.Fatalf("mark failed")
	}
	if !l.Find(id).Undeliverable {
		t.Fatalf("flag not set")
	}
	if l.MarkUndeliverable(ProposalID{5, 5}) {
		t.Fatalf("marked absent descriptor")
	}
}

func TestIsPrefixOf(t *testing.T) {
	long := NewList()
	long.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
	long.AppendUpdate(ProposalID{1, 1}, Semantics{}, 0, None, 0)
	long.AppendMembership(model.NewGroup(1, []model.ProcessID{0, 1}))

	short := NewList()
	short.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
	short.AppendUpdate(ProposalID{1, 1}, Semantics{}, 0, None, 0)

	if !short.IsPrefixOf(long) {
		t.Fatalf("short should be prefix of long")
	}
	if long.IsPrefixOf(short) {
		t.Fatalf("long is not a prefix of short")
	}
	if !long.IsPrefixOf(long) {
		t.Fatalf("list should be prefix of itself")
	}
	// Acks may differ without breaking the prefix relation.
	short.Ack(ProposalID{0, 1}, 5)
	if !short.IsPrefixOf(long) {
		t.Fatalf("prefix relation must ignore ack bits")
	}
	// Divergent identity at same ordinal breaks it.
	div := NewList()
	div.AppendUpdate(ProposalID{9, 9}, Semantics{}, 0, None, 0)
	if div.IsPrefixOf(long) {
		t.Fatalf("divergent list reported as prefix")
	}
	empty := NewList()
	if !empty.IsPrefixOf(long) || !empty.IsPrefixOf(empty) {
		t.Fatalf("empty list must be a prefix of anything")
	}
}

func TestIsPrefixOfKindMismatch(t *testing.T) {
	a := NewList()
	a.AppendMembership(model.NewGroup(0, []model.ProcessID{0}))
	b := NewList()
	b.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
	if a.IsPrefixOf(b) {
		t.Fatalf("membership vs update at same ordinal must not be prefix")
	}
	// Membership descriptors compare by group seq.
	c := NewList()
	c.AppendMembership(model.NewGroup(1, []model.ProcessID{0}))
	if a.IsPrefixOf(c) {
		t.Fatalf("different group seq must not be prefix")
	}
}

func TestTruncateStable(t *testing.T) {
	l := NewList()
	l.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
	l.AppendUpdate(ProposalID{0, 2}, Semantics{}, 0, None, 0)
	l.AppendUpdate(ProposalID{0, 3}, Semantics{}, 0, None, 0)
	l.Ack(ProposalID{0, 1}, 0)
	l.Ack(ProposalID{0, 3}, 0)

	removed := l.TruncateStable(func(d *Descriptor) bool { return d.Acks.Has(0) })
	if len(removed) != 1 || removed[0].ID != (ProposalID{0, 1}) {
		t.Fatalf("removed: %v", removed)
	}
	// Entry 3 is stable but entry 2 blocks the prefix.
	if l.Len() != 2 || l.Entries[0].ID != (ProposalID{0, 2}) {
		t.Fatalf("remaining: %v", l)
	}
	// Ordinal lookup still works after truncation.
	if d := l.FindOrdinal(3); d == nil || d.ID != (ProposalID{0, 3}) {
		t.Fatalf("FindOrdinal after truncate: %v", d)
	}
	if d := l.FindOrdinal(1); d != nil {
		t.Fatalf("purged ordinal still found: %v", d)
	}
	// Next ordinal unaffected.
	if got := l.AppendUpdate(ProposalID{0, 4}, Semantics{}, 0, None, 0); got != 4 {
		t.Fatalf("next ordinal after truncate: %d", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := NewList()
	l.AppendUpdate(ProposalID{0, 1}, Semantics{TotalOrder, StrictAtomicity}, 7, 3, 0)
	l.AppendMembership(model.NewGroup(2, []model.ProcessID{0, 1, 2}))
	c := l.Clone()
	if !l.Equal(c) {
		t.Fatalf("clone not equal:\n%v\n%v", l, c)
	}
	c.Ack(ProposalID{0, 1}, 5)
	c.Entries[1].Members[0] = 9
	if l.Find(ProposalID{0, 1}).Acks.Has(5) {
		t.Fatalf("clone shares ack storage")
	}
	if l.Entries[1].Members[0] == 9 {
		t.Fatalf("clone shares member storage")
	}
	if l.Equal(c) {
		t.Fatalf("Equal missed differences")
	}
}

func TestEqualDetectsFieldDifferences(t *testing.T) {
	base := func() *List {
		l := NewList()
		l.AppendUpdate(ProposalID{0, 1}, Semantics{TotalOrder, WeakAtomicity}, 7, 2, 0)
		return l
	}
	muts := []func(*List){
		func(l *List) { l.Entries[0].SendTS = 8 },
		func(l *List) { l.Entries[0].HDO = 3 },
		func(l *List) { l.Entries[0].Sem.Order = TimeOrder },
		func(l *List) { l.Entries[0].Undeliverable = true },
		func(l *List) { l.Entries[0].Acks.Add(1) },
		func(l *List) { l.AppendUpdate(ProposalID{1, 1}, Semantics{}, 0, None, 0) },
	}
	for i, mut := range muts {
		a, b := base(), base()
		mut(b)
		if a.Equal(b) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if Unordered.String() != "unordered" || TotalOrder.String() != "total" || TimeOrder.String() != "time" {
		t.Error("Order strings")
	}
	if Order(9).String() == "" || Atomicity(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if WeakAtomicity.String() != "weak" || StrongAtomicity.String() != "strong" || StrictAtomicity.String() != "strict" {
		t.Error("Atomicity strings")
	}
	if (Semantics{TotalOrder, StrictAtomicity}).String() != "total/strict" {
		t.Error("Semantics string")
	}
	if UpdateDesc.String() != "update" || MembershipDesc.String() != "membership" {
		t.Error("DescriptorKind strings")
	}
	if (ProposalID{3, 9}).String() != "p3#9" {
		t.Error("ProposalID string")
	}
	l := NewList()
	l.AppendUpdate(ProposalID{0, 1}, Semantics{}, 0, None, 0)
	l.MarkUndeliverable(ProposalID{0, 1})
	l.AppendMembership(model.NewGroup(0, []model.ProcessID{0}))
	if l.String() == "" {
		t.Error("List string empty")
	}
	var a AckSet
	a.Add(0)
	a.Add(2)
	if a.String() != "{p0,p2}" {
		t.Errorf("AckSet string: %q", a.String())
	}
}

func TestAppendTruncateRoundTripProperty(t *testing.T) {
	// Property: after any sequence of appends and full-stable truncations,
	// ordinals remain strictly increasing and FindOrdinal agrees with the
	// entry's position.
	f := func(ops []uint8) bool {
		l := NewList()
		seq := uint64(0)
		for _, op := range ops {
			if op%4 == 0 && l.Len() > 0 {
				l.TruncateStable(func(d *Descriptor) bool { return d.Ordinal%2 == 1 })
			} else {
				seq++
				l.AppendUpdate(ProposalID{model.ProcessID(op % 3), seq}, Semantics{}, 0, None, 0)
			}
			prev := Ordinal(0)
			for i := range l.Entries {
				d := &l.Entries[i]
				if d.Ordinal <= prev {
					return false
				}
				prev = d.Ordinal
				if l.FindOrdinal(d.Ordinal) != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeAcksCommutativeAndIdempotent(t *testing.T) {
	// Property: merging peer views in any order yields the same ack
	// state, and re-merging changes nothing.
	f := func(ops []uint16) bool {
		mk := func() *List {
			l := NewList()
			for i := 0; i < 6; i++ {
				l.AppendUpdate(ProposalID{Proposer: model.ProcessID(i % 3), Seq: uint64(i + 1)}, Semantics{}, 0, None, 0)
			}
			return l
		}
		a, b, c := mk(), mk(), mk()
		for _, op := range ops {
			entry := int(op) % 6
			who := model.ProcessID(op>>4) % 8
			switch (op >> 8) % 3 {
			case 0:
				a.Entries[entry].Acks.Add(who)
			case 1:
				b.Entries[entry].Acks.Add(who)
			case 2:
				c.Entries[entry].Acks.Add(who)
			}
		}
		// Merge in two different orders.
		m1 := mk()
		m1.MergeAcks(a)
		m1.MergeAcks(b)
		m1.MergeAcks(c)
		m2 := mk()
		m2.MergeAcks(c)
		m2.MergeAcks(a)
		m2.MergeAcks(b)
		if !m1.Equal(m2) {
			return false
		}
		// Idempotence.
		m3 := m1.Clone()
		m3.MergeAcks(a)
		m3.MergeAcks(b)
		m3.MergeAcks(c)
		return m1.Equal(m3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPrefixOfTransitive(t *testing.T) {
	// Property: if a ⊑ b and b ⊑ c then a ⊑ c, for prefix chains built
	// by extending a common log.
	f := func(cut1, cut2 uint8, total uint8) bool {
		n := int(total%12) + 3
		c := NewList()
		for i := 0; i < n; i++ {
			c.AppendUpdate(ProposalID{Proposer: model.ProcessID(i % 4), Seq: uint64(i + 1)}, Semantics{}, 0, None, 0)
		}
		k1 := int(cut1) % n
		k2 := k1 + int(cut2)%(n-k1)
		a := &List{Entries: c.Clone().Entries[:k1], Next: Ordinal(k1 + 1)}
		b := &List{Entries: c.Clone().Entries[:k2], Next: Ordinal(k2 + 1)}
		if !a.IsPrefixOf(b) || !b.IsPrefixOf(c) {
			return false
		}
		return a.IsPrefixOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncateNeverBreaksPrefixRelation(t *testing.T) {
	// Property: a truncated list remains a prefix-compatible view of the
	// untruncated one (by ordinal identity).
	f := func(marks []bool) bool {
		full := NewList()
		for i := 0; i < 10; i++ {
			full.AppendUpdate(ProposalID{Proposer: 0, Seq: uint64(i + 1)}, Semantics{}, 0, None, 0)
		}
		cut := full.Clone()
		i := 0
		cut.TruncateStable(func(*Descriptor) bool {
			ok := i < len(marks) && marks[i]
			i++
			return ok
		})
		return cut.IsPrefixOf(full) || len(cut.Entries) <= len(full.Entries)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
