package oal

import (
	"testing"

	"timewheel/internal/model"
)

func mkList(t *testing.T, n int) *List {
	t.Helper()
	l := NewList()
	for i := 0; i < n; i++ {
		id := ProposalID{Proposer: model.ProcessID(i % 3), Seq: uint64(i)}
		l.AppendUpdate(id, Semantics{Order: TotalOrder, Atomicity: StrongAtomicity}, model.Time(100+i), None, 0)
	}
	return l
}

func reconstructEquals(t *testing.T, base, full *List, truncBelow Ordinal, delta []Descriptor) {
	t.Helper()
	d := &List{Entries: delta, Next: full.Next}
	var got List
	if !ReconstructInto(&got, base, truncBelow, d) {
		t.Fatalf("ReconstructInto rejected well-formed inputs")
	}
	if !got.Equal(full) {
		t.Fatalf("reconstruction mismatch:\n base=%v\ndelta=%v\n got=%v\n want=%v", base, delta, &got, full)
	}
}

func TestDiffIdenticalListsIsEmpty(t *testing.T) {
	base := mkList(t, 8)
	full := base.Clone()
	delta, ok := Diff(base, full)
	if !ok {
		t.Fatalf("Diff rejected ordered lists")
	}
	if len(delta) != 0 {
		t.Fatalf("identical lists produced delta %v", delta)
	}
	reconstructEquals(t, base, full, TruncationPoint(full), delta)
}

func TestDiffCapturesNewAndChangedEntries(t *testing.T) {
	base := mkList(t, 8)
	full := base.Clone()
	// Change an ack and a mark, append two new entries.
	full.Entries[2].Acks.Add(5)
	full.Entries[6].Undeliverable = true
	full.AppendUpdate(ProposalID{Proposer: 9, Seq: 1}, Semantics{}, 500, None, 0)
	full.AppendMembership(model.Group{Seq: 3, Members: []model.ProcessID{0, 1, 2}})
	delta, ok := Diff(base, full)
	if !ok {
		t.Fatalf("Diff rejected ordered lists")
	}
	if len(delta) != 4 {
		t.Fatalf("want 4 delta entries, got %d: %v", len(delta), delta)
	}
	reconstructEquals(t, base, full, TruncationPoint(full), delta)
}

func TestReconstructDropsTruncatedPrefix(t *testing.T) {
	base := mkList(t, 10)
	full := base.Clone()
	// Sender truncated the first 4 entries and changed one survivor.
	full.TruncateStable(func(d *Descriptor) bool { return d.Ordinal <= 4 })
	full.Entries[1].StableTS = 999
	delta, ok := Diff(base, full)
	if !ok {
		t.Fatalf("Diff rejected ordered lists")
	}
	if len(delta) != 1 {
		t.Fatalf("want 1 delta entry, got %d: %v", len(delta), delta)
	}
	reconstructEquals(t, base, full, TruncationPoint(full), delta)
}

func TestReconstructEmptyFullList(t *testing.T) {
	base := mkList(t, 5)
	full := base.Clone()
	full.TruncateStable(func(*Descriptor) bool { return true })
	delta, ok := Diff(base, full)
	if !ok || len(delta) != 0 {
		t.Fatalf("want empty delta, got ok=%v %v", ok, delta)
	}
	reconstructEquals(t, base, full, TruncationPoint(full), delta)
}

func TestDiffRejectsUnorderedEntries(t *testing.T) {
	base := mkList(t, 3)
	bad := base.Clone()
	bad.Entries[0].Ordinal, bad.Entries[2].Ordinal = bad.Entries[2].Ordinal, bad.Entries[0].Ordinal
	if _, ok := Diff(base, bad); ok {
		t.Fatalf("Diff accepted out-of-order full list")
	}
	if _, ok := Diff(bad, base); ok {
		t.Fatalf("Diff accepted out-of-order base list")
	}
	var dst List
	if ReconstructInto(&dst, bad, 1, base) {
		t.Fatalf("ReconstructInto accepted out-of-order base")
	}
	unassigned := base.Clone()
	unassigned.Entries[1].Ordinal = None
	if _, ok := Diff(base, unassigned); ok {
		t.Fatalf("Diff accepted unassigned ordinal")
	}
}

func TestReconstructKeepsBasePristine(t *testing.T) {
	base := mkList(t, 4)
	base.AppendMembership(model.Group{Seq: 2, Members: []model.ProcessID{0, 1}})
	snapshot := base.Clone()
	full := base.Clone()
	full.Entries[4].Members = append(full.Entries[4].Members, 7)
	full.Entries[4].GroupSeq = 3
	delta, ok := Diff(base, full)
	if !ok {
		t.Fatalf("Diff rejected ordered lists")
	}
	var got List
	if !ReconstructInto(&got, base, TruncationPoint(full), &List{Entries: delta, Next: full.Next}) {
		t.Fatalf("ReconstructInto rejected well-formed inputs")
	}
	// Mutating the reconstruction must not reach base.
	for i := range got.Entries {
		if len(got.Entries[i].Members) > 0 {
			got.Entries[i].Members[0] = 42
		}
	}
	if !base.Equal(snapshot) {
		t.Fatalf("base mutated through reconstruction:\n got=%v\nwant=%v", base, snapshot)
	}
}

func TestReconstructIntoReusesCapacity(t *testing.T) {
	base := mkList(t, 16)
	full := base.Clone()
	full.Entries[3].Acks.Add(1)
	delta, _ := Diff(base, full)
	var dst List
	d := &List{Entries: delta, Next: full.Next}
	if !ReconstructInto(&dst, base, TruncationPoint(full), d) {
		t.Fatal("first reconstruction failed")
	}
	firstCap := cap(dst.Entries)
	if !ReconstructInto(&dst, base, TruncationPoint(full), d) {
		t.Fatal("second reconstruction failed")
	}
	if cap(dst.Entries) != firstCap {
		t.Fatalf("dst entries reallocated: cap %d -> %d", firstCap, cap(dst.Entries))
	}
	if !dst.Equal(full) {
		t.Fatalf("reuse reconstruction mismatch: got=%v want=%v", &dst, full)
	}
}
