package broadcast

import (
	"slices"
	"sort"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// tryDeliver hands every update whose delivery conditions hold to the
// application. It loops to a fixpoint because one delivery can unblock
// others (ordering chains, FIFO).
func (b *Broadcast) tryDeliver(now model.Time) {
	if b.deferApp {
		return
	}
	b.deliverFast(now)
	for b.deliverOrderedPass(now) {
	}
}

// DeferDeliveries toggles join-time delivery deferral (see the deferApp
// field). member.Machine sets it when entering the join state with
// recovered coverage to advertise; ApplyState clears it.
func (b *Broadcast) DeferDeliveries(on bool) {
	b.deferApp = on
}

// deliverFast is the weak/unordered fast path: such updates are delivered
// on receipt, before any ordinal is assigned. Updates delivered this way
// are recorded in dpd until a decision orders them.
func (b *Broadcast) deliverFast(now model.Time) {
	ids := make([]oal.ProposalID, 0, len(b.pb))
	for id := range b.pb {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Proposer != ids[j].Proposer {
			return ids[i].Proposer < ids[j].Proposer
		}
		return ids[i].Seq < ids[j].Seq
	})
	for _, id := range ids {
		p := b.pb[id]
		if b.delivered[id] {
			continue
		}
		if p.Sem.Order != oal.Unordered || p.Sem.Atomicity != oal.WeakAtomicity {
			continue
		}
		if b.senderSuppressed(id.Proposer, now) {
			continue
		}
		d := b.view.Find(id)
		if d != nil && d.Undeliverable {
			continue
		}
		ord := oal.None
		if d != nil {
			ord = d.Ordinal
		}
		b.deliver(p, ord, now)
		if d == nil {
			b.dpd = append(b.dpd, id)
			b.stats.DeliveredFast++
		}
	}
}

// deliverOrderedPass makes one pass over the view in ordinal order and
// reports whether anything was delivered.
func (b *Broadcast) deliverOrderedPass(now model.Time) bool {
	any := false
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind != oal.UpdateDesc || d.Undeliverable || b.delivered[d.ID] {
			continue
		}
		if d.Ordinal != oal.None && d.Ordinal <= b.snapshotCovered {
			// The join-time snapshot already reflects this update
			// (adopted from a member whose oal was less truncated than
			// the snapshot provider's).
			b.delivered[d.ID] = true
			any = true
			continue
		}
		p, ok := b.pb[d.ID]
		if !ok {
			continue
		}
		if b.senderSuppressed(d.ID.Proposer, now) {
			continue
		}
		if !b.atomicityOK(d) || !b.orderOK(d) || !b.fifoOK(d) {
			continue
		}
		b.deliver(p, d.Ordinal, now)
		any = true
	}
	return any
}

func (b *Broadcast) deliver(p *wire.Proposal, ord oal.Ordinal, now model.Time) {
	b.delivered[p.ID] = true
	b.stats.Delivered++
	b.cfg.OnDeliver(Delivery{
		ID:      p.ID,
		Payload: slices.Clone(p.Payload),
		Ordinal: ord,
		Sem:     p.Sem,
		SendTS:  p.SendTS,
	})
	if _, armed := b.termination[p.ID]; armed {
		delete(b.termination, p.ID)
		b.cfg.OnOutcome(Outcome{ID: p.ID, Delivered: true, At: now})
	}
}

// atomicityOK evaluates the atomicity delivery condition for descriptor
// d against the current group.
func (b *Broadcast) atomicityOK(d *oal.Descriptor) bool {
	var need int
	switch d.Sem.Atomicity {
	case oal.WeakAtomicity:
		return true
	case oal.StrongAtomicity:
		need = b.group.Size()/2 + 1
	case oal.StrictAtomicity:
		need = b.group.Size()
	default:
		return false
	}
	if b.group.Size() == 0 {
		return false
	}
	// The update itself and every update it may depend on (ordinal <=
	// hdo) must be sufficiently acknowledged. Ordinals below the view's
	// first retained entry were truncated as stable — fully acknowledged
	// by construction. An hdo beyond the highest known ordinal names a
	// dependency this process has not seen, so the update must wait.
	// One pass over the retained entries (sorted by ordinal) covers the
	// whole [first, hdo] window: iterating ordinal-by-ordinal would cost
	// O(hdo-first) lookups, and a corrupt hdo once turned that into a
	// multi-minute spin on the event goroutine.
	if d.Acks.CountIn(b.group) < need {
		return false
	}
	if d.HDO > b.view.HighestOrdinal() {
		return false
	}
	for i := range b.view.Entries {
		dep := &b.view.Entries[i]
		if dep.Ordinal == oal.None || dep.Ordinal > d.HDO {
			continue
		}
		if dep.Kind != oal.UpdateDesc || dep.Undeliverable {
			continue
		}
		if dep.Acks.CountIn(b.group) < need {
			return false
		}
	}
	return true
}

// orderOK evaluates the ordering delivery condition for descriptor d.
func (b *Broadcast) orderOK(d *oal.Descriptor) bool {
	switch d.Sem.Order {
	case oal.Unordered:
		return true
	case oal.TotalOrder:
		// Every total-ordered update with a smaller ordinal must be
		// delivered or purged. Truncated entries were delivered long
		// ago (stability hysteresis).
		for i := range b.view.Entries {
			e := &b.view.Entries[i]
			if e.Ordinal >= d.Ordinal {
				break
			}
			if e.Kind != oal.UpdateDesc || e.Sem.Order != oal.TotalOrder {
				continue
			}
			if !e.Undeliverable && !b.delivered[e.ID] {
				return false
			}
		}
		return true
	case oal.TimeOrder:
		// Releasable once a decision at least delta+epsilon newer than
		// the update's send timestamp exists: any timely proposal sent
		// earlier has been ordered by then. Then deliver in
		// (timestamp, proposer, seq) order among time-ordered updates.
		if b.lastDecTS < d.SendTS.Add(b.params.Delta+b.params.Epsilon) {
			return false
		}
		for i := range b.view.Entries {
			e := &b.view.Entries[i]
			if e.Kind != oal.UpdateDesc || e.Sem.Order != oal.TimeOrder || e.Ordinal == d.Ordinal {
				continue
			}
			if timeOrderLess(e, d) && !e.Undeliverable && !b.delivered[e.ID] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// fifoOK enforces the per-sender FIFO property across the ordered
// classes (§4.3: "updates proposed by the same process must be delivered
// in the order they are proposed"): every earlier-sequence total- or
// time-ordered update from the same proposer that is still in the view
// must be delivered or purged first. Within one class the order rules
// imply this; the check closes the cross-class gap (e.g. a total-order
// update followed by a time-order one).
func (b *Broadcast) fifoOK(d *oal.Descriptor) bool {
	for i := range b.view.Entries {
		e := &b.view.Entries[i]
		if e.Kind != oal.UpdateDesc || e.ID.Proposer != d.ID.Proposer || e.ID.Seq >= d.ID.Seq {
			continue
		}
		if e.Sem.Order == oal.Unordered {
			continue
		}
		if !e.Undeliverable && !b.delivered[e.ID] {
			return false
		}
	}
	return true
}

// timeOrderLess orders time-ordered updates by (send timestamp, proposer,
// sequence).
func timeOrderLess(a, c *oal.Descriptor) bool {
	if a.SendTS != c.SendTS {
		return a.SendTS < c.SendTS
	}
	if a.ID.Proposer != c.ID.Proposer {
		return a.ID.Proposer < c.ID.Proposer
	}
	return a.ID.Seq < c.ID.Seq
}
