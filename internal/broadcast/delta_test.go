package broadcast

import (
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// newDeltaTestBroadcast builds a bare broadcast layer for exercising
// the baseline ring directly.
func newDeltaTestBroadcast() *Broadcast {
	params := model.DefaultParams(3)
	b := New(1, params, Config{})
	b.SetGroup(model.NewGroup(1, []model.ProcessID{0, 1, 2}))
	return b
}

func TestDeltaWindowWidensOnRepairs(t *testing.T) {
	b := newDeltaTestBroadcast()
	if got := b.DeltaWindow(); got != minDeltaWindow {
		t.Fatalf("initial window = %d, want %d", got, minDeltaWindow)
	}
	// Every OALReq-driven repair widens the ring by one, up to the cap.
	for i := 0; i < maxDeltaWindow+3; i++ {
		b.ForceFullOAL()
	}
	if got := b.DeltaWindow(); got != maxDeltaWindow {
		t.Fatalf("window after repairs = %d, want clamp at %d", got, maxDeltaWindow)
	}
}

func TestDeltaWindowWidensOnLocalMiss(t *testing.T) {
	b := newDeltaTestBroadcast()
	// A delta keyed on a baseline we do not hold: the resolve fails,
	// counts a miss, and widens the window.
	nd := &wire.NoDecision{}
	nd.BaseTS = 500
	nd.View = oal.List{}
	if b.ResolveNoDecisionDelta(nd) {
		t.Fatal("resolve succeeded with no baseline held")
	}
	if got := b.DeltaWindow(); got != minDeltaWindow+1 {
		t.Fatalf("window after local miss = %d, want %d", got, minDeltaWindow+1)
	}
	if b.Stats().DeltaMisses != 1 {
		t.Fatalf("DeltaMisses = %d, want 1", b.Stats().DeltaMisses)
	}
}

func TestDeltaWindowShrinksAfterCleanStreakAndTrimsRing(t *testing.T) {
	b := newDeltaTestBroadcast()
	b.ForceFullOAL()
	b.ForceFullOAL()
	widened := b.DeltaWindow()
	if widened != minDeltaWindow+2 {
		t.Fatalf("window after two repairs = %d, want %d", widened, minDeltaWindow+2)
	}
	// Retain baselines with no further repairs: the ring fills to the
	// widened size, then one clean streak shrinks the window and the
	// next push trims the retained ring to match.
	ts := model.Time(1000)
	for i := 0; i < deltaShrinkAfter-1; i++ {
		b.pushBaseline(ts, oal.NewList())
		ts += 10
	}
	if got := b.DeltaWindow(); got != widened {
		t.Fatalf("window shrank early: %d, want %d", got, widened)
	}
	if len(b.baseRing) > widened {
		t.Fatalf("ring grew past the window: %d > %d", len(b.baseRing), widened)
	}
	b.pushBaseline(ts, oal.NewList()) // the deltaShrinkAfter-th clean push
	if got := b.DeltaWindow(); got != widened-1 {
		t.Fatalf("window after clean streak = %d, want %d", got, widened-1)
	}
	if len(b.baseRing) != widened-1 {
		t.Fatalf("ring length after shrink = %d, want %d", len(b.baseRing), widened-1)
	}
	// The trim keeps the newest baselines.
	if got := b.newestBaseline().ts; got != ts {
		t.Fatalf("newest baseline ts = %d, want %d", got, ts)
	}
}
