package broadcast

import (
	"slices"
	"sort"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// BuildDecision assembles the decision message this process sends while
// it holds the decider role: it stamps its own acknowledgements, assigns
// ordinals to pending proposals (contiguously per proposer, in send-time
// order), advances stability, truncates the stable prefix, and snapshots
// the oal. It also returns the IDs of sequence-gap proposals the decider
// is missing and should nack.
//
// now must exceed the previous decision's timestamp; callers stamp
// decisions with a monotonic synchronized clock.
func (b *Broadcast) BuildDecision(now model.Time, group model.Group, alive []model.ProcessID) (*wire.Decision, []oal.ProposalID) {
	b.group = group.Clone()
	b.refreshOwnAcks()
	missing := b.assignOrdinals(now)
	b.advanceStability(now)
	b.truncateStable(now)
	b.gcBodies()
	if now <= b.lastDecTS {
		now = b.lastDecTS + 1
	}
	b.lastDecTS = now
	b.syncSettledTimeTS()
	full := b.view.Clone()
	dec := &wire.Decision{
		Header:  wire.Header{From: b.self, SendTS: now},
		Group:   group.Clone(),
		OAL:     *full,
		Alive:   slices.Clone(alive),
		Lineage: b.lineage,
	}
	if b.encodeDelta(dec, full) {
		b.sinceFull++
		b.stats.DecisionsDelta++
	} else {
		// Shipping full: give dec its own copy so the retained baseline
		// stays pristine whatever the caller does with the message.
		dec.OAL = *full.Clone()
		b.sinceFull = 0
		b.forceFull = false
		b.stats.DecisionsFull++
	}
	b.pushBaseline(now, full)
	b.tryDeliver(now)
	return dec, missing
}

// assignOrdinals orders every pending proposal whose per-proposer
// sequence is contiguous with what is already ordered, and returns the
// IDs of gap proposals that block further ordering and must be
// retransmitted.
func (b *Broadcast) assignOrdinals(now model.Time) []oal.ProposalID {
	pending := make([]*wire.Proposal, 0, len(b.pb))
	for id, p := range b.pb {
		if b.view.Find(id) != nil {
			continue
		}
		if b.senderSuppressed(id.Proposer, now) {
			continue
		}
		pending = append(pending, p)
	}
	sort.Slice(pending, func(i, j int) bool {
		a, c := pending[i], pending[j]
		if a.SendTS != c.SendTS {
			return a.SendTS < c.SendTS
		}
		if a.ID.Proposer != c.ID.Proposer {
			return a.ID.Proposer < c.ID.Proposer
		}
		return a.ID.Seq < c.ID.Seq
	})

	// Per-proposer smallest pending sequence (for gap detection).
	minPending := make(map[model.ProcessID]uint64)
	for _, p := range pending {
		if cur, ok := minPending[p.ID.Proposer]; !ok || p.ID.Seq < cur {
			minPending[p.ID.Proposer] = p.ID.Seq
		}
	}

	// Repeated passes let a chain seq, seq+1, ... from one proposer be
	// ordered within a single decision. Ordering is contiguous per
	// proposer; a persistent gap (missing body for longer than a cycle,
	// e.g. after the proposer crashed and restarted with a clock-seeded
	// sequence) is declared abandoned and ordering jumps to the smallest
	// pending sequence — the skipped updates become stale everywhere.
	ordered := func(p *wire.Proposal) {
		var acks oal.AckSet
		acks.Add(b.self)
		ord := b.view.AppendUpdate(p.ID, p.Sem, p.SendTS, p.HDO, acks)
		b.orderedSeq[p.ID.Proposer] = p.ID.Seq
		delete(b.gapSince, p.ID.Proposer)
		if p.Sem.Order == oal.TimeOrder &&
			(p.SendTS < b.maxSettledTimeTS || now.Sub(p.SendTS) > b.params.CycleLen()) {
			// Time-order straggler: either a later-timestamped
			// time-ordered update already became deliverable, or the
			// body waited longer than a full cycle to be ordered (e.g.
			// it lingered through a crash and rejoin) — delivering it
			// now could invert time order at members whose competing
			// entries were already truncated. Purged uniformly, in the
			// oal. The cycle horizon backstops the watermark, which a
			// freshly rejoined decider may not have re-learned yet.
			if d := b.view.FindOrdinal(ord); d != nil {
				d.Undeliverable = true
				d.StableTS = now
				b.stats.Purged++
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range pending {
			if b.view.Find(p.ID) != nil {
				continue
			}
			prop := p.ID.Proposer
			base := b.orderedSeq[prop]
			if p.ID.Seq <= base {
				continue // stale
			}
			if p.ID.Seq == base+1 {
				ordered(p)
				changed = true
				continue
			}
			if p.ID.Seq != minPending[prop] {
				continue // a smaller pending body must go first
			}
			since, started := b.gapSince[prop]
			if !started {
				b.gapSince[prop] = now
				continue
			}
			if now.Sub(since) > b.params.CycleLen() {
				ordered(p) // gap abandoned: jump
				changed = true
			}
		}
	}
	b.compactDPD()

	// Gap detection: a pending proposal whose predecessors are missing
	// reveals a loss; request the missing bodies. Gaps wider than a few
	// messages are not losses but sequence jumps (a proposer restarting
	// with a clock-seeded sequence): nothing to retransmit — the gap
	// timeout above will skip them.
	const maxGapNack = 64
	var missing []oal.ProposalID
	for _, p := range pending {
		if b.view.Find(p.ID) != nil {
			continue
		}
		if p.ID.Seq-b.orderedSeq[p.ID.Proposer] > maxGapNack {
			continue
		}
		for s := b.orderedSeq[p.ID.Proposer] + 1; s < p.ID.Seq; s++ {
			id := oal.ProposalID{Proposer: p.ID.Proposer, Seq: s}
			if _, have := b.pb[id]; have {
				continue
			}
			if at, ok := b.nackAt[id]; ok && now.Sub(at) < b.params.D {
				continue
			}
			b.nackAt[id] = now
			missing = append(missing, id)
		}
	}
	return missing
}

// advanceStability stamps StableTS on descriptors that have become
// stable: updates acknowledged by every group member, purged updates,
// and membership descriptors.
func (b *Broadcast) advanceStability(now model.Time) {
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.StableTS != 0 {
			continue
		}
		switch {
		case d.Kind == oal.MembershipDesc:
			d.StableTS = now
		case d.Undeliverable:
			d.StableTS = now
		case d.Acks.CountIn(b.group) == b.group.Size() && b.group.Size() > 0:
			d.StableTS = now
		}
	}
}

// truncateStable drops the head descriptors that have been stable for
// more than one cycle: by then every member has held the decider role,
// seen the stability, and delivered (or purged) the update.
func (b *Broadcast) truncateStable(now model.Time) {
	horizon := b.params.CycleLen()
	b.view.TruncateStable(func(d *oal.Descriptor) bool {
		if d.StableTS == 0 || now.Sub(d.StableTS) <= horizon {
			return false
		}
		if d.Kind == oal.UpdateDesc && !d.Undeliverable && !b.delivered[d.ID] {
			// Safety net: never truncate an update this process has not
			// delivered itself.
			return false
		}
		return true
	})
}

// gcBodies drops proposal bodies that are no longer needed: delivered,
// absent from the retained view, and not awaiting ordering via dpd.
func (b *Broadcast) gcBodies() {
	inDPD := make(map[oal.ProposalID]bool, len(b.dpd))
	for _, id := range b.dpd {
		inDPD[id] = true
	}
	for id := range b.pb {
		if b.delivered[id] && b.view.Find(id) == nil && !inDPD[id] {
			delete(b.pb, id)
		}
	}
}

// AnnounceGroup appends a membership descriptor for g to the oal and
// installs g as the current group. Deciders call it when admitting a
// joiner or excluding failed members; the descriptor is disseminated by
// the next BuildDecision.
func (b *Broadcast) AnnounceGroup(now model.Time, g model.Group) {
	ord := b.view.AppendMembership(g)
	if d := b.view.FindOrdinal(ord); d != nil {
		d.StableTS = now
	}
	b.group = g.Clone()
	// Membership changes ride in a full decision: joiners have no
	// baseline yet, and the formation-decision shape (a single
	// membership descriptor) is recognised on the wire.
	b.forceFull = true
}

// Report is one peer's log view received during an election, from its
// no-decision or reconfiguration messages.
type Report struct {
	From model.ProcessID
	View *oal.List
	DPD  []oal.ProposalID
}

// Reconcile is the §4.3 view-change procedure run by a freshly elected
// decider before it announces the new group:
//
//  1. adopt the longest log view among its own and the reports, and
//     merge everyone's acknowledgement bits into it;
//  2. append (with fresh ordinals) every update a member delivered that
//     has no ordinal yet (the dpd mechanism), so atomicity holds;
//  3. classify and mark undeliverable proposals — lost, orphan-order,
//     orphan-atomicity, unknown-dependency — to a fixpoint;
//  4. append the membership descriptor for the new group.
//
// departed lists the processes removed from the previous group.
func (b *Broadcast) Reconcile(now model.Time, newGroup model.Group, departed []model.ProcessID, reports []Report) {
	b.refreshOwnAcks()

	// 1. Longest log wins; the election guarantees every other view is a
	// prefix of it.
	base := b.view
	for _, r := range reports {
		if r.View != nil && r.View.HighestOrdinal() > base.HighestOrdinal() {
			base = r.View
		}
	}
	if base != b.view {
		b.view = base.Clone()
		b.refreshOwnAcks()
		b.syncOrderedSeq()
	}
	for _, r := range reports {
		if r.View != nil && r.View != base {
			b.view.MergeAcks(r.View)
		}
	}

	// 2. Order delivered-but-unordered updates (dpd): they were already
	// delivered by at least one member, so every member must deliver
	// them. Such updates are weak/unordered by construction.
	b.compactDPD()
	type dpdEntry struct {
		id   oal.ProposalID
		acks oal.AckSet
	}
	dpdSeen := make(map[oal.ProposalID]*dpdEntry)
	var dpdOrder []oal.ProposalID
	note := func(id oal.ProposalID, from model.ProcessID) {
		e, ok := dpdSeen[id]
		if !ok {
			e = &dpdEntry{id: id}
			dpdSeen[id] = e
			dpdOrder = append(dpdOrder, id)
		}
		e.acks.Add(from)
	}
	for _, id := range b.dpd {
		note(id, b.self)
	}
	for _, r := range reports {
		for _, id := range r.DPD {
			note(id, r.From)
		}
	}
	for _, id := range dpdOrder {
		if b.view.Find(id) != nil {
			continue
		}
		e := dpdSeen[id]
		var ts model.Time
		if body, ok := b.pb[id]; ok {
			ts = body.SendTS
			e.acks.Add(b.self)
		}
		sem := oal.Semantics{Order: oal.Unordered, Atomicity: oal.WeakAtomicity}
		b.view.AppendUpdate(id, sem, ts, oal.None, e.acks)
		if id.Seq > b.orderedSeq[id.Proposer] {
			b.orderedSeq[id.Proposer] = id.Seq
		}
	}

	// 3. Undeliverable classification to a fixpoint.
	b.markUndeliverable(now, newGroup, departed)

	// Drop unordered pending bodies from departed proposers: they were
	// never delivered anywhere (delivered ones are covered by dpd), and
	// with the proposer gone their sequence gaps can never be repaired.
	dep := model.NewProcessSet(departed...)
	for id := range b.pb {
		if dep.Has(id.Proposer) && b.view.Find(id) == nil && !b.delivered[id] {
			delete(b.pb, id)
			b.stats.Purged++
		}
	}

	// 4. Membership descriptor for the new group.
	b.AnnounceGroup(now, newGroup)
	b.tryDeliver(now)
}

// markUndeliverable applies the four §4.3 categories until nothing
// changes, then purges marked bodies locally.
func (b *Broadcast) markUndeliverable(now model.Time, newGroup model.Group, departed []model.ProcessID) {
	dep := model.NewProcessSet(departed...)
	known := b.view.HighestOrdinal()
	mark := func(d *oal.Descriptor) {
		d.Undeliverable = true
		d.StableTS = now
	}
	for changed := true; changed; {
		changed = false
		for i := range b.view.Entries {
			d := &b.view.Entries[i]
			if d.Kind != oal.UpdateDesc || d.Undeliverable || b.delivered[d.ID] {
				continue
			}
			switch {
			case dep.Has(d.ID.Proposer) && d.Acks.CountIn(newGroup) == 0:
				// Lost proposal: ordered, but no surviving member has
				// the body.
				mark(d)
				changed = true
			case (d.Sem.Order == oal.TotalOrder || d.Sem.Order == oal.TimeOrder) &&
				b.hasUndeliverablePredecessor(d):
				// Orphan-order: an earlier update by the same sender
				// was purged, so FIFO forbids delivering this one.
				mark(d)
				changed = true
			case (d.Sem.Atomicity == oal.StrongAtomicity || d.Sem.Atomicity == oal.StrictAtomicity) &&
				b.hasUndeliverableDependency(d):
				// Orphan-atomicity: a dependency (ordinal <= hdo) was
				// purged.
				mark(d)
				changed = true
			case (d.Sem.Atomicity == oal.StrongAtomicity || d.Sem.Atomicity == oal.StrictAtomicity) &&
				d.HDO > known:
				// Unknown dependency: the update depends on orderings
				// no surviving member ever saw.
				mark(d)
				changed = true
			}
		}
	}
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && d.Undeliverable {
			delete(b.pb, d.ID)
		}
	}
}

func (b *Broadcast) hasUndeliverablePredecessor(d *oal.Descriptor) bool {
	for i := range b.view.Entries {
		e := &b.view.Entries[i]
		if e.Ordinal >= d.Ordinal {
			return false
		}
		if e.Kind == oal.UpdateDesc && e.Undeliverable && e.ID.Proposer == d.ID.Proposer {
			return true
		}
	}
	return false
}

func (b *Broadcast) hasUndeliverableDependency(d *oal.Descriptor) bool {
	for i := range b.view.Entries {
		e := &b.view.Entries[i]
		if e.Ordinal > d.HDO {
			return false
		}
		if e.Kind == oal.UpdateDesc && e.Undeliverable {
			return true
		}
	}
	return false
}

// BuildState assembles the join-time state transfer for a newly admitted
// member: application snapshot, which retained updates that snapshot
// already covers, per-proposer ordering cursors, and the pending bodies
// the joiner may lack.
//
// joinerCovered and joinerLineage are what the joiner advertised in its
// join message. When the joiner's coverage belongs to this lineage and
// this process's durable log reaches back that far, the transfer is a
// delta: no application snapshot, just a replay of the deliveries the
// joiner missed. A zero joinerCovered (or a lineage mismatch, or no
// durable log) always yields a full transfer.
func (b *Broadcast) BuildState(now model.Time, joinerCovered oal.Ordinal, joinerLineage model.GroupSeq) *wire.State {
	covered := b.view.HighestOrdinal()
	if len(b.view.Entries) > 0 {
		covered = b.view.Entries[0].Ordinal - 1
	}
	st := &wire.State{
		Header:         wire.Header{From: b.self, SendTS: now},
		GroupSeq:       b.group.Seq,
		CoveredOrdinal: covered,
		SettledTimeTS:  b.maxSettledTimeTS,
	}
	delta := false
	if b.cfg.ReplaySince != nil && b.lineage != 0 &&
		joinerLineage == b.lineage && joinerCovered > 0 {
		if replay, ok := b.cfg.ReplaySince(joinerCovered); ok {
			st.NoAppState = true
			st.Replay = replay
			// The replay brings the joiner's application state up to this
			// process's full delivery state, so it covers our contiguous
			// coverage — not just the truncation point above.
			st.CoveredOrdinal = b.CoveredOrdinal()
			delta = true
			b.stats.StateDeltas++
		}
	}
	if !delta {
		st.AppState = b.cfg.Snapshot()
		b.stats.StateFulls++
	}
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && b.delivered[d.ID] {
			st.Delivered = append(st.Delivered, d.ID)
		}
	}
	for _, id := range b.DPD() {
		st.Delivered = append(st.Delivered, id)
	}
	for p, s := range b.orderedSeq {
		st.FIFONext = append(st.FIFONext, wire.FIFOEntry{Proposer: p, Seq: s})
	}
	sort.Slice(st.FIFONext, func(i, j int) bool { return st.FIFONext[i].Proposer < st.FIFONext[j].Proposer })
	for _, p := range b.pb {
		cp := *p
		cp.Payload = slices.Clone(p.Payload)
		st.Pending = append(st.Pending, cp)
	}
	sort.Slice(st.Pending, func(i, j int) bool {
		a, c := st.Pending[i].ID, st.Pending[j].ID
		if a.Proposer != c.Proposer {
			return a.Proposer < c.Proposer
		}
		return a.Seq < c.Seq
	})
	return st
}

// ApplyState installs a transferred state at a joining member: the
// application snapshot (or, for a delta transfer, the replayed
// deliveries), the delivered set (so covered updates are not
// re-delivered), ordering cursors, and pending bodies.
func (b *Broadcast) ApplyState(now model.Time, st *wire.State) {
	if st.NoAppState {
		// Delta transfer: apply the missed deliveries on top of our
		// recovered application state, in the sender's delivery order.
		// The duplicate checks run against our coverage *before* this
		// transfer raises it, so nothing replayed is suppressed by its
		// own transfer.
		for i := range st.Replay {
			e := &st.Replay[i]
			if b.delivered[e.ID] {
				continue
			}
			if e.Ordinal != oal.None && e.Ordinal <= b.snapshotCovered {
				b.delivered[e.ID] = true
				continue
			}
			b.delivered[e.ID] = true
			b.stats.Delivered++
			b.stats.ReplayApplied++
			b.cfg.OnDeliver(Delivery{
				ID:      e.ID,
				Payload: slices.Clone(e.Payload),
				Ordinal: e.Ordinal,
				Sem:     e.Sem,
				SendTS:  e.SendTS,
			})
		}
	}
	if st.CoveredOrdinal > b.snapshotCovered {
		b.snapshotCovered = st.CoveredOrdinal
	}
	if st.SettledTimeTS > b.maxSettledTimeTS {
		b.maxSettledTimeTS = st.SettledTimeTS
	}
	for _, id := range st.Delivered {
		b.delivered[id] = true
	}
	for _, f := range st.FIFONext {
		if f.Seq > b.orderedSeq[f.Proposer] {
			b.orderedSeq[f.Proposer] = f.Seq
		}
		if f.Proposer == b.self && f.Seq > b.nextSeq {
			b.nextSeq = f.Seq
		}
	}
	if !st.NoAppState {
		// Install last, after the coverage and delivered-set bookkeeping:
		// a durable node snapshots from inside its install hook, and the
		// snapshot metadata must describe the installed state.
		b.cfg.Install(st.AppState)
	}
	// The transfer this state represents has landed: resume application
	// hand-off and flush anything adopted while deliveries were deferred.
	b.deferApp = false
	for i := range st.Pending {
		b.OnProposal(now, &st.Pending[i])
	}
	b.tryDeliver(now)
}
