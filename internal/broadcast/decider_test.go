package broadcast

import (
	"slices"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// electAt simulates a single-failure election win at `winner`: the other
// survivors contribute their views/dpds, `departed` are removed, and the
// winner reconciles and announces the shrunk group.
func (h *harness) electAt(winner model.ProcessID, departed ...model.ProcessID) model.Group {
	newGroup := h.group
	for _, q := range departed {
		newGroup = newGroup.Remove(q)
	}
	var reports []Report
	for _, id := range newGroup.Members {
		if id == winner {
			continue
		}
		reports = append(reports, Report{
			From: id,
			View: h.members[id].CurrentView(),
			DPD:  h.members[id].DPD(),
		})
	}
	h.members[winner].Reconcile(h.tick(), newGroup, departed, reports)
	h.group = newGroup
	// Winner disseminates; survivors adopt.
	dec, _ := h.members[winner].BuildDecision(h.tick(), newGroup, newGroup.Members)
	for _, id := range newGroup.Members {
		if id != winner {
			h.members[id].AdoptDecision(h.now, dec)
		}
	}
	return newGroup
}

func TestReconcileLostProposalPurged(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p2 proposes; only p2 ever held the body, but a decision from p2
	// ordered it. Then p2 crashes.
	p := h.members[2].Propose(h.tick(), []byte("lost"), sem(oal.TotalOrder, oal.StrongAtomicity))
	_ = p // body never fanned out
	dec, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[0].AdoptDecision(h.now, dec)
	h.members[1].AdoptDecision(h.now, dec)

	h.electAt(0, 2)

	for _, id := range []model.ProcessID{0, 1} {
		v := h.members[id].CurrentView()
		d := v.Find(oal.ProposalID{Proposer: 2, Seq: 1})
		if d == nil || !d.Undeliverable {
			t.Fatalf("p%d: lost proposal not marked undeliverable: %v", id, d)
		}
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered a lost proposal", id)
		}
	}
}

func TestReconcileKeepsSurvivingBodies(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p2 proposes and the body reaches p0 before p2 crashes: survivors
	// must still deliver it.
	h.propose(2, "survives", sem(oal.TotalOrder, oal.WeakAtomicity), 1)
	dec, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[0].AdoptDecision(h.now, dec)
	h.members[1].AdoptDecision(h.now, dec)

	h.electAt(0, 2)
	// p1 lacks the body; it nacks and p0 retransmits.
	v1 := h.members[1].CurrentView()
	d := v1.Find(oal.ProposalID{Proposer: 2, Seq: 1})
	if d == nil || d.Undeliverable {
		t.Fatalf("surviving proposal wrongly purged: %v", d)
	}
	bodies := h.members[0].OnNack(&wire.Nack{Missing: []oal.ProposalID{d.ID}})
	if len(bodies) != 1 {
		t.Fatalf("retransmit failed")
	}
	h.members[1].OnProposal(h.tick(), bodies[0])
	if got := h.payloads(1); len(got) != 1 || got[0] != "survives" {
		t.Fatalf("p1: %v", got)
	}
}

func TestReconcileOrphanOrder(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p2 sends two total-ordered updates; the first is lost to everyone,
	// the second reaches the survivors. Both get ordered by p2 itself.
	h.members[2].Propose(h.tick(), []byte("first"), sem(oal.TotalOrder, oal.WeakAtomicity))
	second := h.members[2].Propose(h.tick(), []byte("second"), sem(oal.TotalOrder, oal.WeakAtomicity))
	dec, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	for _, id := range []model.ProcessID{0, 1} {
		h.members[id].AdoptDecision(h.now, dec)
		h.members[id].OnProposal(h.now, second)
	}

	h.electAt(0, 2)

	v := h.members[0].CurrentView()
	d1 := v.Find(oal.ProposalID{Proposer: 2, Seq: 1})
	d2 := v.Find(oal.ProposalID{Proposer: 2, Seq: 2})
	if d1 == nil || !d1.Undeliverable {
		t.Fatalf("lost first not purged: %v", d1)
	}
	if d2 == nil || !d2.Undeliverable {
		t.Fatalf("orphan-order second not purged: %v", d2)
	}
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered an orphan", id)
		}
	}
}

func TestReconcileOrphanAtomicity(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// Ordinal 1: p2's proposal, lost to everyone (will be purged).
	h.members[2].Propose(h.tick(), []byte("dep"), sem(oal.Unordered, oal.WeakAtomicity))
	// Ordinal 2: p0's strong-atomicity proposal with hdo >= 1.
	dec0, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[0].AdoptDecision(h.now, dec0)
	h.members[1].AdoptDecision(h.now, dec0)
	strong := h.members[0].Propose(h.tick(), []byte("needs-dep"), sem(oal.Unordered, oal.StrongAtomicity))
	if strong.HDO != 1 {
		t.Fatalf("hdo: %d", strong.HDO)
	}
	h.members[1].OnProposal(h.now, strong)
	dec1, _ := h.members[0].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[1].AdoptDecision(h.now, dec1)

	h.electAt(1, 2)

	v := h.members[1].CurrentView()
	if d := v.Find(strong.ID); d == nil || !d.Undeliverable {
		t.Fatalf("orphan-atomicity proposal not purged: %v", d)
	}
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered orphan-atomicity update", id)
		}
	}
}

func TestReconcileDropsUnorderedPendingFromDeparted(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p2's second proposal reaches the survivors but its first never
	// does; neither is ever ordered. After p2's departure the sequence
	// gap is unrepairable, so the pending body must be dropped.
	h.members[2].Propose(h.tick(), []byte("gap"), sem(oal.TotalOrder, oal.WeakAtomicity))
	orphan := h.members[2].Propose(h.tick(), []byte("unorderable"), sem(oal.TotalOrder, oal.WeakAtomicity))
	h.members[0].OnProposal(h.now, orphan)
	h.members[1].OnProposal(h.now, orphan)

	h.electAt(0, 2)

	if h.members[0].view.Find(orphan.ID) != nil {
		t.Fatalf("unorderable proposal entered the view")
	}
	if _, still := h.members[0].pb[orphan.ID]; still {
		t.Fatalf("pending body from departed proposer not dropped")
	}
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered an unorderable proposal", id)
		}
	}
}

func TestReconcileUnknownDependency(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// Decision baseline seen by all.
	decA, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[0].AdoptDecision(h.now, decA)
	h.members[1].AdoptDecision(h.now, decA)
	// p0 proposes with strong atomicity. Simulate that p0 had seen a
	// decision chain (known only to the doomed p2) assigning ordinals up
	// to 5: its hdo points past everything the survivors know.
	strong := h.members[0].Propose(h.tick(), []byte("dangling"), sem(oal.Unordered, oal.StrongAtomicity))
	h.members[0].pb[strong.ID].HDO = 5
	h.members[1].OnProposal(h.now, strong)
	h.members[1].pb[strong.ID].HDO = 5
	dec1, _ := h.members[0].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[1].AdoptDecision(h.now, dec1)
	if dec1.OAL.Find(strong.ID).HDO != 5 {
		t.Fatalf("hdo not carried into oal")
	}
	// Never deliverable meanwhile: the dependency is unknown.
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered with unknown dependency", id)
		}
	}

	h.electAt(1, 2)

	v := h.members[1].CurrentView()
	d := v.Find(strong.ID)
	if d == nil || !d.Undeliverable {
		t.Fatalf("unknown-dependency proposal not purged: %+v", d)
	}
}

func TestReconcileAppendsDPD(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// A weak/unordered update delivered by survivors but never ordered
	// (the only decider to know it, p2, crashed before deciding).
	h.propose(0, "fast", sem(oal.Unordered, oal.WeakAtomicity))
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 1 {
			t.Fatalf("fast path failed at p%d", id)
		}
	}
	h.electAt(0, 2)
	// The update now has an ordinal and is NOT undeliverable: atomicity
	// demands every member deliver it.
	v := h.members[1].CurrentView()
	d := v.Find(oal.ProposalID{Proposer: 0, Seq: 1})
	if d == nil || d.Undeliverable || d.Ordinal == oal.None {
		t.Fatalf("dpd update not ordered: %v", d)
	}
	// No double delivery at the survivors.
	for _, id := range []model.ProcessID{0, 1} {
		if got := h.payloads(id); len(got) != 1 {
			t.Fatalf("p%d deliveries: %v", id, got)
		}
	}
}

func TestReconcileAdoptsLongestView(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p1 holds a newer log than p0 (p0 missed the last decision).
	h.propose(2, "newer", sem(oal.TotalOrder, oal.WeakAtomicity))
	dec, _ := h.members[2].BuildDecision(h.tick(), h.group, h.group.Members)
	h.members[1].AdoptDecision(h.now, dec) // only p1 sees it

	h.electAt(0, 2) // p0 wins but must adopt p1's longer view

	v := h.members[0].CurrentView()
	if v.Find(oal.ProposalID{Proposer: 2, Seq: 1}) == nil {
		t.Fatalf("winner lost the longer view's entries")
	}
	// Both survivors deliver "newer" (p0 got the body at propose time).
	if got := h.payloads(0); len(got) != 1 || got[0] != "newer" {
		t.Fatalf("p0: %v", got)
	}
}

func TestReconcileMembershipDescriptorAppended(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	g := h.electAt(0, 2)
	v := h.members[1].CurrentView()
	found := false
	for _, d := range v.Entries {
		if d.Kind == oal.MembershipDesc && d.GroupSeq == g.Seq {
			found = true
			if !slices.Equal(d.Members, g.Members) {
				t.Fatalf("membership descriptor members: %v", d.Members)
			}
		}
	}
	if !found {
		t.Fatalf("membership descriptor missing")
	}
	if h.members[0].Group().Seq != g.Seq {
		t.Fatalf("group not installed at winner")
	}
}

func TestStateTransferRoundTrip(t *testing.T) {
	var installed []byte
	params := model.DefaultParams(3)
	g := model.NewGroup(0, []model.ProcessID{0, 1, 2})

	app := []byte("app-state-v7")
	sender := New(0, params, Config{Snapshot: func() []byte { return app }})
	sender.SetGroup(g)
	// Sender has a delivered+ordered update and a pending body.
	sender.Propose(100, []byte("done"), sem(oal.Unordered, oal.WeakAtomicity))
	dec, _ := sender.BuildDecision(200, g, g.Members)
	_ = dec
	pending := sender.Propose(300, []byte("pending"), sem(oal.TotalOrder, oal.WeakAtomicity))

	st := sender.BuildState(400, 0, 0)
	if string(st.AppState) != "app-state-v7" {
		t.Fatalf("app state: %q", st.AppState)
	}
	if len(st.Delivered) == 0 {
		t.Fatalf("no delivered ids transferred")
	}
	if len(st.Pending) != 2 {
		t.Fatalf("pending bodies: %d", len(st.Pending))
	}

	var joinerDeliveries []Delivery
	joiner := New(1, params, Config{
		Install:   func(b []byte) { installed = slices.Clone(b) },
		OnDeliver: func(d Delivery) { joinerDeliveries = append(joinerDeliveries, d) },
	})
	joiner.SetGroup(g)
	joiner.ApplyState(500, st)
	if string(installed) != "app-state-v7" {
		t.Fatalf("installed: %q", installed)
	}
	// The snapshot-covered update is not re-delivered...
	for _, d := range joinerDeliveries {
		if string(d.Payload) == "done" {
			t.Fatalf("snapshot-covered update re-delivered")
		}
	}
	// ...but the pending one flows through the normal path once ordered.
	joiner.AdoptDecision(600, dec)
	dec2, _ := joiner.BuildDecision(700, g, g.Members)
	if dec2.OAL.Find(pending.ID) == nil {
		t.Fatalf("joiner could not order transferred pending body")
	}
}

func TestStateTransferCodecRoundTrip(t *testing.T) {
	params := model.DefaultParams(3)
	g := model.NewGroup(0, []model.ProcessID{0, 1, 2})
	sender := New(0, params, Config{Snapshot: func() []byte { return []byte("s") }})
	sender.SetGroup(g)
	sender.Propose(100, []byte("x"), sem(oal.Unordered, oal.WeakAtomicity))
	st := sender.BuildState(200, 0, 0)
	decoded, err := wire.Decode(wire.Encode(st))
	if err != nil {
		t.Fatalf("codec: %v", err)
	}
	st2 := decoded.(*wire.State)
	if string(st2.AppState) != "s" || len(st2.Pending) != 1 {
		t.Fatalf("decoded state: %+v", st2)
	}
}

func TestAnnounceGroupSetsStableTS(t *testing.T) {
	params := model.DefaultParams(3)
	b := New(0, params, Config{})
	g := model.NewGroup(1, []model.ProcessID{0, 1})
	b.AnnounceGroup(777, g)
	d := b.view.FindOrdinal(1)
	if d == nil || d.Kind != oal.MembershipDesc || d.StableTS != 777 {
		t.Fatalf("membership descriptor: %+v", d)
	}
	if b.Group().Seq != 1 {
		t.Fatalf("group not installed")
	}
}

func TestGapTimeoutJumpsOrdering(t *testing.T) {
	// A proposer restarts and continues with a clock-seeded sequence far
	// past its old numbering. The gap blocks ordering at first; after a
	// full cycle the decider declares it abandoned and jumps.
	h := newHarness(t, 0, 1)
	ghost := &wire.Proposal{
		Header:  wire.Header{From: 0, SendTS: h.tick()},
		ID:      oal.ProposalID{Proposer: 0, Seq: 5_000_001},
		Sem:     sem(oal.TotalOrder, oal.WeakAtomicity),
		Payload: []byte("post-restart"),
	}
	h.members[1].OnProposal(h.now, ghost)

	// First decision: blocked by the (unrepairable) gap; no huge nack
	// storm either.
	dec, missing := h.members[1].BuildDecision(h.tick(), h.group, h.group.Members)
	if len(dec.OAL.Entries) != 0 {
		t.Fatalf("ordered across a fresh gap: %v", dec.OAL.Entries)
	}
	if len(missing) != 0 {
		t.Fatalf("nacked a multi-million gap: %d ids", len(missing))
	}
	// After more than a cycle the gap is abandoned and the update is
	// ordered.
	h.now = h.now.Add(h.params.CycleLen() + 1)
	dec2, _ := h.members[1].BuildDecision(h.tick(), h.group, h.group.Members)
	if len(dec2.OAL.Entries) != 1 || dec2.OAL.Entries[0].ID != ghost.ID {
		t.Fatalf("gap not abandoned: %v", dec2.OAL.Entries)
	}
	// A straggler body with a pre-jump sequence is now stale and must be
	// rejected everywhere.
	stale := &wire.Proposal{
		Header:  wire.Header{From: 0, SendTS: h.tick()},
		ID:      oal.ProposalID{Proposer: 0, Seq: 3},
		Sem:     sem(oal.TotalOrder, oal.WeakAtomicity),
		Payload: []byte("stale"),
	}
	h.members[1].OnProposal(h.now, stale)
	if _, kept := h.members[1].pb[stale.ID]; kept {
		t.Fatalf("stale pre-jump body stored")
	}
}
