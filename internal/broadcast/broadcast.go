// Package broadcast implements the timewheel atomic broadcast protocol
// (Mishra, Fetzer & Cristian 1997), the layer above the membership
// service in the timewheel stack.
//
// Any member may broadcast an update at any time by sending a proposal
// message. A rotating decider periodically sends decision messages whose
// ordering-and-acknowledgement list (oal) assigns unique ordinals to
// updates and membership changes, establishes stability, and detects
// message losses. The service offers three ordering semantics (unordered,
// total, time) and three atomicity semantics (weak, strong, strict),
// selectable per proposal.
//
// Delivery conditions implemented here (the paper's "atomicity, order,
// and general" conditions, concretised):
//
//   - weak atomicity + unordered: deliver on receipt. These are the only
//     updates that can be delivered before an ordinal is assigned; they
//     populate the dpd (delivered proposal descriptors) field used at
//     view changes.
//   - weak atomicity + total/time order: deliver once ordered, in order.
//   - strong atomicity: deliver only after the update and every update it
//     may depend on (ordinal <= hdo) is acknowledged by a majority.
//   - strict atomicity: as strong, with acknowledgement by all members.
//   - total order: ordinal order among total-ordered updates. Deciders
//     assign ordinals per proposer in contiguous sequence order, so
//     ordinal order preserves per-sender FIFO.
//   - time order: synchronized-send-timestamp order among time-ordered
//     updates, releasable once a decision with send timestamp at least
//     delta+epsilon newer exists (any timely proposal sent earlier would
//     already have been ordered).
//
// Acknowledgements propagate through decider rotation: each member stamps
// its own ack bits into the oal when it holds the decider role, so after
// one full rotation every member's receipts are visible to all.
package broadcast

import (
	"fmt"
	"slices"
	"sort"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// Delivery is one update handed to the application.
type Delivery struct {
	ID      oal.ProposalID
	Payload []byte
	// Ordinal is the update's unique number, or oal.None when the update
	// was delivered before ordering (weak/unordered fast path).
	Ordinal oal.Ordinal
	Sem     oal.Semantics
	SendTS  model.Time
}

// Outcome reports the fate of a locally proposed update — the timewheel
// broadcast's termination semantic: the proposer learns, within a
// bounded time, whether its update was delivered here or abandoned
// (e.g. purged at a view change, or still undeliverable when the
// termination window closed).
type Outcome struct {
	ID        oal.ProposalID
	Delivered bool
	At        model.Time
}

// Config wires the broadcast service to its application.
type Config struct {
	// OnDeliver receives updates satisfying their delivery conditions.
	OnDeliver func(Delivery)
	// Snapshot returns the application state for join-time transfer.
	Snapshot func() []byte
	// Install replaces the application state from a transferred
	// snapshot.
	Install func([]byte)
	// TerminationAfter arms the termination semantic when positive:
	// OnOutcome fires exactly once per local proposal — on local
	// delivery, or when the window expires undelivered.
	TerminationAfter model.Duration
	// OnOutcome receives termination reports.
	OnOutcome func(Outcome)
	// OnLineage fires when this process adopts a new ordinal lineage
	// (a group formation restarted the ordinal space). A durable node
	// uses it to mark the boundary in its log and drop its now
	// incomparable replay tail.
	OnLineage func(model.GroupSeq)
	// ReplaySince, when set, serves rejoin deltas from this process's
	// durable log: it returns every logged delivery a member with
	// contiguous coverage `since` still needs, in delivery order, and
	// whether the log reaches back that far. Unset (volatile process),
	// every state transfer is a full one.
	ReplaySince func(since oal.Ordinal) ([]wire.ReplayEntry, bool)
	// FullOALEvery bounds the delta-decision chain: every n-th decision
	// carries the full oal even when a delta applies, so a member with
	// a lost baseline catches up without a round trip. Zero means the
	// default (8); negative disables delta encoding entirely — every
	// decision and no-decision ships the full oal.
	FullOALEvery int
}

// Stats counts broadcast-layer activity.
type Stats struct {
	Proposed      uint64
	Delivered     uint64
	DeliveredFast uint64 // weak/unordered pre-ordinal deliveries
	Purged        uint64 // updates marked undeliverable locally
	NacksNeeded   uint64
	Retransmits   uint64
	StateFulls    uint64 // full state transfers built for joiners
	StateDeltas   uint64 // delta (replay) state transfers built
	ReplayApplied uint64 // deliveries applied here from a rejoin delta

	DecisionsFull  uint64 // decisions built carrying the full oal
	DecisionsDelta uint64 // decisions built delta-encoded
	DeltaMisses    uint64 // received deltas whose baseline didn't match
	OALFullServed  uint64 // OALFull baseline replies served
}

// Broadcast is one member's broadcast-protocol state. Not safe for
// concurrent use; drive it from the owning node's event loop.
type Broadcast struct {
	self   model.ProcessID
	params model.Params
	cfg    Config

	group model.Group

	// view is this process's current view of the oal, derived from the
	// freshest decision seen plus locally updated ack bits.
	view      *oal.List
	lastDecTS model.Time

	// baseRing retains the pristine oals of the freshest few decisions
	// built or adopted here, oldest first — the cluster-shared baselines
	// delta-encoded decisions and no-decision views are keyed against
	// (see delta.go). Empty when no baseline is held (fresh start,
	// lineage change).
	baseRing []pristineView
	// deltaWin is the current baseline-ring capacity: how far back a
	// delta may reach. It adapts to the observed decision-loss rate in
	// [minDeltaWindow, maxDeltaWindow] — every baseline repair (an
	// OALReq from a peer, or a delta received here with no qualifying
	// baseline) widens it, and a long clean streak shrinks it back
	// (see delta.go).
	deltaWin   int
	deltaClean int // baselines retained since the last repair
	// fullEvery caps consecutive delta decisions (negative: deltas off);
	// sinceFull counts deltas since the last full decision; forceFull
	// makes the next decision ship the full oal regardless.
	fullEvery int
	sinceFull int
	forceFull bool

	// pb is the proposal buffer: bodies received, keyed by ID.
	pb map[oal.ProposalID]*wire.Proposal

	// delivered marks updates handed to the application.
	delivered map[oal.ProposalID]bool
	// dpd lists updates delivered before receiving an ordinal.
	dpd []oal.ProposalID

	// orderedSeq tracks, per proposer, the highest sequence number that
	// has been assigned an ordinal; deciders only order contiguous
	// sequences so ordinal order preserves per-sender FIFO.
	orderedSeq map[model.ProcessID]uint64

	// nextSeq numbers this process's own proposals. It is seeded from
	// the synchronized clock at start (member.Machine does so) so that a
	// crash-recovered or rejoined process — which loses all volatile
	// state — can never reuse a sequence number from an earlier life.
	nextSeq uint64

	// gapSince tracks, per proposer, when a decider first saw that
	// proposer's smallest pending sequence blocked by a gap. After one
	// cycle the gap is declared abandoned and ordering jumps past it
	// (the missing updates can no longer be delivered FIFO-consistently
	// and are rejected as stale everywhere).
	gapSince map[model.ProcessID]model.Time

	// snapshotCovered is the highest ordinal a join-time snapshot
	// covers at this member: updates at or below it are already
	// reflected in the installed application state and must never be
	// re-delivered, even from a less-truncated oal adopted later.
	snapshotCovered oal.Ordinal

	// lineage identifies the ordinal space this process's coverage
	// belongs to: the sequence number of the group formation that
	// (re)started ordinals at 1. Coverage and ordinals are only
	// comparable within one lineage; adopting a decision from another
	// lineage invalidates snapshotCovered (see adoptLineage).
	lineage model.GroupSeq

	// deferApp suppresses application hand-off while a recovered
	// joiner's state transfer is outstanding. A joining process adopts
	// live decisions (to keep the oal warm for admission), but a
	// process that advertised recovered coverage may be served a replay
	// *delta* instead of a full install: delivering adopted entries
	// before that delta arrives would both apply them out of order
	// relative to the replayed prefix and inflate the live coverage the
	// next join re-advertises. While set, entries stay undelivered (and
	// unmarked) in the buffer; ApplyState clears the flag and flushes.
	// Volatile joiners never set it — a full transfer rebases them.
	deferApp bool

	// maxSettledTimeTS is the largest send timestamp of any time-ordered
	// update that has become deliverable (its settle window passed while
	// it was ordered). A time-ordered proposal ordered later with an
	// older timestamp is a straggler — delivering it would invert time
	// order — so deciders mark it undeliverable at ordering time.
	maxSettledTimeTS model.Time

	// suppressUntil implements the §4.3 election-time undeliverable
	// marks: proposals from a sender p has asked to remove are neither
	// delivered nor acknowledged until the mark expires (one cycle).
	suppressUntil map[model.ProcessID]model.Time

	// nackAt rate-limits retransmission requests per proposal.
	nackAt map[oal.ProposalID]model.Time

	// termination tracks the deadline of each own undetermined proposal.
	termination map[oal.ProposalID]model.Time

	stats Stats
}

// New creates the broadcast state for process self.
func New(self model.ProcessID, params model.Params, cfg Config) *Broadcast {
	if cfg.OnDeliver == nil {
		cfg.OnDeliver = func(Delivery) {}
	}
	if cfg.Snapshot == nil {
		cfg.Snapshot = func() []byte { return nil }
	}
	if cfg.Install == nil {
		cfg.Install = func([]byte) {}
	}
	fullEvery := cfg.FullOALEvery
	if fullEvery == 0 {
		fullEvery = defaultFullOALEvery
	}
	return &Broadcast{
		self:          self,
		params:        params,
		cfg:           cfg,
		fullEvery:     fullEvery,
		deltaWin:      minDeltaWindow,
		view:          oal.NewList(),
		pb:            make(map[oal.ProposalID]*wire.Proposal),
		delivered:     make(map[oal.ProposalID]bool),
		orderedSeq:    make(map[model.ProcessID]uint64),
		suppressUntil: make(map[model.ProcessID]model.Time),
		nackAt:        make(map[oal.ProposalID]model.Time),
		termination:   make(map[oal.ProposalID]model.Time),
		gapSince:      make(map[model.ProcessID]model.Time),
	}
}

// SeedSeq raises the own-proposal sequence floor; callers pass the
// synchronized clock (microseconds), which is strictly larger than any
// value an earlier incarnation of this process can have used.
func (b *Broadcast) SeedSeq(v uint64) {
	if v > b.nextSeq {
		b.nextSeq = v
	}
}

// DropPendingFrom discards unordered pending bodies from the given
// departed proposers (§4.3: proposals of removed members that were never
// ordered are purged — at every member, so no later decider resurrects
// them with a stale ordering).
func (b *Broadcast) DropPendingFrom(departed []model.ProcessID) {
	dep := model.NewProcessSet(departed...)
	for id := range b.pb {
		if dep.Has(id.Proposer) && b.view.Find(id) == nil && !b.delivered[id] {
			delete(b.pb, id)
			b.stats.Purged++
		}
	}
}

// Reset clears all log, buffer and delivery state, as when an excluded
// process restarts the join protocol: its history may have diverged from
// the majority's, and the join-time state transfer re-establishes it.
// Configuration and identity are retained. Undetermined local proposals
// are reported abandoned — their fate in the majority's history is
// unknowable from here, which is exactly what the termination semantic
// exists to surface.
func (b *Broadcast) Reset() {
	pending := make([]oal.ProposalID, 0, len(b.termination))
	for id := range b.termination {
		pending = append(pending, id)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })
	cfg := b.cfg
	stats := b.stats // counters are cumulative across rejoins
	fresh := New(b.self, b.params, cfg)
	*b = *fresh
	b.stats = stats
	if cfg.OnOutcome != nil {
		for _, id := range pending {
			cfg.OnOutcome(Outcome{ID: id, Delivered: false})
		}
	}
}

// Group returns the current group as known to the broadcast layer.
func (b *Broadcast) Group() model.Group { return b.group }

// SetGroup installs the membership view the delivery conditions evaluate
// against (majority/all-ack checks).
func (b *Broadcast) SetGroup(g model.Group) { b.group = g.Clone() }

// LastDecisionTS returns the send timestamp of the freshest decision this
// process has seen (or sent).
func (b *Broadcast) LastDecisionTS() model.Time { return b.lastDecTS }

// Stats returns a copy of the layer's counters.
func (b *Broadcast) Stats() Stats { return b.stats }

// Delivered reports whether the update with the given ID was handed to
// the application.
func (b *Broadcast) Delivered(id oal.ProposalID) bool { return b.delivered[id] }

// HighestOrdinal returns the highest ordinal in this process's view.
func (b *Broadcast) HighestOrdinal() oal.Ordinal { return b.view.HighestOrdinal() }

// UndeliverableIDs returns the proposal IDs currently marked
// undeliverable in this process's view (§4.3 purge marks).
func (b *Broadcast) UndeliverableIDs() []oal.ProposalID {
	var out []oal.ProposalID
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && d.Undeliverable {
			out = append(out, d.ID)
		}
	}
	return out
}

// CurrentView returns this process's view of the oal: the freshest
// decision's oal with the process's own acknowledgment bits applied
// (paper §4.3: "p uses this oal from m and updates the acknowledgment
// bits"). The returned list is a deep copy.
func (b *Broadcast) CurrentView() *oal.List {
	b.refreshOwnAcks()
	return b.view.Clone()
}

// DPD returns the delivered proposal descriptors: updates this process
// has delivered that still have no ordinal (paper §4.3 field dpd).
func (b *Broadcast) DPD() []oal.ProposalID {
	b.compactDPD()
	return slices.Clone(b.dpd)
}

// refreshOwnAcks stamps this process's ack bit on every descriptor whose
// body it holds, unless the proposal is suppressed.
func (b *Broadcast) refreshOwnAcks() {
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind != oal.UpdateDesc {
			continue
		}
		if _, ok := b.pb[d.ID]; ok && !d.Undeliverable {
			d.Acks.Add(b.self)
		}
	}
}

// compactDPD drops dpd entries that have since been ordered or purged.
func (b *Broadcast) compactDPD() {
	out := b.dpd[:0]
	for _, id := range b.dpd {
		if d := b.view.Find(id); d != nil {
			continue // ordered: no longer "undefined ordinal"
		}
		out = append(out, id)
	}
	b.dpd = out
}

// Propose creates, registers and returns a proposal for payload with the
// given semantics, stamped with send timestamp now (the caller's
// synchronized clock, monotonic per process). The caller broadcasts the
// returned message; the local copy is processed immediately (the network
// does not loop back).
func (b *Broadcast) Propose(now model.Time, payload []byte, sem oal.Semantics) *wire.Proposal {
	b.nextSeq++
	p := &wire.Proposal{
		Header:  wire.Header{From: b.self, SendTS: now},
		ID:      oal.ProposalID{Proposer: b.self, Seq: b.nextSeq},
		Sem:     sem,
		HDO:     b.view.HighestOrdinal(),
		Payload: slices.Clone(payload),
	}
	b.stats.Proposed++
	if b.cfg.TerminationAfter > 0 && b.cfg.OnOutcome != nil {
		b.termination[p.ID] = now.Add(b.cfg.TerminationAfter)
	}
	b.OnProposal(now, p)
	return p
}

// CheckTermination sweeps the termination windows of this process's own
// proposals at synchronized time now, reporting any that expired
// undelivered. Drivers call it periodically (the member machine does so
// on every slot tick); delivery reports fire immediately from the
// delivery path.
func (b *Broadcast) CheckTermination(now model.Time) {
	for id, deadline := range b.termination {
		if b.delivered[id] {
			// Delivered: the delivery path already reported.
			delete(b.termination, id)
			continue
		}
		if now > deadline {
			delete(b.termination, id)
			b.cfg.OnOutcome(Outcome{ID: id, Delivered: false, At: now})
		}
	}
}

// OnProposal ingests a proposal body (remote or local).
func (b *Broadcast) OnProposal(now model.Time, p *wire.Proposal) {
	if _, dup := b.pb[p.ID]; dup {
		// Duplicates carry no new information, but a delivery retry is
		// cheap and covers conditions that became true since (e.g. an
		// expired suppression mark).
		b.tryDeliver(now)
		return
	}
	if p.ID.Seq <= b.orderedSeq[p.ID.Proposer] && b.view.Find(p.ID) == nil {
		// Stale: ordering for this proposer has moved past the body's
		// sequence (the gap was declared abandoned). Delivering it now
		// would invert FIFO; every member rejects it identically.
		return
	}
	cp := *p
	cp.Payload = slices.Clone(p.Payload)
	b.pb[p.ID] = &cp
	delete(b.nackAt, p.ID)
	if p.ID.Proposer == b.self && p.ID.Seq > b.nextSeq {
		// Seeing our own pre-crash proposals after a rejoin: never
		// reuse their sequence numbers.
		b.nextSeq = p.ID.Seq
	}

	if d := b.view.Find(p.ID); d != nil && !b.senderSuppressed(p.ID.Proposer, now) {
		d.Acks.Add(b.self)
	}
	b.tryDeliver(now)
}

// senderSuppressed reports whether proposals from q are currently under
// an election-time undeliverable mark.
func (b *Broadcast) senderSuppressed(q model.ProcessID, now model.Time) bool {
	until, ok := b.suppressUntil[q]
	if !ok {
		return false
	}
	if now >= until {
		delete(b.suppressUntil, q)
		return false
	}
	return true
}

// SuppressSender installs an election-time undeliverable mark on sender
// q: proposals from q that this process has not yet received — including
// ones arriving later — are neither delivered nor acknowledged until the
// mark expires one cycle later (§4.3). It is called when this process
// sends a no-decision or reconfiguration message requesting q's removal.
func (b *Broadcast) SuppressSender(q model.ProcessID, now model.Time) {
	b.suppressUntil[q] = now.Add(b.params.CycleLen())
	b.stats.Purged++
}

// AdoptDecision ingests a decision message. It returns whether the
// decision was fresh (newer than anything seen), and the IDs of ordered
// updates whose bodies this process is missing and should request via a
// nack (rate-limited to one request per proposal per D).
func (b *Broadcast) AdoptDecision(now model.Time, dec *wire.Decision) (adopted bool, missing []oal.ProposalID) {
	if dec.BaseTS != 0 {
		// Delta-encoded: reconstruct the full oal in place first. The
		// member layer normally does this itself (to turn a baseline
		// miss into an OALReq); a still-partial decision must never
		// reach the adoption body below.
		if !b.ResolveDecisionDelta(dec) || dec.BaseTS != 0 {
			return false, nil
		}
	}
	if dec.SendTS <= b.lastDecTS {
		return false, nil
	}
	if dec.OAL.Next < b.view.Next {
		// The decision's log is shorter than ours: adopting it would
		// regress ordinals. Only a stale decider produces this.
		return false, nil
	}
	if dec.Lineage != b.lineage {
		// The decision belongs to another ordinal space; our retained
		// view cannot be compared against its oal, so the truncation
		// sweep below would be meaningless. (On first adoption the view
		// is empty and the sweep is a no-op anyway.)
		b.adoptLineage(dec.Lineage)
	} else {
		b.deliverTruncated(now, &dec.OAL)
	}
	b.lastDecTS = dec.SendTS
	b.pushBaseline(dec.SendTS, dec.OAL.Clone()) // pristine, pre-ack-refresh
	b.view = dec.OAL.Clone()
	b.refreshOwnAcks()
	b.syncOrderedSeq()

	// Purge bodies of updates the decider marked undeliverable, and make
	// sure they are never delivered.
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && d.Undeliverable {
			if !b.delivered[d.ID] {
				if _, had := b.pb[d.ID]; had {
					b.stats.Purged++
				}
			}
			delete(b.pb, d.ID)
		}
	}
	b.compactDPD()

	// Detect losses: ordered updates whose bodies we lack.
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind != oal.UpdateDesc || d.Undeliverable || b.delivered[d.ID] {
			continue
		}
		if _, ok := b.pb[d.ID]; ok {
			continue
		}
		if at, ok := b.nackAt[d.ID]; ok && now.Sub(at) < b.params.D {
			continue
		}
		b.nackAt[d.ID] = now
		missing = append(missing, d.ID)
	}
	if len(missing) > 0 {
		b.stats.NacksNeeded += uint64(len(missing))
	}

	b.tryDeliver(now)
	return true, missing
}

// deliverTruncated delivers any update the incoming oal has truncated
// away before this process managed to deliver it. Truncation means the
// update was stable — fully acknowledged by the group and a full cycle
// old — so every global delivery condition is already met; only our
// local hand-off is outstanding, and the body is necessarily in our
// buffer (our own acknowledgement required it and undelivered bodies are
// never collected).
func (b *Broadcast) deliverTruncated(now model.Time, incoming *oal.List) {
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind != oal.UpdateDesc || d.Undeliverable || b.delivered[d.ID] {
			continue
		}
		if incoming.FindOrdinal(d.Ordinal) != nil || d.Ordinal > incoming.HighestOrdinal() {
			continue // retained, or beyond the incoming log: not truncated
		}
		if d.Ordinal <= b.snapshotCovered {
			// Already reflected in the join-time snapshot.
			b.delivered[d.ID] = true
			continue
		}
		if b.deferApp {
			// The outstanding transfer covers every stable-truncated
			// ordinal (they are below the serving member's coverage), so
			// leave the entry for the replay or the transfer's
			// delivered-set; the body stays buffered until then.
			continue
		}
		if p, ok := b.pb[d.ID]; ok {
			b.deliver(p, d.Ordinal, now)
		}
	}
}

// syncOrderedSeq recomputes the per-proposer highest ordered sequence
// from the adopted view (monotonically: truncation never lowers it).
func (b *Broadcast) syncOrderedSeq() {
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind != oal.UpdateDesc {
			continue
		}
		if d.ID.Seq > b.orderedSeq[d.ID.Proposer] {
			b.orderedSeq[d.ID.Proposer] = d.ID.Seq
		}
		if d.ID.Proposer == b.self && d.ID.Seq > b.nextSeq {
			b.nextSeq = d.ID.Seq
		}
	}
	// Drop pending bodies ordering has moved past: they are stale
	// everywhere (see OnProposal).
	for id := range b.pb {
		if id.Seq <= b.orderedSeq[id.Proposer] && b.view.Find(id) == nil && !b.delivered[id] {
			delete(b.pb, id)
		}
	}
	b.syncSettledTimeTS()
}

// syncSettledTimeTS advances the settled time-order high-water mark from
// the current view (monotonic: truncation never lowers it).
func (b *Broadcast) syncSettledTimeTS() {
	settleBound := b.lastDecTS - model.Time(b.params.Delta+b.params.Epsilon)
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && d.Sem.Order == oal.TimeOrder && !d.Undeliverable &&
			d.SendTS <= settleBound && d.SendTS > b.maxSettledTimeTS {
			b.maxSettledTimeTS = d.SendTS
		}
	}
}

// StillMissing filters ids down to the update bodies this process still
// lacks: not delivered, not buffered, and not marked undeliverable. The
// member layer calls it when a deferred nack comes due — bodies that
// were merely in flight when the decision exposed them have landed by
// then and drop out of the nack.
func (b *Broadcast) StillMissing(ids []oal.ProposalID) []oal.ProposalID {
	var out []oal.ProposalID
	for _, id := range ids {
		if b.delivered[id] {
			continue
		}
		if _, ok := b.pb[id]; ok {
			continue
		}
		if d := b.view.Find(id); d == nil || d.Undeliverable {
			continue // truncated away or purged: no longer wanted
		}
		out = append(out, id)
	}
	return out
}

// OnNack returns the proposal bodies this process holds among those
// requested; the caller retransmits them to the requester.
func (b *Broadcast) OnNack(n *wire.Nack) []*wire.Proposal {
	var out []*wire.Proposal
	for _, id := range n.Missing {
		if p, ok := b.pb[id]; ok {
			out = append(out, p)
		}
	}
	b.stats.Retransmits += uint64(len(out))
	return out
}

func (b *Broadcast) String() string {
	return fmt.Sprintf("bcast(%v %v view=%d pb=%d delivered=%d)",
		b.self, b.group, b.view.Len(), len(b.pb), len(b.delivered))
}
