package broadcast

import (
	"sort"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// Image is a portable summary of the broadcast layer's delivery state —
// what a durable node persists alongside its application snapshot and
// seeds back after a restart. It deliberately contains no payloads:
// everything at or below Covered (and every Extra identity) is already
// folded into the application state the image accompanies.
type Image struct {
	// Lineage is the ordinal space Covered belongs to (the sequence
	// number of the group formation that started it).
	Lineage model.GroupSeq
	// Covered is the contiguous ordinal prefix the accompanying
	// application state provably includes.
	Covered oal.Ordinal
	// SettledTS is the time-order settled high-water mark.
	SettledTS model.Time
	// Extra lists deliveries beyond Covered: retained ordered updates
	// past a coverage gap, and fast-path deliveries (Ordinal oal.None).
	Extra []ImageExtra
	// FIFO holds the per-proposer ordering cursors.
	FIFO []wire.FIFOEntry
}

// ImageExtra identifies one delivery beyond the image's coverage.
type ImageExtra struct {
	ID      oal.ProposalID
	Ordinal oal.Ordinal
}

// Lineage returns the ordinal lineage this process currently operates
// in (0 before the first formation or adoption).
func (b *Broadcast) Lineage() model.GroupSeq { return b.lineage }

// CoveredOrdinal returns the contiguous ordinal prefix this process has
// delivered (or holds covered by an installed snapshot): every update
// and membership descriptor through it is reflected in the application
// state. This is what a restarting process advertises in its join
// message so the decider can serve it a replay delta.
func (b *Broadcast) CoveredOrdinal() oal.Ordinal {
	covered := b.view.HighestOrdinal()
	if len(b.view.Entries) > 0 {
		// Everything truncated off the view's head was stable — fully
		// acknowledged and delivered everywhere, including here.
		covered = b.view.Entries[0].Ordinal - 1
		for i := range b.view.Entries {
			d := &b.view.Entries[i]
			if d.Ordinal != covered+1 {
				break
			}
			if d.Kind == oal.MembershipDesc || d.Undeliverable || b.delivered[d.ID] {
				covered = d.Ordinal
				continue
			}
			break
		}
	}
	if covered < b.snapshotCovered {
		covered = b.snapshotCovered
	}
	return covered
}

// MembershipOrdinal returns the ordinal the retained oal assigns to the
// membership descriptor for group sequence seq, or oal.None when no
// such descriptor is (or no longer is) retained. A durable node logs it
// with each installed view so recovery can count membership ordinals
// toward the contiguous coverage it advertises; a missing ordinal only
// understates the claim, degrading a rejoin to a full transfer.
func (b *Broadcast) MembershipOrdinal(seq model.GroupSeq) oal.Ordinal {
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.MembershipDesc && d.GroupSeq == seq {
			return d.Ordinal
		}
	}
	return oal.None
}

// SnapshotImage captures the delivery state matching the application
// state at this instant; the node layer persists it as the snapshot's
// protocol metadata. Call it from the same event loop that drives
// deliveries, with the application state captured atomically alongside.
func (b *Broadcast) SnapshotImage() Image {
	img := Image{
		Lineage:   b.lineage,
		Covered:   b.CoveredOrdinal(),
		SettledTS: b.maxSettledTimeTS,
	}
	for i := range b.view.Entries {
		d := &b.view.Entries[i]
		if d.Kind == oal.UpdateDesc && d.Ordinal > img.Covered && b.delivered[d.ID] {
			img.Extra = append(img.Extra, ImageExtra{ID: d.ID, Ordinal: d.Ordinal})
		}
	}
	b.compactDPD()
	for _, id := range b.dpd {
		img.Extra = append(img.Extra, ImageExtra{ID: id, Ordinal: oal.None})
	}
	for p, s := range b.orderedSeq {
		img.FIFO = append(img.FIFO, wire.FIFOEntry{Proposer: p, Seq: s})
	}
	sort.Slice(img.FIFO, func(i, j int) bool { return img.FIFO[i].Proposer < img.FIFO[j].Proposer })
	return img
}

// SeedRecovered primes a fresh broadcast instance with the delivery
// state recovered from disk, before the protocol starts: the recovered
// application state already reflects the image's coverage and extras,
// so none of it may be re-delivered. The seeded lineage and coverage
// are what the join message advertises.
func (b *Broadcast) SeedRecovered(img Image) {
	b.lineage = img.Lineage
	if img.Covered > b.snapshotCovered {
		b.snapshotCovered = img.Covered
	}
	if img.SettledTS > b.maxSettledTimeTS {
		b.maxSettledTimeTS = img.SettledTS
	}
	for _, x := range img.Extra {
		b.delivered[x.ID] = true
	}
	for _, f := range img.FIFO {
		if f.Seq > b.orderedSeq[f.Proposer] {
			b.orderedSeq[f.Proposer] = f.Seq
		}
		if f.Proposer == b.self && f.Seq > b.nextSeq {
			b.nextSeq = f.Seq
		}
	}
}

// BeginLineage starts a new ordinal lineage at a group formation: the
// forming decider calls it with the new group's sequence number before
// announcing the group, so its decisions stamp the lineage every member
// (and every future rejoiner) compares coverage against.
func (b *Broadcast) BeginLineage(lin model.GroupSeq) { b.adoptLineage(lin) }

// adoptLineage switches this process into lineage lin. Coverage seeded
// from an earlier lineage is meaningless against the new ordinal space
// and is dropped; delivered-update identities are kept (proposal
// sequence numbers are clock-seeded, so identities never recur across
// lineages and the marks keep suppressing genuine duplicates).
func (b *Broadcast) adoptLineage(lin model.GroupSeq) {
	if lin == b.lineage {
		return
	}
	prev := b.lineage
	b.lineage = lin
	b.clearBaselines() // baselines never cross ordinal spaces
	if prev != 0 {
		b.snapshotCovered = 0
	}
	if b.cfg.OnLineage != nil {
		b.cfg.OnLineage(lin)
	}
}
