package broadcast

import (
	"fmt"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// harness drives a set of broadcast members directly (no network, no
// membership layer): proposals are fanned out synchronously and the
// decider role is rotated by explicit calls.
type harness struct {
	t       *testing.T
	params  model.Params
	group   model.Group
	members map[model.ProcessID]*Broadcast
	deliv   map[model.ProcessID][]Delivery
	now     model.Time
}

func newHarness(t *testing.T, ids ...model.ProcessID) *harness {
	h := &harness{
		t:       t,
		params:  model.DefaultParams(len(ids)),
		group:   model.NewGroup(0, ids),
		members: make(map[model.ProcessID]*Broadcast),
		deliv:   make(map[model.ProcessID][]Delivery),
		now:     1000,
	}
	for _, id := range ids {
		id := id
		h.members[id] = New(id, h.params, Config{
			OnDeliver: func(d Delivery) { h.deliv[id] = append(h.deliv[id], d) },
		})
		h.members[id].SetGroup(h.group)
	}
	return h
}

func (h *harness) tick() model.Time {
	h.now += model.Time(h.params.D)
	return h.now
}

// propose creates a proposal at from and fans the body out to everyone
// else (optionally skipping some receivers).
func (h *harness) propose(from model.ProcessID, payload string, sem oal.Semantics, skip ...model.ProcessID) *wire.Proposal {
	p := h.members[from].Propose(h.tick(), []byte(payload), sem)
	h.fanout(p, skip...)
	return p
}

func (h *harness) fanout(p *wire.Proposal, skip ...model.ProcessID) {
	sk := model.NewProcessSet(skip...)
	for id, m := range h.members {
		if id == p.From || sk.Has(id) {
			continue
		}
		m.OnProposal(h.now, p)
	}
}

// decide has `who` build a decision and everyone else adopt it.
func (h *harness) decide(who model.ProcessID, skip ...model.ProcessID) *wire.Decision {
	dec, _ := h.members[who].BuildDecision(h.tick(), h.group, h.group.Members)
	h.adopt(dec, skip...)
	return dec
}

func (h *harness) adopt(dec *wire.Decision, skip ...model.ProcessID) {
	sk := model.NewProcessSet(skip...)
	for id, m := range h.members {
		if id == dec.From || sk.Has(id) {
			continue
		}
		m.AdoptDecision(h.now, dec)
	}
}

// rotate runs one full decider rotation.
func (h *harness) rotate() {
	for _, id := range h.group.Members {
		h.decide(id)
	}
}

func (h *harness) payloads(id model.ProcessID) []string {
	var out []string
	for _, d := range h.deliv[id] {
		out = append(out, string(d.Payload))
	}
	return out
}

func sem(o oal.Order, a oal.Atomicity) oal.Semantics { return oal.Semantics{Order: o, Atomicity: a} }

func TestWeakUnorderedDeliversOnReceipt(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(0, "hello", sem(oal.Unordered, oal.WeakAtomicity))
	for _, id := range h.group.Members {
		got := h.payloads(id)
		if len(got) != 1 || got[0] != "hello" {
			t.Fatalf("p%d deliveries: %v", id, got)
		}
		if h.deliv[id][0].Ordinal != oal.None {
			t.Fatalf("fast delivery should have no ordinal")
		}
	}
	// The proposer's dpd lists it until it is ordered.
	if dpd := h.members[0].DPD(); len(dpd) != 1 {
		t.Fatalf("dpd: %v", dpd)
	}
	h.decide(0)
	if dpd := h.members[0].DPD(); len(dpd) != 0 {
		t.Fatalf("dpd after ordering: %v", dpd)
	}
}

func TestDuplicateProposalDeliveredOnce(t *testing.T) {
	h := newHarness(t, 0, 1)
	p := h.propose(0, "x", sem(oal.Unordered, oal.WeakAtomicity))
	h.members[1].OnProposal(h.now, p)
	h.members[1].OnProposal(h.now, p)
	if got := h.payloads(1); len(got) != 1 {
		t.Fatalf("deliveries: %v", got)
	}
}

func TestTotalOrderDeliversInOrdinalOrder(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// p1's body reaches p2 late: p2 must not deliver "b" before "a".
	pa := h.propose(0, "a", sem(oal.TotalOrder, oal.WeakAtomicity), 2)
	h.propose(1, "b", sem(oal.TotalOrder, oal.WeakAtomicity))
	h.decide(0) // orders a (o1) then b (o2)

	// p2 has b's body and the oal, but a is missing: nothing delivered.
	if got := h.payloads(2); len(got) != 0 {
		t.Fatalf("p2 delivered out of order: %v", got)
	}
	// Body of a arrives late: both deliver, in order.
	h.members[2].OnProposal(h.tick(), pa)
	if got := h.payloads(2); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("p2 deliveries: %v", got)
	}
	// Other members delivered in the same order.
	for _, id := range []model.ProcessID{0, 1} {
		got := h.payloads(id)
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Fatalf("p%d deliveries: %v", id, got)
		}
	}
	// Ordinals are 1 and 2.
	if h.deliv[0][0].Ordinal != 1 || h.deliv[0][1].Ordinal != 2 {
		t.Fatalf("ordinals: %v %v", h.deliv[0][0].Ordinal, h.deliv[0][1].Ordinal)
	}
}

func TestStrongAtomicityWaitsForMajorityAcks(t *testing.T) {
	h := newHarness(t, 0, 1, 2, 3, 4)
	h.propose(0, "s", sem(oal.TotalOrder, oal.StrongAtomicity))
	dec := h.decide(0)
	// After one decision only the decider's ack bit is set; receivers
	// hold their own ack locally, giving each at most 2 known acks — not
	// a majority of 5.
	d := dec.OAL.Entries[0]
	if d.Acks.Count() != 1 {
		t.Fatalf("decision acks: %d", d.Acks.Count())
	}
	for _, id := range h.group.Members {
		if got := h.payloads(id); len(got) != 0 {
			t.Fatalf("p%d delivered before majority acks: %v", id, got)
		}
	}
	// Rotate the decider: each decision accumulates the new decider's
	// ack. After p1 and p2 decide, the oal shows acks {0,1,2} = majority.
	h.decide(1)
	h.decide(2)
	for _, id := range h.group.Members {
		if got := h.payloads(id); len(got) != 1 || got[0] != "s" {
			t.Fatalf("p%d after majority: %v", id, got)
		}
	}
}

func TestStrictAtomicityWaitsForAllAcks(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(0, "strict", sem(oal.TotalOrder, oal.StrictAtomicity))
	h.decide(0)
	// Shared oal shows acks {0}; p1 and p2 each add only their own local
	// ack, so nobody can prove full receipt yet.
	for _, id := range h.group.Members {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered before full acks", id)
		}
	}
	h.decide(1)
	// Shared acks {0,1}: p2 completes the set with its own local ack and
	// may deliver; p0 and p1 still cannot prove p2 has the body.
	for _, id := range []model.ProcessID{0, 1} {
		if len(h.payloads(id)) != 0 {
			t.Fatalf("p%d delivered before proving full acks", id)
		}
	}
	if got := h.payloads(2); len(got) != 1 {
		t.Fatalf("p2 with complete local knowledge did not deliver: %v", got)
	}
	h.decide(2)
	for _, id := range h.group.Members {
		if got := h.payloads(id); len(got) != 1 {
			t.Fatalf("p%d after full acks: %v", id, got)
		}
	}
}

func TestStrongAtomicityHonoursHDO(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// First update gets ordinal 1 but p2 never receives the body, so its
	// ack set stays {0,1}.
	h.propose(0, "dep", sem(oal.Unordered, oal.StrongAtomicity), 2)
	h.decide(0)
	h.decide(1)
	h.decide(2)
	// Second update depends on ordinal 1 (hdo=1).
	p2 := h.members[0].Propose(h.tick(), []byte("dependent"), sem(oal.Unordered, oal.StrongAtomicity))
	if p2.HDO != 1 {
		t.Fatalf("hdo: %d", p2.HDO)
	}
	h.fanout(p2)
	h.rotate()
	// dep has acks {0,1} (majority of 3) so both deliver everywhere that
	// has bodies; p2 lacks dep's body so it delivers only "dependent"
	// once dep is majority-acked.
	if got := h.payloads(0); len(got) != 2 {
		t.Fatalf("p0: %v", got)
	}
	got2 := h.payloads(2)
	if len(got2) != 1 || got2[0] != "dependent" {
		t.Fatalf("p2: %v", got2)
	}
}

func TestTimeOrderSettlesAfterDelta(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	// Two time-ordered proposals; the later-sent one is proposed first
	// in wall order but must be delivered second.
	early := h.members[0].Propose(2000, []byte("early"), sem(oal.TimeOrder, oal.WeakAtomicity))
	late := h.members[1].Propose(2100, []byte("late"), sem(oal.TimeOrder, oal.WeakAtomicity))
	h.now = 2200
	h.fanout(late)
	h.fanout(early)
	// Decision at a timestamp too close to the sends: not settled yet.
	dec, _ := h.members[2].BuildDecision(2200, h.group, h.group.Members)
	h.adopt(dec)
	if n := len(h.payloads(0)); n != 0 {
		t.Fatalf("delivered before settle: %d", n)
	}
	// A much later decision settles both.
	h.now = 2200 + model.Time(10*h.params.Delta)
	dec2, _ := h.members[0].BuildDecision(h.now, h.group, h.group.Members)
	h.adopt(dec2)
	for _, id := range h.group.Members {
		got := h.payloads(id)
		if len(got) != 2 || got[0] != "early" || got[1] != "late" {
			t.Fatalf("p%d time order: %v", id, got)
		}
	}
}

func TestAckPropagationThroughRotation(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(1, "u", sem(oal.TotalOrder, oal.WeakAtomicity))
	h.decide(0)
	h.decide(1)
	dec := h.decide(2)
	d := dec.OAL.Entries[0]
	for _, id := range h.group.Members {
		if !d.Acks.Has(id) {
			t.Fatalf("ack of p%d missing after full rotation: %v", id, d.Acks)
		}
	}
}

func TestStaleDecisionRejected(t *testing.T) {
	h := newHarness(t, 0, 1)
	dec1 := h.decide(0)
	h.decide(1)
	if adopted, _ := h.members[1].AdoptDecision(h.now, dec1); adopted {
		t.Fatalf("stale decision adopted")
	}
}

func TestMonotonicDecisionTimestamps(t *testing.T) {
	h := newHarness(t, 0, 1)
	dec1 := h.decide(0)
	// Building with a non-advancing clock still yields a newer stamp.
	dec2, _ := h.members[1].BuildDecision(dec1.SendTS, h.group, h.group.Members)
	if dec2.SendTS <= dec1.SendTS {
		t.Fatalf("timestamps not monotonic: %v then %v", dec1.SendTS, dec2.SendTS)
	}
}

func TestNackAndRetransmit(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(0, "lostbody", sem(oal.TotalOrder, oal.WeakAtomicity), 2)
	dec, _ := h.members[0].BuildDecision(h.tick(), h.group, h.group.Members)
	// p2 adopts a decision referencing a body it lacks.
	_, missing := h.members[2].AdoptDecision(h.now, dec)
	if len(missing) != 1 || missing[0].Proposer != 0 {
		t.Fatalf("missing: %v", missing)
	}
	// Rate limiting: a newer decision arriving within D does not
	// re-request the same body.
	dec2, _ := h.members[0].BuildDecision(h.now+1, h.group, h.group.Members)
	_, missing2 := h.members[2].AdoptDecision(h.now+1, dec2)
	if len(missing2) != 0 {
		t.Fatalf("nack not rate-limited: %v", missing2)
	}
	// p1 answers the nack; p2 delivers.
	nack := &wire.Nack{Header: wire.Header{From: 2, SendTS: h.now}, Missing: missing}
	bodies := h.members[1].OnNack(nack)
	if len(bodies) != 1 {
		t.Fatalf("retransmit bodies: %d", len(bodies))
	}
	h.members[2].OnProposal(h.tick(), bodies[0])
	if got := h.payloads(2); len(got) != 1 || got[0] != "lostbody" {
		t.Fatalf("p2 after retransmit: %v", got)
	}
	// OnNack for unknown bodies returns nothing.
	if out := h.members[2].OnNack(&wire.Nack{Missing: []oal.ProposalID{{Proposer: 9, Seq: 9}}}); len(out) != 0 {
		t.Fatalf("unexpected retransmit: %v", out)
	}
}

func TestSequenceGapBlocksOrderingAndIsNacked(t *testing.T) {
	h := newHarness(t, 0, 1)
	// p0 sends seq 1 (lost everywhere except p0... here: suppress fanout)
	// then seq 2 which p1 receives.
	p1 := h.members[0].Propose(h.tick(), []byte("one"), sem(oal.TotalOrder, oal.WeakAtomicity))
	p2 := h.members[0].Propose(h.tick(), []byte("two"), sem(oal.TotalOrder, oal.WeakAtomicity))
	_ = p1
	h.members[1].OnProposal(h.now, p2)

	// p1 as decider cannot order seq 2 without seq 1 and requests it.
	dec, missing := h.members[1].BuildDecision(h.tick(), h.group, h.group.Members)
	if len(dec.OAL.Entries) != 0 {
		t.Fatalf("decider ordered across a gap: %v", dec.OAL.Entries)
	}
	if len(missing) != 1 || missing[0] != (oal.ProposalID{Proposer: 0, Seq: 1}) {
		t.Fatalf("gap nack: %v", missing)
	}
	// After the retransmit, both are ordered in sequence order.
	h.members[1].OnProposal(h.tick(), p1)
	dec2, _ := h.members[1].BuildDecision(h.tick(), h.group, h.group.Members)
	if len(dec2.OAL.Entries) != 2 || dec2.OAL.Entries[0].ID.Seq != 1 || dec2.OAL.Entries[1].ID.Seq != 2 {
		t.Fatalf("ordering after gap fill: %v", dec2.OAL.Entries)
	}
}

func TestSuppressSenderBlocksDeliveryAndExpires(t *testing.T) {
	h := newHarness(t, 0, 1)
	h.members[1].SuppressSender(0, h.now)
	p := h.members[0].Propose(h.tick(), []byte("sus"), sem(oal.Unordered, oal.WeakAtomicity))
	h.members[1].OnProposal(h.now, p)
	if len(h.payloads(1)) != 0 {
		t.Fatalf("suppressed proposal delivered")
	}
	// The mark auto-clears after one cycle.
	h.now = h.now.Add(h.params.CycleLen() + 1)
	h.members[1].OnProposal(h.now, p) // duplicate: ignored, but triggers tryDeliver
	if got := h.payloads(1); len(got) != 1 {
		t.Fatalf("suppression did not expire: %v", got)
	}
}

func TestTruncationAfterStability(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(0, "old", sem(oal.TotalOrder, oal.WeakAtomicity))
	h.rotate() // orders + full acks accumulate
	h.rotate() // stability observed
	// Advance well past a cycle and rotate again: the entry is truncated.
	h.now = h.now.Add(2 * h.params.CycleLen())
	h.rotate()
	dec := h.decide(0)
	if len(dec.OAL.Entries) != 0 {
		t.Fatalf("stable entry not truncated: %v", dec.OAL.Entries)
	}
	// Ordinal counter keeps increasing after truncation.
	h.propose(1, "new", sem(oal.TotalOrder, oal.WeakAtomicity))
	dec2 := h.decide(1)
	if dec2.OAL.Entries[0].Ordinal != 2 {
		t.Fatalf("ordinal after truncation: %d", dec2.OAL.Entries[0].Ordinal)
	}
	// Everyone delivered exactly old, new.
	for _, id := range h.group.Members {
		got := h.payloads(id)
		if len(got) != 2 || got[0] != "old" || got[1] != "new" {
			t.Fatalf("p%d: %v", id, got)
		}
	}
}

func TestBodyGCAfterTruncation(t *testing.T) {
	h := newHarness(t, 0, 1)
	h.propose(0, "gc", sem(oal.TotalOrder, oal.WeakAtomicity))
	h.rotate()
	h.rotate()
	h.now = h.now.Add(2 * h.params.CycleLen())
	h.rotate()
	h.rotate()
	if n := len(h.members[0].pb); n != 0 {
		t.Fatalf("bodies not collected: %d", n)
	}
	// Delivered flags survive so a straggler duplicate is not re-delivered.
	if !h.members[0].Delivered(oal.ProposalID{Proposer: 0, Seq: 1}) {
		t.Fatalf("delivered flag lost")
	}
}

func TestProposeBumpsSeqPastObservedOwnIDs(t *testing.T) {
	h := newHarness(t, 0, 1)
	// p0 observes one of "its own" proposals with a high seq (pre-crash
	// incarnation) and must not collide.
	ghost := &wire.Proposal{
		Header: wire.Header{From: 0, SendTS: 500},
		ID:     oal.ProposalID{Proposer: 0, Seq: 41},
		Sem:    sem(oal.Unordered, oal.WeakAtomicity),
	}
	h.members[0].OnProposal(h.now, ghost)
	p := h.members[0].Propose(h.tick(), []byte("fresh"), sem(oal.Unordered, oal.WeakAtomicity))
	if p.ID.Seq != 42 {
		t.Fatalf("seq collision: %d", p.ID.Seq)
	}
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, 0, 1)
	h.propose(0, "a", sem(oal.Unordered, oal.WeakAtomicity))
	st := h.members[0].Stats()
	if st.Proposed != 1 || st.Delivered != 1 || st.DeliveredFast != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if h.members[0].String() == "" {
		t.Fatalf("String empty")
	}
}

func TestHighestOrdinalAndLastDecisionTS(t *testing.T) {
	h := newHarness(t, 0, 1)
	if h.members[0].HighestOrdinal() != 0 || h.members[0].LastDecisionTS() != 0 {
		t.Fatalf("fresh state not zero")
	}
	h.propose(0, "a", sem(oal.TotalOrder, oal.WeakAtomicity))
	dec := h.decide(0)
	if h.members[1].HighestOrdinal() != 1 {
		t.Fatalf("highest: %d", h.members[1].HighestOrdinal())
	}
	if h.members[1].LastDecisionTS() != dec.SendTS {
		t.Fatalf("lastDecTS: %v vs %v", h.members[1].LastDecisionTS(), dec.SendTS)
	}
}

func TestCurrentViewCarriesOwnAcks(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	h.propose(0, "v", sem(oal.TotalOrder, oal.StrictAtomicity))
	h.decide(0)
	// p1 received the body; its view must show its own ack even though
	// no decision carries it yet.
	v := h.members[1].CurrentView()
	if !v.Entries[0].Acks.Has(1) {
		t.Fatalf("own ack missing from view: %v", v.Entries[0].Acks)
	}
	// The returned view is a copy.
	v.Entries[0].Acks.Add(9)
	if h.members[1].CurrentView().Entries[0].Acks.Has(9) {
		t.Fatalf("CurrentView returned live state")
	}
}

func TestManyProposalsAllSemantics(t *testing.T) {
	h := newHarness(t, 0, 1, 2)
	sems := []oal.Semantics{
		sem(oal.Unordered, oal.WeakAtomicity),
		sem(oal.Unordered, oal.StrongAtomicity),
		sem(oal.Unordered, oal.StrictAtomicity),
		sem(oal.TotalOrder, oal.WeakAtomicity),
		sem(oal.TotalOrder, oal.StrongAtomicity),
		sem(oal.TotalOrder, oal.StrictAtomicity),
		sem(oal.TimeOrder, oal.WeakAtomicity),
		sem(oal.TimeOrder, oal.StrongAtomicity),
		sem(oal.TimeOrder, oal.StrictAtomicity),
	}
	const rounds = 4
	want := 0
	for r := 0; r < rounds; r++ {
		for i, sm := range sems {
			from := h.group.Members[(r+i)%3]
			h.propose(from, fmt.Sprintf("m-%d-%d", r, i), sm)
			want++
		}
		h.rotate()
	}
	// Settle time order and remaining atomicity.
	h.now = h.now.Add(10 * h.params.Delta)
	h.rotate()
	h.rotate()
	for _, id := range h.group.Members {
		if got := len(h.payloads(id)); got != want {
			t.Fatalf("p%d delivered %d/%d", id, got, want)
		}
	}
	// Total-order updates appear in identical relative order everywhere.
	totals := func(id model.ProcessID) []string {
		var out []string
		for _, d := range h.deliv[id] {
			if d.Sem.Order == oal.TotalOrder {
				out = append(out, string(d.Payload))
			}
		}
		return out
	}
	ref := totals(0)
	for _, id := range []model.ProcessID{1, 2} {
		got := totals(id)
		if len(got) != len(ref) {
			t.Fatalf("total-order count mismatch")
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order diverges at %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
	// Time-order updates are delivered in send-timestamp order.
	for _, id := range h.group.Members {
		var last model.Time
		for _, d := range h.deliv[id] {
			if d.Sem.Order != oal.TimeOrder {
				continue
			}
			if d.SendTS < last {
				t.Fatalf("p%d time order violated", id)
			}
			last = d.SendTS
		}
	}
}

func TestTruncatedEntryDeliveredOnAdoption(t *testing.T) {
	// Regression: a member whose delivery was blocked (here: strict
	// atomicity without full acks in its view) must still deliver an
	// update when a decision truncates it away — truncation proves
	// global stability.
	params := model.DefaultParams(3)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2})
	var got []string
	b := New(1, params, Config{OnDeliver: func(d Delivery) { got = append(got, string(d.Payload)) }})
	b.SetGroup(g)

	body := &wire.Proposal{
		Header:  wire.Header{From: 0, SendTS: 50},
		ID:      oal.ProposalID{Proposer: 0, Seq: 1},
		Sem:     oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		Payload: []byte("stable-but-blocked"),
	}
	b.OnProposal(60, body)

	l1 := oal.NewList()
	var acks oal.AckSet
	acks.Add(0)
	l1.AppendUpdate(body.ID, body.Sem, body.SendTS, oal.None, acks)
	b.AdoptDecision(100, &wire.Decision{
		Header: wire.Header{From: 0, SendTS: 100}, Group: g, OAL: *l1, Alive: g.Members,
	})
	if len(got) != 0 {
		t.Fatalf("delivered without full acks: %v", got)
	}

	// A later decision arrives with the entry already truncated.
	l2 := &oal.List{Next: 2}
	b.AdoptDecision(200, &wire.Decision{
		Header: wire.Header{From: 2, SendTS: 200}, Group: g, OAL: *l2, Alive: g.Members,
	})
	if len(got) != 1 || got[0] != "stable-but-blocked" {
		t.Fatalf("truncated entry not delivered: %v", got)
	}
}
