package broadcast

import (
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// Delta-encoded decisions (wire v5). Steady state, consecutive decisions
// share almost all of their oal: most descriptors are unchanged, a few
// gain ack bits, a few are appended, a stable prefix is truncated. The
// decider therefore ships only the entries that changed, against a
// baseline the receivers already hold:
//
//   - every process retains a short ring of *pristine* oals — the exact
//     wire content of the freshest decisions it built or adopted,
//     captured before local ack refreshes diverge b.view from them.
//     The decision at any timestamp is one broadcast message, so every
//     member's pristine copy of it is identical.
//   - a delta decision carries BaseTS (the ring's oldest timestamp at
//     the sender — a few decisions back, not the latest), TruncBelow
//     (the first ordinal the full oal retains; truncation is conveyed
//     by the bound, not by shipping the survivors), the entries that
//     changed since BaseTS, and the full list's Next (so freshness
//     guards work unreconstructed).
//   - descriptors evolve monotonically (ack bits, stability stamps and
//     undeliverable marks are only ever added), so "changed since
//     BaseTS" covers every change since *any* later decision too. A
//     receiver therefore overlays the delta onto its own newest
//     pristine baseline whenever that baseline is at least as new as
//     BaseTS — it may have missed up to ring-size-1 consecutive
//     decisions and still apply the next one.
//   - a receiver that fell further behind requests a baseline with an
//     OALReq; the server answers with its newest pristine oal in an
//     OALFull and, as a backstop, ships its next decision full.
//
// Elections and membership changes force the next decision full, and
// every fullEvery-th decision is full regardless, bounding how long a
// lost baseline can stall a member.

const defaultFullOALEvery = 8

// The baseline ring holds the pristine oals of the freshest few
// decisions, and its size bounds how far back a delta may reach: a
// receiver that missed up to size-1 consecutive decisions still applies
// the next delta. The size adapts to the observed decision-loss rate:
// every baseline repair — an OALReq from a peer that lost its baseline,
// or a delta received here with no qualifying baseline — widens the
// ring by one, so a lossier link tolerates a longer gap before paying a
// full-oal round trip; deltaShrinkAfter consecutive repairs-free
// baselines shrink it back toward the minimum, keeping the steady-state
// retention (and Diff work against the oldest entry) small.
const (
	minDeltaWindow   = 3
	maxDeltaWindow   = 8
	deltaShrinkAfter = 256
)

// pristineView is one retained decision oal, exactly as it went over
// the wire.
type pristineView struct {
	ts   model.Time
	view *oal.List
}

// deltaEligible reports whether the next outgoing decision/no-decision
// may be delta-encoded against the retained baselines.
func (b *Broadcast) deltaEligible() bool {
	return b.fullEvery >= 0 && !b.forceFull && len(b.baseRing) > 0
}

// ForceFullOAL makes this process's next decision carry the full oal.
// The member layer calls it when an OALReq arrives: some peer lost the
// baseline, and one full decision re-seeds everyone at once. Each
// request is also a loss-rate observation — a peer fell more than
// ring-size decisions behind — so the ring widens.
func (b *Broadcast) ForceFullOAL() {
	b.forceFull = true
	b.noteBaselineRepair()
}

// DeltaWindow returns the current adaptive baseline-ring capacity.
func (b *Broadcast) DeltaWindow() int { return b.deltaWin }

// noteBaselineRepair records one baseline miss (ours or a peer's) and
// widens the ring, buying lossier links a deeper reach before the next
// full-oal round trip.
func (b *Broadcast) noteBaselineRepair() {
	b.deltaClean = 0
	if b.deltaWin < maxDeltaWindow {
		b.deltaWin++
	}
}

// pushBaseline retains full (a pristine clone the caller hands over —
// it must not be mutated afterwards) as the newest baseline at ts.
// Every retained baseline without an intervening repair counts toward
// shrinking an over-widened ring back down.
func (b *Broadcast) pushBaseline(ts model.Time, full *oal.List) {
	if b.deltaClean++; b.deltaClean >= deltaShrinkAfter {
		b.deltaClean = 0
		if b.deltaWin > minDeltaWindow {
			b.deltaWin--
		}
	}
	b.baseRing = append(b.baseRing, pristineView{ts: ts, view: full})
	if len(b.baseRing) > b.deltaWin {
		n := copy(b.baseRing, b.baseRing[len(b.baseRing)-b.deltaWin:])
		b.baseRing = b.baseRing[:n]
	}
}

// clearBaselines drops every retained baseline; the next decision ships
// full.
func (b *Broadcast) clearBaselines() { b.baseRing = nil }

// newestBaseline returns the freshest retained pristine oal, or nil.
func (b *Broadcast) newestBaseline() *pristineView {
	if len(b.baseRing) == 0 {
		return nil
	}
	return &b.baseRing[len(b.baseRing)-1]
}

// encodeDelta rewrites dec (currently carrying the full oal in full)
// into delta form against the oldest retained baseline when eligible
// and profitable. It returns whether dec is now a delta.
func (b *Broadcast) encodeDelta(dec *wire.Decision, full *oal.List) bool {
	if !b.deltaEligible() || b.sinceFull+1 >= b.fullEvery {
		return false
	}
	base := &b.baseRing[0] // oldest: tolerates receivers a few decisions behind
	delta, ok := oal.Diff(base.view, full)
	if !ok || len(delta) >= len(full.Entries) {
		// Unorderable baseline or no savings: a full oal is no larger
		// and never needs a baseline round trip.
		return false
	}
	dec.BaseTS = base.ts
	dec.TruncBelow = oal.TruncationPoint(full)
	dec.OAL = oal.List{Entries: delta, Next: full.Next}
	return true
}

// resolveDelta overlays a delta list onto this process's newest
// baseline, writing the reconstructed full list into out. It reports
// whether the baseline qualifies (same lineage space implied by the
// caller, and at least as new as the delta's BaseTS — monotone
// descriptor evolution makes any such baseline valid).
func (b *Broadcast) resolveDelta(baseTS model.Time, truncBelow oal.Ordinal, delta *oal.List) (out *oal.List, ok bool) {
	base := b.newestBaseline()
	if base == nil || baseTS > base.ts {
		return nil, false
	}
	out = oal.NewList()
	if !oal.ReconstructInto(out, base.view, truncBelow, delta) {
		return nil, false
	}
	return out, true
}

// ResolveDecisionDelta reconstructs a delta-encoded decision's full oal
// in place against this process's baselines. It returns true when dec
// now carries a full oal — it already did, reconstruction succeeded, or
// the decision is stale and AdoptDecision will drop it regardless — and
// false when no baseline qualifies: the caller cannot use the decision
// and should request a baseline via OALReq.
func (b *Broadcast) ResolveDecisionDelta(dec *wire.Decision) bool {
	if dec.BaseTS == 0 {
		return true
	}
	if dec.SendTS <= b.lastDecTS {
		return true // stale either way; don't demand a baseline for it
	}
	if dec.Lineage != b.lineage {
		b.stats.DeltaMisses++
		return false
	}
	full, ok := b.resolveDelta(dec.BaseTS, dec.TruncBelow, &dec.OAL)
	if !ok {
		b.stats.DeltaMisses++
		b.noteBaselineRepair()
		return false
	}
	dec.OAL = *full
	dec.BaseTS, dec.TruncBelow = 0, 0
	return true
}

// ResolveNoDecisionDelta reconstructs a delta-encoded no-decision view
// in place, under the same baseline contract as decisions. A false
// return leaves nd untouched (BaseTS != 0 keeps marking it partial);
// the caller may retry later — ResolveNoDecisionDelta is idempotent —
// and must not treat nd.View as a full log until it succeeds.
func (b *Broadcast) ResolveNoDecisionDelta(nd *wire.NoDecision) bool {
	if nd.BaseTS == 0 {
		return true
	}
	full, ok := b.resolveDelta(nd.BaseTS, nd.TruncBelow, &nd.View)
	if !ok {
		b.stats.DeltaMisses++
		b.noteBaselineRepair()
		return false
	}
	nd.View = *full
	nd.BaseTS, nd.TruncBelow = 0, 0
	return true
}

// NoDecisionView returns this process's oal view for an outgoing
// no-decision message: delta-encoded against the oldest retained
// baseline when possible (no-decisions broadcast every slot during an
// election, so the savings compound), full otherwise. The accompanying
// BaseTS and TruncBelow go out in the same message.
func (b *Broadcast) NoDecisionView() (view oal.List, baseTS model.Time, truncBelow oal.Ordinal) {
	full := b.CurrentView()
	if b.deltaEligible() {
		base := &b.baseRing[0]
		if delta, ok := oal.Diff(base.view, full); ok && len(delta) < len(full.Entries) {
			return oal.List{Entries: delta, Next: full.Next}, base.ts, oal.TruncationPoint(full)
		}
	}
	return *full, 0, 0
}

// ServeFullOAL builds the OALFull reply to an OALReq: the newest
// pristine baseline, which is what deltas overlay onto cluster-wide.
// Serving the (locally ack-refreshed) current view instead would hand
// the requester a baseline nobody else diffs from. Returns nil when
// this process holds no baseline to serve.
func (b *Broadcast) ServeFullOAL(now model.Time) *wire.OALFull {
	base := b.newestBaseline()
	if base == nil {
		return nil
	}
	b.stats.OALFullServed++
	return &wire.OALFull{
		Header:  wire.Header{From: b.self, SendTS: now},
		Group:   b.group.Clone(),
		Lineage: b.lineage,
		DecTS:   base.ts,
		OAL:     *base.view.Clone(),
	}
}

// InstallFullOAL applies a served baseline. A baseline newer than
// anything seen here doubles as a full decision (the content is exactly
// the decision sent at DecTS) and goes through the normal adoption
// path, returning the bodies to nack; a baseline matching the freshest
// adopted decision just (re)installs the overlay base. Stale baselines
// are ignored.
func (b *Broadcast) InstallFullOAL(now model.Time, of *wire.OALFull) (adopted bool, missing []oal.ProposalID) {
	if of.Lineage == b.lineage && of.DecTS == b.lastDecTS {
		if b.newestBaseline() == nil {
			b.pushBaseline(of.DecTS, of.OAL.Clone())
			return true, nil
		}
		return false, nil
	}
	dec := wire.Decision{
		Header:  wire.Header{From: of.From, SendTS: of.DecTS},
		Group:   of.Group,
		OAL:     of.OAL,
		Lineage: of.Lineage,
	}
	return b.AdoptDecision(now, &dec)
}
