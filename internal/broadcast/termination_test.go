package broadcast

import (
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// terminationHarness wires one member with the termination semantic
// armed.
func terminationHarness(window model.Duration) (*Broadcast, *[]Outcome) {
	params := model.DefaultParams(3)
	var outcomes []Outcome
	b := New(0, params, Config{
		TerminationAfter: window,
		OnOutcome:        func(o Outcome) { outcomes = append(outcomes, o) },
	})
	b.SetGroup(model.NewGroup(1, []model.ProcessID{0, 1, 2}))
	return b, &outcomes
}

func TestTerminationReportsDelivery(t *testing.T) {
	b, outcomes := terminationHarness(1000)
	p := b.Propose(100, []byte("fast"), oal.Semantics{Order: oal.Unordered, Atomicity: oal.WeakAtomicity})
	// Weak/unordered delivers immediately: the outcome fires at once.
	if len(*outcomes) != 1 {
		t.Fatalf("outcomes: %v", *outcomes)
	}
	o := (*outcomes)[0]
	if o.ID != p.ID || !o.Delivered || o.At != 100 {
		t.Fatalf("outcome: %+v", o)
	}
	// The sweep never double-reports.
	b.CheckTermination(10_000)
	if len(*outcomes) != 1 {
		t.Fatalf("double report: %v", *outcomes)
	}
}

func TestTerminationReportsExpiry(t *testing.T) {
	b, outcomes := terminationHarness(1000)
	// Total order: undeliverable until ordered, which never happens here.
	p := b.Propose(100, []byte("stuck"), oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity})
	b.CheckTermination(1100) // not yet: deadline is 100+1000=1100 inclusive
	if len(*outcomes) != 0 {
		t.Fatalf("premature outcome: %v", *outcomes)
	}
	b.CheckTermination(1101)
	if len(*outcomes) != 1 {
		t.Fatalf("outcomes: %v", *outcomes)
	}
	o := (*outcomes)[0]
	if o.ID != p.ID || o.Delivered {
		t.Fatalf("outcome: %+v", o)
	}
	// A late delivery after an expiry report does not re-report.
	dec, _ := b.BuildDecision(2000, b.Group(), b.Group().Members)
	_ = dec
	if len(*outcomes) != 1 {
		t.Fatalf("re-report after expiry: %v", *outcomes)
	}
}

func TestTerminationDeliveredViaDecision(t *testing.T) {
	b, outcomes := terminationHarness(10_000)
	b.Propose(100, []byte("ordered"), oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity})
	if len(*outcomes) != 0 {
		t.Fatalf("early outcome: %v", *outcomes)
	}
	// Becoming decider orders and delivers the update.
	b.BuildDecision(500, b.Group(), b.Group().Members)
	if len(*outcomes) != 1 || !(*outcomes)[0].Delivered {
		t.Fatalf("outcomes: %v", *outcomes)
	}
}

func TestTerminationDisabledByDefault(t *testing.T) {
	params := model.DefaultParams(3)
	fired := false
	b := New(0, params, Config{OnOutcome: func(Outcome) { fired = true }})
	b.SetGroup(model.NewGroup(1, []model.ProcessID{0, 1, 2}))
	b.Propose(100, []byte("x"), oal.Semantics{})
	b.CheckTermination(1 << 40)
	if fired {
		t.Fatalf("outcome fired without a termination window")
	}
}

func TestResetAbandonsArmedTerminations(t *testing.T) {
	b, outcomes := terminationHarness(1_000_000)
	b.Propose(100, []byte("in-flight"), oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity})
	if len(*outcomes) != 0 {
		t.Fatalf("premature outcome")
	}
	b.Reset()
	if len(*outcomes) != 1 || (*outcomes)[0].Delivered {
		t.Fatalf("reset did not abandon armed termination: %v", *outcomes)
	}
}
