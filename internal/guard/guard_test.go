package guard

import (
	"testing"
	"time"
)

func at(ms int) time.Time {
	// A fixed base keeps the tests deterministic; Round(0) strips the
	// monotonic clock so NoteClock's wall-vs-mono comparison is exercised
	// through explicit monotonic-carrying values where needed.
	return time.Unix(1_000_000, 0).Add(time.Duration(ms) * time.Millisecond)
}

func TestDefaults(t *testing.T) {
	g := New(Config{})
	c := g.Config()
	if c.HandlerBudget != 100*time.Millisecond || c.TimerLateBudget != 100*time.Millisecond ||
		c.ClockJumpMax != time.Second || c.TripCount != 3 || c.TripWindow != time.Second {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestHandlerOverrunCountsAndTrips(t *testing.T) {
	g := New(Config{HandlerBudget: 10 * time.Millisecond, TripCount: 2, TripWindow: time.Second, Enforce: true})
	g.NoteHandlerDone(at(0), at(5)) // within budget
	if s := g.Stats(); s.Overruns != 0 {
		t.Fatalf("overrun counted for a fast handler")
	}
	g.NoteHandlerDone(at(0), at(50))
	if g.Tripped() {
		t.Fatalf("tripped after one violation with TripCount=2")
	}
	g.NoteHandlerDone(at(100), at(200))
	if !g.Tripped() {
		t.Fatalf("not tripped after two violations within the window")
	}
	if s := g.Stats(); s.Overruns != 2 || !s.Tripped {
		t.Fatalf("stats %+v", s)
	}
}

func TestViolationsOutsideWindowDoNotTrip(t *testing.T) {
	g := New(Config{HandlerBudget: 10 * time.Millisecond, TripCount: 2, TripWindow: 100 * time.Millisecond})
	g.NoteHandlerDone(at(0), at(50))
	g.NoteHandlerDone(at(500), at(550)) // 500ms later: first violation aged out
	if g.Tripped() {
		t.Fatalf("tripped on violations spread beyond the window")
	}
}

func TestTimerLateness(t *testing.T) {
	g := New(Config{TimerLateBudget: 5 * time.Millisecond, TripCount: 1})
	g.NoteTimerFired(at(3), at(0))
	if s := g.Stats(); s.LateTimers != 0 {
		t.Fatalf("3ms late counted against a 5ms budget")
	}
	g.NoteTimerFired(at(20), at(0))
	if s := g.Stats(); s.LateTimers != 1 || !g.Tripped() {
		t.Fatalf("stats %+v tripped=%v", s, g.Tripped())
	}
	// Zero deadline (non-timer event) is ignored.
	g.NoteTimerFired(at(1000), time.Time{})
	if s := g.Stats(); s.LateTimers != 1 {
		t.Fatalf("zero deadline counted")
	}
}

func TestClockJump(t *testing.T) {
	// The public time API can't fabricate a wall reading that diverges
	// from its monotonic reading (Add moves both), so drive the
	// comparison directly: 10ms of monotonic flow during which the wall
	// clock moved 1.01s is a step.
	g := New(Config{ClockJumpMax: 50 * time.Millisecond, TripCount: 1})
	g.noteClockDelta(time.Second+10*time.Millisecond, 10*time.Millisecond, at(10))
	if s := g.Stats(); s.ClockJumps != 1 {
		t.Fatalf("clock step not detected: %+v", s)
	}
	// Backward steps count too.
	g2 := New(Config{ClockJumpMax: 50 * time.Millisecond, TripCount: 1})
	g2.noteClockDelta(-time.Second, 10*time.Millisecond, at(10))
	if s := g2.Stats(); s.ClockJumps != 1 {
		t.Fatalf("backward step not detected: %+v", s)
	}
}

func TestClockSmoothFlowIsClean(t *testing.T) {
	g := New(Config{ClockJumpMax: 50 * time.Millisecond, TripCount: 1})
	base := time.Now()
	for i := 0; i < 10; i++ {
		g.NoteClock(base.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	if s := g.Stats(); s.ClockJumps != 0 {
		t.Fatalf("smooth clock flagged: %+v", s)
	}
}

func TestEnforceSuppressesAndRearms(t *testing.T) {
	g := New(Config{HandlerBudget: time.Millisecond, TripCount: 1, TripWindow: 100 * time.Millisecond, Enforce: true})
	if !g.AllowControlSend() {
		t.Fatalf("untripped guard blocked a send")
	}
	g.NoteHandlerDone(at(0), at(10))
	if g.AllowControlSend() {
		t.Fatalf("tripped enforcing guard allowed a send")
	}
	if s := g.Stats(); s.SuppressedSends != 1 || s.LateSends != 0 {
		t.Fatalf("stats %+v", s)
	}
	g.NoteSelfExclusion()
	g.Rearm(at(10))
	if g.Tripped() {
		t.Fatalf("still tripped after rearm")
	}
	if !g.AllowControlSend() {
		t.Fatalf("rearmed guard blocked a send")
	}
	// A stale violation inside the grace window must not re-trip...
	g.NoteHandlerDone(at(11), at(20))
	if g.Tripped() {
		t.Fatalf("re-tripped during grace period")
	}
	// ...but a fresh one after the grace window must.
	g.NoteHandlerDone(at(200), at(250))
	if !g.Tripped() {
		t.Fatalf("violation after grace did not trip")
	}
	if s := g.Stats(); s.SelfExclusions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestObserveOnlyCountsLateSendsAndLatches(t *testing.T) {
	g := New(Config{HandlerBudget: time.Millisecond, TripCount: 1})
	g.NoteHandlerDone(at(0), at(10))
	if !g.AllowControlSend() {
		t.Fatalf("observe-only guard suppressed a send")
	}
	if s := g.Stats(); s.LateSends != 1 || s.SuppressedSends != 0 {
		t.Fatalf("stats %+v", s)
	}
	g.Rearm(at(10))
	if !g.Tripped() {
		t.Fatalf("observe-only trip did not latch across Rearm")
	}
	if s := g.Stats(); !s.Tripped {
		t.Fatalf("stats lost the latched trip: %+v", s)
	}
}

func TestDisabledChecks(t *testing.T) {
	g := New(Config{HandlerBudget: -1, TimerLateBudget: -1, ClockJumpMax: -1, TripCount: 1})
	g.NoteHandlerDone(at(0), at(10_000))
	g.NoteTimerFired(at(10_000), at(0))
	g.NoteClock(time.Now())
	g.NoteClock(time.Now().Round(0).Add(time.Hour))
	if s := g.Stats(); s.Overruns+s.LateTimers+s.ClockJumps != 0 || g.Tripped() {
		t.Fatalf("disabled checks still fired: %+v", s)
	}
}

// fixedBudgets is a scripted BudgetSource.
type fixedBudgets struct{ handler, timerLate time.Duration }

func (f fixedBudgets) Budgets() (time.Duration, time.Duration) { return f.handler, f.timerLate }

func TestAdaptiveBudgetSource(t *testing.T) {
	src := &fixedBudgets{handler: 5 * time.Millisecond, timerLate: 7 * time.Millisecond}
	g := New(Config{Budgets: src, TripCount: 1})

	// Inside the adaptive budgets (but far under the 100ms defaults the
	// static config would have applied): no violation either way.
	g.NoteHandlerDone(at(0), at(4))
	g.NoteTimerFired(at(6), at(0))
	if s := g.Stats(); s.Overruns+s.LateTimers != 0 {
		t.Fatalf("violations inside adaptive budgets: %+v", s)
	}

	// Over the adaptive budgets, though well under the static defaults:
	// the adaptive source is in force.
	g.NoteHandlerDone(at(100), at(106))
	g.NoteTimerFired(at(108), at(100))
	if s := g.Stats(); s.Overruns != 1 || s.LateTimers != 1 {
		t.Fatalf("adaptive budgets not applied: %+v", s)
	}
	if h, l := g.EffectiveBudgets(); h != src.handler || l != src.timerLate {
		t.Fatalf("EffectiveBudgets = (%v,%v)", h, l)
	}
}

func TestExplicitBudgetOverridesSource(t *testing.T) {
	src := &fixedBudgets{handler: time.Millisecond, timerLate: time.Millisecond}
	g := New(Config{HandlerBudget: 50 * time.Millisecond, Budgets: src, TripCount: 1})

	// Handler budget was set explicitly: the 1ms adaptive value is
	// ignored for it, so a 10ms handler is fine...
	g.NoteHandlerDone(at(0), at(10))
	if s := g.Stats(); s.Overruns != 0 {
		t.Fatalf("explicit handler budget not honored: %+v", s)
	}
	// ...while the timer dimension (not explicit) follows the source.
	g.NoteTimerFired(at(10), at(0))
	if s := g.Stats(); s.LateTimers != 1 {
		t.Fatalf("non-explicit timer budget ignored the source: %+v", s)
	}
	if h, _ := g.EffectiveBudgets(); h != 50*time.Millisecond {
		t.Fatalf("EffectiveBudgets handler = %v, want explicit 50ms", h)
	}
}

func TestBudgetSourceWarmupFallsBackToStatic(t *testing.T) {
	src := &fixedBudgets{} // both dimensions still warming up (0)
	g := New(Config{Budgets: src, TripCount: 1})
	if h, l := g.EffectiveBudgets(); h != 100*time.Millisecond || l != 100*time.Millisecond {
		t.Fatalf("warmup budgets = (%v,%v), want static defaults", h, l)
	}
	g.NoteHandlerDone(at(0), at(50))
	if s := g.Stats(); s.Overruns != 0 {
		t.Fatalf("warmup used a zero budget: %+v", s)
	}
}
