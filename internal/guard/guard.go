// Package guard implements the local performance-failure detector the
// timed asynchronous model demands of a fail-aware process (paper §2:
// processes "have access to local hardware clocks" and must know when
// their own scheduling or clock has failed them). The failure detector
// in internal/member tells a process which *peers* look late; the guard
// tells a process when *it itself* has become the slow one — a stalled
// handler, a timer fired long after its deadline, a synchronized-clock
// discontinuity — so it can stop emitting control messages whose
// timestamps no longer mean what receivers will assume they mean.
//
// The guard is advisory until it trips: every violation is counted, and
// when TripCount violations land within TripWindow the guard trips.
// What a trip means is the caller's policy (Config.Enforce): the node
// layer either self-excludes (suppresses control sends, abandons any
// in-progress decision, rejoins warm), or — in observe-only mode —
// keeps running and counts the late control traffic it would have
// suppressed, which is exactly the ablation the chaos tests assert on.
package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the guard's budgets. Zero values take the defaults;
// negative values disable the corresponding check.
type Config struct {
	// HandlerBudget bounds the wall-clock time one event handler may
	// take before it counts as an overrun (default 100ms).
	HandlerBudget time.Duration
	// TimerLateBudget bounds how far past its armed deadline a timer
	// event may be dispatched (default 100ms). This covers both OS
	// timer slip and queueing behind a stalled handler.
	TimerLateBudget time.Duration
	// ClockJumpMax bounds the divergence between the wall clock and the
	// monotonic clock across consecutive observations (default 1s); a
	// larger divergence is a clock discontinuity (step, suspend/resume).
	ClockJumpMax time.Duration
	// TripCount violations within TripWindow trip the guard
	// (defaults 3 within 1s).
	TripCount  int
	TripWindow time.Duration
	// Enforce selects the trip policy: true means the node layer
	// self-excludes; false means violations and late sends are only
	// counted (the trip still latches so tests can see it fired).
	Enforce bool
	// Budgets, if set, supplies adaptive handler/timer-lateness budgets
	// (typically an adapt.NoiseEstimator tracking the host's observed
	// scheduling noise). A dimension whose static budget above was set
	// explicitly (non-zero) keeps the static value — explicit
	// configuration overrides adaptation — and the source is also
	// ignored for a dimension while it reports 0 (estimator warmup).
	Budgets BudgetSource
}

// BudgetSource supplies the guard's adaptive budgets. Budgets is called
// on every guarded observation, from the engine's dispatch
// goroutine(s): implementations must be fast and concurrency-safe. A
// returned 0 means "no estimate yet" for that dimension.
type BudgetSource interface {
	Budgets() (handler, timerLate time.Duration)
}

func (c Config) withDefaults() Config {
	if c.HandlerBudget == 0 {
		c.HandlerBudget = 100 * time.Millisecond
	}
	if c.TimerLateBudget == 0 {
		c.TimerLateBudget = 100 * time.Millisecond
	}
	if c.ClockJumpMax == 0 {
		c.ClockJumpMax = time.Second
	}
	if c.TripCount == 0 {
		c.TripCount = 3
	}
	if c.TripWindow == 0 {
		c.TripWindow = time.Second
	}
	return c
}

// Stats is a snapshot of the guard's counters. All counters are
// cumulative over the guard's lifetime.
type Stats struct {
	// Overruns counts handlers that exceeded HandlerBudget.
	Overruns uint64
	// LateTimers counts timer events dispatched more than
	// TimerLateBudget past their armed deadline.
	LateTimers uint64
	// ClockJumps counts wall-vs-monotonic clock discontinuities larger
	// than ClockJumpMax.
	ClockJumps uint64
	// SelfExclusions counts guard trips that led the node to
	// self-exclude and rejoin.
	SelfExclusions uint64
	// SuppressedSends counts control messages withheld while tripped
	// with Enforce set.
	SuppressedSends uint64
	// LateSends counts control messages let through while tripped in
	// observe-only mode — the traffic a fail-aware process must not
	// emit, made countable for the enforcement ablation.
	LateSends uint64
	// QueueDrops mirrors the engine's bounded-queue drop counter (the
	// node layer fills it in; the guard itself does not track it).
	QueueDrops uint64
	// Trips counts how many times the guard transitioned from armed to
	// tripped (distinct trip episodes, not violations).
	Trips uint64
	// Tripped reports whether the guard is currently (Enforce) or was
	// ever (observe-only) tripped.
	Tripped bool
}

// Guard is the detector. Note* methods are called from the engine's
// dispatch goroutine(s); AllowControlSend, Tripped and Stats may be
// called from any goroutine.
type Guard struct {
	cfg Config

	// handlerExplicit/timerExplicit record which static budgets the
	// caller set explicitly: those dimensions never follow Config.Budgets.
	handlerExplicit bool
	timerExplicit   bool

	overruns       atomic.Uint64
	lateTimers     atomic.Uint64
	clockJumps     atomic.Uint64
	selfExclusions atomic.Uint64
	suppressed     atomic.Uint64
	lateSends      atomic.Uint64
	trips          atomic.Uint64
	tripped        atomic.Bool
	everTripped    atomic.Bool

	// onTrip, if set, is called once per armed→tripped transition, from
	// the goroutine that detected the violation. It must be fast and
	// non-blocking (it runs under mu).
	onTrip func()

	// mu guards the violation window and the last clock observation.
	// Note* callers are serialised by the engine in practice, but the
	// Threaded engine dispatches from several goroutines and Rearm is
	// called from the handler path, so the small critical section is
	// locked rather than assumed.
	mu         sync.Mutex
	violations []time.Time
	lastClock  time.Time
	graceUntil time.Time
}

// New returns a guard with cfg's budgets (zero fields defaulted).
func New(cfg Config) *Guard {
	return &Guard{
		cfg:             cfg.withDefaults(),
		handlerExplicit: cfg.HandlerBudget != 0,
		timerExplicit:   cfg.TimerLateBudget != 0,
	}
}

// Config returns the effective (defaulted) configuration.
func (g *Guard) Config() Config { return g.cfg }

// handlerBudget returns the budget one handler is judged against right
// now: the adaptive source when one is wired, this dimension was not
// set explicitly, and the source has warmed up; the static value
// otherwise.
func (g *Guard) handlerBudget() time.Duration {
	if g.cfg.Budgets != nil && !g.handlerExplicit {
		if h, _ := g.cfg.Budgets.Budgets(); h > 0 {
			return h
		}
	}
	return g.cfg.HandlerBudget
}

// timerLateBudget is handlerBudget's twin for timer lateness.
func (g *Guard) timerLateBudget() time.Duration {
	if g.cfg.Budgets != nil && !g.timerExplicit {
		if _, l := g.cfg.Budgets.Budgets(); l > 0 {
			return l
		}
	}
	return g.cfg.TimerLateBudget
}

// EffectiveBudgets returns the handler and timer-lateness budgets
// currently in force (adaptive values when a source is driving them).
// Safe from any goroutine; this is what the budget gauges export.
func (g *Guard) EffectiveBudgets() (handler, timerLate time.Duration) {
	return g.handlerBudget(), g.timerLateBudget()
}

// NoteClock checks the wall clock against the monotonic clock. now must
// carry a monotonic reading (i.e. come straight from time.Now).
func (g *Guard) NoteClock(now time.Time) {
	if g.cfg.ClockJumpMax < 0 {
		return
	}
	g.mu.Lock()
	last := g.lastClock
	g.lastClock = now
	g.mu.Unlock()
	if last.IsZero() {
		return
	}
	// Round(0) strips the monotonic reading, so the first difference is
	// wall-clock and the second is monotonic; a synchronized clock that
	// stepped (NTP slew gone wrong, suspend/resume, VM migration) shows
	// up as divergence between the two.
	g.noteClockDelta(now.Round(0).Sub(last.Round(0)), now.Sub(last), now)
}

// noteClockDelta compares one wall-clock interval against the monotonic
// interval spanning the same pair of observations (split out from
// NoteClock because the public time API cannot fabricate divergent
// readings for tests).
func (g *Guard) noteClockDelta(wall, mono time.Duration, now time.Time) {
	div := wall - mono
	if div < 0 {
		div = -div
	}
	if div > g.cfg.ClockJumpMax {
		g.clockJumps.Add(1)
		g.violation(now)
	}
}

// NoteTimerFired records a timer event dispatched at now that was armed
// for the given deadline (zero deadlines are ignored).
func (g *Guard) NoteTimerFired(now, due time.Time) {
	if g.cfg.TimerLateBudget < 0 || due.IsZero() {
		return
	}
	if late := now.Sub(due); late > g.timerLateBudget() {
		g.lateTimers.Add(1)
		g.violation(now)
	}
}

// NoteHandlerDone records a handler that started at start and returned
// at now.
func (g *Guard) NoteHandlerDone(start, now time.Time) {
	if g.cfg.HandlerBudget < 0 {
		return
	}
	if now.Sub(start) > g.handlerBudget() {
		g.overruns.Add(1)
		g.violation(now)
	}
}

// violation appends to the sliding window and trips the guard when
// TripCount violations land within TripWindow. During the grace period
// after a Rearm, violations are counted (the counters above already
// were) but do not re-trip: the backlog of late timers drained right
// after a self-exclusion describes the *old* stall, not a new one.
func (g *Guard) violation(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if now.Before(g.graceUntil) {
		return
	}
	cutoff := now.Add(-g.cfg.TripWindow)
	keep := g.violations[:0]
	for _, t := range g.violations {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	g.violations = append(keep, now)
	if len(g.violations) >= g.cfg.TripCount {
		if g.tripped.CompareAndSwap(false, true) {
			g.everTripped.Store(true)
			g.trips.Add(1)
			if g.onTrip != nil {
				g.onTrip()
			}
		}
	}
}

// Tripped reports whether the guard is currently tripped.
func (g *Guard) Tripped() bool { return g.tripped.Load() }

// OnTrip installs a callback invoked once per armed→tripped transition
// (observability taps). Call before the guard is in use; the callback
// runs on the violating goroutine and must not block.
func (g *Guard) OnTrip(fn func()) { g.onTrip = fn }

// AllowControlSend is consulted before every outgoing control message.
// Untripped: allowed. Tripped with Enforce: suppressed (counted).
// Tripped observe-only: allowed but counted as a late send — the
// message a fail-aware process should not have emitted.
func (g *Guard) AllowControlSend() bool {
	if !g.tripped.Load() {
		return true
	}
	if g.cfg.Enforce {
		g.suppressed.Add(1)
		return false
	}
	g.lateSends.Add(1)
	return true
}

// NoteSelfExclusion records that the node acted on a trip by
// self-excluding.
func (g *Guard) NoteSelfExclusion() { g.selfExclusions.Add(1) }

// Rearm clears the trip after the node has self-excluded and dropped to
// the join state, opening a grace window (one TripWindow) during which
// stale violations cannot immediately re-trip the guard. Observe-only
// guards latch: the trip survives Rearm so tests and operators can see
// it fired.
func (g *Guard) Rearm(now time.Time) {
	g.mu.Lock()
	g.violations = g.violations[:0]
	g.graceUntil = now.Add(g.cfg.TripWindow)
	g.mu.Unlock()
	if g.cfg.Enforce {
		g.tripped.Store(false)
	}
}

// Stats snapshots the counters. Safe from any goroutine, including
// while the guarded event loop is stalled.
func (g *Guard) Stats() Stats {
	return Stats{
		Overruns:        g.overruns.Load(),
		LateTimers:      g.lateTimers.Load(),
		ClockJumps:      g.clockJumps.Load(),
		SelfExclusions:  g.selfExclusions.Load(),
		SuppressedSends: g.suppressed.Load(),
		LateSends:       g.lateSends.Load(),
		Trips:           g.trips.Load(),
		Tripped:         g.tripped.Load() || g.everTripped.Load(),
	}
}
