// Package livechaos runs a real timewheel cluster — N live nodes, each
// on its own goroutine-backed engine — under the chaos transport
// middleware and a scripted nemesis, injects event-goroutine stalls,
// and checks the paper's §3 membership invariants against the histories
// the nodes record. It is the live-cluster counterpart of the netsim
// scenarios: the same properties, validated on real clocks and real
// concurrency instead of the simulator's virtual time.
package livechaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"timewheel"
	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/transport"
)

// Options configures one live chaos run.
type Options struct {
	// N is the cluster size (default 3).
	N int
	// Seed drives the chaos fault mix and the nemesis schedule.
	Seed int64
	// Duration is the nemesis phase length (default 1.5s); the run
	// itself lasts longer (formation before, reconvergence after).
	Duration time.Duration
	// Stall is the length of the stall injected into the victim's
	// event goroutine mid-run (default 400ms — far beyond the guard
	// budgets, so an enforcing guard must trip).
	Stall time.Duration
	// Victim selects the stalled node; -1 (default via zero Options
	// literal is 0 — pass -1 explicitly) picks a node that is not
	// currently the decider, keeping the recorded tenure overlap
	// within the skew bound the invariant check can tolerate.
	Victim int
	// Stalls is how many distinct nodes are stalled concurrently in
	// phase two (default 1). With more than one victim the cluster
	// must still hold a majority: Stalls <= (N-1)/2.
	Stalls int
	// GuardBudget overrides the per-node handler/timer budgets
	// (default 100ms). Bigger clusters under full-suite test load see
	// real scheduling lateness beyond 100ms on healthy nodes; a
	// spurious trip cascades into exclusion churn, so heavy runs
	// should raise this while keeping it under Stall.
	GuardBudget time.Duration
	// ConvergeTimeout bounds the post-stall reconvergence wait
	// (default 30s).
	ConvergeTimeout time.Duration
	// NemesisFlaps is the number of link/partition flaps in the
	// scripted nemesis schedule (default 4).
	NemesisFlaps int
	// Observe runs the guard in observe-only mode: violations are
	// counted (LateSends in particular) but nothing is suppressed and
	// the node never self-excludes.
	Observe bool
	// DataDir is the base directory for the nodes' durable state; a
	// temp directory (removed afterwards) is used when empty. Durable
	// state is what makes the post-exclusion rejoin warm.
	DataDir string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Report is what one run produces.
type Report struct {
	// Guard holds each node's final guard counters, indexed by ID.
	Guard []timewheel.GuardStats
	// Chaos holds the chaos middleware's fault counters.
	Chaos transport.ChaosStats
	// Invariants is the live-adapted §3 membership check result.
	Invariants *check.Result
	// Delivered is each node's delivered-update count.
	Delivered []uint64
	// SelfExclusions and LateSends are summed over the cluster.
	SelfExclusions uint64
	LateSends      uint64
	// Victim is the first stalled node; Victims lists all of them.
	Victim  int
	Victims []int
	// SuspicionReaction and ElectionDuration summarize each node's
	// observability histograms for the run (nanosecond latencies):
	// how far past the ts+2D deadline suspicion handlers fired, and
	// how long leaving the failure-free state lasted end to end.
	SuspicionReaction []timewheel.HistogramStat
	ElectionDuration  []timewheel.HistogramStat
	// Converged reports whether every node was back in a full view
	// (and the victim up to date) by the end of the run.
	Converged bool
	// WarmRejoins counts replay deltas served cluster-wide — a warm
	// (coverage-preserving) rejoin shows up here rather than as a
	// full state transfer.
	WarmRejoins uint64
}

// port lifts an internal chaos-wrapped transport to the public
// timewheel.Transport interface.
type port struct{ t transport.Transport }

func (p port) Broadcast(data []byte) error       { return p.t.Broadcast(data) }
func (p port) Unicast(to int, data []byte) error { return p.t.Unicast(model.ProcessID(to), data) }
func (p port) SetReceiver(r func(data []byte))   { p.t.SetReceiver(r) }
func (p port) Close() error                      { return p.t.Close() }

// Run executes one live chaos run and reports what happened. Errors are
// setup failures only; protocol misbehaviour lands in the Report.
func Run(o Options) (*Report, error) {
	if o.N <= 0 {
		o.N = 3
	}
	if o.Duration <= 0 {
		o.Duration = 1500 * time.Millisecond
	}
	if o.Stall <= 0 {
		o.Stall = 400 * time.Millisecond
	}
	if o.Stalls <= 0 {
		o.Stalls = 1
	}
	if o.NemesisFlaps <= 0 {
		o.NemesisFlaps = 4
	}
	if o.GuardBudget <= 0 {
		o.GuardBudget = 100 * time.Millisecond
	}
	if o.ConvergeTimeout <= 0 {
		o.ConvergeTimeout = 30 * time.Second
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dataDir := o.DataDir
	if dataDir == "" {
		d, err := os.MkdirTemp("", "livechaos")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dataDir = d
	}

	// The protocol constants leave room for the chaos delays: worst
	// case hub delay (300µs) plus chaos hold (1ms) stays under Delta.
	params := timewheel.Params{
		Delta:   3 * time.Millisecond,
		D:       8 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: 500 * time.Microsecond,
	}
	hub := transport.NewHub(transport.HubOptions{MaxDelay: 300 * time.Microsecond, Seed: o.Seed})
	defer hub.Close()
	net := transport.NewChaosNet(o.Seed, transport.Faults{
		MaxDelay:  time.Millisecond,
		Drop:      0.02,
		Duplicate: 0.02,
		Corrupt:   0.01,
		Reorder:   0.05,
		// The default reorder hold (4×MaxDelay = 4ms) pushes a held
		// frame past Delta+Epsilon+Sigma — every reordered control
		// message would arrive "late" and feed wrong-suspicion storms.
		// 2ms keeps reordering real but inside the timeliness bound.
		ReorderDelay: 2 * time.Millisecond,
	})

	nodes := make([]*timewheel.Node, o.N)
	delivered := make([]atomic.Uint64, o.N)
	ids := make([]model.ProcessID, o.N)
	for i := 0; i < o.N; i++ {
		ids[i] = model.ProcessID(i)
		i := i
		nd, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: o.N,
			Transport:   port{net.Wrap(hub.Attach(model.ProcessID(i)))},
			Params:      params,
			DataDir:     filepath.Join(dataDir, fmt.Sprintf("node-%d", i)),
			Fsync:       "none",
			OnDeliver:   func(timewheel.Delivery) { delivered[i].Add(1) },
			Guard: timewheel.GuardConfig{
				Enabled: true,
				// Generous budgets: a loaded test host (and the race
				// detector) produces real 30ms+ scheduling lateness on
				// perfectly healthy nodes, and a spurious trip cascades —
				// exclusion, election, re-formation, a new lineage.
				// 100ms only catches the injected 400ms stall.
				HandlerBudget:   o.GuardBudget,
				TimerLateBudget: o.GuardBudget,
				// A stalled node shows one overrun (the stall itself)
				// plus one late slot timer — the slot timer re-arms
				// from its own handler, so only one is ever queued.
				TripCount:  2,
				TripWindow: 2 * time.Second,
				Enforce:    !o.Observe,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	fullView := func(nd *timewheel.Node) bool {
		v, ok := nd.CurrentView()
		return ok && len(v.Members) == o.N
	}
	allFull := func() bool {
		for _, nd := range nodes {
			if !fullView(nd) {
				return false
			}
		}
		return true
	}
	if !waitUntil(20*time.Second, allFull) {
		return nil, fmt.Errorf("cluster never formed a full view")
	}
	logf("formed: %d nodes in a full view", o.N)

	// Background proposers keep updates (and decisions) flowing so the
	// chaos has traffic to torment and the histories have substance.
	propStop := make(chan struct{})
	propDone := make(chan struct{})
	go func() {
		defer close(propDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-propStop:
				return
			case <-tick.C:
				nd := nodes[i%o.N]
				// Rejected proposals (mid-rejoin, excluded) are fine.
				_ = nd.Propose([]byte(fmt.Sprintf("u%d", i)), timewheel.TotalOrder, timewheel.Strong)
			}
		}
	}()

	// Phase one: the scripted nemesis flaps links and partitions while
	// the per-frame faults (drop/dup/corrupt/reorder) torment every
	// frame. The schedule ends healed.
	steps := transport.RandomNemesis(o.Seed+1, ids, o.NemesisFlaps, o.Duration)
	for _, s := range steps {
		logf("nemesis @%v: %s", s.After, s.Desc)
	}
	stopSched := net.RunSchedule(steps)
	defer stopSched()
	time.Sleep(o.Duration + 50*time.Millisecond)
	stopSched()
	net.Heal()
	if !waitUntil(20*time.Second, allFull) {
		logf("cluster did not restabilize after the nemesis")
		for i, nd := range nodes {
			v, ok := nd.CurrentView()
			logf("node %d: state=%s view=%v ok=%v upToDate=%v metrics=%+v",
				i, nd.StateName(), v, ok, nd.UpToDate(), nd.Metrics())
			views, _ := nd.History()
			for _, hv := range views {
				logf("  node %d view history: seq=%d members=%v at=%v", i, hv.Seq, hv.Members, hv.At.Format("15:04:05.000"))
			}
		}
	}

	// Phase two: with the membership stable again (per-frame faults
	// still active), stall the victim's event goroutine. Partitions
	// stay healed here: losing the majority mid-stall would force a
	// full re-formation — a new ordinal lineage — and the victim's
	// preserved coverage could no longer be served as a warm delta.
	//
	// Self-exclusion is deliberately a no-op for a node already in the
	// join state, and residual churn from the nemesis (per-frame drops
	// keep causing occasional wrong suspicions) can exclude a node in
	// the window between the stability check and the stall landing on
	// its event queue. So: require a settled cluster, pick a victim
	// that is an up-to-date member, and if the stall caught it mid-
	// rejoin anyway (no SelfExclusions increase), settle and retry.
	allSettled := func() bool {
		if !allFull() {
			return false
		}
		for _, nd := range nodes {
			if !nd.UpToDate() {
				return false
			}
		}
		return true
	}
	victim := o.Victim
	forced := victim >= 0 && victim < o.N
	warmDeltas := func() uint64 {
		var s uint64
		for _, nd := range nodes {
			s += nd.Metrics().StateDeltas
		}
		return s
	}
	deltasBefore := warmDeltas()
	victimsConverged := func(victims []int) func() bool {
		return func() bool {
			if !allFull() {
				return false
			}
			for _, v := range victims {
				if !nodes[v].UpToDate() {
					return false
				}
			}
			return true
		}
	}
	var victims []int
	for attempt := 0; attempt < 3; attempt++ {
		if !waitUntil(20*time.Second, allSettled) {
			logf("cluster never settled before stall attempt %d", attempt)
			break
		}
		// Prefer victims that do not currently hold the decider role: a
		// stalled decider cannot stamp its tenure's end until it wakes,
		// so its recorded interval would overlap the successor's by the
		// stall length — unprovable either way from wall clocks.
		victims = victims[:0]
		if forced {
			victims = append(victims, victim)
		}
		for i, nd := range nodes {
			if len(victims) >= o.Stalls {
				break
			}
			if forced && i == victim {
				continue
			}
			_, tens := nd.History()
			open := len(tens) > 0 && tens[len(tens)-1].Open
			if !open && nd.UpToDate() {
				victims = append(victims, i)
			}
		}
		for i := 0; len(victims) < o.Stalls && i < o.N; i++ {
			dup := false
			for _, v := range victims {
				dup = dup || v == i
			}
			if !dup {
				victims = append(victims, i)
			}
		}
		victim = victims[0]
		exclusions := func() uint64 {
			var s uint64
			for _, v := range victims {
				s += nodes[v].GuardStats().SelfExclusions
			}
			return s
		}
		before := exclusions()
		logf("stalling nodes %v for %v (attempt %d)", victims, o.Stall, attempt)
		for _, v := range victims {
			nodes[v].InjectStall(o.Stall)
		}
		time.Sleep(o.Stall)
		if o.Observe {
			break // nothing to retry for: the guard never excludes
		}
		if !waitUntil(5*time.Second, func() bool { return exclusions() > before }) {
			logf("stall hit nodes %v while not stable members; retrying", victims)
			continue
		}
		// The exclusion landed; wait for the rejoin and check it was
		// warm. Residual wrong-suspicion churn can cascade the cluster
		// into a full re-formation — a new ordinal lineage — right as
		// the victim rejoins, degrading the transfer to a full snapshot.
		// That is legitimate protocol behavior, but it is not what this
		// phase exists to demonstrate, so stall again once settled.
		if !waitUntil(o.ConvergeTimeout, victimsConverged(victims)) {
			break // let the final convergence check report the failure
		}
		if warmDeltas() > deltasBefore {
			break
		}
		logf("victims %v rejoined cold (re-formation coincided with the rejoin); retrying", victims)
	}
	if len(victims) == 0 { // settle loop bailed before picking anyone
		if victim < 0 || victim >= o.N {
			victim = 0
		}
		victims = []int{victim}
	}

	converged := waitUntil(o.ConvergeTimeout, victimsConverged(victims))
	if !converged {
		for i, nd := range nodes {
			v, ok := nd.CurrentView()
			logf("node %d: state=%s view=%v ok=%v upToDate=%v metrics=%+v",
				i, nd.StateName(), v, ok, nd.UpToDate(), nd.Metrics())
		}
	}
	close(propStop)
	<-propDone

	rep := &Report{
		Guard:             make([]timewheel.GuardStats, o.N),
		Chaos:             net.Stats(),
		Delivered:         make([]uint64, o.N),
		Victim:            victim,
		Victims:           victims,
		Converged:         converged,
		SuspicionReaction: make([]timewheel.HistogramStat, o.N),
		ElectionDuration:  make([]timewheel.HistogramStat, o.N),
	}
	hs := make([]check.LiveHistory, o.N)
	for i, nd := range nodes {
		rep.Guard[i] = nd.GuardStats()
		rep.SelfExclusions += rep.Guard[i].SelfExclusions
		rep.LateSends += rep.Guard[i].LateSends
		rep.Delivered[i] = delivered[i].Load()
		rep.WarmRejoins += nd.Metrics().StateDeltas
		views, tenures := nd.History()
		h := check.LiveHistory{ID: i}
		for _, v := range views {
			h.Views = append(h.Views, check.LiveView{Seq: v.Seq, Members: v.Members, At: v.At})
		}
		for _, tn := range tenures {
			h.Tenures = append(h.Tenures, check.LiveTenure{
				Start: tn.Start, End: tn.End, Sent: tn.Sent, Open: tn.Open,
			})
		}
		hs[i] = h
	}
	// The skew bound covers stamp latency (hooks run on the nodes'
	// event goroutines, which lag under load and the race detector),
	// not just clock disagreement; genuine split-brain overlaps run to
	// the partition length and still trip it.
	rep.Invariants = check.LiveAll(o.N, hs, 150*time.Millisecond)
	for i, nd := range nodes {
		m := nd.Metrics()
		rep.SuspicionReaction[i], _ = nd.HistogramStat("timewheel_suspicion_reaction_seconds")
		rep.ElectionDuration[i], _ = nd.HistogramStat("timewheel_election_duration_seconds")
		logf("node %d final: guard=%+v fulls=%d deltas=%d replayApplied=%d selfExcl=%d",
			i, rep.Guard[i], m.StateFulls, m.StateDeltas, m.ReplayApplied, m.SelfExclusions)
		logf("node %d obs: suspicion n=%d max=%v; election n=%d max=%v",
			i, rep.SuspicionReaction[i].Count, time.Duration(rep.SuspicionReaction[i].Max),
			rep.ElectionDuration[i].Count, time.Duration(rep.ElectionDuration[i].Max))
	}
	logf("guard totals: selfExclusions=%d lateSends=%d; chaos: %+v",
		rep.SelfExclusions, rep.LateSends, rep.Chaos)
	return rep, nil
}

func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}
