package livechaos

import (
	"testing"
	"time"
)

// TestLiveChaos is the live soak: three real nodes over chaos-wrapped
// transports, a scripted nemesis flapping links and partitions, and an
// injected event-goroutine stall. The enforcing guard must trip on the
// stall, the victim must self-exclude and rejoin warm, and the adapted
// §3 membership invariants must hold over the recorded histories.
func TestLiveChaos(t *testing.T) {
	rep, err := Run(Options{
		N:        3,
		Seed:     11,
		Duration: 1500 * time.Millisecond,
		Stall:    400 * time.Millisecond,
		Victim:   -1,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Invariants.OK() {
		t.Fatalf("membership invariants violated:\n%s", rep.Invariants)
	}
	if rep.SelfExclusions == 0 {
		t.Fatalf("no guard-triggered self-exclusion; guard stats: %+v", rep.Guard)
	}
	if !rep.Converged {
		t.Fatalf("cluster did not reconverge after the nemesis; guard stats: %+v", rep.Guard)
	}
	if rep.WarmRejoins == 0 {
		t.Fatalf("self-excluded node rejoined via full transfer, not a warm delta")
	}
	if rep.Chaos.Dropped+rep.Chaos.Blocked == 0 {
		t.Fatalf("chaos middleware injected no faults: %+v", rep.Chaos)
	}
}

// TestLiveChaosFiveNodeDualStall is the heavier soak: five nodes, a
// longer nemesis schedule, and two concurrent event-goroutine stalls on
// different nodes — the surviving three still hold a majority, so the
// group must exclude both victims and readmit them warm. On top of the
// membership invariants it asserts the observability layer's new
// protocol metrics stayed inside wall-clock-adapted bounds.
func TestLiveChaosFiveNodeDualStall(t *testing.T) {
	rep, err := Run(Options{
		N:            5,
		Seed:         23,
		Duration:     2500 * time.Millisecond,
		NemesisFlaps: 6,
		Stall:        600 * time.Millisecond,
		Stalls:       2,
		Victim:       -1,
		// Five nodes under full-suite test load see real >100ms
		// scheduling lateness on healthy nodes; 250ms keeps spurious
		// trips out while the 600ms stall still trips reliably. The
		// bigger cluster also reconverges through more churn, hence
		// the longer window.
		GuardBudget:     250 * time.Millisecond,
		ConvergeTimeout: 60 * time.Second,
		DataDir:         t.TempDir(),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Invariants.OK() {
		t.Fatalf("membership invariants violated:\n%s", rep.Invariants)
	}
	if len(rep.Victims) != 2 || rep.Victims[0] == rep.Victims[1] {
		t.Fatalf("expected two distinct victims, got %v", rep.Victims)
	}
	if rep.SelfExclusions == 0 {
		t.Fatalf("no guard-triggered self-exclusion; guard stats: %+v", rep.Guard)
	}
	if !rep.Converged {
		t.Fatalf("cluster did not reconverge; guard stats: %+v", rep.Guard)
	}

	// The new obs instruments, within wall-clock-adapted bounds. These
	// are scheduling-latency measurements on a loaded test host (often
	// under the race detector), so the bounds are generous multiples of
	// the protocol constants, not the paper's tight 2D envelope: the
	// point is that the metrics are live and sane, not microbenchmarks.
	const (
		maxSuspicionLag = 2 * time.Second  // reaction past the ts+2D deadline
		maxElection     = 15 * time.Second // leave failure-free -> next view
	)
	var suspicions, elections uint64
	for i := range rep.SuspicionReaction {
		sr, el := rep.SuspicionReaction[i], rep.ElectionDuration[i]
		suspicions += sr.Count
		elections += el.Count
		if sr.Count > 0 && time.Duration(sr.Max) > maxSuspicionLag {
			t.Errorf("node %d suspicion reaction max %v exceeds %v",
				i, time.Duration(sr.Max), maxSuspicionLag)
		}
		if el.Count > 0 && time.Duration(el.Max) > maxElection {
			t.Errorf("node %d election duration max %v exceeds %v",
				i, time.Duration(el.Max), maxElection)
		}
	}
	// Two stalled members must have provoked suspicions on the healthy
	// majority, and their exclusion (plus readmission) runs elections.
	if suspicions == 0 {
		t.Error("no suspicion reactions recorded across the cluster")
	}
	if elections == 0 {
		t.Error("no election durations recorded across the cluster")
	}
}

// TestLiveChaosObserveMode reruns the same schedule with the guard in
// observe-only mode: the stall still trips the detector, but nothing is
// suppressed — the victim keeps emitting late control traffic (counted
// as LateSends) and never self-excludes. This is the paper's negative
// space: without fail-aware enforcement, performance failures leak onto
// the network.
func TestLiveChaosObserveMode(t *testing.T) {
	rep, err := Run(Options{
		N:        3,
		Seed:     11,
		Duration: 1500 * time.Millisecond,
		Stall:    400 * time.Millisecond,
		Victim:   -1,
		Observe:  true,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SelfExclusions != 0 {
		t.Fatalf("observe-only guard self-excluded %d times", rep.SelfExclusions)
	}
	if rep.LateSends == 0 {
		t.Fatalf("no late control sends recorded in observe mode; guard stats: %+v", rep.Guard)
	}
}
