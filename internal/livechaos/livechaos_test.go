package livechaos

import (
	"testing"
	"time"
)

// TestLiveChaos is the live soak: three real nodes over chaos-wrapped
// transports, a scripted nemesis flapping links and partitions, and an
// injected event-goroutine stall. The enforcing guard must trip on the
// stall, the victim must self-exclude and rejoin warm, and the adapted
// §3 membership invariants must hold over the recorded histories.
func TestLiveChaos(t *testing.T) {
	rep, err := Run(Options{
		N:        3,
		Seed:     11,
		Duration: 1500 * time.Millisecond,
		Stall:    400 * time.Millisecond,
		Victim:   -1,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Invariants.OK() {
		t.Fatalf("membership invariants violated:\n%s", rep.Invariants)
	}
	if rep.SelfExclusions == 0 {
		t.Fatalf("no guard-triggered self-exclusion; guard stats: %+v", rep.Guard)
	}
	if !rep.Converged {
		t.Fatalf("cluster did not reconverge after the nemesis; guard stats: %+v", rep.Guard)
	}
	if rep.WarmRejoins == 0 {
		t.Fatalf("self-excluded node rejoined via full transfer, not a warm delta")
	}
	if rep.Chaos.Dropped+rep.Chaos.Blocked == 0 {
		t.Fatalf("chaos middleware injected no faults: %+v", rep.Chaos)
	}
}

// TestLiveChaosObserveMode reruns the same schedule with the guard in
// observe-only mode: the stall still trips the detector, but nothing is
// suppressed — the victim keeps emitting late control traffic (counted
// as LateSends) and never self-excludes. This is the paper's negative
// space: without fail-aware enforcement, performance failures leak onto
// the network.
func TestLiveChaosObserveMode(t *testing.T) {
	rep, err := Run(Options{
		N:        3,
		Seed:     11,
		Duration: 1500 * time.Millisecond,
		Stall:    400 * time.Millisecond,
		Victim:   -1,
		Observe:  true,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SelfExclusions != 0 {
		t.Fatalf("observe-only guard self-excluded %d times", rep.SelfExclusions)
	}
	if rep.LateSends == 0 {
		t.Fatalf("no late control sends recorded in observe mode; guard stats: %+v", rep.Guard)
	}
}
