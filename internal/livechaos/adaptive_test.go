package livechaos

import (
	"testing"
	"time"
)

// TestLiveChaosAdaptiveVsStatic is the adaptive-timeout soak: five live
// nodes, one of them behind a rate-limited, jittery uplink whose delays
// sit past the static 2D surveillance deadline on every send. Under the
// static detector the slow-but-healthy peer keeps getting suspected;
// under the adaptive detector it is left alone — and when it then
// genuinely crashes, it is still suspected, within the adapted
// (CeilFactor×2D-capped) deadline rather than never.
func TestLiveChaosAdaptiveVsStatic(t *testing.T) {
	static, err := RunSlowPeer(SlowPeerOptions{
		Seed:    31,
		DataDir: t.TempDir(),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.GraceSuspicions+static.FalseSuspicions == 0 {
		t.Fatalf("static detector never suspected the slow-but-healthy peer — the link is not actually past 2D (report %+v)", static)
	}
	if static.MemberAtCrash {
		t.Errorf("static detector kept the never-timely peer as a member — AliveList should have starved its readmission")
	}

	adaptive, err := RunSlowPeer(SlowPeerOptions{
		Seed:     31,
		Adaptive: true,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.FalseSuspicions != 0 {
		t.Errorf("adaptive detector falsely suspected the healthy slow peer %d times in the steady-state window (static: %d)",
			adaptive.FalseSuspicions, static.GraceSuspicions+static.FalseSuspicions)
	}
	if !adaptive.MemberAtCrash {
		t.Errorf("slow peer was not a member everywhere at crash time — the adaptive detector failed to keep it in the group")
	}

	// The grant actually adapted: wider than the paper's 2D, no wider
	// than the configured ceiling.
	if adaptive.DeadlineSpan <= 16*time.Millisecond {
		t.Errorf("slow peer's deadline grant %v never widened past 2D", adaptive.DeadlineSpan)
	}
	if adaptive.DeadlineSpan > adaptive.DeadlineCeil {
		t.Errorf("deadline grant %v exceeds the ceiling %v", adaptive.DeadlineSpan, adaptive.DeadlineCeil)
	}

	// A real crash is still detected. The wall-clock bound is the
	// adapted deadline (≤64ms) plus a rotation turn plus generous CI
	// scheduling slack — the claim is bounded detection, not a
	// microbenchmark.
	if !adaptive.CrashSuspected {
		t.Fatalf("crashed slow peer was never suspected under the adaptive detector (report %+v)", adaptive)
	}
	if adaptive.CrashLatency > 5*time.Second {
		t.Errorf("crash detection took %v, far beyond the adapted bound %v",
			adaptive.CrashLatency, adaptive.DeadlineCeil)
	}
	if !adaptive.Converged {
		t.Errorf("healthy nodes never installed a view without the crashed peer")
	}

	// Estimator bookkeeping is live: the healthy nodes adapted (widened
	// at least once warming from the ceiling is not guaranteed, but the
	// per-peer span map must carry the slow peer).
	sawSpan := false
	for _, st := range adaptive.Adapt {
		if st.PeerDeadlineSpans != nil && st.PeerDeadlineSpans[adaptive2SlowNode] > 0 {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Errorf("no healthy node reports a deadline span for the slow peer: %+v", adaptive.Adapt)
	}
}

// adaptive2SlowNode mirrors RunSlowPeer's default SlowNode for N=5.
const adaptive2SlowNode = 4
