package livechaos

// The adaptive-vs-static soak: a live cluster with one slow-but-healthy
// member — its outbound datagrams rate-limited through a token bucket
// and jittered well past the static 2D surveillance deadline — run once
// with the static failure detector and once with adaptive per-peer
// timeouts. The static detector keeps suspecting the slow peer (it
// looks crashed by the paper's fixed bound); the adaptive detector
// learns the link's delay distribution and leaves it alone, while a
// genuine crash of the same peer is still detected within the adapted
// (CeilFactor×2D-capped) deadline. This is the live counterpart of the
// per-link timeliness-graph argument in PAPERS.md: some links are
// timely, some are merely slow, and only an estimator can tell.

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"timewheel"
	"timewheel/internal/model"
	"timewheel/internal/transport"
)

// SlowPeerOptions configures one slow-peer soak run.
type SlowPeerOptions struct {
	// N is the cluster size (default 5).
	N int
	// Seed drives the hub and chaos randomness.
	Seed int64
	// Adaptive enables per-peer adaptive timeouts on every node.
	Adaptive bool
	// SlowNode is the degraded member (default N-1).
	SlowNode int
	// SendMin/SendMax jitter the slow node's outbound datagrams
	// (defaults 16ms/30ms — past the static 2D=16ms deadline on every
	// send, inside the adaptive CeilFactor×2D=64ms ceiling).
	SendMin, SendMax time.Duration
	// Rate/Burst shape the slow node's outbound bandwidth through the
	// chaos token bucket (defaults 128KiB/s with a 1KiB burst), adding
	// load-dependent queueing delay on top of the fixed jitter. The
	// rate must sit above the node's sustained control+proposal load:
	// below it the virtual queue diverges and the peer really does go
	// past any bound — genuinely untimely, not merely slow.
	Rate, Burst int64
	// Grace is how long after degrading the link the run waits before
	// the measured window opens (default 2s): the estimators need a few
	// cycles of slow samples, and the one transition suspicion — the
	// expectation armed under the old fast-link grant fires before the
	// first slow sample lands — is warmup, not the steady-state claim.
	Grace time.Duration
	// Window is how long the degraded-but-healthy phase is observed
	// (default 3s).
	Window time.Duration
	// DataDir is the base directory for durable state.
	DataDir string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// SlowPeerReport is what one slow-peer run produces.
type SlowPeerReport struct {
	// FalseSuspicions counts suspicion events naming the slow node
	// during the steady-state window; GraceSuspicions counts them in
	// the adaptation grace right after the link degrades (the static
	// detector ejects the peer here; the adaptive detector may emit one
	// transition suspicion before the first slow sample lands);
	// OtherSuspicions counts suspicions of anyone else across the run
	// (churn context, not an assertion target).
	FalseSuspicions uint64
	GraceSuspicions uint64
	OtherSuspicions uint64
	// MemberAtCrash reports whether every healthy node still held the
	// slow peer in its view when the crash was injected — true is the
	// adaptive claim, false the static detector's permanent ejection.
	MemberAtCrash bool
	// CrashSuspected reports whether stopping the slow node produced a
	// suspicion naming it; CrashLatency is stop-to-first-suspicion.
	CrashSuspected bool
	CrashLatency   time.Duration
	// DeadlineSpan is the widest surveillance grant any healthy node
	// holds for the slow peer at crash time (adaptive runs only);
	// DeadlineCeil is the configured CeilFactor×2D cap it must respect.
	DeadlineSpan time.Duration
	DeadlineCeil time.Duration
	// Converged reports whether the healthy nodes installed a view
	// without the crashed peer by the end of the run.
	Converged bool
	// Adapt holds each healthy node's final adaptive-estimator
	// snapshot, indexed by ID (the slow node's entry is zero).
	Adapt []timewheel.AdaptiveStats
	// Chaos holds the middleware counters (Shaped shows the token
	// bucket worked).
	Chaos transport.ChaosStats
}

// RunSlowPeer executes one slow-peer soak. Errors are setup failures;
// detector behaviour lands in the report.
func RunSlowPeer(o SlowPeerOptions) (*SlowPeerReport, error) {
	if o.N <= 0 {
		o.N = 5
	}
	if o.SlowNode <= 0 || o.SlowNode >= o.N {
		o.SlowNode = o.N - 1
	}
	if o.SendMin <= 0 {
		o.SendMin = 16 * time.Millisecond
	}
	if o.SendMax <= 0 {
		o.SendMax = 30 * time.Millisecond
	}
	if o.Rate <= 0 {
		o.Rate = 128 << 10
	}
	if o.Burst <= 0 {
		o.Burst = 1 << 10
	}
	if o.Grace <= 0 {
		o.Grace = 2 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 3 * time.Second
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	slow := o.SlowNode

	// Same protocol constants as the main soak: 2D = 16ms, so the slow
	// link's 16-30ms jitter makes every one of its control messages miss
	// the static deadline while staying inside the adaptive ceiling.
	params := timewheel.Params{
		Delta:   3 * time.Millisecond,
		D:       8 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: 500 * time.Microsecond,
	}
	ceil := time.Duration(4 * float64(2*params.D))

	hub := transport.NewHub(transport.HubOptions{MaxDelay: 300 * time.Microsecond, Seed: o.Seed})
	defer hub.Close()
	net := transport.NewChaosNet(o.Seed, transport.Faults{})

	// Suspicion accounting rides the process-wide trace stream. The run
	// has four phases: clean-link formation, the adaptation grace after
	// the link degrades (a transition suspicion here is warmup — the
	// expectation was armed under the fast-link grant before the first
	// slow sample arrived — not the steady-state claim), the measured
	// window (any suspicion naming the live slow node is a false one),
	// and post-crash (the first such event stamps detection latency).
	const (
		phaseForming = iota
		phaseGrace
		phaseWindow
		phaseCrashed
	)
	var (
		phase     atomic.Int32
		graceSusp atomic.Uint64
		falseSusp atomic.Uint64
		otherSusp atomic.Uint64
		crashedAt atomic.Int64 // UnixNano of the Stop call
		detected  atomic.Int64 // stop-to-suspicion latency, ns
	)
	cancel := timewheel.Observe(func(ev timewheel.TraceEvent) {
		if ev.Type != "suspicion" || ev.Node == slow {
			return
		}
		logf("suspicion: phase=%d node=%d suspect=%d lag=%v", phase.Load(), ev.Node, ev.A, time.Duration(ev.B))
		if int(ev.A) != slow {
			otherSusp.Add(1)
			return
		}
		switch phase.Load() {
		case phaseGrace:
			graceSusp.Add(1)
		case phaseWindow:
			falseSusp.Add(1)
		case phaseCrashed:
			if at := crashedAt.Load(); at != 0 {
				detected.CompareAndSwap(0, ev.At.UnixNano()-at)
			}
		}
	})
	defer cancel()

	nodes := make([]*timewheel.Node, o.N)
	for i := 0; i < o.N; i++ {
		nd, err := timewheel.NewNode(timewheel.Config{
			ID:          i,
			ClusterSize: o.N,
			Transport:   port{net.Wrap(hub.Attach(model.ProcessID(i)))},
			Params:      params,
			DataDir:     filepath.Join(o.DataDir, fmt.Sprintf("node-%d", i)),
			Fsync:       "none",
			Adaptive: timewheel.AdaptiveConfig{
				Enabled: o.Adaptive,
				// Margin 2 (over the default 1.5) keeps the adapted
				// deadline a scheduling-noise-sized stretch above the
				// link's q99 on a loaded CI host; the ceiling still caps
				// the result at 4×2D.
				Margin: 2,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		nodes[i] = nd
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	// Formation happens on a clean link — a member whose joins arrive
	// past the timeliness bound can never satisfy the formation rule's
	// join-list convergence (its entry ages in and out of everyone's
	// join-list mid-cycle), under either detector. The degradation is
	// installed afterwards, which is also the deployment-shaped story:
	// a member's uplink goes bad while it is in the group.
	allFull := func() bool {
		for _, nd := range nodes {
			v, ok := nd.CurrentView()
			if !ok || len(v.Members) != o.N {
				return false
			}
		}
		return true
	}
	if !waitUntil(20*time.Second, allFull) {
		for i, nd := range nodes {
			v, ok := nd.CurrentView()
			logf("node %d: state=%s view=%v ok=%v upToDate=%v", i, nd.StateName(), v, ok, nd.UpToDate())
		}
		return nil, fmt.Errorf("cluster never formed a full view")
	}
	logf("formed: %d nodes in a full view (adaptive=%v)", o.N, o.Adaptive)

	// Background proposers keep update traffic flowing through the
	// token bucket so the shaper has something to queue.
	propStop := make(chan struct{})
	propDone := make(chan struct{})
	go func() {
		defer close(propDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-propStop:
				return
			case <-tick.C:
				_ = nodes[i%o.N].Propose([]byte(fmt.Sprintf("u%d", i)), timewheel.TotalOrder, timewheel.Strong)
			}
		}
	}()

	// Degrade the slow node's uplink: fixed jitter past 2D plus
	// token-bucket queueing delay — the profile an estimator can learn
	// and a fixed bound cannot.
	phase.Store(phaseGrace)
	net.SetSendFaults(model.ProcessID(slow), transport.Faults{MinDelay: o.SendMin, MaxDelay: o.SendMax})
	net.SetRate(model.ProcessID(slow), o.Rate, o.Burst)
	logf("degraded node %d's uplink: %v-%v jitter, %dB/s (burst %dB); grace %v",
		slow, o.SendMin, o.SendMax, o.Rate, o.Burst, o.Grace)
	time.Sleep(o.Grace)
	if o.Adaptive {
		// The measured claim needs a steady state to measure: the slow
		// peer back in everyone's view (the transition suspicion, if
		// any, recovered) and staying there.
		if !holdFor(20*time.Second, 500*time.Millisecond, allFull) {
			for i, nd := range nodes {
				v, ok := nd.CurrentView()
				logf("node %d: state=%s view=%v ok=%v", i, nd.StateName(), v, ok)
			}
			return nil, fmt.Errorf("slow node never restabilized as a member under the adaptive detector")
		}
	}
	logf("observing the degraded-but-healthy link for %v", o.Window)
	phase.Store(phaseWindow)

	time.Sleep(o.Window)

	rep := &SlowPeerReport{
		DeadlineCeil: ceil,
		Adapt:        make([]timewheel.AdaptiveStats, o.N),
	}
	for i, nd := range nodes {
		if i == slow {
			continue
		}
		st := nd.AdaptiveStats()
		rep.Adapt[i] = st
		if span := st.PeerDeadlineSpans[slow]; span > rep.DeadlineSpan {
			rep.DeadlineSpan = span
		}
	}

	rep.MemberAtCrash = allFull()

	// Crash the slow peer for real. The phase flips first so a suspicion
	// racing the Stop is attributed to the crash, not counted as false.
	crashedAt.Store(time.Now().UnixNano())
	phase.Store(phaseCrashed)
	logf("crashing node %d (member everywhere: %v)", slow, rep.MemberAtCrash)
	nodes[slow].Stop()

	if rep.MemberAtCrash {
		// Detection only means something if the peer was still being
		// surveilled; the static detector already ejected it for good.
		waitUntil(10*time.Second, func() bool { return detected.Load() != 0 })
	}
	excludedEverywhere := func() bool {
		for i, nd := range nodes {
			if i == slow {
				continue
			}
			v, ok := nd.CurrentView()
			if !ok || len(v.Members) != o.N-1 {
				return false
			}
			for _, m := range v.Members {
				if m == slow {
					return false
				}
			}
		}
		return true
	}
	rep.Converged = waitUntil(30*time.Second, excludedEverywhere)

	close(propStop)
	<-propDone

	rep.FalseSuspicions = falseSusp.Load()
	rep.GraceSuspicions = graceSusp.Load()
	rep.OtherSuspicions = otherSusp.Load()
	if d := detected.Load(); d != 0 {
		rep.CrashSuspected = true
		rep.CrashLatency = time.Duration(d)
	}
	rep.Chaos = net.Stats()
	logf("adaptive=%v: falseSuspicions=%d graceSuspicions=%d otherSuspicions=%d memberAtCrash=%v crashLatency=%v span=%v shaped=%d(%v)",
		o.Adaptive, rep.FalseSuspicions, rep.GraceSuspicions, rep.OtherSuspicions, rep.MemberAtCrash,
		rep.CrashLatency, rep.DeadlineSpan, rep.Chaos.Shaped, rep.Chaos.ShapeDelay)
	return rep, nil
}

// holdFor waits up to timeout for cond to hold continuously for hold.
func holdFor(timeout, hold time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			held := time.Now().Add(hold)
			stable := true
			for time.Now().Before(held) {
				if !cond() {
					stable = false
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if stable {
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
