// Package fdetect implements the membership protocol's failure detector
// (paper §4.2).
//
// The detector of process p maintains an alive-list: p itself plus every
// process from which p received at least one control message within the
// last N slots (judged by send timestamps on p's synchronized clock). It
// also runs the expected-sender surveillance scheme: after p receives a
// decision message with send timestamp ts from the current decider d, it
// expects a control message from d's successor e, with a timestamp
// greater than ts, to arrive before ts+2D. If the deadline passes, the
// detector reports a timeout failure of e to the group creator.
//
// The detector is unreliable by design: an alive-list can contain crashed
// processes and omit live ones, and detectors at different processes can
// disagree. The group creator turns these unreliable hints into an agreed
// group.
package fdetect

import (
	"fmt"
	"sync"
	"sync/atomic"

	"timewheel/internal/model"
)

// Detector is one process's failure detector. Not safe for concurrent
// use; drive it from the owner's event loop.
type Detector struct {
	self   model.ProcessID
	params model.Params

	// lastControl records the highest send timestamp seen per sender —
	// the duplicate/old-message rejection state: a control message is
	// fresh only if its timestamp exceeds the recorded one.
	lastControl map[model.ProcessID]model.Time

	// lastTimely records the highest send timestamp among control
	// messages that arrived within the timeliness bound. Only timely
	// messages count toward the alive-list (§4.2: "if a process
	// receives p's join messages in a timely manner, it includes p in
	// its alive-list").
	lastTimely map[model.ProcessID]model.Time

	// Expected-sender surveillance.
	expActive   bool
	expSender   model.ProcessID
	expAfter    model.Time // control must carry sendTS > expAfter
	expDeadline model.Time // ... and arrive before this clock time

	suspicions uint64

	// Adaptive per-peer deadlines (see adaptive.go). est == nil means
	// static mode — the paper's fixed bounds, bit-identical to the
	// pre-adaptive detector.
	est         DelayEstimator
	acfg        AdaptiveConfig
	grantsMu    sync.Mutex
	grants      map[model.ProcessID]*grantState
	widened     atomic.Uint64
	shrunk      atomic.Uint64
	flapBoosts  atomic.Uint64
	onOverwrite func(old, next model.ProcessID)

	// Application-traffic sampling (see RecordAppDelay): proposal
	// broadcasts carry the same send timestamps as control messages and
	// usually dominate them in volume, so they make the estimator
	// converge much faster. lastApp is the per-sender freshness gate.
	lastApp      map[model.ProcessID]model.Time
	appSamples   atomic.Uint64
	appTightened atomic.Uint64
	onTighten    func(sender model.ProcessID, deadline model.Time)

	expOverwrites atomic.Uint64

	// Partial-view mode (see partial.go): gossipAlive holds second-hand
	// liveness evidence — the freshest send timestamp each peer was
	// vouched alive at by the surveillance gossip.
	partial     bool
	gossipAlive map[model.ProcessID]model.Time
}

// New creates a detector for process self.
func New(self model.ProcessID, params model.Params) *Detector {
	return &Detector{
		self:        self,
		params:      params,
		lastControl: make(map[model.ProcessID]model.Time),
		lastTimely:  make(map[model.ProcessID]model.Time),
	}
}

// RecordControl notes a control message from sender with the given send
// timestamp, received when the local synchronized clock read now. It
// reports whether the message is fresh (not a duplicate or older than
// one already seen from that sender); stale messages must be rejected by
// the caller per §4.2. Only messages whose transmission stayed within
// delta (plus clock deviation and scheduling slack) advance the
// alive-list — a late message proves nothing about current liveness.
func (d *Detector) RecordControl(from model.ProcessID, sendTS, now model.Time) bool {
	if last, ok := d.lastControl[from]; ok && sendTS <= last {
		return false
	}
	d.lastControl[from] = sendTS
	if d.est != nil {
		// Feed the estimator every fresh delay observation — late ones
		// especially: they are what teaches it the link is slow.
		delay := now.Sub(sendTS)
		if delay < 0 {
			delay = 0
		}
		d.est.Observe(from, delay)
	}
	if now.Sub(sendTS) <= d.TimelyBound(from) {
		if sendTS > d.lastTimely[from] {
			d.lastTimely[from] = sendTS
		}
	}
	return true
}

// LastTS returns the highest send timestamp seen from p, or 0.
func (d *Detector) LastTS(p model.ProcessID) model.Time { return d.lastControl[p] }

// AliveList returns the alive-list at synchronized-clock time now: self
// plus every process heard from within the last N slots; in partial-view
// mode, gossiped vouches within the same window are unioned in. This is
// the LOCAL view — messages placed on the wire must carry
// DirectAliveList instead (see partial.go for why).
func (d *Detector) AliveList(now model.Time) []model.ProcessID {
	alive := d.directAliveSet(now)
	if d.partial {
		// Union in gossiped vouches under the same freshness window: a
		// peer watched by someone else is alive to everyone.
		window := model.Duration(d.params.N) * d.params.SlotLen()
		for p, ts := range d.gossipAlive {
			if now.Sub(ts) <= window {
				alive.Add(p)
			}
		}
	}
	return alive.Sorted()
}

// directAliveSet is the first-hand half of the alive-list: self plus
// every process a timely control message arrived from within the window.
func (d *Detector) directAliveSet(now model.Time) model.ProcessSet {
	window := model.Duration(d.params.N) * d.params.SlotLen()
	alive := model.NewProcessSet(d.self)
	for p, ts := range d.lastTimely {
		if p == d.self {
			continue
		}
		if now.Sub(ts) <= window {
			alive.Add(p)
		}
	}
	return alive
}

// AliveSet is AliveList as a set.
func (d *Detector) AliveSet(now model.Time) model.ProcessSet {
	return model.NewProcessSet(d.AliveList(now)...)
}

// Forget drops all recorded liveness, as after a crash/recovery.
func (d *Detector) Forget() {
	d.lastControl = make(map[model.ProcessID]model.Time)
	d.lastTimely = make(map[model.ProcessID]model.Time)
	if d.lastApp != nil {
		d.lastApp = make(map[model.ProcessID]model.Time)
	}
	if d.gossipAlive != nil {
		d.gossipAlive = make(map[model.ProcessID]model.Time)
	}
	d.ClearExpectation()
}

// Expect arms the surveillance: a control message from sender with
// timestamp greater than after must arrive before deadline. Replacing
// an already-active expectation is legitimate (the no-decision ring
// rolls the surveillance forward) but used to happen silently; it is
// now counted and reported through OnExpectOverwrite so surveillance
// churn is observable.
func (d *Detector) Expect(sender model.ProcessID, after, deadline model.Time) {
	if d.expActive {
		d.expOverwrites.Add(1)
		if d.onOverwrite != nil {
			d.onOverwrite(d.expSender, sender)
		}
	}
	d.expActive = true
	d.expSender = sender
	d.expAfter = after
	d.expDeadline = deadline
}

// ClearExpectation disarms the surveillance.
func (d *Detector) ClearExpectation() { d.expActive = false }

// ExpectedAfter returns the base timestamp of the active expectation —
// the send time of the control message whose ring successor is being
// watched. A suspicion raised before that message was sent is evidence
// about an interval the message itself already covers.
func (d *Detector) ExpectedAfter() model.Time { return d.expAfter }

// Expected returns the currently expected sender and deadline; active is
// false when surveillance is disarmed.
func (d *Detector) Expected() (sender model.ProcessID, deadline model.Time, active bool) {
	return d.expSender, d.expDeadline, d.expActive
}

// Satisfies reports whether a control message from p with timestamp ts
// satisfies the current expectation.
func (d *Detector) Satisfies(p model.ProcessID, ts model.Time) bool {
	return d.expActive && p == d.expSender && ts > d.expAfter
}

// TimedOut reports whether the expectation is armed and its deadline
// has passed at synchronized time now; if so it records a suspicion and
// returns the suspect along with the deadline that fired — callers
// bound suspicion-reaction latency against it. The expectation stays
// armed — the caller (group creator) decides what to do next. In
// adaptive mode a timeout also flap-boosts the suspect's grant so a
// threshold-hovering peer is suspected once, not toggled.
func (d *Detector) TimedOut(now model.Time) (suspect model.ProcessID, deadline model.Time, timedOut bool) {
	if d.expActive && now > d.expDeadline {
		d.suspicions++
		d.noteSuspicion(d.expSender, now)
		return d.expSender, d.expDeadline, true
	}
	return model.NoProcess, 0, false
}

// Suspicions returns the lifetime count of timeout failures reported.
func (d *Detector) Suspicions() uint64 { return d.suspicions }

func (d *Detector) String() string {
	if !d.expActive {
		return fmt.Sprintf("fd(%v idle)", d.self)
	}
	return fmt.Sprintf("fd(%v expects %v ts>%v by %v)", d.self, d.expSender, d.expAfter, d.expDeadline)
}
