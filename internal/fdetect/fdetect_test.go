package fdetect

import (
	"slices"
	"testing"
	"testing/quick"

	"timewheel/internal/model"
)

func det() *Detector { return New(0, model.DefaultParams(4)) }

func TestRecordControlFreshness(t *testing.T) {
	d := det()
	if !d.RecordControl(1, 100, 100+1) {
		t.Fatalf("first message not fresh")
	}
	if d.RecordControl(1, 100, 100+1) {
		t.Fatalf("duplicate accepted")
	}
	if d.RecordControl(1, 50, 50+1) {
		t.Fatalf("old message accepted")
	}
	if !d.RecordControl(1, 101, 101+1) {
		t.Fatalf("newer message rejected")
	}
	if d.LastTS(1) != 101 {
		t.Fatalf("LastTS: %v", d.LastTS(1))
	}
	if d.LastTS(2) != 0 {
		t.Fatalf("LastTS unseen: %v", d.LastTS(2))
	}
}

func TestAliveListWindow(t *testing.T) {
	d := det()
	params := model.DefaultParams(4)
	window := model.Duration(4) * params.SlotLen()

	d.RecordControl(1, 100, 100+1)
	d.RecordControl(2, 200, 200+1)

	// Inside the window: everyone alive (plus self).
	got := d.AliveList(model.Time(0).Add(window))
	want := []model.ProcessID{0, 1, 2}
	if !slices.Equal(got, want) {
		t.Fatalf("alive = %v, want %v", got, want)
	}

	// p1's message ages out first.
	got = d.AliveList(model.Time(150).Add(window))
	want = []model.ProcessID{0, 2}
	if !slices.Equal(got, want) {
		t.Fatalf("alive = %v, want %v", got, want)
	}

	// Eventually only self remains.
	got = d.AliveList(model.Time(10_000_000).Add(window))
	want = []model.ProcessID{0}
	if !slices.Equal(got, want) {
		t.Fatalf("alive = %v, want %v", got, want)
	}
}

func TestAliveSetMatchesList(t *testing.T) {
	d := det()
	d.RecordControl(3, 10, 10+1)
	set := d.AliveSet(20)
	if !set.Has(0) || !set.Has(3) || set.Has(1) {
		t.Fatalf("alive set: %v", set)
	}
}

func TestSelfAlwaysAlive(t *testing.T) {
	f := func(now int64) bool {
		d := det()
		tm := model.Time(now)
		if tm < 0 {
			tm = -tm
		}
		return slices.Contains(d.AliveList(tm), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelfRecordDoesNotDuplicate(t *testing.T) {
	// Recording a control from self (possible when a node loops back its
	// own sends through shared bookkeeping) must not double-list self.
	d := det()
	d.RecordControl(0, 5, 5+1)
	got := d.AliveList(6)
	if !slices.Equal(got, []model.ProcessID{0}) {
		t.Fatalf("alive = %v", got)
	}
}

func TestExpectationLifecycle(t *testing.T) {
	d := det()
	if _, _, active := d.Expected(); active {
		t.Fatalf("expectation active at start")
	}
	if s, _, to := d.TimedOut(1 << 40); to || s != model.NoProcess {
		t.Fatalf("timeout with no expectation")
	}

	d.Expect(2, 100, 140)
	sender, deadline, active := d.Expected()
	if !active || sender != 2 || deadline != 140 {
		t.Fatalf("Expected: %v %v %v", sender, deadline, active)
	}

	// Satisfaction requires the right sender and a newer timestamp.
	if d.Satisfies(1, 150) {
		t.Errorf("wrong sender satisfied")
	}
	if d.Satisfies(2, 100) {
		t.Errorf("stale timestamp satisfied")
	}
	if !d.Satisfies(2, 101) {
		t.Errorf("valid control did not satisfy")
	}

	// No timeout before the deadline (inclusive).
	if _, _, to := d.TimedOut(140); to {
		t.Errorf("timed out at deadline")
	}
	if s, dl, to := d.TimedOut(141); !to || s != 2 || dl != 140 {
		t.Errorf("timeout after deadline: %v %v %v", s, dl, to)
	}
	if d.Suspicions() != 1 {
		t.Errorf("suspicions: %d", d.Suspicions())
	}

	d.ClearExpectation()
	if _, _, to := d.TimedOut(1 << 40); to {
		t.Errorf("timeout after clear")
	}
	if d.Satisfies(2, 999) {
		t.Errorf("satisfied after clear")
	}
}

func TestForget(t *testing.T) {
	d := det()
	d.RecordControl(1, 100, 100+1)
	d.Expect(1, 100, 200)
	d.Forget()
	if got := d.AliveList(101); !slices.Equal(got, []model.ProcessID{0}) {
		t.Fatalf("alive after forget: %v", got)
	}
	if _, _, active := d.Expected(); active {
		t.Fatalf("expectation survived forget")
	}
	// Freshness state is also reset: the same timestamp is fresh again.
	if !d.RecordControl(1, 100, 100+1) {
		t.Fatalf("freshness survived forget")
	}
}

func TestString(t *testing.T) {
	d := det()
	if d.String() == "" {
		t.Error("idle String empty")
	}
	d.Expect(1, 2, 3)
	if d.String() == "" {
		t.Error("armed String empty")
	}
}

func TestLateControlMessagesDoNotAdvanceAliveList(t *testing.T) {
	d := det()
	params := model.DefaultParams(4)
	lateBy := params.Delta + params.Epsilon + params.Sigma + 1
	// A late message is fresh (processed once) but proves no liveness.
	if !d.RecordControl(1, 100, model.Time(100).Add(lateBy)) {
		t.Fatalf("late message not fresh")
	}
	got := d.AliveList(model.Time(100).Add(lateBy))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("late message advanced alive-list: %v", got)
	}
	// A timely one does.
	if !d.RecordControl(1, 200, 201) {
		t.Fatalf("timely message rejected")
	}
	got = d.AliveList(250)
	if len(got) != 2 {
		t.Fatalf("timely message did not advance alive-list: %v", got)
	}
}
