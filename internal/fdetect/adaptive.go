package fdetect

import (
	"sync/atomic"

	"timewheel/internal/model"
)

// DelayEstimator supplies per-peer one-way delay bounds — the adaptive
// replacement for the model's global Delta. The detector feeds it every
// fresh control-message delay it observes and asks it for the current
// estimated bound (typically a windowed quantile times a safety
// margin). Bound returns ok=false while the estimator is still warming
// up for that peer; the detector then falls back to its most lenient
// grant so an unknown link is never suspected on a guess.
//
// This is the per-link timeliness-graph estimation of Delporte-Gallet
// et al.: each link gets the bound it actually exhibits, rather than
// every link inheriting the globally calibrated worst case.
type DelayEstimator interface {
	Observe(peer model.ProcessID, d model.Duration)
	Bound(peer model.ProcessID) (bound model.Duration, ok bool)
}

// AdaptiveConfig tunes the adaptive suspicion deadlines. Zero fields
// take defaults.
type AdaptiveConfig struct {
	// CeilFactor bounds the per-peer deadline grant at CeilFactor×2D
	// (default 4): adaptation may stretch the paper's ts+2D surveillance
	// deadline for a demonstrably slow link, but never beyond this
	// ceiling — a peer slower than that is treated as failed, keeping
	// crash-detection latency bounded.
	CeilFactor float64
	// Shrink is the hysteresis ratio (default 0.7): a grant widens to
	// any larger estimate immediately, but only shrinks when the new
	// estimate falls below Shrink×current — so the deadline does not
	// oscillate around a noisy estimate.
	Shrink float64
	// Backoff is the flap-suppression window (default CeilFactor×2D):
	// after a peer is suspected, its grant is boosted to the ceiling
	// and pinned for Backoff, so a peer hovering at the threshold is
	// suspected once, not toggled in and out of the group.
	Backoff model.Duration
}

func (c AdaptiveConfig) withDefaults(params model.Params) AdaptiveConfig {
	if c.CeilFactor < 1 {
		c.CeilFactor = 4
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		c.Shrink = 0.7
	}
	if c.Backoff <= 0 {
		c.Backoff = model.Duration(c.CeilFactor * float64(2*params.D))
	}
	return c
}

// AdaptStats counts adaptation events. All fields are lifetime totals.
type AdaptStats struct {
	// Widened counts per-peer grant increases (estimate grew).
	Widened uint64
	// Shrunk counts per-peer grant decreases past the hysteresis band.
	Shrunk uint64
	// FlapBoosts counts flap-suppression boosts applied on suspicion.
	FlapBoosts uint64
	// ExpectOverwrites counts Expect calls that replaced an active
	// expectation.
	ExpectOverwrites uint64
	// AppSamples counts application-broadcast delay observations fed to
	// the estimator (RecordAppDelay past all its guards).
	AppSamples uint64
	// DeadlineTightenings counts armed surveillance deadlines pulled
	// earlier by a fresh sample.
	DeadlineTightenings uint64
}

// grantState is one peer's adaptive deadline grant. Mutated only from
// the detector's event loop; the atomics exist so metric scrapes on
// other goroutines can read without racing.
type grantState struct {
	span       atomic.Int64 // model.Duration; 0 = not yet granted
	boostUntil atomic.Int64 // model.Time; flap-suppression window end
}

// EnableAdaptive switches the detector to adaptive per-peer suspicion
// deadlines fed by est. Call before the detector is driven; static
// behavior (the paper's fixed ts+2D / Delta+Epsilon+Sigma bounds) is
// the default when this is never called.
func (d *Detector) EnableAdaptive(est DelayEstimator, cfg AdaptiveConfig) {
	d.est = est
	d.acfg = cfg.withDefaults(d.params)
	d.grants = make(map[model.ProcessID]*grantState)
	d.lastApp = make(map[model.ProcessID]model.Time)
}

// RecordAppDelay feeds the estimator one application-broadcast delay
// observation — a proposal from `from` stamped sendTS, received at now.
// Proposal traffic usually dwarfs control traffic, so sampling it makes
// the per-link bounds converge in seconds instead of view-change
// lifetimes. Guards, in order:
//
//   - adaptive mode only, and never our own loopback;
//   - per-sender freshness (a Nack-triggered retransmission rewrites
//     From but keeps the original SendTS, so a stale timestamp must not
//     be attributed to the retransmitter);
//   - delay ≤ the grant ceiling (anything slower is either a
//     retransmitted antique or a link the detector already treats as
//     failed — feeding it would only poison the estimate).
//
// When the fresh sample shrinks the expected sender's bound enough to
// tighten an armed surveillance deadline, the deadline is re-evaluated
// in place and the OnDeadlineTighten callback tells the owner to
// re-arm its timer. Event-loop only, like the rest of the detector.
func (d *Detector) RecordAppDelay(from model.ProcessID, sendTS, now model.Time) (tightened bool) {
	if d.est == nil || from == d.self {
		return false
	}
	if last, ok := d.lastApp[from]; ok && sendTS <= last {
		return false
	}
	d.lastApp[from] = sendTS
	delay := now.Sub(sendTS)
	if delay < 0 {
		delay = 0
	}
	if delay > d.grantCeil() {
		return false
	}
	d.est.Observe(from, delay)
	d.appSamples.Add(1)
	return d.maybeTighten(now)
}

// maybeTighten re-evaluates an armed expectation against the current
// estimate. Only strict improvements are applied: ExpectDeadline
// anchors adaptive deadlines on `now`, so recomputation can otherwise
// drift the deadline later — tightening must stay monotone.
func (d *Detector) maybeTighten(now model.Time) bool {
	if !d.expActive {
		return false
	}
	deadline := d.ExpectDeadline(d.expSender, d.expAfter, now)
	if deadline >= d.expDeadline {
		return false
	}
	d.expDeadline = deadline
	d.appTightened.Add(1)
	if d.onTighten != nil {
		d.onTighten(d.expSender, deadline)
	}
	return true
}

// OnDeadlineTighten installs a callback invoked (from the detector's
// event loop) when a fresh delay sample tightened the armed
// surveillance deadline; the owner re-arms its expect timer to the new,
// earlier deadline. Must not call back into the detector.
func (d *Detector) OnDeadlineTighten(fn func(sender model.ProcessID, deadline model.Time)) {
	d.onTighten = fn
}

// AdaptiveEnabled reports whether adaptive deadlines are active.
func (d *Detector) AdaptiveEnabled() bool { return d.est != nil }

func (d *Detector) grantFloor() model.Duration { return 2 * d.params.D }

func (d *Detector) grantCeil() model.Duration {
	return model.Duration(d.acfg.CeilFactor * float64(2*d.params.D))
}

// grant returns peer's grant cell, creating it on first use. The map
// is written only from the event loop but read by metric scrapes, so
// access goes through grantsMu; the cells themselves are atomics.
func (d *Detector) grant(peer model.ProcessID) *grantState {
	d.grantsMu.Lock()
	defer d.grantsMu.Unlock()
	g := d.grants[peer]
	if g == nil {
		g = &grantState{}
		d.grants[peer] = g
	}
	return g
}

// grantFor computes the current deadline grant for peer: the estimated
// one-way bound plus one D of scheduling headroom, clamped to
// [2D, CeilFactor×2D], passed through the widen-fast/shrink-slow
// hysteresis and the post-suspicion flap-suppression pin.
func (d *Detector) grantFor(peer model.ProcessID, now model.Time) model.Duration {
	floor, ceil := d.grantFloor(), d.grantCeil()
	g := d.grant(peer)
	raw := ceil // warmup: most lenient — never suspect on a guess
	if b, ok := d.est.Bound(peer); ok {
		raw = d.params.D + b
		if raw < floor {
			raw = floor
		}
		if raw > ceil {
			raw = ceil
		}
	}
	cur := model.Duration(g.span.Load())
	if cur == 0 {
		g.span.Store(int64(raw))
		return raw
	}
	if now < model.Time(g.boostUntil.Load()) && raw < cur {
		return cur // flap suppression: pinned, no shrinking
	}
	switch {
	case raw > cur:
		d.widened.Add(1)
		g.span.Store(int64(raw))
		return raw
	case raw < model.Duration(float64(cur)*d.acfg.Shrink):
		d.shrunk.Add(1)
		g.span.Store(int64(raw))
		return raw
	default:
		return cur // hysteresis band: hold
	}
}

// noteSuspicion applies flap suppression after peer timed out: boost
// its grant to the ceiling and pin it for the backoff window, so if the
// peer is merely hovering at the threshold it is suspected this once
// and then given the full ceiling to prove itself.
func (d *Detector) noteSuspicion(peer model.ProcessID, now model.Time) {
	if d.est == nil {
		return
	}
	g := d.grant(peer)
	g.span.Store(int64(d.grantCeil()))
	g.boostUntil.Store(int64(now.Add(d.acfg.Backoff)))
	d.flapBoosts.Add(1)
}

// ExpectDeadline returns the surveillance deadline for a control
// message expected from peer following one timestamped ts. Static mode
// is the paper's bound: ts+2D, floored at now+D so a deadline armed
// while draining a backlog is never already passed. Adaptive mode
// anchors on receipt: max(ts+2D, now+grant) — a healthy successor of a
// slow peer receives the handing decision late through no fault of its
// own, so its clock, not the slow sender's timestamp, is what its
// deadline must be measured from.
func (d *Detector) ExpectDeadline(peer model.ProcessID, ts, now model.Time) model.Time {
	deadline := ts.Add(2 * d.params.D)
	if d.est == nil {
		if minDeadline := now.Add(d.params.D); deadline < minDeadline {
			deadline = minDeadline
		}
		return deadline
	}
	if adaptive := now.Add(d.grantFor(peer, now)); adaptive > deadline {
		deadline = adaptive
	}
	return deadline
}

// TimelyBound returns the one-way delay bound against which control
// messages from peer are judged timely (alive-list admission and the
// fail-aware late test). Static mode: the model's Delta+Epsilon+Sigma.
// Adaptive mode: the estimated per-link bound, never tighter than the
// static bound and never looser than the grant ceiling — a link the
// estimator has measured as slow-but-steady stays "timely" instead of
// having every message rejected as a performance failure.
func (d *Detector) TimelyBound(peer model.ProcessID) model.Duration {
	static := d.params.Delta + d.params.Epsilon + d.params.Sigma
	if d.est == nil {
		return static
	}
	b, ok := d.est.Bound(peer)
	if !ok {
		return static
	}
	if ceil := d.grantCeil(); b > ceil {
		b = ceil
	}
	if b < static {
		return static
	}
	return b
}

// DeadlineSpan returns peer's current adaptive deadline grant (0 when
// adaptation is off or the peer has no grant yet). Safe from any
// goroutine — this is the metric-scrape read.
func (d *Detector) DeadlineSpan(peer model.ProcessID) model.Duration {
	d.grantsMu.Lock()
	g := d.grants[peer]
	d.grantsMu.Unlock()
	if g != nil {
		return model.Duration(g.span.Load())
	}
	return 0
}

// AdaptStats snapshots the adaptation counters. Safe from any
// goroutine.
func (d *Detector) AdaptStats() AdaptStats {
	return AdaptStats{
		Widened:             d.widened.Load(),
		Shrunk:              d.shrunk.Load(),
		FlapBoosts:          d.flapBoosts.Load(),
		ExpectOverwrites:    d.expOverwrites.Load(),
		AppSamples:          d.appSamples.Load(),
		DeadlineTightenings: d.appTightened.Load(),
	}
}

// OnExpectOverwrite installs a callback invoked (from the detector's
// event loop) whenever Expect replaces an active expectation; old and
// next are the previous and new expected senders. Observability tap —
// must not call back into the detector.
func (d *Detector) OnExpectOverwrite(fn func(old, next model.ProcessID)) {
	d.onOverwrite = fn
}

// ExpectOverwrites returns the lifetime count of Expect calls that
// replaced an active expectation.
func (d *Detector) ExpectOverwrites() uint64 { return d.expOverwrites.Load() }
