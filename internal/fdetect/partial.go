// Partial-view mode: the k-successor surveillance scheme (internal/
// surveil) deliberately stops observing most peers directly — each
// member watches only k ring successors. The §4.2 alive-list rule
// ("heard from within the last N slots") would then eject every
// unwatched peer, so in partial-view mode the alive-list is the union
// of direct observation and gossip: a fresh alive vouch relayed through
// the epidemic counts exactly like a timely control message, while the
// adaptive per-peer bounds keep governing the direct edges we do watch.
//
// The union is strictly local. Alive-lists placed on outgoing messages
// carry only the direct half (DirectAliveList): a vouch then always
// means "the sender itself heard this peer timely within one window",
// so it is at most one window stale. Re-exporting the union would let
// second-hand vouches refresh each other — every member broadcasts once
// per cycle, the freshness window is one cycle, so a dead or ejected
// peer would ride the mutual echo forever, its LastHeard never aging
// and the silence scan never firing.
package fdetect

import "timewheel/internal/model"

// EnablePartialView switches the alive-list to the direct ∪ gossiped
// union. Call once at setup, before the event loop starts.
func (d *Detector) EnablePartialView() {
	d.partial = true
	if d.gossipAlive == nil {
		d.gossipAlive = make(map[model.ProcessID]model.Time)
	}
}

// PartialView reports whether partial-view mode is on.
func (d *Detector) PartialView() bool { return d.partial }

// RecordGossipAlive notes second-hand evidence that p was alive at send
// timestamp ts: an alive-list entry or a refute relayed through the
// gossip epidemic. Evidence only ever advances (ts below the watermark
// is a stale relay and proves nothing new).
func (d *Detector) RecordGossipAlive(p model.ProcessID, ts model.Time) {
	if !d.partial || p == d.self {
		return
	}
	if ts > d.gossipAlive[p] {
		d.gossipAlive[p] = ts
	}
}

// DirectAliveList is the alive-list restricted to first-hand evidence:
// self plus every process a timely control message arrived from within
// the window, gossiped vouches excluded. This is what outgoing messages
// must carry (see the package comment); with partial view off it is
// identical to AliveList.
func (d *Detector) DirectAliveList(now model.Time) []model.ProcessID {
	return d.directAliveSet(now).Sorted()
}

// PruneGossipAlive drops gossiped vouches for processes outside the
// current membership. Called on every view install: an ejected member
// must not linger in the alive union — and thereby in readmission
// checks — on the word of peers that vouched for it before the
// ejection.
func (d *Detector) PruneGossipAlive(members []model.ProcessID) {
	if len(d.gossipAlive) == 0 {
		return
	}
	keep := model.NewProcessSet(members...)
	for p := range d.gossipAlive {
		if !keep.Has(p) {
			delete(d.gossipAlive, p)
		}
	}
}

// LastHeard returns the freshest liveness evidence for p from either
// channel: the last timely direct control message or the last gossiped
// vouch. This is what the k-successor watcher scan judges silence
// against — a peer vouched for by its own watchers is not silent.
func (d *Detector) LastHeard(p model.ProcessID) model.Time {
	ts := d.lastTimely[p]
	if d.partial {
		if g := d.gossipAlive[p]; g > ts {
			ts = g
		}
	}
	return ts
}

// EdgeTimely reports whether the direct edge to p currently looks
// timely: in adaptive mode, whether the estimator's per-link bound fits
// inside the model's static Delta+Epsilon+Sigma; in static mode (or
// before any estimate exists) every edge is presumed timely. The
// surveillance ring uses this to prefer watch edges the timeliness
// graph supports.
func (d *Detector) EdgeTimely(p model.ProcessID) bool {
	if d.est == nil {
		return true
	}
	b, ok := d.est.Bound(p)
	if !ok {
		return true
	}
	return b <= d.params.Delta+d.params.Epsilon+d.params.Sigma
}
