// Partial-view mode: the k-successor surveillance scheme (internal/
// surveil) deliberately stops observing most peers directly — each
// member watches only k ring successors. The §4.2 alive-list rule
// ("heard from within the last N slots") would then eject every
// unwatched peer, so in partial-view mode the alive-list is the union
// of direct observation and gossip: a fresh alive vouch relayed through
// the epidemic counts exactly like a timely control message, while the
// adaptive per-peer bounds keep governing the direct edges we do watch.
package fdetect

import "timewheel/internal/model"

// EnablePartialView switches the alive-list to the direct ∪ gossiped
// union. Call once at setup, before the event loop starts.
func (d *Detector) EnablePartialView() {
	d.partial = true
	if d.gossipAlive == nil {
		d.gossipAlive = make(map[model.ProcessID]model.Time)
	}
}

// PartialView reports whether partial-view mode is on.
func (d *Detector) PartialView() bool { return d.partial }

// RecordGossipAlive notes second-hand evidence that p was alive at send
// timestamp ts: an alive-list entry or a refute relayed through the
// gossip epidemic. Evidence only ever advances (ts below the watermark
// is a stale relay and proves nothing new).
func (d *Detector) RecordGossipAlive(p model.ProcessID, ts model.Time) {
	if !d.partial || p == d.self {
		return
	}
	if ts > d.gossipAlive[p] {
		d.gossipAlive[p] = ts
	}
}

// LastHeard returns the freshest liveness evidence for p from either
// channel: the last timely direct control message or the last gossiped
// vouch. This is what the k-successor watcher scan judges silence
// against — a peer vouched for by its own watchers is not silent.
func (d *Detector) LastHeard(p model.ProcessID) model.Time {
	ts := d.lastTimely[p]
	if d.partial {
		if g := d.gossipAlive[p]; g > ts {
			ts = g
		}
	}
	return ts
}

// EdgeTimely reports whether the direct edge to p currently looks
// timely: in adaptive mode, whether the estimator's per-link bound fits
// inside the model's static Delta+Epsilon+Sigma; in static mode (or
// before any estimate exists) every edge is presumed timely. The
// surveillance ring uses this to prefer watch edges the timeliness
// graph supports.
func (d *Detector) EdgeTimely(p model.ProcessID) bool {
	if d.est == nil {
		return true
	}
	b, ok := d.est.Bound(p)
	if !ok {
		return true
	}
	return b <= d.params.Delta+d.params.Epsilon+d.params.Sigma
}
