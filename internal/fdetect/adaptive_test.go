package fdetect

import (
	"testing"

	"timewheel/internal/model"
)

// fakeEst is a scripted DelayEstimator: tests set the bound per peer.
type fakeEst struct {
	bounds   map[model.ProcessID]model.Duration
	observed map[model.ProcessID][]model.Duration
}

func newFakeEst() *fakeEst {
	return &fakeEst{
		bounds:   make(map[model.ProcessID]model.Duration),
		observed: make(map[model.ProcessID][]model.Duration),
	}
}

func (f *fakeEst) Observe(peer model.ProcessID, d model.Duration) {
	f.observed[peer] = append(f.observed[peer], d)
}

func (f *fakeEst) Bound(peer model.ProcessID) (model.Duration, bool) {
	b, ok := f.bounds[peer]
	return b, ok
}

func adet() (*Detector, *fakeEst) {
	d := det()
	est := newFakeEst()
	d.EnableAdaptive(est, AdaptiveConfig{})
	return d, est
}

// Static mode must reproduce the paper's formula exactly: ts+2D with a
// now+D floor — byte-identical seed behavior when Adaptive is off.
func TestExpectDeadlineStatic(t *testing.T) {
	d := det()
	p := d.params
	if got, want := d.ExpectDeadline(1, 1000, 1000), model.Time(1000).Add(2*p.D); got != want {
		t.Fatalf("static deadline = %v, want ts+2D = %v", got, want)
	}
	// Ancient ts: floored at now+D.
	now := model.Time(1000).Add(10 * p.D)
	if got, want := d.ExpectDeadline(1, 1000, now), now.Add(p.D); got != want {
		t.Fatalf("static floored deadline = %v, want now+D = %v", got, want)
	}
}

// Warmup (no estimate yet): the grant is the ceiling — an unknown link
// is never suspected on a guess.
func TestAdaptiveWarmupUsesCeiling(t *testing.T) {
	d, _ := adet()
	p := d.params
	now := model.Time(1000)
	want := now.Add(model.Duration(4 * float64(2*p.D)))
	if got := d.ExpectDeadline(1, 1000, now); got != want {
		t.Fatalf("warmup deadline = %v, want now+ceil = %v", got, want)
	}
}

// The grant clamps to [2D, CeilFactor×2D] whatever the estimator says.
func TestAdaptiveGrantClamping(t *testing.T) {
	d, est := adet()
	p := d.params
	now := model.Time(1000)

	// Tiny estimate: floor 2D — never tighter than the paper's bound.
	est.bounds[1] = 1
	if got, want := d.ExpectDeadline(1, 1000, now), now.Add(2*p.D); got < want {
		t.Fatalf("tiny estimate deadline = %v, want >= ts+2D = %v", got, want)
	}

	// Huge estimate: ceiling CeilFactor×2D — crash detection stays bounded.
	est.bounds[2] = 1 << 40
	ceil := model.Duration(4 * float64(2*p.D))
	if got, want := d.ExpectDeadline(2, 1000, now), now.Add(ceil); got != want {
		t.Fatalf("huge estimate deadline = %v, want now+ceil = %v", got, want)
	}
	if span := d.DeadlineSpan(2); span != ceil {
		t.Fatalf("DeadlineSpan = %v, want ceil %v", span, ceil)
	}
}

// Hysteresis: the grant widens immediately but does not shrink for
// small estimate drops — no deadline oscillation around a noisy
// estimate, so no suspect/unsuspect toggling.
func TestAdaptiveHysteresisNoToggle(t *testing.T) {
	d, est := adet()
	p := d.params
	now := model.Time(1000)

	est.bounds[1] = 3 * p.D // grant = D + 3D = 4D
	d.ExpectDeadline(1, 1000, now)
	g1 := d.DeadlineSpan(1)
	if g1 != 4*p.D {
		t.Fatalf("grant = %v, want 4D", g1)
	}

	// Small dip (above Shrink×current): grant holds.
	est.bounds[1] = 5 * p.D / 2 // raw 3.5D > 0.7*4D = 2.8D
	d.ExpectDeadline(1, 1000, now)
	if g := d.DeadlineSpan(1); g != g1 {
		t.Fatalf("grant shrank on a small dip: %v -> %v", g1, g)
	}

	// Growth: adopted immediately.
	est.bounds[1] = 5 * p.D
	d.ExpectDeadline(1, 1000, now)
	if g := d.DeadlineSpan(1); g != 6*p.D {
		t.Fatalf("grant did not widen: %v", g)
	}

	// Large drop (below Shrink×current): adopted.
	est.bounds[1] = p.D
	d.ExpectDeadline(1, 1000, now)
	if g := d.DeadlineSpan(1); g != 2*p.D {
		t.Fatalf("grant did not shrink on a large drop: %v", g)
	}

	st := d.AdaptStats()
	if st.Widened == 0 || st.Shrunk == 0 {
		t.Fatalf("adaptation counters not recorded: %+v", st)
	}
}

// Flap suppression: after a timeout the suspect's grant boosts to the
// ceiling and is pinned for the backoff window, so a threshold-hovering
// peer is suspected once, not repeatedly.
func TestAdaptiveFlapSuppression(t *testing.T) {
	d, est := adet()
	p := d.params
	ceil := model.Duration(4 * float64(2*p.D))

	est.bounds[2] = p.D
	now := model.Time(1000)
	d.Expect(2, 1000, d.ExpectDeadline(2, 1000, now))
	_, deadline, _ := d.Expected()

	s, dl, to := d.TimedOut(deadline + 1)
	if !to || s != 2 || dl != deadline {
		t.Fatalf("TimedOut = (%v,%v,%v)", s, dl, to)
	}
	if g := d.DeadlineSpan(2); g != ceil {
		t.Fatalf("no flap boost: grant = %v, want ceil %v", g, ceil)
	}
	if st := d.AdaptStats(); st.FlapBoosts != 1 {
		t.Fatalf("FlapBoosts = %d", st.FlapBoosts)
	}

	// Inside the backoff window the estimator's small bound must not
	// shrink the pinned grant.
	d.ExpectDeadline(2, deadline+2, deadline+2)
	if g := d.DeadlineSpan(2); g != ceil {
		t.Fatalf("grant shrank inside backoff: %v", g)
	}

	// After the window, normal hysteresis resumes: the large drop from
	// the ceiling is adopted.
	after := (deadline + 1).Add(ceil) + 1
	d.ExpectDeadline(2, model.Time(after), after)
	if g := d.DeadlineSpan(2); g != 2*p.D {
		t.Fatalf("grant did not recover after backoff: %v", g)
	}
}

// TimelyBound: static below, per-link estimate above, ceiling on top.
func TestTimelyBound(t *testing.T) {
	d, est := adet()
	p := d.params
	static := p.Delta + p.Epsilon + p.Sigma

	// No estimate yet: static.
	if got := d.TimelyBound(1); got != static {
		t.Fatalf("warmup TimelyBound = %v, want static %v", got, static)
	}
	// Estimate below static: never tighter than the model's bound.
	est.bounds[1] = 1
	if got := d.TimelyBound(1); got != static {
		t.Fatalf("tiny TimelyBound = %v, want static %v", got, static)
	}
	// Slow link: the estimate applies (5D is inside the 8D ceiling).
	est.bounds[1] = 5 * p.D
	if got := d.TimelyBound(1); got != 5*p.D {
		t.Fatalf("slow-link TimelyBound = %v, want 5D", got)
	}
	// Clamped at the ceiling.
	est.bounds[1] = 1 << 40
	if got, ceil := d.TimelyBound(1), model.Duration(4*float64(2*p.D)); got != ceil {
		t.Fatalf("TimelyBound = %v, want ceil %v", got, ceil)
	}

	// Static-mode detector: always the model's bound.
	sd := det()
	if got := sd.TimelyBound(1); got != static {
		t.Fatalf("static TimelyBound = %v, want %v", got, static)
	}
}

// RecordControl feeds the estimator every fresh observation and judges
// timeliness against the widened per-link bound.
func TestRecordControlFeedsEstimator(t *testing.T) {
	d, est := adet()
	p := d.params
	static := p.Delta + p.Epsilon + p.Sigma

	// Late by the static bound, but the link's estimate covers it.
	est.bounds[1] = 10 * p.D
	late := model.Time(100).Add(static + 1)
	if !d.RecordControl(1, 100, late) {
		t.Fatal("fresh message rejected")
	}
	if got := est.observed[1]; len(got) != 1 || got[0] != static+1 {
		t.Fatalf("estimator fed %v, want [%v]", got, static+1)
	}
	if alive := d.AliveList(late); len(alive) != 2 {
		t.Fatalf("slow-but-covered sender not in alive list: %v", alive)
	}

	// Stale messages do not feed the estimator.
	d.RecordControl(1, 99, late)
	if got := est.observed[1]; len(got) != 1 {
		t.Fatalf("stale message fed the estimator: %v", got)
	}
}

// Expect overwrites are counted and reported.
func TestExpectOverwriteAccounting(t *testing.T) {
	d := det()
	var gotOld, gotNext model.ProcessID = model.NoProcess, model.NoProcess
	d.OnExpectOverwrite(func(old, next model.ProcessID) { gotOld, gotNext = old, next })

	d.Expect(1, 100, 200)
	if d.ExpectOverwrites() != 0 {
		t.Fatal("first Expect counted as overwrite")
	}
	d.Expect(2, 150, 250)
	if d.ExpectOverwrites() != 1 || gotOld != 1 || gotNext != 2 {
		t.Fatalf("overwrite not reported: n=%d old=%v next=%v",
			d.ExpectOverwrites(), gotOld, gotNext)
	}
	d.ClearExpectation()
	d.Expect(3, 300, 400)
	if d.ExpectOverwrites() != 1 {
		t.Fatal("Expect after clear counted as overwrite")
	}
}

// Application-broadcast sampling: fresh proposal delays feed the
// estimator under the same freshness discipline as control messages,
// discard implausibly slow samples, and never run in static mode.
func TestRecordAppDelayGuards(t *testing.T) {
	// Static mode: hard no-op.
	d := det()
	if d.RecordAppDelay(1, 100, 101) {
		t.Fatal("static detector claimed a tightening")
	}

	d, est := adet()
	p := d.params

	// Fresh sample feeds the estimator.
	if d.RecordAppDelay(1, 100, model.Time(100).Add(p.Delta)) {
		t.Fatal("tightened with no armed expectation")
	}
	if got := est.observed[1]; len(got) != 1 || got[0] != p.Delta {
		t.Fatalf("estimator fed %v, want [%v]", got, p.Delta)
	}
	if d.AdaptStats().AppSamples != 1 {
		t.Fatalf("AppSamples = %d, want 1", d.AdaptStats().AppSamples)
	}

	// Stale timestamp (a Nack retransmission carries the original
	// SendTS): rejected.
	d.RecordAppDelay(1, 99, 200)
	if got := est.observed[1]; len(got) != 1 {
		t.Fatalf("stale sample fed the estimator: %v", got)
	}

	// Loopback: rejected (detector self is 0).
	d.RecordAppDelay(0, 500, 501)
	if got := est.observed[0]; len(got) != 0 {
		t.Fatalf("self sample fed the estimator: %v", got)
	}

	// Implausibly slow (beyond the grant ceiling): rejected.
	d.RecordAppDelay(1, 200, model.Time(200).Add(d.grantCeil()+1))
	if got := est.observed[1]; len(got) != 1 {
		t.Fatalf("over-ceiling sample fed the estimator: %v", got)
	}
	if s := d.AdaptStats(); s.AppSamples != 1 {
		t.Fatalf("AppSamples = %d after rejected samples, want 1", s.AppSamples)
	}
}

// A fresh sample that shrinks the expected sender's bound tightens the
// armed deadline in place, fires the callback, and never loosens.
func TestRecordAppDelayTightensArmedDeadline(t *testing.T) {
	d, est := adet()
	p := d.params

	var cbSender model.ProcessID
	var cbDeadline model.Time
	calls := 0
	d.OnDeadlineTighten(func(s model.ProcessID, dl model.Time) {
		cbSender, cbDeadline = s, dl
		calls++
	})

	// Arm on peer 1 during warmup: the deadline gets the full ceiling.
	now := model.Time(1000)
	deadline := d.ExpectDeadline(1, now, now)
	d.Expect(1, now, deadline)
	if want := now.Add(d.grantCeil()); deadline != want {
		t.Fatalf("warmup deadline = %v, want ceiling %v", deadline, want)
	}

	// A fast sample from an unrelated peer must not touch the deadline.
	est.bounds[2] = p.Delta
	d.RecordAppDelay(2, now, now.Add(p.Delta))
	if _, dl, _ := d.Expected(); dl != deadline {
		t.Fatalf("unrelated peer moved the deadline: %v", dl)
	}

	// A fast sample from the expected sender shrinks the bound; the
	// armed deadline must follow it down and the callback must fire.
	est.bounds[1] = p.Delta
	later := now.Add(p.Delta)
	if !d.RecordAppDelay(1, now.Add(1), later) {
		t.Fatal("shrinking sample did not tighten")
	}
	_, tightened, active := d.Expected()
	if !active || tightened >= deadline {
		t.Fatalf("deadline %v not tightened below %v", tightened, deadline)
	}
	if calls != 1 || cbSender != 1 || cbDeadline != tightened {
		t.Fatalf("callback: calls=%d sender=%v deadline=%v (want 1, 1, %v)",
			calls, cbSender, cbDeadline, tightened)
	}
	if s := d.AdaptStats(); s.DeadlineTightenings != 1 {
		t.Fatalf("DeadlineTightenings = %d, want 1", s.DeadlineTightenings)
	}

	// Another sample at the same estimate must not loosen the deadline
	// (recomputation anchors on a later now, which would drift it out).
	d.RecordAppDelay(1, now.Add(2), later.Add(p.Delta))
	if _, dl, _ := d.Expected(); dl > tightened {
		t.Fatalf("deadline drifted later: %v > %v", dl, tightened)
	}
}
