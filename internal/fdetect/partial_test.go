package fdetect

import (
	"testing"

	"timewheel/internal/model"
)

// TestPartialViewUnion: in partial-view mode the alive-list is the union
// of direct timely observation and gossiped vouches; off, gossip is
// ignored entirely.
func TestPartialViewUnion(t *testing.T) {
	params := model.DefaultParams(4)
	d := New(0, params)
	now := model.Time(1_000_000)

	d.RecordGossipAlive(2, now) // ignored: partial view off
	if got := d.AliveList(now); len(got) != 1 || got[0] != 0 {
		t.Fatalf("gossip counted with partial view off: %v", got)
	}

	d.EnablePartialView()
	d.RecordControl(1, now, now.Add(params.Delta)) // direct, timely
	d.RecordGossipAlive(2, now)                    // second-hand
	d.RecordGossipAlive(0, now)                    // self-vouch: ignored
	got := d.AliveList(now.Add(params.SlotLen()))
	want := []model.ProcessID{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("alive-list %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alive-list %v, want %v", got, want)
		}
	}
}

// TestPartialViewWindow: gossiped vouches age out under the same N-slot
// freshness window as direct observation.
func TestPartialViewWindow(t *testing.T) {
	params := model.DefaultParams(4)
	d := New(0, params)
	d.EnablePartialView()
	base := model.Time(1_000_000)
	d.RecordGossipAlive(2, base)
	window := model.Duration(params.N) * params.SlotLen()
	if got := d.AliveList(base.Add(window)); len(got) != 2 {
		t.Errorf("vouch aged out inside the window: %v", got)
	}
	if got := d.AliveList(base.Add(window + 1)); len(got) != 1 {
		t.Errorf("vouch survived past the window: %v", got)
	}
}

// TestDirectAliveListExcludesGossip: the list placed on outgoing
// messages carries first-hand evidence only. Re-exporting the gossip
// union would launder the vouch timestamps — every hop re-stamps the
// entry with its own SendTS, and since each member broadcasts once per
// freshness window, mutually echoed vouches would keep a dead peer on
// every alive-list forever.
func TestDirectAliveListExcludesGossip(t *testing.T) {
	params := model.DefaultParams(4)
	d := New(0, params)
	d.EnablePartialView()
	now := model.Time(1_000_000)
	d.RecordControl(1, now, now.Add(params.Delta)) // direct, timely
	d.RecordGossipAlive(2, now)                    // second-hand
	at := now.Add(params.SlotLen())
	if got := d.AliveList(at); len(got) != 3 {
		t.Fatalf("local union %v, want [0 1 2]", got)
	}
	got := d.DirectAliveList(at)
	want := []model.ProcessID{0, 1}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("DirectAliveList %v, want %v — gossiped vouch re-exported", got, want)
	}
}

// TestPruneGossipAlive: a view install drops vouches for processes
// outside the new membership, so an ejected member cannot linger in the
// alive union on pre-ejection vouches.
func TestPruneGossipAlive(t *testing.T) {
	params := model.DefaultParams(4)
	d := New(0, params)
	d.EnablePartialView()
	now := model.Time(1_000_000)
	d.RecordGossipAlive(2, now)
	d.RecordGossipAlive(3, now)
	d.PruneGossipAlive([]model.ProcessID{0, 1, 2}) // 3 was ejected
	got := d.AliveList(now)
	for _, p := range got {
		if p == 3 {
			t.Errorf("ejected member survived the prune: %v", got)
		}
	}
	if len(got) != 2 { // self + the still-member vouch
		t.Errorf("alive-list %v, want [0 2]", got)
	}
	if d.LastHeard(3) != 0 {
		t.Errorf("LastHeard(3) = %v after prune, want 0", d.LastHeard(3))
	}
}

// TestGossipAliveMonotone: stale relays cannot regress the vouch
// watermark, and LastHeard reports the freshest of either channel.
func TestGossipAliveMonotone(t *testing.T) {
	d := New(0, model.DefaultParams(4))
	d.EnablePartialView()
	d.RecordGossipAlive(2, 2000)
	d.RecordGossipAlive(2, 1000) // stale relay
	if got := d.LastHeard(2); got != 2000 {
		t.Errorf("LastHeard = %v, want 2000", got)
	}
	// A timely direct message that is fresher wins.
	d.RecordControl(2, 5000, 5000)
	if got := d.LastHeard(2); got != 5000 {
		t.Errorf("LastHeard after direct = %v, want 5000", got)
	}
}

// TestForgetClearsGossip: crash/recovery drops second-hand evidence too.
func TestForgetClearsGossip(t *testing.T) {
	d := New(0, model.DefaultParams(4))
	d.EnablePartialView()
	d.RecordGossipAlive(2, 2000)
	d.Forget()
	if got := d.AliveList(2000); len(got) != 1 {
		t.Errorf("gossip evidence survived Forget: %v", got)
	}
	if !d.PartialView() {
		t.Error("Forget disabled partial-view mode")
	}
}

// TestEdgeTimely: static mode presumes every edge timely; adaptive mode
// trusts the estimator — edges whose bound fits the static
// Delta+Epsilon+Sigma are timely, measured-slow edges are not, and
// unmeasured edges get the benefit of the doubt.
func TestEdgeTimely(t *testing.T) {
	params := model.DefaultParams(4)
	d := New(0, params)
	if !d.EdgeTimely(1) {
		t.Error("static mode edge not timely")
	}
	est := newFakeEst()
	est.bounds[1] = params.Delta      // fast link
	est.bounds[2] = 10 * params.Delta // degraded link
	d.EnableAdaptive(est, AdaptiveConfig{})
	if !d.EdgeTimely(1) {
		t.Error("fast measured edge not timely")
	}
	if d.EdgeTimely(2) {
		t.Error("degraded edge reported timely")
	}
	if !d.EdgeTimely(3) {
		t.Error("unmeasured edge not presumed timely")
	}
}
