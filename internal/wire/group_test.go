package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestGroupedRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	var c Coalescer
	c.SetGroup(7)
	for _, m := range msgs {
		if !c.TryAppend(m) {
			t.Fatalf("TryAppend(%v) refused under size limit", m.Kind())
		}
	}
	data := c.Datagram()
	if !IsGrouped(data) {
		t.Fatal("grouped datagram not marked grouped")
	}
	if IsCoalesced(data) {
		t.Fatal("grouped datagram must not look like a legacy envelope")
	}
	gid, ok := GroupOf(data)
	if !ok || gid != 7 {
		t.Fatalf("GroupOf = %d, %v; want 7, true", gid, ok)
	}
	var got []Message
	err := SplitGrouped(data, func(frame []byte) {
		m, derr := Decode(frame)
		if derr != nil {
			t.Fatalf("sub-frame decode: %v", derr)
		}
		got = append(got, m)
	})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("split %d frames, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !messagesEqual(msgs[i], got[i]) {
			t.Errorf("frame %d (%v) mismatch", i, msgs[i].Kind())
		}
	}
}

func TestGroupedSingleFrameKeepsEnvelope(t *testing.T) {
	m := bigDecision(4)
	var c Coalescer
	c.SetGroup(42)
	if !c.TryAppend(m) {
		t.Fatal("TryAppend refused single frame")
	}
	data := c.Datagram()
	if !IsGrouped(data) {
		t.Fatal("single grouped frame lost its envelope (routing tag)")
	}
	gid, ok := GroupOf(data)
	if !ok || gid != 42 {
		t.Fatalf("GroupOf = %d, %v; want 42, true", gid, ok)
	}
	n := 0
	if err := SplitGrouped(data, func(frame []byte) {
		n++
		if !bytes.Equal(frame, Encode(m)) {
			t.Fatal("grouped sub-frame differs from Encode")
		}
	}); err != nil {
		t.Fatalf("split: %v", err)
	}
	if n != 1 {
		t.Fatalf("split %d frames, want 1", n)
	}
}

func TestGroupOfLegacyIsZero(t *testing.T) {
	bare := Encode(bigDecision(2))
	if gid, ok := GroupOf(bare); !ok || gid != 0 {
		t.Fatalf("bare frame: GroupOf = %d, %v; want 0, true", gid, ok)
	}
	var c Coalescer
	c.TryAppend(&Nack{Header: Header{From: 1, SendTS: 2}})
	c.TryAppend(&Nack{Header: Header{From: 3, SendTS: 4}})
	if gid, ok := GroupOf(c.Datagram()); !ok || gid != 0 {
		t.Fatalf("0xC0 envelope: GroupOf = %d, %v; want 0, true", gid, ok)
	}
}

func TestGroupOfTruncatedHeader(t *testing.T) {
	for n := 1; n < groupHeader; n++ {
		data := make([]byte, n)
		data[0] = GroupMagic
		if _, ok := GroupOf(data); ok {
			t.Fatalf("GroupOf accepted a %d-byte grouped header", n)
		}
		if err := SplitGrouped(data, func([]byte) {}); err == nil {
			t.Fatalf("SplitGrouped accepted a %d-byte grouped header", n)
		}
	}
}

func TestSplitGroupedRejectsCorruption(t *testing.T) {
	var c Coalescer
	c.SetGroup(9)
	for _, m := range sampleMessages()[:3] {
		c.TryAppend(m)
	}
	good := append([]byte(nil), c.Datagram()...)
	// Envelope-structure corruption: count and length-prefix bytes.
	for _, off := range []int{groupHeader - 1, groupHeader, groupHeader + 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xFF
		clean := true
		if err := SplitGrouped(bad, func(frame []byte) {
			if _, derr := Decode(frame); derr != nil {
				clean = false
			}
		}); err == nil && clean {
			t.Fatalf("corruption at byte %d slipped through", off)
		}
	}
	// Truncation anywhere must never split into a full clean set.
	for n := 1; n < len(good); n++ {
		frames := 0
		clean := true
		if err := SplitGrouped(good[:n], func(frame []byte) {
			frames++
			if _, derr := Decode(frame); derr != nil {
				clean = false
			}
		}); err == nil && clean && frames == 3 {
			t.Fatalf("truncation to %d bytes split cleanly", n)
		}
	}
}

func TestSplitGroupedRandomBytesNeverPanics(t *testing.T) {
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func() byte {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return byte(rnd)
	}
	for i := 0; i < 5000; i++ {
		n := int(next()) % 64
		data := make([]byte, n+1)
		data[0] = GroupMagic
		for j := 1; j < len(data); j++ {
			data[j] = next()
		}
		SplitGrouped(data, func([]byte) {}) //nolint:errcheck
	}
}

// TestGroupedSteadyStateZeroAllocs pins the fabric send path's alloc
// discipline: once the coalescer buffer is warm, tagging and packing
// frames for a group allocates nothing.
func TestGroupedSteadyStateZeroAllocs(t *testing.T) {
	m := bigDecision(4)
	var c Coalescer
	c.SetGroup(3)
	c.TryAppend(m) // warm the buffer
	c.Reset()
	allocs := testing.AllocsPerRun(200, func() {
		c.TryAppend(m)
		c.TryAppend(m)
		if c.Datagram() == nil {
			t.Fatal("no datagram")
		}
		c.Reset()
	})
	if allocs != 0 {
		t.Fatalf("grouped coalesce allocates %.1f/op, want 0", allocs)
	}
}

func TestGroupedOverflowRefusesAndRecovers(t *testing.T) {
	big := &Proposal{Header: Header{From: 1, SendTS: 2}, Payload: make([]byte, 20*1024)}
	var c Coalescer
	c.SetGroup(5)
	appended := 0
	for c.TryAppend(big) {
		appended++
		if appended > 10 {
			t.Fatal("size limit never triggered")
		}
	}
	if appended == 0 {
		t.Fatal("first append refused")
	}
	data := c.Datagram()
	if !IsGrouped(data) {
		t.Fatal("overflowed datagram lost its group tag")
	}
	if len(data) > MaxCoalescedSize+groupHeader {
		t.Fatalf("datagram %d bytes exceeds budget", len(data))
	}
	n := 0
	if err := SplitGrouped(data, func(frame []byte) {
		if _, derr := Decode(frame); derr != nil {
			t.Fatalf("sub-frame decode: %v", derr)
		}
		n++
	}); err != nil {
		t.Fatalf("split: %v", err)
	}
	if n != appended {
		t.Fatalf("split %d frames, want %d", n, appended)
	}
	// The refused frame must append cleanly after a flush.
	c.Reset()
	if !c.TryAppend(big) {
		t.Fatal("append after flush refused")
	}
}

func TestGroupHeaderLayout(t *testing.T) {
	var c Coalescer
	c.SetGroup(0x01020304)
	c.TryAppend(&Nack{Header: Header{From: 1, SendTS: 2}})
	data := c.Datagram()
	if data[0] != GroupMagic {
		t.Fatalf("magic = %#x", data[0])
	}
	if gid := binary.LittleEndian.Uint32(data[1:]); gid != 0x01020304 {
		t.Fatalf("gid = %#x", gid)
	}
	if data[5] != 1 {
		t.Fatalf("count = %d", data[5])
	}
}
