package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// encodeV4 replicates the version-4 frame layout (no Decision/NoDecision
// delta fields, no OALReq/OALFull) so decode back-compat stays covered
// after the v5 bump.
func encodeV4(t *testing.T, m Message) []byte {
	t.Helper()
	e := encoder{buf: make([]byte, 0, 128)}
	e.u8(4)
	e.u8(uint8(m.Kind()))
	h := m.Hdr()
	e.i64(int64(h.From))
	e.i64(int64(h.SendTS))
	switch v := m.(type) {
	case *Proposal:
		e.proposalBody(v)
	case *Decision:
		e.group(v.Group)
		e.oal(&v.OAL)
		e.processList(v.Alive)
		e.u64(uint64(v.Lineage))
	case *NoDecision:
		e.i64(int64(v.Suspect))
		e.u64(uint64(v.GroupSeq))
		e.oal(&v.View)
		e.proposalIDList(v.DPD)
		e.processList(v.Alive)
	case *Join:
		e.processList(v.JoinList)
		e.u64(uint64(v.CoveredOrdinal))
		e.u64(uint64(v.Lineage))
		if v.Forming {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case *Nack:
		e.proposalIDList(v.Missing)
	default:
		t.Fatalf("encodeV4: unsupported %T", m)
	}
	var crc [crcSize]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(e.buf, crcTable))
	return append(e.buf, crc[:]...)
}

// TestDecodeV4Frames: a peer still speaking wire v4 must interoperate —
// its frames decode, with the delta fields reading as zero ("full oal").
func TestDecodeV4Frames(t *testing.T) {
	h := Header{From: 3, SendTS: 1_000_000}
	msgs := []Message{
		&Proposal{Header: h, ID: oal.ProposalID{Proposer: 3, Seq: 42},
			HDO: 17, Payload: []byte("deposit 100")},
		&Decision{Header: h, Group: model.NewGroup(2, []model.ProcessID{0, 1, 3}),
			OAL: sampleOAL(), Alive: []model.ProcessID{0, 1, 3}, Lineage: 2},
		&NoDecision{Header: h, Suspect: 1, GroupSeq: 5, View: sampleOAL(),
			DPD: []oal.ProposalID{{Proposer: 0, Seq: 7}}, Alive: []model.ProcessID{0, 3}},
		&Join{Header: h, JoinList: []model.ProcessID{0, 1}, CoveredOrdinal: 12, Lineage: 3, Forming: true},
		&Nack{Header: h, Missing: []oal.ProposalID{{Proposer: 0, Seq: 3}}},
	}
	for _, m := range msgs {
		data := encodeV4(t, m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: v4 decode: %v", m.Kind(), err)
		}
		if !messagesEqual(m, got) {
			t.Errorf("%v v4 decode mismatch:\n in: %#v\nout: %#v", m.Kind(), m, got)
		}
		switch v := got.(type) {
		case *Decision:
			if v.BaseTS != 0 || v.TruncBelow != 0 {
				t.Errorf("v4 decision decoded with delta fields: %+v", v)
			}
		case *NoDecision:
			if v.BaseTS != 0 || v.TruncBelow != 0 {
				t.Errorf("v4 no-decision decoded with delta fields: %+v", v)
			}
		}
	}
}

func TestScratchDecoderMatchesDecode(t *testing.T) {
	var dc Decoder
	// Two passes: the second exercises scratch reuse over populated
	// slices from the first.
	for pass := 0; pass < 2; pass++ {
		for _, m := range sampleMessages() {
			data := Encode(m)
			got, err := dc.Decode(data)
			if err != nil {
				t.Fatalf("pass %d %v: scratch decode: %v", pass, m.Kind(), err)
			}
			if !messagesEqual(m, got) {
				t.Errorf("pass %d %v scratch mismatch:\n in: %#v\nout: %#v", pass, m.Kind(), m, got)
			}
		}
	}
}

func bigDecision(entries int) *Decision {
	l := oal.NewList()
	for i := 0; i < entries; i++ {
		id := oal.ProposalID{Proposer: model.ProcessID(i % 5), Seq: uint64(i)}
		l.AppendUpdate(id, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
			model.Time(1000+i), oal.Ordinal(i/2), oal.AckSet(0b10111))
	}
	l.AppendMembership(model.NewGroup(7, []model.ProcessID{0, 1, 2, 3, 4}))
	return &Decision{
		Header:  Header{From: 2, SendTS: 5_000_000},
		Group:   model.NewGroup(7, []model.ProcessID{0, 1, 2, 3, 4}),
		OAL:     *l,
		Alive:   []model.ProcessID{0, 1, 2, 3, 4},
		Lineage: 7,
	}
}

func TestEncodeDecodeSteadyStateZeroAllocs(t *testing.T) {
	dec := bigDecision(32)
	frame := Encode(dec)
	buf := make([]byte, 0, 2*len(frame))
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendEncode(buf[:0], dec)
	}); n != 0 {
		t.Errorf("AppendEncode: %v allocs/op, want 0", n)
	}
	var dc Decoder
	if _, err := dc.Decode(frame); err != nil { // warm the scratch
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := dc.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Decoder.Decode: %v allocs/op, want 0", n)
	}
}

func TestPooledEncodeBuffer(t *testing.T) {
	m := bigDecision(8)
	b := GetBuffer()
	frame := EncodeTo(b, m)
	if !bytes.Equal(frame, Encode(m)) {
		t.Fatal("EncodeTo produced different frame than Encode")
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode pooled frame: %v", err)
	}
	if !messagesEqual(m, got) {
		t.Fatal("pooled frame round trip mismatch")
	}
	PutBuffer(b)
}

func TestCoalesceRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	var c Coalescer
	for _, m := range msgs {
		if !c.TryAppend(m) {
			t.Fatalf("TryAppend(%v) refused under size limit", m.Kind())
		}
	}
	data := c.Datagram()
	if !IsCoalesced(data) {
		t.Fatal("multi-frame datagram not marked coalesced")
	}
	var got []Message
	err := SplitCoalesced(data, func(frame []byte) {
		m, derr := Decode(frame)
		if derr != nil {
			t.Fatalf("sub-frame decode: %v", derr)
		}
		got = append(got, m)
	})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("split %d frames, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !messagesEqual(msgs[i], got[i]) {
			t.Errorf("frame %d (%v) mismatch", i, msgs[i].Kind())
		}
	}
}

func TestCoalesceSingleFrameIsBare(t *testing.T) {
	m := bigDecision(4)
	var c Coalescer
	if !c.TryAppend(m) {
		t.Fatal("TryAppend refused single frame")
	}
	data := c.Datagram()
	if IsCoalesced(data) {
		t.Fatal("single frame should not carry the envelope")
	}
	if !bytes.Equal(data, Encode(m)) {
		t.Fatal("bare datagram differs from Encode")
	}
	c.Reset()
	if c.Datagram() != nil || c.Count() != 0 {
		t.Fatal("Reset left pending data")
	}
}

func TestCoalesceEmptyDatagramIsNil(t *testing.T) {
	var c Coalescer
	if c.Datagram() != nil {
		t.Fatal("empty coalescer produced a datagram")
	}
}

func TestCoalesceOverflowRefusesAndRecovers(t *testing.T) {
	big := &Proposal{Header: Header{From: 1, SendTS: 2}, Payload: make([]byte, 20*1024)}
	var c Coalescer
	appended := 0
	for c.TryAppend(big) {
		appended++
		if appended > 10 {
			t.Fatal("size limit never triggered")
		}
	}
	if appended == 0 {
		t.Fatal("first frame must always be accepted")
	}
	before := c.Count()
	data := c.Datagram()
	if len(data) > MaxCoalescedSize+coalesceHeader {
		t.Fatalf("datagram %d bytes exceeds limit", len(data))
	}
	n := 0
	if err := SplitCoalesced(data, func(frame []byte) {
		if _, derr := Decode(frame); derr != nil {
			t.Fatalf("sub-frame decode after refused append: %v", derr)
		}
		n++
	}); err != nil {
		t.Fatalf("split after refused append: %v", err)
	}
	if n != before {
		t.Fatalf("split %d frames, want %d", n, before)
	}
	c.Reset()
	if !c.TryAppend(big) {
		t.Fatal("TryAppend refused after Reset")
	}
}

func TestCoalesceOversizedSingleFrameAccepted(t *testing.T) {
	huge := &Proposal{Header: Header{From: 1}, Payload: make([]byte, MaxCoalescedSize+1024)}
	var c Coalescer
	if !c.TryAppend(huge) {
		t.Fatal("oversized first frame must be accepted alone")
	}
	if c.TryAppend(&Nack{Header: Header{From: 1}}) {
		t.Fatal("second frame must be refused after oversized first")
	}
	got, err := Decode(c.Datagram())
	if err != nil {
		t.Fatalf("decode oversized bare frame: %v", err)
	}
	if !messagesEqual(huge, got) {
		t.Fatal("oversized frame mismatch")
	}
}

// Every single-byte flip in a coalesced datagram must be detected:
// either the envelope fails to split, the frame count changes, or a
// sub-frame fails its CRC.
func TestCoalesceRejectsSingleByteCorruption(t *testing.T) {
	var c Coalescer
	c.TryAppend(bigDecision(3))
	c.TryAppend(&Nack{Header: Header{From: 2, SendTS: 9}, Missing: []oal.ProposalID{{Proposer: 1, Seq: 2}}})
	c.TryAppend(&OALReq{Header: Header{From: 4, SendTS: 10}})
	data := bytes.Clone(c.Datagram())
	for i := range data {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			mut := bytes.Clone(data)
			mut[i] ^= mask
			clean := true
			frames := 0
			err := SplitCoalesced(mut, func(frame []byte) {
				if _, derr := Decode(frame); derr != nil {
					clean = false
				}
				frames++
			})
			if err == nil && clean && frames == 3 {
				t.Fatalf("flip of byte %d xor %#x went undetected", i, mask)
			}
		}
	}
}

func TestSplitCoalescedRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(96))
		rng.Read(buf)
		if len(buf) > 0 {
			buf[0] = CoalesceMagic
		}
		_ = SplitCoalesced(buf, func(frame []byte) { _, _ = Decode(frame) })
	}
}
