package wire

import (
	"encoding/binary"
	"errors"
)

// Coalesced multi-frame datagrams: the send path packs every control
// frame produced while handling one event and bound for the same
// destination into a single datagram, halving (or better) the syscall
// and per-packet overhead of decision+state or proposal+nack bursts.
//
// Layout: a magic byte (CoalesceMagic, distinct from every frame version
// byte so plain frames and coalesced datagrams are self-describing),
// a sub-frame count, then count sub-frames each prefixed with a u32
// little-endian length. Every sub-frame is a complete Encode frame with
// its own CRC-32C trailer, so corruption anywhere — envelope or content
// — is rejected per sub-frame by the existing decode path.

// CoalesceMagic is the first byte of a coalesced datagram. Plain frames
// start with their version byte (≤ Version), so the two never collide.
const CoalesceMagic = 0xC0

// GroupMagic is the first byte of a group-tagged coalesced datagram
// (wire v6): magic, a u32 little-endian group-id, a sub-frame count,
// then sub-frames exactly as in the 0xC0 envelope. It lets one socket
// multiplex frames for many independent timewheel groups; receivers
// demultiplex on the group-id before any frame decoding. Bare frames
// and 0xC0 envelopes are implicitly group 0 (the single-group legacy
// path), so v5 senders keep working unchanged.
const GroupMagic = 0xC1

// MaxCoalescedSize bounds a coalesced datagram so it stays under the
// 64 KiB UDP datagram ceiling with headroom for the envelope.
const MaxCoalescedSize = 60 * 1024

// maxCoalescedFrames is the u8 sub-frame count ceiling.
const maxCoalescedFrames = 255

const coalesceHeader = 2 // magic + count
const groupHeader = 6    // magic + u32 group-id + count

// ErrNotCoalesced reports data that does not start with CoalesceMagic.
var ErrNotCoalesced = errors.New("wire: not a coalesced datagram")

// ErrBadCoalesce reports a malformed coalesced envelope.
var ErrBadCoalesce = errors.New("wire: malformed coalesced datagram")

// IsCoalesced reports whether data is a coalesced multi-frame datagram.
func IsCoalesced(data []byte) bool {
	return len(data) > 0 && data[0] == CoalesceMagic
}

// IsGrouped reports whether data is a group-tagged (0xC1) datagram.
func IsGrouped(data []byte) bool {
	return len(data) > 0 && data[0] == GroupMagic
}

// GroupOf returns the group-id a datagram is addressed to. Bare frames
// and legacy 0xC0 envelopes report group 0. ok is false when data is a
// grouped envelope too short to carry its header.
func GroupOf(data []byte) (gid uint32, ok bool) {
	if !IsGrouped(data) {
		return 0, true
	}
	if len(data) < groupHeader {
		return 0, false
	}
	return binary.LittleEndian.Uint32(data[1:]), true
}

// SplitCoalesced iterates the sub-frames of a coalesced datagram,
// calling fn with each (sub-frames alias data). It validates the
// envelope; sub-frame content is validated by Decode's CRC as usual.
func SplitCoalesced(data []byte, fn func(frame []byte)) error {
	if !IsCoalesced(data) {
		return ErrNotCoalesced
	}
	return splitEnvelope(data, coalesceHeader, fn)
}

// SplitGrouped iterates the sub-frames of a group-tagged datagram,
// calling fn with each (sub-frames alias data). The caller is expected
// to have routed on GroupOf first; SplitGrouped itself is group-blind.
func SplitGrouped(data []byte, fn func(frame []byte)) error {
	if !IsGrouped(data) {
		return ErrNotCoalesced
	}
	return splitEnvelope(data, groupHeader, fn)
}

// splitEnvelope walks the length-prefixed sub-frames that follow an
// envelope header of hdr bytes (whose final byte is the count).
func splitEnvelope(data []byte, hdr int, fn func(frame []byte)) error {
	if len(data) < hdr {
		return ErrBadCoalesce
	}
	count := int(data[hdr-1])
	if count == 0 {
		return ErrBadCoalesce
	}
	off := hdr
	for i := 0; i < count; i++ {
		if off+4 > len(data) {
			return ErrBadCoalesce
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n > len(data)-off {
			return ErrBadCoalesce
		}
		fn(data[off : off+n])
		off += n
	}
	if off != len(data) {
		return ErrBadCoalesce
	}
	return nil
}

// Coalescer accumulates frames for one destination, encoding them
// directly into its own reusable buffer. Usage: TryAppend each message;
// when it reports false, send Datagram(), Reset, and re-append. After
// the final message, send Datagram() if non-nil and Reset. The returned
// datagram aliases the coalescer's buffer and is valid until Reset.
//
// A coalescer tagged with a nonzero group (SetGroup) emits 0xC1
// group-tagged envelopes instead, even for a single pending frame: a
// fabric receiver needs the group-id on every datagram to route it.
type Coalescer struct {
	buf   []byte
	count int
	group uint32
}

// SetGroup tags every datagram this coalescer emits with gid. Group 0
// restores the legacy untagged format. Must not be called while frames
// are pending (the envelope header is laid down by the first append).
func (c *Coalescer) SetGroup(gid uint32) { c.group = gid }

// header returns the envelope header length for this coalescer's mode.
func (c *Coalescer) header() int {
	if c.group != 0 {
		return groupHeader
	}
	return coalesceHeader
}

// TryAppend encodes m into the pending datagram. It returns false —
// leaving the pending datagram unchanged — when adding m would overflow
// MaxCoalescedSize or the sub-frame count; the caller must flush and
// retry. A single frame larger than MaxCoalescedSize is accepted alone
// (it becomes an uncoalesced oversized datagram, exactly as before).
func (c *Coalescer) TryAppend(m Message) bool {
	if c.count >= maxCoalescedFrames {
		return false
	}
	if c.count == 0 {
		if c.group != 0 {
			c.buf = append(c.buf[:0], GroupMagic, 0, 0, 0, 0, 0)
			binary.LittleEndian.PutUint32(c.buf[1:], c.group)
		} else {
			c.buf = append(c.buf[:0], CoalesceMagic, 0)
		}
	}
	lenOff := len(c.buf)
	c.buf = append(c.buf, 0, 0, 0, 0)
	c.buf = AppendEncode(c.buf, m)
	binary.LittleEndian.PutUint32(c.buf[lenOff:], uint32(len(c.buf)-lenOff-4))
	if len(c.buf) > MaxCoalescedSize+c.header() && c.count > 0 {
		c.buf = c.buf[:lenOff]
		return false
	}
	c.count++
	return true
}

// Count returns the number of pending sub-frames.
func (c *Coalescer) Count() int { return c.count }

// Datagram returns the pending datagram: nil when empty, the bare frame
// when a single untagged message is pending (no envelope overhead for
// the common case), the enveloped datagram otherwise. Group-tagged
// coalescers always envelope — the routing tag must survive.
func (c *Coalescer) Datagram() []byte {
	switch {
	case c.count == 0:
		return nil
	case c.count == 1 && c.group == 0:
		return c.buf[coalesceHeader+4:]
	default:
		c.buf[c.header()-1] = byte(c.count)
		return c.buf
	}
}

// Reset clears the pending datagram, retaining the buffer.
func (c *Coalescer) Reset() {
	c.buf = c.buf[:0]
	c.count = 0
}
