package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

func sampleOAL() oal.List {
	l := oal.NewList()
	l.AppendUpdate(oal.ProposalID{Proposer: 0, Seq: 1},
		oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}, 123, 0, 0)
	l.Ack(oal.ProposalID{Proposer: 0, Seq: 1}, 2)
	l.AppendMembership(model.NewGroup(3, []model.ProcessID{0, 1, 2}))
	l.AppendUpdate(oal.ProposalID{Proposer: 2, Seq: 9},
		oal.Semantics{Order: oal.TimeOrder, Atomicity: oal.StrictAtomicity}, 456, 2, 0)
	l.MarkUndeliverable(oal.ProposalID{Proposer: 2, Seq: 9})
	return *l
}

func sampleMessages() []Message {
	h := Header{From: 3, SendTS: 1_000_000}
	return []Message{
		&Proposal{Header: h, ID: oal.ProposalID{Proposer: 3, Seq: 42},
			Sem: oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity},
			HDO: 17, Payload: []byte("deposit 100")},
		&Proposal{Header: h, ID: oal.ProposalID{Proposer: 3, Seq: 43}}, // empty payload
		&Decision{Header: h, Group: model.NewGroup(2, []model.ProcessID{0, 1, 3}),
			OAL: sampleOAL(), Alive: []model.ProcessID{0, 1, 3}, Lineage: 2},
		&Decision{Header: h}, // zero-value everything
		&Decision{Header: h, Group: model.NewGroup(2, []model.ProcessID{0, 1, 3}),
			OAL: sampleOAL(), Alive: []model.ProcessID{0, 1, 3}, Lineage: 2,
			BaseTS: 900_000, TruncBelow: 2}, // delta-encoded oal (v5)
		&NoDecision{Header: h, Suspect: 1, GroupSeq: 5, View: sampleOAL(),
			DPD:   []oal.ProposalID{{Proposer: 0, Seq: 7}, {Proposer: 2, Seq: 8}},
			Alive: []model.ProcessID{0, 3}},
		&NoDecision{Header: h, Suspect: 1, GroupSeq: 5, View: sampleOAL(),
			Alive: []model.ProcessID{0, 3}, BaseTS: 900_001, TruncBelow: 3},
		&Join{Header: h, JoinList: []model.ProcessID{0, 1, 2, 3, 4},
			CoveredOrdinal: 12, Lineage: 3, Forming: true},
		&Join{Header: h},
		&Reconfig{Header: h, ReconfigList: []model.ProcessID{1, 3},
			LastDecisionTS: 999_999, GroupSeq: 4, View: sampleOAL(),
			DPD: []oal.ProposalID{{Proposer: 1, Seq: 2}}, Alive: []model.ProcessID{1, 3}},
		&Nack{Header: h, Missing: []oal.ProposalID{{Proposer: 0, Seq: 3}, {Proposer: 2, Seq: 1}}},
		&Nack{Header: h},
		&State{Header: h, GroupSeq: 9, AppState: []byte("counter=42"),
			CoveredOrdinal: 17, SettledTimeTS: 654_321,
			Delivered: []oal.ProposalID{{Proposer: 1, Seq: 4}},
			FIFONext:  []FIFOEntry{{Proposer: 0, Seq: 5}, {Proposer: 2, Seq: 2}},
			Pending: []Proposal{
				{Header: Header{From: 2, SendTS: 77}, ID: oal.ProposalID{Proposer: 2, Seq: 2},
					Sem: oal.Semantics{Order: oal.TimeOrder, Atomicity: oal.StrictAtomicity},
					HDO: 3, Payload: []byte("pending-update")},
			}},
		&State{Header: h, GroupSeq: 9, CoveredOrdinal: 20, NoAppState: true,
			Replay: []ReplayEntry{
				{ID: oal.ProposalID{Proposer: 1, Seq: 5}, Ordinal: 18,
					Sem:    oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
					SendTS: 700_000, Payload: []byte("missed-update")},
				{ID: oal.ProposalID{Proposer: 0, Seq: 2}, Ordinal: oal.None,
					SendTS: 700_001, Payload: []byte("fast")},
			}},
		&State{Header: h},
		&OALReq{Header: h},
		&OALFull{Header: h, Group: model.NewGroup(4, []model.ProcessID{0, 1, 2}),
			Lineage: 2, DecTS: 800_000, OAL: sampleOAL()},
		&OALFull{Header: h},
		&Suspicion{Header: h, Suspect: 7, Origin: 3, Incarnation: 12, OriginTS: 1_000_000},
		&Suspicion{Header: h},
		&Refute{Header: h, Refuter: 7, Incarnation: 13, OriginTS: 1_000_500},
		&Refute{Header: h},
	}
}

// TestFrameVersionCompat: the version byte is per-frame, not global — a
// kind's version rises only when its own layout changes. Pre-v8 kinds
// still encode as v7, so a v7 peer in a mixed-version rolling upgrade
// decodes every frame an upgraded node sends except the v8 gossip kinds
// (Suspicion/Refute), which are the only frames stamped v8.
func TestFrameVersionCompat(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		want := uint8(compatVersion)
		switch m.(type) {
		case *Suspicion, *Refute:
			want = Version
		}
		if data[0] != want {
			t.Errorf("%v frame carries version %d, want %d", m.Kind(), data[0], want)
		}
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind(), err)
		}
		if got.Kind() != m.Kind() {
			t.Fatalf("kind mismatch: %v vs %v", got.Kind(), m.Kind())
		}
		if !messagesEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n in: %#v\nout: %#v", m.Kind(), m, got)
		}
	}
}

// messagesEqual compares messages modulo nil-vs-empty slices, which the
// codec does not (and need not) preserve.
func messagesEqual(a, b Message) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(m Message) Message {
	fix := func(ps *[]model.ProcessID) {
		if *ps == nil {
			*ps = []model.ProcessID{}
		}
	}
	fixIDs := func(ids *[]oal.ProposalID) {
		if *ids == nil {
			*ids = []oal.ProposalID{}
		}
	}
	fixOAL := func(l *oal.List) {
		if l.Next == 0 {
			l.Next = 1
		}
		if l.Entries == nil {
			l.Entries = []oal.Descriptor{}
		}
		for i := range l.Entries {
			fix(&l.Entries[i].Members)
		}
	}
	switch v := m.(type) {
	case *Proposal:
		c := *v
		if c.Payload == nil {
			c.Payload = []byte{}
		}
		return &c
	case *Decision:
		c := *v
		c.OAL = *v.OAL.Clone()
		fix(&c.Group.Members)
		fixOAL(&c.OAL)
		fix(&c.Alive)
		return &c
	case *NoDecision:
		c := *v
		c.View = *v.View.Clone()
		fixOAL(&c.View)
		fixIDs(&c.DPD)
		fix(&c.Alive)
		return &c
	case *Join:
		c := *v
		fix(&c.JoinList)
		return &c
	case *Nack:
		c := *v
		fixIDs(&c.Missing)
		return &c
	case *State:
		c := *v
		if c.AppState == nil {
			c.AppState = []byte{}
		}
		fixIDs(&c.Delivered)
		if c.FIFONext == nil {
			c.FIFONext = []FIFOEntry{}
		}
		if c.Pending == nil {
			c.Pending = []Proposal{}
		}
		for i := range c.Pending {
			if c.Pending[i].Payload == nil {
				c.Pending[i].Payload = []byte{}
			}
		}
		if c.Replay == nil {
			c.Replay = []ReplayEntry{}
		}
		for i := range c.Replay {
			if c.Replay[i].Payload == nil {
				c.Replay[i].Payload = []byte{}
			}
		}
		return &c
	case *Reconfig:
		c := *v
		c.View = *v.View.Clone()
		fixOAL(&c.View)
		fixIDs(&c.DPD)
		fix(&c.ReconfigList)
		fix(&c.Alive)
		return &c
	case *OALFull:
		c := *v
		c.OAL = *v.OAL.Clone()
		fix(&c.Group.Members)
		fixOAL(&c.OAL)
		return &c
	}
	return m
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	data := Encode(&Join{Header: Header{From: 0}})
	data[0] = 99
	if _, err := Decode(data); err == nil {
		t.Fatalf("accepted bad version")
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	data := Encode(&Join{Header: Header{From: 0}})
	data[1] = 200
	if _, err := Decode(data); err == nil {
		t.Fatalf("accepted bad kind")
	}
}

// Every single-byte flip anywhere in a frame must be rejected. This is
// the property the chaos middleware's Corrupt fault leans on: before
// the CRC-32C trailer, a flip inside a value field (an ordinal, an hdo)
// decoded "successfully" into garbage that poisoned protocol state.
func TestDecodeRejectsSingleByteCorruption(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for i := range data {
			for _, mask := range []byte{0x01, 0x80, 0xff} {
				mut := append([]byte(nil), data...)
				mut[i] ^= mask
				if _, err := Decode(mut); err == nil {
					t.Fatalf("%T: accepted frame with byte %d xor %#x", m, i, mask)
				}
			}
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		data := Encode(m)
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Fatalf("%v: accepted truncation at %d/%d", m.Kind(), cut, len(data))
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	data := Encode(&Join{Header: Header{From: 1}, JoinList: []model.ProcessID{1}})
	data = append(data, 0xAB)
	if _, err := Decode(data); err == nil {
		t.Fatalf("accepted trailing bytes")
	}
}

func TestDecodeRejectsHugeListLength(t *testing.T) {
	data := Encode(&Join{Header: Header{From: 1}})
	// JoinList length prefix sits at the end of the header: bytes
	// [2+8+8 : 2+8+8+4). Overwrite with a huge length.
	off := 2 + 8 + 8
	for i := 0; i < 4; i++ {
		data[off+i] = 0xFF
	}
	if _, err := Decode(data); err == nil {
		t.Fatalf("accepted huge list length")
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		_, _ = Decode(buf) // must not panic
	}
}

func TestDecodeMutatedMessagesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range sampleMessages() {
		orig := Encode(m)
		for i := 0; i < 500; i++ {
			data := bytes.Clone(orig)
			for k := 0; k < 1+rng.Intn(4); k++ {
				data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			}
			_, _ = Decode(data) // must not panic
		}
	}
}

func TestProposalRoundTripProperty(t *testing.T) {
	f := func(from int16, ts int64, proposer int16, seq uint64, ord, atom uint8, hdo uint64, payload []byte) bool {
		m := &Proposal{
			Header:  Header{From: model.ProcessID(from), SendTS: model.Time(ts)},
			ID:      oal.ProposalID{Proposer: model.ProcessID(proposer), Seq: seq},
			Sem:     oal.Semantics{Order: oal.Order(ord % 3), Atomicity: oal.Atomicity(atom % 3)},
			HDO:     oal.Ordinal(hdo),
			Payload: payload,
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return messagesEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindPredicates(t *testing.T) {
	if KindProposal.Control() {
		t.Error("proposal must not be a control message")
	}
	for _, k := range []Kind{KindDecision, KindNoDecision, KindJoin, KindReconfig} {
		if !k.Control() {
			t.Errorf("%v must be a control message", k)
		}
	}
	if Kind(0).Control() || Kind(77).Control() {
		t.Error("unknown kinds must not be control messages")
	}
	if KindNack.Control() || KindState.Control() {
		t.Error("service messages must not be control messages")
	}
	if KindOALReq.Control() || KindOALFull.Control() {
		t.Error("oal repair messages must not be control messages")
	}
	// Gossip kinds carry their own (origin, origin-ts) dedup identity and
	// arrive relayed, so they must bypass the per-sender control
	// freshness gate.
	if KindSuspicion.Control() || KindRefute.Control() {
		t.Error("gossip messages must not be control messages")
	}
}

func TestStringers(t *testing.T) {
	for _, m := range sampleMessages() {
		s, ok := m.(interface{ String() string })
		if !ok || s.String() == "" {
			t.Errorf("%T missing String", m)
		}
	}
	kinds := []Kind{KindProposal, KindDecision, KindNoDecision, KindJoin, KindReconfig, KindNack, KindState, KindOALReq, KindOALFull, KindSuspicion, KindRefute, Kind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d).String empty", k)
		}
	}
}

func TestEncodeUnknownTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Encode(badMessage{})
}

type badMessage struct{}

func (badMessage) Kind() Kind    { return KindProposal }
func (badMessage) Hdr() Header   { return Header{} }
func (badMessage) SetCtx(Causal) {}
