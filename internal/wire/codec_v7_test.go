package wire

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// encodeV6 replicates the version-6 frame layout (no causal context) so
// decode back-compat stays covered after the v7 bump.
func encodeV6(t *testing.T, m Message) []byte {
	t.Helper()
	e := encoder{buf: make([]byte, 0, 128)}
	e.u8(6)
	e.u8(uint8(m.Kind()))
	h := m.Hdr()
	e.i64(int64(h.From))
	e.i64(int64(h.SendTS))
	switch v := m.(type) {
	case *Proposal:
		e.proposalBody(v)
	case *Decision:
		e.group(v.Group)
		e.oal(&v.OAL)
		e.processList(v.Alive)
		e.u64(uint64(v.Lineage))
		e.i64(int64(v.BaseTS))
		e.u64(uint64(v.TruncBelow))
	case *Join:
		e.processList(v.JoinList)
		e.u64(uint64(v.CoveredOrdinal))
		e.u64(uint64(v.Lineage))
		if v.Forming {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case *Nack:
		e.proposalIDList(v.Missing)
	case *OALReq:
		// Header only.
	default:
		t.Fatalf("encodeV6: unsupported %T", m)
	}
	var crc [crcSize]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(e.buf, crcTable))
	return append(e.buf, crc[:]...)
}

// TestDecodeV6Frames: a peer still speaking wire v6 must interoperate —
// its frames decode, with the causal context reading as zero.
func TestDecodeV6Frames(t *testing.T) {
	h := Header{From: 3, SendTS: 1_000_000}
	msgs := []Message{
		&Proposal{Header: h, ID: oal.ProposalID{Proposer: 3, Seq: 42},
			HDO: 17, Payload: []byte("deposit 100")},
		&Decision{Header: h, Group: model.NewGroup(2, []model.ProcessID{0, 1, 3}),
			OAL: sampleOAL(), Alive: []model.ProcessID{0, 1, 3}, Lineage: 2,
			BaseTS: 900_000, TruncBelow: 2},
		&Join{Header: h, JoinList: []model.ProcessID{0, 1}, CoveredOrdinal: 12, Lineage: 3, Forming: true},
		&Nack{Header: h, Missing: []oal.ProposalID{{Proposer: 0, Seq: 3}}},
		&OALReq{Header: h},
	}
	for _, m := range msgs {
		data := encodeV6(t, m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: v6 decode: %v", m.Kind(), err)
		}
		if !messagesEqual(m, got) {
			t.Errorf("%v v6 decode mismatch:\n in: %#v\nout: %#v", m.Kind(), m, got)
		}
		if !got.Hdr().Ctx.Zero() {
			t.Errorf("%v: v6 frame decoded with causal context %+v", m.Kind(), got.Hdr().Ctx)
		}
	}
}

// TestCausalRoundTrip: the causal context survives encode/decode on every
// message kind, both through the fresh-allocation and scratch decoders.
func TestCausalRoundTrip(t *testing.T) {
	ctx := Causal{Origin: 2, Slot: 417, TS: 5_004_321}
	var dc Decoder
	for _, m := range sampleMessages() {
		stamp(m, ctx)
		data := Encode(m)
		for name, dec := range map[string]func([]byte) (Message, error){
			"fresh": Decode, "scratch": dc.Decode,
		} {
			got, err := dec(data)
			if err != nil {
				t.Fatalf("%v (%s): decode: %v", m.Kind(), name, err)
			}
			if got.Hdr().Ctx != ctx {
				t.Errorf("%v (%s): ctx %+v, want %+v", m.Kind(), name, got.Hdr().Ctx, ctx)
			}
			if !messagesEqual(m, got) {
				t.Errorf("%v (%s) round trip mismatch", m.Kind(), name)
			}
		}
	}
}

// TestScratchDecoderClearsStaleCtx: a v6 frame decoded after a v7 frame
// on the same scratch decoder must not inherit the v7 frame's context.
func TestScratchDecoderClearsStaleCtx(t *testing.T) {
	var dc Decoder
	tagged := &Nack{Header: Header{From: 1, SendTS: 10,
		Ctx: Causal{Origin: 1, Slot: 2, TS: 3}}}
	if got, err := dc.Decode(Encode(tagged)); err != nil || got.Hdr().Ctx.Zero() {
		t.Fatalf("tagged decode: %v, ctx=%+v", err, got.Hdr().Ctx)
	}
	plain := &Nack{Header: Header{From: 1, SendTS: 11}}
	got, err := dc.Decode(encodeV6(t, plain))
	if err != nil {
		t.Fatalf("v6 decode after v7: %v", err)
	}
	if !got.Hdr().Ctx.Zero() {
		t.Errorf("stale ctx leaked into v6 frame: %+v", got.Hdr().Ctx)
	}
}

// stamp sets the causal context on a message's embedded header without
// enumerating kinds: every concrete message embeds Header.
func stamp(m Message, ctx Causal) {
	switch v := m.(type) {
	case *Proposal:
		v.Ctx = ctx
	case *Decision:
		v.Ctx = ctx
	case *NoDecision:
		v.Ctx = ctx
	case *Join:
		v.Ctx = ctx
	case *Reconfig:
		v.Ctx = ctx
	case *Nack:
		v.Ctx = ctx
	case *State:
		v.Ctx = ctx
	case *OALReq:
		v.Ctx = ctx
	case *OALFull:
		v.Ctx = ctx
	case *Suspicion:
		v.Ctx = ctx
	case *Refute:
		v.Ctx = ctx
	}
}
