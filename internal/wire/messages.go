// Package wire defines the five message types of the timewheel group
// communication service and a compact, versioned binary codec for them.
//
// The membership protocol treats four of the five as control messages:
// decision, no-decision, join and reconfiguration. Proposal messages
// belong to the atomic broadcast but are included here because the same
// datagram service carries them.
package wire

import (
	"fmt"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// Kind discriminates message types on the wire.
type Kind uint8

const (
	// KindProposal is an atomic broadcast proposal carrying an update.
	KindProposal Kind = iota + 1
	// KindDecision is the decider's decision message: it assigns
	// ordinals, establishes stability, detects losses, and doubles as
	// the membership protocol's heartbeat.
	KindDecision
	// KindNoDecision requests the removal of a suspected decider
	// (single-failure election).
	KindNoDecision
	// KindJoin announces a process that wants to (re)join
	// (initial group formation and reintegration).
	KindJoin
	// KindReconfig is a time-slotted reconfiguration message
	// (multiple-failure election).
	KindReconfig
	// KindNack requests retransmission of proposal bodies the sender is
	// missing (the broadcast protocol's loss-recovery path; the paper's
	// decision messages "detect message losses" and this is the repair).
	KindNack
	// KindState carries the application state and pending proposals a
	// decider transfers to a joining member (paper §4.1: the decider
	// "retrieves its application state ... and updates the state of p").
	KindState
	// KindOALReq asks a peer for its full oal baseline. A member sends
	// one when it receives a delta-encoded decision it cannot apply
	// (missing or mismatched base); the answer is an OALFull.
	KindOALReq
	// KindOALFull carries a member's pristine copy of the last decision's
	// full oal — the shared baseline delta-encoded decisions diff
	// against. It repairs a peer that lost the baseline without waiting
	// for the decider's next periodic full-oal decision.
	KindOALFull
	// KindSuspicion is the k-successor surveillance gossip (wire v8): a
	// watcher that stopped hearing a watched peer spreads an
	// incarnation-numbered suspicion to its ring successors, who relay
	// it on until duplicate suppression stops the epidemic. It is not a
	// control message: dedup is by (origin, origin timestamp), not the
	// per-sender control freshness gate, because relayed copies arrive
	// with From different from the origin.
	KindSuspicion
	// KindRefute is the liveness counter-gossip (wire v8): a
	// falsely-suspected live process answers a suspicion naming it with
	// a higher incarnation number, proving it outlived the suspicion.
	KindRefute
)

func (k Kind) String() string {
	switch k {
	case KindProposal:
		return "proposal"
	case KindDecision:
		return "decision"
	case KindNoDecision:
		return "no-decision"
	case KindJoin:
		return "join"
	case KindReconfig:
		return "reconfiguration"
	case KindNack:
		return "nack"
	case KindState:
		return "state"
	case KindOALReq:
		return "oal-request"
	case KindOALFull:
		return "oal-full"
	case KindSuspicion:
		return "suspicion"
	case KindRefute:
		return "refute"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Control reports whether the membership protocol treats k as a control
// message (everything except proposals).
func (k Kind) Control() bool { return k != KindProposal && k >= KindDecision && k <= KindReconfig }

// Causal is the compact causal trace context stamped on every frame
// (wire v7): it names the protocol round a message belongs to so a
// decision's lifecycle — proposal, broadcast, retransmit, decision,
// delivery, view install — can be stitched back together across nodes
// from the per-node trace rings. Sixteen bytes on the wire, copied by
// value everywhere: the emit path stays allocation-free.
//
// A zero Causal means "no context" (pre-v7 frames decode to it).
type Causal struct {
	// Origin is the member whose protocol action started this causal
	// chain — the decider for decisions and everything downstream of
	// them, the proposer for a proposal's first hop.
	Origin uint32
	// Slot is the timewheel slot index (SendTS / slot length) of the
	// originating action: the round identity that communication-closed-
	// rounds reasoning groups a timeline by.
	Slot uint32
	// TS is the originating action's send timestamp. Together with
	// Origin it uniquely identifies the chain; receivers use it to match
	// a decision seen at A with its delivery (or absence) at B.
	TS int64
}

// Zero reports whether c carries no context.
func (c Causal) Zero() bool { return c == Causal{} }

// Header carries the fields common to every message.
type Header struct {
	From model.ProcessID
	// SendTS is the sender's synchronized-clock timestamp at send time.
	// Receivers use it to reject duplicates and old messages and to run
	// the expected-sender deadline scheme.
	SendTS model.Time
	// Ctx is the causal trace context (wire v7). It rides every frame
	// but is invisible to the protocol itself: only the observability
	// layer reads it.
	Ctx Causal
}

// SetCtx sets the causal trace context. Promoted to every concrete
// message through the embedded Header, it lets senders stamp a frame
// without enumerating kinds.
func (h *Header) SetCtx(c Causal) { h.Ctx = c }

// Message is any timewheel protocol message.
type Message interface {
	Kind() Kind
	Hdr() Header
	SetCtx(Causal)
}

// Proposal broadcasts an update on behalf of a client.
type Proposal struct {
	Header
	ID  oal.ProposalID
	Sem oal.Semantics
	// HDO is the highest ordinal the proposer had seen when sending;
	// with strong/strict atomicity the update may depend on any proposal
	// with ordinal <= HDO.
	HDO     oal.Ordinal
	Payload []byte
}

func (*Proposal) Kind() Kind    { return KindProposal }
func (m *Proposal) Hdr() Header { return m.Header }
func (m *Proposal) String() string {
	return fmt.Sprintf("proposal{%v ts=%v %v hdo=%d |payload|=%d}", m.ID, m.SendTS, m.Sem, m.HDO, len(m.Payload))
}

// Decision is sent by the current decider. It carries the oal (assigning
// ordinals and acknowledgement state), the sender's group view, and the
// piggybacked alive-list the failure detectors feed on.
type Decision struct {
	Header
	// Group is the decider's current group; decisions that change
	// membership carry the new group both here and as a membership
	// descriptor inside OAL.
	Group model.Group
	OAL   oal.List
	Alive []model.ProcessID
	// Lineage is the ordinal space this decision's oal belongs to: the
	// group sequence number of the formation that started numbering at
	// one. A receiver holding coverage from a different lineage must
	// discard that coverage before applying the oal.
	Lineage model.GroupSeq
	// BaseTS, when non-zero, marks a delta-encoded oal (wire v5): OAL
	// holds only the entries that are new or changed since the decision
	// whose send timestamp was BaseTS; the receiver reconstructs the
	// full list from its pristine copy of that decision. Zero means OAL
	// is the full list (and is what a v4 frame decodes to).
	BaseTS model.Time
	// TruncBelow is the sender's first retained ordinal when BaseTS is
	// non-zero: base entries below it were truncated and must be dropped
	// during reconstruction.
	TruncBelow oal.Ordinal
}

func (*Decision) Kind() Kind    { return KindDecision }
func (m *Decision) Hdr() Header { return m.Header }
func (m *Decision) String() string {
	return fmt.Sprintf("decision{from=%v ts=%v %v hi=%d}", m.From, m.SendTS, m.Group, m.OAL.HighestOrdinal())
}

// NoDecision is the single-failure election message: the sender suspects
// Suspect (usually the lost decider) and requests its removal. It carries
// the sender's current view of the oal and its delivered-but-unordered
// proposal descriptors (dpd), both needed by §4.3 to reconcile the log at
// the new decider.
type NoDecision struct {
	Header
	Suspect  model.ProcessID
	GroupSeq model.GroupSeq
	View     oal.List
	DPD      []oal.ProposalID
	Alive    []model.ProcessID
	// BaseTS, when non-zero, marks View as delta-encoded against the
	// decision whose send timestamp was BaseTS, exactly as on Decision.
	// TruncBelow is the sender's first retained ordinal.
	BaseTS     model.Time
	TruncBelow oal.Ordinal
}

func (*NoDecision) Kind() Kind    { return KindNoDecision }
func (m *NoDecision) Hdr() Header { return m.Header }
func (m *NoDecision) String() string {
	return fmt.Sprintf("no-decision{from=%v ts=%v suspect=%v g%d}", m.From, m.SendTS, m.Suspect, m.GroupSeq)
}

// Join announces that the sender wants to become a member. During initial
// group formation the join-list drives the majority agreement; during
// reintegration it advertises liveness to current members.
type Join struct {
	Header
	JoinList []model.ProcessID
	// CoveredOrdinal advertises the contiguous ordinal prefix the
	// sender recovered from its durable log (zero when it has none):
	// the decider uses it to serve a replay delta instead of a full
	// state transfer. Lineage names the ordinal space the coverage
	// belongs to — the group sequence number of the formation that
	// started it; coverage from a different lineage is meaningless and
	// must be ignored.
	CoveredOrdinal oal.Ordinal
	Lineage        model.GroupSeq
	// Forming distinguishes a join-state process competing in initial
	// group formation from a current member merely re-advertising an
	// outstanding state transfer. Only forming joins may enter
	// join-lists or the formation freshness ranking: a member's
	// re-advertisement carries durable coverage that would otherwise
	// outrank every real joiner and stall formation on a process that
	// never evaluates the formation rule.
	Forming bool
}

func (*Join) Kind() Kind    { return KindJoin }
func (m *Join) Hdr() Header { return m.Header }
func (m *Join) String() string {
	return fmt.Sprintf("join{from=%v ts=%v list=%v forming=%v}", m.From, m.SendTS, m.JoinList, m.Forming)
}

// Reconfig is the multiple-failure election message, sent once per cycle
// in the sender's time slot. It carries the sender's
// reconfiguration-list, the timestamp of the last decision it knows
// about, that decision's oal, and the dpd field (§4.3).
type Reconfig struct {
	Header
	ReconfigList []model.ProcessID
	// LastDecisionTS is the send timestamp of the newest decision the
	// sender has sent or received; the process proposing the highest
	// timestamp wins the election.
	LastDecisionTS model.Time
	// GroupSeq is the last group the sender is aware of.
	GroupSeq model.GroupSeq
	View     oal.List
	DPD      []oal.ProposalID
	Alive    []model.ProcessID
}

func (*Reconfig) Kind() Kind    { return KindReconfig }
func (m *Reconfig) Hdr() Header { return m.Header }
func (m *Reconfig) String() string {
	return fmt.Sprintf("reconfiguration{from=%v ts=%v list=%v lastDec=%v}", m.From, m.SendTS, m.ReconfigList, m.LastDecisionTS)
}

// Nack asks peers to retransmit the listed proposal bodies. A member
// sends one when a decision's oal references proposals it never received;
// any member holding a body answers with a unicast copy of the original
// proposal.
type Nack struct {
	Header
	Missing []oal.ProposalID
}

func (*Nack) Kind() Kind    { return KindNack }
func (m *Nack) Hdr() Header { return m.Header }
func (m *Nack) String() string {
	return fmt.Sprintf("nack{from=%v ts=%v missing=%v}", m.From, m.SendTS, m.Missing)
}

// FIFOEntry records the next expected per-proposer sequence number,
// transferred to joiners so their FIFO delivery resumes where the
// snapshot left off.
type FIFOEntry struct {
	Proposer model.ProcessID
	Seq      uint64
}

// State is the join-time state transfer a decider unicasts to a process
// it has just admitted: an application snapshot, which in-oal updates the
// snapshot already reflects, FIFO cursors, and the pending proposal
// bodies the joiner may be missing.
type State struct {
	Header
	GroupSeq model.GroupSeq
	AppState []byte
	// CoveredOrdinal is the highest ordinal the snapshot provably
	// covers: every update at or below it was truncated from the
	// sender's oal, and truncation requires stability, which requires
	// delivery — so its effect is inside AppState. The joiner must
	// never re-deliver such updates even if it later adopts a
	// less-truncated oal from another member.
	CoveredOrdinal oal.Ordinal
	// SettledTimeTS is the sender's time-order high-water mark: the
	// largest send timestamp among time-ordered updates that have
	// become deliverable. A joiner needs it to recognise time-order
	// stragglers whose competing entries were already truncated.
	SettledTimeTS model.Time
	Delivered     []oal.ProposalID
	FIFONext      []FIFOEntry
	Pending       []Proposal
	// NoAppState marks a delta transfer: the joiner advertised durable
	// coverage in the sender's lineage, so AppState is empty and Replay
	// carries only the updates the joiner is missing. The joiner keeps
	// its recovered application state and applies Replay on top.
	NoAppState bool
	Replay     []ReplayEntry
}

// ReplayEntry is one update in a delta state transfer: enough to
// deliver it exactly as the group did (ordinal order preserved by the
// slice order; oal.None marks fast-path deliveries).
type ReplayEntry struct {
	ID      oal.ProposalID
	Ordinal oal.Ordinal
	Sem     oal.Semantics
	SendTS  model.Time
	Payload []byte
}

func (*State) Kind() Kind    { return KindState }
func (m *State) Hdr() Header { return m.Header }
func (m *State) String() string {
	return fmt.Sprintf("state{from=%v ts=%v g%d |app|=%d pending=%d}",
		m.From, m.SendTS, m.GroupSeq, len(m.AppState), len(m.Pending))
}

// OALReq asks the receiver for its full oal baseline (see KindOALReq).
type OALReq struct {
	Header
}

func (*OALReq) Kind() Kind    { return KindOALReq }
func (m *OALReq) Hdr() Header { return m.Header }
func (m *OALReq) String() string {
	return fmt.Sprintf("oal-request{from=%v ts=%v}", m.From, m.SendTS)
}

// OALFull answers an OALReq with the sender's pristine copy of the last
// decision's full oal: the group it installed, the ordinal-space lineage,
// the decision's send timestamp (DecTS), and the decision's oal content
// exactly as broadcast. A receiver applies it like a full decision with
// SendTS = DecTS, which also re-establishes the delta baseline.
type OALFull struct {
	Header
	Group   model.Group
	Lineage model.GroupSeq
	DecTS   model.Time
	OAL     oal.List
}

func (*OALFull) Kind() Kind    { return KindOALFull }
func (m *OALFull) Hdr() Header { return m.Header }
func (m *OALFull) String() string {
	return fmt.Sprintf("oal-full{from=%v ts=%v dec=%v hi=%d}", m.From, m.SendTS, m.DecTS, m.OAL.HighestOrdinal())
}

// Suspicion is the epidemic suspicion gossip of the k-successor
// surveillance scheme (internal/surveil). Origin is the watcher whose
// deadline on Suspect expired; OriginTS is the origin's send timestamp,
// preserved across relays so every copy of one suspicion event shares a
// dedup identity. Incarnation is the suspect's incarnation as the origin
// knew it: the suspect refutes by gossiping a strictly higher one.
type Suspicion struct {
	Header
	Suspect     model.ProcessID
	Origin      model.ProcessID
	Incarnation uint64
	OriginTS    model.Time
}

func (*Suspicion) Kind() Kind    { return KindSuspicion }
func (m *Suspicion) Hdr() Header { return m.Header }
func (m *Suspicion) String() string {
	return fmt.Sprintf("suspicion{from=%v ts=%v suspect=%v origin=%v inc=%d ots=%v}",
		m.From, m.SendTS, m.Suspect, m.Origin, m.Incarnation, m.OriginTS)
}

// Refute is a falsely-suspected live process's answer to a Suspicion
// naming it: Refuter re-announces itself under a bumped incarnation
// number. Relayed like a suspicion, deduped by (Refuter, OriginTS).
type Refute struct {
	Header
	Refuter     model.ProcessID
	Incarnation uint64
	OriginTS    model.Time
}

func (*Refute) Kind() Kind    { return KindRefute }
func (m *Refute) Hdr() Header { return m.Header }
func (m *Refute) String() string {
	return fmt.Sprintf("refute{from=%v ts=%v refuter=%v inc=%d ots=%v}",
		m.From, m.SendTS, m.Refuter, m.Incarnation, m.OriginTS)
}

var (
	_ Message = (*Proposal)(nil)
	_ Message = (*Decision)(nil)
	_ Message = (*NoDecision)(nil)
	_ Message = (*Join)(nil)
	_ Message = (*Reconfig)(nil)
	_ Message = (*Nack)(nil)
	_ Message = (*State)(nil)
	_ Message = (*OALReq)(nil)
	_ Message = (*OALFull)(nil)
	_ Message = (*Suspicion)(nil)
	_ Message = (*Refute)(nil)
)
