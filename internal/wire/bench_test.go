package wire

import (
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// The hot-path acceptance criterion is allocation-freedom, not just
// speed: every benchmark below pins 0 allocs/op explicitly, so a
// regression fails `go test` as well as showing up in twbench numbers.

func assertZeroAllocs(b *testing.B, fn func()) {
	b.Helper()
	fn() // warm pools and scratch capacity before counting
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		b.Fatalf("%v allocs/op on the steady-state path, want 0", n)
	}
}

// BenchmarkEncodeDecision measures the heaviest frame on the hot send
// path: a full-oal decision with a populated window, encoded into a
// reused pooled buffer.
func BenchmarkEncodeDecision(b *testing.B) {
	dec := bigDecision(32)
	buf := GetBuffer()
	defer PutBuffer(buf)
	assertZeroAllocs(b, func() { EncodeTo(buf, dec) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTo(buf, dec)
	}
}

// BenchmarkDecodeDecision measures the matching receive path: scratch
// decoding of the same frame, slices reused across calls.
func BenchmarkDecodeDecision(b *testing.B) {
	frame := Encode(bigDecision(32))
	var dc Decoder
	assertZeroAllocs(b, func() {
		if _, err := dc.Decode(frame); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dc.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeCausalTagged measures the v7 tagged emit path: the
// same heavy decision with a causal context stamped into its header.
// The context is 16 flat bytes copied by value — the acceptance
// criterion is that tagging costs no allocation over the v6 path.
func BenchmarkEncodeCausalTagged(b *testing.B) {
	dec := bigDecision(32)
	dec.Ctx = Causal{Origin: 2, Slot: 417, TS: 5_000_000}
	buf := GetBuffer()
	defer PutBuffer(buf)
	assertZeroAllocs(b, func() { EncodeTo(buf, dec) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTo(buf, dec)
	}
}

// BenchmarkEncodeSuspicion measures the gossip emit path added in wire
// v8: a suspicion frame encoded into a reused pooled buffer. Gossip
// relays fan out k-fold on every suspicion event, so the surveillance
// path inherits the same 0 allocs/op acceptance criterion as the
// decision hot path.
func BenchmarkEncodeSuspicion(b *testing.B) {
	sus := &Suspicion{
		Header:      Header{From: 4, SendTS: 7_000_000, Ctx: Causal{Origin: 4, Slot: 200, TS: 7_000_000}},
		Suspect:     17,
		Origin:      4,
		Incarnation: 3,
		OriginTS:    7_000_000,
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	assertZeroAllocs(b, func() { EncodeTo(buf, sus) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeTo(buf, sus)
	}
}

// deltaDecision is what steady-state rotation ships under wire v5: a
// decision carrying only the entries changed since the baseline, with
// BaseTS pointing at it.
func deltaDecision(changed int) *Decision {
	l := oal.NewList()
	for i := 0; i < changed; i++ {
		id := oal.ProposalID{Proposer: model.ProcessID(i % 5), Seq: uint64(1000 + i)}
		l.AppendUpdate(id, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
			model.Time(6_000_000+i), oal.Ordinal(40+i), oal.AckSet(0b00111))
	}
	return &Decision{
		Header:     Header{From: 3, SendTS: 6_010_000},
		Group:      model.NewGroup(7, []model.ProcessID{0, 1, 2, 3, 4}),
		OAL:        *l,
		Alive:      []model.ProcessID{0, 1, 2, 3, 4},
		Lineage:    7,
		BaseTS:     5_000_000,
		TruncBelow: 3,
	}
}

// BenchmarkRoundTripDelta measures the whole steady-state wire round
// trip for a delta-encoded decision (4 changed entries against a
// 32-entry window): pooled encode then scratch decode.
func BenchmarkRoundTripDelta(b *testing.B) {
	dec := deltaDecision(4)
	buf := GetBuffer()
	defer PutBuffer(buf)
	var dc Decoder
	roundTrip := func() {
		frame := EncodeTo(buf, dec)
		if _, err := dc.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
	assertZeroAllocs(b, roundTrip)
	full := len(Encode(bigDecision(32)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.ReportMetric(float64(len(EncodeTo(buf, dec)))/float64(full), "delta_bytes_ratio")
}
