package wire

import (
	"testing"

	"timewheel/internal/durable"
	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// FuzzDecode drives the decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode and re-decode to an
// equivalent message (decode ∘ encode is idempotent on its image).
//
// Runs as a normal test over the seed corpus; `go test -fuzz=FuzzDecode
// ./internal/wire` explores further.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(KindDecision), 0, 0})
	// Durable-log record frames (internal/durable shares the codec
	// idioms): the wire decoder must reject them cleanly, including the
	// truncated-tail and corrupt-CRC shapes recovery repairs.
	for _, s := range durable.FuzzSeedFrames() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		// The scratch decoder must agree with the allocating one, on
		// both acceptance and content.
		var dc Decoder
		ms, errs := dc.Decode(data)
		if (err == nil) != (errs == nil) {
			t.Fatalf("decoder disagreement: Decode err=%v, scratch err=%v", err, errs)
		}
		if err != nil {
			return
		}
		if !messagesEqual(m, ms) {
			t.Fatalf("scratch decode diverged:\n%#v\n%#v", m, ms)
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.Kind() != m2.Kind() || m.Hdr() != m2.Hdr() {
			t.Fatalf("round trip changed identity: %v vs %v", m, m2)
		}
		if !messagesEqual(normalize(m), normalize(m2)) {
			t.Fatalf("round trip changed content:\n%#v\n%#v", m, m2)
		}
	})
}

// FuzzSplitCoalesced drives the coalesced-datagram splitter with
// arbitrary bytes: it must never panic, and whatever splits cleanly into
// decodable frames must survive re-coalescing and re-splitting intact.
func FuzzSplitCoalesced(f *testing.F) {
	var c Coalescer
	for _, m := range sampleMessages() {
		c.TryAppend(m)
	}
	f.Add(append([]byte(nil), c.Datagram()...))
	c.Reset()
	c.TryAppend(&Nack{Header: Header{From: 1, SendTS: 2}})
	c.TryAppend(&OALReq{Header: Header{From: 3, SendTS: 4}})
	f.Add(append([]byte(nil), c.Datagram()...))
	f.Add([]byte{CoalesceMagic})
	f.Add([]byte{CoalesceMagic, 0})
	f.Add([]byte{CoalesceMagic, 2, 1, 0, 0, 0, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		var msgs []Message
		clean := true
		if err := SplitCoalesced(data, func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				clean = false
				return
			}
			msgs = append(msgs, m)
		}); err != nil || !clean || len(msgs) == 0 {
			return
		}
		var rc Coalescer
		for _, m := range msgs {
			if !rc.TryAppend(m) {
				return // legitimately over the size budget
			}
		}
		var back []Message
		if err := SplitCoalesced(rc.Datagram(), func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				t.Fatalf("re-split decode: %v", derr)
			}
			back = append(back, m)
		}); err != nil {
			if len(msgs) == 1 {
				// A single message re-coalesces to a bare frame.
				m, derr := Decode(rc.Datagram())
				if derr != nil || !messagesEqual(msgs[0], m) {
					t.Fatalf("bare re-coalesce mismatch: %v", derr)
				}
				return
			}
			t.Fatalf("re-split: %v", err)
		}
		if len(back) != len(msgs) {
			t.Fatalf("re-split %d frames, want %d", len(back), len(msgs))
		}
		for i := range msgs {
			if !messagesEqual(msgs[i], back[i]) {
				t.Fatalf("frame %d changed across re-coalesce", i)
			}
		}
	})
}

// FuzzSplitGrouped drives the v6 group-tagged splitter with arbitrary
// bytes: it must never panic, GroupOf must agree with the raw header on
// everything the splitter accepts, and whatever splits cleanly must
// survive re-coalescing under the same group-id and re-splitting intact
// — including unknown group-ids, which a demux skips but the splitter
// itself handles group-blind (it must never mangle frames into some
// other group's envelope).
func FuzzSplitGrouped(f *testing.F) {
	var c Coalescer
	c.SetGroup(3)
	for _, m := range sampleMessages() {
		c.TryAppend(m)
	}
	f.Add(append([]byte(nil), c.Datagram()...))
	c.Reset()
	c.SetGroup(0xFFFFFFFF) // unknown-group shape: split must still be clean
	c.TryAppend(&Nack{Header: Header{From: 1, SendTS: 2}})
	f.Add(append([]byte(nil), c.Datagram()...))
	f.Add([]byte{GroupMagic})
	f.Add([]byte{GroupMagic, 3, 0, 0, 0})
	f.Add([]byte{GroupMagic, 3, 0, 0, 0, 0})
	f.Add([]byte{GroupMagic, 3, 0, 0, 0, 2, 1, 0, 0, 0, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		var msgs []Message
		clean := true
		err := SplitGrouped(data, func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				clean = false
				return
			}
			msgs = append(msgs, m)
		})
		gid, gok := GroupOf(data)
		if err == nil && !gok {
			t.Fatal("splitter accepted an envelope GroupOf rejects")
		}
		if err != nil || !clean || len(msgs) == 0 {
			return
		}
		var rc Coalescer
		rc.SetGroup(gid)
		for _, m := range msgs {
			if !rc.TryAppend(m) {
				return // legitimately over the size budget
			}
		}
		re := rc.Datagram()
		if gid != 0 {
			if rg, ok := GroupOf(re); !ok || rg != gid {
				t.Fatalf("re-coalesce changed group: %d → %d", gid, rg)
			}
		}
		var back []Message
		split := SplitGrouped
		if gid == 0 {
			// Group 0 re-coalesces onto the legacy path (bare or 0xC0).
			if len(msgs) == 1 {
				m, derr := Decode(re)
				if derr != nil || !messagesEqual(msgs[0], m) {
					t.Fatalf("bare re-coalesce mismatch: %v", derr)
				}
				return
			}
			split = SplitCoalesced
		}
		if err := split(re, func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				t.Fatalf("re-split decode: %v", derr)
			}
			back = append(back, m)
		}); err != nil {
			t.Fatalf("re-split: %v", err)
		}
		if len(back) != len(msgs) {
			t.Fatalf("re-split %d frames, want %d", len(back), len(msgs))
		}
		for i := range msgs {
			if !messagesEqual(msgs[i], back[i]) {
				t.Fatalf("frame %d changed across re-coalesce", i)
			}
		}
	})
}

// FuzzGossipRoundTrip fuzzes the structured fields of the wire v8
// surveillance gossip kinds through the codec: any Suspicion/Refute must
// survive an encode/decode round trip bit-exact (they carry the dedup
// identity and incarnation number the epidemic relies on).
func FuzzGossipRoundTrip(f *testing.F) {
	f.Add(int64(3), int64(1_000_000), int64(7), int64(3), uint64(12), int64(999), false)
	f.Add(int64(-1), int64(0), int64(0), int64(-1), uint64(1<<63), int64(-5), true)
	f.Fuzz(func(t *testing.T, from, ts, suspect, origin int64, inc uint64, originTS int64, refute bool) {
		h := Header{From: model.ProcessID(from), SendTS: model.Time(ts)}
		var m Message
		if refute {
			m = &Refute{Header: h, Refuter: model.ProcessID(suspect),
				Incarnation: inc, OriginTS: model.Time(originTS)}
		} else {
			m = &Suspicion{Header: h, Suspect: model.ProcessID(suspect),
				Origin: model.ProcessID(origin), Incarnation: inc,
				OriginTS: model.Time(originTS)}
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("mismatch: %#v vs %#v", m, got)
		}
		var dc Decoder
		gs, err := dc.Decode(Encode(m))
		if err != nil || !messagesEqual(m, gs) {
			t.Fatalf("scratch mismatch: %v %#v vs %#v", err, m, gs)
		}
	})
}

// FuzzProposalRoundTrip fuzzes structured proposal fields through the
// codec.
func FuzzProposalRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), uint64(1), uint8(0), uint8(0), uint64(0), []byte("payload"))
	f.Add(int64(-1), int64(1<<40), uint64(1<<63), uint8(2), uint8(2), uint64(99), []byte{})
	f.Fuzz(func(t *testing.T, from, ts int64, seq uint64, ord, atom uint8, hdo uint64, payload []byte) {
		m := &Proposal{
			Header:  Header{From: model.ProcessID(from), SendTS: model.Time(ts)},
			ID:      oal.ProposalID{Proposer: model.ProcessID(from), Seq: seq},
			Sem:     oal.Semantics{Order: oal.Order(ord % 3), Atomicity: oal.Atomicity(atom % 3)},
			HDO:     oal.Ordinal(hdo),
			Payload: payload,
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("mismatch: %#v vs %#v", m, got)
		}
	})
}
