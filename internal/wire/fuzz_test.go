package wire

import (
	"testing"

	"timewheel/internal/durable"
	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// FuzzDecode drives the decoder with arbitrary bytes: it must never
// panic, and whatever it accepts must re-encode and re-decode to an
// equivalent message (decode ∘ encode is idempotent on its image).
//
// Runs as a normal test over the seed corpus; `go test -fuzz=FuzzDecode
// ./internal/wire` explores further.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(KindDecision), 0, 0})
	// Durable-log record frames (internal/durable shares the codec
	// idioms): the wire decoder must reject them cleanly, including the
	// truncated-tail and corrupt-CRC shapes recovery repairs.
	for _, s := range durable.FuzzSeedFrames() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		// The scratch decoder must agree with the allocating one, on
		// both acceptance and content.
		var dc Decoder
		ms, errs := dc.Decode(data)
		if (err == nil) != (errs == nil) {
			t.Fatalf("decoder disagreement: Decode err=%v, scratch err=%v", err, errs)
		}
		if err != nil {
			return
		}
		if !messagesEqual(m, ms) {
			t.Fatalf("scratch decode diverged:\n%#v\n%#v", m, ms)
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.Kind() != m2.Kind() || m.Hdr() != m2.Hdr() {
			t.Fatalf("round trip changed identity: %v vs %v", m, m2)
		}
		if !messagesEqual(normalize(m), normalize(m2)) {
			t.Fatalf("round trip changed content:\n%#v\n%#v", m, m2)
		}
	})
}

// FuzzSplitCoalesced drives the coalesced-datagram splitter with
// arbitrary bytes: it must never panic, and whatever splits cleanly into
// decodable frames must survive re-coalescing and re-splitting intact.
func FuzzSplitCoalesced(f *testing.F) {
	var c Coalescer
	for _, m := range sampleMessages() {
		c.TryAppend(m)
	}
	f.Add(append([]byte(nil), c.Datagram()...))
	c.Reset()
	c.TryAppend(&Nack{Header: Header{From: 1, SendTS: 2}})
	c.TryAppend(&OALReq{Header: Header{From: 3, SendTS: 4}})
	f.Add(append([]byte(nil), c.Datagram()...))
	f.Add([]byte{CoalesceMagic})
	f.Add([]byte{CoalesceMagic, 0})
	f.Add([]byte{CoalesceMagic, 2, 1, 0, 0, 0, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		var msgs []Message
		clean := true
		if err := SplitCoalesced(data, func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				clean = false
				return
			}
			msgs = append(msgs, m)
		}); err != nil || !clean || len(msgs) == 0 {
			return
		}
		var rc Coalescer
		for _, m := range msgs {
			if !rc.TryAppend(m) {
				return // legitimately over the size budget
			}
		}
		var back []Message
		if err := SplitCoalesced(rc.Datagram(), func(frame []byte) {
			m, derr := Decode(frame)
			if derr != nil {
				t.Fatalf("re-split decode: %v", derr)
			}
			back = append(back, m)
		}); err != nil {
			if len(msgs) == 1 {
				// A single message re-coalesces to a bare frame.
				m, derr := Decode(rc.Datagram())
				if derr != nil || !messagesEqual(msgs[0], m) {
					t.Fatalf("bare re-coalesce mismatch: %v", derr)
				}
				return
			}
			t.Fatalf("re-split: %v", err)
		}
		if len(back) != len(msgs) {
			t.Fatalf("re-split %d frames, want %d", len(back), len(msgs))
		}
		for i := range msgs {
			if !messagesEqual(msgs[i], back[i]) {
				t.Fatalf("frame %d changed across re-coalesce", i)
			}
		}
	})
}

// FuzzProposalRoundTrip fuzzes structured proposal fields through the
// codec.
func FuzzProposalRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), uint64(1), uint8(0), uint8(0), uint64(0), []byte("payload"))
	f.Add(int64(-1), int64(1<<40), uint64(1<<63), uint8(2), uint8(2), uint64(99), []byte{})
	f.Fuzz(func(t *testing.T, from, ts int64, seq uint64, ord, atom uint8, hdo uint64, payload []byte) {
		m := &Proposal{
			Header:  Header{From: model.ProcessID(from), SendTS: model.Time(ts)},
			ID:      oal.ProposalID{Proposer: model.ProcessID(from), Seq: seq},
			Sem:     oal.Semantics{Order: oal.Order(ord % 3), Atomicity: oal.Atomicity(atom % 3)},
			HDO:     oal.Ordinal(hdo),
			Payload: payload,
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("mismatch: %#v vs %#v", m, got)
		}
	})
}
