package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"timewheel/internal/model"
	"timewheel/internal/oal"
)

// Version is the wire-format version byte leading every encoded message.
// Version 2 added the durable-recovery fields: Join coverage
// advertisement, Decision lineage, and State delta replay. Version 3
// added the Join forming flag. Version 4 appended a CRC-32C frame check:
// the structural validation (version, kind, length prefixes) catches
// most transport corruption, but a bit flip inside a value field —
// an ordinal, an HDO — used to decode "successfully" into garbage that
// poisoned the protocol state. Now it is rejected at decode and shows
// up in the receiver's drop counter. Version 5 added oal delta encoding
// (Decision BaseTS/TruncBelow, NoDecision BaseTS) and the OALReq/OALFull
// baseline-repair messages; v4 frames still decode (the delta fields
// read as zero, i.e. "full oal"). Version 6 added the group-tagged
// coalesced envelope (GroupMagic, coalesce.go) so one socket can carry
// frames for many timewheel groups; the frame format itself is
// unchanged and v4/v5 frames still decode. Version 7 piggybacks the
// causal trace context (Causal: origin member, wheel slot, originating
// send-TS — 16 bytes) on every frame, encoded immediately after the
// header's SendTS; v4–v6 frames still decode (Ctx reads as zero).
// Version 8 added the Suspicion/Refute gossip kinds for k-successor
// surveillance. Only those new kinds carry the v8 version byte: every
// pre-existing kind's frame format is unchanged since v7 and keeps
// encoding as v7 (see frameVersion), so during a mixed-version rolling
// upgrade v7 peers still decode the whole pre-v8 protocol in both
// directions and reject exactly the new gossip frames — which only v8
// nodes emit or understand anyway.
const Version = 8

// compatVersion is the version byte the pre-v8 kinds carry: their
// format last changed in v7, and a per-frame version that only rises
// when the frame's own layout changes is what keeps old decoders
// working across an upgrade.
const compatVersion = 7

// minVersion is the oldest wire format Decode still accepts.
const minVersion = 4

// frameVersion returns the version byte a frame is stamped with: the
// lowest version whose decoder understands this kind's current layout.
func frameVersion(m Message) uint8 {
	switch m.(type) {
	case *Suspicion, *Refute:
		return Version
	default:
		return compatVersion
	}
}

// ErrTruncated reports a message that ends before its declared contents.
var ErrTruncated = errors.New("wire: truncated message")

// ErrBadVersion reports an unsupported wire-format version.
var ErrBadVersion = errors.New("wire: unsupported version")

// ErrBadKind reports an unknown message kind byte.
var ErrBadKind = errors.New("wire: unknown message kind")

// ErrChecksum reports a frame whose CRC-32C trailer does not match its
// contents — corruption in transit.
var ErrChecksum = errors.New("wire: checksum mismatch")

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64); crcSize is the frame trailer length.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const crcSize = 4

// maxListLen bounds decoded list lengths to keep a corrupt length prefix
// from causing huge allocations.
const maxListLen = 1 << 20

// maxPooledBuffer keeps oversized frames (large state transfers) from
// pinning memory in the encode-buffer pool.
const maxPooledBuffer = 64 * 1024

// Buffer is a pooled encode buffer for the send hot path: obtain one
// with GetBuffer, fill it with EncodeTo, hand the frame to a transport
// (transports copy synchronously before returning), then recycle it
// with PutBuffer.
type Buffer struct{ B []byte }

var bufferPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 2048)} }}

// GetBuffer returns an empty pooled encode buffer.
func GetBuffer() *Buffer { return bufferPool.Get().(*Buffer) }

// PutBuffer recycles b. The caller must no longer reference b.B.
func PutBuffer(b *Buffer) {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	b.B = b.B[:0]
	bufferPool.Put(b)
}

// EncodeTo serialises m into b, replacing its contents, and returns the
// encoded frame (aliasing b.B).
func EncodeTo(b *Buffer, m Message) []byte {
	b.B = AppendEncode(b.B[:0], m)
	return b.B
}

// Encode serialises m into a fresh byte slice.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, 128), m)
}

// AppendEncode serialises m, appends the frame to dst and returns the
// extended slice. The frame's CRC covers only the appended bytes, so
// frames compose into coalesced datagrams and reused buffers.
func AppendEncode(dst []byte, m Message) []byte {
	e := encoder{buf: dst}
	start := len(dst)
	e.u8(frameVersion(m))
	e.u8(uint8(m.Kind()))
	h := m.Hdr()
	e.i64(int64(h.From))
	e.i64(int64(h.SendTS))
	// v7: the causal context rides right behind the header, before the
	// kind-specific body, so decode fills it into Header in one place.
	e.u32(h.Ctx.Origin)
	e.u32(h.Ctx.Slot)
	e.i64(h.Ctx.TS)
	switch v := m.(type) {
	case *Proposal:
		e.proposalBody(v)
	case *Decision:
		e.group(v.Group)
		e.oal(&v.OAL)
		e.processList(v.Alive)
		e.u64(uint64(v.Lineage))
		e.i64(int64(v.BaseTS))
		e.u64(uint64(v.TruncBelow))
	case *NoDecision:
		e.i64(int64(v.Suspect))
		e.u64(uint64(v.GroupSeq))
		e.oal(&v.View)
		e.proposalIDList(v.DPD)
		e.processList(v.Alive)
		e.i64(int64(v.BaseTS))
		e.u64(uint64(v.TruncBelow))
	case *Join:
		// JoinList stays first: older tooling located it at a fixed
		// offset right after the header.
		e.processList(v.JoinList)
		e.u64(uint64(v.CoveredOrdinal))
		e.u64(uint64(v.Lineage))
		if v.Forming {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case *Reconfig:
		e.processList(v.ReconfigList)
		e.i64(int64(v.LastDecisionTS))
		e.u64(uint64(v.GroupSeq))
		e.oal(&v.View)
		e.proposalIDList(v.DPD)
		e.processList(v.Alive)
	case *Nack:
		e.proposalIDList(v.Missing)
	case *State:
		e.u64(uint64(v.GroupSeq))
		e.bytes(v.AppState)
		e.u64(uint64(v.CoveredOrdinal))
		e.i64(int64(v.SettledTimeTS))
		e.proposalIDList(v.Delivered)
		e.u32(uint32(len(v.FIFONext)))
		for _, f := range v.FIFONext {
			e.i64(int64(f.Proposer))
			e.u64(f.Seq)
		}
		e.u32(uint32(len(v.Pending)))
		for i := range v.Pending {
			p := &v.Pending[i]
			e.i64(int64(p.From))
			e.i64(int64(p.SendTS))
			e.proposalBody(p)
		}
		if v.NoAppState {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(len(v.Replay)))
		for i := range v.Replay {
			r := &v.Replay[i]
			e.proposalID(r.ID)
			e.u64(uint64(r.Ordinal))
			e.u8(uint8(r.Sem.Order))
			e.u8(uint8(r.Sem.Atomicity))
			e.i64(int64(r.SendTS))
			e.bytes(r.Payload)
		}
	case *OALReq:
		// Header only.
	case *OALFull:
		e.group(v.Group)
		e.u64(uint64(v.Lineage))
		e.i64(int64(v.DecTS))
		e.oal(&v.OAL)
	case *Suspicion:
		e.i64(int64(v.Suspect))
		e.i64(int64(v.Origin))
		e.u64(v.Incarnation)
		e.i64(int64(v.OriginTS))
	case *Refute:
		e.i64(int64(v.Refuter))
		e.u64(v.Incarnation)
		e.i64(int64(v.OriginTS))
	default:
		panic(fmt.Sprintf("wire: cannot encode %T", m))
	}
	var crc [crcSize]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(e.buf[start:], crcTable))
	return append(e.buf, crc[:]...)
}

func (e *encoder) proposalBody(v *Proposal) {
	e.proposalID(v.ID)
	e.u8(uint8(v.Sem.Order))
	e.u8(uint8(v.Sem.Atomicity))
	e.u64(uint64(v.HDO))
	e.bytes(v.Payload)
}

// Decoder decodes frames into internal per-kind scratch structs, reusing
// their slices across calls: steady-state decoding of a stable message
// mix performs no allocations. The returned message (and every slice it
// references) is valid only until the next Decode call on the same
// Decoder — callers that retain messages (the live protocol path keeps
// pending no-decisions, for example) must use the package-level Decode.
type Decoder struct {
	proposal   Proposal
	decision   Decision
	noDecision NoDecision
	join       Join
	reconfig   Reconfig
	nack       Nack
	state      State
	oalReq     OALReq
	oalFull    OALFull
	suspicion  Suspicion
	refute     Refute
}

// Decode parses a frame, reusing dc's scratch. See the type comment for
// the aliasing contract.
func (dc *Decoder) Decode(data []byte) (Message, error) {
	return decodeFrame(data, dc)
}

// Decode parses a message previously produced by Encode. The result is
// freshly allocated and safe to retain.
func Decode(data []byte) (Message, error) {
	return decodeFrame(data, nil)
}

func decodeFrame(data []byte, sc *Decoder) (Message, error) {
	if len(data) < crcSize+1 {
		return nil, ErrTruncated
	}
	body, trailer := data[:len(data)-crcSize], data[len(data)-crcSize:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	d := decoder{buf: body}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver < minVersion || ver > Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	d.ver = ver
	kindB, err := d.u8()
	if err != nil {
		return nil, err
	}
	var h Header
	if from, err := d.i64(); err != nil {
		return nil, err
	} else {
		h.From = model.ProcessID(from)
	}
	if ts, err := d.i64(); err != nil {
		return nil, err
	} else {
		h.SendTS = model.Time(ts)
	}
	// Pre-v7 frames carry no causal context; the explicit zero matters
	// because scratch decoding reuses per-kind structs across frames.
	h.Ctx = Causal{}
	if d.ver >= 7 {
		var err error
		if h.Ctx.Origin, err = d.u32(); err != nil {
			return nil, err
		}
		if h.Ctx.Slot, err = d.u32(); err != nil {
			return nil, err
		}
		if h.Ctx.TS, err = d.i64(); err != nil {
			return nil, err
		}
	}

	switch Kind(kindB) {
	case KindProposal:
		var m *Proposal
		if sc != nil {
			m = &sc.proposal
		} else {
			m = &Proposal{}
		}
		m.Header = h
		if err = d.proposalBody(m); err != nil {
			return nil, err
		}
		return m, d.done()
	case KindDecision:
		var m *Decision
		if sc != nil {
			m = &sc.decision
		} else {
			m = &Decision{}
		}
		m.Header = h
		if m.Group, err = d.group(m.Group.Members); err != nil {
			return nil, err
		}
		if err = d.oal(&m.OAL); err != nil {
			return nil, err
		}
		if m.Alive, err = d.processList(m.Alive); err != nil {
			return nil, err
		}
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.Lineage = model.GroupSeq(u)
		// v4 frames predate delta encoding: zero means "full oal".
		m.BaseTS, m.TruncBelow = 0, 0
		if d.ver >= 5 {
			var ts int64
			if ts, err = d.i64(); err != nil {
				return nil, err
			}
			m.BaseTS = model.Time(ts)
			if u, err = d.u64(); err != nil {
				return nil, err
			}
			m.TruncBelow = oal.Ordinal(u)
		}
		return m, d.done()
	case KindNoDecision:
		var m *NoDecision
		if sc != nil {
			m = &sc.noDecision
		} else {
			m = &NoDecision{}
		}
		m.Header = h
		var s int64
		if s, err = d.i64(); err != nil {
			return nil, err
		}
		m.Suspect = model.ProcessID(s)
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.GroupSeq = model.GroupSeq(u)
		if err = d.oal(&m.View); err != nil {
			return nil, err
		}
		if m.DPD, err = d.proposalIDList(m.DPD); err != nil {
			return nil, err
		}
		if m.Alive, err = d.processList(m.Alive); err != nil {
			return nil, err
		}
		m.BaseTS, m.TruncBelow = 0, 0
		if d.ver >= 5 {
			var ts int64
			if ts, err = d.i64(); err != nil {
				return nil, err
			}
			m.BaseTS = model.Time(ts)
			if u, err = d.u64(); err != nil {
				return nil, err
			}
			m.TruncBelow = oal.Ordinal(u)
		}
		return m, d.done()
	case KindJoin:
		var m *Join
		if sc != nil {
			m = &sc.join
		} else {
			m = &Join{}
		}
		m.Header = h
		if m.JoinList, err = d.processList(m.JoinList); err != nil {
			return nil, err
		}
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.CoveredOrdinal = oal.Ordinal(u)
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.Lineage = model.GroupSeq(u)
		var fb uint8
		if fb, err = d.u8(); err != nil {
			return nil, err
		}
		m.Forming = fb != 0
		return m, d.done()
	case KindReconfig:
		var m *Reconfig
		if sc != nil {
			m = &sc.reconfig
		} else {
			m = &Reconfig{}
		}
		m.Header = h
		if m.ReconfigList, err = d.processList(m.ReconfigList); err != nil {
			return nil, err
		}
		var ts int64
		if ts, err = d.i64(); err != nil {
			return nil, err
		}
		m.LastDecisionTS = model.Time(ts)
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.GroupSeq = model.GroupSeq(u)
		if err = d.oal(&m.View); err != nil {
			return nil, err
		}
		if m.DPD, err = d.proposalIDList(m.DPD); err != nil {
			return nil, err
		}
		if m.Alive, err = d.processList(m.Alive); err != nil {
			return nil, err
		}
		return m, d.done()
	case KindNack:
		var m *Nack
		if sc != nil {
			m = &sc.nack
		} else {
			m = &Nack{}
		}
		m.Header = h
		if m.Missing, err = d.proposalIDList(m.Missing); err != nil {
			return nil, err
		}
		return m, d.done()
	case KindState:
		var m *State
		if sc != nil {
			m = &sc.state
		} else {
			m = &State{}
		}
		m.Header = h
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.GroupSeq = model.GroupSeq(u)
		if m.AppState, err = d.bytes(m.AppState); err != nil {
			return nil, err
		}
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.CoveredOrdinal = oal.Ordinal(u)
		var sts int64
		if sts, err = d.i64(); err != nil {
			return nil, err
		}
		m.SettledTimeTS = model.Time(sts)
		if m.Delivered, err = d.proposalIDList(m.Delivered); err != nil {
			return nil, err
		}
		var n int
		if n, err = d.listLen(); err != nil {
			return nil, err
		}
		if err = d.need(16 * n); err != nil {
			return nil, err
		}
		m.FIFONext = listFor(m.FIFONext, n)
		for i := range m.FIFONext {
			p, _ := d.i64()
			s, _ := d.u64()
			m.FIFONext[i] = FIFOEntry{Proposer: model.ProcessID(p), Seq: s}
		}
		if n, err = d.listLen(); err != nil {
			return nil, err
		}
		// Each pending proposal is at least header+id+sem+hdo+payload
		// length — guard before sizing the slice.
		if err = d.need(41 * n); err != nil {
			return nil, err
		}
		m.Pending = listFor(m.Pending, n)
		for i := range m.Pending {
			pr := &m.Pending[i]
			var v int64
			if v, err = d.i64(); err != nil {
				return nil, err
			}
			pr.From = model.ProcessID(v)
			if v, err = d.i64(); err != nil {
				return nil, err
			}
			pr.SendTS = model.Time(v)
			if err = d.proposalBody(pr); err != nil {
				return nil, err
			}
		}
		var b uint8
		if b, err = d.u8(); err != nil {
			return nil, err
		}
		m.NoAppState = b != 0
		if n, err = d.listLen(); err != nil {
			return nil, err
		}
		if err = d.need(38 * n); err != nil {
			return nil, err
		}
		m.Replay = listFor(m.Replay, n)
		for i := range m.Replay {
			r := &m.Replay[i]
			if r.ID, err = d.proposalID(); err != nil {
				return nil, err
			}
			if u, err = d.u64(); err != nil {
				return nil, err
			}
			r.Ordinal = oal.Ordinal(u)
			if b, err = d.u8(); err != nil {
				return nil, err
			}
			r.Sem.Order = oal.Order(b)
			if b, err = d.u8(); err != nil {
				return nil, err
			}
			r.Sem.Atomicity = oal.Atomicity(b)
			var ts int64
			if ts, err = d.i64(); err != nil {
				return nil, err
			}
			r.SendTS = model.Time(ts)
			if r.Payload, err = d.bytes(r.Payload); err != nil {
				return nil, err
			}
		}
		return m, d.done()
	case KindOALReq:
		var m *OALReq
		if sc != nil {
			m = &sc.oalReq
		} else {
			m = &OALReq{}
		}
		m.Header = h
		return m, d.done()
	case KindOALFull:
		var m *OALFull
		if sc != nil {
			m = &sc.oalFull
		} else {
			m = &OALFull{}
		}
		m.Header = h
		if m.Group, err = d.group(m.Group.Members); err != nil {
			return nil, err
		}
		var u uint64
		if u, err = d.u64(); err != nil {
			return nil, err
		}
		m.Lineage = model.GroupSeq(u)
		var ts int64
		if ts, err = d.i64(); err != nil {
			return nil, err
		}
		m.DecTS = model.Time(ts)
		if err = d.oal(&m.OAL); err != nil {
			return nil, err
		}
		return m, d.done()
	case KindSuspicion:
		var m *Suspicion
		if sc != nil {
			m = &sc.suspicion
		} else {
			m = &Suspicion{}
		}
		m.Header = h
		var v int64
		if v, err = d.i64(); err != nil {
			return nil, err
		}
		m.Suspect = model.ProcessID(v)
		if v, err = d.i64(); err != nil {
			return nil, err
		}
		m.Origin = model.ProcessID(v)
		if m.Incarnation, err = d.u64(); err != nil {
			return nil, err
		}
		if v, err = d.i64(); err != nil {
			return nil, err
		}
		m.OriginTS = model.Time(v)
		return m, d.done()
	case KindRefute:
		var m *Refute
		if sc != nil {
			m = &sc.refute
		} else {
			m = &Refute{}
		}
		m.Header = h
		var v int64
		if v, err = d.i64(); err != nil {
			return nil, err
		}
		m.Refuter = model.ProcessID(v)
		if m.Incarnation, err = d.u64(); err != nil {
			return nil, err
		}
		if v, err = d.i64(); err != nil {
			return nil, err
		}
		m.OriginTS = model.Time(v)
		return m, d.done()
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kindB)
	}
}

func (d *decoder) proposalBody(m *Proposal) error {
	var err error
	if m.ID, err = d.proposalID(); err != nil {
		return err
	}
	var b uint8
	if b, err = d.u8(); err != nil {
		return err
	}
	m.Sem.Order = oal.Order(b)
	if b, err = d.u8(); err != nil {
		return err
	}
	m.Sem.Atomicity = oal.Atomicity(b)
	var u uint64
	if u, err = d.u64(); err != nil {
		return err
	}
	m.HDO = oal.Ordinal(u)
	if m.Payload, err = d.bytes(m.Payload); err != nil {
		return err
	}
	return nil
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *encoder) bytes(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("wire: payload too large")
	}
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) processList(ps []model.ProcessID) {
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.i64(int64(p))
	}
}

func (e *encoder) proposalID(id oal.ProposalID) {
	e.i64(int64(id.Proposer))
	e.u64(id.Seq)
}

func (e *encoder) proposalIDList(ids []oal.ProposalID) {
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.proposalID(id)
	}
}

func (e *encoder) group(g model.Group) {
	e.u64(uint64(g.Seq))
	e.processList(g.Members)
}

func (e *encoder) oal(l *oal.List) {
	e.u64(uint64(l.Next))
	e.u32(uint32(len(l.Entries)))
	for i := range l.Entries {
		d := &l.Entries[i]
		e.u8(uint8(d.Kind))
		e.u64(uint64(d.Ordinal))
		e.proposalID(d.ID)
		e.i64(int64(d.SendTS))
		e.u8(uint8(d.Sem.Order))
		e.u8(uint8(d.Sem.Atomicity))
		e.u64(uint64(d.HDO))
		e.u64(uint64(d.Acks))
		if d.Undeliverable {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.i64(int64(d.StableTS))
		e.u64(uint64(d.GroupSeq))
		e.processList(d.Members)
	}
}

type decoder struct {
	buf []byte
	off int
	ver uint8
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return ErrTruncated
	}
	return nil
}

func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) listLen() (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if n > maxListLen {
		return 0, fmt.Errorf("wire: list length %d exceeds limit", n)
	}
	return int(n), nil
}

// listFor returns a length-n slice, reusing s's backing array when it
// fits. Harvested elements keep their old nested slices so decode loops
// that fill every field reuse those allocations too.
func listFor[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]T, n)
	copy(out, s[:cap(s)])
	return out
}

// bytes decodes a length-prefixed byte string, reusing prev's backing
// array when it fits.
func (d *decoder) bytes(prev []byte) ([]byte, error) {
	n, err := d.listLen()
	if err != nil {
		return nil, err
	}
	if err := d.need(n); err != nil {
		return nil, err
	}
	out := listFor(prev, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out, nil
}

func (d *decoder) processList(prev []model.ProcessID) ([]model.ProcessID, error) {
	n, err := d.listLen()
	if err != nil {
		return nil, err
	}
	if err := d.need(8 * n); err != nil {
		return nil, err
	}
	out := listFor(prev, n)
	for i := range out {
		v, _ := d.i64()
		out[i] = model.ProcessID(v)
	}
	return out, nil
}

func (d *decoder) proposalID() (oal.ProposalID, error) {
	p, err := d.i64()
	if err != nil {
		return oal.ProposalID{}, err
	}
	s, err := d.u64()
	if err != nil {
		return oal.ProposalID{}, err
	}
	return oal.ProposalID{Proposer: model.ProcessID(p), Seq: s}, nil
}

func (d *decoder) proposalIDList(prev []oal.ProposalID) ([]oal.ProposalID, error) {
	n, err := d.listLen()
	if err != nil {
		return nil, err
	}
	if err := d.need(16 * n); err != nil {
		return nil, err
	}
	out := listFor(prev, n)
	for i := range out {
		out[i], _ = d.proposalID()
	}
	return out, nil
}

func (d *decoder) group(prevMembers []model.ProcessID) (model.Group, error) {
	seq, err := d.u64()
	if err != nil {
		return model.Group{}, err
	}
	ms, err := d.processList(prevMembers)
	if err != nil {
		return model.Group{}, err
	}
	return model.Group{Seq: model.GroupSeq(seq), Members: ms}, nil
}

func (d *decoder) oal(l *oal.List) error {
	next, err := d.u64()
	if err != nil {
		return err
	}
	l.Next = oal.Ordinal(next)
	n, err := d.listLen()
	if err != nil {
		return err
	}
	// Every descriptor occupies at least 52 bytes on the wire — guard
	// before sizing the slice so a corrupt length cannot force a huge
	// allocation.
	if err := d.need(52 * n); err != nil {
		return err
	}
	l.Entries = listFor(l.Entries, n)
	for i := range l.Entries {
		desc := &l.Entries[i]
		var b uint8
		if b, err = d.u8(); err != nil {
			return err
		}
		desc.Kind = oal.DescriptorKind(b)
		var u uint64
		if u, err = d.u64(); err != nil {
			return err
		}
		desc.Ordinal = oal.Ordinal(u)
		if desc.ID, err = d.proposalID(); err != nil {
			return err
		}
		var ts int64
		if ts, err = d.i64(); err != nil {
			return err
		}
		desc.SendTS = model.Time(ts)
		if b, err = d.u8(); err != nil {
			return err
		}
		desc.Sem.Order = oal.Order(b)
		if b, err = d.u8(); err != nil {
			return err
		}
		desc.Sem.Atomicity = oal.Atomicity(b)
		if u, err = d.u64(); err != nil {
			return err
		}
		desc.HDO = oal.Ordinal(u)
		if u, err = d.u64(); err != nil {
			return err
		}
		desc.Acks = oal.AckSet(u)
		if b, err = d.u8(); err != nil {
			return err
		}
		desc.Undeliverable = b != 0
		if ts, err = d.i64(); err != nil {
			return err
		}
		desc.StableTS = model.Time(ts)
		if u, err = d.u64(); err != nil {
			return err
		}
		desc.GroupSeq = model.GroupSeq(u)
		if desc.Members, err = d.processList(desc.Members); err != nil {
			return err
		}
	}
	return nil
}

func (d *decoder) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}
