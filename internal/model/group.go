package model

import (
	"fmt"
	"slices"
	"strings"
)

// GroupSeq numbers successive groups (views). The paper calls the group
// history "a sequence of completed majority groups"; GroupSeq is the index
// of a group in that sequence.
type GroupSeq uint64

// Group is a membership view: a set of team members, cyclically ordered by
// ProcessID, that agree on the replicated service state. The decider role
// rotates through Members in cyclic order.
type Group struct {
	// Seq is the position of this group in the view sequence.
	Seq GroupSeq
	// Members are the group's members, sorted ascending. The cyclic
	// "successor" order used for decider rotation follows this slice.
	Members []ProcessID
}

// NewGroup builds a group with the given sequence number and members. The
// member list is copied, sorted, and deduplicated.
func NewGroup(seq GroupSeq, members []ProcessID) Group {
	ms := slices.Clone(members)
	slices.Sort(ms)
	ms = slices.Compact(ms)
	return Group{Seq: seq, Members: ms}
}

// Size returns the number of members.
func (g Group) Size() int { return len(g.Members) }

// Contains reports whether p is a member of g.
func (g Group) Contains(p ProcessID) bool {
	_, ok := slices.BinarySearch(g.Members, p)
	return ok
}

// Successor returns the member that follows p in the cyclic order. p need
// not itself be a member: the successor is the first member strictly after
// p, wrapping around. Returns NoProcess for an empty group.
func (g Group) Successor(p ProcessID) ProcessID {
	if len(g.Members) == 0 {
		return NoProcess
	}
	i, _ := slices.BinarySearch(g.Members, p+1)
	return g.Members[i%len(g.Members)]
}

// Predecessor returns the member that precedes p in the cyclic order.
// p need not itself be a member. Returns NoProcess for an empty group.
func (g Group) Predecessor(p ProcessID) ProcessID {
	if len(g.Members) == 0 {
		return NoProcess
	}
	i, _ := slices.BinarySearch(g.Members, p)
	return g.Members[(i-1+len(g.Members))%len(g.Members)]
}

// Remove returns a copy of g with p removed and the sequence advanced.
func (g Group) Remove(p ProcessID) Group {
	ms := make([]ProcessID, 0, len(g.Members))
	for _, m := range g.Members {
		if m != p {
			ms = append(ms, m)
		}
	}
	return Group{Seq: g.Seq + 1, Members: ms}
}

// Equal reports whether two groups have the same sequence number and
// member set.
func (g Group) Equal(h Group) bool {
	return g.Seq == h.Seq && slices.Equal(g.Members, h.Members)
}

// SameMembers reports whether two groups have the same member set,
// ignoring sequence numbers.
func (g Group) SameMembers(h Group) bool { return slices.Equal(g.Members, h.Members) }

// Clone returns a deep copy of g.
func (g Group) Clone() Group {
	return Group{Seq: g.Seq, Members: slices.Clone(g.Members)}
}

func (g Group) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "g%d{", uint64(g.Seq))
	for i, m := range g.Members {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(m.String())
	}
	b.WriteByte('}')
	return b.String()
}

// ProcessSet is an unordered set of processes, used for alive-lists,
// join-lists and reconfiguration-lists.
type ProcessSet map[ProcessID]struct{}

// NewProcessSet builds a set from the given members.
func NewProcessSet(members ...ProcessID) ProcessSet {
	s := make(ProcessSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts p.
func (s ProcessSet) Add(p ProcessID) { s[p] = struct{}{} }

// Remove deletes p.
func (s ProcessSet) Remove(p ProcessID) { delete(s, p) }

// Has reports membership of p.
func (s ProcessSet) Has(p ProcessID) bool {
	_, ok := s[p]
	return ok
}

// Sorted returns the set's members in ascending order.
func (s ProcessSet) Sorted() []ProcessID {
	out := make([]ProcessID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Equal reports whether two sets have identical contents.
func (s ProcessSet) Equal(t ProcessSet) bool {
	if len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s ProcessSet) Clone() ProcessSet {
	out := make(ProcessSet, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}

func (s ProcessSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}
