package model

import (
	"testing"
	"testing/quick"
)

func TestNewGroupSortsAndDedups(t *testing.T) {
	g := NewGroup(1, []ProcessID{3, 1, 2, 1, 3})
	want := []ProcessID{1, 2, 3}
	if g.Size() != 3 {
		t.Fatalf("size %d, want 3", g.Size())
	}
	for i, m := range g.Members {
		if m != want[i] {
			t.Fatalf("members %v, want %v", g.Members, want)
		}
	}
}

func TestGroupContains(t *testing.T) {
	g := NewGroup(0, []ProcessID{0, 2, 4})
	for _, p := range []ProcessID{0, 2, 4} {
		if !g.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []ProcessID{1, 3, 5, NoProcess} {
		if g.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
}

func TestGroupSuccessorPredecessor(t *testing.T) {
	g := NewGroup(0, []ProcessID{1, 3, 6})
	cases := []struct{ p, succ, pred ProcessID }{
		{1, 3, 6},
		{3, 6, 1},
		{6, 1, 3},
		// Non-members: successor is the first member after p, predecessor
		// the last member before p.
		{0, 1, 6},
		{2, 3, 1},
		{7, 1, 6},
	}
	for _, c := range cases {
		if got := g.Successor(c.p); got != c.succ {
			t.Errorf("Successor(%v) = %v, want %v", c.p, got, c.succ)
		}
		if got := g.Predecessor(c.p); got != c.pred {
			t.Errorf("Predecessor(%v) = %v, want %v", c.p, got, c.pred)
		}
	}
}

func TestGroupSuccessorEmptyAndSingleton(t *testing.T) {
	empty := NewGroup(0, nil)
	if got := empty.Successor(3); got != NoProcess {
		t.Errorf("empty successor: %v", got)
	}
	if got := empty.Predecessor(3); got != NoProcess {
		t.Errorf("empty predecessor: %v", got)
	}
	solo := NewGroup(0, []ProcessID{5})
	if got := solo.Successor(5); got != 5 {
		t.Errorf("singleton successor: %v", got)
	}
	if got := solo.Predecessor(5); got != 5 {
		t.Errorf("singleton predecessor: %v", got)
	}
}

func TestGroupSuccessorInverseOfPredecessor(t *testing.T) {
	f := func(raw []uint8, probe uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ms := make([]ProcessID, len(raw))
		for i, r := range raw {
			ms[i] = ProcessID(r % 32)
		}
		g := NewGroup(0, ms)
		for _, m := range g.Members {
			if g.Predecessor(g.Successor(m)) != m && g.Size() > 1 {
				return false
			}
		}
		// Walking Size() successors from any member returns to it.
		start := g.Members[int(probe)%g.Size()]
		cur := start
		for i := 0; i < g.Size(); i++ {
			cur = g.Successor(cur)
		}
		return cur == start
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupRemove(t *testing.T) {
	g := NewGroup(4, []ProcessID{0, 1, 2})
	h := g.Remove(1)
	if h.Seq != 5 {
		t.Errorf("seq %d, want 5", h.Seq)
	}
	if h.Contains(1) || !h.Contains(0) || !h.Contains(2) {
		t.Errorf("members after remove: %v", h.Members)
	}
	// Removing a non-member still advances the view.
	i := g.Remove(9)
	if i.Seq != 5 || !i.SameMembers(g) {
		t.Errorf("remove non-member: %v", i)
	}
	// Original unchanged.
	if !g.Contains(1) {
		t.Errorf("Remove mutated receiver")
	}
}

func TestGroupEqualAndClone(t *testing.T) {
	g := NewGroup(2, []ProcessID{0, 1})
	h := g.Clone()
	if !g.Equal(h) {
		t.Fatalf("clone not equal")
	}
	h.Members[0] = 9
	if g.Members[0] == 9 {
		t.Fatalf("clone shares storage")
	}
	if g.Equal(NewGroup(3, []ProcessID{0, 1})) {
		t.Errorf("Equal ignored seq")
	}
	if g.Equal(NewGroup(2, []ProcessID{0, 2})) {
		t.Errorf("Equal ignored members")
	}
	if !g.SameMembers(NewGroup(7, []ProcessID{0, 1})) {
		t.Errorf("SameMembers should ignore seq")
	}
}

func TestGroupString(t *testing.T) {
	g := NewGroup(3, []ProcessID{2, 0})
	if got := g.String(); got != "g3{p0,p2}" {
		t.Errorf("String: %q", got)
	}
}

func TestProcessSetBasics(t *testing.T) {
	s := NewProcessSet(3, 1, 3)
	if len(s) != 2 {
		t.Fatalf("len %d, want 2", len(s))
	}
	s.Add(2)
	if !s.Has(2) || !s.Has(1) || !s.Has(3) || s.Has(0) {
		t.Errorf("membership wrong: %v", s)
	}
	s.Remove(1)
	if s.Has(1) {
		t.Errorf("Remove failed")
	}
	sorted := s.Sorted()
	if len(sorted) != 2 || sorted[0] != 2 || sorted[1] != 3 {
		t.Errorf("Sorted: %v", sorted)
	}
	if got := s.String(); got != "{p2,p3}" {
		t.Errorf("String: %q", got)
	}
}

func TestProcessSetEqualClone(t *testing.T) {
	s := NewProcessSet(1, 2)
	u := s.Clone()
	if !s.Equal(u) {
		t.Fatalf("clone not equal")
	}
	u.Add(3)
	if s.Equal(u) {
		t.Errorf("Equal ignored extra member")
	}
	if s.Has(3) {
		t.Errorf("clone shares storage")
	}
	if s.Equal(NewProcessSet(1, 3)) {
		t.Errorf("Equal ignored differing member")
	}
}
