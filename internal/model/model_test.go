package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 1_500_000
	if got := tm.Add(2 * Second); got != 3_500_000 {
		t.Errorf("Add: got %d, want 3500000", got)
	}
	if got := Time(5_000_000).Sub(Time(2_000_000)); got != 3*Second {
		t.Errorf("Sub: got %v, want 3s", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.000000s"},
		{1_500_000, "1.500000s"},
		{Infinity, "+inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationStdRoundTrip(t *testing.T) {
	d := 1500 * Millisecond
	if got := d.Std(); got != 1500*time.Millisecond {
		t.Errorf("Std: got %v", got)
	}
	if got := FromStd(2 * time.Second); got != 2*Second {
		t.Errorf("FromStd: got %v", got)
	}
	// Sub-microsecond truncation.
	if got := FromStd(1500 * time.Nanosecond); got != 1 {
		t.Errorf("FromStd truncation: got %v, want 1us", got)
	}
}

func TestProcessIDString(t *testing.T) {
	if got := ProcessID(3).String(); got != "p3" {
		t.Errorf("got %q", got)
	}
	if got := NoProcess.String(); got != "p?" {
		t.Errorf("got %q", got)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	for _, n := range []int{1, 3, 5, 16, 101} {
		p := DefaultParams(n)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultParams(%d) invalid: %v", n, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams(5)
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero N", func(p *Params) { p.N = 0 }},
		{"negative N", func(p *Params) { p.N = -1 }},
		{"zero Delta", func(p *Params) { p.Delta = 0 }},
		{"negative Sigma", func(p *Params) { p.Sigma = -1 }},
		{"negative Rho", func(p *Params) { p.RhoPPM = -5 }},
		{"negative Epsilon", func(p *Params) { p.Epsilon = -1 }},
		{"zero D", func(p *Params) { p.D = 0 }},
		{"negative SlotPad", func(p *Params) { p.SlotPad = -1 }},
	}
	for _, c := range cases {
		p := base
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", c.name)
		}
	}
}

func TestSlotGeometry(t *testing.T) {
	p := DefaultParams(4)
	sl := p.SlotLen()
	if sl < p.D+p.Delta {
		t.Fatalf("slot length %v shorter than D+Delta", sl)
	}
	if p.CycleLen() != 4*sl {
		t.Fatalf("cycle length %v, want %v", p.CycleLen(), 4*sl)
	}
	// Slot 0 belongs to p0, slot 1 to p1, ... wrapping each cycle.
	for slot := 0; slot < 12; slot++ {
		at := Time(int64(slot)*int64(sl)) + Time(sl/2)
		want := ProcessID(slot % 4)
		if got := p.SlotOwner(at); got != want {
			t.Errorf("slot %d: owner %v, want %v", slot, got, want)
		}
		if got := p.SlotStart(at); got != Time(int64(slot)*int64(sl)) {
			t.Errorf("slot %d: start %v", slot, got)
		}
	}
	if got := p.Cycle(Time(int64(p.CycleLen())*3 + 5)); got != 3 {
		t.Errorf("Cycle: got %d, want 3", got)
	}
	// Negative times clamp to 0.
	if got := p.SlotOwner(-5); got != 0 {
		t.Errorf("negative time owner: %v", got)
	}
	if got := p.Cycle(-5); got != 0 {
		t.Errorf("negative time cycle: %v", got)
	}
	if got := p.SlotStart(-5); got != 0 {
		t.Errorf("negative time slot start: %v", got)
	}
}

func TestNextSlotOf(t *testing.T) {
	p := DefaultParams(4)
	sl := int64(p.SlotLen())
	// From the middle of p0's slot, p1's next slot starts at 1*sl.
	if got := p.NextSlotOf(1, Time(sl/2)); got != Time(sl) {
		t.Errorf("next slot of p1: %v, want %v", got, Time(sl))
	}
	// p0's next slot from inside p0's slot is a full cycle ahead.
	if got := p.NextSlotOf(0, Time(sl/2)); got != Time(4*sl) {
		t.Errorf("next slot of p0: %v, want %v", got, Time(4*sl))
	}
	// From the exact start of a slot, the same owner's next slot is one
	// cycle later (strictly after t).
	if got := p.NextSlotOf(2, Time(2*sl)); got != Time(6*sl) {
		t.Errorf("next slot of p2 from its own start: %v, want %v", got, Time(6*sl))
	}
	// Unknown process.
	if got := p.NextSlotOf(9, 0); got != Infinity {
		t.Errorf("next slot of out-of-range process: %v", got)
	}
	if got := p.NextSlotOf(NoProcess, 0); got != Infinity {
		t.Errorf("next slot of NoProcess: %v", got)
	}
}

func TestNextSlotOfAlwaysInOwnersSlot(t *testing.T) {
	p := DefaultParams(7)
	f := func(rawT int64, rawQ uint8) bool {
		t0 := Time(rawT % int64(10*p.CycleLen()))
		if t0 < 0 {
			t0 = -t0
		}
		q := ProcessID(int(rawQ) % p.N)
		next := p.NextSlotOf(q, t0)
		return next > t0 && p.SlotOwner(next) == q && p.SlotStart(next) == next &&
			next.Sub(t0) <= p.CycleLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMajority(t *testing.T) {
	cases := []struct{ n, maj int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {8, 5}, {9, 5}}
	for _, c := range cases {
		p := DefaultParams(c.n)
		if got := p.Majority(); got != c.maj {
			t.Errorf("N=%d: majority %d, want %d", c.n, got, c.maj)
		}
		if p.IsMajority(c.maj - 1) {
			t.Errorf("N=%d: %d should not be a majority", c.n, c.maj-1)
		}
		if !p.IsMajority(c.maj) {
			t.Errorf("N=%d: %d should be a majority", c.n, c.maj)
		}
	}
}
