// Package model defines the shared vocabulary of the timed asynchronous
// system model used throughout the timewheel group communication service:
// process identifiers, the simulated notion of time, and the protocol
// parameters (delta, sigma, rho, epsilon, D) from which slot and cycle
// arithmetic is derived.
//
// The timed asynchronous model (Cristian & Fetzer) characterises a system
// by bounds that hold "most of the time" rather than always:
//
//   - delta: one-way time-out delay of the datagram service. A message
//     delivered within delta is "timely"; a later one has suffered a
//     performance failure.
//   - sigma: maximum scheduling delay. A process reacting to a trigger
//     within sigma is "timely".
//   - rho: maximum drift rate of a correct hardware clock.
//   - epsilon: maximum deviation between two synchronized clocks.
//   - D: maximum interval after which a decider must send a decision
//     message.
//
// The membership protocol's time-slotted elections divide synchronized
// clock time into cycles of N slots, one slot per team member, each slot
// at least D+delta long.
package model

import (
	"fmt"
	"time"
)

// Time is an instant on a clock (hardware, synchronized, or the
// simulation's real-time base), in microseconds since an arbitrary epoch.
// Microsecond granularity matches the 1990s-era Unix clocks the paper
// assumes while keeping arithmetic exact in int64.
type Time int64

// Duration is a span of Time, in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a Time later than any reachable instant; used as the "no
// deadline pending" sentinel.
const Infinity Time = 1<<63 - 1

// FromStd converts a time.Duration to a model Duration (truncating to
// microseconds).
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds() / 1000) }

// Std converts a model Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return fmt.Sprintf("%d.%06ds", int64(t)/1e6, int64(t)%1e6)
}

func (d Duration) String() string { return d.Std().String() }

// ProcessID identifies a team member. Team members are cyclically ordered
// by their ProcessID: the successor of process i in a group is the next
// group member found scanning i+1, i+2, ... modulo the team size.
type ProcessID int

// NoProcess is the zero-value-adjacent sentinel for "no process".
const NoProcess ProcessID = -1

func (p ProcessID) String() string {
	if p == NoProcess {
		return "p?"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Params collects the timed-asynchronous model constants and the derived
// slot geometry for a team of N processes.
type Params struct {
	// N is the total number of team members. Process IDs are 0..N-1.
	N int

	// Delta is the one-way time-out delay of the datagram service.
	Delta Duration

	// Sigma is the maximum scheduling delay of the process-management
	// service.
	Sigma Duration

	// Rho is the maximum hardware clock drift rate, expressed in parts
	// per million (the paper's rho of 1e-4..1e-6 is 100..1 ppm).
	RhoPPM int64

	// Epsilon is the maximum deviation between two synchronized clocks.
	Epsilon Duration

	// D is the maximum time interval after which a decider sends a
	// decision message.
	D Duration

	// SlotPad is extra slack added to the minimum slot length D+Delta.
	// A small pad absorbs epsilon and sigma so that slot boundaries
	// observed on different synchronized clocks overlap safely.
	SlotPad Duration
}

// DefaultParams returns a parameter set representative of the paper's
// testbed: a lightly loaded 10 Mb/s Ethernet LAN of Unix workstations.
func DefaultParams(n int) Params {
	return Params{
		N:       n,
		Delta:   10 * Millisecond,
		Sigma:   2 * Millisecond,
		RhoPPM:  100, // 1e-4, the paper's worst-case quartz drift
		Epsilon: 2 * Millisecond,
		D:       20 * Millisecond,
		SlotPad: 5 * Millisecond,
	}
}

// Validate reports whether the parameter set is internally consistent.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("model: N must be >= 1, got %d", p.N)
	case p.Delta <= 0:
		return fmt.Errorf("model: Delta must be positive, got %v", p.Delta)
	case p.Sigma < 0:
		return fmt.Errorf("model: Sigma must be non-negative, got %v", p.Sigma)
	case p.RhoPPM < 0:
		return fmt.Errorf("model: RhoPPM must be non-negative, got %d", p.RhoPPM)
	case p.Epsilon < 0:
		return fmt.Errorf("model: Epsilon must be non-negative, got %v", p.Epsilon)
	case p.D <= 0:
		return fmt.Errorf("model: D must be positive, got %v", p.D)
	case p.SlotPad < 0:
		return fmt.Errorf("model: SlotPad must be non-negative, got %v", p.SlotPad)
	}
	return nil
}

// SlotLen is the length of one time slot. The paper requires each slot to
// be at least D+delta long; we add SlotPad slack for clock deviation and
// scheduling delay.
func (p Params) SlotLen() Duration { return p.D + p.Delta + p.SlotPad }

// CycleLen is the length of one full cycle of N slots.
func (p Params) CycleLen() Duration { return Duration(p.N) * p.SlotLen() }

// SlotOwner returns the team member that owns the slot containing
// synchronized-clock time t. Slot ownership rotates through process IDs in
// cyclic order, anchoring slot 0 of cycle 0 at time 0.
func (p Params) SlotOwner(t Time) ProcessID {
	if t < 0 {
		t = 0
	}
	slot := int64(t) / int64(p.SlotLen())
	return ProcessID(slot % int64(p.N))
}

// Cycle returns the index of the cycle containing time t.
func (p Params) Cycle(t Time) int64 {
	if t < 0 {
		t = 0
	}
	return int64(t) / int64(p.CycleLen())
}

// SlotStart returns the start time of the slot containing t.
func (p Params) SlotStart(t Time) Time {
	if t < 0 {
		t = 0
	}
	sl := int64(p.SlotLen())
	return Time(int64(t) / sl * sl)
}

// NextSlotOf returns the start time of the next slot owned by process q
// strictly after time t.
func (p Params) NextSlotOf(q ProcessID, t Time) Time {
	if q < 0 || int(q) >= p.N {
		return Infinity
	}
	sl := int64(p.SlotLen())
	if t < 0 {
		t = 0
	}
	slot := int64(t) / sl // slot index containing t
	// First slot index > slot owned by q.
	rem := (int64(q) - (slot+1)%int64(p.N) + int64(p.N)) % int64(p.N)
	return Time((slot + 1 + rem) * sl)
}

// Majority returns the minimum size of a majority of the team.
func (p Params) Majority() int { return p.N/2 + 1 }

// IsMajority reports whether k processes form a majority of the team.
func (p Params) IsMajority(k int) bool { return k >= p.Majority() }
