package member

import (
	"testing"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// fakeEnv is a scripted environment: the test controls the clock and
// inspects outgoing messages and timers.
type fakeEnv struct {
	now      model.Time
	sent     []wire.Message
	unicasts []struct {
		To model.ProcessID
		M  wire.Message
	}
	timers map[TimerID]model.Time
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{now: 1_000_000, timers: make(map[TimerID]model.Time)}
}

func (e *fakeEnv) Now() model.Time          { return e.now }
func (e *fakeEnv) Broadcast(m wire.Message) { e.sent = append(e.sent, m) }
func (e *fakeEnv) Unicast(to model.ProcessID, m wire.Message) {
	e.unicasts = append(e.unicasts, struct {
		To model.ProcessID
		M  wire.Message
	}{to, m})
}
func (e *fakeEnv) SetTimer(id TimerID, at model.Time) { e.timers[id] = at }
func (e *fakeEnv) CancelTimer(id TimerID)             { delete(e.timers, id) }

func (e *fakeEnv) lastSent() wire.Message {
	if len(e.sent) == 0 {
		return nil
	}
	return e.sent[len(e.sent)-1]
}

func (e *fakeEnv) sentKinds() []wire.Kind {
	var out []wire.Kind
	for _, m := range e.sent {
		out = append(out, m.Kind())
	}
	return out
}

// rig is a machine under test plus its scripted environment, pre-placed
// in the failure-free state as a member of {0..4} with p `self`.
type rig struct {
	t   *testing.T
	env *fakeEnv
	m   *Machine
	bc  *broadcast.Broadcast
	p   model.Params
}

func newRig(t *testing.T, self model.ProcessID) *rig {
	p := model.DefaultParams(5)
	env := newFakeEnv()
	bc := broadcast.New(self, p, broadcast.Config{})
	m := New(self, p, Config{}, env, bc)
	return &rig{t: t, env: env, m: m, bc: bc, p: p}
}

// join places the machine in a formed group {0,1,2,3,4} (seq 1) as if a
// first decision from `decider` had been received.
func (r *rig) join(decider model.ProcessID) *wire.Decision {
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4})
	l := oal.NewList()
	l.AppendMembership(g)
	dec := &wire.Decision{
		Header: wire.Header{From: decider, SendTS: r.env.now},
		Group:  g,
		OAL:    *l,
		Alive:  g.Members,
	}
	r.m.Start()
	r.m.OnMessage(dec)
	if r.m.State() != StateFailureFree {
		r.t.Fatalf("setup: state %v after first decision", r.m.State())
	}
	return dec
}

// decisionFrom crafts a fresh decision from `from` extending the
// machine's current log.
func (r *rig) decisionFrom(from model.ProcessID, g model.Group) *wire.Decision {
	view := r.bc.CurrentView()
	return &wire.Decision{
		Header: wire.Header{From: from, SendTS: r.env.now},
		Group:  g,
		OAL:    *view,
		Alive:  g.Members,
	}
}

func (r *rig) ndFrom(from, suspect model.ProcessID) *wire.NoDecision {
	return &wire.NoDecision{
		Header:   wire.Header{From: from, SendTS: r.env.now},
		Suspect:  suspect,
		GroupSeq: r.m.Group().Seq,
		View:     *r.bc.CurrentView(),
	}
}

func (r *rig) reconfigFrom(from model.ProcessID, list []model.ProcessID) *wire.Reconfig {
	return &wire.Reconfig{
		Header:       wire.Header{From: from, SendTS: r.env.now},
		ReconfigList: list,
		GroupSeq:     r.m.Group().Seq,
		View:         *r.bc.CurrentView(),
	}
}

// timeoutExpected advances the clock past the armed expectation deadline
// and fires the timer.
func (r *rig) timeoutExpected() {
	_, deadline, active := r.m.Detector().Expected()
	if !active {
		r.t.Fatalf("no expectation armed")
	}
	r.env.now = deadline.Add(2)
	r.m.OnTimer(TimerExpect)
}

func TestStartEntersJoinAndSchedulesSlot(t *testing.T) {
	r := newRig(t, 2)
	r.m.Start()
	if r.m.State() != StateJoin {
		t.Fatalf("state: %v", r.m.State())
	}
	if _, ok := r.env.timers[TimerSlot]; !ok {
		t.Fatalf("slot timer not armed")
	}
}

func TestJoinStateSendsJoinInOwnSlot(t *testing.T) {
	r := newRig(t, 2)
	r.m.Start()
	r.env.now = r.p.NextSlotOf(2, r.env.now)
	r.m.OnTimer(TimerSlot)
	if got := r.env.lastSent(); got == nil || got.Kind() != wire.KindJoin {
		t.Fatalf("sent: %v", r.env.sentKinds())
	}
	j := r.env.lastSent().(*wire.Join)
	if len(j.JoinList) != 1 || j.JoinList[0] != 2 {
		t.Fatalf("join list: %v", j.JoinList)
	}
}

func TestJoinToFailureFreeOnDecision(t *testing.T) {
	r := newRig(t, 2)
	dec := r.join(0)
	if !r.m.HaveGroup() || r.m.Group().Seq != 1 {
		t.Fatalf("group: %v", r.m.Group())
	}
	// Expectation: successor of the decider (p1) within 2D.
	exp, deadline, active := r.m.Detector().Expected()
	if !active || exp != 1 {
		t.Fatalf("expected sender: %v (%v)", exp, active)
	}
	if deadline != dec.SendTS.Add(2*r.p.D) {
		t.Fatalf("deadline: %v", deadline)
	}
}

func TestDecisionNotAddressedToUsKeepsJoining(t *testing.T) {
	r := newRig(t, 2)
	r.m.Start()
	g := model.NewGroup(1, []model.ProcessID{0, 1, 3})
	l := oal.NewList()
	l.AppendMembership(g)
	r.m.OnMessage(&wire.Decision{
		Header: wire.Header{From: 0, SendTS: r.env.now},
		Group:  g, OAL: *l, Alive: g.Members,
	})
	if r.m.State() != StateJoin {
		t.Fatalf("state: %v", r.m.State())
	}
}

func TestSuccessorBecomesDecider(t *testing.T) {
	r := newRig(t, 1) // successor of decider p0
	r.join(0)
	if !r.m.IsDecider() {
		t.Fatalf("successor did not take decider role")
	}
	at, ok := r.env.timers[TimerDecide]
	if !ok {
		t.Fatalf("decide timer not armed")
	}
	// Fires within the hold (default D/2).
	if at.Sub(r.env.now) > r.p.D {
		t.Fatalf("decide timer too late: %v", at)
	}
	r.env.now = at
	r.m.OnTimer(TimerDecide)
	if got := r.env.lastSent(); got.Kind() != wire.KindDecision {
		t.Fatalf("sent: %v", r.env.sentKinds())
	}
	if r.m.IsDecider() {
		t.Fatalf("still decider after sending decision")
	}
	// Now we watch our own successor (p2).
	if exp, _, active := r.m.Detector().Expected(); !active || exp != 2 {
		t.Fatalf("expectation after deciding: %v (%v)", exp, active)
	}
}

func TestTimeoutAsSuccessorSendsNoDecision(t *testing.T) {
	// p2 expects p1 (successor of decider p0). When p1 times out, p2 (as
	// p1's successor) must send the first no-decision and enter
	// 1-failure-send.
	r := newRig(t, 2)
	r.join(0)
	r.timeoutExpected()
	if r.m.State() != State1FailureSend {
		t.Fatalf("state: %v", r.m.State())
	}
	nd, ok := r.env.lastSent().(*wire.NoDecision)
	if !ok || nd.Suspect != 1 {
		t.Fatalf("sent: %v", r.env.sentKinds())
	}
	if r.m.Suspect() != 1 {
		t.Fatalf("suspect: %v", r.m.Suspect())
	}
}

func TestTimeoutAsNonSuccessorEnters1FR(t *testing.T) {
	// p3 expects p1; on timeout p3 is not p1's successor -> 1FR, no send.
	r := newRig(t, 3)
	r.join(0)
	sentBefore := len(r.env.sent)
	r.timeoutExpected()
	if r.m.State() != State1FailureReceive {
		t.Fatalf("state: %v", r.m.State())
	}
	if len(r.env.sent) != sentBefore {
		t.Fatalf("1FR sent something: %v", r.env.sentKinds())
	}
}

func TestRingProgression1FRto1FS(t *testing.T) {
	// Group {0..4}, decider 0 decided, suspect 1 (expected sender).
	// Ring: 2 sends, then 3 (on 2's ND), then 4; 0 (pred of 1) concludes.
	r := newRig(t, 3)
	r.join(0)
	r.timeoutExpected() // 3 -> 1FR suspecting 1
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(2, 1)) // ring predecessor of 3
	if r.m.State() != State1FailureSend {
		t.Fatalf("state: %v", r.m.State())
	}
	if nd, ok := r.env.lastSent().(*wire.NoDecision); !ok || nd.Suspect != 1 {
		t.Fatalf("sent: %v", r.env.sentKinds())
	}
}

func TestNDFromNonPredecessorIsBuffered(t *testing.T) {
	r := newRig(t, 4)
	r.join(0)
	r.timeoutExpected() // 4 -> 1FR suspecting 1
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(2, 1)) // not 4's ring predecessor (that's 3)
	if r.m.State() != State1FailureReceive {
		t.Fatalf("acted on non-predecessor ND: %v", r.m.State())
	}
	// When 3's ND arrives, 4 advances.
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(3, 1))
	if r.m.State() != State1FailureSend {
		t.Fatalf("state: %v", r.m.State())
	}
}

func TestPredecessorOfSuspectConcludesElection(t *testing.T) {
	// p0 is the predecessor of suspect 1. After NDs from 2,3,4 it wins:
	// removes 1, becomes decider, back to failure-free.
	r := newRig(t, 0)
	r.join(4) // decider 4 -> expected sender 0? successor(4)=0 = self...
	// joining via decider 4 makes p0 the next decider; drop that role
	// for this test by processing a fresh decision from 0's successor...
	// Simpler: decider 0 handled the last decision; make p0 expect p1 by
	// simulating a decision from p0's predecessor p4 again:
	if r.m.IsDecider() {
		r.env.now = r.env.timers[TimerDecide]
		r.m.OnTimer(TimerDecide) // p0 decides; now expects p1
	}
	r.timeoutExpected() // suspect p1; p0 is not successor(1)=2 -> 1FR
	if r.m.State() != State1FailureReceive {
		t.Fatalf("state: %v", r.m.State())
	}
	r.env.now = r.env.now.Add(100)
	r.m.OnMessage(r.ndFrom(2, 1))
	r.env.now = r.env.now.Add(100)
	r.m.OnMessage(r.ndFrom(3, 1))
	if r.m.State() != State1FailureReceive {
		t.Fatalf("premature: %v", r.m.State())
	}
	r.env.now = r.env.now.Add(100)
	r.m.OnMessage(r.ndFrom(4, 1)) // p0's ring predecessor
	if r.m.State() != StateFailureFree {
		t.Fatalf("state after ring completion: %v", r.m.State())
	}
	g := r.m.Group()
	if g.Contains(1) || g.Seq <= 1 || g.Size() != 4 {
		t.Fatalf("group after election: %v", g)
	}
	if r.env.lastSent().Kind() != wire.KindDecision {
		t.Fatalf("winner did not send decision: %v", r.env.sentKinds())
	}
	if r.m.Stats().SingleElections != 1 {
		t.Fatalf("stats: %+v", r.m.Stats())
	}
}

func TestWrongSuspicionOnNDFromExpectedSender(t *testing.T) {
	// p3 received decider p0's decision and expects p1. p1 sends a ND
	// suspecting p0 (it missed the decision p3 holds) -> wrong-suspicion.
	r := newRig(t, 3)
	r.join(0)
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(1, 0))
	if r.m.State() != StateWrongSuspicion {
		t.Fatalf("state: %v", r.m.State())
	}
	if r.m.Suspect() != 0 {
		t.Fatalf("suspect: %v", r.m.Suspect())
	}
	// A decision from the expected sender returns us to failure-free
	// with membership unchanged.
	r.env.now = r.env.now.Add(1000)
	g := r.m.Group()
	r.m.OnMessage(r.decisionFrom(2, g))
	if r.m.State() != StateFailureFree || r.m.Group().Seq != g.Seq {
		t.Fatalf("state %v group %v", r.m.State(), r.m.Group())
	}
	if r.m.Stats().ViewChanges != 1 {
		t.Fatalf("view changed on false alarm")
	}
}

func TestWrongSuspicionPredecessorTakesOver(t *testing.T) {
	// p2 expects p1; p1's ND (suspecting p0) arrives and p1 is p2's ring
	// predecessor once p0 is the suspect — p2 holds the decision, so it
	// takes over as decider immediately.
	r := newRig(t, 2)
	r.join(0)
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(1, 0))
	if r.m.State() != StateFailureFree {
		t.Fatalf("state: %v", r.m.State())
	}
	if r.env.lastSent().Kind() != wire.KindDecision {
		t.Fatalf("no takeover decision: %v", r.env.sentKinds())
	}
	// Membership unchanged.
	if r.m.Group().Seq != 1 {
		t.Fatalf("group: %v", r.m.Group())
	}
}

func TestWrongSuspicionResendWhenSelfSuspected(t *testing.T) {
	// p1 becomes decider after p0's decision and sends its decision.
	// Then a ND arrives suspecting p1: p1 must resend its last control
	// message (the decision).
	r := newRig(t, 1)
	r.join(0)
	r.env.now = r.env.timers[TimerDecide]
	r.m.OnTimer(TimerDecide)
	myDec := r.env.lastSent()
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(2, 1))
	if got := r.env.lastSent(); got != myDec {
		t.Fatalf("did not resend last control message: %v", r.env.sentKinds())
	}
}

func TestTimeoutIn1FSEntersNFailureWithQuarantine(t *testing.T) {
	r := newRig(t, 2)
	r.join(0)
	r.timeoutExpected() // 2 sends ND -> 1FS
	if r.m.State() != State1FailureSend {
		t.Fatalf("state: %v", r.m.State())
	}
	r.timeoutExpected() // ring stalls -> n-failure
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
	// Quarantined: the reconfiguration sent in our slot has an empty list.
	r.env.now = r.p.NextSlotOf(2, r.env.now)
	r.m.OnTimer(TimerSlot)
	rc, ok := r.env.lastSent().(*wire.Reconfig)
	if !ok {
		t.Fatalf("no reconfiguration sent: %v", r.env.sentKinds())
	}
	if len(rc.ReconfigList) != 0 {
		t.Fatalf("quarantined reconfiguration-list not empty: %v", rc.ReconfigList)
	}
}

func TestTimeoutIn1FREntersNFailureWithoutQuarantine(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	r.timeoutExpected() // 1FR
	r.timeoutExpected() // ring stalls -> NF (no ND was sent by us)
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
	r.env.now = r.p.NextSlotOf(3, r.env.now)
	r.m.OnTimer(TimerSlot)
	rc := r.env.lastSent().(*wire.Reconfig)
	if len(rc.ReconfigList) != 1 || rc.ReconfigList[0] != 3 {
		t.Fatalf("reconfiguration-list: %v", rc.ReconfigList)
	}
}

func TestReconfigFromExpectedSenderEntersNFailure(t *testing.T) {
	r := newRig(t, 3)
	r.join(0) // expects p1
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.reconfigFrom(1, []model.ProcessID{1}))
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
}

func TestReconfigFromOtherSenderIsOnlyRecorded(t *testing.T) {
	r := newRig(t, 3)
	r.join(0) // expects p1
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.reconfigFrom(4, []model.ProcessID{4}))
	if r.m.State() != StateFailureFree {
		t.Fatalf("state: %v", r.m.State())
	}
}

func TestReconfigElectionWin(t *testing.T) {
	// p3 in n-failure; p0 and p4 send fresh reconfigs with matching
	// lists and no newer decisions: in p3's slot it wins with S={0,3,4}.
	r := newRig(t, 3)
	r.join(0)
	r.timeoutExpected()
	r.timeoutExpected()
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
	// Everyone exchanges reconfigs; lists converge to {0,3,4}. Slot
	// order matters: p4's message lands in cycle c, p0's in cycle c+1,
	// and p3 evaluates in its own slot of cycle c+1 — both messages are
	// then from their senders' most recent slots.
	list := []model.ProcessID{0, 3, 4}
	r.env.now = r.p.NextSlotOf(4, r.env.now).Add(1)
	r.m.OnMessage(r.reconfigFrom(4, list))
	r.env.now = r.p.NextSlotOf(0, r.env.now).Add(1)
	r.m.OnMessage(r.reconfigFrom(0, list))
	r.env.now = r.p.NextSlotOf(3, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.m.State() != StateFailureFree {
		t.Fatalf("state: %v", r.m.State())
	}
	g := r.m.Group()
	if g.Size() != 3 || !g.Contains(0) || !g.Contains(3) || !g.Contains(4) || g.Seq <= 1 {
		t.Fatalf("group: %v", g)
	}
	if r.m.Stats().ReconfigElections != 1 {
		t.Fatalf("stats: %+v", r.m.Stats())
	}
	if r.env.lastSent().Kind() != wire.KindDecision {
		t.Fatalf("winner did not decide: %v", r.env.sentKinds())
	}
}

func TestReconfigElectionDefersToFresherDecision(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	r.timeoutExpected()
	r.timeoutExpected()
	list := []model.ProcessID{0, 3, 4}
	// p0 claims a newer decision timestamp than ours: we must not win.
	rc := r.reconfigFrom(0, list)
	rc.LastDecisionTS = r.bc.LastDecisionTS() + 1_000_000
	r.env.now = r.p.NextSlotOf(0, r.env.now).Add(1)
	r.m.OnMessage(rc)
	r.env.now = r.p.NextSlotOf(4, r.env.now).Add(1)
	r.m.OnMessage(r.reconfigFrom(4, list))
	r.env.now = r.p.NextSlotOf(3, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.m.State() != StateNFailure {
		t.Fatalf("won against a fresher log: %v", r.m.State())
	}
}

func TestReconfigElectionNeedsMajority(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	r.timeoutExpected()
	r.timeoutExpected()
	// Only one other process concurs: 2 < majority(5)=3.
	r.env.now = r.p.NextSlotOf(4, r.env.now).Add(1)
	r.m.OnMessage(r.reconfigFrom(4, []model.ProcessID{3, 4}))
	r.env.now = r.p.NextSlotOf(3, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.m.State() != StateNFailure {
		t.Fatalf("won without majority: %v", r.m.State())
	}
}

func TestExclusionWaitsForAllNewMembersThenJoins(t *testing.T) {
	// p4 sees a decision whose group {0,1,2} drops it.
	r := newRig(t, 4)
	r.join(0)
	g2 := model.NewGroup(2, []model.ProcessID{0, 1, 2})
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.decisionFrom(0, g2))
	if r.m.State() != StateNFailure {
		t.Fatalf("state after exclusion: %v", r.m.State())
	}
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.decisionFrom(1, g2))
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.decisionFrom(2, g2))
	if r.m.State() != StateJoin {
		t.Fatalf("state after hearing all new members: %v", r.m.State())
	}
	if r.m.HaveGroup() {
		t.Fatalf("group state not reset")
	}
}

func TestStaleGroupDecisionIgnored(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	// Advance to group seq 2 via an election-style decision.
	g2 := model.NewGroup(2, []model.ProcessID{0, 2, 3, 4})
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.decisionFrom(2, g2))
	if r.m.Group().Seq != 2 {
		t.Fatalf("setup: %v", r.m.Group())
	}
	// A zombie decider with group seq 1 sends a fresh-timestamp decision.
	r.env.now = r.env.now.Add(1000)
	g1 := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4})
	before := r.bc.LastDecisionTS()
	r.m.OnMessage(r.decisionFrom(1, g1))
	if r.m.Group().Seq != 2 {
		t.Fatalf("zombie decision regressed the group: %v", r.m.Group())
	}
	if r.bc.LastDecisionTS() != before {
		t.Fatalf("zombie decision adopted into the log")
	}
}

func TestDuplicateControlMessagesDropped(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	nd := r.ndFrom(1, 0)
	r.env.now = r.env.now.Add(1000)
	nd.SendTS = r.env.now
	r.m.OnMessage(nd)
	ws := r.m.Stats().WrongSuspicions
	r.m.OnMessage(nd) // identical duplicate
	if r.m.Stats().WrongSuspicions != ws {
		t.Fatalf("duplicate processed twice")
	}
}

func TestOwnMessagesIgnored(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	state := r.m.State()
	r.m.OnMessage(r.ndFrom(3, 1)) // "from ourselves"
	if r.m.State() != state {
		t.Fatalf("state changed on own message")
	}
}

func TestProposeOnlyWhenMember(t *testing.T) {
	r := newRig(t, 3)
	r.m.Start()
	if p := r.m.Propose([]byte("x"), oal.Semantics{}); p != nil {
		t.Fatalf("proposed while joining")
	}
	r2 := newRig(t, 3)
	r2.join(0)
	if p := r2.m.Propose([]byte("x"), oal.Semantics{}); p == nil {
		t.Fatalf("member could not propose")
	}
	if r2.env.lastSent().Kind() != wire.KindProposal {
		t.Fatalf("proposal not broadcast")
	}
}

func TestNackAnsweredWithUnicastBodies(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	p := r.m.Propose([]byte("have-it"), oal.Semantics{})
	r.m.OnMessage(&wire.Nack{
		Header:  wire.Header{From: 1, SendTS: r.env.now.Add(1)},
		Missing: []oal.ProposalID{p.ID},
	})
	if len(r.env.unicasts) != 1 || r.env.unicasts[0].To != 1 {
		t.Fatalf("unicasts: %v", r.env.unicasts)
	}
	if r.env.unicasts[0].M.Kind() != wire.KindProposal {
		t.Fatalf("retransmit kind: %v", r.env.unicasts[0].M.Kind())
	}
}

func TestMonotonicSendTimestamps(t *testing.T) {
	r := newRig(t, 2)
	r.join(0)
	// Freeze the clock; two sends must still have increasing stamps.
	t1 := r.m.sendTS()
	t2 := r.m.sendTS()
	if t2 <= t1 {
		t.Fatalf("timestamps not monotonic: %v %v", t1, t2)
	}
}

func TestSingletonGroupSelfRotation(t *testing.T) {
	p := model.DefaultParams(1)
	env := newFakeEnv()
	bc := broadcast.New(0, p, broadcast.Config{})
	m := New(0, p, Config{}, env, bc)
	m.Start()
	env.now = p.NextSlotOf(0, env.now)
	m.OnTimer(TimerSlot) // forms singleton group, decides immediately
	if m.State() != StateFailureFree || m.Group().Size() != 1 {
		t.Fatalf("state=%v group=%v", m.State(), m.Group())
	}
	// It keeps the decider role with a self-rotation timer.
	if !m.IsDecider() {
		t.Fatalf("singleton lost decider role")
	}
	at, ok := env.timers[TimerDecide]
	if !ok {
		t.Fatalf("no self-rotation timer")
	}
	env.now = at
	m.OnTimer(TimerDecide)
	if env.lastSent().Kind() != wire.KindDecision {
		t.Fatalf("no decision from singleton")
	}
}

func TestFigure2TransitionCoverage(t *testing.T) {
	// Every labelled transition of the paper's Figure 2, checked via the
	// transitions exercised above, plus a coverage matrix assembled by
	// replaying them through hooks.
	type trans struct{ from, to State }
	seen := make(map[trans]bool)
	record := func(m *Machine) {
		m.cfg.Hooks.StateChange = func(from, to State, _ model.Time) {
			seen[trans{from, to}] = true
		}
	}

	// join -> failure-free (D).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
	}
	// failure-free -> 1FS (timeout, NDsend) and 1FS -> NF (timeout).
	{
		r := newRig(t, 2)
		record(r.m)
		r.join(0)
		r.timeoutExpected()
		r.timeoutExpected()
	}
	// failure-free -> 1FR (timeout), 1FR -> 1FS (ND), 1FS -> FF (D).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
		r.timeoutExpected()
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.ndFrom(2, 1))
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.decisionFrom(0, r.m.Group()))
	}
	// 1FR -> NF (timeout).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
		r.timeoutExpected()
		r.timeoutExpected()
	}
	// 1FR -> WS (decision from suspect) and WS -> FF (decision).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
		r.timeoutExpected()
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.decisionFrom(1, r.m.Group())) // suspect alive
		if r.m.State() != StateWrongSuspicion {
			t.Fatalf("1FR + suspect decision: %v", r.m.State())
		}
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.decisionFrom(2, r.m.Group()))
	}
	// FF -> WS (ND from expected sender) and WS -> NF (timeout).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.ndFrom(1, 0))
		r.timeoutExpected()
	}
	// FF -> NF (reconfiguration from expected sender) and NF -> FF
	// (decision containing us).
	{
		r := newRig(t, 3)
		record(r.m)
		r.join(0)
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.reconfigFrom(1, []model.ProcessID{1}))
		r.env.now = r.env.now.Add(100)
		r.m.OnMessage(r.decisionFrom(0, r.m.Group()))
	}
	// NF -> join (excluded, heard all new members).
	{
		r := newRig(t, 4)
		record(r.m)
		r.join(0)
		g2 := model.NewGroup(2, []model.ProcessID{0, 1, 2})
		for _, from := range g2.Members {
			r.env.now = r.env.now.Add(100)
			r.m.OnMessage(r.decisionFrom(from, g2))
		}
	}

	want := []trans{
		{StateJoin, StateFailureFree},
		{StateFailureFree, State1FailureSend},
		{State1FailureSend, StateNFailure},
		{StateFailureFree, State1FailureReceive},
		{State1FailureReceive, State1FailureSend},
		{State1FailureSend, StateFailureFree},
		{State1FailureReceive, StateNFailure},
		{State1FailureReceive, StateWrongSuspicion},
		{StateWrongSuspicion, StateFailureFree},
		{StateFailureFree, StateWrongSuspicion},
		{StateWrongSuspicion, StateNFailure},
		{StateFailureFree, StateNFailure},
		{StateNFailure, StateFailureFree},
		{StateNFailure, StateJoin},
	}
	for _, tr := range want {
		if !seen[tr] {
			t.Errorf("transition %v -> %v not exercised", tr.from, tr.to)
		}
	}
}

func TestStateAndTimerStrings(t *testing.T) {
	for s := StateJoin; s <= StateNFailure; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty string", s)
		}
	}
	if State(99).String() == "" || TimerID(99).String() == "" {
		t.Errorf("unknown enum strings empty")
	}
	for _, id := range []TimerID{TimerExpect, TimerDecide, TimerSlot} {
		if id.String() == "" {
			t.Errorf("timer %d empty string", id)
		}
	}
	r := newRig(t, 1)
	if r.m.String() == "" {
		t.Errorf("machine string empty")
	}
}
