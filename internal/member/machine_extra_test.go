package member

import (
	"math/rand"
	"testing"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/surveil"
	"timewheel/internal/wire"
)

func TestUpToDatePredicate(t *testing.T) {
	r := newRig(t, 3)
	r.m.Start()
	if r.m.UpToDate() {
		t.Fatalf("up to date while joining")
	}
	r.join(0)
	if !r.m.UpToDate() {
		t.Fatalf("not up to date in failure-free")
	}
	// Single-failure episode: the view is still current while the
	// election is being tracked.
	r.timeoutExpected()
	if r.m.State() != State1FailureReceive {
		t.Fatalf("state: %v", r.m.State())
	}
	if !r.m.UpToDate() {
		t.Fatalf("not up to date in 1-failure-receive")
	}
	// n-failure: the membership may be changing without us.
	r.timeoutExpected()
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
	if r.m.UpToDate() {
		t.Fatalf("up to date in n-failure")
	}
}

func TestUpToDateFalseWhenExcluded(t *testing.T) {
	r := newRig(t, 4)
	r.join(0)
	g2 := model.NewGroup(2, []model.ProcessID{0, 1, 2})
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.decisionFrom(0, g2))
	if r.m.UpToDate() {
		t.Fatalf("up to date while excluded")
	}
}

func TestQuarantineExpiresAndElectionProceeds(t *testing.T) {
	// p2 sent a no-decision, escalated to n-failure (quarantined), and
	// must sit out (empty reconfiguration-lists) for N-1 slots before
	// participating again.
	r := newRig(t, 2)
	r.join(0)
	r.timeoutExpected() // ND sent -> 1FS
	r.timeoutExpected() // -> NF with quarantine
	quarantineEnd := r.env.now.Add(model.Duration(r.p.N-1) * r.p.SlotLen())

	r.env.now = r.p.NextSlotOf(2, r.env.now)
	if r.env.now < quarantineEnd {
		r.m.OnTimer(TimerSlot)
		rc := r.env.lastSent().(*wire.Reconfig)
		if len(rc.ReconfigList) != 0 {
			t.Fatalf("quarantined list not empty: %v", rc.ReconfigList)
		}
	}
	// After the quarantine, the list includes self again.
	r.env.now = quarantineEnd.Add(1)
	r.env.now = r.p.NextSlotOf(2, r.env.now)
	r.m.OnTimer(TimerSlot)
	rc := r.env.lastSent().(*wire.Reconfig)
	found := false
	for _, q := range rc.ReconfigList {
		if q == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-quarantine list misses self: %v", rc.ReconfigList)
	}
}

func TestAdmissionHappyPath(t *testing.T) {
	p := model.DefaultParams(5)
	env := newFakeEnv()
	bc := broadcast.New(1, p, broadcast.Config{})
	m := New(1, p, Config{}, env, bc)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3})
	l := oal.NewList()
	l.AppendMembership(g)
	m.Start()
	// Everyone's decisions piggyback p4 as alive.
	aliveAll := []model.ProcessID{0, 1, 2, 3, 4}
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now},
		Group: g, OAL: *l, Alive: aliveAll})
	env.now = env.now.Add(10)
	m.OnMessage(&wire.Join{Header: wire.Header{From: 4, SendTS: env.now}, JoinList: []model.ProcessID{4}})
	// Other members' alive-lists arrive via older decisions already
	// recorded (From 0 covers p0); fake p2, p3 via noteAlive through
	// fresh decisions is complex — drive directly:
	m.noteAlive(2, env.now, aliveAll)
	m.noteAlive(3, env.now, aliveAll)

	env.now = env.timers[TimerDecide]
	m.OnTimer(TimerDecide)
	dec := r2LastDecision(t, env)
	if !dec.Group.Contains(4) {
		t.Fatalf("joiner not admitted: %v", dec.Group)
	}
	if dec.Group.Seq <= g.Seq {
		t.Fatalf("group seq did not advance: %v", dec.Group.Seq)
	}
	// State transfer follows.
	if len(env.unicasts) != 1 || env.unicasts[0].To != 4 || env.unicasts[0].M.Kind() != wire.KindState {
		t.Fatalf("state transfer: %+v", env.unicasts)
	}
	if m.Stats().Admissions != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

// TestWireAliveListExcludesGossipVouches: under partial-view
// surveillance the alive-lists placed on outgoing messages must carry
// only peers this process heard DIRECTLY. Re-exporting gossiped vouches
// would re-stamp them with our send timestamp: every member broadcasts
// once per freshness window, so mutually echoed vouches would keep a
// dead peer on every alive-list forever, neutralizing the silence scan
// and the readmission guard.
func TestWireAliveListExcludesGossipVouches(t *testing.T) {
	p := model.DefaultParams(5)
	env := newFakeEnv()
	bc := broadcast.New(1, p, broadcast.Config{})
	m := New(1, p, Config{Surveillance: surveil.Config{K: 2}}, env, bc)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4})
	l := oal.NewList()
	l.AppendMembership(g)
	m.Start()
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now},
		Group: g, OAL: *l, Alive: []model.ProcessID{0}})
	// p0 vouches p4 alive; p1 itself never heard p4 (or p2, p3).
	env.now = env.now.Add(10)
	m.noteAlive(0, env.now, []model.ProcessID{0, 2, 3, 4})
	if m.Detector().LastHeard(4) == 0 {
		t.Fatalf("setup: vouch for p4 not recorded in the local union")
	}

	env.now = env.timers[TimerDecide]
	m.OnTimer(TimerDecide)
	dec := r2LastDecision(t, env)
	for _, q := range dec.Alive {
		if q != 0 && q != 1 {
			t.Errorf("outgoing alive-list re-exports gossiped vouch for p%v: %v", q, dec.Alive)
		}
	}
}

func TestAdmissionBlockedByMissingAliveList(t *testing.T) {
	p := model.DefaultParams(5)
	env := newFakeEnv()
	bc := broadcast.New(1, p, broadcast.Config{})
	m := New(1, p, Config{}, env, bc)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3})
	l := oal.NewList()
	l.AppendMembership(g)
	m.Start()
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now},
		Group: g, OAL: *l, Alive: []model.ProcessID{0, 1, 2, 3}}) // p0 lacks p4
	env.now = env.now.Add(10)
	m.OnMessage(&wire.Join{Header: wire.Header{From: 4, SendTS: env.now}, JoinList: []model.ProcessID{4}})
	m.noteAlive(2, env.now, []model.ProcessID{0, 1, 2, 3, 4})
	m.noteAlive(3, env.now, []model.ProcessID{0, 1, 2, 3, 4})

	env.now = env.timers[TimerDecide]
	m.OnTimer(TimerDecide)
	dec := r2LastDecision(t, env)
	if dec.Group.Contains(4) {
		t.Fatalf("admitted without unanimous alive-lists: %v", dec.Group)
	}
}

func r2LastDecision(t *testing.T, env *fakeEnv) *wire.Decision {
	t.Helper()
	for i := len(env.sent) - 1; i >= 0; i-- {
		if d, ok := env.sent[i].(*wire.Decision); ok {
			return d
		}
	}
	t.Fatalf("no decision sent: %v", env.sentKinds())
	return nil
}

// TestRandomMessageRobustness feeds the machine long random sequences of
// well-formed protocol messages and timer firings. The machine must
// never panic, its group sequence must never regress, and it must never
// install a sub-majority view.
func TestRandomMessageRobustness(t *testing.T) {
	p := model.DefaultParams(5)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := newFakeEnv()
		bc := broadcast.New(2, p, broadcast.Config{})
		m := New(2, p, Config{Hooks: Hooks{
			ViewChange: func(g model.Group, _ model.Time) {
				// Group seqs may regress when following a live chain off
				// a dead fork; the invariant is that every installed
				// view holds a majority.
				if g.Size() < p.Majority() {
					t.Fatalf("seed %d: sub-majority view %v", seed, g)
				}
			},
		}}, env, bc)
		m.Start()

		members := []model.ProcessID{0, 1, 2, 3, 4}
		randGroup := func() model.Group {
			n := p.Majority() + rng.Intn(p.N-p.Majority()+1)
			perm := rng.Perm(p.N)
			ms := make([]model.ProcessID, 0, n)
			for _, i := range perm[:n] {
				ms = append(ms, model.ProcessID(i))
			}
			return model.NewGroup(model.GroupSeq(1+rng.Intn(4)), ms)
		}
		for step := 0; step < 400; step++ {
			env.now = env.now.Add(model.Duration(rng.Int63n(int64(p.D))))
			from := members[rng.Intn(len(members))]
			ts := env.now.Add(-model.Duration(rng.Int63n(int64(p.D))))
			switch rng.Intn(7) {
			case 0:
				g := randGroup()
				ol := oal.NewList()
				ol.Next = oal.Ordinal(1 + rng.Intn(50))
				m.OnMessage(&wire.Decision{Header: wire.Header{From: from, SendTS: ts},
					Group: g, OAL: *ol, Alive: g.Members})
			case 1:
				m.OnMessage(&wire.NoDecision{Header: wire.Header{From: from, SendTS: ts},
					Suspect: members[rng.Intn(len(members))], GroupSeq: model.GroupSeq(rng.Intn(4))})
			case 2:
				m.OnMessage(&wire.Join{Header: wire.Header{From: from, SendTS: ts},
					JoinList: randGroup().Members})
			case 3:
				m.OnMessage(&wire.Reconfig{Header: wire.Header{From: from, SendTS: ts},
					ReconfigList: randGroup().Members, LastDecisionTS: ts, GroupSeq: model.GroupSeq(rng.Intn(4))})
			case 4:
				m.OnMessage(&wire.Proposal{Header: wire.Header{From: from, SendTS: ts},
					ID:  oal.ProposalID{Proposer: from, Seq: uint64(rng.Intn(30))},
					Sem: oal.Semantics{Order: oal.Order(rng.Intn(3)), Atomicity: oal.Atomicity(rng.Intn(3))}})
			case 5:
				m.OnTimer(TimerID(rng.Intn(3)))
			case 6:
				m.OnMessage(&wire.Nack{Header: wire.Header{From: from, SendTS: ts},
					Missing: []oal.ProposalID{{Proposer: from, Seq: uint64(rng.Intn(10))}}})
			}
		}
	}
}

func TestRingHelpersSkipSuspect(t *testing.T) {
	r := newRig(t, 0)
	r.join(4)
	if r.m.IsDecider() {
		r.env.now = r.env.timers[TimerDecide]
		r.m.OnTimer(TimerDecide)
	}
	// Install a suspect manually via the timeout path.
	r.timeoutExpected() // suspect = expected sender
	s := r.m.Suspect()
	if s == model.NoProcess {
		t.Fatalf("no suspect")
	}
	// ringSuccessor(pred(s)) skips s entirely.
	succ := r.m.ringSuccessor(r.m.Group().Predecessor(s))
	if succ == s {
		t.Fatalf("ring successor did not skip the suspect")
	}
	pred := r.m.ringPredecessor(r.m.Group().Successor(s))
	if pred == s {
		t.Fatalf("ring predecessor did not skip the suspect")
	}
}

func TestIsLateBoundary(t *testing.T) {
	r := newRig(t, 1)
	bound := r.p.Delta + r.p.Epsilon + r.p.Sigma
	if r.m.isLate(0, 1000, model.Time(1000).Add(bound)) {
		t.Fatalf("at-bound message classified late")
	}
	if !r.m.isLate(0, 1000, model.Time(1000).Add(bound+1)) {
		t.Fatalf("past-bound message classified timely")
	}
}

func TestExpectAfterClampsPastDeadlines(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	// A base timestamp far in the past must still grant the expected
	// sender at least D from now.
	r.env.now = r.env.now.Add(10 * r.p.D)
	r.m.expectAfter(0, 1000) // ancient ts
	_, deadline, active := r.m.Detector().Expected()
	if !active {
		t.Fatalf("expectation not armed")
	}
	if deadline < r.env.now.Add(r.p.D) {
		t.Fatalf("deadline %v not clamped to now+D (%v)", deadline, r.env.now.Add(r.p.D))
	}
}

func TestExpectAfterSelfClearsExpectation(t *testing.T) {
	r := newRig(t, 2)
	r.join(0)
	// Successor of p1 is p2 (self): surveillance must disarm (our own
	// decider duty covers us).
	r.m.expectAfter(1, r.env.now)
	if _, _, active := r.m.Detector().Expected(); active {
		t.Fatalf("self-expectation left armed")
	}
}

func TestLastSlotStartOfTolerance(t *testing.T) {
	r := newRig(t, 0)
	now := model.Time(10 * int64(r.p.CycleLen()))
	for q := model.ProcessID(0); int(q) < r.p.N; q++ {
		start := r.m.lastSlotStartOf(q, now)
		// The reported bound is at most one cycle plus the clock
		// tolerance behind now, and never in the future.
		if start > now {
			t.Fatalf("q=%v: last slot start %v after now %v", q, start, now)
		}
		if now.Sub(start) > r.p.CycleLen()+r.p.Epsilon+r.p.Sigma {
			t.Fatalf("q=%v: last slot start %v too old", q, start)
		}
	}
}

func TestRollRingDrainsBufferedNDs(t *testing.T) {
	// Out-of-order ring: p3 (suspecting p1 after timeout) receives p5's
	// and p6's NDs BEFORE p4's; when p4's arrives the expectation must
	// roll through all three.
	p := model.DefaultParams(8)
	env := newFakeEnv()
	bc := broadcast.New(3, p, broadcast.Config{})
	m := New(3, p, Config{}, env, bc)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4, 5, 6, 7})
	l := oal.NewList()
	l.AppendMembership(g)
	m.Start()
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now}, Group: g, OAL: *l, Alive: g.Members})
	// p3 expects p1; timeout -> 1FR suspecting p1 (ring starts at p2).
	_, deadline, _ := m.Detector().Expected()
	env.now = deadline.Add(2)
	m.OnTimer(TimerExpect)
	if m.State() != State1FailureReceive || m.Suspect() != 1 {
		t.Fatalf("setup: %v suspect %v", m.State(), m.Suspect())
	}
	// Expected sender is p2 (ring start).
	nd := func(from model.ProcessID, ts model.Time) *wire.NoDecision {
		return &wire.NoDecision{Header: wire.Header{From: from, SendTS: ts}, Suspect: 1, GroupSeq: 1}
	}
	base := env.now
	// Out of order: 5 and 6 arrive first (buffered), then 4, then 2.
	m.OnMessage(nd(5, base.Add(40)))
	m.OnMessage(nd(6, base.Add(50)))
	m.OnMessage(nd(4, base.Add(30)))
	if exp, _, _ := m.Detector().Expected(); exp != 2 {
		t.Fatalf("expectation moved without p2's message: %v", exp)
	}
	m.OnMessage(nd(2, base.Add(20)))
	// p2 satisfied -> roll through buffered 4? No: after p2 the expected
	// sender is p3 (self) ... the machine is p3 and it already sent its
	// own ND via the ring action; then 4,5,6 buffered roll the chain to
	// expecting p7.
	if exp, _, active := m.Detector().Expected(); active && exp != 7 {
		t.Fatalf("expectation after drain: %v", exp)
	}
}

func TestLateDecisionIsDataOnly(t *testing.T) {
	// A decision arriving later than delta+epsilon+sigma after its send
	// timestamp is adopted as log data but hands the decider role to no
	// one (fail-awareness: a late message is a performance failure).
	r := newRig(t, 1) // p1 is the successor of decider p0
	r.join(0)
	if !r.m.IsDecider() {
		t.Fatalf("setup: p1 should be decider")
	}
	// p1 sends its decision, rotating the role onward; now craft a LATE
	// decision from p0 whose successor is p1 again.
	r.env.now = r.env.timers[TimerDecide]
	r.m.OnTimer(TimerDecide)
	if r.m.IsDecider() {
		t.Fatalf("setup: role not released")
	}
	lateTS := r.env.now.Add(1)
	r.env.now = lateTS.Add(r.p.Delta + r.p.Epsilon + r.p.Sigma + 1000)
	before := r.bc.LastDecisionTS()
	r.m.OnMessage(r.decisionWithTS(0, r.m.Group(), lateTS))
	if r.bc.LastDecisionTS() == before {
		t.Fatalf("late decision's log not adopted")
	}
	if r.m.IsDecider() {
		t.Fatalf("late decision handed the decider role")
	}
}

// decisionWithTS crafts a fresh decision with an explicit send timestamp.
func (r *rig) decisionWithTS(from model.ProcessID, g model.Group, ts model.Time) *wire.Decision {
	view := r.bc.CurrentView()
	return &wire.Decision{
		Header: wire.Header{From: from, SendTS: ts},
		Group:  g,
		OAL:    *view,
		Alive:  g.Members,
	}
}

func TestReconfigInWrongSuspicionEntersNFailure(t *testing.T) {
	r := newRig(t, 3)
	r.join(0)
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.ndFrom(1, 0)) // FF -> WS
	if r.m.State() != StateWrongSuspicion {
		t.Fatalf("setup: %v", r.m.State())
	}
	// Reconfiguration from the expected sender while masking: multiple
	// failures after all.
	exp, _, _ := r.m.Detector().Expected()
	r.env.now = r.env.now.Add(1000)
	r.m.OnMessage(r.reconfigFrom(exp, []model.ProcessID{exp}))
	if r.m.State() != StateNFailure {
		t.Fatalf("state: %v", r.m.State())
	}
}

func TestNoDecisionIgnoredWhileJoining(t *testing.T) {
	r := newRig(t, 3)
	r.m.Start()
	r.m.OnMessage(r.ndFrom(1, 0))
	if r.m.State() != StateJoin {
		t.Fatalf("joiner reacted to a no-decision: %v", r.m.State())
	}
}

func TestStateResendToConfusedMemberIsRateLimited(t *testing.T) {
	// A current member that keeps sending join messages (it missed its
	// state transfer) gets state re-sent by the decider — at most once
	// per cycle.
	p := model.DefaultParams(5)
	env := newFakeEnv()
	bc := broadcast.New(1, p, broadcast.Config{})
	m := New(1, p, Config{}, env, bc)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3})
	l := oal.NewList()
	l.AppendMembership(g)
	m.Start()
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now},
		Group: g, OAL: *l, Alive: g.Members})
	if !m.IsDecider() {
		t.Fatalf("setup: not decider")
	}
	// p3 is a member but still joining.
	env.now = env.now.Add(10)
	m.OnMessage(&wire.Join{Header: wire.Header{From: 3, SendTS: env.now}, JoinList: []model.ProcessID{3}})

	env.now = env.timers[TimerDecide]
	m.OnTimer(TimerDecide)
	states := 0
	for _, u := range env.unicasts {
		if u.To == 3 && u.M.Kind() == wire.KindState {
			states++
		}
	}
	if states != 1 {
		t.Fatalf("state transfers after first decision: %d", states)
	}
	// Another join + another decision inside the same cycle: no resend.
	env.now = env.now.Add(10)
	m.OnMessage(&wire.Join{Header: wire.Header{From: 3, SendTS: env.now}, JoinList: []model.ProcessID{3}})
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now + 1},
		Group: g, OAL: *bc.CurrentView(), Alive: g.Members})
	if m.IsDecider() {
		env.now = env.timers[TimerDecide]
		m.OnTimer(TimerDecide)
	}
	states = 0
	for _, u := range env.unicasts {
		if u.To == 3 && u.M.Kind() == wire.KindState {
			states++
		}
	}
	if states != 1 {
		t.Fatalf("state transfer not rate-limited: %d", states)
	}
	// After a cycle it re-sends.
	env.now = env.now.Add(p.CycleLen() + 1)
	m.OnMessage(&wire.Join{Header: wire.Header{From: 3, SendTS: env.now}, JoinList: []model.ProcessID{3}})
	m.OnMessage(&wire.Decision{Header: wire.Header{From: 0, SendTS: env.now + 1},
		Group: g, OAL: *bc.CurrentView(), Alive: g.Members})
	if m.IsDecider() {
		env.now = env.timers[TimerDecide]
		m.OnTimer(TimerDecide)
	}
	states = 0
	for _, u := range env.unicasts {
		if u.To == 3 && u.M.Kind() == wire.KindState {
			states++
		}
	}
	if states != 2 {
		t.Fatalf("state transfer not re-sent after a cycle: %d", states)
	}
}
