package member

import (
	"slices"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// OnMessage processes one received protocol message.
func (m *Machine) OnMessage(msg wire.Message) {
	h := msg.Hdr()
	if h.From == m.self {
		return // our own broadcast looped back; ignore
	}
	if msg.Kind().Control() {
		// Duplicate/old control messages are rejected (§4.2) — except
		// that a wrong-suspicion resend must still reach processes that
		// missed the original, which the freshness check permits
		// (they never recorded the original timestamp).
		if !m.fd.RecordControl(h.From, h.SendTS, m.env.Now()) {
			return
		}
	}
	// Accepted: record the receive hop for the cross-node timeline
	// (rejected duplicates never fire — they are not protocol events).
	m.fireWire(WireRecv, msg, h.From)
	switch v := msg.(type) {
	case *wire.Decision:
		m.noteAlive(v.From, v.SendTS, v.Alive)
		m.onDecision(v)
	case *wire.NoDecision:
		m.noteAlive(v.From, v.SendTS, v.Alive)
		m.onNoDecision(v)
	case *wire.Join:
		m.onJoin(v)
	case *wire.Reconfig:
		m.noteAlive(v.From, v.SendTS, v.Alive)
		m.onReconfig(v)
	case *wire.Suspicion:
		m.onSuspicion(v)
	case *wire.Refute:
		m.onRefute(v)
	case *wire.Proposal:
		// Application traffic carries the same send timestamps as
		// control messages — feed the adaptive delay estimator (no-op
		// in static mode) before handing the proposal to the broadcast
		// layer. A sample that shrinks the expected sender's bound
		// tightens the armed surveillance deadline via the detector's
		// OnDeadlineTighten callback (wired in New).
		m.fd.RecordAppDelay(v.From, v.SendTS, m.env.Now())
		m.bc.OnProposal(m.env.Now(), v)
	case *wire.Nack:
		for _, body := range m.bc.OnNack(v) {
			// Retransmit with ourselves as the datagram source: the
			// original proposer may be crashed, and the update's
			// identity lives in its ID, not the header.
			cp := *body
			cp.From = m.self
			m.unicast(v.From, &cp)
		}
	case *wire.State:
		if m.needState || m.state == StateJoin || !m.haveGroup || m.bc.HighestOrdinal() == 0 {
			if m.haveGroup && v.GroupSeq < m.group.Seq {
				return // stale transfer predating our current group
			}
			m.bc.ApplyState(m.env.Now(), v)
			m.appliedStateSeq = v.GroupSeq
			m.needState = false
		}
	case *wire.OALReq:
		// A peer can't resolve our deltas: serve it the baseline, and
		// ship the next decision full in case others lost it too.
		m.bc.ForceFullOAL()
		if of := m.bc.ServeFullOAL(m.sendTS()); of != nil {
			m.unicast(v.From, of)
		}
	case *wire.OALFull:
		m.onOALFull(v)
	}
}

// onOALFull applies a served baseline: newer than anything seen here it
// doubles as a full decision (content-wise it is one) and may surface
// missing bodies to nack; either way a freshly installed baseline lets
// buffered delta no-decisions resolve.
func (m *Machine) onOALFull(of *wire.OALFull) {
	adopted, missing := m.bc.InstallFullOAL(m.env.Now(), of)
	// The nack continues the served baseline's causal chain: the
	// losses it repairs belong to that decision's round.
	m.queueNack(missing, m.causalOf(of.Header))
	if adopted {
		m.lastCausal = m.causalOf(of.Header)
		for _, nd := range m.pendingND {
			m.bc.ResolveNoDecisionDelta(nd)
		}
	}
}

// nackEntry is one deferred missing-body nack: the IDs a decision (or
// served baseline) exposed as missing, the causal context of that
// round, and when the Delta grace runs out.
type nackEntry struct {
	due model.Time
	ctx wire.Causal
	ids []oal.ProposalID
}

// queueNack defers a missing-body nack by one delay bound. The body of
// an update ordered by a just-received decision is usually not lost —
// it is in flight, broadcast by its proposer concurrently with the
// decision that covers it — so nacking immediately turns delivery
// jitter into a group-wide nack/retransmission round for nothing. Any
// timely body lands within Delta of the decision; what is still
// missing when the grace expires is nacked then. The grace is well
// inside the D-scale repair budget the rate limits assume.
func (m *Machine) queueNack(missing []oal.ProposalID, ctx wire.Causal) {
	if len(missing) == 0 {
		return
	}
	due := m.env.Now().Add(m.params.Delta)
	m.nackQ = append(m.nackQ, nackEntry{due: due, ctx: ctx, ids: missing})
	if len(m.nackQ) == 1 {
		m.env.SetTimer(TimerNack, due)
	}
}

// onNackTimer sends the due deferred nacks for bodies still missing and
// re-arms for the queue head.
func (m *Machine) onNackTimer() {
	now := m.env.Now()
	for len(m.nackQ) > 0 && m.nackQ[0].due <= now {
		e := m.nackQ[0]
		m.nackQ = m.nackQ[1:]
		if still := m.bc.StillMissing(e.ids); len(still) > 0 {
			m.broadcast(&wire.Nack{
				Header:  wire.Header{From: m.self, SendTS: m.sendTS(), Ctx: e.ctx},
				Missing: still,
			})
		}
	}
	if len(m.nackQ) > 0 {
		m.env.SetTimer(TimerNack, m.nackQ[0].due)
	}
}

// requestFullOAL asks `from` for the delta baseline this process is
// missing, at most once per D per target.
func (m *Machine) requestFullOAL(from model.ProcessID) {
	now := m.env.Now()
	if last, ok := m.lastOALReq[from]; ok && now.Sub(last) < m.params.D {
		return
	}
	m.lastOALReq[from] = now
	m.unicast(from, &wire.OALReq{Header: wire.Header{From: m.self, SendTS: m.sendTS()}})
	m.stats.OALReqsSent++
}

// noteAlive records the alive-list piggybacked on a control message. In
// partial-view mode each listed peer is also a gossiped vouch as of the
// message's send timestamp: peers we don't watch directly stay on our
// alive-list through the union. The vouch is trustworthy only because
// outgoing alive-lists carry first-hand evidence alone (DirectAliveList)
// — the sender itself heard p timely within one window of sendTS. Were
// the unioned list re-exported, second-hand vouches would refresh each
// other every cycle and pin a dead peer alive forever. Vouches are also
// filtered to the current membership so an ejected process cannot ride
// alive-lists sent by peers that have not yet ejected it.
func (m *Machine) noteAlive(from model.ProcessID, sendTS model.Time, alive []model.ProcessID) {
	m.lastAlive[from] = model.NewProcessSet(alive...)
	if m.sv != nil && m.haveGroup {
		for _, p := range alive {
			if p != from && m.group.Contains(p) {
				m.fd.RecordGossipAlive(p, sendTS)
			}
		}
	}
}

// OnTimer processes a timer expiry.
func (m *Machine) OnTimer(id TimerID) {
	switch id {
	case TimerExpect:
		m.onExpectTimeout()
	case TimerDecide:
		if m.isDecider {
			m.sendDecision()
		}
	case TimerSlot:
		m.onOwnSlot()
		m.scheduleSlotTimer()
	case TimerNack:
		m.onNackTimer()
	}
}

// --- Decision handling -------------------------------------------------

func (m *Machine) onDecision(dec *wire.Decision) {
	now := m.env.Now()
	if m.haveGroup && dec.Group.Seq < m.group.Seq && m.state != StateNFailure {
		// A decider that predates our current group (e.g. a wrongly
		// suspected process that has not yet learned it was excluded)
		// while our own rotation is alive: its log lacks our membership
		// descriptor and purge marks — ignore it entirely.
		return
	}
	if !m.bc.ResolveDecisionDelta(dec) {
		// Delta-encoded against a baseline we don't hold (first contact,
		// or we missed the baseline decision): fetch the baseline; the
		// chain re-delivers the content, and surveillance keeps running
		// off whatever control message does arrive timely.
		m.requestFullOAL(dec.From)
		return
	}
	adopted, missing := m.bc.AdoptDecision(now, dec)
	// The nack continues the decision's causal chain: the losses it
	// exposes belong to that round.
	m.queueNack(missing, m.causalOf(dec.Header))
	if !adopted {
		// Older than our log: no state meaning (stale decider or a
		// wrong-suspicion retransmission we already have).
		return
	}
	// Adopting a decision moves this process into its round: subsequent
	// control messages continue its causal chain.
	m.lastCausal = m.causalOf(dec.Header)

	m.bc.CheckTermination(now)

	// Fresh decisions are authoritative: only deciders send them, and
	// the elections guarantee at most one decider.
	if m.state == StateJoin {
		if dec.Group.Contains(m.self) {
			m.joinCompleted(dec)
		}
		return
	}

	// Group sequence numbers are only comparable along one decision
	// chain; what arbitrates between chains is the log, and AdoptDecision
	// accepted this one (newer timestamp, no shorter). Reaching here with
	// a *lower* group seq means we are in n-failure — our own chain is
	// dead (e.g. a racing admission view nobody completed) while the
	// sender's rotation lives: follow the live chain — install its group
	// if we are a member, rejoin if not.
	if m.haveGroup && dec.Group.Seq < m.group.Seq {
		if dec.Group.Contains(m.self) {
			m.installGroup(dec.Group)
		} else {
			m.resetForJoin()
			return
		}
	}

	// Membership change?
	if m.haveGroup && dec.Group.Seq >= m.group.Seq && !dec.Group.Contains(m.self) {
		m.handleExclusion(dec)
		return
	}
	if m.haveGroup && dec.Group.Seq > m.group.Seq {
		var departed []model.ProcessID
		for _, q := range m.group.Members {
			if !dec.Group.Contains(q) {
				departed = append(departed, q)
			}
		}
		if len(departed) > 0 {
			// §4.3: the departed members' never-ordered proposals are
			// purged at every member, so no later decider resurrects
			// them with a stale ordering.
			m.bc.DropPendingFrom(departed)
		}
		m.installGroup(dec.Group)
	}

	if m.state == State1FailureReceive && dec.From == m.suspect {
		// The suspected process is alive after all: mask the false
		// alarm (paper: 1-failure-receive --D(suspect)--> wrong-
		// suspicion). Keep the suspect for the ring bookkeeping.
		m.setState(StateWrongSuspicion)
		m.expectAfter(dec.From, dec.SendTS)
		return
	}

	if m.isLate(dec.From, dec.SendTS, now) {
		// Fail-awareness (paper §3): a late message is a performance
		// failure of its sender and is rejected for protocol-control
		// purposes — its log content was absorbed above, but it hands
		// the decider role to no one and resets no surveillance. If the
		// sender is chronically slow, the armed deadlines exclude it; a
		// masked false alarm recovers through the wrong-suspicion
		// takeover instead. This is what makes two concurrent
		// decision-producing deciders impossible even when a stale
		// handoff races a takeover.
		return
	}

	// Any other fresh, timely decision returns the process to
	// failure-free operation and rolls the rotation forward.
	m.setState(StateFailureFree)
	m.clearElection()
	m.setDecider(false)
	m.excluded = false
	next := m.group.Successor(dec.From)
	if next == m.self {
		m.becomeDecider(dec.SendTS)
	} else {
		m.expectAfter(dec.From, dec.SendTS)
	}
}

// isLate applies the timed-asynchronous timeliness test: a message whose
// transmission took more than delta (plus the clock deviation and
// scheduling slack) has suffered a performance failure. The bound is
// per-sender: static mode uses the model's global Delta+Epsilon+Sigma;
// adaptive mode widens it to the link's estimated bound, so a
// slow-but-steady sender's control messages keep their protocol meaning
// instead of being rejected (and the sender eventually excluded) for
// exhibiting the delay its link always has.
func (m *Machine) isLate(from model.ProcessID, sendTS, now model.Time) bool {
	return now.Sub(sendTS) > m.fd.TimelyBound(from)
}

// joinCompleted finishes the join protocol: the decision's membership
// includes this process.
func (m *Machine) joinCompleted(dec *wire.Decision) {
	// Did any other joiner advertise fresher recovered state than our own
	// last advertisement? Checked against the advertised values, not the
	// live broadcast state — adopting this decision may already have
	// cleared cross-lineage coverage. Evaluated before lastJoin is reset.
	fresherSeen := false
	for q, ji := range m.lastJoin {
		if q == m.self || !ji.forming {
			continue
		}
		if ji.lineage > m.advLineage ||
			(ji.lineage == m.advLineage && ji.covered > m.advCovered) {
			fresherSeen = true
			break
		}
	}
	m.installGroup(dec.Group)
	m.setState(StateFailureFree)
	m.clearElection()
	m.lastJoin = make(map[model.ProcessID]joinInfo)
	// Admission into a group with history requires the decider's state
	// transfer, and the State unicast races this decision broadcast:
	// record the debt unless a transfer for (at least) this group already
	// arrived. Initial formation — the adopted log is exactly one
	// membership descriptor at ordinal 1 — has no state to transfer
	// between volatile processes; but when a co-former advertised fresher
	// recovered state, the forming decider's application state is the new
	// lineage's base and ours is stale, so the transfer debt applies.
	formation := len(dec.OAL.Entries) == 1 &&
		dec.OAL.Entries[0].Kind == oal.MembershipDesc &&
		dec.OAL.Entries[0].Ordinal == 1
	if formation {
		m.needState = fresherSeen
		if !fresherSeen {
			// Our own recovered state is the lineage's base: no transfer
			// is coming, so stop deferring deliveries (if we ever were).
			m.bc.DeferDeliveries(false)
		}
	} else if m.appliedStateSeq < dec.Group.Seq {
		m.needState = true
	}
	if m.isLate(dec.From, dec.SendTS, m.env.Now()) {
		return // a later timely decision will arm rotation for us
	}
	next := m.group.Successor(dec.From)
	if next == m.self {
		m.becomeDecider(dec.SendTS)
	} else {
		m.expectAfter(dec.From, dec.SendTS)
	}
}

// handleExclusion reacts to a decision whose membership drops this
// process: remember the new group and wait (paper §4.2, n-failure state)
// until a decision from every new member has been seen, then fall back
// to the join state. The delay keeps this process available for a
// reconfiguration election if the new group immediately fails.
func (m *Machine) handleExclusion(dec *wire.Decision) {
	if !m.excluded || m.exclGroup.Seq != dec.Group.Seq {
		m.excluded = true
		m.exclGroup = dec.Group.Clone()
		m.exclSeen = model.NewProcessSet()
	}
	m.exclSeen.Add(dec.From)
	// The exclusion decision is now "the last group this process is
	// aware of" (paper §4.2 condition 4): an excluded process must never
	// lead a reconfiguration election of a group it does not belong to —
	// it rejoins through the join protocol instead. Not a view install:
	// we are not a member.
	m.group = dec.Group.Clone()
	m.setDecider(false)
	m.fd.ClearExpectation()
	m.env.CancelTimer(TimerExpect)
	m.env.CancelTimer(TimerDecide)
	if m.state != StateNFailure {
		m.enterNFailure(false)
	}
	for _, q := range m.exclGroup.Members {
		if !m.exclSeen.Has(q) {
			return
		}
	}
	// Heard from every new member: the new group is functioning without
	// us. Reset and rejoin.
	m.resetForJoin()
}

// resetForJoin clears all group and log state and restarts the join
// protocol. The broadcast layer is reset because an excluded process's
// history may have diverged from the majority's; the join-time state
// transfer re-establishes it.
func (m *Machine) resetForJoin() {
	m.haveGroup = false
	m.group = model.Group{}
	m.excluded = false
	m.exclSeen = nil
	m.clearElection()
	m.setDecider(false)
	m.lastJoin = make(map[model.ProcessID]joinInfo)
	m.lastReconfig = make(map[model.ProcessID]reconfigInfo)
	m.lastAlive = make(map[model.ProcessID]model.ProcessSet)
	m.fd.Forget()
	m.bc.Reset()
	m.seedSeq()
	m.freezeAdvertisement()
	// The delivered-set was just wiped: if hand-off resumed now, every
	// update the group's retained oal still holds would reach the
	// application a second time once we are re-admitted and adopt a
	// decision. Defer deliveries past what freezeAdvertisement decided
	// (a volatile excluded process advertises zero coverage) until the
	// join-time transfer re-bases the application — ApplyState clears
	// the deferral, as does forming a fresh lineage with no transfer due.
	m.bc.DeferDeliveries(true)
	m.needState = false
	m.appliedStateSeq = 0
	m.nackQ = nil // the wiped log makes the queued IDs meaningless
	m.env.CancelTimer(TimerExpect)
	m.env.CancelTimer(TimerDecide)
	m.env.CancelTimer(TimerNack)
	m.setState(StateJoin)
}

// SelfExclude drops a process that has detected its own performance
// failure (a fail-aware process's duty: it must not keep acting on a
// view whose timeliness assumptions it has personally violated) back to
// the join state. It is semantically an instantaneous crash and
// recovery with a perfect log: the broadcast image is snapshotted
// before the reset and re-seeded after, so the subsequent join
// advertises the process's real coverage and the group can serve a
// delta state transfer instead of a full one — the same warm-rejoin
// path a durable restart takes.
func (m *Machine) SelfExclude() {
	if m.state == StateJoin {
		return
	}
	img := m.bc.SnapshotImage()
	m.resetForJoin()
	m.bc.SeedRecovered(img)
	m.freezeAdvertisement()
	m.stats.SelfExclusions++
}

// --- No-decision handling ----------------------------------------------

func (m *Machine) onNoDecision(nd *wire.NoDecision) {
	if m.state == StateJoin || !m.haveGroup {
		return
	}
	m.pendingND[nd.From] = nd
	if !m.bc.ResolveNoDecisionDelta(nd) {
		// The view is delta-encoded against a baseline we lack. The ring
		// bookkeeping below needs only the header and suspect; the view
		// only matters when concluding the election, which retries the
		// resolution (the baseline may land via OALFull meanwhile).
		m.requestFullOAL(nd.From)
	}

	// Wrong-suspicion resend rule: if we are the suspect, somebody
	// missed our last control message; resend it.
	if nd.Suspect == m.self && m.lastControlMsg != nil {
		m.broadcast(m.lastControlMsg)
	}

	switch m.state {
	case StateFailureFree:
		if m.fd.Satisfies(nd.From, nd.SendTS) {
			// The process we expected a decision from sent a
			// no-decision instead: it missed a decision we hold.
			m.suspect = nd.Suspect
			m.setState(StateWrongSuspicion)
			if nd.Suspect != m.self && nd.From == m.ringPredecessor(m.self) {
				// The ring already reached us: we hold the decision the
				// suspicion is about, so we take over as decider and the
				// group continues unchanged.
				m.setState(StateFailureFree)
				m.clearElection()
				m.becomeDeciderNow()
				return
			}
			m.expectAfter(nd.From, nd.SendTS)
			return
		}
		// A no-decision about the very process we are watching, arriving
		// before our own deadline: if our expectation is still
		// unsatisfied we concur early (clocks differ by at most
		// epsilon). Only a suspicion newer than the control message
		// that armed our expectation counts: an older one complains
		// about an interval that message already covered — typically a
		// masked false alarm's no-decision re-broadcast by the resend
		// rule — and concurring would re-ignite the settled election
		// against the freshly handed-off decider.
		if exp, _, active := m.fd.Expected(); active && nd.Suspect == exp &&
			nd.SendTS > m.fd.ExpectedAfter() {
			m.beginSingleFailure(exp)
		}
	case State1FailureReceive:
		if m.fd.Satisfies(nd.From, nd.SendTS) {
			// The ring progresses ("a no-decision or a decision message
			// every D time units from the expected senders"): keep the
			// surveillance rolling.
			m.rollRing(nd.From, nd.SendTS)
		}
		if nd.Suspect == m.suspect {
			m.actOnPredecessorND()
		}
	case State1FailureSend:
		if m.fd.Satisfies(nd.From, nd.SendTS) {
			// The ring progresses; keep watching it.
			m.rollRing(nd.From, nd.SendTS)
		}
	case StateWrongSuspicion:
		if m.suspect != m.self && nd.From == m.ringPredecessor(m.self) {
			// The ring reached us and we hold the missing decision: we
			// take over as decider and the group continues unchanged —
			// a masked false alarm.
			m.setState(StateFailureFree)
			m.clearElection()
			m.becomeDeciderNow()
			return
		}
		if m.fd.Satisfies(nd.From, nd.SendTS) {
			m.rollRing(nd.From, nd.SendTS)
		}
	case StateNFailure:
		// Single-failure traffic is obsolete here.
	}
}

// rollRing advances the expected-sender surveillance past `from` and
// then drains any ring no-decisions that arrived out of order: with
// random network delays a successor's message can land before its
// predecessor's, and a buffered message must still roll the expectation
// when its turn comes.
func (m *Machine) rollRing(from model.ProcessID, ts model.Time) {
	m.expectAfter(from, ts)
	for i := 0; i < m.params.N; i++ {
		exp, _, active := m.fd.Expected()
		if !active {
			return
		}
		nd, ok := m.pendingND[exp]
		if !ok || !m.fd.Satisfies(exp, nd.SendTS) {
			return
		}
		m.expectAfter(nd.From, nd.SendTS)
	}
}

// actOnPredecessorND checks whether our ring predecessor's no-decision
// (for the current suspect) has arrived, and advances the ring: send our
// own no-decision, or — if we are the suspect's predecessor — conclude
// the election.
func (m *Machine) actOnPredecessorND() {
	if m.state == StateWrongSuspicion {
		return // handled by the wrong-suspicion rules
	}
	pred := m.ringPredecessor(m.self)
	nd, ok := m.pendingND[pred]
	if !ok || nd.Suspect != m.suspect {
		return
	}
	// Election messages are only usable for about (N-1)·D after they
	// were sent (paper §4.1): a stale no-decision belongs to an election
	// the rest of the group has already abandoned.
	if m.env.Now().Sub(nd.SendTS) > model.Duration(m.params.N-1)*m.params.D {
		return
	}
	if m.self != m.group.Predecessor(m.suspect) {
		if !m.ndSent {
			m.sendNoDecision(m.suspect)
			m.setState(State1FailureSend)
			m.rollRing(m.self, m.lastSendTS)
		}
		return
	}
	// We are the suspect's predecessor: every member except the suspect
	// has concurred. Conclude the single-failure election.
	if m.group.Size()-1 >= m.params.Majority() {
		m.winSingleElection()
	} else {
		// Removing the suspect would break the majority: escalate.
		m.enterNFailure(m.ndSent)
	}
}

// beginSingleFailure reacts to a timeout failure (or an early concurring
// no-decision) of the expected sender s.
func (m *Machine) beginSingleFailure(s model.ProcessID) {
	m.suspect = s
	m.bc.SuppressSender(s, m.env.Now())
	if m.self == m.group.Successor(s) {
		m.sendNoDecision(s)
		m.setState(State1FailureSend)
		// Watch the ring: our own message restarts the chain.
		m.rollRing(m.self, m.lastSendTS)
		if m.group.Size() == 2 {
			// Degenerate ring: in a two-member group we are both the
			// suspect's successor and its predecessor, so there is no
			// one left to concur and nothing to arm surveillance on
			// (the ring successor of self is self). Conclude at once —
			// "every member except the suspect" has vacuously concurred
			// — or the process would wait in 1-failure-send forever.
			if m.group.Size()-1 >= m.params.Majority() {
				m.winSingleElection()
			} else {
				m.enterNFailure(m.ndSent)
			}
		}
	} else {
		m.setState(State1FailureReceive)
		// The ring starts at the suspect's successor; buffered
		// no-decisions that already arrived roll the surveillance.
		m.rollRing(s, m.fd.LastTS(s))
		m.actOnPredecessorND()
	}
}

// winSingleElection removes the suspect, reconciles the log (§4.3) and
// takes over as decider.
func (m *Machine) winSingleElection() {
	now := m.env.Now()
	departed := []model.ProcessID{m.suspect}
	newGroup := m.group.Remove(m.suspect)
	newGroup.Seq = m.nextGroupSeq()

	reports := make([]broadcast.Report, 0, len(m.pendingND))
	for _, from := range newGroup.Members {
		nd, ok := m.pendingND[from]
		if !ok {
			continue
		}
		view := &nd.View
		if !m.bc.ResolveNoDecisionDelta(nd) {
			// Still delta-encoded against a baseline we lack. The view's
			// Next rides the wire even in delta form, so we can tell
			// whether the peer's log extends past ours: if it does, we
			// must not reconcile without it — stand down and let the
			// requested baseline arrive (or the election escalate to the
			// reconfiguration protocol, whose views are always full).
			if nd.View.Next > m.bc.CurrentView().Next {
				m.requestFullOAL(from)
				return
			}
			// A prefix of our log: its entries add nothing; its dpd (sent
			// separately, never delta-encoded) still counts.
			view = nil
		}
		reports = append(reports, broadcast.Report{From: from, View: view, DPD: nd.DPD})
	}
	m.bc.Reconcile(now, newGroup, departed, reports)
	m.installGroup(newGroup)
	m.stats.SingleElections++
	m.setState(StateFailureFree)
	m.clearElection()
	m.becomeDeciderNow()
}

// sendNoDecision broadcasts a no-decision message suspecting q, carrying
// this process's oal view and dpd (§4.3).
func (m *Machine) sendNoDecision(q model.ProcessID) {
	m.bc.SuppressSender(q, m.env.Now())
	view, baseTS, truncBelow := m.bc.NoDecisionView()
	nd := &wire.NoDecision{
		Header:     wire.Header{From: m.self, SendTS: m.sendTS()},
		Suspect:    q,
		GroupSeq:   m.group.Seq,
		View:       view,
		BaseTS:     baseTS,
		TruncBelow: truncBelow,
		DPD:        m.bc.DPD(),
		Alive:      m.fd.DirectAliveList(m.env.Now()),
	}
	m.broadcast(nd)
	m.lastControlMsg = nd
	m.ndSent = true
	m.stats.NDsSent++
}

// --- Timeout handling ----------------------------------------------------

func (m *Machine) onExpectTimeout() {
	now := m.env.Now()
	suspect, deadline, timedOut := m.fd.TimedOut(now)
	if !timedOut {
		// Not expired: either a stale timer, or the synchronized clock
		// was stepped backwards by a correction after the timer was
		// armed. Re-arm for the still-pending deadline.
		if _, pending, active := m.fd.Expected(); active {
			m.env.SetTimer(TimerExpect, pending.Add(1))
		}
		return
	}
	if m.cfg.Hooks.Suspicion != nil {
		m.cfg.Hooks.Suspicion(suspect, deadline, now)
	}
	if m.sv != nil && m.sv.Watches(suspect) && m.sv.ShouldOriginate(suspect, now) {
		// Share the local timeout with the rest of the group: under
		// partial view most members never watched this edge and would
		// otherwise learn of the failure a full silence window later.
		// Only the suspect's designated watchers speak — every member of
		// the rotation observes this timeout at once, and N concurrent
		// originations would defeat the O(N·k) traffic bound.
		m.gossipSuspect(suspect)
	}
	m.fd.ClearExpectation()
	switch m.state {
	case StateFailureFree:
		if m.cfg.DisableFastPath {
			m.suspect = suspect
			m.bc.SuppressSender(suspect, now)
			m.enterNFailure(false)
			return
		}
		m.beginSingleFailure(suspect)
	case StateWrongSuspicion, State1FailureReceive, State1FailureSend:
		// The single-failure election itself stalled: more than one
		// failure has occurred.
		m.enterNFailure(m.ndSent)
	case StateNFailure, StateJoin:
		// No expectations are armed in these states.
	}
}

// --- Decider duty --------------------------------------------------------

// becomeDecider assumes the decider role with the configured batching
// hold; the decision goes out on TimerDecide. baseTS is the send
// timestamp of the decision that handed us the role: peers expect our
// control message by baseTS+2D, so when that decision arrived late (a
// retransmission after a masked false alarm) the hold is shortened to
// keep our decision inside their deadline.
func (m *Machine) becomeDecider(baseTS model.Time) {
	m.setDecider(true)
	m.fd.ClearExpectation()
	m.env.CancelTimer(TimerExpect)
	now := m.env.Now()
	at := now.Add(m.cfg.DeciderHold)
	if limit := baseTS.Add(m.params.D - m.params.Delta); limit >= now && at > limit {
		// The handing decision is timely: shorten the hold so our
		// decision lands inside the peers' baseTS+2D deadline.
		at = limit
	}
	// When the handing decision is stale (a retransmission after a
	// masked false alarm), peers have re-based their deadlines on
	// receipt (expectAfter grants now+D), so the full hold applies — it
	// also gives a concurrent wrong-suspicion takeover decision time to
	// arrive and relinquish us before we send a competing one.
	m.env.SetTimer(TimerDecide, at)
}

// becomeDeciderNow assumes the decider role and sends the decision
// immediately (election wins, group formation).
func (m *Machine) becomeDeciderNow() {
	m.setDecider(true)
	m.fd.ClearExpectation()
	m.env.CancelTimer(TimerExpect)
	m.env.CancelTimer(TimerDecide)
	m.sendDecision()
}

// sendDecision performs the decider duty: admit eligible joiners, build
// and broadcast the decision, transfer state to fresh admissions, hand
// the role to the successor and start watching it.
func (m *Machine) sendDecision() {
	now := m.env.Now()
	admitted := m.admitJoiners(now)

	// The wire alive-list is first-hand only: receivers treat each entry
	// as a gossiped vouch, and re-exporting vouches would echo (see
	// noteAlive).
	dec, missing := m.bc.BuildDecision(m.sendTS(), m.group, m.fd.DirectAliveList(now))
	m.broadcast(dec)
	m.lastControlMsg = dec
	m.stats.DecisionsSent++
	m.setDecider(false)

	m.queueNack(missing, wire.Causal{})
	for _, j := range admitted {
		ji := m.lastJoin[j]
		m.unicast(j, m.bc.BuildState(dec.SendTS, ji.covered, ji.lineage))
	}

	if m.group.Size() <= 1 {
		// Singleton group: the role rotates back to us.
		m.setDecider(true)
		m.env.SetTimer(TimerDecide, now.Add(m.params.D))
		return
	}
	m.expectAfter(m.self, dec.SendTS)
}

// admitJoiners implements the rejoin rule: a non-member j is admitted
// when this decider has heard j's join recently and every current member
// piggybacked j in its alive-list. Returns the processes admitted now
// (state transfer follows the decision). It also re-sends state to
// current members that are still joining (they missed our earlier
// transfer).
func (m *Machine) admitJoiners(now model.Time) []model.ProcessID {
	var admitted []model.ProcessID
	alive := m.fd.AliveSet(now)
	joiners := make([]model.ProcessID, 0, len(m.lastJoin))
	for j := range m.lastJoin {
		joiners = append(joiners, j)
	}
	slices.Sort(joiners)
	for _, j := range joiners {
		ji := m.lastJoin[j]
		if now.Sub(ji.ts) > m.params.CycleLen() {
			continue // stale join
		}
		if m.group.Contains(j) {
			// A current member still joining: it missed its state
			// transfer; send again (rate-limited).
			if now.Sub(m.lastStateSent[j]) >= m.params.CycleLen() {
				m.lastStateSent[j] = now
				m.unicast(j, m.bc.BuildState(now, ji.covered, ji.lineage))
			}
			continue
		}
		if !alive.Has(j) {
			continue
		}
		ok := true
		for _, r := range m.group.Members {
			if r == m.self {
				continue
			}
			la, have := m.lastAlive[r]
			if !have || !la.Has(j) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		newGroup := model.NewGroup(m.nextGroupSeq(), append([]model.ProcessID{j}, m.group.Members...))
		m.bc.AnnounceGroup(now, newGroup)
		m.installGroup(newGroup)
		m.lastStateSent[j] = now
		m.stats.Admissions++
		admitted = append(admitted, j)
	}
	return admitted
}
