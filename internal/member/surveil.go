package member

// k-successor surveillance (wire v8): with Config.Surveillance.K > 0 the
// machine stops relying on every member directly timing every peer and
// instead watches k ring successors (internal/surveil), disseminating
// failure evidence as incarnation-numbered Suspicion/Refute gossip.
//
// The §3 agreement and ordering invariants are untouched because gossip
// is consumed on exactly the path local timeouts already take: a fresh
// gossiped suspicion may call beginSingleFailure only under the same
// guard the early-concur no-decision rule uses — it must name the
// currently armed expected sender, carry evidence newer than the
// expectation's base, and find the machine failure-free. Everything
// else gossip does is side-channel: relaying, refuting, and feeding the
// failure detector's partial-view alive union.

import (
	"timewheel/internal/model"
	"timewheel/internal/surveil"
	"timewheel/internal/wire"
)

// initSurveil sets up the surveillance subsystem at construction time
// when Config.Surveillance.K > 0, deriving the undeclared durations
// from the protocol params.
func (m *Machine) initSurveil() {
	cfg := m.cfg.Surveillance
	if cfg.K <= 0 {
		return
	}
	if cfg.SuspectAfter <= 0 {
		// Two full cycles: the rotation makes every member broadcast a
		// control message once per cycle, so two silent cycles mean two
		// missed decider slots — well past any adaptive grant.
		cfg.SuspectAfter = 2 * m.params.CycleLen()
	}
	if cfg.RefuteBackoff <= 0 {
		cfg.RefuteBackoff = m.params.CycleLen()
	}
	if cfg.ResuspectAfter <= 0 {
		cfg.ResuspectAfter = m.params.CycleLen()
	}
	m.cfg.Surveillance = cfg
	m.sv = surveil.New(m.self, cfg)
	m.fd.EnablePartialView()
}

// refreshSurveil recomputes the surveillance ring for the current group.
// Called from installGroup — every view install re-knits the ring, which
// is what re-adopts a member whose watchers all died. The detector's
// gossip-vouch store is pruned to the new membership at the same time:
// an ejected member's vouches must not keep it on the alive union.
func (m *Machine) refreshSurveil() {
	if m.sv == nil {
		return
	}
	m.sv.SetView(m.group.Members, m.fd.EdgeTimely)
	m.fd.PruneGossipAlive(m.group.Members)
}

// surveilScan runs once per own slot: originate a suspicion for every
// watch target that has been silent — no timely direct message and no
// fresh gossiped vouch — for longer than SuspectAfter.
func (m *Machine) surveilScan() {
	if m.sv == nil || !m.haveGroup || m.state != StateFailureFree {
		return
	}
	now := m.env.Now()
	for _, w := range m.sv.Watch() {
		last := m.fd.LastHeard(w)
		if last == 0 {
			// Never heard at all: a freshly admitted view; the admission
			// path required liveness evidence moments ago.
			continue
		}
		if now.Sub(last) <= m.cfg.Surveillance.SuspectAfter {
			continue
		}
		if !m.sv.ShouldOriginate(w, now) {
			continue
		}
		m.gossipSuspect(w)
	}
}

// gossipSuspect originates a suspicion of `suspect` at its current
// incarnation and fans it out to the k relay successors. The suspect
// itself is deliberately among the candidates — reaching it directly is
// the fastest route to a refutation of a false alarm.
func (m *Machine) gossipSuspect(suspect model.ProcessID) {
	if m.sv == nil || len(m.sv.Relays()) == 0 {
		return
	}
	inc := m.sv.Incarnation(suspect)
	ts := m.sendTS()
	s := &wire.Suspicion{
		Header:      wire.Header{From: m.self, SendTS: ts},
		Suspect:     suspect,
		Origin:      m.self,
		Incarnation: inc,
		OriginTS:    ts,
	}
	// Record the origination locally so relayed copies that loop back
	// classify as duplicates, and mark (suspect, inc) relayed — our own
	// fan-out is this node's contribution to the flood, so a concurrent
	// origin's copy of the same suspicion must not make us flood again.
	m.sv.ObserveSuspicion(suspect, m.self, inc, ts)
	m.sv.NeedsRelaySuspicion(suspect, inc, m.env.Now())
	for _, to := range m.sv.Relays() {
		m.unicast(to, s)
	}
	m.stats.SuspicionsGossiped++
}

// onSuspicion handles a received suspicion: dedup/staleness-classify,
// refute if it names us, otherwise relay and — under the §3 guard —
// consume it on the local-timeout path.
func (m *Machine) onSuspicion(s *wire.Suspicion) {
	if m.sv == nil || !m.haveGroup || m.state == StateJoin {
		return
	}
	switch m.sv.ObserveSuspicion(s.Suspect, s.Origin, s.Incarnation, s.OriginTS) {
	case surveil.Duplicate:
		m.stats.GossipDuplicates++
		return
	case surveil.Stale:
		m.stats.StaleSuspicions++
		return
	}
	if s.Suspect == m.self {
		m.refuteSelf(s.Incarnation)
		return
	}
	if m.sv.NeedsRelaySuspicion(s.Suspect, s.Incarnation, m.env.Now()) {
		m.relayGossip(s, s.From, s.Origin)
	}
	// Consume exactly like the early-concur no-decision rule: only a
	// suspicion of the armed expected sender, with evidence newer than
	// the control message that armed the expectation, in failure-free
	// operation. Anything looser would let remote gossip start elections
	// the §3 at-most-one-decider argument never accounted for.
	if m.state == StateFailureFree {
		if exp, _, active := m.fd.Expected(); active && s.Suspect == exp &&
			s.OriginTS > m.fd.ExpectedAfter() {
			m.beginSingleFailure(exp)
		}
	}
}

// onRefute handles a received refute: a fresh one is second-hand proof
// of life — feed the partial-view alive union and relay.
func (m *Machine) onRefute(r *wire.Refute) {
	if m.sv == nil || !m.haveGroup || m.state == StateJoin {
		return
	}
	switch m.sv.ObserveRefute(r.Refuter, r.Incarnation, r.OriginTS) {
	case surveil.Duplicate:
		m.stats.GossipDuplicates++
		return
	case surveil.Stale:
		m.stats.StaleSuspicions++
		return
	}
	m.fd.RecordGossipAlive(r.Refuter, r.OriginTS)
	m.relayGossip(r, r.From, r.Refuter)
}

// refuteSelf answers a fresh suspicion naming this process: bump the
// incarnation past the suspicion's and, backoff permitting, gossip a
// refute and rebroadcast the last control message — the same
// prove-liveness-with-substance move as the wrong-suspicion resend rule.
func (m *Machine) refuteSelf(suspicionInc uint64) {
	now := m.env.Now()
	inc, ok := m.sv.RefuteSelf(suspicionInc, now)
	if !ok {
		return // backoff window open: the incarnation still advanced
	}
	ts := m.sendTS()
	r := &wire.Refute{
		Header:      wire.Header{From: m.self, SendTS: ts},
		Refuter:     m.self,
		Incarnation: inc,
		OriginTS:    ts,
	}
	for _, to := range m.sv.Relays() {
		m.unicast(to, r)
	}
	m.stats.RefutesSent++
	if m.lastControlMsg != nil {
		m.broadcast(m.lastControlMsg)
	}
}

// relayGossip forwards a fresh gossip message to the k relay successors,
// skipping the peer it came from and the peer it is about (both already
// know). The copy gets a fresh header — relays are new datagrams from
// us — but the Origin/Incarnation/OriginTS dedup identity rides along
// unchanged.
func (m *Machine) relayGossip(msg wire.Message, from, about model.ProcessID) {
	if len(m.sv.Relays()) == 0 {
		return
	}
	var cp wire.Message
	switch v := msg.(type) {
	case *wire.Suspicion:
		c := *v
		c.Header = wire.Header{From: m.self, SendTS: m.sendTS()}
		cp = &c
	case *wire.Refute:
		c := *v
		c.Header = wire.Header{From: m.self, SendTS: m.sendTS()}
		cp = &c
	default:
		return
	}
	sent := false
	for _, to := range m.sv.Relays() {
		if to == from || to == about {
			continue
		}
		m.unicast(to, cp)
		sent = true
	}
	if sent {
		m.stats.GossipRelays++
	}
}
