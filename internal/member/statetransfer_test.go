package member

import (
	"bytes"
	"testing"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// historyDecision crafts a decision admitting `joiner` into a group that
// has prior history (the log starts above ordinal 1), so the joiner needs
// a state transfer.
func historyDecision(now model.Time, from, joiner model.ProcessID) *wire.Decision {
	g1 := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3})
	g2 := model.NewGroup(2, []model.ProcessID{0, 1, 2, 3, joiner})
	l := oal.NewList()
	l.AppendMembership(g1)
	l.AppendUpdate(oal.ProposalID{Proposer: 0, Seq: 1},
		oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}, now-100, 0, 0)
	l.AppendMembership(g2)
	return &wire.Decision{
		Header: wire.Header{From: from, SendTS: now},
		Group:  g2,
		OAL:    *l,
		Alive:  g2.Members,
	}
}

// stateRig is a joiner whose Install hook records what was installed.
type stateRig struct {
	env       *fakeEnv
	m         *Machine
	p         model.Params
	installed [][]byte
}

func newStateRig(self model.ProcessID) *stateRig {
	r := &stateRig{env: newFakeEnv(), p: model.DefaultParams(5)}
	bc := broadcast.New(self, r.p, broadcast.Config{
		Install: func(b []byte) { r.installed = append(r.installed, bytes.Clone(b)) },
	})
	r.m = New(self, r.p, Config{}, r.env, bc)
	r.m.Start()
	return r
}

func (r *stateRig) joinsSent() uint64 { return r.m.Stats().JoinsSent }

// TestAdmissionDecisionBeforeStateTransfer covers the race the decider
// cannot prevent: its admission decision (a broadcast) overtakes the
// State unicast. The joiner must keep asking for the transfer and apply
// it when it finally arrives, even though it already holds a group and a
// non-empty log.
func TestAdmissionDecisionBeforeStateTransfer(t *testing.T) {
	r := newStateRig(4)
	dec := historyDecision(r.env.now, 0, 4)
	r.m.OnMessage(dec)
	if r.m.State() != StateFailureFree {
		t.Fatalf("state after admission: %v", r.m.State())
	}
	if len(r.installed) != 0 {
		t.Fatalf("no State received yet, but Install ran: %q", r.installed)
	}

	// The joiner's own slot re-advertises it so the decider resends.
	before := r.joinsSent()
	r.env.now = r.p.NextSlotOf(4, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.joinsSent() != before+1 {
		t.Fatalf("admitted-but-stateless member did not re-send join")
	}
	if got := r.env.lastSent(); got.Kind() != wire.KindJoin {
		t.Fatalf("sent %v, want join", got.Kind())
	}

	// The late State must be applied despite state=FF and a non-empty log.
	r.m.OnMessage(&wire.State{
		Header:   wire.Header{From: 0, SendTS: r.env.now},
		GroupSeq: 2,
		AppState: []byte("snapshot"),
	})
	if len(r.installed) != 1 || string(r.installed[0]) != "snapshot" {
		t.Fatalf("installed: %q", r.installed)
	}

	// Debt paid: the next slot sends no further joins.
	before = r.joinsSent()
	r.env.now = r.p.NextSlotOf(4, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.joinsSent() != before {
		t.Fatalf("join sent after state transfer completed")
	}
}

// TestAdmissionStateBeforeDecision is the benign order: the State arrives
// while still joining, so admission creates no transfer debt.
func TestAdmissionStateBeforeDecision(t *testing.T) {
	r := newStateRig(4)
	r.m.OnMessage(&wire.State{
		Header:   wire.Header{From: 0, SendTS: r.env.now},
		GroupSeq: 2,
		AppState: []byte("snapshot"),
	})
	if len(r.installed) != 1 {
		t.Fatalf("join-state State not applied")
	}
	r.m.OnMessage(historyDecision(r.env.now, 0, 4))
	if r.m.State() != StateFailureFree {
		t.Fatalf("state: %v", r.m.State())
	}
	before := r.joinsSent()
	r.env.now = r.p.NextSlotOf(4, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.joinsSent() != before {
		t.Fatalf("join sent although the transfer already arrived")
	}
}

// TestStaleStateTransferRejected: once a member, a State predating the
// current group (a delayed duplicate from an earlier admission attempt)
// must not clobber the log.
func TestStaleStateTransferRejected(t *testing.T) {
	r := newStateRig(4)
	r.m.OnMessage(historyDecision(r.env.now, 0, 4)) // needState now set
	r.m.OnMessage(&wire.State{
		Header:   wire.Header{From: 0, SendTS: r.env.now},
		GroupSeq: 1, // older than the admitted group (seq 2)
		AppState: []byte("stale"),
	})
	if len(r.installed) != 0 {
		t.Fatalf("stale State applied: %q", r.installed)
	}
	// The current-group State still lands.
	r.m.OnMessage(&wire.State{
		Header:   wire.Header{From: 0, SendTS: r.env.now},
		GroupSeq: 2,
		AppState: []byte("fresh"),
	})
	if len(r.installed) != 1 || string(r.installed[0]) != "fresh" {
		t.Fatalf("installed: %q", r.installed)
	}
}

// TestFormationAdoptionNeedsNoStateTransfer: adopting the initial
// formation decision (one membership descriptor at ordinal 1) creates no
// transfer debt — there is no history to transfer.
func TestFormationAdoptionNeedsNoStateTransfer(t *testing.T) {
	r := newStateRig(4)
	g := model.NewGroup(1, []model.ProcessID{0, 1, 2, 3, 4})
	l := oal.NewList()
	l.AppendMembership(g)
	r.m.OnMessage(&wire.Decision{
		Header: wire.Header{From: 0, SendTS: r.env.now},
		Group:  g, OAL: *l, Alive: g.Members,
	})
	if r.m.State() != StateFailureFree {
		t.Fatalf("state: %v", r.m.State())
	}
	before := r.joinsSent()
	r.env.now = r.p.NextSlotOf(4, r.env.now)
	r.m.OnTimer(TimerSlot)
	if r.joinsSent() != before {
		t.Fatalf("formation member begged for a state transfer")
	}
}
