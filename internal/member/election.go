package member

import (
	"slices"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// onOwnSlot runs at the start of each of this process's own time slots:
// join-state processes send join messages, n-failure processes send
// reconfiguration messages and evaluate the election win condition.
func (m *Machine) onOwnSlot() {
	m.bc.CheckTermination(m.env.Now())
	m.surveilScan()
	if m.needState && m.haveGroup && m.state != StateJoin {
		// The join-time state transfer is still outstanding (the State
		// unicast was lost, or a newer admission superseded the one we
		// got): re-advertise as a joiner so the decider's resend path
		// (admitJoiners) fires again. Not via sendJoin — this must not
		// displace lastControlMsg, which the wrong-suspicion resend rule
		// may need for a decision.
		// The advertised coverage repeats the last sendJoin values rather
		// than the live broadcast state: while the transfer is outstanding
		// this process's application state still has the base it had when
		// it joined, so a fresher live claim (e.g. the new lineage adopted
		// from the admitting decision) would earn a delta on top of the
		// wrong base. The stale claim degrades safely to a full transfer.
		m.broadcast(&wire.Join{
			Header:         wire.Header{From: m.self, SendTS: m.sendTS()},
			JoinList:       []model.ProcessID{m.self},
			CoveredOrdinal: m.advCovered,
			Lineage:        m.advLineage,
		})
		m.stats.JoinsSent++
	}
	switch m.state {
	case StateJoin:
		m.sendJoin()
		m.tryFormInitialGroup()
	case StateNFailure:
		if m.env.Now().Sub(m.nfSince) > model.Duration(m.cfg.NFFallbackCycles)*m.params.CycleLen() {
			// No election has succeeded for a long time: the survival
			// assumption is gone (our "last group" can never supply a
			// majority). Forfeit the group knowledge and rejoin.
			m.resetForJoin()
			m.sendJoin()
			return
		}
		m.sendReconfig()
		m.tryWinReconfigElection()
	}
}

// lastSlotStartOf returns the start of q's most recent slot at or before
// now, less the clock tolerance epsilon+sigma. Election freshness
// ("received in p's last time slot") is judged against it: a timestamp q
// stamped at its slot start on its own synchronized clock may lag this
// process's clock by up to the synchronization deviation.
func (m *Machine) lastSlotStartOf(q model.ProcessID, now model.Time) model.Time {
	next := m.params.NextSlotOf(q, now) // strictly after now
	return next.Add(-m.params.CycleLen() - m.params.Epsilon - m.params.Sigma)
}

// --- Join protocol -------------------------------------------------------

// joinList returns this process's join-list: itself plus every process
// whose join message arrived within the last cycle (the paper's N-1
// slots, widened by one slot plus the clock tolerance so that the
// cyclic successor's once-per-cycle join does not age out at the exact
// window edge; the strict per-sender "last slot" freshness of the win
// condition is what guarantees at-most-one-decider).
func (m *Machine) joinList(now model.Time) model.ProcessSet {
	window := m.params.CycleLen() + m.params.Epsilon + m.params.Sigma
	jl := model.NewProcessSet(m.self)
	for q, ji := range m.lastJoin {
		// Non-forming joins (a member re-advertising a lost state
		// transfer) stay out: that member never evaluates the formation
		// rule, so counting it would demand a join-list convergence it
		// cannot take part in.
		if q != m.self && ji.forming && now.Sub(ji.ts) <= window {
			jl.Add(q)
		}
	}
	return jl
}

// freezeAdvertisement captures the recovered coverage this process will
// advertise for the whole of the upcoming join: every sendJoin repeats
// the frozen values rather than re-sampling the broadcast layer. While
// joining the process adopts live decisions, and the live
// CoveredOrdinal counts stable-truncated ordinals it never applied —
// re-advertising it would shrink the replay delta below what the
// recovered application state actually holds. Deliveries are deferred
// for the same reason whenever a nonzero claim is advertised (a delta,
// not a rebasing full install, may answer it). For volatile processes
// both values are zero and the deferral stays off: behavior is
// unchanged.
func (m *Machine) freezeAdvertisement() {
	m.advCovered, m.advLineage = m.bc.CoveredOrdinal(), m.bc.Lineage()
	m.bc.DeferDeliveries(m.advCovered > 0 && m.advLineage != 0)
}

func (m *Machine) sendJoin() {
	now := m.env.Now()
	j := &wire.Join{
		Header:         wire.Header{From: m.self, SendTS: m.sendTS()},
		JoinList:       m.joinList(now).Sorted(),
		CoveredOrdinal: m.advCovered,
		Lineage:        m.advLineage,
		Forming:        true,
	}
	m.broadcast(j)
	m.lastControlMsg = j
	m.stats.JoinsSent++
}

// onJoin records a join message. Current members track joiners through
// their alive-lists (joins are control messages); joining processes
// build join-lists from them.
func (m *Machine) onJoin(j *wire.Join) {
	m.lastJoin[j.From] = joinInfo{
		ts:      j.SendTS,
		list:    model.NewProcessSet(j.JoinList...),
		covered: j.CoveredOrdinal,
		lineage: j.Lineage,
		forming: j.Forming,
	}
}

// tryFormInitialGroup applies the paper's initial-formation rule in this
// process's own slot: it becomes the first decider when (1) its
// join-list contains a majority of the team, and (2) it received a join
// message from every other join-list member in that member's last slot
// carrying an identical join-list.
func (m *Machine) tryFormInitialGroup() {
	now := m.env.Now()
	jl := m.joinList(now)
	if len(jl) < m.params.Majority() {
		return
	}
	for q := range jl {
		if q == m.self {
			continue
		}
		ji := m.lastJoin[q]
		if ji.ts < m.lastSlotStartOf(q, now) {
			return // stale: not from q's last slot
		}
		if !ji.list.Equal(jl) {
			return // join-lists have not converged yet
		}
	}
	if m.staleForFormation(jl) {
		return // a joiner with fresher recovered state must form instead
	}
	group := model.NewGroup(m.nextGroupSeq(), jl.Sorted())
	// Formation restarts the ordinal space: announce the new lineage so
	// every decision carries it and stale recovered coverage is dropped.
	m.bc.BeginLineage(group.Seq)
	m.bc.AnnounceGroup(now, group)
	m.installGroup(group)
	m.setState(StateFailureFree)
	m.clearElection()
	m.lastJoin = make(map[model.ProcessID]joinInfo)
	m.becomeDeciderNow()
}

// staleForFormation reports whether another join-list member advertised
// fresher recovered state than this process, in which case this process
// must not win the formation race: the first decider's application
// state becomes the new lineage's base, so the freshest recovered state
// has to form the group (everyone else re-syncs from it). Ordering is
// by (lineage, covered, process id) — lineages grow monotonically, so a
// higher lineage means a later, fresher history. With no recovered
// state anywhere (all advertisements zero) the gate is inert and
// formation behaves exactly as in the volatile protocol.
func (m *Machine) staleForFormation(jl model.ProcessSet) bool {
	// Compare what everyone *advertised*: our live broadcast coverage
	// may have drifted upward from decisions adopted mid-join, and the
	// peers ranked us by the frozen values our joins carried.
	myLin, myCov := m.advLineage, m.advCovered
	any := myLin != 0 || myCov != 0
	stale := false
	for q := range jl {
		if q == m.self {
			continue
		}
		ji := m.lastJoin[q]
		if ji.lineage != 0 || ji.covered != 0 {
			any = true
		}
		if ji.lineage > myLin ||
			(ji.lineage == myLin && ji.covered > myCov) ||
			(ji.lineage == myLin && ji.covered == myCov && q > m.self) {
			stale = true
		}
	}
	return any && stale
}

// --- Reconfiguration (multiple-failure) protocol --------------------------

// enterNFailure switches to the n-failure state. If this process sent a
// no-decision message in the failed single-failure election, it is
// quarantined for N-1 slots: its no-decision must not combine with a
// reconfiguration message to elect two deciders (paper §4.2), so it
// sends empty reconfiguration-lists and skips win evaluation until the
// quarantine expires.
func (m *Machine) enterNFailure(sentND bool) {
	now := m.env.Now()
	if sentND {
		m.quarantineUntil = now.Add(model.Duration(m.params.N-1) * m.params.SlotLen())
	}
	m.fd.ClearExpectation()
	m.env.CancelTimer(TimerExpect)
	m.env.CancelTimer(TimerDecide)
	m.setDecider(false)
	// The single-failure episode is over; its buffered no-decisions must
	// never complete a ghost election later.
	m.pendingND = make(map[model.ProcessID]*wire.NoDecision)
	if m.state != StateNFailure {
		m.nfSince = now
	}
	m.setState(StateNFailure)
}

// reconfigList returns this process's reconfiguration-list: itself plus
// every process whose reconfiguration message arrived within the last
// cycle (widened like joinList; see there). During quarantine the list
// is empty.
func (m *Machine) reconfigList(now model.Time) model.ProcessSet {
	if now < m.quarantineUntil {
		return model.NewProcessSet()
	}
	window := m.params.CycleLen() + m.params.Epsilon + m.params.Sigma
	rl := model.NewProcessSet(m.self)
	for q, ri := range m.lastReconfig {
		if q != m.self && now.Sub(ri.msg.SendTS) <= window {
			rl.Add(q)
		}
	}
	return rl
}

func (m *Machine) sendReconfig() {
	now := m.env.Now()
	// Anyone absent from our reconfiguration-list is one we are asking
	// to remove: suppress their in-flight proposals (§4.3).
	rl := m.reconfigList(now)
	for _, q := range m.group.Members {
		if q != m.self && !rl.Has(q) {
			m.bc.SuppressSender(q, now)
		}
	}
	r := &wire.Reconfig{
		Header:         wire.Header{From: m.self, SendTS: m.sendTS()},
		ReconfigList:   rl.Sorted(),
		LastDecisionTS: m.bc.LastDecisionTS(),
		GroupSeq:       m.group.Seq,
		View:           *m.bc.CurrentView(),
		DPD:            m.bc.DPD(),
		Alive:          m.fd.DirectAliveList(now),
	}
	m.broadcast(r)
	m.lastControlMsg = r
	m.stats.ReconfigsSent++
}

// onReconfig records a reconfiguration message and handles the state
// transitions it triggers outside the n-failure state: a reconfiguration
// from the expected sender signals multiple failures.
func (m *Machine) onReconfig(r *wire.Reconfig) {
	if m.state == StateJoin || !m.haveGroup {
		return
	}
	m.lastReconfig[r.From] = reconfigInfo{msg: r}
	switch m.state {
	case StateFailureFree, StateWrongSuspicion, State1FailureReceive, State1FailureSend:
		if m.fd.Satisfies(r.From, r.SendTS) {
			m.enterNFailure(m.ndSent)
		}
	case StateNFailure:
		// Recorded above; the win condition is evaluated in our slot.
	}
}

// tryWinReconfigElection applies the paper's four-part win condition in
// this process's own slot: there must be a majority S (including this
// process) whose reconfiguration messages (a) arrived in their senders'
// last slots, (b) carry reconfiguration-lists identical to ours,
// (c) propose decision timestamps no newer than ours, and (d) whose
// members all belonged to the last group we know. The winner reconciles
// the log, forms the new group from exactly S, and becomes decider.
func (m *Machine) tryWinReconfigElection() {
	now := m.env.Now()
	if now < m.quarantineUntil {
		return
	}
	if !m.haveGroup || !m.group.Contains(m.self) {
		return
	}
	myList := m.reconfigList(now)
	myTS := m.bc.LastDecisionTS()

	members := []model.ProcessID{m.self}
	var reports []broadcast.Report
	peers := make([]model.ProcessID, 0, len(m.lastReconfig))
	for q := range m.lastReconfig {
		peers = append(peers, q)
	}
	slices.Sort(peers)
	for _, q := range peers {
		if q == m.self {
			continue
		}
		msg := m.lastReconfig[q].msg
		if msg.SendTS < m.lastSlotStartOf(q, now) {
			continue // not from q's last slot
		}
		if !model.NewProcessSet(msg.ReconfigList...).Equal(myList) {
			continue
		}
		if msg.LastDecisionTS > myTS {
			return // someone holds a fresher decision: they must lead
		}
		if !m.group.Contains(q) {
			continue
		}
		members = append(members, q)
		reports = append(reports, broadcast.Report{From: q, View: &msg.View, DPD: msg.DPD})
	}
	if len(members) < m.params.Majority() {
		return
	}

	newGroup := model.NewGroup(m.nextGroupSeq(), members)
	var departed []model.ProcessID
	for _, q := range m.group.Members {
		if !newGroup.Contains(q) {
			departed = append(departed, q)
		}
	}
	m.bc.Reconcile(now, newGroup, departed, reports)
	m.installGroup(newGroup)
	m.stats.ReconfigElections++
	m.setState(StateFailureFree)
	m.clearElection()
	m.lastReconfig = make(map[model.ProcessID]reconfigInfo)
	m.quarantineUntil = 0
	m.becomeDeciderNow()
}
