package member

import (
	"slices"

	"timewheel/internal/broadcast"
	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// onOwnSlot runs at the start of each of this process's own time slots:
// join-state processes send join messages, n-failure processes send
// reconfiguration messages and evaluate the election win condition.
func (m *Machine) onOwnSlot() {
	m.bc.CheckTermination(m.env.Now())
	if m.needState && m.haveGroup && m.state != StateJoin {
		// The join-time state transfer is still outstanding (the State
		// unicast was lost, or a newer admission superseded the one we
		// got): re-advertise as a joiner so the decider's resend path
		// (admitJoiners) fires again. Not via sendJoin — this must not
		// displace lastControlMsg, which the wrong-suspicion resend rule
		// may need for a decision.
		m.env.Broadcast(&wire.Join{
			Header:   wire.Header{From: m.self, SendTS: m.sendTS()},
			JoinList: []model.ProcessID{m.self},
		})
		m.stats.JoinsSent++
	}
	switch m.state {
	case StateJoin:
		m.sendJoin()
		m.tryFormInitialGroup()
	case StateNFailure:
		if m.env.Now().Sub(m.nfSince) > model.Duration(m.cfg.NFFallbackCycles)*m.params.CycleLen() {
			// No election has succeeded for a long time: the survival
			// assumption is gone (our "last group" can never supply a
			// majority). Forfeit the group knowledge and rejoin.
			m.resetForJoin()
			m.sendJoin()
			return
		}
		m.sendReconfig()
		m.tryWinReconfigElection()
	}
}

// lastSlotStartOf returns the start of q's most recent slot at or before
// now, less the clock tolerance epsilon+sigma. Election freshness
// ("received in p's last time slot") is judged against it: a timestamp q
// stamped at its slot start on its own synchronized clock may lag this
// process's clock by up to the synchronization deviation.
func (m *Machine) lastSlotStartOf(q model.ProcessID, now model.Time) model.Time {
	next := m.params.NextSlotOf(q, now) // strictly after now
	return next.Add(-m.params.CycleLen() - m.params.Epsilon - m.params.Sigma)
}

// --- Join protocol -------------------------------------------------------

// joinList returns this process's join-list: itself plus every process
// whose join message arrived within the last cycle (the paper's N-1
// slots, widened by one slot plus the clock tolerance so that the
// cyclic successor's once-per-cycle join does not age out at the exact
// window edge; the strict per-sender "last slot" freshness of the win
// condition is what guarantees at-most-one-decider).
func (m *Machine) joinList(now model.Time) model.ProcessSet {
	window := m.params.CycleLen() + m.params.Epsilon + m.params.Sigma
	jl := model.NewProcessSet(m.self)
	for q, ji := range m.lastJoin {
		if q != m.self && now.Sub(ji.ts) <= window {
			jl.Add(q)
		}
	}
	return jl
}

func (m *Machine) sendJoin() {
	now := m.env.Now()
	j := &wire.Join{
		Header:   wire.Header{From: m.self, SendTS: m.sendTS()},
		JoinList: m.joinList(now).Sorted(),
	}
	m.env.Broadcast(j)
	m.lastControlMsg = j
	m.stats.JoinsSent++
}

// onJoin records a join message. Current members track joiners through
// their alive-lists (joins are control messages); joining processes
// build join-lists from them.
func (m *Machine) onJoin(j *wire.Join) {
	m.lastJoin[j.From] = joinInfo{ts: j.SendTS, list: model.NewProcessSet(j.JoinList...)}
}

// tryFormInitialGroup applies the paper's initial-formation rule in this
// process's own slot: it becomes the first decider when (1) its
// join-list contains a majority of the team, and (2) it received a join
// message from every other join-list member in that member's last slot
// carrying an identical join-list.
func (m *Machine) tryFormInitialGroup() {
	now := m.env.Now()
	jl := m.joinList(now)
	if len(jl) < m.params.Majority() {
		return
	}
	for q := range jl {
		if q == m.self {
			continue
		}
		ji := m.lastJoin[q]
		if ji.ts < m.lastSlotStartOf(q, now) {
			return // stale: not from q's last slot
		}
		if !ji.list.Equal(jl) {
			return // join-lists have not converged yet
		}
	}
	group := model.NewGroup(m.nextGroupSeq(), jl.Sorted())
	m.bc.AnnounceGroup(now, group)
	m.installGroup(group)
	m.setState(StateFailureFree)
	m.clearElection()
	m.lastJoin = make(map[model.ProcessID]joinInfo)
	m.becomeDeciderNow()
}

// --- Reconfiguration (multiple-failure) protocol --------------------------

// enterNFailure switches to the n-failure state. If this process sent a
// no-decision message in the failed single-failure election, it is
// quarantined for N-1 slots: its no-decision must not combine with a
// reconfiguration message to elect two deciders (paper §4.2), so it
// sends empty reconfiguration-lists and skips win evaluation until the
// quarantine expires.
func (m *Machine) enterNFailure(sentND bool) {
	now := m.env.Now()
	if sentND {
		m.quarantineUntil = now.Add(model.Duration(m.params.N-1) * m.params.SlotLen())
	}
	m.fd.ClearExpectation()
	m.env.CancelTimer(TimerExpect)
	m.env.CancelTimer(TimerDecide)
	m.setDecider(false)
	// The single-failure episode is over; its buffered no-decisions must
	// never complete a ghost election later.
	m.pendingND = make(map[model.ProcessID]*wire.NoDecision)
	if m.state != StateNFailure {
		m.nfSince = now
	}
	m.setState(StateNFailure)
}

// reconfigList returns this process's reconfiguration-list: itself plus
// every process whose reconfiguration message arrived within the last
// cycle (widened like joinList; see there). During quarantine the list
// is empty.
func (m *Machine) reconfigList(now model.Time) model.ProcessSet {
	if now < m.quarantineUntil {
		return model.NewProcessSet()
	}
	window := m.params.CycleLen() + m.params.Epsilon + m.params.Sigma
	rl := model.NewProcessSet(m.self)
	for q, ri := range m.lastReconfig {
		if q != m.self && now.Sub(ri.msg.SendTS) <= window {
			rl.Add(q)
		}
	}
	return rl
}

func (m *Machine) sendReconfig() {
	now := m.env.Now()
	// Anyone absent from our reconfiguration-list is one we are asking
	// to remove: suppress their in-flight proposals (§4.3).
	rl := m.reconfigList(now)
	for _, q := range m.group.Members {
		if q != m.self && !rl.Has(q) {
			m.bc.SuppressSender(q, now)
		}
	}
	r := &wire.Reconfig{
		Header:         wire.Header{From: m.self, SendTS: m.sendTS()},
		ReconfigList:   rl.Sorted(),
		LastDecisionTS: m.bc.LastDecisionTS(),
		GroupSeq:       m.group.Seq,
		View:           *m.bc.CurrentView(),
		DPD:            m.bc.DPD(),
		Alive:          m.fd.AliveList(now),
	}
	m.env.Broadcast(r)
	m.lastControlMsg = r
	m.stats.ReconfigsSent++
}

// onReconfig records a reconfiguration message and handles the state
// transitions it triggers outside the n-failure state: a reconfiguration
// from the expected sender signals multiple failures.
func (m *Machine) onReconfig(r *wire.Reconfig) {
	if m.state == StateJoin || !m.haveGroup {
		return
	}
	m.lastReconfig[r.From] = reconfigInfo{msg: r}
	switch m.state {
	case StateFailureFree, StateWrongSuspicion, State1FailureReceive, State1FailureSend:
		if m.fd.Satisfies(r.From, r.SendTS) {
			m.enterNFailure(m.ndSent)
		}
	case StateNFailure:
		// Recorded above; the win condition is evaluated in our slot.
	}
}

// tryWinReconfigElection applies the paper's four-part win condition in
// this process's own slot: there must be a majority S (including this
// process) whose reconfiguration messages (a) arrived in their senders'
// last slots, (b) carry reconfiguration-lists identical to ours,
// (c) propose decision timestamps no newer than ours, and (d) whose
// members all belonged to the last group we know. The winner reconciles
// the log, forms the new group from exactly S, and becomes decider.
func (m *Machine) tryWinReconfigElection() {
	now := m.env.Now()
	if now < m.quarantineUntil {
		return
	}
	if !m.haveGroup || !m.group.Contains(m.self) {
		return
	}
	myList := m.reconfigList(now)
	myTS := m.bc.LastDecisionTS()

	members := []model.ProcessID{m.self}
	var reports []broadcast.Report
	peers := make([]model.ProcessID, 0, len(m.lastReconfig))
	for q := range m.lastReconfig {
		peers = append(peers, q)
	}
	slices.Sort(peers)
	for _, q := range peers {
		if q == m.self {
			continue
		}
		msg := m.lastReconfig[q].msg
		if msg.SendTS < m.lastSlotStartOf(q, now) {
			continue // not from q's last slot
		}
		if !model.NewProcessSet(msg.ReconfigList...).Equal(myList) {
			continue
		}
		if msg.LastDecisionTS > myTS {
			return // someone holds a fresher decision: they must lead
		}
		if !m.group.Contains(q) {
			continue
		}
		members = append(members, q)
		reports = append(reports, broadcast.Report{From: q, View: &msg.View, DPD: msg.DPD})
	}
	if len(members) < m.params.Majority() {
		return
	}

	newGroup := model.NewGroup(m.nextGroupSeq(), members)
	var departed []model.ProcessID
	for _, q := range m.group.Members {
		if !newGroup.Contains(q) {
			departed = append(departed, q)
		}
	}
	m.bc.Reconcile(now, newGroup, departed, reports)
	m.installGroup(newGroup)
	m.stats.ReconfigElections++
	m.setState(StateFailureFree)
	m.clearElection()
	m.lastReconfig = make(map[model.ProcessID]reconfigInfo)
	m.quarantineUntil = 0
	m.becomeDeciderNow()
}
