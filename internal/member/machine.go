// Package member implements the timewheel group membership protocol —
// the paper's core contribution: a group creator realised as a six-state
// finite state machine (paper Figure 2) driving three recovery
// mechanisms over an unreliable failure detector:
//
//   - join: initial group formation and reintegration via time-slotted
//     join messages (majority with identical join-lists elects the first
//     decider);
//   - single-failure election: a ring of no-decision messages removes a
//     lost decider quickly, with the wrong-suspicion state masking false
//     alarms so the service is never interrupted by them;
//   - multiple-failure election: time-slotted reconfiguration messages;
//     the process holding the freshest decision forms a new majority
//     group.
//
// The membership protocol sends no messages of its own during
// failure-free periods: the broadcast layer's rotating decision messages
// double as heartbeats, and the failure detector merely watches them.
package member

import (
	"fmt"

	"timewheel/internal/broadcast"
	"timewheel/internal/fdetect"
	"timewheel/internal/model"
	"timewheel/internal/oal"
	"timewheel/internal/surveil"
	"timewheel/internal/wire"
)

// State enumerates the group creator's states (paper Figure 2).
type State uint8

const (
	// StateJoin: not (yet) a member; sending join messages each own slot.
	StateJoin State = iota
	// StateFailureFree: member of a functioning group.
	StateFailureFree
	// StateWrongSuspicion: a single failure is suspected but this
	// process does not concur (it holds the allegedly missing decision).
	StateWrongSuspicion
	// State1FailureReceive: concurs with a single-failure suspicion,
	// has not yet sent its no-decision message.
	State1FailureReceive
	// State1FailureSend: concurs and has sent its no-decision message.
	State1FailureSend
	// StateNFailure: multiple failures suspected; time-slotted
	// reconfiguration election in progress.
	StateNFailure
)

func (s State) String() string {
	switch s {
	case StateJoin:
		return "join"
	case StateFailureFree:
		return "failure-free"
	case StateWrongSuspicion:
		return "wrong-suspicion"
	case State1FailureReceive:
		return "1-failure-receive"
	case State1FailureSend:
		return "1-failure-send"
	case StateNFailure:
		return "n-failure"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// TimerID names the machine's timers. Setting a timer replaces any
// earlier setting with the same ID.
type TimerID uint8

const (
	// TimerExpect fires at the expected-sender surveillance deadline.
	TimerExpect TimerID = iota
	// TimerDecide fires when this process, as decider, must send its
	// decision.
	TimerDecide
	// TimerSlot fires at the start of each of this process's own time
	// slots (join and reconfiguration sends).
	TimerSlot
	// TimerNack fires when queued missing-body nacks come due: a nack
	// is deferred one delay bound past the decision that exposed the
	// loss, so a body still in flight (broadcast concurrently with the
	// decision covering it) lands instead of triggering a spurious
	// group-wide nack/retransmission round.
	TimerNack
)

func (t TimerID) String() string {
	switch t {
	case TimerExpect:
		return "expect"
	case TimerDecide:
		return "decide"
	case TimerSlot:
		return "slot"
	case TimerNack:
		return "nack"
	default:
		return fmt.Sprintf("timer(%d)", uint8(t))
	}
}

// Env is the machine's interface to its process: a synchronized clock,
// the datagram service, and a timer service. All times are
// synchronized-clock times.
type Env interface {
	Now() model.Time
	Broadcast(m wire.Message)
	Unicast(to model.ProcessID, m wire.Message)
	SetTimer(id TimerID, at model.Time)
	CancelTimer(id TimerID)
}

// Hooks are optional observation points for tracing and experiments.
type Hooks struct {
	StateChange func(from, to State, at model.Time)
	ViewChange  func(g model.Group, at model.Time)
	Decider     func(isDecider bool, at model.Time)
	// Suspicion fires when the failure detector times out on a process:
	// deadline is the ts+2D expectation that expired and now the local
	// clock when the timeout handler ran, so now-deadline is the
	// suspicion reaction lag (timer slip + queueing) that fail-aware
	// timeliness claims are judged against.
	Suspicion func(suspect model.ProcessID, deadline, now model.Time)
	// WireEvent fires for every protocol message the machine sends
	// (dir=WireSend; peer is the unicast destination, NoProcess for
	// broadcasts) or accepts (dir=WireRecv; peer is the sender). ctx is
	// the message's causal trace context. Called on the machine's
	// goroutine from the send/receive hot path — keep it scalar-only and
	// allocation-free.
	WireEvent func(dir WireDir, kind wire.Kind, peer model.ProcessID, ctx wire.Causal, at model.Time)
}

// Config tunes the machine.
type Config struct {
	// DeciderHold is how long a process holds the decider role before
	// sending its decision (batching window). Must be well under D;
	// defaults to D/2.
	DeciderHold model.Duration
	// DisableFastPath skips the single-failure no-decision election and
	// escalates every timeout straight to the time-slotted
	// reconfiguration protocol. Exists only for the ablation that
	// reproduces the paper's motivation for optimising the common case.
	DisableFastPath bool
	// NFFallbackCycles bounds how long a process sits in n-failure
	// without an election win before abandoning its group knowledge and
	// rejoining from scratch (default 8 cycles; see Machine.nfSince).
	NFFallbackCycles int
	// Surveillance enables k-successor surveillance with gossiped
	// suspicions (wire v8; see surveil.go). The zero value keeps the
	// paper's all-to-all scheme.
	Surveillance surveil.Config
	Hooks        Hooks
}

type joinInfo struct {
	ts   model.Time
	list model.ProcessSet
	// covered and lineage are the durable coverage the joiner advertised:
	// the contiguous ordinal prefix its recovered state includes, and the
	// ordinal space that prefix belongs to. Zero for volatile joiners.
	covered oal.Ordinal
	lineage model.GroupSeq
	// forming is the join's Forming flag: only joins from processes
	// actually running the join protocol weigh in on formation.
	forming bool
}

type reconfigInfo struct {
	msg *wire.Reconfig
}

// Machine is one process's group creator. Drive it from a single
// goroutine or the simulation loop: Start once, then OnMessage for every
// received protocol message and OnTimer for every timer expiry.
type Machine struct {
	self   model.ProcessID
	params model.Params
	cfg    Config
	env    Env
	bc     *broadcast.Broadcast
	fd     *fdetect.Detector
	// sv is the k-successor surveillance state; nil when surveillance is
	// off (all-to-all mode).
	sv *surveil.Surveillor

	state     State
	group     model.Group
	haveGroup bool

	// Election state.
	suspect         model.ProcessID
	ndSent          bool
	quarantineUntil model.Time
	pendingND       map[model.ProcessID]*wire.NoDecision

	// nfSince records when the current n-failure episode began; after
	// NFFallbackCycles without an election win the machine abandons its
	// group knowledge and falls back to the join protocol. This is the
	// escape hatch for runs that violate the paper's survival assumption
	// ("at least a majority of processes which were members of the last
	// group survive"): the knowledge of "the last group" can end up
	// split across dead forks so that no process can assemble a
	// majority S from its own last group, deadlocking every election.
	nfSince model.Time

	// Decider duty.
	isDecider bool

	// Join protocol.
	lastJoin map[model.ProcessID]joinInfo

	// Reconfiguration protocol.
	lastReconfig map[model.ProcessID]reconfigInfo

	// Piggybacked alive-lists from other members' control messages,
	// used by the rejoin admission rule ("all group members have
	// included p in their alive-list").
	lastAlive map[model.ProcessID]model.ProcessSet

	// Exclusion handling (n-failure delayed switch to join).
	exclGroup model.Group
	exclSeen  model.ProcessSet
	excluded  bool

	// lastControlMsg is the last control message broadcast, for the
	// wrong-suspicion resend rule.
	lastControlMsg wire.Message

	// lastSendTS makes this process's control timestamps strictly
	// monotonic even if the synchronized clock is stepped backwards.
	lastSendTS model.Time

	// lastCausal is the causal context of the protocol round this
	// process currently belongs to: the last decision sent or adopted.
	// Non-decision control messages continue this chain (see stamp).
	lastCausal wire.Causal

	// lastStateSent rate-limits join-time state transfers per joiner.
	lastStateSent map[model.ProcessID]model.Time

	// lastOALReq rate-limits full-oal baseline requests per target: one
	// OALReq per sender per D, however many unresolvable deltas arrive.
	lastOALReq map[model.ProcessID]model.Time

	// nackQ holds missing-body nacks deferred by the Delta grace (see
	// TimerNack), in due order; the armed TimerNack tracks the head.
	nackQ []nackEntry

	// needState records an outstanding join-time state transfer: the
	// admitting decision (a broadcast) can overtake the decider's State
	// unicast, and the unicast can be lost outright. While set, the
	// process keeps advertising itself as a joiner in its own slot so the
	// decider's resend path fires, and it accepts a State even though it
	// already holds a group and a non-empty log.
	needState bool
	// appliedStateSeq is the group sequence of the last applied state
	// transfer; an admission into a group at most this old needs no
	// further transfer (the State won the race against the decision).
	appliedStateSeq model.GroupSeq

	// advCovered and advLineage are what this process advertised in its
	// last join message. The formation paths compare them against other
	// joiners' advertisements *after* the broadcast layer's live values
	// have already moved on (adopting the formation decision clears
	// cross-lineage coverage), so the advertised values are kept here.
	advCovered oal.Ordinal
	advLineage model.GroupSeq

	stats Stats
}

// Stats counts membership-protocol activity.
type Stats struct {
	ViewChanges       uint64
	SingleElections   uint64 // single-failure elections completed here
	ReconfigElections uint64 // reconfiguration elections won here
	WrongSuspicions   uint64 // wrong-suspicion states entered
	NDsSent           uint64
	ReconfigsSent     uint64
	JoinsSent         uint64
	DecisionsSent     uint64
	Admissions        uint64
	SelfExclusions    uint64 // guard-triggered drops to the join state
	OALReqsSent       uint64 // full-oal baseline requests sent

	// k-successor surveillance gossip (zero when surveillance is off).
	SuspicionsGossiped uint64 // suspicions originated here
	RefutesSent        uint64 // refutes of our own suspicion sent
	GossipRelays       uint64 // fresh gossip messages relayed onward
	GossipDuplicates   uint64 // gossip dropped by the origin watermark
	StaleSuspicions    uint64 // gossip dropped by incarnation staleness
}

// New creates a machine for process self on top of bc.
func New(self model.ProcessID, params model.Params, cfg Config, env Env, bc *broadcast.Broadcast) *Machine {
	if cfg.DeciderHold <= 0 || cfg.DeciderHold >= params.D {
		cfg.DeciderHold = params.D / 2
	}
	if cfg.NFFallbackCycles <= 0 {
		cfg.NFFallbackCycles = 8
	}
	m := &Machine{
		self:          self,
		params:        params,
		cfg:           cfg,
		env:           env,
		bc:            bc,
		fd:            fdetect.New(self, params),
		state:         StateJoin,
		suspect:       model.NoProcess,
		pendingND:     make(map[model.ProcessID]*wire.NoDecision),
		lastJoin:      make(map[model.ProcessID]joinInfo),
		lastReconfig:  make(map[model.ProcessID]reconfigInfo),
		lastAlive:     make(map[model.ProcessID]model.ProcessSet),
		lastStateSent: make(map[model.ProcessID]model.Time),
		lastOALReq:    make(map[model.ProcessID]model.Time),
	}
	// When a fresh application-traffic sample tightens the armed
	// surveillance deadline, pull the expect timer in with it — the
	// whole point of sampling proposals is reacting on the improved
	// bound, not the stale one armed before it.
	m.fd.OnDeadlineTighten(func(_ model.ProcessID, deadline model.Time) {
		m.env.SetTimer(TimerExpect, deadline.Add(1))
	})
	m.initSurveil()
	return m
}

// Accessors.

// State returns the current FSM state.
func (m *Machine) State() State { return m.state }

// Group returns the current group; meaningful only when HaveGroup.
func (m *Machine) Group() model.Group { return m.group }

// HaveGroup reports whether this process has ever installed a group and
// is (or believes itself) a member.
func (m *Machine) HaveGroup() bool { return m.haveGroup }

// IsDecider reports whether this process currently holds the decider
// role.
func (m *Machine) IsDecider() bool { return m.isDecider }

// Detector exposes the failure detector (read-mostly: alive lists).
func (m *Machine) Detector() *fdetect.Detector { return m.fd }

// Stats returns a copy of the machine's counters.
func (m *Machine) Stats() Stats { return m.stats }

// Suspect returns the currently suspected process, or NoProcess.
func (m *Machine) Suspect() model.ProcessID { return m.suspect }

// UpToDate reports whether this process believes its current group is up
// to date — the fail-awareness predicate of the paper's §3: "the
// timewheel membership protocol is fail-aware in the sense that a
// process knows at any point in time if its current group is up-to-date".
//
// The group is up to date while the process is a member and the decision
// rotation (or a single-failure election it is tracking) is live. It is
// NOT up to date while joining, while excluded, or while the time-slotted
// reconfiguration protocol runs — in those periods the member set may be
// changing without this process's knowledge.
func (m *Machine) UpToDate() bool {
	if !m.haveGroup || m.excluded {
		return false
	}
	switch m.state {
	case StateFailureFree, StateWrongSuspicion, State1FailureReceive, State1FailureSend:
		return m.group.Contains(m.self)
	default:
		return false
	}
}

// Start begins protocol execution in the join state.
func (m *Machine) Start() {
	m.seedSeq()
	m.freezeAdvertisement()
	m.scheduleSlotTimer()
}

// Propose broadcasts an update with the given semantics. It returns the
// proposal, or nil if this process is not currently a group member
// (updates from non-members would be purged anyway).
func (m *Machine) Propose(payload []byte, sem oal.Semantics) *wire.Proposal {
	if !m.haveGroup || m.state == StateJoin {
		return nil
	}
	p := m.bc.Propose(m.sendTS(), payload, sem)
	m.broadcast(p)
	return p
}

// nextGroupSeq produces a globally unique, monotonically increasing
// sequence number for a newly created group: derived from the
// synchronized clock (scaled, plus this process's id for same-tick
// disambiguation), floored above the current group's seq. Uniqueness
// across forks matters: a fork that dies (a racing admission view nobody
// completed) must never share an id with a later group, or histories
// become ambiguous after the fork's members rejoin.
func (m *Machine) nextGroupSeq() model.GroupSeq {
	now := m.env.Now()
	if now < 0 {
		now = 0
	}
	seq := model.GroupSeq(uint64(now))*64 + model.GroupSeq(uint64(m.self)%64)
	if seq <= m.group.Seq {
		seq = m.group.Seq + 1
	}
	return seq
}

// seedSeq seeds the proposal sequence space from the synchronized
// clock: a process that lost its volatile state (crash recovery,
// exclusion reset) must never reuse a sequence number from an earlier
// life. Negative readings (an unsynchronized clock before its first
// correction) clamp to zero.
func (m *Machine) seedSeq() {
	now := m.env.Now()
	if now < 0 {
		now = 0
	}
	m.bc.SeedSeq(uint64(now))
}

// sendTS stamps an outgoing message with a strictly monotonic
// synchronized-clock timestamp.
func (m *Machine) sendTS() model.Time {
	ts := m.env.Now()
	if ts <= m.lastSendTS {
		ts = m.lastSendTS + 1
	}
	m.lastSendTS = ts
	return ts
}

func (m *Machine) setState(to State) {
	if m.state == to {
		return
	}
	from := m.state
	m.state = to
	if to == StateWrongSuspicion {
		m.stats.WrongSuspicions++
	}
	if h := m.cfg.Hooks.StateChange; h != nil {
		h(from, to, m.env.Now())
	}
}

func (m *Machine) setDecider(v bool) {
	if m.isDecider == v {
		return
	}
	m.isDecider = v
	if h := m.cfg.Hooks.Decider; h != nil {
		h(v, m.env.Now())
	}
}

// installGroup makes g the current group and notifies the application.
func (m *Machine) installGroup(g model.Group) {
	m.group = g.Clone()
	m.haveGroup = true
	m.bc.SetGroup(g)
	m.stats.ViewChanges++
	m.refreshSurveil()
	if h := m.cfg.Hooks.ViewChange; h != nil {
		h(m.group, m.env.Now())
	}
}

// clearElection resets single/multi-failure election bookkeeping after a
// successful recovery or a fresh decision.
func (m *Machine) clearElection() {
	m.suspect = model.NoProcess
	m.ndSent = false
	m.pendingND = make(map[model.ProcessID]*wire.NoDecision)
}

// ringSuccessor returns the successor of p in the current group,
// skipping the current suspect (the no-decision ring excludes it).
func (m *Machine) ringSuccessor(p model.ProcessID) model.ProcessID {
	s := m.group.Successor(p)
	if s == m.suspect && m.group.Size() > 1 {
		s = m.group.Successor(s)
	}
	return s
}

// ringPredecessor returns the predecessor of p in the current group,
// skipping the current suspect.
func (m *Machine) ringPredecessor(p model.ProcessID) model.ProcessID {
	s := m.group.Predecessor(p)
	if s == m.suspect && m.group.Size() > 1 {
		s = m.group.Predecessor(s)
	}
	return s
}

// expectAfter arms surveillance for the control message that must follow
// one received from `sender` with timestamp ts: the ring successor must
// produce a control message with a newer timestamp within 2D.
func (m *Machine) expectAfter(sender model.ProcessID, ts model.Time) {
	e := m.ringSuccessor(sender)
	if e == m.self || e == model.NoProcess {
		// Our own turn (the decider duty timer covers us) or a
		// degenerate group: nothing to watch.
		m.fd.ClearExpectation()
		m.env.CancelTimer(TimerExpect)
		return
	}
	// Static mode: ts+2D, floored at now+D so a deadline armed while
	// draining a backlog has not effectively already passed. Adaptive
	// mode: the detector grants the expected sender its estimated
	// per-link bound instead (see fdetect.ExpectDeadline).
	deadline := m.fd.ExpectDeadline(e, ts, m.env.Now())
	m.fd.Expect(e, ts, deadline)
	// Fire strictly after the deadline: a message arriving exactly at
	// the deadline is still timely.
	m.env.SetTimer(TimerExpect, deadline.Add(1))
}

// scheduleSlotTimer arms TimerSlot for the start of this process's next
// own slot.
func (m *Machine) scheduleSlotTimer() {
	m.env.SetTimer(TimerSlot, m.params.NextSlotOf(m.self, m.env.Now()))
}

func (m *Machine) String() string {
	return fmt.Sprintf("member(%v %v %v decider=%v)", m.self, m.state, m.group, m.isDecider)
}
