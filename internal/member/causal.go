package member

// Causal trace stamping (wire v7): every message the machine sends
// carries a Causal context naming the protocol round it belongs to, so
// per-node trace rings can be merged into one cluster timeline. The
// machine is the single stamping point — both the live node and the
// simulator send through broadcast/unicast below, so the sim scenarios
// exercise exactly the tagging the real wire ships.

import (
	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// WireDir distinguishes the two directions of the WireEvent hook.
type WireDir uint8

const (
	// WireSend: the machine handed a message to the environment.
	WireSend WireDir = iota
	// WireRecv: the machine accepted a received message (duplicates and
	// stale control messages rejected by the freshness gate never fire).
	WireRecv
)

// slotOf maps a send timestamp to its timewheel slot index — the round
// identity of the causal context.
func (m *Machine) slotOf(ts model.Time) uint32 {
	sl := int64(m.params.SlotLen())
	if sl <= 0 || ts < 0 {
		return 0
	}
	return uint32(int64(ts) / sl)
}

// ownCtx starts a fresh causal chain at this process.
func (m *Machine) ownCtx(ts model.Time) wire.Causal {
	return wire.Causal{Origin: uint32(m.self), Slot: m.slotOf(ts), TS: int64(ts)}
}

// causalOf returns the causal context of a received message,
// synthesizing one from the header for pre-v7 frames so merged
// timelines stay connected across mixed-version groups.
func (m *Machine) causalOf(h wire.Header) wire.Causal {
	if !h.Ctx.Zero() {
		return h.Ctx
	}
	return wire.Causal{Origin: uint32(h.From), Slot: m.slotOf(h.SendTS), TS: int64(h.SendTS)}
}

// stamp assigns msg its causal context:
//
//   - a decision starts a new chain (the decider's round is the unit the
//     timeline groups by) and becomes the machine's current context;
//   - a proposal starts its own chain unless one is already set (a
//     nack-triggered retransmission keeps the original's);
//   - everything else continues the current chain — a pre-set context
//     (a nack tied to the decision that exposed the loss) wins, then the
//     last adopted decision's, then a fresh own chain (joins during
//     formation, before any decision exists).
//
// Re-stamping is idempotent: a wrong-suspicion resend of the last
// control message reproduces the context the original carried.
func (m *Machine) stamp(msg wire.Message) {
	h := msg.Hdr()
	switch msg.(type) {
	case *wire.Decision:
		ctx := m.ownCtx(h.SendTS)
		msg.SetCtx(ctx)
		m.lastCausal = ctx
	case *wire.Proposal:
		if h.Ctx.Zero() {
			msg.SetCtx(m.ownCtx(h.SendTS))
		}
	default:
		switch {
		case !h.Ctx.Zero():
		case !m.lastCausal.Zero():
			msg.SetCtx(m.lastCausal)
		default:
			msg.SetCtx(m.ownCtx(h.SendTS))
		}
	}
}

// broadcast stamps msg and sends it to all peers, firing the WireEvent
// hook. All machine sends go through here or unicast — the env is never
// called directly — so every frame leaves tagged.
func (m *Machine) broadcast(msg wire.Message) {
	m.stamp(msg)
	m.env.Broadcast(msg)
	m.fireWire(WireSend, msg, model.NoProcess)
}

// unicast stamps msg and sends it to one peer, firing the WireEvent
// hook.
func (m *Machine) unicast(to model.ProcessID, msg wire.Message) {
	m.stamp(msg)
	m.env.Unicast(to, msg)
	m.fireWire(WireSend, msg, to)
}

func (m *Machine) fireWire(dir WireDir, msg wire.Message, peer model.ProcessID) {
	if h := m.cfg.Hooks.WireEvent; h != nil {
		h(dir, msg.Kind(), peer, msg.Hdr().Ctx, m.env.Now())
	}
}
