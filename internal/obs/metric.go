// Package obs is the live observability core of the timewheel stack: a
// dependency-free set of lock-free instruments (atomic counters and
// gauges, fixed-bucket histograms sized for protocol timescales) plus a
// ring-buffered protocol event tracer, and a registry that exports all
// of it in Prometheus text exposition format and JSON.
//
// Design constraints, in order:
//
//   - emitting into an instrument must be safe from any goroutine and
//     must never block (atomics only, no locks on the update path);
//   - the protocol's guarantees are *timed*, so the primary instrument
//     is the latency histogram — fixed log-spaced buckets from 1µs to
//     10s cover every protocol timescale (handler dispatch, one-way
//     delay, election duration, fsync);
//   - when nothing is watching, the cost must be near zero: the tracer's
//     disabled emit path is one atomic load and allocates nothing.
//
// The registry is scrape-oriented: registration takes a lock, updates
// never do, and readers get weakly consistent snapshots (each word is
// read atomically; cross-instrument skew is possible and fine).
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the counter. It exists for mirror counters that track
// a monotonic source maintained elsewhere (e.g. event-loop-confined
// protocol stats copied out on scrape); direct instrumentation should
// use Inc/Add.
func (c *Counter) Store(v uint64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- Histograms ---------------------------------------------------------------

// LatencyBuckets are the standard protocol-timescale bucket upper
// bounds, in nanoseconds: log-spaced 1-2-5 steps from 1µs to 10s. They
// cover everything the protocol times — handler dispatch (µs), one-way
// delay and decision latency (ms), elections and fsync stalls (ms–s) —
// with a final implicit +Inf bucket for pathologies.
var LatencyBuckets = []int64{
	1_000, 2_000, 5_000, // 1µs 2µs 5µs
	10_000, 20_000, 50_000, // 10µs 20µs 50µs
	100_000, 200_000, 500_000, // 100µs 200µs 500µs
	1_000_000, 2_000_000, 5_000_000, // 1ms 2ms 5ms
	10_000_000, 20_000_000, 50_000_000, // 10ms 20ms 50ms
	100_000_000, 200_000_000, 500_000_000, // 100ms 200ms 500ms
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1s 2s 5s
	10_000_000_000, // 10s
}

// CountBuckets suit entry counts (replay-delta sizes, batch sizes).
var CountBuckets = []int64{
	1, 2, 5, 10, 20, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
}

// ByteBuckets suit payload and snapshot sizes.
var ByteBuckets = []int64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Histogram is a fixed-bucket histogram over int64 values (by
// convention nanoseconds for latency, raw counts or bytes otherwise).
// Observation is lock-free: one binary search over the bounds plus
// three atomic adds. Bounds are upper bounds, ascending; values above
// the last bound land in an implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, cumulative only at snapshot time
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram builds a free-standing histogram (registry-less use:
// tests, embedding). bounds must be ascending and non-empty.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucketIdx returns the index of the bucket v falls into.
func (h *Histogram) bucketIdx(v int64) int {
	lo, hi := 0, len(h.bounds) // hi is the +Inf bucket
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Merge adds o's observations into h. Both histograms must share the
// same bucket bounds (it reports false and does nothing otherwise).
// Merging is how per-shard or per-run histograms are combined into one
// distribution.
func (h *Histogram) Merge(o *Histogram) bool {
	if h == nil || o == nil || len(h.bounds) != len(o.bounds) {
		return false
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return false
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.sum.Add(o.sum.Load())
	h.count.Add(o.count.Load())
	return true
}

// HistogramSnapshot is a weakly consistent copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry
	// for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []int64
	Counts []uint64
	Sum    int64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0..1) from the bucket counts,
// returning the upper bound of the bucket holding it — a conservative
// (over-)estimate. The +Inf bucket reports the last finite bound. Zero
// observations report 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket: clamp
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Max returns the upper bound of the highest non-empty bucket (the
// last finite bound when the +Inf bucket is occupied), 0 when empty.
func (s HistogramSnapshot) Max() int64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] == 0 {
			continue
		}
		if i < len(s.Bounds) {
			return s.Bounds[i]
		}
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}
