package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// Labels is an ordered label set.
type Labels []Label

// L builds a label set from alternating name/value pairs:
// obs.L("peer", "2").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L wants name/value pairs")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Name: kv[i], Value: kv[i+1]})
	}
	return ls
}

func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// promLabels renders {a="x",b="y"}, with extra pairs appended (used for
// the histogram le label). Values are escaped per the text exposition
// format.
func promLabels(ls Labels, extra ...Label) string {
	all := append(append(Labels{}, ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels Labels
	c      *Counter
	g      *Gauge
	cfn    func() uint64
	gfn    func() int64
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	unit   float64 // exposition multiplier: Seconds for ns values, 1 otherwise
	bounds []int64
	series []*series
	byKey  map[string]*series
}

// Unit constants for histogram exposition: the stored int64 values are
// multiplied by the unit when rendered (so nanosecond observations
// export as Prometheus-conventional seconds).
const (
	Seconds = 1e-9 // values are nanoseconds
	Raw     = 1.0  // values are dimensionless (counts, bytes)
)

// Registry holds named instruments and renders them. Registration locks;
// instrument updates never do. Registering the same name+labels again
// returns the existing instrument, so layers can wire independently.
type Registry struct {
	mu    sync.Mutex
	base  Labels
	fams  map[string]*family
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// SetBaseLabels prefixes every series registered from now on with ls —
// how a fabric node stamps each group's registry with {group="gN"}
// without threading the label through every call site. Call before any
// registration; series already registered keep their labels. The merge
// happens at registration time only, so the render path and the
// instrument hot paths (Counter.Inc, Histogram.Observe) are untouched:
// with no base labels the registry is byte-for-byte the pre-fabric one.
func (r *Registry) SetBaseLabels(ls Labels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base = ls
}

// withBase merges the base labels in front of ls, allocating only when
// there is a base to merge.
func (r *Registry) withBase(ls Labels) Labels {
	if len(r.base) == 0 {
		return ls
	}
	out := make(Labels, 0, len(r.base)+len(ls))
	out = append(out, r.base...)
	return append(out, ls...)
}

func (r *Registry) family(name, help string, kind metricKind, unit float64, bounds []int64) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, unit: unit, bounds: bounds,
			byKey: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	return f
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	labels = r.withBase(labels)
	f := r.family(name, help, kindCounter, Raw, nil)
	if s, ok := f.byKey[labels.key()]; ok {
		return s.c
	}
	s := &series{labels: labels, c: &Counter{}}
	f.series = append(f.series, s)
	f.byKey[labels.key()] = s
	return s.c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	labels = r.withBase(labels)
	f := r.family(name, help, kindGauge, Raw, nil)
	if s, ok := f.byKey[labels.key()]; ok {
		return s.g
	}
	s := &series{labels: labels, g: &Gauge{}}
	f.series = append(f.series, s)
	f.byKey[labels.key()] = s
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotonic sources that already are atomics
// (engine handled/dropped counts, guard counters).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	labels = r.withBase(labels)
	f := r.family(name, help, kindCounterFunc, Raw, nil)
	if _, ok := f.byKey[labels.key()]; ok {
		return
	}
	s := &series{labels: labels, cfn: fn}
	f.series = append(f.series, s)
	f.byKey[labels.key()] = s
}

// GaugeFunc registers a gauge read from fn at exposition time (queue
// depth, trip state).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	labels = r.withBase(labels)
	f := r.family(name, help, kindGaugeFunc, Raw, nil)
	if _, ok := f.byKey[labels.key()]; ok {
		return
	}
	s := &series{labels: labels, gfn: fn}
	f.series = append(f.series, s)
	f.byKey[labels.key()] = s
}

// Histogram registers (or finds) a histogram series. unit scales values
// at exposition (obs.Seconds for nanosecond observations, obs.Raw for
// counts/bytes). All series of one family share bounds and unit.
func (r *Registry) Histogram(name, help string, bounds []int64, unit float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	labels = r.withBase(labels)
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if unit == 0 {
		unit = Raw
	}
	f := r.family(name, help, kindHistogram, unit, bounds)
	if s, ok := f.byKey[labels.key()]; ok {
		return s.h
	}
	s := &series{labels: labels, h: NewHistogram(f.bounds)}
	f.series = append(f.series, s)
	f.byKey[labels.key()] = s
	return s.h
}

// CounterValue sums the current values of every series of the named
// counter family; ok is false for unknown names.
func (r *Registry) CounterValue(name string) (v uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, found := r.fams[name]
	if !found || (f.kind != kindCounter && f.kind != kindCounterFunc) {
		return 0, false
	}
	for _, s := range f.series {
		if s.c != nil {
			v += s.c.Value()
		} else if s.cfn != nil {
			v += s.cfn()
		}
	}
	return v, true
}

// HistogramSnapshot merges every series of the named histogram family
// into one snapshot; ok is false for unknown names.
func (r *Registry) HistogramSnapshot(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, found := r.fams[name]
	if !found || f.kind != kindHistogram {
		return HistogramSnapshot{}, false
	}
	out := HistogramSnapshot{Bounds: f.bounds, Counts: make([]uint64, len(f.bounds)+1)}
	for _, s := range f.series {
		snap := s.h.Snapshot()
		for i, c := range snap.Counts {
			out.Counts[i] += c
		}
		out.Sum += snap.Sum
		out.Count += snap.Count
	}
	return out, true
}

// famView is a render-time view of one family: the immutable metadata
// plus a copy of the series slice taken under the lock. Registration
// appends to family.series, so renderers must not iterate the live
// slice header; the *series themselves are safe (labels are immutable,
// values are atomics).
type famView struct {
	*family
	series []*series
}

// snapshotFams copies the family list — and each family's series slice
// — under the lock so rendering can proceed without it (value reads are
// atomic anyway).
func (r *Registry) snapshotFams() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]famView, 0, len(r.order))
	for _, name := range r.order {
		f := r.fams[name]
		out = append(out, famView{family: f, series: append([]*series(nil), f.series...)})
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFams() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writePromSeries(w, f.family, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.c.Value())
		return err
	case kindCounterFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.cfn())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.g.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.gfn())
		return err
	}
	snap := s.h.Snapshot()
	var cum uint64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		le := Label{Name: "le", Value: formatBound(float64(b) * f.unit)}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, le), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		promLabels(s.labels, Label{Name: "le", Value: "+Inf"}), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, promLabels(s.labels), float64(snap.Sum)*f.unit); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(s.labels), snap.Count)
	return err
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// JSONMetric is one series in the registry's JSON rendering.
type JSONMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	// Histogram summary fields (unit-scaled: seconds for latency).
	Count *uint64  `json:"count,omitempty"`
	Sum   *float64 `json:"sum,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P90   *float64 `json:"p90,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
	Max   *float64 `json:"max,omitempty"`
}

// Snapshot renders every series as a JSONMetric (also the expvar shape).
func (r *Registry) Snapshot() []JSONMetric {
	var out []JSONMetric
	for _, f := range r.snapshotFams() {
		for _, s := range f.series {
			m := JSONMetric{Name: f.name, Type: f.kind.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				v := int64(s.c.Value())
				m.Value = &v
			case kindCounterFunc:
				v := int64(s.cfn())
				m.Value = &v
			case kindGauge:
				v := s.g.Value()
				m.Value = &v
			case kindGaugeFunc:
				v := s.gfn()
				m.Value = &v
			case kindHistogram:
				snap := s.h.Snapshot()
				cnt := snap.Count
				sum := float64(snap.Sum) * f.unit
				p50 := float64(snap.Quantile(0.50)) * f.unit
				p90 := float64(snap.Quantile(0.90)) * f.unit
				p99 := float64(snap.Quantile(0.99)) * f.unit
				mx := float64(snap.Max()) * f.unit
				m.Count, m.Sum, m.P50, m.P90, m.P99, m.Max = &cnt, &sum, &p50, &p90, &p99, &mx
			}
			out = append(out, m)
		}
	}
	return out
}

// WriteJSON renders the registry as a JSON array of series.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the registered family names, sorted (docs, tests).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
