package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Histogram ----------------------------------------------------------------

// Values exactly at a bucket's upper bound must land in that bucket;
// one past it must land in the next; values beyond the last bound land
// in the +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	h := NewHistogram(bounds)

	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {10, 0},
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // +Inf
	}
	for _, c := range cases {
		if got := h.bucketIdx(c.v); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	wantCounts := []uint64{3, 2, 2, 2}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 9 {
		t.Errorf("Count = %d, want 9", s.Count)
	}
	var wantSum int64
	for _, c := range cases {
		wantSum += c.v
	}
	if s.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramDefaultBucketsCoverProtocolTimescales(t *testing.T) {
	h := NewHistogram(nil)
	// 1µs handler, 10ms one-way delay, 2s election: all must resolve to
	// finite buckets, in increasing order.
	i1 := h.bucketIdx(int64(time.Microsecond))
	i2 := h.bucketIdx(int64(10 * time.Millisecond))
	i3 := h.bucketIdx(int64(2 * time.Second))
	if !(i1 < i2 && i2 < i3 && i3 < len(LatencyBuckets)) {
		t.Fatalf("bucket ordering wrong: %d %d %d (n=%d)", i1, i2, i3, len(LatencyBuckets))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	a.Observe(50)
	b.Observe(50)
	b.Observe(5000)

	if !a.Merge(b) {
		t.Fatal("Merge of same-bounds histograms failed")
	}
	s := a.Snapshot()
	if got := []uint64{s.Counts[0], s.Counts[1], s.Counts[2]}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("merged counts = %v, want [1 2 1]", got)
	}
	if s.Count != 4 || s.Sum != 5+50+50+5000 {
		t.Errorf("merged count/sum = %d/%d", s.Count, s.Sum)
	}

	// Mismatched bounds must refuse and leave the target untouched.
	c := NewHistogram([]int64{1, 2, 3})
	if a.Merge(c) {
		t.Error("Merge accepted mismatched bounds")
	}
	if got := a.Snapshot().Count; got != 4 {
		t.Errorf("failed merge mutated target: count %d", got)
	}
}

func TestHistogramQuantileAndMax(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket 0
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // bucket 2
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %d, want 10", q)
	}
	if q := s.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %d, want 1000", q)
	}
	if m := s.Max(); m != 1000 {
		t.Errorf("Max = %d, want 1000", m)
	}

	if q := (HistogramSnapshot{Bounds: []int64{1}, Counts: []uint64{0, 0}}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	c.Store(7)
	g.Set(1)
	g.Add(2)
	h.Observe(5)
	tr.Emit(EvStateChange, 0, 1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Enabled() {
		t.Error("nil instruments must read as zero")
	}
}

// --- Tracer -------------------------------------------------------------------

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(64)
	defer tr.EnableRing()()

	// Overfill the ring 3x: only the newest Cap() events survive.
	total := 3 * tr.Cap()
	for i := 0; i < total; i++ {
		tr.Emit(EvViewInstall, 1, int64(i), 0)
	}
	evs, next, truncated := tr.Since(0)
	if next != uint64(total) {
		t.Errorf("next cursor = %d, want %d", next, total)
	}
	if !truncated {
		t.Error("overfilled ring read from 0 not reported truncated")
	}
	if want := uint64(total - tr.Cap()); tr.Dropped() != want {
		t.Errorf("Dropped() = %d, want %d", tr.Dropped(), want)
	}
	if len(evs) != tr.Cap() {
		t.Fatalf("got %d events, want ring cap %d", len(evs), tr.Cap())
	}
	for i, ev := range evs {
		wantSeq := uint64(total - tr.Cap() + i)
		if ev.Seq != wantSeq || ev.A != int64(wantSeq) {
			t.Fatalf("event %d: seq=%d A=%d, want seq=%d", i, ev.Seq, ev.A, wantSeq)
		}
	}

	// Incremental poll from the cursor returns only new events.
	tr.Emit(EvGuardTrip, 1, 0, 0)
	evs, next2, truncated := tr.Since(next)
	if len(evs) != 1 || evs[0].Type != EvGuardTrip || next2 != next+1 {
		t.Fatalf("incremental poll: %d events, next %d", len(evs), next2)
	}
	if truncated {
		t.Error("incremental poll from a live cursor reported truncated")
	}
}

// Concurrent emitters overwriting the ring while readers poll: every
// event a reader observes must be internally consistent (payload
// matches its sequence number), and torn slots must be skipped, not
// surfaced. Run under -race this also proves the seqlock is data-race
// free.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	defer tr.EnableRing()()

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// A carries the writer ID so readers can cross-check.
				tr.Emit(EvStateChange, int32(w), int64(w), int64(i))
			}
		}(w)
	}

	var rdWg sync.WaitGroup
	rdWg.Add(1)
	go func() {
		defer rdWg.Done()
		var cursor uint64
		for {
			evs, next, _ := tr.Since(cursor)
			for _, ev := range evs {
				if ev.Type != EvStateChange {
					t.Errorf("torn event surfaced: type %v", ev.Type)
					return
				}
				if ev.A != int64(ev.Node) || ev.B < 0 || ev.B >= perWriter {
					t.Errorf("inconsistent payload: node=%d A=%d B=%d", ev.Node, ev.A, ev.B)
					return
				}
			}
			cursor = next
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	rdWg.Wait()

	if got := tr.seq.Load(); got != writers*perWriter {
		t.Errorf("sequence = %d, want %d (no lost claims)", got, writers*perWriter)
	}
}

func TestTracerAttachDetach(t *testing.T) {
	tr := NewTracer(64)

	if tr.Enabled() {
		t.Fatal("fresh tracer must be disabled")
	}
	// Disabled emit is invisible: no slot claimed.
	tr.Emit(EvGuardTrip, 0, 0, 0)
	if tr.seq.Load() != 0 {
		t.Fatal("disabled emit claimed a slot")
	}

	var mu sync.Mutex
	var got []Event
	detach := tr.Attach(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	var n2 int
	detach2 := tr.Attach(func(Event) { n2++ })

	tr.Emit(EvElectionEnd, 3, 1234, 0)
	mu.Lock()
	if len(got) != 1 || got[0].Type != EvElectionEnd || got[0].Node != 3 || got[0].A != 1234 {
		t.Fatalf("sink saw %+v", got)
	}
	mu.Unlock()
	if n2 != 1 {
		t.Fatalf("second sink saw %d events", n2)
	}

	detach()
	detach() // double-detach is a no-op
	tr.Emit(EvElectionEnd, 3, 99, 0)
	mu.Lock()
	if len(got) != 1 {
		t.Error("detached sink still called")
	}
	mu.Unlock()
	if n2 != 2 {
		t.Errorf("remaining sink missed an event: saw %d", n2)
	}
	detach2()
	if tr.Enabled() {
		t.Error("tracer still enabled after all detaches")
	}
}

// The acceptance-critical guard: with no subscriber, Emit must not
// allocate.
func TestEmitZeroAllocWhenDisabled(t *testing.T) {
	tr := NewTracer(256)
	if a := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvStateChange, 1, 2, 3)
	}); a != 0 {
		t.Errorf("disabled Emit allocates %.1f per run, want 0", a)
	}
}

// Ring-enabled (but sink-less) emit — the /debug/events consumption
// model — must also be alloc-free.
func TestEmitZeroAllocWhenRingEnabled(t *testing.T) {
	tr := NewTracer(256)
	defer tr.EnableRing()()
	if a := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvStateChange, 1, 2, 3)
	}); a != 0 {
		t.Errorf("ring-enabled Emit allocates %.1f per run, want 0", a)
	}
}

// --- Registry -----------------------------------------------------------------

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw_test_total", "test counter", nil).Add(3)
	r.Counter("tw_peer_sends_total", "per-peer", L("peer", "1")).Inc()
	r.Counter("tw_peer_sends_total", "per-peer", L("peer", "2")).Add(2)
	r.Gauge("tw_depth", "queue depth", nil).Set(7)
	h := r.Histogram("tw_lat_seconds", "latency", []int64{1_000, 1_000_000}, Seconds, nil)
	h.Observe(500)       // ≤1µs
	h.Observe(2_000_000) // +Inf

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE tw_test_total counter",
		"tw_test_total 3",
		`tw_peer_sends_total{peer="1"} 1`,
		`tw_peer_sends_total{peer="2"} 2`,
		"# TYPE tw_depth gauge",
		"tw_depth 7",
		"# TYPE tw_lat_seconds histogram",
		`tw_lat_seconds_bucket{le="0.000001"} 1`,
		`tw_lat_seconds_bucket{le="0.001"} 1`,
		`tw_lat_seconds_bucket{le="+Inf"} 2`,
		"tw_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and le-ordered.
	if strings.Index(out, `le="0.000001"`) > strings.Index(out, `le="+Inf"`) {
		t.Error("bucket order wrong")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("tw_x_total", "x", L("k", "v"))
	b := r.Counter("tw_x_total", "x", L("k", "v"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters disagree")
	}

	h1 := r.Histogram("tw_h", "h", []int64{1, 2}, Raw, nil)
	h2 := r.Histogram("tw_h", "h", []int64{1, 2}, Raw, nil)
	if h1 != h2 {
		t.Error("same-name histograms must alias")
	}
}

func TestRegistryCounterValueSumsSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw_s_total", "", L("peer", "1")).Add(2)
	r.Counter("tw_s_total", "", L("peer", "2")).Add(5)
	v, ok := r.CounterValue("tw_s_total")
	if !ok || v != 7 {
		t.Errorf("CounterValue = %d,%v want 7,true", v, ok)
	}
	if _, ok := r.CounterValue("tw_missing"); ok {
		t.Error("missing family reported ok")
	}
}

func TestRegistryHistogramSnapshotMergesSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("tw_m", "", []int64{10, 100}, Raw, L("peer", "1")).Observe(5)
	r.Histogram("tw_m", "", []int64{10, 100}, Raw, L("peer", "2")).Observe(50)
	s, ok := r.HistogramSnapshot("tw_m")
	if !ok || s.Count != 2 || s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Errorf("merged snapshot = %+v ok=%v", s, ok)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw_j_total", "j", nil).Add(4)
	r.Histogram("tw_j_lat", "lat", []int64{1_000}, Seconds, nil).Observe(500)
	r.GaugeFunc("tw_j_fn", "fn", nil, func() int64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []JSONMetric
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("JSON output not parseable: %v\n%s", err, buf.String())
	}
	byName := map[string]JSONMetric{}
	for _, m := range out {
		byName[m.Name] = m
	}
	if m := byName["tw_j_total"]; m.Type != "counter" || m.Value == nil || *m.Value != 4 {
		t.Errorf("tw_j_total = %+v", m)
	}
	if m := byName["tw_j_fn"]; m.Value == nil || *m.Value != 42 {
		t.Errorf("tw_j_fn = %+v", m)
	}
	if m := byName["tw_j_lat"]; m.Count == nil || *m.Count != 1 {
		t.Errorf("tw_j_lat = %+v", m)
	}
}

// Lazy series registration (the FSM transition counters materialise on
// first use, from the event goroutine) must not race with a concurrent
// scrape iterating the same family. Run under -race.
func TestRegistryConcurrentRegisterAndRender(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Counter("tw_conc_total", "c", L("i", strconv.Itoa(i))).Inc()
			r.Histogram("tw_conc_lat", "h", nil, Seconds, L("i", strconv.Itoa(i))).Observe(int64(i))
		}
	}()
	for {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

// --- Benchmarks ---------------------------------------------------------------

// BenchmarkEmit is the acceptance benchmark: the no-subscriber emit
// path. Must report 0 B/op.
func BenchmarkEmit(b *testing.B) {
	tr := NewTracer(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(EvStateChange, 1, 2, 3)
	}
}

func BenchmarkEmitRingEnabled(b *testing.B) {
	tr := NewTracer(8192)
	defer tr.EnableRing()()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(EvStateChange, 1, 2, 3)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 997)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
