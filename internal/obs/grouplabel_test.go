package obs

import (
	"strings"
	"testing"
)

// TestBaseLabelsCompose verifies the fabric group label: every series
// registered after SetBaseLabels renders with the base pair prefixed,
// composing with per-series labels like peer.
func TestBaseLabelsCompose(t *testing.T) {
	r := NewRegistry()
	r.SetBaseLabels(L("group", "g3"))
	r.Counter("timewheel_sends_total", "sends", nil).Inc()
	r.Counter("timewheel_suspicions_total", "suspicions", L("peer", "2")).Add(5)
	r.Histogram("timewheel_handler_latency_seconds", "latency", LatencyBuckets, Seconds, nil).Observe(1000)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`timewheel_sends_total{group="g3"} 1`,
		`timewheel_suspicions_total{group="g3",peer="2"} 5`,
		`timewheel_handler_latency_seconds_count{group="g3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestBaseLabelsDistinguishSeries: two registries with different base
// labels keep identically-named series apart when scraped merged.
func TestBaseLabelsDistinguishSeries(t *testing.T) {
	var buf strings.Builder
	for _, g := range []string{"g1", "g2"} {
		r := NewRegistry()
		r.SetBaseLabels(L("group", g))
		r.Counter("timewheel_sends_total", "sends", nil).Inc()
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, `timewheel_sends_total{group="g1"} 1`) ||
		!strings.Contains(out, `timewheel_sends_total{group="g2"} 1`) {
		t.Fatalf("merged scrape lost a group:\n%s", out)
	}
}

// TestNoBaseLabelsZeroAlloc guards the disabled path: without base
// labels the instrument hot paths must stay allocation-free — the
// fabric label machinery costs nothing to nodes that don't use it.
func TestNoBaseLabelsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("timewheel_sends_total", "sends", nil)
	h := r.Histogram("timewheel_handler_latency_seconds", "latency", LatencyBuckets, Seconds, nil)
	if a := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(12345)
	}); a != 0 {
		t.Fatalf("instrument hot path allocates %.1f/op with no base labels, want 0", a)
	}
	// And registration without a base returns the label set unmodified.
	if got := r.withBase(nil); got != nil {
		t.Fatal("withBase(nil) allocated with no base set")
	}
	ls := L("peer", "2")
	if got := r.withBase(ls); &got[0] != &ls[0] {
		t.Fatal("withBase copied labels with no base set")
	}
}
