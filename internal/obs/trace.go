package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventType classifies protocol trace events.
type EventType uint8

const (
	// EvStateChange: A=from state, B=to state (member.State values).
	EvStateChange EventType = iota + 1
	// EvViewInstall: A=view sequence, B=member count.
	EvViewInstall
	// EvDeciderStart marks assuming the decider role.
	EvDeciderStart
	// EvDeciderEnd: A=1 when the tenure produced a decision.
	EvDeciderEnd
	// EvElectionStart: A=the state entered (1-failure or n-failure).
	EvElectionStart
	// EvElectionEnd: A=duration in nanoseconds.
	EvElectionEnd
	// EvSuspicion: A=suspected process, B=reaction lag past the ts+2D
	// deadline in nanoseconds.
	EvSuspicion
	// EvGuardTrip marks the timeliness guard tripping.
	EvGuardTrip
	// EvGuardRearm marks the guard rearming after a self-exclusion.
	EvGuardRearm
	// EvSelfExclude marks a guard-driven drop to the join state.
	EvSelfExclude
	// EvWALSync: A=fsync duration in nanoseconds.
	EvWALSync
	// EvSnapshot: A=snapshot size in bytes.
	EvSnapshot
	// EvQueueDrop marks an event rejected by the engine's full queue.
	EvQueueDrop
	// EvExpectOverwrite: the failure detector replaced a still-armed
	// expectation; A=previous expected sender, B=new expected sender.
	EvExpectOverwrite
	// EvWireSend: a protocol message left this node. A=the causal
	// context's originating send timestamp, B=PackWireMeta(kind, peer,
	// origin, slot) where peer is the unicast destination (or
	// WirePeerBroadcast).
	EvWireSend
	// EvWireRecv: a protocol message arrived. A and B as in EvWireSend,
	// with peer = the sender.
	EvWireRecv
	// EvDeliver: the broadcast layer delivered an update to the
	// application. A=ordinal, B=PackProposalID(proposer, seq).
	EvDeliver
	// EvInvariant: the live auditor observed an invariant violation;
	// A=auditor-specific invariant code.
	EvInvariant
	// EvBlackbox: a flight-recorder bundle was written; A=trigger reason
	// code.
	EvBlackbox
)

func (t EventType) String() string {
	switch t {
	case EvStateChange:
		return "state-change"
	case EvViewInstall:
		return "view-install"
	case EvDeciderStart:
		return "decider-start"
	case EvDeciderEnd:
		return "decider-end"
	case EvElectionStart:
		return "election-start"
	case EvElectionEnd:
		return "election-end"
	case EvSuspicion:
		return "suspicion"
	case EvGuardTrip:
		return "guard-trip"
	case EvGuardRearm:
		return "guard-rearm"
	case EvSelfExclude:
		return "self-exclude"
	case EvWALSync:
		return "wal-sync"
	case EvSnapshot:
		return "snapshot"
	case EvQueueDrop:
		return "queue-drop"
	case EvExpectOverwrite:
		return "expect-overwrite"
	case EvWireSend:
		return "wire-send"
	case EvWireRecv:
		return "wire-recv"
	case EvDeliver:
		return "deliver"
	case EvInvariant:
		return "invariant"
	case EvBlackbox:
		return "blackbox"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// WirePeerBroadcast marks a wire-send event with no single destination.
const WirePeerBroadcast = 0xffff

// PackWireMeta packs the metadata of a wire send/recv event into the
// event's B argument: message kind (8 bits), peer (16 bits — unicast
// destination or sender, WirePeerBroadcast for broadcasts), causal
// origin member (16 bits), and causal wheel slot (24 bits, truncated).
// Scalar packing keeps the emit path allocation-free.
func PackWireMeta(kind uint8, peer, origin uint16, slot uint32) int64 {
	return int64(uint64(kind) |
		uint64(peer)<<8 |
		uint64(origin)<<24 |
		uint64(slot&0xffffff)<<40)
}

// UnpackWireMeta is the inverse of PackWireMeta.
func UnpackWireMeta(v int64) (kind uint8, peer, origin uint16, slot uint32) {
	u := uint64(v)
	return uint8(u), uint16(u >> 8), uint16(u >> 24), uint32(u>>40) & 0xffffff
}

// PackProposalID packs a proposal identity (proposer, low 32 bits of
// the per-proposer sequence) into the B argument of a deliver event.
func PackProposalID(proposer uint32, seq uint64) int64 {
	return int64(uint64(proposer)<<32 | seq&0xffffffff)
}

// UnpackProposalID is the inverse of PackProposalID.
func UnpackProposalID(v int64) (proposer uint32, seq uint32) {
	return uint32(uint64(v) >> 32), uint32(uint64(v))
}

// Event is one protocol trace event. All fields are scalars so emitting
// never allocates.
type Event struct {
	// Seq is the tracer-global sequence number (dense, starts at 0).
	Seq uint64
	// TS is the wall-clock emit time in Unix nanoseconds.
	TS int64
	// Node is the emitting process ID.
	Node int32
	// Type discriminates the event; A and B are its type-specific
	// arguments (see the EventType constants).
	Type EventType
	A, B int64
}

// Time returns the emit time.
func (e Event) Time() time.Time { return time.Unix(0, e.TS) }

// slot is one ring cell, versioned as a per-slot seqlock: a writer
// stores 2*seq+1 before writing the payload and 2*seq+2 after, so a
// reader can detect both torn writes and overwrites without locking.
// Every payload field is an atomic so concurrent wrap-around writers
// and lock-free readers are race-free by the memory model, not just in
// practice.
type slot struct {
	ver  atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64 // node (upper 32 bits) | type (low 8 bits)
	a, b atomic.Int64
}

func (s *slot) load(seq uint64) Event {
	meta := s.meta.Load()
	return Event{
		Seq:  seq,
		TS:   s.ts.Load(),
		Node: int32(meta >> 32),
		Type: EventType(meta & 0xff),
		A:    s.a.Load(),
		B:    s.b.Load(),
	}
}

// Tracer is a ring-buffered, multi-subscriber protocol event tracer.
//
// Emit is called from protocol hot paths: when no subscriber is
// attached (subs == 0) it is a single atomic load and returns — zero
// allocations, sub-nanosecond-amortised cost. With subscribers, the
// writer claims a slot with one atomic add and fills it under the
// slot's seqlock; concurrent emitters never block each other, and a
// reader that races an overwrite simply skips the torn slot.
type sinkEntry struct{ fn func(Event) }

type Tracer struct {
	seq  atomic.Uint64
	subs atomic.Int32 // ring enables + attached sinks
	ring []slot
	mask uint64

	mu    sync.Mutex
	sinks atomic.Pointer[[]*sinkEntry]
}

// NewTracer creates a tracer whose ring holds size events (rounded up
// to a power of two; minimum 64).
func NewTracer(size int) *Tracer {
	n := 64
	for n < size {
		n <<= 1
	}
	return &Tracer{ring: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.ring) }

// Enabled reports whether any subscriber is attached.
func (t *Tracer) Enabled() bool { return t != nil && t.subs.Load() > 0 }

// Emit records one event if anyone is listening. Safe from any
// goroutine; never blocks; allocates nothing.
func (t *Tracer) Emit(typ EventType, node int32, a, b int64) {
	if t == nil || t.subs.Load() == 0 {
		return
	}
	seq := t.seq.Add(1) - 1
	s := &t.ring[seq&t.mask]
	s.ver.Store(2*seq + 1)
	ts := time.Now().UnixNano()
	s.ts.Store(ts)
	s.meta.Store(uint64(uint32(node))<<32 | uint64(typ))
	s.a.Store(a)
	s.b.Store(b)
	s.ver.Store(2*seq + 2)
	if sinks := t.sinks.Load(); sinks != nil {
		ev := Event{Seq: seq, TS: ts, Node: node, Type: typ, A: a, B: b}
		for _, e := range *sinks {
			e.fn(ev)
		}
	}
}

// EnableRing turns ring recording on (refcounted) without attaching a
// sink — the consumption model of the /debug/events endpoint, which
// reads the ring on demand. The returned func undoes it.
func (t *Tracer) EnableRing() (disable func()) {
	t.subs.Add(1)
	var once sync.Once
	return func() { once.Do(func() { t.subs.Add(-1) }) }
}

// Attach subscribes a sink called synchronously from every emitter's
// goroutine — keep it fast and non-blocking. The returned func detaches
// it.
func (t *Tracer) Attach(sink func(Event)) (detach func()) {
	entry := &sinkEntry{fn: sink}
	t.mu.Lock()
	var next []*sinkEntry
	if old := t.sinks.Load(); old != nil {
		next = append(next, *old...)
	}
	next = append(next, entry)
	t.sinks.Store(&next)
	t.subs.Add(1)
	t.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			if cur := t.sinks.Load(); cur != nil {
				repl := make([]*sinkEntry, 0, len(*cur))
				for _, e := range *cur {
					if e != entry {
						repl = append(repl, e)
					}
				}
				t.sinks.Store(&repl)
			}
			t.subs.Add(-1)
			t.mu.Unlock()
		})
	}
}

// Dropped returns how many emitted events are no longer in the ring —
// they were overwritten before any reader could have fetched them at
// the current head. Monotone; the overflow accounting behind the
// timewheel_trace_dropped_total counter.
func (t *Tracer) Dropped() uint64 {
	head := t.seq.Load()
	if head <= uint64(len(t.ring)) {
		return 0
	}
	return head - uint64(len(t.ring))
}

// Since returns the events with sequence >= from that are still in the
// ring, in order, and the next cursor to poll with. Slots torn by a
// racing writer are skipped. With from far behind the head, only the
// newest Cap() events are returned; truncated reports that overwritten
// events were skipped, so consumers (and merged cluster timelines) are
// honest about the gap.
func (t *Tracer) Since(from uint64) (events []Event, next uint64, truncated bool) {
	head := t.seq.Load()
	if head == 0 {
		return nil, 0, false
	}
	lo := from
	if head > uint64(len(t.ring)) && lo < head-uint64(len(t.ring)) {
		lo = head - uint64(len(t.ring))
		truncated = true
	}
	for seq := lo; seq < head; seq++ {
		s := &t.ring[seq&t.mask]
		if s.ver.Load() != 2*seq+2 {
			continue // torn or already overwritten
		}
		ev := s.load(seq)
		if s.ver.Load() != 2*seq+2 {
			continue // overwritten while copying
		}
		events = append(events, ev)
	}
	return events, head, truncated
}
