package netsim

import (
	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// DriftProfile shapes a slowly-drifting link degradation: the extra
// one-way delay on the affected link ramps linearly from zero up to
// Peak over half of Period, then back down — a triangle wave. Unlike a
// step degradation, the drift sweeps the whole delay range in both
// directions, which is exactly what exercises an adaptive estimator's
// widen *and* shrink-with-hysteresis paths: the bound must follow the
// delay up without ejecting the peer and come back down without
// flapping.
type DriftProfile struct {
	// Peak is the maximum extra delay at the triangle's apex.
	Peak model.Duration
	// Period is the full ramp-up-and-back-down cycle length.
	Period model.Duration
	// Start anchors the wave: the ramp is at zero at Start and peaks
	// half a Period later. Anchoring matters — a degradation that sets
	// in mid-run must begin from a healthy baseline so an adaptive
	// estimator has something to track; times before Start see no
	// degradation at all.
	Start model.Time
}

// DriftingSender returns a Filter that applies the drifting degradation
// to all traffic sent by `slow`. now supplies the simulation clock (the
// Filter signature carries no time parameter; capture the clock via
// this closure). The drift is a pure function of the clock relative to
// p.Start, so runs are deterministic and the profile survives
// partitions and heals unchanged.
func DriftingSender(slow model.ProcessID, p DriftProfile, now func() model.Time) Filter {
	return func(from, _ model.ProcessID, _ wire.Message) (Verdict, model.Duration) {
		if from != slow || p.Peak <= 0 || p.Period <= 0 {
			return Pass, 0
		}
		since := now().Sub(p.Start)
		if since < 0 {
			return Pass, 0
		}
		phase := model.Duration(int64(since) % int64(p.Period))
		half := p.Period / 2
		frac := phase
		if phase > half {
			frac = p.Period - phase
		}
		// Extra delay = Peak · frac/half, computed in int64 without
		// overflow for any realistic Peak (µs-scale values).
		return Pass, model.Duration(int64(p.Peak) * int64(frac) / int64(half))
	}
}
