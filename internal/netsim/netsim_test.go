package netsim

import (
	"math/rand"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/sim"
	"timewheel/internal/wire"
)

func testParams() model.Params { return model.DefaultParams(4) }

func join(from model.ProcessID, ts model.Time) *wire.Join {
	return &wire.Join{Header: wire.Header{From: from, SendTS: ts}}
}

type collector struct {
	got []wire.Message
	at  []model.Time
}

func (c *collector) handler(s *sim.Sim) Handler {
	return func(m wire.Message) {
		c.got = append(c.got, m)
		c.at = append(c.at, s.Now())
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(100), 0)
	cols := make([]*collector, 4)
	for p := 0; p < 4; p++ {
		cols[p] = &collector{}
		n.Register(model.ProcessID(p), cols[p].handler(s))
	}
	n.Broadcast(join(0, 5))
	s.RunUntilIdle(0)
	if len(cols[0].got) != 0 {
		t.Errorf("sender received its own broadcast")
	}
	for p := 1; p < 4; p++ {
		if len(cols[p].got) != 1 {
			t.Fatalf("p%d got %d messages", p, len(cols[p].got))
		}
		if cols[p].at[0] != 100 {
			t.Errorf("p%d delivery at %v, want 100", p, cols[p].at[0])
		}
		if cols[p].got[0].Hdr().From != 0 {
			t.Errorf("p%d wrong sender", p)
		}
	}
	st := n.Stats()
	if st.Broadcasts[wire.KindJoin] != 1 || st.Deliveries[wire.KindJoin] != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestUnicast(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(10), 0)
	var c1, c2 collector
	n.Register(1, c1.handler(s))
	n.Register(2, c2.handler(s))
	n.Unicast(2, join(1, 0))
	s.RunUntilIdle(0)
	if len(c1.got) != 0 || len(c2.got) != 1 {
		t.Fatalf("unicast fanout wrong: %d %d", len(c1.got), len(c2.got))
	}
	// Unicast to an unregistered destination is silently dropped.
	n.Unicast(9, join(1, 1))
	s.RunUntilIdle(0)
}

func TestMessagesAreIsolatedCopies(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(1), 0)
	var c collector
	n.Register(1, c.handler(s))
	n.Register(0, func(wire.Message) {})
	m := &wire.Join{Header: wire.Header{From: 0}, JoinList: []model.ProcessID{0, 1}}
	n.Broadcast(m)
	m.JoinList[0] = 99 // mutate after send; receiver must not observe it
	s.RunUntilIdle(0)
	got := c.got[0].(*wire.Join)
	if got.JoinList[0] != 0 {
		t.Fatalf("receiver observed sender-side mutation: %v", got.JoinList)
	}
}

func TestCrashSuppressesSendAndReceive(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(10), 0)
	var c0, c1 collector
	n.Register(0, c0.handler(s))
	n.Register(1, c1.handler(s))

	n.Crash(0)
	if !n.Crashed(0) {
		t.Fatalf("Crashed(0) false")
	}
	n.Broadcast(join(0, 0)) // crashed sender: nothing goes out
	n.Broadcast(join(1, 0)) // crashed receiver: nothing comes in
	s.RunUntilIdle(0)
	if len(c0.got) != 0 || len(c1.got) != 0 {
		t.Fatalf("crashed process participated: %d %d", len(c0.got), len(c1.got))
	}

	n.Recover(0)
	if n.Crashed(0) {
		t.Fatalf("Crashed(0) true after recover")
	}
	n.Broadcast(join(1, 1))
	s.RunUntilIdle(0)
	if len(c0.got) != 1 {
		t.Fatalf("recovered process got %d", len(c0.got))
	}
}

func TestCrashMidFlightDropsPacket(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(100), 0)
	var c collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c.handler(s))
	n.Broadcast(join(0, 0))
	s.Run(50)
	n.Crash(1) // packet still in flight
	s.RunUntilIdle(0)
	if len(c.got) != 0 {
		t.Fatalf("in-flight packet delivered to crashed process")
	}
	if n.Stats().Dropped != 1 {
		t.Fatalf("dropped count: %d", n.Stats().Dropped)
	}
}

func TestPartitionBlocksAcrossSides(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(10), 0)
	cols := make([]*collector, 4)
	for p := 0; p < 4; p++ {
		cols[p] = &collector{}
		n.Register(model.ProcessID(p), cols[p].handler(s))
	}
	n.Partition([]model.ProcessID{0, 1}, []model.ProcessID{2, 3})
	n.Broadcast(join(0, 0))
	s.RunUntilIdle(0)
	if len(cols[1].got) != 1 {
		t.Errorf("same-side delivery failed")
	}
	if len(cols[2].got) != 0 || len(cols[3].got) != 0 {
		t.Errorf("cross-partition delivery happened")
	}
	n.Heal()
	n.Broadcast(join(0, 1))
	s.RunUntilIdle(0)
	if len(cols[2].got) != 1 {
		t.Errorf("post-heal delivery failed")
	}
}

func TestPartitionMidFlightDropsPacket(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(100), 0)
	var c collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c.handler(s))
	n.Broadcast(join(0, 0))
	s.Run(10)
	n.Partition([]model.ProcessID{0}, []model.ProcessID{1})
	s.RunUntilIdle(0)
	if len(c.got) != 0 {
		t.Fatalf("packet crossed a partition created mid-flight")
	}
}

func TestFilterDropAndDelay(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(10), 0)
	var c1, c2 collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c1.handler(s))
	n.Register(2, c2.handler(s))

	// Drop everything to p1; delay everything to p2 past delta
	// (an injected performance failure).
	lateBy := testParams().Delta * 2
	n.AddFilter(func(from, to model.ProcessID, m wire.Message) (Verdict, model.Duration) {
		switch to {
		case 1:
			return Drop, 0
		case 2:
			return Pass, lateBy
		}
		return Pass, 0
	})
	n.Broadcast(join(0, 0))
	s.RunUntilIdle(0)
	if len(c1.got) != 0 {
		t.Errorf("filtered delivery happened")
	}
	if len(c2.got) != 1 || c2.at[0] != model.Time(10+lateBy) {
		t.Errorf("delayed delivery: %v", c2.at)
	}
	// The injected delay exceeded delta, so it counts as late.
	if n.Stats().Late != 1 {
		t.Errorf("late count: %d", n.Stats().Late)
	}

	n.ClearFilters()
	n.Broadcast(join(0, 1))
	s.RunUntilIdle(0)
	if len(c1.got) != 1 {
		t.Errorf("delivery after ClearFilters failed")
	}
}

func TestBackgroundOmission(t *testing.T) {
	s := sim.New(7)
	n := New(s, testParams(), ConstantDelay(1), 0.5)
	var c collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c.handler(s))
	const total = 400
	for i := 0; i < total; i++ {
		n.Broadcast(join(0, model.Time(i)))
	}
	s.RunUntilIdle(0)
	got := len(c.got)
	if got == 0 || got == total {
		t.Fatalf("with 50%% loss got %d/%d", got, total)
	}
	if got < total/4 || got > 3*total/4 {
		t.Fatalf("loss far from 50%%: %d/%d", got, total)
	}
	if n.Stats().Dropped != uint64(total-got) {
		t.Fatalf("dropped count %d, want %d", n.Stats().Dropped, total-got)
	}
}

func TestDelayFns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := ConstantDelay(42)
	for i := 0; i < 10; i++ {
		if got := c(rng, 0, 1); got != 42 {
			t.Fatalf("constant: %v", got)
		}
	}
	u := UniformDelay(10, 20)
	for i := 0; i < 200; i++ {
		if got := u(rng, 0, 1); got < 10 || got > 20 {
			t.Fatalf("uniform out of range: %v", got)
		}
	}
	// Swapped bounds are normalised.
	u2 := UniformDelay(20, 10)
	if got := u2(rng, 0, 1); got < 10 || got > 20 {
		t.Fatalf("swapped uniform out of range: %v", got)
	}
	h := HeavyTailDelay(10, 20, 0.3, 5)
	late := 0
	for i := 0; i < 2000; i++ {
		d := h(rng, 0, 1)
		if d > 20 {
			late++
			if d > 100 {
				t.Fatalf("tail beyond bound: %v", d)
			}
		}
	}
	if late < 400 || late > 800 {
		t.Fatalf("late fraction off: %d/2000", late)
	}
	// Degenerate tail parameter is clamped.
	h2 := HeavyTailDelay(10, 20, 1.0, 0)
	if d := h2(rng, 0, 1); d <= 20 || d > 40 {
		t.Fatalf("clamped tail: %v", d)
	}
}

func TestDefaultDelayWhenNil(t *testing.T) {
	s := sim.New(1)
	p := testParams()
	n := New(s, p, nil, 0)
	var c collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c.handler(s))
	n.Broadcast(join(0, 0))
	s.RunUntilIdle(0)
	if len(c.got) != 1 {
		t.Fatalf("no delivery with default delay")
	}
	if c.at[0] > model.Time(p.Delta) {
		t.Fatalf("default delay exceeded delta: %v", c.at[0])
	}
}

func TestStatsSnapshotIsolation(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(1), 0)
	n.Register(0, func(wire.Message) {})
	n.Register(1, func(wire.Message) {})
	n.Broadcast(join(0, 0))
	st := n.Stats()
	st.Broadcasts[wire.KindJoin] = 999
	if n.Stats().Broadcasts[wire.KindJoin] == 999 {
		t.Fatalf("Stats returned live map")
	}
	if n.Stats().TotalBroadcasts() != 1 {
		t.Fatalf("total broadcasts: %d", n.Stats().TotalBroadcasts())
	}
}

func TestDuplicateInjection(t *testing.T) {
	s := sim.New(3)
	n := New(s, testParams(), ConstantDelay(1), 0)
	n.SetDuplicateProb(1.0) // every delivery duplicated
	var c collector
	n.Register(0, func(wire.Message) {})
	n.Register(1, c.handler(s))
	n.Broadcast(join(0, 5))
	s.RunUntilIdle(0)
	if len(c.got) != 2 {
		t.Fatalf("expected duplicate delivery, got %d", len(c.got))
	}
	if n.Stats().Duplicated != 1 {
		t.Fatalf("duplicated count: %d", n.Stats().Duplicated)
	}
}

func TestMaxBytesRecorded(t *testing.T) {
	s := sim.New(1)
	n := New(s, testParams(), ConstantDelay(1), 0)
	n.Register(0, func(wire.Message) {})
	n.Register(1, func(wire.Message) {})
	small := join(0, 1)
	big := &wire.Join{Header: wire.Header{From: 0, SendTS: 2},
		JoinList: []model.ProcessID{0, 1, 2, 3, 4, 5, 6, 7}}
	n.Broadcast(big)
	n.Broadcast(small)
	s.RunUntilIdle(0)
	st := n.Stats()
	if st.MaxBytes[wire.KindJoin] != len(wire.Encode(big)) {
		t.Fatalf("max bytes %d, want %d", st.MaxBytes[wire.KindJoin], len(wire.Encode(big)))
	}
	// Snapshot isolation.
	st.MaxBytes[wire.KindJoin] = 0
	if n.Stats().MaxBytes[wire.KindJoin] == 0 {
		t.Fatalf("Stats returned live MaxBytes map")
	}
}
