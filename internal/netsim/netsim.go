// Package netsim simulates the unreliable datagram service at the bottom
// of the timewheel stack (paper Figure 1): an Ethernet-like broadcast
// network with omission/performance failure semantics.
//
// A message sent through the network may be dropped (omission failure),
// delivered within the one-way time-out delay delta (timely), or
// delivered later (performance failure — the receiver's fail-awareness
// machinery must detect and reject it). Crashed processes neither send
// nor receive; partitions block delivery between sides.
//
// Every message crosses the wire codec (encode on send, decode per
// receiver), so simulated runs exercise exactly the bytes a real UDP
// deployment would carry and receivers can never share mutable state with
// senders.
package netsim

import (
	"fmt"
	"math/rand"
	"slices"

	"timewheel/internal/model"
	"timewheel/internal/sim"
	"timewheel/internal/wire"
)

// Verdict is a per-delivery fault-injection decision.
type Verdict uint8

const (
	// Pass lets the network's default delay model handle the delivery.
	Pass Verdict = iota
	// Drop suppresses the delivery (omission failure).
	Drop
)

// Filter inspects a prospective delivery and may override it. Extra delay
// (performance failure injection) is expressed by returning Pass and a
// positive delay to add on top of the model's.
type Filter func(from, to model.ProcessID, m wire.Message) (Verdict, model.Duration)

// DelayFn computes the one-way transmission delay for a delivery.
type DelayFn func(rng *rand.Rand, from, to model.ProcessID) model.Duration

// ConstantDelay returns a DelayFn with a fixed delay.
func ConstantDelay(d model.Duration) DelayFn {
	return func(*rand.Rand, model.ProcessID, model.ProcessID) model.Duration { return d }
}

// UniformDelay returns a DelayFn drawing uniformly from [lo, hi].
func UniformDelay(lo, hi model.Duration) DelayFn {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand, _, _ model.ProcessID) model.Duration {
		return lo + model.Duration(rng.Int63n(int64(hi-lo)+1))
	}
}

// HeavyTailDelay returns a DelayFn that is usually uniform in [lo, hi]
// but with probability pLate draws a late delay in (hi, hi*tail]. It
// models the occasional performance failures of a loaded LAN.
func HeavyTailDelay(lo, hi model.Duration, pLate float64, tail int64) DelayFn {
	base := UniformDelay(lo, hi)
	if tail < 2 {
		tail = 2
	}
	return func(rng *rand.Rand, from, to model.ProcessID) model.Duration {
		if rng.Float64() < pLate {
			return hi + model.Duration(rng.Int63n(int64(hi)*(tail-1))+1)
		}
		return base(rng, from, to)
	}
}

// Stats counts network activity by message kind. Broadcasts counts one
// per Broadcast call (one packet on an Ethernet-style medium); Deliveries
// counts per-receiver handoffs.
type Stats struct {
	Broadcasts map[wire.Kind]uint64
	Deliveries map[wire.Kind]uint64
	// MaxBytes records the largest encoded frame seen per kind — the
	// check that oal truncation keeps decision messages bounded.
	MaxBytes map[wire.Kind]int
	// Bytes accumulates sender-side bytes-on-wire per kind (one frame
	// per Broadcast/Unicast call, matching Broadcasts' packet count) —
	// what the delta-decision optimisation is measured by.
	Bytes      map[wire.Kind]uint64
	Dropped    uint64
	Late       uint64 // deliveries that exceeded delta
	Duplicated uint64

	// Datagrams counts kernel-crossing-equivalent transmissions: in
	// per-event mode every Broadcast/Unicast call is one datagram; in
	// slot-batch mode every flushed per-destination buffer is one, no
	// matter how many frames it coalesced — the quantity syscall
	// batching reduces.
	Datagrams uint64
	// MaxHold is the longest any frame sat in a slot-batch buffer
	// before its flush; bounded by the slot length by construction.
	MaxHold model.Duration
	// LateFlushes counts frames flushed after the slot edge of the slot
	// they were sent in — the honesty condition slot-batching must
	// keep, so it must stay zero.
	LateFlushes uint64
}

func newStats() Stats {
	return Stats{
		Broadcasts: make(map[wire.Kind]uint64),
		Deliveries: make(map[wire.Kind]uint64),
		MaxBytes:   make(map[wire.Kind]int),
		Bytes:      make(map[wire.Kind]uint64),
	}
}

// TotalBroadcasts sums broadcasts across kinds.
func (s Stats) TotalBroadcasts() uint64 {
	var n uint64
	for _, v := range s.Broadcasts {
		n += v
	}
	return n
}

// Handler receives decoded messages along with the real time of receipt.
type Handler func(m wire.Message)

// Network is the simulated broadcast datagram service.
type Network struct {
	sim    *sim.Sim
	params model.Params
	delay  DelayFn
	drop   float64 // background omission probability per delivery
	dup    float64 // background duplication probability per delivery

	handlers  map[model.ProcessID]Handler
	crashed   map[model.ProcessID]bool
	partition map[model.ProcessID]int // partition id per process; all 0 = connected
	filters   []Filter

	// Slot-boundary micro-batching (EnableSlotBatch): outgoing frames
	// accumulate in per-(sender, destination) buffers and transmit as
	// one datagram at the sender's slot edge — the sim twin of the live
	// node's Config.SlotBatch coalescing. batchCap is the byte bound
	// that forces an early overflow flush.
	batch    bool
	batchCap int
	pending  map[model.ProcessID]*senderQueue

	stats Stats
}

// pendingFrame is one encoded frame held in a slot-batch buffer.
type pendingFrame struct {
	data []byte
	orig wire.Message
	at   model.Time // buffering time: hold and slot-edge accounting
}

// senderQueue holds one sender's un-flushed frames: the broadcast
// buffer (keyed by model.NoProcess) plus per-destination unicast
// buffers, mirroring the live node's coalescer layout.
type senderQueue struct {
	frames map[model.ProcessID][]pendingFrame
	bytes  map[model.ProcessID]int
	armed  bool // a slot-edge auto-flush is scheduled
	urgent bool // an end-of-cascade flush is scheduled
}

// New creates a network over s with delivery delays drawn from delay and
// background omission probability drop (0 disables random loss).
func New(s *sim.Sim, params model.Params, delay DelayFn, drop float64) *Network {
	if delay == nil {
		delay = UniformDelay(params.Delta/10, params.Delta/2)
	}
	return &Network{
		sim:       s,
		params:    params,
		delay:     delay,
		drop:      drop,
		handlers:  make(map[model.ProcessID]Handler),
		crashed:   make(map[model.ProcessID]bool),
		partition: make(map[model.ProcessID]int),
		stats:     newStats(),
	}
}

// Register attaches p's receive handler. Re-registering replaces it.
func (n *Network) Register(p model.ProcessID, h Handler) {
	n.handlers[p] = h
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	out := newStats()
	for k, v := range n.stats.Broadcasts {
		out.Broadcasts[k] = v
	}
	for k, v := range n.stats.Deliveries {
		out.Deliveries[k] = v
	}
	for k, v := range n.stats.MaxBytes {
		out.MaxBytes[k] = v
	}
	for k, v := range n.stats.Bytes {
		out.Bytes[k] = v
	}
	out.Dropped = n.stats.Dropped
	out.Late = n.stats.Late
	out.Duplicated = n.stats.Duplicated
	out.Datagrams = n.stats.Datagrams
	out.MaxHold = n.stats.MaxHold
	out.LateFlushes = n.stats.LateFlushes
	return out
}

// SetDuplicateProb sets the probability that a delivery is duplicated
// (the duplicate follows after an independent delay). Receivers must
// reject duplicates by send timestamp / proposal ID.
func (n *Network) SetDuplicateProb(p float64) { n.dup = p }

// AddFilter installs a fault-injection filter; filters run in
// installation order and the first non-Pass verdict wins.
func (n *Network) AddFilter(f Filter) { n.filters = append(n.filters, f) }

// ClearFilters removes all installed filters.
func (n *Network) ClearFilters() { n.filters = nil }

// Crash marks p crashed: it stops sending and receiving immediately.
// Frames it had buffered for a slot-batch flush die with it.
func (n *Network) Crash(p model.ProcessID) {
	n.crashed[p] = true
	delete(n.pending, p)
}

// Recover clears p's crashed state.
func (n *Network) Recover(p model.ProcessID) { delete(n.crashed, p) }

// Crashed reports whether p is currently crashed.
func (n *Network) Crashed(p model.ProcessID) bool { return n.crashed[p] }

// Partition splits the network: processes in sides[i] can only talk to
// processes in the same side. Processes not mentioned join side 0.
func (n *Network) Partition(sides ...[]model.ProcessID) {
	n.partition = make(map[model.ProcessID]int)
	for i, side := range sides {
		for _, p := range side {
			n.partition[p] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.partition = make(map[model.ProcessID]int) }

func (n *Network) connected(a, b model.ProcessID) bool {
	return n.partition[a] == n.partition[b]
}

// Connected reports whether a and b are currently on the same partition
// side (both sides of a delivery re-check this).
func (n *Network) Connected(a, b model.ProcessID) bool { return n.connected(a, b) }

// EnableSlotBatch turns on sender-side slot-boundary micro-batching:
// frames buffer per (sender, destination) and transmit together at the
// sender's next slot edge, or earlier when the buffer reaches capBytes
// (<= 0: 60 KiB, the live coalescer's bound) or when the sender's
// timer path flushes explicitly (FlushSender). Fault semantics stay
// per-frame — only transmission time and the datagram count change —
// so batched and per-event runs are comparable apples-to-apples.
func (n *Network) EnableSlotBatch(capBytes int) {
	if capBytes <= 0 {
		capBytes = 60 << 10
	}
	n.batch = true
	n.batchCap = capBytes
	n.pending = make(map[model.ProcessID]*senderQueue)
}

// Broadcast sends m from its sender to every registered process except
// the sender itself, applying crash, partition, filter, omission and
// delay semantics per receiver.
func (n *Network) Broadcast(m wire.Message) {
	from := m.Hdr().From
	if n.crashed[from] {
		return
	}
	n.stats.Broadcasts[m.Kind()]++
	data := wire.Encode(m)
	n.stats.Bytes[m.Kind()] += uint64(len(data))
	if len(data) > n.stats.MaxBytes[m.Kind()] {
		n.stats.MaxBytes[m.Kind()] = len(data)
	}
	if n.batch {
		n.enqueue(from, model.NoProcess, data, m)
		return
	}
	n.stats.Datagrams++
	for _, to := range n.sortedDests() {
		if to == from {
			continue
		}
		n.deliver(data, from, to, m)
	}
}

// sortedDests returns registered process IDs in ascending order so that
// fan-out event scheduling is deterministic.
func (n *Network) sortedDests() []model.ProcessID {
	out := make([]model.ProcessID, 0, len(n.handlers))
	for p := range n.handlers {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Unicast sends m to a single destination with the same fault semantics.
func (n *Network) Unicast(to model.ProcessID, m wire.Message) {
	from := m.Hdr().From
	if n.crashed[from] {
		return
	}
	n.stats.Broadcasts[m.Kind()]++
	data := wire.Encode(m)
	n.stats.Bytes[m.Kind()] += uint64(len(data))
	if len(data) > n.stats.MaxBytes[m.Kind()] {
		n.stats.MaxBytes[m.Kind()] = len(data)
	}
	if n.batch {
		n.enqueue(from, to, data, m)
		return
	}
	n.stats.Datagrams++
	n.deliver(data, from, to, m)
}

// enqueue buffers an encoded frame in from's slot-batch queue for dest
// (model.NoProcess = the broadcast buffer), then applies the flush
// policy: only application proposal broadcasts are ever held across
// events — control and repair frames (and unicasts: retransmissions,
// state, served baselines) flush the queue as soon as the current
// event cascade finishes, with the held frames riding along, because
// the protocol's D-scale repair rate limits assume per-event latency
// on them (holding nacks and retransmissions a slot turns every lost
// body into a storm of re-nacks). The zero-delay flush event is the
// sim twin of the live node's handler-end urgent flush: frames emitted
// by one handler — a nack answered with several bodies, say — still
// coalesce per destination. A buffer reaching batchCap flushes the
// same way; otherwise the first held frame arms the slot-edge
// auto-flush.
func (n *Network) enqueue(from, dest model.ProcessID, data []byte, orig wire.Message) {
	q := n.pending[from]
	if q == nil {
		q = &senderQueue{
			frames: make(map[model.ProcessID][]pendingFrame),
			bytes:  make(map[model.ProcessID]int),
		}
		n.pending[from] = q
	}
	now := n.sim.Now()
	q.frames[dest] = append(q.frames[dest], pendingFrame{data: data, orig: orig, at: now})
	q.bytes[dest] += len(data)
	if orig.Kind() != wire.KindProposal || dest != model.NoProcess || q.bytes[dest] >= n.batchCap {
		if !q.urgent {
			q.urgent = true
			n.sim.After(0, func() { n.flushIfUrgent(from) })
		}
		return
	}
	if !q.armed {
		q.armed = true
		// Auto-flush at the sender's slot edge: frames never outlive the
		// slot they were sent in, keeping fdetect deadlines honest even
		// if the sender's own timer path never fires a FlushSender.
		edge := n.params.SlotStart(now).Add(n.params.SlotLen())
		n.sim.After(edge.Sub(now), func() { n.FlushSender(from) })
	}
}

// flushIfUrgent runs the scheduled end-of-cascade flush; a timer-path
// FlushSender may already have shipped the queue, making it a no-op.
func (n *Network) flushIfUrgent(p model.ProcessID) {
	if q := n.pending[p]; q != nil && q.urgent {
		n.FlushSender(p)
	}
}

// FlushSender transmits every buffered frame p holds: one datagram per
// non-empty destination buffer, each frame then delivered through the
// normal per-frame fault machinery. The engine's timer path calls this
// right after OnTimer — the sim twin of the live coalescer's
// slot-boundary flush hook — and the armed slot-edge event backstops it.
func (n *Network) FlushSender(p model.ProcessID) {
	q := n.pending[p]
	if q == nil {
		return
	}
	delete(n.pending, p)
	if n.crashed[p] {
		return // buffered frames die with the sender
	}
	now := n.sim.Now()
	for _, dest := range sortedQueueDests(q) {
		frames := q.frames[dest]
		if len(frames) == 0 {
			continue
		}
		n.stats.Datagrams++
		for _, f := range frames {
			if hold := now.Sub(f.at); hold > n.stats.MaxHold {
				n.stats.MaxHold = hold
			}
			if now > n.params.SlotStart(f.at).Add(n.params.SlotLen()) {
				n.stats.LateFlushes++
			}
			if dest == model.NoProcess {
				for _, to := range n.sortedDests() {
					if to == p {
						continue
					}
					n.deliver(f.data, p, to, f.orig)
				}
			} else {
				n.deliver(f.data, p, dest, f.orig)
			}
		}
	}
}

// sortedQueueDests orders a queue's destination buffers (broadcast
// first) so flush-time event scheduling is deterministic.
func sortedQueueDests(q *senderQueue) []model.ProcessID {
	out := make([]model.ProcessID, 0, len(q.frames))
	for d := range q.frames {
		out = append(out, d)
	}
	slices.Sort(out)
	return out
}

func (n *Network) deliver(data []byte, from, to model.ProcessID, orig wire.Message) {
	if _, ok := n.handlers[to]; !ok {
		return
	}
	if !n.connected(from, to) {
		n.stats.Dropped++
		return
	}
	var extra model.Duration
	for _, f := range n.filters {
		v, d := f(from, to, orig)
		if v == Drop {
			n.stats.Dropped++
			return
		}
		extra += d
	}
	if n.drop > 0 && n.sim.Rand().Float64() < n.drop {
		n.stats.Dropped++
		return
	}
	if n.dup > 0 && n.sim.Rand().Float64() < n.dup {
		n.stats.Duplicated++
		n.scheduleDelivery(data, from, to, orig, n.delay(n.sim.Rand(), from, to))
	}
	d := n.delay(n.sim.Rand(), from, to) + extra
	n.scheduleDelivery(data, from, to, orig, d)
}

func (n *Network) scheduleDelivery(data []byte, from, to model.ProcessID, orig wire.Message, d model.Duration) {
	if d < 0 {
		d = 0
	}
	if d > n.params.Delta {
		n.stats.Late++
	}
	kind := orig.Kind()
	n.sim.After(d, func() {
		// Crash/partition state is re-checked at delivery time: a
		// receiver that crashed while the packet was in flight never
		// sees it.
		if n.crashed[to] || !n.connected(from, to) {
			n.stats.Dropped++
			return
		}
		h := n.handlers[to]
		if h == nil {
			return
		}
		msg, err := wire.Decode(data)
		if err != nil {
			panic(fmt.Sprintf("netsim: undecodable self-encoded message: %v", err))
		}
		n.stats.Deliveries[kind]++
		h(msg)
	})
}
