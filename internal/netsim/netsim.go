// Package netsim simulates the unreliable datagram service at the bottom
// of the timewheel stack (paper Figure 1): an Ethernet-like broadcast
// network with omission/performance failure semantics.
//
// A message sent through the network may be dropped (omission failure),
// delivered within the one-way time-out delay delta (timely), or
// delivered later (performance failure — the receiver's fail-awareness
// machinery must detect and reject it). Crashed processes neither send
// nor receive; partitions block delivery between sides.
//
// Every message crosses the wire codec (encode on send, decode per
// receiver), so simulated runs exercise exactly the bytes a real UDP
// deployment would carry and receivers can never share mutable state with
// senders.
package netsim

import (
	"fmt"
	"math/rand"
	"slices"

	"timewheel/internal/model"
	"timewheel/internal/sim"
	"timewheel/internal/wire"
)

// Verdict is a per-delivery fault-injection decision.
type Verdict uint8

const (
	// Pass lets the network's default delay model handle the delivery.
	Pass Verdict = iota
	// Drop suppresses the delivery (omission failure).
	Drop
)

// Filter inspects a prospective delivery and may override it. Extra delay
// (performance failure injection) is expressed by returning Pass and a
// positive delay to add on top of the model's.
type Filter func(from, to model.ProcessID, m wire.Message) (Verdict, model.Duration)

// DelayFn computes the one-way transmission delay for a delivery.
type DelayFn func(rng *rand.Rand, from, to model.ProcessID) model.Duration

// ConstantDelay returns a DelayFn with a fixed delay.
func ConstantDelay(d model.Duration) DelayFn {
	return func(*rand.Rand, model.ProcessID, model.ProcessID) model.Duration { return d }
}

// UniformDelay returns a DelayFn drawing uniformly from [lo, hi].
func UniformDelay(lo, hi model.Duration) DelayFn {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand, _, _ model.ProcessID) model.Duration {
		return lo + model.Duration(rng.Int63n(int64(hi-lo)+1))
	}
}

// HeavyTailDelay returns a DelayFn that is usually uniform in [lo, hi]
// but with probability pLate draws a late delay in (hi, hi*tail]. It
// models the occasional performance failures of a loaded LAN.
func HeavyTailDelay(lo, hi model.Duration, pLate float64, tail int64) DelayFn {
	base := UniformDelay(lo, hi)
	if tail < 2 {
		tail = 2
	}
	return func(rng *rand.Rand, from, to model.ProcessID) model.Duration {
		if rng.Float64() < pLate {
			return hi + model.Duration(rng.Int63n(int64(hi)*(tail-1))+1)
		}
		return base(rng, from, to)
	}
}

// Stats counts network activity by message kind. Broadcasts counts one
// per Broadcast call (one packet on an Ethernet-style medium); Deliveries
// counts per-receiver handoffs.
type Stats struct {
	Broadcasts map[wire.Kind]uint64
	Deliveries map[wire.Kind]uint64
	// MaxBytes records the largest encoded frame seen per kind — the
	// check that oal truncation keeps decision messages bounded.
	MaxBytes map[wire.Kind]int
	// Bytes accumulates sender-side bytes-on-wire per kind (one frame
	// per Broadcast/Unicast call, matching Broadcasts' packet count) —
	// what the delta-decision optimisation is measured by.
	Bytes      map[wire.Kind]uint64
	Dropped    uint64
	Late       uint64 // deliveries that exceeded delta
	Duplicated uint64
}

func newStats() Stats {
	return Stats{
		Broadcasts: make(map[wire.Kind]uint64),
		Deliveries: make(map[wire.Kind]uint64),
		MaxBytes:   make(map[wire.Kind]int),
		Bytes:      make(map[wire.Kind]uint64),
	}
}

// TotalBroadcasts sums broadcasts across kinds.
func (s Stats) TotalBroadcasts() uint64 {
	var n uint64
	for _, v := range s.Broadcasts {
		n += v
	}
	return n
}

// Handler receives decoded messages along with the real time of receipt.
type Handler func(m wire.Message)

// Network is the simulated broadcast datagram service.
type Network struct {
	sim    *sim.Sim
	params model.Params
	delay  DelayFn
	drop   float64 // background omission probability per delivery
	dup    float64 // background duplication probability per delivery

	handlers  map[model.ProcessID]Handler
	crashed   map[model.ProcessID]bool
	partition map[model.ProcessID]int // partition id per process; all 0 = connected
	filters   []Filter

	stats Stats
}

// New creates a network over s with delivery delays drawn from delay and
// background omission probability drop (0 disables random loss).
func New(s *sim.Sim, params model.Params, delay DelayFn, drop float64) *Network {
	if delay == nil {
		delay = UniformDelay(params.Delta/10, params.Delta/2)
	}
	return &Network{
		sim:       s,
		params:    params,
		delay:     delay,
		drop:      drop,
		handlers:  make(map[model.ProcessID]Handler),
		crashed:   make(map[model.ProcessID]bool),
		partition: make(map[model.ProcessID]int),
		stats:     newStats(),
	}
}

// Register attaches p's receive handler. Re-registering replaces it.
func (n *Network) Register(p model.ProcessID, h Handler) {
	n.handlers[p] = h
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	out := newStats()
	for k, v := range n.stats.Broadcasts {
		out.Broadcasts[k] = v
	}
	for k, v := range n.stats.Deliveries {
		out.Deliveries[k] = v
	}
	for k, v := range n.stats.MaxBytes {
		out.MaxBytes[k] = v
	}
	for k, v := range n.stats.Bytes {
		out.Bytes[k] = v
	}
	out.Dropped = n.stats.Dropped
	out.Late = n.stats.Late
	out.Duplicated = n.stats.Duplicated
	return out
}

// SetDuplicateProb sets the probability that a delivery is duplicated
// (the duplicate follows after an independent delay). Receivers must
// reject duplicates by send timestamp / proposal ID.
func (n *Network) SetDuplicateProb(p float64) { n.dup = p }

// AddFilter installs a fault-injection filter; filters run in
// installation order and the first non-Pass verdict wins.
func (n *Network) AddFilter(f Filter) { n.filters = append(n.filters, f) }

// ClearFilters removes all installed filters.
func (n *Network) ClearFilters() { n.filters = nil }

// Crash marks p crashed: it stops sending and receiving immediately.
func (n *Network) Crash(p model.ProcessID) { n.crashed[p] = true }

// Recover clears p's crashed state.
func (n *Network) Recover(p model.ProcessID) { delete(n.crashed, p) }

// Crashed reports whether p is currently crashed.
func (n *Network) Crashed(p model.ProcessID) bool { return n.crashed[p] }

// Partition splits the network: processes in sides[i] can only talk to
// processes in the same side. Processes not mentioned join side 0.
func (n *Network) Partition(sides ...[]model.ProcessID) {
	n.partition = make(map[model.ProcessID]int)
	for i, side := range sides {
		for _, p := range side {
			n.partition[p] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.partition = make(map[model.ProcessID]int) }

func (n *Network) connected(a, b model.ProcessID) bool {
	return n.partition[a] == n.partition[b]
}

// Connected reports whether a and b are currently on the same partition
// side (both sides of a delivery re-check this).
func (n *Network) Connected(a, b model.ProcessID) bool { return n.connected(a, b) }

// Broadcast sends m from its sender to every registered process except
// the sender itself, applying crash, partition, filter, omission and
// delay semantics per receiver.
func (n *Network) Broadcast(m wire.Message) {
	from := m.Hdr().From
	if n.crashed[from] {
		return
	}
	n.stats.Broadcasts[m.Kind()]++
	data := wire.Encode(m)
	n.stats.Bytes[m.Kind()] += uint64(len(data))
	if len(data) > n.stats.MaxBytes[m.Kind()] {
		n.stats.MaxBytes[m.Kind()] = len(data)
	}
	for _, to := range n.sortedDests() {
		if to == from {
			continue
		}
		n.deliver(data, from, to, m)
	}
}

// sortedDests returns registered process IDs in ascending order so that
// fan-out event scheduling is deterministic.
func (n *Network) sortedDests() []model.ProcessID {
	out := make([]model.ProcessID, 0, len(n.handlers))
	for p := range n.handlers {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Unicast sends m to a single destination with the same fault semantics.
func (n *Network) Unicast(to model.ProcessID, m wire.Message) {
	from := m.Hdr().From
	if n.crashed[from] {
		return
	}
	n.stats.Broadcasts[m.Kind()]++
	data := wire.Encode(m)
	n.stats.Bytes[m.Kind()] += uint64(len(data))
	if len(data) > n.stats.MaxBytes[m.Kind()] {
		n.stats.MaxBytes[m.Kind()] = len(data)
	}
	n.deliver(data, from, to, m)
}

func (n *Network) deliver(data []byte, from, to model.ProcessID, orig wire.Message) {
	if _, ok := n.handlers[to]; !ok {
		return
	}
	if !n.connected(from, to) {
		n.stats.Dropped++
		return
	}
	var extra model.Duration
	for _, f := range n.filters {
		v, d := f(from, to, orig)
		if v == Drop {
			n.stats.Dropped++
			return
		}
		extra += d
	}
	if n.drop > 0 && n.sim.Rand().Float64() < n.drop {
		n.stats.Dropped++
		return
	}
	if n.dup > 0 && n.sim.Rand().Float64() < n.dup {
		n.stats.Duplicated++
		n.scheduleDelivery(data, from, to, orig, n.delay(n.sim.Rand(), from, to))
	}
	d := n.delay(n.sim.Rand(), from, to) + extra
	n.scheduleDelivery(data, from, to, orig, d)
}

func (n *Network) scheduleDelivery(data []byte, from, to model.ProcessID, orig wire.Message, d model.Duration) {
	if d < 0 {
		d = 0
	}
	if d > n.params.Delta {
		n.stats.Late++
	}
	kind := orig.Kind()
	n.sim.After(d, func() {
		// Crash/partition state is re-checked at delivery time: a
		// receiver that crashed while the packet was in flight never
		// sees it.
		if n.crashed[to] || !n.connected(from, to) {
			n.stats.Dropped++
			return
		}
		h := n.handlers[to]
		if h == nil {
			return
		}
		msg, err := wire.Decode(data)
		if err != nil {
			panic(fmt.Sprintf("netsim: undecodable self-encoded message: %v", err))
		}
		n.stats.Deliveries[kind]++
		h(msg)
	})
}
