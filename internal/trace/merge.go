package trace

// Cross-node causal merge: the per-node trace rings record wire
// send/recv/deliver hops tagged with the causal context the v7 frames
// carry; this file stitches N such rings into one cluster timeline.
// Cross-node edges (a send at A matched to its receive at B) are
// resolved by the causal chain identity (origin, slot, TS) plus the
// message kind, and judged against the ε clock-deviation bound of the
// timed-asynchronous model: a receive timestamped more than ε before
// its send is a causal-ordering violation — either a broken clock bound
// or a mis-merged timeline, and in both cases worth flagging.

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"timewheel/internal/obs"
	"timewheel/internal/wire"
)

// HopDir classifies a cross-node trace hop.
type HopDir uint8

const (
	// HopSend: a protocol message left Node.
	HopSend HopDir = iota
	// HopRecv: a protocol message was accepted at Node.
	HopRecv
	// HopDeliver: the broadcast layer delivered an update at Node.
	HopDeliver
	// HopView: Node installed a membership view.
	HopView
)

func (d HopDir) String() string {
	switch d {
	case HopSend:
		return "send"
	case HopRecv:
		return "recv"
	case HopDeliver:
		return "deliver"
	case HopView:
		return "view"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// HopBroadcast marks a send hop with no single destination.
const HopBroadcast int32 = -1

// Hop is one entry of a node's cross-node trace: a wire send/recv, a
// delivery, or a view install, with the causal context that links it to
// hops on other nodes. Times are in whatever unit the producing side
// uses (sim microseconds, live Unix nanoseconds) — the merge only needs
// them mutually comparable and ε expressed in the same unit.
type Hop struct {
	Node    int32
	At      int64
	Dir     HopDir
	MsgKind uint8 // wire.Kind for send/recv hops
	Peer    int32 // send: unicast destination (HopBroadcast); recv: sender

	// Causal chain identity (wire.Causal; truncated as the ring packs it).
	Origin uint16
	Slot   uint32
	TS     int64

	// Delivery identity (deliver hops) / view sequence (view hops).
	Ordinal  uint64
	Proposer uint32
	Seq      uint32
}

// ChainKey identifies the causal chain a hop belongs to.
type ChainKey struct {
	Origin uint16
	Slot   uint32
	TS     int64
}

// Chain returns the hop's causal chain key.
func (h Hop) Chain() ChainKey { return ChainKey{Origin: h.Origin, Slot: h.Slot, TS: h.TS} }

// Edge is a resolved cross-node causal edge: Send and Recv index into
// the merged timeline's Hops.
type Edge struct {
	Send, Recv int
}

// Violation is a causal-ordering violation in the merged timeline.
type Violation struct {
	// Send and Recv index into Hops for edge violations; Recv is -1 for
	// delivery anomalies.
	Send, Recv int
	Text       string
}

// Anomaly flags a suspected cross-node inconsistency that is not a hard
// ordering violation: an update delivered at one node that another node
// skipped past, or a receive whose matching send is missing from every
// ring (possibly overwritten).
type Anomaly struct {
	Node int32
	Text string
}

// Timeline is the merged cluster trace.
type Timeline struct {
	Hops       []Hop
	Edges      []Edge
	Violations []Violation
	Anomalies  []Anomaly
	// Unmatched counts recv hops whose send was not found in any ring —
	// nonzero with truncated rings, zero in a lossless merge.
	Unmatched int
	// Truncated records that at least one input ring reported overwritten
	// events, so absence of a hop is not evidence it never happened.
	Truncated bool
}

// MergeCluster merges per-node hop streams into one causally-ordered
// timeline. epsilon is the synchronized-clock deviation bound in the
// same time unit the hops use; truncated reports whether any input ring
// lost events to overflow.
func MergeCluster(perNode [][]Hop, epsilon int64, truncated bool) *Timeline {
	tl := &Timeline{Truncated: truncated}
	for _, hs := range perNode {
		tl.Hops = append(tl.Hops, hs...)
	}
	// Time-sort with a deterministic tiebreak; a send sorts before its
	// same-timestamp receive so rendered edges read forward.
	sort.SliceStable(tl.Hops, func(i, j int) bool {
		a, b := tl.Hops[i], tl.Hops[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		return a.Node < b.Node
	})

	// Index sends by (chain, kind, sender): a receive matches the latest
	// send of its chain+kind from its peer at or before... — protocol
	// retransmissions reuse the chain, so match each recv to the nearest
	// preceding send (by time) from the recorded sender.
	type sendKey struct {
		chain ChainKey
		kind  uint8
		from  int32
	}
	sends := make(map[sendKey][]int)
	for i, h := range tl.Hops {
		if h.Dir == HopSend {
			k := sendKey{chain: h.Chain(), kind: h.MsgKind, from: h.Node}
			sends[k] = append(sends[k], i)
		}
	}
	for i, h := range tl.Hops {
		if h.Dir != HopRecv {
			continue
		}
		k := sendKey{chain: h.Chain(), kind: h.MsgKind, from: h.Peer}
		cands := sends[k]
		if len(cands) == 0 {
			tl.Unmatched++
			if !truncated {
				tl.Anomalies = append(tl.Anomalies, Anomaly{Node: h.Node,
					Text: fmt.Sprintf("%s from p%d received at p%d with no matching send in any ring",
						wire.Kind(h.MsgKind), h.Peer, h.Node)})
			}
			continue
		}
		// Nearest preceding send; fall back to the earliest if every
		// send sorts after the receive (that fallback is the violation).
		best := cands[0]
		for _, s := range cands {
			if tl.Hops[s].At <= h.At && (tl.Hops[best].At > h.At || tl.Hops[s].At >= tl.Hops[best].At) {
				best = s
			}
		}
		tl.Edges = append(tl.Edges, Edge{Send: best, Recv: i})
		if lag := tl.Hops[best].At - h.At; lag > epsilon {
			tl.Violations = append(tl.Violations, Violation{Send: best, Recv: i,
				Text: fmt.Sprintf("%s p%d->p%d received %d before it was sent (ε=%d)",
					wire.Kind(h.MsgKind), tl.Hops[best].Node, h.Node, lag, epsilon)})
		}
	}

	tl.deliveryAnomalies()
	return tl
}

// deliveryAnomalies flags total-order gaps: a node whose ordinal-
// numbered delivery stream jumps over an update some other node
// delivered — the observable shape of "decision seen at A, never
// applied at B". Two shapes are legitimate and not flagged: a node
// that is merely lagging (it never passed the ordinal), and a gap that
// spans a view install at that node — a rejoin's state transfer hands
// the missed updates over as a snapshot, so they never appear as
// individual deliveries there.
func (tl *Timeline) deliveryAnomalies() {
	type upd struct {
		proposer uint32
		seq      uint32
	}
	byOrdinal := make(map[uint64]upd)
	delivers := make(map[int32][]Hop)
	views := make(map[int32][]int64)
	for _, h := range tl.Hops {
		switch h.Dir {
		case HopDeliver:
			if h.Ordinal > 0 {
				byOrdinal[h.Ordinal] = upd{proposer: h.Proposer, seq: h.Seq}
				delivers[h.Node] = append(delivers[h.Node], h)
			}
		case HopView:
			views[h.Node] = append(views[h.Node], h.At)
		}
	}
	ids := make([]int32, 0, len(delivers))
	for n := range delivers {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		ds := delivers[n]
		// Hops are already time-sorted; per-node order is preserved.
		for i := 1; i < len(ds); i++ {
			prev, next := ds[i-1], ds[i]
			if next.Ordinal <= prev.Ordinal+1 {
				continue
			}
			if viewBetween(views[n], prev.At, next.At) {
				continue // rejoin/state transfer covered the gap
			}
			for o := prev.Ordinal + 1; o < next.Ordinal; o++ {
				if u, ok := byOrdinal[o]; ok {
					tl.Violations = append(tl.Violations, Violation{Send: -1, Recv: -1,
						Text: fmt.Sprintf("p%d delivered o%d then o%d, skipping update p%d/%d (o%d)",
							n, prev.Ordinal, next.Ordinal, u.proposer, u.seq, o)})
				}
			}
		}
	}
}

// viewBetween reports whether any of the (ascending) view-install
// times falls in (lo, hi].
func viewBetween(at []int64, lo, hi int64) bool {
	i := sort.Search(len(at), func(i int) bool { return at[i] > lo })
	return i < len(at) && at[i] <= hi
}

// HopsFromEvents converts one node's trace-ring events into hops for
// MergeCluster, keeping only the cross-node hop types. The event
// timestamps (Unix nanoseconds on a live node, simulated microseconds
// under netsim) carry through unchanged.
func HopsFromEvents(node int32, evs []obs.Event) []Hop {
	var out []Hop
	for _, ev := range evs {
		switch ev.Type {
		case obs.EvWireSend, obs.EvWireRecv:
			kind, peer, origin, slot := obs.UnpackWireMeta(ev.B)
			dir := HopSend
			if ev.Type == obs.EvWireRecv {
				dir = HopRecv
			}
			p := int32(peer)
			if peer == obs.WirePeerBroadcast {
				p = HopBroadcast
			}
			out = append(out, Hop{Node: node, At: ev.TS, Dir: dir, MsgKind: kind,
				Peer: p, Origin: origin, Slot: slot, TS: ev.A})
		case obs.EvDeliver:
			proposer, seq := obs.UnpackProposalID(ev.B)
			out = append(out, Hop{Node: node, At: ev.TS, Dir: HopDeliver,
				Ordinal: uint64(ev.A), Proposer: proposer, Seq: seq})
		case obs.EvViewInstall:
			out = append(out, Hop{Node: node, At: ev.TS, Dir: HopView,
				Ordinal: uint64(ev.A), Seq: uint32(ev.B)})
		}
	}
	return out
}

// RenderTimeline writes the merged timeline as aligned text: one hop
// per line, edges annotated with their latency, then the violation and
// anomaly summaries.
func RenderTimeline(w io.Writer, tl *Timeline) error {
	recvEdge := make(map[int]int, len(tl.Edges)) // recv hop index -> send hop index
	for _, e := range tl.Edges {
		recvEdge[e.Recv] = e.Send
	}
	for i, h := range tl.Hops {
		var desc string
		switch h.Dir {
		case HopSend:
			to := "all"
			if h.Peer != HopBroadcast {
				to = fmt.Sprintf("p%d", h.Peer)
			}
			desc = fmt.Sprintf("%s -> %s  [chain p%d/s%d@%d]", wire.Kind(h.MsgKind), to, h.Origin, h.Slot, h.TS)
		case HopRecv:
			desc = fmt.Sprintf("%s <- p%d  [chain p%d/s%d@%d]", wire.Kind(h.MsgKind), h.Peer, h.Origin, h.Slot, h.TS)
			if s, ok := recvEdge[i]; ok {
				desc += fmt.Sprintf("  (+%d from p%d)", h.At-tl.Hops[s].At, tl.Hops[s].Node)
			}
		case HopDeliver:
			desc = fmt.Sprintf("delivered o%d p%d/%d", h.Ordinal, h.Proposer, h.Seq)
		case HopView:
			desc = fmt.Sprintf("installed view g%d (%d members)", h.Ordinal, h.Seq)
		}
		if _, err := fmt.Fprintf(w, "%12d p%-3d %-7s %s\n", h.At, h.Node, h.Dir, desc); err != nil {
			return err
		}
	}
	if tl.Truncated {
		if _, err := fmt.Fprintf(w, "\n(truncated: at least one ring overwrote events; gaps are real)\n"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nedges=%d unmatched=%d violations=%d anomalies=%d\n",
		len(tl.Edges), tl.Unmatched, len(tl.Violations), len(tl.Anomalies)); err != nil {
		return err
	}
	for _, v := range tl.Violations {
		if _, err := fmt.Fprintf(w, "VIOLATION: %s\n", v.Text); err != nil {
			return err
		}
	}
	for _, a := range tl.Anomalies {
		if _, err := fmt.Fprintf(w, "anomaly: %s\n", a.Text); err != nil {
			return err
		}
	}
	return nil
}

// RenderTimelineHTML writes the merged timeline as a standalone HTML
// page: one swim-lane column per node, hops in time order, violations
// highlighted.
func RenderTimelineHTML(w io.Writer, tl *Timeline) error {
	nodes := map[int32]bool{}
	for _, h := range tl.Hops {
		nodes[h.Node] = true
	}
	ids := make([]int32, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	col := make(map[int32]int, len(ids))
	for i, n := range ids {
		col[n] = i
	}
	var b strings.Builder
	b.WriteString(`<!doctype html><meta charset="utf-8"><title>timewheel cluster timeline</title>
<style>
body{font:13px/1.5 monospace;background:#111;color:#ddd;margin:1em}
table{border-collapse:collapse}
td,th{padding:1px 10px;vertical-align:top;white-space:nowrap}
th{color:#9cf;text-align:left;border-bottom:1px solid #444}
.t{color:#777}
.send{color:#8c8}.recv{color:#8cc}.deliver{color:#fc8}.view{color:#c8f}
.bad{color:#f66;font-weight:bold}
</style>
`)
	fmt.Fprintf(&b, "<h3>cluster timeline — %d hops, %d edges, %d violations</h3>\n",
		len(tl.Hops), len(tl.Edges), len(tl.Violations))
	if tl.Truncated {
		b.WriteString("<p class=bad>truncated: at least one trace ring overwrote events</p>\n")
	}
	b.WriteString("<table><tr><th>time</th>")
	for _, n := range ids {
		fmt.Fprintf(&b, "<th>p%d</th>", n)
	}
	b.WriteString("</tr>\n")
	recvEdge := make(map[int]int, len(tl.Edges))
	for _, e := range tl.Edges {
		recvEdge[e.Recv] = e.Send
	}
	for i, h := range tl.Hops {
		fmt.Fprintf(&b, "<tr><td class=t>%d</td>", h.At)
		for c := 0; c < len(ids); c++ {
			if c != col[h.Node] {
				b.WriteString("<td></td>")
				continue
			}
			var txt string
			switch h.Dir {
			case HopSend:
				to := "*"
				if h.Peer != HopBroadcast {
					to = fmt.Sprintf("p%d", h.Peer)
				}
				txt = fmt.Sprintf("%s→%s", wire.Kind(h.MsgKind), to)
			case HopRecv:
				txt = fmt.Sprintf("%s←p%d", wire.Kind(h.MsgKind), h.Peer)
				if s, ok := recvEdge[i]; ok {
					txt += fmt.Sprintf(" +%d", h.At-tl.Hops[s].At)
				}
			case HopDeliver:
				txt = fmt.Sprintf("deliver o%d p%d/%d", h.Ordinal, h.Proposer, h.Seq)
			case HopView:
				txt = fmt.Sprintf("view g%d·%d", h.Ordinal, h.Seq)
			}
			fmt.Fprintf(&b, "<td class=%s>%s</td>", h.Dir, html.EscapeString(txt))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	for _, v := range tl.Violations {
		fmt.Fprintf(&b, "<p class=bad>VIOLATION: %s</p>\n", html.EscapeString(v.Text))
	}
	for _, a := range tl.Anomalies {
		fmt.Fprintf(&b, "<p>anomaly: %s</p>\n", html.EscapeString(a.Text))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
