package trace

// The acceptance scenario: a 4-node simulated cluster goes through
// formation, traffic, a partition with a minority-exclusion election,
// healing and a rejoin — and the per-node hop streams merge into one
// causally-consistent cluster timeline: every receive matches a send,
// every cross-node edge respects the ε clock bound, and no node skips
// a delivered update.

import (
	"strings"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

func runPartitionScenario(t *testing.T, opts node.Options) *node.Cluster {
	t.Helper()
	opts.RecordWire = true
	c := node.NewCluster(opts)
	c.Start()
	cycle := c.Params.CycleLen()
	c.Run(4 * cycle)

	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	for i := 0; i < 3; i++ {
		if !c.Node(model.ProcessID(i)).Propose([]byte{byte('a' + i)}, sem) {
			t.Fatalf("propose %d rejected", i)
		}
		c.Run(cycle)
	}

	// Partition p3 away: the majority elects {0,1,2}; p3 must not hold
	// a group. Then heal and let p3 rejoin.
	c.Net.Partition([]model.ProcessID{0, 1, 2}, []model.ProcessID{3})
	c.Run(8 * cycle)
	c.Node(0).Propose([]byte("during"), sem)
	c.Run(2 * cycle)
	c.Net.Heal()
	c.Run(10 * cycle)
	c.Node(1).Propose([]byte("after"), sem)
	c.Run(4 * cycle)

	g, ok := c.Node(3).CurrentGroup()
	if !ok || len(g.Members) != 4 {
		t.Fatalf("p3 did not rejoin the full group: %v (ok=%v)", g, ok)
	}
	return c
}

func assertCleanTimeline(t *testing.T, tl *Timeline) {
	t.Helper()
	if len(tl.Violations) != 0 {
		for _, v := range tl.Violations {
			t.Errorf("violation: %s", v.Text)
		}
		t.Fatalf("%d causal-ordering violations in the merged timeline", len(tl.Violations))
	}
	if tl.Unmatched != 0 || len(tl.Anomalies) != 0 {
		t.Fatalf("unmatched=%d anomalies=%+v, want a fully-resolved merge", tl.Unmatched, tl.Anomalies)
	}
	if len(tl.Edges) == 0 {
		t.Fatal("no cross-node edges resolved")
	}
	var decisionEdges, delivers int
	for _, e := range tl.Edges {
		if wire.Kind(tl.Hops[e.Send].MsgKind) == wire.KindDecision {
			decisionEdges++
		}
	}
	for _, h := range tl.Hops {
		if h.Dir == HopDeliver {
			delivers++
		}
	}
	if decisionEdges == 0 || delivers == 0 {
		t.Fatalf("decisionEdges=%d delivers=%d, want both > 0", decisionEdges, delivers)
	}
}

func TestPartitionScenarioMergesCausallyClean(t *testing.T) {
	c := runPartitionScenario(t, node.Options{
		Seed:          11,
		Params:        model.DefaultParams(4),
		PerfectClocks: true,
	})
	tl := MergeSim(c)
	assertCleanTimeline(t, tl)

	// The timeline must show the story end to end: p3's excluded-era
	// silence, then rejoin traffic. Smoke the renderers on real data.
	var b strings.Builder
	if err := RenderTimeline(&b, tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "violations=0") {
		t.Fatalf("render does not report a clean merge:\n%s", lastLines(b.String(), 5))
	}
	b.Reset()
	if err := RenderTimelineHTML(&b, tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<th>p3</th>") {
		t.Fatal("html render missing p3's lane")
	}
}

// With drifting clocks and round-trip synchronization, per-node
// timestamps disagree — but only within the ε bound the merge
// tolerates, so the timeline must still be violation-free.
func TestPartitionScenarioDriftedClocks(t *testing.T) {
	c := runPartitionScenario(t, node.Options{
		Seed:           23,
		Params:         model.DefaultParams(4),
		MaxClockOffset: model.DefaultParams(4).Epsilon / 2,
		RoundTripSync:  true,
	})
	tl := MergeSim(c)
	if len(tl.Violations) != 0 {
		for _, v := range tl.Violations {
			t.Errorf("violation: %s", v.Text)
		}
		t.Fatalf("%d violations with ε-bounded clock drift", len(tl.Violations))
	}
	if len(tl.Edges) == 0 {
		t.Fatal("no cross-node edges resolved")
	}
}

func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
