package trace

// JSON-side adapter for the cross-node merge: both the /debug/events
// endpoint and a blackbox bundle's events.json serialize trace events
// with string type names and RFC3339 timestamps. This converter turns
// them into Hops, so twtrace can merge live nodes and offline bundles
// interchangeably.

import (
	"time"

	"timewheel/internal/obs"
)

// EventJSON mirrors one serialized trace event (timewheel.TraceEvent's
// wire shape).
type EventJSON struct {
	Seq  uint64    `json:"Seq"`
	At   time.Time `json:"At"`
	Node int       `json:"Node"`
	Type string    `json:"Type"`
	A    int64     `json:"A"`
	B    int64     `json:"B"`
}

// eventTypeByName maps the serialized names of the cross-node hop
// events back to their types; every other event name is skipped.
var eventTypeByName = map[string]obs.EventType{
	"wire-send":    obs.EvWireSend,
	"wire-recv":    obs.EvWireRecv,
	"deliver":      obs.EvDeliver,
	"view-install": obs.EvViewInstall,
}

// HopsFromJSON converts serialized trace events into hops, trusting
// each event's own node ID (one endpoint or bundle may carry events
// from several in-process nodes).
func HopsFromJSON(evs []EventJSON) []Hop {
	var out []Hop
	buf := make([]obs.Event, 1)
	for _, ev := range evs {
		typ, ok := eventTypeByName[ev.Type]
		if !ok {
			continue
		}
		buf[0] = obs.Event{
			Seq: ev.Seq, TS: ev.At.UnixNano(), Node: int32(ev.Node),
			Type: typ, A: ev.A, B: ev.B,
		}
		out = append(out, HopsFromEvents(int32(ev.Node), buf)...)
	}
	return out
}
