package trace

import (
	"strings"
	"testing"

	"timewheel/internal/obs"
	"timewheel/internal/wire"
)

func decisionSend(node int32, at int64, chain ChainKey) Hop {
	return Hop{Node: node, At: at, Dir: HopSend, MsgKind: uint8(wire.KindDecision),
		Peer: HopBroadcast, Origin: chain.Origin, Slot: chain.Slot, TS: chain.TS}
}

func decisionRecv(node, from int32, at int64, chain ChainKey) Hop {
	return Hop{Node: node, At: at, Dir: HopRecv, MsgKind: uint8(wire.KindDecision),
		Peer: from, Origin: chain.Origin, Slot: chain.Slot, TS: chain.TS}
}

func TestMergeResolvesEdges(t *testing.T) {
	chain := ChainKey{Origin: 1, Slot: 7, TS: 7_000}
	tl := MergeCluster([][]Hop{
		{decisionSend(1, 7_000, chain)},
		{decisionRecv(2, 1, 7_400, chain)},
		{decisionRecv(3, 1, 7_600, chain)},
	}, 500, false)
	if len(tl.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(tl.Edges))
	}
	if len(tl.Violations) != 0 || len(tl.Anomalies) != 0 || tl.Unmatched != 0 {
		t.Fatalf("clean merge flagged: %+v %+v unmatched=%d", tl.Violations, tl.Anomalies, tl.Unmatched)
	}
	for _, e := range tl.Edges {
		if tl.Hops[e.Send].Node != 1 || tl.Hops[e.Send].Dir != HopSend {
			t.Fatalf("edge send hop wrong: %+v", tl.Hops[e.Send])
		}
	}
}

func TestMergeFlagsRecvBeforeSend(t *testing.T) {
	chain := ChainKey{Origin: 1, Slot: 3, TS: 3_000}
	tl := MergeCluster([][]Hop{
		{decisionSend(1, 3_000, chain)},
		// Received 800 before the send with ε=500: clock bound broken.
		{decisionRecv(2, 1, 2_200, chain)},
	}, 500, false)
	if len(tl.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly one", tl.Violations)
	}
	// Within ε it is fine: clocks may disagree by up to ε.
	tl = MergeCluster([][]Hop{
		{decisionSend(1, 3_000, chain)},
		{decisionRecv(2, 1, 2_600, chain)},
	}, 500, false)
	if len(tl.Violations) != 0 {
		t.Fatalf("ε-tolerated skew flagged: %+v", tl.Violations)
	}
}

func TestMergePicksNearestRetransmission(t *testing.T) {
	chain := ChainKey{Origin: 1, Slot: 5, TS: 5_000}
	tl := MergeCluster([][]Hop{
		{decisionSend(1, 5_000, chain), decisionSend(1, 9_000, chain)},
		{decisionRecv(2, 1, 9_300, chain)},
	}, 500, false)
	if len(tl.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(tl.Edges))
	}
	if got := tl.Hops[tl.Edges[0].Send].At; got != 9_000 {
		t.Fatalf("matched send at %d, want the 9000 retransmission", got)
	}
	if len(tl.Violations) != 0 {
		t.Fatalf("retransmission match flagged: %+v", tl.Violations)
	}
}

func TestMergeUnmatchedRecv(t *testing.T) {
	chain := ChainKey{Origin: 4, Slot: 2, TS: 2_000}
	tl := MergeCluster([][]Hop{{decisionRecv(2, 4, 2_300, chain)}}, 500, false)
	if tl.Unmatched != 1 || len(tl.Anomalies) != 1 {
		t.Fatalf("unmatched=%d anomalies=%+v, want 1 and 1", tl.Unmatched, tl.Anomalies)
	}
	// With truncated rings the missing send is expected, not anomalous.
	tl = MergeCluster([][]Hop{{decisionRecv(2, 4, 2_300, chain)}}, 500, true)
	if tl.Unmatched != 1 || len(tl.Anomalies) != 0 {
		t.Fatalf("truncated: unmatched=%d anomalies=%+v", tl.Unmatched, tl.Anomalies)
	}
}

func TestMergeFlagsDeliveryGap(t *testing.T) {
	del := func(node int32, at int64, ord uint64, proposer, seq uint32) Hop {
		return Hop{Node: node, At: at, Dir: HopDeliver, Ordinal: ord, Proposer: proposer, Seq: seq}
	}
	// p2 delivered o1 then o3, skipping o2 (which p1 delivered): a
	// total-order gap with no view install to explain it.
	tl := MergeCluster([][]Hop{
		{del(1, 100, 1, 1, 1), del(1, 200, 2, 2, 1), del(1, 300, 3, 3, 1)},
		{del(2, 150, 1, 1, 1), del(2, 350, 3, 3, 1)},
	}, 500, false)
	if len(tl.Violations) != 1 || !strings.Contains(tl.Violations[0].Text, "skipping") {
		t.Fatalf("violations = %+v, want one skipped-update violation", tl.Violations)
	}
	// A node that never reached ordinal 3 is lagging, not violating.
	tl = MergeCluster([][]Hop{
		{del(1, 100, 1, 1, 1), del(1, 200, 2, 2, 1), del(1, 300, 3, 3, 1)},
		{del(2, 150, 1, 1, 1)},
	}, 500, false)
	if len(tl.Violations) != 0 {
		t.Fatalf("lagging node flagged: %+v", tl.Violations)
	}
	// A view install inside the gap marks a rejoin/state transfer: the
	// missed updates arrived as a snapshot, not deliveries.
	tl = MergeCluster([][]Hop{
		{del(1, 100, 1, 1, 1), del(1, 200, 2, 2, 1), del(1, 300, 3, 3, 1)},
		{del(2, 150, 1, 1, 1),
			{Node: 2, At: 320, Dir: HopView, Ordinal: 2, Seq: 2},
			del(2, 350, 3, 3, 1)},
	}, 500, false)
	if len(tl.Violations) != 0 {
		t.Fatalf("view-covered gap flagged: %+v", tl.Violations)
	}
}

func TestHopsFromEvents(t *testing.T) {
	evs := []obs.Event{
		{TS: 10, Node: 1, Type: obs.EvWireSend, A: 9_999,
			B: obs.PackWireMeta(uint8(wire.KindDecision), obs.WirePeerBroadcast, 1, 42)},
		{TS: 12, Node: 2, Type: obs.EvWireRecv, A: 9_999,
			B: obs.PackWireMeta(uint8(wire.KindDecision), 1, 1, 42)},
		{TS: 15, Node: 2, Type: obs.EvDeliver, A: 3, B: obs.PackProposalID(7, 21)},
		{TS: 20, Node: 2, Type: obs.EvViewInstall, A: 5, B: 4},
		{TS: 21, Node: 2, Type: obs.EvGuardTrip}, // not a cross-node hop
	}
	hops := HopsFromEvents(2, evs)
	if len(hops) != 4 {
		t.Fatalf("hops = %d, want 4 (guard trip dropped)", len(hops))
	}
	if hops[0].Dir != HopSend || hops[0].Peer != HopBroadcast || hops[0].Slot != 42 || hops[0].TS != 9_999 {
		t.Fatalf("send hop = %+v", hops[0])
	}
	if hops[1].Dir != HopRecv || hops[1].Peer != 1 || hops[1].Chain() != hops[0].Chain() {
		t.Fatalf("recv hop = %+v (send chain %+v)", hops[1], hops[0].Chain())
	}
	if hops[2].Dir != HopDeliver || hops[2].Ordinal != 3 || hops[2].Proposer != 7 || hops[2].Seq != 21 {
		t.Fatalf("deliver hop = %+v", hops[2])
	}
	if hops[3].Dir != HopView || hops[3].Ordinal != 5 || hops[3].Seq != 4 {
		t.Fatalf("view hop = %+v", hops[3])
	}
}

func TestRenderTimeline(t *testing.T) {
	chain := ChainKey{Origin: 1, Slot: 7, TS: 7_000}
	tl := MergeCluster([][]Hop{
		{decisionSend(1, 7_000, chain)},
		{decisionRecv(2, 1, 7_400, chain),
			{Node: 2, At: 7_500, Dir: HopDeliver, Ordinal: 1, Proposer: 1, Seq: 1}},
	}, 500, false)
	var text strings.Builder
	if err := RenderTimeline(&text, tl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decision -> all", "decision <- p1", "(+400 from p1)", "delivered o1 p1/1", "edges=1"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text render missing %q:\n%s", want, text.String())
		}
	}
	var htm strings.Builder
	if err := RenderTimelineHTML(&htm, tl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<th>p1</th>", "<th>p2</th>", "decision→*", "decision←p1 +400", "0 violations"} {
		if !strings.Contains(htm.String(), want) {
			t.Fatalf("html render missing %q", want)
		}
	}
}
