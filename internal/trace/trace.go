// Package trace merges a simulated cluster's per-node histories — state
// transitions, view installations, decider tenures, deliveries — into a
// single time-ordered protocol timeline, for human inspection (twsim)
// and for tests that assert on event ordering.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/node"
)

// Kind classifies timeline events.
type Kind uint8

const (
	// KindState is an FSM transition.
	KindState Kind = iota
	// KindView is a view installation.
	KindView
	// KindDecider is a decider-role assumption or release.
	KindDecider
	// KindDeliver is an update delivery.
	KindDeliver
	// KindFault is a scripted fault (crash/recover), synthesised from
	// incarnation changes.
	KindFault
)

func (k Kind) String() string {
	switch k {
	case KindState:
		return "state"
	case KindView:
		return "view"
	case KindDecider:
		return "decider"
	case KindDeliver:
		return "deliver"
	case KindFault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At   model.Time
	Node model.ProcessID
	Kind Kind
	Text string
}

// Options filter the timeline.
type Options struct {
	// Kinds restricts the event kinds included (nil means all).
	Kinds []Kind
	// Nodes restricts the nodes included (nil means all).
	Nodes []model.ProcessID
	// From/Until bound the time range (zero Until means unbounded).
	From, Until model.Time
}

func (o Options) wantKind(k Kind) bool {
	if len(o.Kinds) == 0 {
		return true
	}
	for _, w := range o.Kinds {
		if w == k {
			return true
		}
	}
	return false
}

func (o Options) wantNode(p model.ProcessID) bool {
	if len(o.Nodes) == 0 {
		return true
	}
	for _, w := range o.Nodes {
		if w == p {
			return true
		}
	}
	return false
}

func (o Options) wantTime(t model.Time) bool {
	if t < o.From {
		return false
	}
	if o.Until != 0 && t > o.Until {
		return false
	}
	return true
}

// Collect builds the merged, time-sorted timeline of a cluster run.
func Collect(c *node.Cluster, opts Options) []Event {
	var out []Event
	add := func(at model.Time, who model.ProcessID, kind Kind, format string, args ...any) {
		if !opts.wantKind(kind) || !opts.wantNode(who) || !opts.wantTime(at) {
			return
		}
		out = append(out, Event{At: at, Node: who, Kind: kind, Text: fmt.Sprintf(format, args...)})
	}
	for _, n := range c.Nodes {
		for _, s := range n.StateLog {
			add(s.At, n.ID, KindState, "%v -> %v", s.From, s.To)
			if s.To == member.StateJoin && s.From != member.StateJoin {
				add(s.At, n.ID, KindFault, "excluded: restarting join protocol")
			}
		}
		for _, v := range n.Views {
			add(v.At, n.ID, KindView, "installed %v", v.Group)
		}
		for _, d := range n.DeciderLog {
			add(d.Start, n.ID, KindDecider, "assumed decider role")
			if d.End != 0 {
				verb := "relinquished role (fresher decision seen)"
				if d.Sent {
					verb = "sent decision, handed role to successor"
				}
				add(d.End, n.ID, KindDecider, "%s", verb)
			}
		}
		for _, d := range n.Deliveries {
			add(d.At, n.ID, KindDeliver, "delivered %v o%d %v (%d bytes)",
				d.ID, d.Ordinal, d.Sem, len(d.Payload))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Render writes the timeline as aligned text.
func Render(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%-12v %-4v %-8s %s\n", e.At, e.Node, e.Kind, e.Text); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates a timeline into per-node event counts, one line per
// node, plus a totals line.
func Summary(events []Event) string {
	type counts struct{ state, view, decider, deliver, fault int }
	per := make(map[model.ProcessID]*counts)
	var ids []model.ProcessID
	for _, e := range events {
		c, ok := per[e.Node]
		if !ok {
			c = &counts{}
			per[e.Node] = c
			ids = append(ids, e.Node)
		}
		switch e.Kind {
		case KindState:
			c.state++
		case KindView:
			c.view++
		case KindDecider:
			c.decider++
		case KindDeliver:
			c.deliver++
		case KindFault:
			c.fault++
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	var tot counts
	for _, id := range ids {
		c := per[id]
		fmt.Fprintf(&b, "%-4v states=%-4d views=%-3d decider=%-4d deliveries=%-5d faults=%d\n",
			id, c.state, c.view, c.decider, c.deliver, c.fault)
		tot.state += c.state
		tot.view += c.view
		tot.decider += c.decider
		tot.deliver += c.deliver
		tot.fault += c.fault
	}
	fmt.Fprintf(&b, "%-4s states=%-4d views=%-3d decider=%-4d deliveries=%-5d faults=%d\n",
		"all", tot.state, tot.view, tot.decider, tot.deliver, tot.fault)
	return b.String()
}
