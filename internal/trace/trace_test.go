package trace

import (
	"sort"
	"strings"
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// run produces a small cluster history with a crash.
func run(t *testing.T) *node.Cluster {
	t.Helper()
	c := node.NewCluster(node.Options{Seed: 5, Params: model.DefaultParams(3), PerfectClocks: true})
	c.Start()
	c.Run(4 * c.Params.CycleLen())
	c.Node(0).Propose([]byte("x"), oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity})
	c.Run(2 * c.Params.CycleLen())
	c.Crash(2)
	c.Run(4 * c.Params.CycleLen())
	return c
}

func TestCollectIsSortedAndComplete(t *testing.T) {
	c := run(t)
	events := Collect(c, Options{})
	if len(events) == 0 {
		t.Fatalf("empty timeline")
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Node < events[j].Node
	}) {
		t.Fatalf("timeline not sorted")
	}
	kinds := map[Kind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, k := range []Kind{KindState, KindView, KindDecider, KindDeliver} {
		if !kinds[k] {
			t.Errorf("no %v events in timeline", k)
		}
	}
}

func TestKindFilter(t *testing.T) {
	c := run(t)
	events := Collect(c, Options{Kinds: []Kind{KindView}})
	if len(events) == 0 {
		t.Fatalf("no view events")
	}
	for _, e := range events {
		if e.Kind != KindView {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
}

func TestNodeFilter(t *testing.T) {
	c := run(t)
	events := Collect(c, Options{Nodes: []model.ProcessID{1}})
	if len(events) == 0 {
		t.Fatalf("no events for p1")
	}
	for _, e := range events {
		if e.Node != 1 {
			t.Fatalf("filter leaked p%v", e.Node)
		}
	}
}

func TestTimeWindowFilter(t *testing.T) {
	c := run(t)
	all := Collect(c, Options{})
	mid := all[len(all)/2].At
	early := Collect(c, Options{Until: mid})
	late := Collect(c, Options{From: mid + 1})
	if len(early) == 0 || len(late) == 0 {
		t.Fatalf("window split degenerate: %d/%d", len(early), len(late))
	}
	for _, e := range early {
		if e.At > mid {
			t.Fatalf("early window leaked %v", e.At)
		}
	}
	for _, e := range late {
		if e.At <= mid {
			t.Fatalf("late window leaked %v", e.At)
		}
	}
}

func TestRenderAndSummary(t *testing.T) {
	c := run(t)
	events := Collect(c, Options{})
	var b strings.Builder
	if err := Render(&b, events); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "installed") || !strings.Contains(text, "delivered") {
		t.Fatalf("render missing content:\n%s", text[:min(400, len(text))])
	}
	sum := Summary(events)
	if !strings.Contains(sum, "all ") {
		t.Fatalf("summary missing totals:\n%s", sum)
	}
	for _, want := range []string{"p0", "p1", "p2"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %s:\n%s", want, sum)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindState; k <= KindFault; k++ {
		if k.String() == "" {
			t.Errorf("kind %d empty string", k)
		}
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind empty string")
	}
}
