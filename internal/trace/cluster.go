package trace

// Sim-side adapter for the cross-node merge: convert a simulated
// cluster's recorded histories (WireLog, Deliveries, Views) into Hop
// streams and merge them under the cluster's own ε bound. This is what
// the netsim scenario tests and twsim assert against; the live path
// feeds MergeCluster from /debug/events or blackbox bundles instead.

import (
	"timewheel/internal/member"
	"timewheel/internal/model"
	"timewheel/internal/node"
)

// ClusterHops extracts each node's cross-node hop stream from its
// recorded histories. Wire hops require Options.RecordWire; delivery
// and view hops are always recorded.
func ClusterHops(c *node.Cluster) [][]Hop {
	out := make([][]Hop, len(c.Nodes))
	for i, n := range c.Nodes {
		var hops []Hop
		for _, w := range n.WireLog {
			dir := HopSend
			if w.Dir == member.WireRecv {
				dir = HopRecv
			}
			peer := HopBroadcast
			if w.Peer != model.NoProcess {
				peer = int32(w.Peer)
			}
			hops = append(hops, Hop{
				Node: int32(n.ID), At: int64(w.At), Dir: dir, MsgKind: uint8(w.Kind),
				Peer: peer, Origin: uint16(w.Ctx.Origin), Slot: w.Ctx.Slot, TS: w.Ctx.TS,
			})
		}
		for _, d := range n.Deliveries {
			hops = append(hops, Hop{
				Node: int32(n.ID), At: int64(d.At), Dir: HopDeliver,
				Ordinal: uint64(d.Ordinal), Proposer: uint32(d.ID.Proposer), Seq: uint32(d.ID.Seq),
			})
		}
		for _, v := range n.Views {
			hops = append(hops, Hop{
				Node: int32(n.ID), At: int64(v.At), Dir: HopView,
				Ordinal: uint64(v.Group.Seq), Seq: uint32(len(v.Group.Members)),
			})
		}
		out[i] = hops
	}
	return out
}

// MergeSim merges a simulated cluster's recorded hop streams into one
// timeline under the cluster's configured ε clock bound. The sim's
// histories are complete (no ring overflow), so unmatched receives and
// anomalies are hard findings, not artifacts.
func MergeSim(c *node.Cluster) *Timeline {
	return MergeCluster(ClusterHops(c), int64(c.Params.Epsilon), false)
}
