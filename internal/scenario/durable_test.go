package scenario

import (
	"testing"

	"timewheel/internal/check"
	"timewheel/internal/model"
)

// TestDurableRejoin is the acceptance test for the durable state
// subsystem: kill -9 a member, keep committing, restart it as a new
// protocol stack on the same data directory, and require identical
// application state with no full state transfer and no protocol
// invariant violations.
func TestDurableRejoin(t *testing.T) {
	for _, n := range []int{3, 5} {
		for seed := int64(1); seed <= 3; seed++ {
			r := DurableRejoinAt(n, seed, t.TempDir())
			if r.Failed != "" {
				t.Fatalf("N=%d seed=%d: %s", n, seed, r.Failed)
			}
			if r.Metrics["delta_rejoins"] < 1 {
				t.Fatalf("N=%d seed=%d: rejoin was not served as a delta", n, seed)
			}
			if res := check.All(r.Cluster); !res.OK() {
				t.Fatalf("N=%d seed=%d: invariants violated: %s", n, seed, res)
			}
		}
	}
}

// TestDurableRejoinRepeatedCrashes kills and restarts the same member
// twice on one data directory — the second recovery replays a store
// that already contains a snapshot written at the first rejoin's
// delta application plus later log records.
func TestDurableRejoinRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	r := DurableRejoinAt(3, 7, dir)
	if r.Failed != "" {
		t.Fatalf("first crash cycle: %s", r.Failed)
	}
	c := r.Cluster
	victim := model.ProcessID(2)
	c.Crash(victim)
	if _, ok := runUntil(c, 6, func() bool { return agreedOn(c, remove(allIDs(3), victim)) }); !ok {
		t.Fatal("second crash never detected")
	}
	c.Recover(victim)
	if len(c.Node(victim).AppState()) == 0 {
		t.Fatal("second recovery lost the application state")
	}
	if _, ok := runUntil(c, 12, func() bool { return agreedOn(c, allIDs(3)) }); !ok {
		t.Fatal("second recovery never readmitted")
	}
	c.Run(cyclesDur(c, 6))
	if got, want := string(c.Node(victim).AppState()), string(c.Node(0).AppState()); got != want {
		t.Fatalf("state diverged after second recovery:\n victim %q\n node0  %q", got, want)
	}
	if res := check.All(c); !res.OK() {
		t.Fatalf("invariants violated: %s", res)
	}
}
