package scenario

import (
	"testing"

	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// runChecked asserts the scenario succeeded and all protocol invariants
// hold over its history.
func runChecked(t *testing.T, r *Result) *Result {
	t.Helper()
	if r.Failed != "" {
		t.Fatalf("%s failed: %s", r.Name, r.Failed)
	}
	if res := check.All(r.Cluster); !res.OK() {
		t.Fatalf("%s invariants: %s", r.Name, res)
	}
	return r
}

func TestFailureFreeScenario(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		r := runChecked(t, FailureFree(n, 100+int64(n), 20))
		if r.Metrics["membership_msgs"] != 0 {
			t.Errorf("N=%d: %v membership messages in failure-free period", n, r.Metrics["membership_msgs"])
		}
		if r.Metrics["decision_msgs"] == 0 {
			t.Errorf("N=%d: no decisions flowed", n)
		}
		// The heartbeat baseline would have sent many messages over the
		// same period.
		hb := HeartbeatBaseline(n, 20, model.DefaultParams(n))
		if hb <= 0 {
			t.Errorf("heartbeat baseline: %v", hb)
		}
	}
}

func TestSingleCrashScenario(t *testing.T) {
	for _, n := range []int{3, 5, 8, 12} {
		r := runChecked(t, SingleCrash(n, 200+int64(n)))
		if r.Metrics["single_elections"]+r.Metrics["reconfig_elections"] == 0 {
			t.Errorf("N=%d: no election", n)
		}
		// The paper's bound: detection within 2D plus one no-decision
		// ring of at most (N-1) hops each well under D, plus the fresh
		// decider's dissemination. Generous envelope: 2D + N*D.
		params := model.DefaultParams(n)
		bound := float64(2*params.D) + float64(n)*float64(params.D)
		if got := r.Metrics["recovery_us"]; got > bound {
			t.Errorf("N=%d: recovery %vus exceeds bound %vus", n, got, bound)
		}
	}
}

func TestFalseSuspicionScenario(t *testing.T) {
	// The common case: the false alarm is masked, membership unchanged.
	// (Masking is expected, not guaranteed — a lost retransmission makes
	// the protocol exclude and readmit instead; the sweep measures the
	// rate.)
	r := runChecked(t, FalseSuspicion(5, 300))
	if r.Metrics["masked"] != 1 {
		t.Errorf("seed 300 not masked: %v new views", r.Metrics["views_installed"])
	}
	if r.Metrics["wrong_suspicions"] == 0 {
		t.Errorf("no wrong suspicion provoked")
	}
	// Masking dominates across seeds.
	maskedCount := 0
	for seed := int64(0); seed < 20; seed++ {
		rr := runChecked(t, FalseSuspicion(5, seed))
		if rr.Metrics["masked"] == 1 {
			maskedCount++
		}
	}
	if maskedCount < 12 {
		t.Errorf("masking rate too low: %d/20", maskedCount)
	}
}

func TestMultiCrashScenario(t *testing.T) {
	for _, f := range []int{2, 3} {
		r := runChecked(t, MultiCrash(8, f, 400+int64(f)))
		if r.Metrics["reconfig_elections"] == 0 {
			t.Errorf("f=%d: recovery without reconfiguration election", f)
		}
		// The paper: "a new decider is typically elected in two rounds".
		if got := r.Metrics["recovery_cycles"]; got > 4 {
			t.Errorf("f=%d: recovery took %.1f cycles", f, got)
		}
	}
}

func TestMultiCrashTooManyFails(t *testing.T) {
	r := MultiCrash(5, 3, 500) // 2 survivors < majority 3
	if r.Failed == "" {
		t.Fatalf("expected scenario to report failure")
	}
}

func TestRejoinScenario(t *testing.T) {
	r := runChecked(t, Rejoin(5, 600))
	if r.Metrics["rejoin_us"] <= 0 {
		t.Errorf("rejoin metric missing")
	}
}

func TestPartitionScenario(t *testing.T) {
	r := runChecked(t, Partition(5, 700))
	if r.Metrics["majority_reconfig_us"] <= 0 || r.Metrics["heal_us"] <= 0 {
		t.Errorf("metrics: %v", r.Metrics)
	}
}

func TestWorkloadScenarios(t *testing.T) {
	sems := []oal.Semantics{
		{Order: oal.Unordered, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.WeakAtomicity},
	}
	for i, sem := range sems {
		r := runChecked(t, Workload(5, 800+int64(i), sem, 30))
		if r.Metrics["delivered"] < 30 {
			t.Errorf("%v: delivered %v/30", sem, r.Metrics["delivered"])
		}
		// Stronger semantics cost more latency; all must stay finite and
		// under a few cycles.
		params := model.DefaultParams(5)
		if got := r.Metrics["latency_max_us"]; got > float64(10*params.CycleLen()) {
			t.Errorf("%v: max latency %v too high", sem, got)
		}
	}
}

func TestMetricNamesSorted(t *testing.T) {
	r := FailureFree(3, 1, 2)
	names := r.MetricNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}

func TestCrashedProposerBodiesRecovered(t *testing.T) {
	// Regression: retransmissions of a crashed proposer's updates must
	// reach members that missed the originals (the retransmitter, not
	// the dead proposer, is the datagram source).
	c := node.NewCluster(node.Options{Seed: 99, Params: model.DefaultParams(4), PerfectClocks: true})
	c.Start()
	c.Run(5 * c.Params.CycleLen())
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	want := 0
	for k := 0; k < 5; k++ {
		for r := 0; r < 4; r++ {
			if c.Node(model.ProcessID(r)).Propose([]byte("u"), sem) {
				want++
			}
			c.Run(c.Params.D / 4)
		}
	}
	c.Crash(3)
	c.Run(2 * c.Params.CycleLen())
	for r := 0; r < 3; r++ {
		if c.Node(model.ProcessID(r)).Propose([]byte("x"), sem) {
			want++
		}
	}
	c.Run(10 * c.Params.CycleLen())
	// The crashed proposer's in-flight tail may be dropped uniformly
	// (§4.3) — at most its final, never-ordered update. Everything else,
	// including its earlier updates known only through retransmission,
	// must reach every survivor, and all survivors must agree exactly.
	ref := make(map[oal.ProposalID]bool)
	for _, d := range c.Node(0).Deliveries {
		ref[d.ID] = true
	}
	if got := len(ref); got < want-1 {
		t.Errorf("p0 delivered %d, want at least %d", got, want-1)
	}
	for r := 1; r < 3; r++ {
		n := c.Node(model.ProcessID(r))
		if len(n.Deliveries) != len(ref) {
			t.Errorf("p%d delivered %d, p0 delivered %d", r, len(n.Deliveries), len(ref))
		}
		for _, d := range n.Deliveries {
			if !ref[d.ID] {
				t.Errorf("p%d delivered %v which p0 did not", r, d.ID)
			}
		}
	}
	if res := check.All(c); !res.OK() {
		t.Fatalf("invariants: %s", res)
	}
}

func TestChaos(t *testing.T) {
	// Randomized crash/recover/partition/proposal schedules across
	// several seeds; every run must end with the full group re-formed
	// and every global invariant intact.
	for seed := int64(0); seed < 6; seed++ {
		opts := DefaultChaos(5, 3000+seed)
		r := Chaos(opts)
		if r.Failed != "" {
			t.Fatalf("seed %d: %s", seed, r.Failed)
		}
		if res := check.All(r.Cluster); !res.OK() {
			t.Fatalf("seed %d invariants: %s", seed, res)
		}
		if r.Metrics["crashes"]+r.Metrics["partitions"] == 0 {
			t.Logf("seed %d produced no faults; schedule too tame", seed)
		}
	}
}

func TestChaosLargerTeam(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	opts := DefaultChaos(9, 4242)
	opts.Cycles = 40
	r := Chaos(opts)
	if r.Failed != "" {
		t.Fatalf("%s", r.Failed)
	}
	if res := check.All(r.Cluster); !res.OK() {
		t.Fatalf("invariants: %s", res)
	}
}

func TestChaosWithDriftingClocks(t *testing.T) {
	// The full stack — drifting hardware clocks, fail-aware clock sync,
	// membership, broadcast — under a randomized fault schedule.
	opts := DefaultChaos(5, 7777)
	opts.DriftingClocks = true
	opts.Cycles = 40
	opts.PartitionProb = 0 // partitions also partition the sync beacons; keep this focused
	r := Chaos(opts)
	if r.Failed != "" {
		t.Fatalf("%s", r.Failed)
	}
	if res := check.All(r.Cluster); !res.OK() {
		t.Fatalf("invariants: %s", res)
	}
}

func TestSlowMemberScenario(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := runChecked(t, SlowMember(5, 900+seed))
		_ = r
	}
}

func TestScriptParseErrors(t *testing.T) {
	bad := []string{
		"at x crash 1",
		"at 1 crash",
		"at 1 crash -2",
		"at 1 explode 3",
		"at 1 partition 0,1",
		"at 1 partition | 1",
		"at 1 slow 1 30",
		"at 1 propose 1 total hello",
		"at 1 propose 1 sideways weak x",
		"at 1 propose 1 total soft x",
		"run zero",
		"crash 1",
	}
	for _, text := range bad {
		if _, err := ParseScript(text); err == nil {
			t.Errorf("accepted bad script %q", text)
		}
	}
}

func TestScriptRunsFaultSchedule(t *testing.T) {
	script := `
# crash the slot-2 member, let the group shrink, then bring it back
at 1 propose 0 total strong before-crash
at 2 crash 2
at 6 recover 2
at 7 propose 1 total strong after-recovery
run 16
`
	s, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	r := runChecked(t, s.Run(5, 61))
	// The crash produced a shrink view and the recovery a re-admission.
	if r.Metrics["views_installed_total"] < 3*5-2 {
		t.Logf("views: %v", r.Metrics["views_installed_total"])
	}
	if !agreedOn(r.Cluster, allIDs(5)) {
		t.Fatalf("group not restored after recovery")
	}
	// Both proposals delivered at a survivor.
	var got []string
	for _, d := range r.Cluster.Node(0).Deliveries {
		got = append(got, string(d.Payload))
	}
	if len(got) != 2 || got[0] != "before-crash" || got[1] != "after-recovery" {
		t.Fatalf("deliveries at p0: %v", got)
	}
}

func TestScriptPartitionAndSlow(t *testing.T) {
	script := `
at 1 partition 0,1,2 | 3,4
at 6 heal
at 10 slow 4 30ms
at 14 fast 4
run 24
`
	s, err := ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, s.Run(5, 62))
}

func TestScriptDefaultRunLength(t *testing.T) {
	s, err := ParseScript("at 3 crash 1")
	if err != nil {
		t.Fatal(err)
	}
	if s.cycles != 9 {
		t.Fatalf("default cycles: %d", s.cycles)
	}
}

func TestDecisionSizeBoundedByTruncation(t *testing.T) {
	// The oal's stable-prefix truncation must keep decision messages
	// bounded no matter how many updates flow: compare a short run and a
	// 4x longer run — max decision size must not scale with history.
	short := runChecked(t, Workload(5, 71, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}, 25))
	long := runChecked(t, Workload(5, 71, oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}, 100))
	s := short.Metrics["max_decision_bytes"]
	l := long.Metrics["max_decision_bytes"]
	if s <= 0 || l <= 0 {
		t.Fatalf("sizes not recorded: %v %v", s, l)
	}
	if l > 2*s {
		t.Fatalf("decision size scales with history: %v -> %v bytes", s, l)
	}
}

func TestMixedChurn(t *testing.T) {
	r := runChecked(t, MixedChurn(5, 91, 3))
	if r.Metrics["proposals"] < 40 {
		t.Fatalf("too few proposals flowed: %v", r.Metrics["proposals"])
	}
}

func TestChaosWithRoundTripSync(t *testing.T) {
	// Chaos over the full clock stack in round-trip mode. The network
	// must allow epsilon-precision rounds, so use tight delays.
	c := node.NewCluster(node.Options{
		Seed:           8181,
		Params:         model.DefaultParams(5),
		PerfectClocks:  false,
		RoundTripSync:  true,
		MaxClockOffset: model.DefaultParams(5).Epsilon,
		Delay:          netsim.UniformDelay(model.DefaultParams(5).Epsilon/4, model.DefaultParams(5).Epsilon-1),
	})
	c.Start()
	c.Run(6 * c.Params.CycleLen())
	if !agreedOn(c, allIDs(5)) {
		t.Fatalf("formation failed")
	}
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	for k := 0; k < 8; k++ {
		c.Node(model.ProcessID(k%5)).Propose([]byte("rt"), sem)
		c.Run(c.Params.CycleLen())
		if k == 3 {
			c.Crash(2)
		}
		if k == 6 {
			c.Recover(2)
		}
	}
	if _, ok := runUntil(c, 16, func() bool { return agreedOn(c, allIDs(5)) }); !ok {
		t.Fatalf("group did not re-form")
	}
	c.Run(6 * c.Params.CycleLen())
	if res := check.All(c); !res.OK() {
		t.Fatalf("invariants: %s", res)
	}
}
