package scenario

import (
	"fmt"
	"testing"

	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// runSlotBatchLoad wraps SlotBatchLoad for the tests: any unusable run
// (group never formed, invariants violated) is fatal.
func runSlotBatchLoad(t *testing.T, batch bool) (datagrams uint64, final netsim.Stats) {
	t.Helper()
	datagrams, final, err := SlotBatchLoad(batch)
	if err != nil {
		t.Fatal(err)
	}
	return datagrams, final
}

// TestSlotBatchDatagramReduction asserts the slot-batch coalescer's core
// claim: under the same loaded steady state, transmitting at slot
// boundaries instead of per event collapses the datagram count — while
// never holding a frame past the slot edge it was sent in (the honesty
// condition the failure detector's expectation deadlines rely on).
func TestSlotBatchDatagramReduction(t *testing.T) {
	perEvent, _ := runSlotBatchLoad(t, false)
	batched, stats := runSlotBatchLoad(t, true)
	t.Logf("datagrams over measurement window: per-event=%d batched=%d (%.1f%%), max hold %v of slot %v",
		perEvent, batched, 100*float64(batched)/float64(perEvent),
		stats.MaxHold, model.DefaultParams(5).SlotLen())
	if stats.LateFlushes != 0 {
		t.Fatalf("%d frames flushed past their slot edge, want 0", stats.LateFlushes)
	}
	if slot := model.DefaultParams(5).SlotLen(); stats.MaxHold > slot {
		t.Fatalf("max buffer hold %v exceeds the slot length %v", stats.MaxHold, slot)
	}
	if batched > perEvent/2 {
		t.Fatalf("slot batching sent %d datagrams, want ≤50%% of per-event's %d", batched, perEvent)
	}
}

// TestSlotBatchChaos runs the coalescer under an adverse network — drops,
// duplicates, heavy-tailed delays, and a mid-run crash+recovery that
// discards buffered frames with their sender — and requires that the
// honesty condition and every protocol invariant still hold.
func TestSlotBatchChaos(t *testing.T) {
	const n = 5
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	params := model.DefaultParams(n)
	c := node.NewCluster(node.Options{
		Seed:          7,
		Params:        params,
		PerfectClocks: true,
		SlotBatch:     true,
		Drop:          0.02,
		Delay:         netsim.HeavyTailDelay(params.Delta/10, params.Delta/2, 0.02, 3),
	})
	c.Net.SetDuplicateProb(0.01)
	c.Start()
	if _, ok := runUntil(c, 10, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
		t.Fatal("initial group never formed")
	}
	seq := 0
	victim := model.ProcessID(n - 1)
	for phase := 0; phase < 3; phase++ {
		for s := 0; s < 10*n; s++ {
			for i := 0; i < 5; i++ {
				who := model.ProcessID(seq % n)
				if !c.Crashed(who) {
					c.Node(who).Propose([]byte(fmt.Sprintf("chaos-%04d", seq)), sem)
				}
				seq++
			}
			c.Run(c.Params.SlotLen())
		}
		switch phase {
		case 0:
			// Crash with frames plausibly buffered: they die with the
			// sender instead of leaking a posthumous flush.
			c.Crash(victim)
		case 1:
			c.Recover(victim)
		}
	}
	if _, ok := runUntil(c, 30, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
		t.Fatal("group never re-admitted the recovered member")
	}
	c.Run(cyclesDur(c, 6))
	stats := c.Net.Stats()
	if stats.LateFlushes != 0 {
		t.Fatalf("%d frames flushed past their slot edge under chaos, want 0", stats.LateFlushes)
	}
	if stats.MaxHold > params.SlotLen() {
		t.Fatalf("max buffer hold %v exceeds the slot length %v", stats.MaxHold, params.SlotLen())
	}
	if res := check.All(c); !res.OK() {
		t.Fatalf("invariants violated under slot-batch chaos: %v", res)
	}
}
