package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// Script is a parsed fault schedule: a sequence of actions pinned to
// cycle boundaries, run against a fresh cluster. The text format, one
// action per line ('#' starts a comment):
//
//	at <cycle> crash <id>
//	at <cycle> recover <id>
//	at <cycle> partition <id,id,...> | <id,id,...>
//	at <cycle> heal
//	at <cycle> slow <id> <lag>        e.g. "slow 3 30ms"
//	at <cycle> fast <id>
//	at <cycle> propose <id> <order> <atomicity> <payload>
//	run <cycles>
//
// order ∈ unordered|total|time; atomicity ∈ weak|strong|strict.
type Script struct {
	actions []scriptAction
	cycles  int
}

type scriptAction struct {
	cycle int
	line  int
	apply func(*scriptRun) error
}

type scriptRun struct {
	c    *clusterT
	slow map[model.ProcessID]model.Duration
}

// clusterT aliases the node cluster for brevity inside this file.
type clusterT = node.Cluster

// ParseScript parses the text format above.
func ParseScript(text string) (*Script, error) {
	s := &Script{cycles: -1}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		lineNo := ln + 1
		if fields[0] == "run" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: run wants one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: bad cycle count %q", lineNo, fields[1])
			}
			s.cycles = n
			continue
		}
		if fields[0] != "at" || len(fields) < 3 {
			return nil, fmt.Errorf("line %d: expected 'at <cycle> <action>' or 'run <cycles>'", lineNo)
		}
		cycle, err := strconv.Atoi(fields[1])
		if err != nil || cycle < 0 {
			return nil, fmt.Errorf("line %d: bad cycle %q", lineNo, fields[1])
		}
		act, err := parseAction(fields[2:], lineNo)
		if err != nil {
			return nil, err
		}
		s.actions = append(s.actions, scriptAction{cycle: cycle, line: lineNo, apply: act})
	}
	if s.cycles < 0 {
		last := 0
		for _, a := range s.actions {
			if a.cycle > last {
				last = a.cycle
			}
		}
		s.cycles = last + 6
	}
	return s, nil
}

func parseAction(fields []string, lineNo int) (func(*scriptRun) error, error) {
	pid := func(arg string) (model.ProcessID, error) {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("line %d: bad process id %q", lineNo, arg)
		}
		return model.ProcessID(v), nil
	}
	switch fields[0] {
	case "crash":
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: crash wants one id", lineNo)
		}
		id, err := pid(fields[1])
		if err != nil {
			return nil, err
		}
		return func(r *scriptRun) error {
			if int(id) >= len(r.c.Nodes) {
				return fmt.Errorf("line %d: no such process %v", lineNo, id)
			}
			r.c.Crash(id)
			return nil
		}, nil
	case "recover":
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: recover wants one id", lineNo)
		}
		id, err := pid(fields[1])
		if err != nil {
			return nil, err
		}
		return func(r *scriptRun) error {
			if int(id) >= len(r.c.Nodes) {
				return fmt.Errorf("line %d: no such process %v", lineNo, id)
			}
			r.c.Recover(id)
			return nil
		}, nil
	case "partition":
		rest := strings.Join(fields[1:], " ")
		sidesText := strings.Split(rest, "|")
		if len(sidesText) < 2 {
			return nil, fmt.Errorf("line %d: partition wants at least two '|'-separated sides", lineNo)
		}
		var sides [][]model.ProcessID
		for _, st := range sidesText {
			var side []model.ProcessID
			for _, tok := range strings.Split(st, ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				id, err := pid(tok)
				if err != nil {
					return nil, err
				}
				side = append(side, id)
			}
			if len(side) == 0 {
				return nil, fmt.Errorf("line %d: empty partition side", lineNo)
			}
			sides = append(sides, side)
		}
		return func(r *scriptRun) error {
			r.c.Net.Partition(sides...)
			return nil
		}, nil
	case "heal":
		return func(r *scriptRun) error {
			r.c.Net.Heal()
			return nil
		}, nil
	case "slow":
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: slow wants '<id> <lag>'", lineNo)
		}
		id, err := pid(fields[1])
		if err != nil {
			return nil, err
		}
		lag, err := parseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		return func(r *scriptRun) error {
			r.slow[id] = lag
			return nil
		}, nil
	case "fast":
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: fast wants one id", lineNo)
		}
		id, err := pid(fields[1])
		if err != nil {
			return nil, err
		}
		return func(r *scriptRun) error {
			delete(r.slow, id)
			return nil
		}, nil
	case "propose":
		if len(fields) != 5 {
			return nil, fmt.Errorf("line %d: propose wants '<id> <order> <atomicity> <payload>'", lineNo)
		}
		id, err := pid(fields[1])
		if err != nil {
			return nil, err
		}
		var sem oal.Semantics
		switch fields[2] {
		case "unordered":
			sem.Order = oal.Unordered
		case "total":
			sem.Order = oal.TotalOrder
		case "time":
			sem.Order = oal.TimeOrder
		default:
			return nil, fmt.Errorf("line %d: unknown order %q", lineNo, fields[2])
		}
		switch fields[3] {
		case "weak":
			sem.Atomicity = oal.WeakAtomicity
		case "strong":
			sem.Atomicity = oal.StrongAtomicity
		case "strict":
			sem.Atomicity = oal.StrictAtomicity
		default:
			return nil, fmt.Errorf("line %d: unknown atomicity %q", lineNo, fields[3])
		}
		payload := fields[4]
		return func(r *scriptRun) error {
			if int(id) >= len(r.c.Nodes) {
				return fmt.Errorf("line %d: no such process %v", lineNo, id)
			}
			r.c.Node(id).Propose([]byte(payload), sem)
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("line %d: unknown action %q", lineNo, fields[0])
	}
}

// parseDuration accepts "30ms", "2s", "500us".
func parseDuration(s string) (model.Duration, error) {
	mult := model.Duration(0)
	var numPart string
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, numPart = model.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		mult, numPart = model.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "s"):
		mult, numPart = model.Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("bad duration %q (use us/ms/s)", s)
	}
	v, err := strconv.Atoi(numPart)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return model.Duration(v) * mult, nil
}

// Run executes the script against a fresh cluster of n nodes. Cycle 0 is
// the moment the initial group has formed; scripted cycles count from
// there.
func (s *Script) Run(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("script/N=%d", n), c)
	if !form(r) {
		return r
	}
	run := &scriptRun{c: c, slow: make(map[model.ProcessID]model.Duration)}
	c.Net.AddFilter(func(from, to model.ProcessID, m wire.Message) (netsim.Verdict, model.Duration) {
		if lag, ok := run.slow[from]; ok {
			return netsim.Pass, lag
		}
		return netsim.Pass, 0
	})

	byCycle := make(map[int][]scriptAction)
	for _, a := range s.actions {
		byCycle[a.cycle] = append(byCycle[a.cycle], a)
	}
	for cyc := 0; cyc <= s.cycles; cyc++ {
		for _, a := range byCycle[cyc] {
			if err := a.apply(run); err != nil {
				r.fail("%v", err)
				return r
			}
		}
		c.Run(c.Params.CycleLen())
	}
	r.metric("cycles", float64(s.cycles))
	views := 0
	for _, nd := range c.Nodes {
		views += len(nd.Views)
	}
	r.metric("views_installed_total", float64(views))
	return r
}
