package scenario

import (
	"testing"
)

// TestSurveilSoak is the ISSUE-9 acceptance soak: 50 nodes with
// k-successor surveillance and adaptive timeouts under a scripted
// nemesis (drifting degraded link, forged suspicion storm, staggered
// crash/recover, partition+heal). runChecked asserts the §3 agreement
// and ordering invariants over the whole history on top of the
// scenario's own zero-false-ejection and detection-latency asserts.
func TestSurveilSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	r := runChecked(t, SurveilSoak(50, 9001))
	if r.Metrics["refutes_sent"] == 0 {
		t.Errorf("no refutes observed — false-suspicion path untested")
	}
	if r.Metrics["gossip_relays"] == 0 {
		t.Errorf("no gossip relays — suspicion never propagated along the ring")
	}
	if r.Metrics["stale_suspicions"] == 0 {
		t.Errorf("no stale suppressions — incarnation watermark never exercised")
	}
}

// TestSurveilSoakSmall keeps a cheap always-on variant in the default
// test run so regressions in the surveillance path surface without the
// full 50-node soak.
func TestSurveilSoakSmall(t *testing.T) {
	runChecked(t, SurveilSoak(12, 77))
}

// TestSurveilScaling pins the traffic economics: suspicion/refute gossip
// grows ~linearly with N (each sighting is relayed to k successors once)
// while the all-to-all observation channel grows ~quadratically.
func TestSurveilScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	r := runChecked(t, SurveilScaling(500))
	if r.Failed != "" {
		t.Fatalf("%s failed: %s", r.Name, r.Failed)
	}
	t.Logf("gossip growth %.1fx, all-to-all growth %.1fx over 4x nodes",
		r.Metrics["gossip_growth"], r.Metrics["alltoall_growth"])
}
