package scenario

// Fabric scenario: the ISSUE-6 acceptance vehicle. Four timewheel
// groups, three replicas each, spread over four hosts sharing one
// in-memory trunk. The run kills one group's member, then moves another
// group's replica between hosts with fabric.MoveGroup (durable snapshot
// clone + live replay delta + ring-epoch flip) while a client keeps
// routing proposals through the consistent-hash ring. Afterwards every
// group's live history must independently satisfy the §3 membership
// invariants.
//
// This is a real-time test (the netsim fabric is message-level and
// cannot carry grouped datagrams), so it follows the livechaos timing
// model rather than the simulated scenarios in this package.

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timewheel"
	"timewheel/fabric"
	"timewheel/internal/check"
)

const (
	fabHosts    = 4
	fabReplicas = 3
)

func fabParams() timewheel.Params {
	return timewheel.Params{
		Delta:   3 * time.Millisecond,
		D:       8 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: 500 * time.Microsecond,
	}
}

// fabSpecs places four groups on four hosts in rotating 3-replica
// subsets, so every host carries three groups.
func fabSpecs() []fabric.GroupSpec {
	return []fabric.GroupSpec{
		{ID: 1, Replicas: []int{0, 1, 2}},
		{ID: 2, Replicas: []int{1, 2, 3}},
		{ID: 3, Replicas: []int{2, 3, 0}},
		{ID: 4, Replicas: []int{3, 0, 1}},
	}
}

// fabApp is the trivial replicated application: a per-(host,group)
// delivery counter whose value rides the snapshot/install hooks, so
// state transfer during the group move carries real app state.
type fabApp struct {
	mu    sync.Mutex
	count map[string]int // "host/gid" → deliveries
}

func (a *fabApp) key(host int, gid uint32) string { return fmt.Sprintf("%d/%d", host, gid) }

func (a *fabApp) onDeliver(host int) func(uint32, timewheel.Delivery) {
	return func(gid uint32, _ timewheel.Delivery) {
		a.mu.Lock()
		a.count[a.key(host, gid)]++
		a.mu.Unlock()
	}
}

func (a *fabApp) snapshot(host int) func(uint32) []byte {
	return func(gid uint32) []byte {
		a.mu.Lock()
		defer a.mu.Unlock()
		return []byte(fmt.Sprintf("%d", a.count[a.key(host, gid)]))
	}
}

func (a *fabApp) install(host int) func(uint32, []byte) {
	return func(gid uint32, state []byte) {
		a.mu.Lock()
		defer a.mu.Unlock()
		var v int
		fmt.Sscanf(string(state), "%d", &v) //nolint:errcheck
		a.count[a.key(host, gid)] = v
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// groupFormed reports whether every live host of gid sees n members.
func groupFormed(nodes []*fabric.Node, gid uint32, n int) bool {
	hosting := 0
	for _, fn := range nodes {
		g := fn.Group(gid)
		if g == nil {
			continue
		}
		hosting++
		v, ok := g.CurrentView()
		if !ok || len(v.Members) != n {
			return false
		}
	}
	return hosting > 0
}

// servedEngine is one engine's stint as a group member. A moved member
// contributes two stints under the same member index — the validators
// treat them as one member, which is exactly what a move means.
type servedEngine struct {
	idx  int
	node *timewheel.Node
}

// liveHistories collects check.LiveHistory for one group from the
// engines that ever served it (member index = check ID).
func liveHistories(members []servedEngine) []check.LiveHistory {
	hs := make([]check.LiveHistory, 0, len(members))
	for _, m := range members {
		views, tenures := m.node.History()
		h := check.LiveHistory{ID: m.idx}
		for _, v := range views {
			h.Views = append(h.Views, check.LiveView{Seq: v.Seq, Members: v.Members, At: v.At})
		}
		for _, tn := range tenures {
			h.Tenures = append(h.Tenures, check.LiveTenure{
				Start: tn.Start, End: tn.End, Sent: tn.Sent, Open: tn.Open,
			})
		}
		hs = append(hs, h)
	}
	return hs
}

func TestFabricScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fabric scenario")
	}

	app := &fabApp{count: make(map[string]int)}
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 23})
	root := t.TempDir()
	nodes := make([]*fabric.Node, fabHosts)
	for h := 0; h < fabHosts; h++ {
		fn, err := fabric.New(fabric.Config{
			Host:          h,
			Transport:     hub.Transport(h),
			Groups:        fabSpecs(),
			Params:        fabParams(),
			DataDir:       filepath.Join(root, fmt.Sprintf("h%d", h)),
			Fsync:         "none",
			SnapshotEvery: 16,
			OnDeliver:     app.onDeliver(h),
			Snapshot:      app.snapshot(h),
			Install:       app.install(h),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[h] = fn
	}
	for _, fn := range nodes {
		fn.Start()
	}
	defer func() {
		for _, fn := range nodes {
			fn.Stop()
		}
		hub.Close()
	}()

	// Engines that ever served each group, keyed by member index — the
	// invariant check wants the full history, including members that
	// die or move mid-run.
	served := make(map[uint32][]servedEngine)
	for _, s := range fabSpecs() {
		for idx, h := range s.Replicas {
			served[s.ID] = append(served[s.ID], servedEngine{idx, nodes[h].Group(s.ID)})
		}
	}

	waitUntil(t, 15*time.Second, "all four groups to form", func() bool {
		for _, s := range fabSpecs() {
			if !groupFormed(nodes, s.ID, fabReplicas) {
				return false
			}
		}
		return true
	})

	// Client: route keys through the ring, refreshing from the serving
	// side on ErrWrongGroup (the post-move stale-epoch signal).
	router := fabric.NewRouter(nodes[0].Ring())
	var proposed, retried atomic.Uint64
	propose := func(key []byte) error {
		return router.Do(key, 4, func() {
			retried.Add(1)
			for _, fn := range nodes {
				router.Update(fn.Ring())
			}
		}, func(gid uint32, epoch uint64) error {
			for _, fn := range nodes {
				if fn.Group(gid) == nil {
					continue
				}
				err := fn.ProposeKey(epoch, key, key, timewheel.TotalOrder, timewheel.Strong)
				if err == nil {
					proposed.Add(1)
				}
				return err
			}
			return fabric.ErrWrongGroup
		})
	}
	propStop := make(chan struct{})
	propDone := make(chan struct{})
	go func() {
		defer close(propDone)
		for i := 0; ; i++ {
			select {
			case <-propStop:
				return
			default:
			}
			propose([]byte(fmt.Sprintf("key-%d", i))) //nolint:errcheck // moves race proposals
			time.Sleep(time.Millisecond)
		}
	}()

	// Phase 1 — kill a member: host 3 drops its replica of group 2. The
	// group keeps operating on its surviving majority.
	if err := nodes[3].RemoveGroup(2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, "group 2 to converge on the surviving pair", func() bool {
		return groupFormed(nodes, 2, fabReplicas-1)
	})

	// Phase 2 — move group 1's replica off host 0 onto host 3:
	// checkpoint, snapshot clone, layout + epoch flip, replay rejoin.
	preDeltas := uint64(0)
	for _, h := range []int{1, 2} {
		preDeltas += nodes[h].Group(1).Metrics().StateDeltas
	}
	newRing, err := fabric.MoveGroup(1, nodes[0], nodes[3], nodes)
	if err != nil {
		t.Fatalf("MoveGroup: %v", err)
	}
	if newRing.Epoch() != nodes[1].Ring().Epoch() {
		t.Fatalf("ring epoch not propagated: move=%d node=%d", newRing.Epoch(), nodes[1].Ring().Epoch())
	}
	served[1] = append(served[1], servedEngine{0, nodes[3].Group(1)}) // the moved member's second stint

	waitUntil(t, 20*time.Second, "group 1 to re-form with the moved member", func() bool {
		return groupFormed(nodes, 1, fabReplicas)
	})
	// Let the client observe the epoch flip and keep proposing a while
	// after the move so the post-move regime is exercised too.
	waitUntil(t, 10*time.Second, "client to converge on the new ring", func() bool {
		return router.Ring().Epoch() == newRing.Epoch()
	})
	time.Sleep(100 * time.Millisecond)
	close(propStop)
	<-propDone

	if proposed.Load() == 0 {
		t.Fatal("client proposed nothing")
	}
	t.Logf("client: %d proposals, %d routing refreshes", proposed.Load(), retried.Load())

	// The move must have rejoined warm: a surviving member served a
	// replay delta (full transfer is the fallback, not the happy path).
	postDeltas := uint64(0)
	for _, h := range []int{1, 2} {
		postDeltas += nodes[h].Group(1).Metrics().StateDeltas
	}
	moved := nodes[3].Group(1)
	if moved == nil {
		t.Fatal("moved member not hosted on destination")
	}
	rec := moved.Recovery()
	if !rec.HaveSnapshot {
		t.Errorf("moved member did not recover the cloned snapshot: %+v", rec)
	}
	if postDeltas == preDeltas {
		t.Errorf("no replay delta served for the move (deltas %d → %d)", preDeltas, postDeltas)
	}
	t.Logf("move: recovery=%+v replayApplied=%d deltasServed=%d",
		rec, moved.Metrics().ReplayApplied, postDeltas-preDeltas)

	// No datagram may ever arrive malformed. Unknown-group drops are
	// legitimate on hosts that shed a group mid-run (peers keep
	// addressing the dead member until the view converges) but must not
	// appear on hosts whose port set never shrank.
	for _, fn := range nodes {
		st := fn.DemuxStats()
		if st.Malformed != 0 {
			t.Errorf("host %d malformed datagrams: %+v", fn.Host(), st)
		}
		if h := fn.Host(); h == 1 || h == 2 {
			if st.UnknownGroup != 0 {
				t.Errorf("host %d dropped unknown-group datagrams without shedding a group: %+v", h, st)
			}
		}
		t.Logf("host %d demux: %+v", fn.Host(), st)
	}

	// Every group independently satisfies the §3 invariants over its
	// full history — including the killed member and both halves of the
	// moved one.
	for _, s := range fabSpecs() {
		hs := liveHistories(served[s.ID])
		if res := check.LiveAll(fabReplicas, hs, 150*time.Millisecond); !res.OK() {
			t.Errorf("group %d invariants: %s", s.ID, res)
		}
	}
}
