package scenario

import (
	"testing"

	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// TestRejoinStateTransferConvergence covers what the continuous-member
// validators cannot: a crash-recovered member's *application state* must
// converge with the survivors' even when its pre-crash updates were
// truncated from the log (so only the join-time snapshot can supply
// them) and even when the State unicast is dropped or overtaken by the
// admission decision. Background omissions force the resend path; many
// seeds cover both orders of the decision/State race.
func TestRejoinStateTransferConvergence(t *testing.T) {
	const n = 5
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		c := node.NewCluster(node.Options{
			Seed:          seed,
			Params:        model.DefaultParams(n),
			PerfectClocks: true,
			Drop:          0.05,
		})
		c.Start()
		if _, ok := runUntil(c, 10, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
			t.Fatalf("seed %d: initial group never formed", seed)
		}
		propose := func(id model.ProcessID, s string) {
			for !c.Node(id).Propose([]byte(s), sem) {
				c.Run(c.Params.SlotLen())
			}
		}
		propose(0, "pre-crash-a")
		propose(1, "pre-crash-b")
		c.Run(cyclesDur(c, 2))

		victim := model.ProcessID(n - 1)
		c.Crash(victim)
		if _, ok := runUntil(c, 20, func() bool { return agreedOn(c, allIDs(n-1)) }); !ok {
			t.Fatalf("seed %d: crash never detected", seed)
		}
		propose(0, "while-down-c")
		propose(2, "while-down-d")
		// Enough rotation that every update above becomes stable and is
		// truncated: the recovered victim can only learn their effects
		// from the snapshot, never from the log.
		c.Run(cyclesDur(c, 4))

		c.Recover(victim)
		if _, ok := runUntil(c, 40, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
			t.Fatalf("seed %d: recovered process never readmitted", seed)
		}
		if _, ok := runUntil(c, 16, func() bool {
			ref := c.Node(0).AppState()
			if len(ref) == 0 {
				return false
			}
			for i := 1; i < n; i++ {
				if string(c.Node(model.ProcessID(i)).AppState()) != string(ref) {
					return false
				}
			}
			return true
		}); !ok {
			for i := 0; i < n; i++ {
				t.Logf("node %d app state: %q", i, c.Node(model.ProcessID(i)).AppState())
			}
			t.Fatalf("seed %d: application states never converged after rejoin", seed)
		}
		if res := check.All(c); !res.OK() {
			t.Fatalf("seed %d: invariants violated: %v", seed, res)
		}
	}
}
