// Package scenario is the canonical library of protocol runs used by the
// integration tests, the twsim/twbench commands and the benchmark
// harness: group formation, the paper's failure cases (single crash,
// false suspicion, multiple crashes, partition, crash-recovery-rejoin)
// and broadcast workloads, each instrumented with the metrics the
// experiments report.
package scenario

import (
	"fmt"
	"sort"

	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// Result is the outcome of one scenario run.
type Result struct {
	Name    string
	Cluster *node.Cluster
	// Metrics are scenario-specific measurements (durations in
	// microseconds unless suffixed otherwise).
	Metrics map[string]float64
	// Failed is set when the scenario did not reach its expected final
	// condition.
	Failed string
}

func (r *Result) metric(name string, v float64) { r.Metrics[name] = v }

func (r *Result) fail(format string, args ...any) {
	if r.Failed == "" {
		r.Failed = fmt.Sprintf(format, args...)
	}
}

// MetricNames returns the metric keys in sorted order.
func (r *Result) MetricNames() []string {
	out := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func newResult(name string, c *node.Cluster) *Result {
	return &Result{Name: name, Cluster: c, Metrics: make(map[string]float64)}
}

func cluster(n int, seed int64) *node.Cluster {
	return node.NewCluster(node.Options{
		Seed:          seed,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
	})
}

func cyclesDur(c *node.Cluster, k int) model.Duration {
	return model.Duration(k) * c.Params.CycleLen()
}

// allIDs returns 0..n-1.
func allIDs(n int) []model.ProcessID {
	out := make([]model.ProcessID, n)
	for i := range out {
		out[i] = model.ProcessID(i)
	}
	return out
}

// agreedOn reports whether every live member of `want` has installed
// exactly that group.
func agreedOn(c *node.Cluster, want []model.ProcessID) bool {
	wantG := model.NewGroup(0, want)
	for _, id := range want {
		if c.Crashed(id) {
			continue
		}
		g, ok := c.Node(id).CurrentGroup()
		if !ok || !g.SameMembers(wantG) {
			return false
		}
	}
	return true
}

// runUntil advances the cluster in slot-sized steps until cond holds or
// the budget of cycles is exhausted; it returns the time cond first held
// and whether it did.
func runUntil(c *node.Cluster, maxCycles int, cond func() bool) (model.Time, bool) {
	steps := maxCycles * c.Params.N
	for i := 0; i < steps; i++ {
		if cond() {
			return c.Sim.Now(), true
		}
		c.Run(c.Params.SlotLen())
	}
	if cond() {
		return c.Sim.Now(), true
	}
	return c.Sim.Now(), false
}

// form boots the cluster and waits for the full group; it records the
// formation latency metric.
func form(r *Result) bool {
	c := r.Cluster
	c.Start()
	at, ok := runUntil(c, 8, func() bool { return agreedOn(c, allIDs(c.Params.N)) })
	if !ok {
		r.fail("initial group never formed")
		return false
	}
	r.metric("formation_us", float64(at))
	return true
}

// FailureFree runs a formed group for the given number of cycles and
// reports the membership-message counts (experiment E2: zero membership
// messages in failure-free periods) plus decision traffic.
func FailureFree(n int, seed int64, cycles int) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("failure-free/N=%d", n), c)
	if !form(r) {
		return r
	}
	before := c.Net.Stats()
	start := c.Sim.Now()
	c.Run(cyclesDur(c, cycles))
	after := c.Net.Stats()
	elapsed := float64(c.Sim.Now().Sub(start)) / 1e6 // seconds

	member := float64(after.Broadcasts[wire.KindJoin] - before.Broadcasts[wire.KindJoin])
	member += float64(after.Broadcasts[wire.KindNoDecision] - before.Broadcasts[wire.KindNoDecision])
	member += float64(after.Broadcasts[wire.KindReconfig] - before.Broadcasts[wire.KindReconfig])
	decisions := float64(after.Broadcasts[wire.KindDecision] - before.Broadcasts[wire.KindDecision])

	r.metric("membership_msgs", member)
	r.metric("decision_msgs", decisions)
	r.metric("decision_msgs_per_sec", decisions/elapsed)
	r.metric("max_decision_bytes", float64(after.MaxBytes[wire.KindDecision]))
	r.metric("cycles", float64(cycles))
	return r
}

// HeartbeatBaseline models the conventional alternative the paper's
// zero-overhead claim is implicitly compared against: every process
// pings every interval D. It returns the message count a heartbeat
// failure detector would have sent over the same span (analytically: one
// broadcast per process per D).
func HeartbeatBaseline(n int, cycles int, params model.Params) float64 {
	span := float64(int64(params.CycleLen()) * int64(cycles))
	return float64(n) * span / float64(params.D)
}

// SingleCrash crashes the current (or next) decider of a formed group
// and measures the view-change latency of the single-failure fast path
// (experiment E3).
func SingleCrash(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("single-crash/N=%d", n), c)
	if !form(r) {
		return r
	}
	victim := pickDecider(c)
	c.Crash(victim)
	crashAt := c.Sim.Now()

	survivors := remove(allIDs(n), victim)
	at, ok := runUntil(c, 6, func() bool { return agreedOn(c, survivors) })
	if !ok {
		r.fail("crash of %v never recovered", victim)
		return r
	}
	r.metric("recovery_us", float64(at.Sub(crashAt)))
	r.metric("recovery_over_D", float64(at.Sub(crashAt))/float64(c.Params.D))
	var singles, reconfigs, nds uint64
	for _, id := range survivors {
		st := c.Node(id).Machine().Stats()
		singles += st.SingleElections
		reconfigs += st.ReconfigElections
		nds += st.NDsSent
	}
	r.metric("single_elections", float64(singles))
	r.metric("reconfig_elections", float64(reconfigs))
	r.metric("nd_messages", float64(nds))
	if singles == 0 && reconfigs == 0 {
		r.fail("no election happened")
	}
	return r
}

// pickDecider returns the node currently holding (or about to hold) the
// decider role, falling back to the first member.
func pickDecider(c *node.Cluster) model.ProcessID {
	for _, n := range c.Nodes {
		if n.Machine().IsDecider() {
			return n.ID
		}
	}
	return c.Nodes[0].ID
}

func remove(ids []model.ProcessID, who model.ProcessID) []model.ProcessID {
	out := make([]model.ProcessID, 0, len(ids)-1)
	for _, id := range ids {
		if id != who {
			out = append(out, id)
		}
	}
	return out
}

// FalseSuspicion drops one decision message entirely, forcing a
// suspicion of a live decider, and verifies the wrong-suspicion path
// masks it: service continues, membership unchanged (experiment E4). It
// measures the interruption of the decision flow.
func FalseSuspicion(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("false-suspicion/N=%d", n), c)
	if !form(r) {
		return r
	}
	viewsBefore := 0
	for _, nd := range c.Nodes {
		viewsBefore += len(nd.Views)
	}

	// Drop every decision until the first no-decision appears: a live
	// decider is then under suspicion.
	dropping := true
	c.Net.AddFilter(func(from, to model.ProcessID, m wire.Message) (netsim.Verdict, model.Duration) {
		switch m.Kind() {
		case wire.KindDecision:
			if dropping {
				return netsim.Drop, 0
			}
		case wire.KindNoDecision:
			dropping = false
		}
		return netsim.Pass, 0
	})

	before := c.Sim.Now()
	// Let the suspicion and masking play out.
	c.Run(cyclesDur(c, 4))
	c.Net.ClearFilters()
	c.Run(cyclesDur(c, 2))

	viewsAfter := 0
	var ws uint64
	for _, nd := range c.Nodes {
		viewsAfter += len(nd.Views)
		ws += nd.Machine().Stats().WrongSuspicions
	}
	r.metric("views_installed", float64(viewsAfter-viewsBefore))
	r.metric("wrong_suspicions", float64(ws))
	// The paper expects (but cannot guarantee) masking: the suspect's
	// retransmission may itself be lost or late, in which case the live
	// process is excluded and readmitted. Report which outcome occurred;
	// either way the full group must stand at the end.
	masked := 0.0
	if viewsAfter == viewsBefore {
		masked = 1
	}
	r.metric("masked", masked)
	if ws == 0 {
		r.fail("no wrong-suspicion was provoked")
	}
	if _, ok := runUntil(c, 16, func() bool { return agreedOn(c, allIDs(c.Params.N)) }); !ok {
		r.fail("group not restored after false suspicion")
	}
	r.metric("masking_window_us", float64(c.Sim.Now().Sub(before)))
	return r
}

// MultiCrash crashes f members simultaneously and measures recovery via
// the reconfiguration election (experiment E5).
func MultiCrash(n, f int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("multi-crash/N=%d/f=%d", n, f), c)
	if !form(r) {
		return r
	}
	if n-f < c.Params.Majority() {
		r.fail("f too large for a majority to survive")
		return r
	}
	victims := allIDs(n)[1 : 1+f]
	for _, v := range victims {
		c.Crash(v)
	}
	crashAt := c.Sim.Now()
	survivors := allIDs(n)[:1]
	survivors = append(survivors, allIDs(n)[1+f:]...)

	at, ok := runUntil(c, 10, func() bool { return agreedOn(c, survivors) })
	if !ok {
		r.fail("%d simultaneous crashes never recovered", f)
		return r
	}
	r.metric("recovery_us", float64(at.Sub(crashAt)))
	r.metric("recovery_cycles", float64(at.Sub(crashAt))/float64(c.Params.CycleLen()))
	var reconfigs uint64
	for _, id := range survivors {
		reconfigs += c.Node(id).Machine().Stats().ReconfigElections
	}
	r.metric("reconfig_elections", float64(reconfigs))
	return r
}

// Rejoin crashes a member, lets the group shrink, recovers the member
// and measures the time until readmission (experiment E6's rejoin half).
func Rejoin(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("rejoin/N=%d", n), c)
	if !form(r) {
		return r
	}
	victim := model.ProcessID(n - 1)
	c.Crash(victim)
	if _, ok := runUntil(c, 6, func() bool { return agreedOn(c, remove(allIDs(n), victim)) }); !ok {
		r.fail("crash never detected")
		return r
	}
	c.Recover(victim)
	recoverAt := c.Sim.Now()
	at, ok := runUntil(c, 12, func() bool { return agreedOn(c, allIDs(n)) })
	if !ok {
		r.fail("recovered process never readmitted")
		return r
	}
	r.metric("rejoin_us", float64(at.Sub(recoverAt)))
	r.metric("rejoin_cycles", float64(at.Sub(recoverAt))/float64(c.Params.CycleLen()))
	return r
}

// Partition splits the group into a majority and a minority side,
// verifies the majority reconfigures while the minority stalls, then
// heals and waits for the full group (partition-healing experiment).
func Partition(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("partition/N=%d", n), c)
	if !form(r) {
		return r
	}
	maj := allIDs(n)[:c.Params.Majority()]
	min := allIDs(n)[c.Params.Majority():]
	c.Net.Partition(maj, min)
	splitAt := c.Sim.Now()

	at, ok := runUntil(c, 10, func() bool { return agreedOn(c, maj) })
	if !ok {
		r.fail("majority side never reconfigured")
		return r
	}
	r.metric("majority_reconfig_us", float64(at.Sub(splitAt)))
	// The minority must not have formed any sub-majority view.
	for _, id := range min {
		g, okG := c.Node(id).CurrentGroup()
		if okG && g.Size() < c.Params.Majority() {
			r.fail("minority member %v formed %v", id, g)
		}
	}
	c.Net.Heal()
	healAt := c.Sim.Now()
	at, ok = runUntil(c, 16, func() bool { return agreedOn(c, allIDs(n)) })
	if !ok {
		r.fail("healing never restored the full group")
		return r
	}
	r.metric("heal_us", float64(at.Sub(healAt)))
	return r
}

// Workload runs a formed group under a proposal load of the given
// semantics and measures delivery latency and throughput (broadcast
// experiments).
func Workload(n int, seed int64, sem oal.Semantics, proposals int) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("workload/N=%d/%v", n, sem), c)
	if !form(r) {
		return r
	}
	sendTimes := make(map[oal.ProposalID]model.Time)
	next := 0
	for next < proposals {
		// One proposal per D from a rotating proposer.
		proposer := c.Node(model.ProcessID(next % n))
		payload := []byte(fmt.Sprintf("u%d", next))
		beforeLen := len(proposer.Deliveries)
		_ = beforeLen
		if proposer.Propose(payload, sem) {
			next++
		}
		c.Run(c.Params.D)
	}
	// Drain.
	c.Run(cyclesDur(c, 6))

	// Collect send→deliver latencies on node 0 (any member works).
	n0 := c.Node(0)
	var lat []float64
	for _, d := range n0.Deliveries {
		sendTimes[d.ID] = model.Time(d.SendTS)
		lat = append(lat, float64(d.At.Sub(model.Time(d.SendTS))))
	}
	if len(lat) < proposals {
		r.fail("node 0 delivered %d of %d", len(lat), proposals)
	}
	r.metric("delivered", float64(len(lat)))
	r.metric("max_decision_bytes", float64(c.Net.Stats().MaxBytes[wire.KindDecision]))
	if len(lat) > 0 {
		sort.Float64s(lat)
		r.metric("latency_p50_us", lat[len(lat)/2])
		r.metric("latency_p99_us", lat[len(lat)*99/100])
		r.metric("latency_max_us", lat[len(lat)-1])
	}
	return r
}

// SlowMember injects chronic performance failures: every message from
// one member arrives 3x delta late. In the timed asynchronous model this
// is a failure mode distinct from a crash — the process runs, but its
// messages miss their deadlines. The protocol may exclude the slow
// member (its decisions miss the ts+2D windows) or mask individual
// lapses via wrong-suspicion; either way safety must hold and the group
// must keep operating. When the slowness ends, the member must be back
// in the group.
func SlowMember(n int, seed int64) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("slow-member/N=%d", n), c)
	if !form(r) {
		return r
	}
	slow := model.ProcessID(n - 1)
	lag := 3 * c.Params.Delta
	c.Net.AddFilter(func(from, to model.ProcessID, m wire.Message) (netsim.Verdict, model.Duration) {
		if from == slow {
			return netsim.Pass, lag
		}
		return netsim.Pass, 0
	})
	c.Run(cyclesDur(c, 10))

	// The non-slow members must still agree on SOME majority group.
	ref, ok := c.Node(0).CurrentGroup()
	if !ok || ref.Size() < c.Params.Majority() {
		r.fail("group lost under performance failures: %v", ref)
		return r
	}
	excluded := !ref.Contains(slow)
	r.metric("slow_member_excluded", btof(excluded))
	var ws uint64
	for _, nd := range c.Nodes {
		ws += nd.Machine().Stats().WrongSuspicions
	}
	r.metric("wrong_suspicions", float64(ws))

	// Slowness ends; the member must (re)converge into the full group.
	c.Net.ClearFilters()
	if _, ok := runUntil(c, 20, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
		r.fail("slow member never reconverged after recovery")
	}
	return r
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// MixedChurn runs all nine ordering/atomicity combinations concurrently
// while the membership churns (repeated crash/recover of rotating
// victims). It is the §4.3 torture test: every delivery-condition path
// and purge rule runs against view changes.
func MixedChurn(n int, seed int64, rounds int) *Result {
	c := cluster(n, seed)
	r := newResult(fmt.Sprintf("mixed-churn/N=%d", n), c)
	if !form(r) {
		return r
	}
	sems := []oal.Semantics{
		{Order: oal.Unordered, Atomicity: oal.WeakAtomicity},
		{Order: oal.Unordered, Atomicity: oal.StrongAtomicity},
		{Order: oal.Unordered, Atomicity: oal.StrictAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.WeakAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.StrongAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.StrictAtomicity},
	}
	proposals := 0
	for round := 0; round < rounds; round++ {
		victim := model.ProcessID((round + 1) % n)
		// Load before the fault.
		for i, sm := range sems {
			who := model.ProcessID((round + i) % n)
			if c.Node(who).Propose([]byte(fmt.Sprintf("r%d-s%d", round, i)), sm) {
				proposals++
			}
			c.Run(c.Params.D / 2)
		}
		c.Crash(victim)
		c.Run(cyclesDur(c, 2))
		// Load while shrunk.
		for i, sm := range sems {
			who := model.ProcessID((round + i) % n)
			if who == victim {
				continue
			}
			if c.Node(who).Propose([]byte(fmt.Sprintf("r%d-t%d", round, i)), sm) {
				proposals++
			}
			c.Run(c.Params.D / 2)
		}
		c.Recover(victim)
		if _, ok := runUntil(c, 14, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
			r.fail("round %d: recovery never completed", round)
			return r
		}
	}
	c.Run(cyclesDur(c, 8))
	r.metric("proposals", float64(proposals))
	var delivered float64
	for _, nd := range c.Nodes {
		delivered += float64(len(nd.Deliveries))
	}
	r.metric("deliveries_total", delivered)
	return r
}
