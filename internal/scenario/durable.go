package scenario

import (
	"bytes"
	"fmt"
	"os"

	"timewheel/internal/durable"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// DurableRejoin is the crash-recovery experiment for the durable state
// subsystem: a member of a durable cluster is killed without warning
// (its store is abandoned mid-flight, as kill -9 would), the group
// keeps committing updates while it is down, and the member restarts
// on the same data directory. It must come back warm — application
// state rebuilt from its snapshot and log, rejoining with a replay
// delta from a current member instead of a full state transfer — and
// converge to the same application state as everyone else.
func DurableRejoin(n int, seed int64) *Result {
	dir, err := os.MkdirTemp("", "twdur")
	if err != nil {
		r := newResult("durable-rejoin", nil)
		r.fail("temp dir: %v", err)
		return r
	}
	defer os.RemoveAll(dir)
	return DurableRejoinAt(n, seed, dir)
}

// DurableRejoinAt runs DurableRejoin against a caller-owned data
// directory (tests pass t.TempDir()).
func DurableRejoinAt(n int, seed int64, dataDir string) *Result {
	c := node.NewCluster(node.Options{
		Seed:          seed,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
		DataDir:       dataDir,
		// Always: the simulation clock makes the batched wall-clock
		// window meaningless, and determinism matters more than append
		// throughput here.
		Fsync: durable.FsyncAlways,
	})
	r := newResult(fmt.Sprintf("durable-rejoin/N=%d", n), c)
	if !form(r) {
		return r
	}
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	proposals := 0
	propose := func(k int, tag string) {
		for i := 0; i < k; i++ {
			who := c.Node(model.ProcessID(proposals % n))
			if c.Crashed(who.ID) {
				who = c.Node(0)
			}
			if who.Propose([]byte(fmt.Sprintf("%s%d", tag, i)), sem) {
				proposals++
			}
			c.Run(c.Params.D)
		}
	}
	propose(8, "pre")
	c.Run(cyclesDur(c, 4)) // drain: the victim must hold them before dying

	victim := model.ProcessID(n - 1)
	c.Crash(victim)
	if _, ok := runUntil(c, 6, func() bool { return agreedOn(c, remove(allIDs(n), victim)) }); !ok {
		r.fail("crash never detected")
		return r
	}
	propose(8, "down") // the delta the victim must fetch on rejoin

	installsBefore := c.Node(victim).Installs
	deltasBefore := uint64(0)
	for _, nd := range c.Nodes {
		deltasBefore += nd.Broadcast().Stats().StateDeltas
	}
	c.Recover(victim)
	if len(c.Node(victim).AppState()) == 0 {
		r.fail("recovered node came back with empty application state")
		return r
	}
	recoverAt := c.Sim.Now()
	at, ok := runUntil(c, 12, func() bool { return agreedOn(c, allIDs(n)) })
	if !ok {
		r.fail("recovered process never readmitted")
		return r
	}
	r.metric("rejoin_us", float64(at.Sub(recoverAt)))
	c.Run(cyclesDur(c, 6)) // settle outstanding deliveries

	// The recovered member must have converged without a full transfer.
	if got, want := c.Node(victim).AppState(), c.Node(0).AppState(); !bytes.Equal(got, want) {
		r.fail("app state diverged after durable rejoin:\n victim %q\n node0  %q", got, want)
	}
	deltasAfter := uint64(0)
	for _, nd := range c.Nodes {
		deltasAfter += nd.Broadcast().Stats().StateDeltas
	}
	r.metric("full_installs", float64(c.Node(victim).Installs-installsBefore))
	r.metric("delta_rejoins", float64(deltasAfter-deltasBefore))
	if c.Node(victim).Installs != installsBefore {
		r.fail("durable rejoin fell back to a full state transfer")
	}
	if deltasAfter == deltasBefore {
		r.fail("no member served a replay delta")
	}
	r.metric("proposals", float64(proposals))
	return r
}
