package scenario

import (
	"testing"

	"timewheel/internal/check"
)

func TestFinalAssurance(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	for _, n := range []int{5, 7, 9} {
		for seed := int64(9000); seed < 9030; seed++ {
			opts := DefaultChaos(n, seed)
			opts.Dup = 0.05
			r := Chaos(opts)
			if r.Failed != "" {
				t.Errorf("N=%d seed %d: %s", n, seed, r.Failed)
				continue
			}
			if res := check.All(r.Cluster); !res.OK() {
				t.Errorf("N=%d seed %d: %s", n, seed, res)
			}
		}
	}
}
