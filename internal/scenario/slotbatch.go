package scenario

import (
	"fmt"

	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// SlotBatchLoad forms a 5-node group, drives a saturating proposal
// load, and returns the datagram count accumulated over the loaded
// steady state plus the final network stats. Identical seed and load
// on every call: only the slot-batch switch distinguishes the runs, so
// the datagram counts compare apples-to-apples. A non-nil error means
// the run is unusable (the group never formed or an invariant broke),
// not merely slow.
func SlotBatchLoad(batch bool) (datagrams uint64, final netsim.Stats, err error) {
	const n = 5
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	c := node.NewCluster(node.Options{
		Seed:          1,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
		SlotBatch:     batch,
	})
	c.Start()
	if _, ok := runUntil(c, 10, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
		return 0, final, fmt.Errorf("initial group never formed")
	}
	// A saturating load: every node proposes a burst of updates every
	// slot. Micro-batching's gain scales with frames per sender per
	// slot, so this is the regime the optimisation targets.
	seq := 0
	load := func(slots int) {
		for s := 0; s < slots; s++ {
			for id := 0; id < n; id++ {
				for i := 0; i < 4; i++ {
					payload := []byte(fmt.Sprintf("update-%04d-padding-to-realistic-size", seq))
					c.Node(model.ProcessID(id)).Propose(payload, sem)
					seq++
				}
			}
			c.Run(c.Params.SlotLen())
		}
	}
	load(10 * n)
	before := c.Net.Stats()
	load(40 * n)
	after := c.Net.Stats()

	// Batching must not cost correctness: drain the load and require
	// full delivery agreement and every protocol invariant.
	c.Run(cyclesDur(c, 6))
	if res := check.All(c); !res.OK() {
		return 0, final, fmt.Errorf("slotBatch=%v: invariants violated: %v", batch, res)
	}
	return after.Datagrams - before.Datagrams, c.Net.Stats(), nil
}
