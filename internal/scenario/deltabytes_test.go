package scenario

import (
	"fmt"
	"testing"

	"timewheel/internal/check"
	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// runDecisionLoad forms a group, drives a sustained proposal load sized
// to keep tens of entries in the unstable-oal window, and returns the
// decision bytes-on-wire accumulated during the loaded steady state
// plus the widest window observed. Identical seed and load on every
// call: only fullOALEvery distinguishes the runs.
func runDecisionLoad(t *testing.T, fullOALEvery int) (decBytes uint64, maxWindow int) {
	t.Helper()
	const n = 5
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	c := node.NewCluster(node.Options{
		Seed:          1,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
		FullOALEvery:  fullOALEvery,
	})
	c.Start()
	if _, ok := runUntil(c, 10, func() bool { return agreedOn(c, allIDs(n)) }); !ok {
		t.Fatal("initial group never formed")
	}
	// Warm the pipeline into its loaded steady state before measuring,
	// so formation and ramp-up (always-full decisions) don't dilute
	// either variant.
	seq := 0
	load := func(slots int) {
		for s := 0; s < slots; s++ {
			for i := 0; i < 7; i++ {
				payload := []byte(fmt.Sprintf("update-%04d-padding-to-realistic-size", seq))
				c.Node(model.ProcessID(seq%n)).Propose(payload, sem)
				seq++
			}
			c.Run(c.Params.SlotLen())
			if w := len(c.Node(0).Broadcast().CurrentView().Entries); w > maxWindow {
				maxWindow = w
			}
		}
	}
	load(10 * n)
	before := c.Net.Stats()
	load(40 * n)
	after := c.Net.Stats()
	decBytes = after.Bytes[wire.KindDecision] - before.Bytes[wire.KindDecision]

	// The optimisation must not cost correctness: drain the load and
	// require full delivery agreement and every protocol invariant.
	c.Run(cyclesDur(c, 6))
	if res := check.All(c); !res.OK() {
		t.Fatalf("fullOALEvery=%d: invariants violated: %v", fullOALEvery, res)
	}
	return decBytes, maxWindow
}

// TestDeltaDecisionBytes asserts the wire-v5 delta optimisation's core
// claim: under a sustained load that keeps the unstable window at ≥32
// entries, delta-encoded decisions carry at most half the decision
// bytes-on-wire of the always-full baseline.
func TestDeltaDecisionBytes(t *testing.T) {
	fullBytes, fullWindow := runDecisionLoad(t, -1)  // delta disabled
	deltaBytes, deltaWindow := runDecisionLoad(t, 0) // default cadence
	t.Logf("full-oal: %d decision bytes (window ≤%d); delta: %d decision bytes (window ≤%d)",
		fullBytes, fullWindow, deltaBytes, deltaWindow)
	if fullWindow < 32 || deltaWindow < 32 {
		t.Fatalf("load too light: unstable window peaked at %d/%d entries, want ≥32", fullWindow, deltaWindow)
	}
	if deltaBytes > fullBytes/2 {
		t.Fatalf("delta decisions shipped %d bytes, want ≤50%% of full-oal's %d", deltaBytes, fullBytes)
	}
}
