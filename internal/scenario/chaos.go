package scenario

import (
	"fmt"
	"math/rand"

	"timewheel/internal/model"
	"timewheel/internal/node"
	"timewheel/internal/oal"
)

// ChaosOptions configures a randomized fault schedule.
type ChaosOptions struct {
	N      int
	Seed   int64
	Cycles int // total simulated cycles
	// CrashProb is the per-cycle probability of crashing one live
	// member (while keeping a live majority).
	CrashProb float64
	// RecoverProb is the per-cycle probability of recovering one
	// crashed member.
	RecoverProb float64
	// PartitionProb is the per-cycle probability of toggling a
	// majority/minority partition (heal if one is active).
	PartitionProb float64
	// ProposeProb is the per-cycle probability that a random live
	// member broadcasts an update with random semantics.
	ProposeProb float64
	// Drop is the network's background omission probability.
	Drop float64
	// Dup is the network's background duplication probability; the
	// protocol's freshness checks must absorb duplicates silently.
	Dup float64
	// DriftingClocks runs the full clock stack (drifting hardware
	// clocks + the fail-aware synchronization service) instead of
	// perfect clocks.
	DriftingClocks bool
}

// DefaultChaos returns a schedule that exercises every recovery path.
func DefaultChaos(n int, seed int64) ChaosOptions {
	return ChaosOptions{
		N:             n,
		Seed:          seed,
		Cycles:        60,
		CrashProb:     0.10,
		RecoverProb:   0.30,
		PartitionProb: 0.04,
		ProposeProb:   0.80,
		Drop:          0.002,
		Dup:           0.01,
	}
}

// Chaos runs a randomized schedule of crashes, recoveries, partitions
// and proposals, then heals everything and lets the system settle. The
// caller validates the resulting history with check.All; Chaos itself
// asserts only the liveness end-state: with all processes healed and
// recovered, the full group eventually re-forms.
func Chaos(opts ChaosOptions) *Result {
	c := node.NewCluster(node.Options{
		Seed:          opts.Seed,
		Params:        model.DefaultParams(opts.N),
		PerfectClocks: !opts.DriftingClocks,
		Drop:          opts.Drop,
	})
	c.Net.SetDuplicateProb(opts.Dup)
	r := newResult(fmt.Sprintf("chaos/N=%d/seed=%d", opts.N, opts.Seed), c)
	if !form(r) {
		return r
	}

	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	crashed := model.NewProcessSet()
	partitioned := false
	sems := []oal.Semantics{
		{Order: oal.Unordered, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.WeakAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity},
		{Order: oal.TotalOrder, Atomicity: oal.StrictAtomicity},
		{Order: oal.TimeOrder, Atomicity: oal.WeakAtomicity},
	}
	var proposals, crashes, recoveries, partitions int

	for cyc := 0; cyc < opts.Cycles; cyc++ {
		if !partitioned && rng.Float64() < opts.CrashProb && opts.N-len(crashed)-1 >= c.Params.Majority() {
			// Crash a random live member, keeping a live majority.
			live := liveIDs(opts.N, crashed)
			victim := live[rng.Intn(len(live))]
			c.Crash(victim)
			crashed.Add(victim)
			crashes++
		}
		if rng.Float64() < opts.RecoverProb && len(crashed) > 0 {
			ids := crashed.Sorted()
			who := ids[rng.Intn(len(ids))]
			c.Recover(who)
			crashed.Remove(who)
			recoveries++
		}
		if rng.Float64() < opts.PartitionProb && len(crashed) == 0 {
			if partitioned {
				c.Net.Heal()
			} else {
				maj := allIDs(opts.N)[:c.Params.Majority()]
				min := allIDs(opts.N)[c.Params.Majority():]
				c.Net.Partition(maj, min)
				partitions++
			}
			partitioned = !partitioned
		}
		if rng.Float64() < opts.ProposeProb {
			live := liveIDs(opts.N, crashed)
			who := live[rng.Intn(len(live))]
			if c.Node(who).Propose([]byte(fmt.Sprintf("chaos-%d", cyc)), sems[rng.Intn(len(sems))]) {
				proposals++
			}
		}
		c.Run(c.Params.CycleLen())
	}

	// Heal everything and let the system settle.
	if partitioned {
		c.Net.Heal()
	}
	for _, id := range crashed.Sorted() {
		c.Recover(id)
	}
	if _, ok := runUntil(c, 24, func() bool { return agreedOn(c, allIDs(opts.N)) }); !ok {
		r.fail("full group did not re-form after healing")
	}
	// Drain in-flight deliveries.
	c.Run(cyclesDur(c, 6))

	r.metric("proposals", float64(proposals))
	r.metric("crashes", float64(crashes))
	r.metric("recoveries", float64(recoveries))
	r.metric("partitions", float64(partitions))
	views := 0
	for _, n := range c.Nodes {
		views += len(n.Views)
	}
	r.metric("views_installed_total", float64(views))
	return r
}

func liveIDs(n int, crashed model.ProcessSet) []model.ProcessID {
	out := make([]model.ProcessID, 0, n)
	for i := 0; i < n; i++ {
		if !crashed.Has(model.ProcessID(i)) {
			out = append(out, model.ProcessID(i))
		}
	}
	return out
}
