package scenario

import (
	"fmt"

	"timewheel/internal/model"
	"timewheel/internal/netsim"
	"timewheel/internal/node"
	"timewheel/internal/oal"
	"timewheel/internal/wire"
)

// surveilCluster builds a simulated cluster with k-successor
// surveillance and adaptive timeouts on — the large-N configuration the
// robustness soak exercises.
func surveilCluster(n int, seed int64, k int) *node.Cluster {
	return node.NewCluster(node.Options{
		Seed:          seed,
		Params:        model.DefaultParams(n),
		PerfectClocks: true,
		Adaptive:      true,
		SurveillanceK: k,
	})
}

// sumSurveilStats totals the surveillance gossip counters over all live
// nodes.
func sumSurveilStats(c *node.Cluster) (suspicions, refutes, relays, dups, stale uint64) {
	for _, id := range allIDs(c.Params.N) {
		if c.Crashed(id) {
			continue
		}
		s := c.Node(id).Machine().Stats()
		suspicions += s.SuspicionsGossiped
		refutes += s.RefutesSent
		relays += s.GossipRelays
		dups += s.GossipDuplicates
		stale += s.StaleSuspicions
	}
	return
}

// SurveilSoak is the large-N robustness soak: a 50-node group with
// k-successor surveillance (k=3) and adaptive timeouts, run through a
// scripted nemesis — a slowly-drifting degraded link active the whole
// time, staggered crash/recover pairs, a forged suspicion storm against
// the degraded node, and a majority/minority partition with heal. The
// scenario asserts the §3-visible outcomes (the test harness runs
// check.All on the returned cluster for the invariants proper): the
// group always re-forms, crashes are detected within the adapted bound,
// and the slow-but-healthy node is never ejected — zero steady-state
// false ejections.
func SurveilSoak(n int, seed int64) *Result {
	const k = 3
	c := surveilCluster(n, seed, k)
	r := newResult(fmt.Sprintf("surveil-soak/N=%d/k=%d", n, k), c)
	sem := oal.Semantics{Order: oal.TotalOrder, Atomicity: oal.StrongAtomicity}
	ids := allIDs(n)
	slow := model.ProcessID(n - 1)

	c.Start()
	at, ok := runUntil(c, 16, func() bool { return agreedOn(c, ids) })
	if !ok {
		r.fail("initial %d-node group never formed", n)
		return r
	}
	r.metric("formation_us", float64(at))

	// Warmup: ten quiet cycles with rotating proposals. The adaptive
	// estimator needs MinSamples fresh delays per link before it grants
	// a per-peer bound (one control sample per peer per cycle), so the
	// degradation must not set in before every node has a healthy
	// baseline for the soon-to-be-slow link.
	for i := 0; i < 10*n; i++ {
		if i%n == 0 {
			c.Node(slow).Propose([]byte(fmt.Sprintf("warm-%d", i)), sem)
		} else if i%7 == 0 {
			c.Node(model.ProcessID(i%n)).Propose([]byte(fmt.Sprintf("warm-%d", i)), sem)
		}
		c.Run(c.Params.SlotLen())
	}
	if !agreedOn(c, ids) {
		r.fail("membership moved during warmup")
		return r
	}

	// Nemesis 1 (rest of the run): the slow node's outbound delay drifts
	// 0 → 3Δ → 0 over twelve cycles — past the static timeliness bound
	// (Δ+ε+σ) for most of each period, so only the adaptive per-peer
	// widening (and its shrink hysteresis on the way down) keeps the
	// node's control messages meaningful. The ramp (~Δ/2 per cycle) is
	// within what the estimator can track from one sample per cycle.
	driftStart := c.Sim.Now()
	c.Net.AddFilter(netsim.DriftingSender(slow, netsim.DriftProfile{
		Peak:   3 * c.Params.Delta,
		Period: cyclesDur(c, 12),
		Start:  driftStart,
	}, c.Sim.Now))
	viewsBefore := len(c.Node(0).Views)

	// Steady state under drift: light rotating proposals for a full
	// drift period. Transient wrong suspicions of the slow node are
	// tolerated (the masking path exists for exactly that) but it must
	// never be ejected: every view installed from here on contains it.
	for i := 0; i < 14*n; i++ {
		if i%7 == 0 {
			c.Node(model.ProcessID(i%n)).Propose([]byte(fmt.Sprintf("drift-%d", i)), sem)
		}
		c.Run(c.Params.SlotLen())
	}
	if !agreedOn(c, ids) {
		r.fail("membership lost during steady-state drift")
		return r
	}
	r.metric("steady_view_changes", float64(len(c.Node(0).Views)-viewsBefore))
	for _, v := range c.Node(0).Views[viewsBefore:] {
		if !v.Group.Contains(slow) {
			r.fail("slow-but-healthy %v ejected during steady-state drift (view %v)", slow, v.Group)
			return r
		}
	}

	// Nemesis 2: a forged suspicion storm names the degraded node while
	// it is slow. A live suspect must refute — incarnation bump, gossip
	// — and keep its membership; straggler copies of the refuted
	// incarnation must classify stale.
	// A high incarnation makes the forgery fresh regardless of how many
	// refutation rounds the drift already provoked; the victim answers
	// with incarnation+1 and the straggler copies below classify stale.
	ts := c.Sim.Now()
	forged := &wire.Suspicion{
		Header:      wire.Header{From: 0, SendTS: ts},
		Suspect:     slow,
		Origin:      0,
		Incarnation: 64,
		OriginTS:    ts,
	}
	refutesBefore := c.Node(slow).Machine().Stats().RefutesSent
	c.Net.Unicast(slow, forged)
	for _, to := range []model.ProcessID{1, 2, 3, 4} {
		c.Net.Unicast(to, forged)
	}
	c.Run(cyclesDur(c, 2))
	if got := c.Node(slow).Machine().Stats().RefutesSent; got == refutesBefore {
		r.fail("falsely suspected node sent no refute")
		return r
	}
	// Straggler wave: the same refuted incarnation under a fresh origin
	// timestamp, two cycles after the refute spread. Not a duplicate —
	// the watermark is per (origin, timestamp) — so only the incarnation
	// history can kill it: receivers must classify it stale.
	straggler := *forged
	straggler.Header.SendTS = c.Sim.Now()
	straggler.OriginTS = c.Sim.Now()
	// Prefer receivers outside the forged wave's fan-out so the stale
	// classification provably comes from the gossiped refute, but stay
	// within the group when n is too small to have any such node.
	stragglerTo := []model.ProcessID{5, 6}
	if int(stragglerTo[len(stragglerTo)-1]) >= n {
		stragglerTo = []model.ProcessID{1, 2}
	}
	for _, to := range stragglerTo {
		c.Net.Unicast(to, &straggler)
	}
	c.Run(cyclesDur(c, 1))
	if _, _, _, _, stale := sumSurveilStats(c); stale == 0 {
		r.fail("straggler suspicion of a refuted incarnation not classified stale")
		return r
	}
	if !agreedOn(c, ids) {
		r.fail("forged suspicion ejected a live member")
		return r
	}

	// Nemesis 3: staggered crashes. Each must be detected and removed
	// within the adapted bound, then readmitted after recovery.
	for i, victim := range []model.ProcessID{model.ProcessID(n / 3), model.ProcessID(n / 2)} {
		crashAt := c.Sim.Now()
		c.Crash(victim)
		at, ok = runUntil(c, 8, func() bool { return agreedOn(c, remove(ids, victim)) })
		if !ok {
			r.fail("crash of %v never detected", victim)
			return r
		}
		lag := at.Sub(crashAt)
		r.metric(fmt.Sprintf("crash%d_detect_us", i), float64(lag))
		if lag > cyclesDur(c, 4) {
			r.fail("crash of %v took %v to remove, want within 4 cycles", victim, lag)
			return r
		}
		c.Recover(victim)
		if _, ok = runUntil(c, 24, func() bool { return agreedOn(c, ids) }); !ok {
			r.fail("%v never readmitted after recovery", victim)
			return r
		}
	}

	// Nemesis 4: majority/minority partition. The majority side keeps
	// both node 0 and the drifting node, so the degraded link and the
	// re-knitted k-successor ring stay in play on the surviving side.
	maj := append(append([]model.ProcessID{}, ids[:c.Params.Majority()-1]...), slow)
	minSide := ids[c.Params.Majority()-1 : n-1]
	c.Net.Partition(maj, minSide)
	splitAt := c.Sim.Now()
	at, ok = runUntil(c, 12, func() bool { return agreedOn(c, maj) })
	if !ok {
		r.fail("majority side never reconfigured after partition")
		return r
	}
	r.metric("partition_reconfig_us", float64(at.Sub(splitAt)))
	c.Net.Heal()
	healAt := c.Sim.Now()
	at, ok = runUntil(c, 40, func() bool { return agreedOn(c, ids) })
	if !ok {
		r.fail("healing never restored the full group")
		return r
	}
	r.metric("heal_us", float64(at.Sub(healAt)))

	// Epilogue: a few quiet cycles of proposals to prove the group is
	// serviceable, then collect the gossip economics.
	for i := 0; i < 2*n; i++ {
		if i%11 == 0 {
			c.Node(model.ProcessID(i%n)).Propose([]byte(fmt.Sprintf("post-%d", i)), sem)
		}
		c.Run(c.Params.SlotLen())
	}
	if !agreedOn(c, ids) {
		r.fail("membership unstable after nemesis schedule")
		return r
	}
	// Zero false ejections over the whole run: the drifting node sat on
	// the majority side of every fault, so no view ever excludes it.
	for _, v := range c.Node(0).Views[viewsBefore:] {
		if !v.Group.Contains(slow) {
			r.fail("slow-but-healthy %v ejected (view %v)", slow, v.Group)
			return r
		}
	}

	st := c.Net.Stats()
	r.metric("suspicion_bytes", float64(st.Bytes[wire.KindSuspicion]))
	r.metric("refute_bytes", float64(st.Bytes[wire.KindRefute]))
	sus, ref, rel, dup, stale := sumSurveilStats(c)
	r.metric("suspicions_originated", float64(sus))
	r.metric("refutes_sent", float64(ref))
	r.metric("gossip_relays", float64(rel))
	r.metric("gossip_duplicates", float64(dup))
	r.metric("stale_suspicions", float64(stale))
	if st.Bytes[wire.KindSuspicion] == 0 {
		r.fail("no suspicion gossip on the wire despite crashes")
	}
	return r
}

// SurveilScaling measures how surveillance traffic grows with group
// size: for n in sizes, form a group with k=3, crash one member, and
// run a fixed number of cycles. Gossip bytes (suspicions + refutes,
// sender-side) must grow roughly linearly in N — each fresh sighting is
// relayed to k successors once, O(N·k) frames per suspicion event —
// while the all-to-all observation channel (every decision broadcast
// delivered to every member, the traffic an all-to-all failure detector
// rides on) grows quadratically.
func SurveilScaling(seed int64) *Result {
	sizes := []int{12, 24, 48}
	r := &Result{Name: "surveil-scaling", Metrics: make(map[string]float64)}
	gossip := make(map[int]float64)
	allToAll := make(map[int]float64)
	for _, n := range sizes {
		g, a, c, err := surveilTraffic(n, seed+int64(n))
		// Keep the largest sample's cluster on the result so external
		// invariant checks (twsim, runChecked) have a history to audit.
		r.Cluster = c
		if err != "" {
			r.fail("N=%d: %s", n, err)
			return r
		}
		gossip[n] = g
		allToAll[n] = a
		r.metric(fmt.Sprintf("gossip_bytes_n%d", n), g)
		r.metric(fmt.Sprintf("alltoall_bytes_n%d", n), a)
	}
	lo, hi := sizes[0], sizes[len(sizes)-1]
	factor := float64(hi) / float64(lo) // 4× more nodes
	gRatio := gossip[hi] / gossip[lo]
	aRatio := allToAll[hi] / allToAll[lo]
	r.metric("gossip_growth", gRatio)
	r.metric("alltoall_growth", aRatio)
	// Linear growth would be ≈4×, quadratic ≈16×. The thresholds leave
	// room for constant factors while keeping the two regimes apart.
	if gRatio > 2*factor {
		r.fail("gossip bytes grew %.1f× over %.0f× nodes — super-linear", gRatio, factor)
	}
	if aRatio < 2.5*factor {
		r.fail("all-to-all bytes grew only %.1f× over %.0f× nodes — expected ~quadratic", aRatio, factor)
	}
	return r
}

// surveilTraffic runs one scaling sample: form, crash one node, fixed
// post-crash window; returns (gossip bytes, delivered all-to-all
// decision bytes) accumulated after formation.
func surveilTraffic(n int, seed int64) (gossip, allToAll float64, c *node.Cluster, errMsg string) {
	c = surveilCluster(n, seed, 3)
	c.Start()
	ids := allIDs(n)
	if _, ok := runUntil(c, 16, func() bool { return agreedOn(c, ids) }); !ok {
		return 0, 0, c, "group never formed"
	}
	base := c.Net.Stats()
	victim := model.ProcessID(1)
	c.Crash(victim)
	if _, ok := runUntil(c, 8, func() bool { return agreedOn(c, remove(ids, victim)) }); !ok {
		return 0, 0, c, "crash never detected"
	}
	c.Run(cyclesDur(c, 2))
	st := c.Net.Stats()

	gossip = float64(st.Bytes[wire.KindSuspicion] - base.Bytes[wire.KindSuspicion] +
		st.Bytes[wire.KindRefute] - base.Bytes[wire.KindRefute])

	// All-to-all comparator: bytes actually delivered for decision
	// broadcasts over the same window — sender-side frame bytes times
	// the per-broadcast fan-out.
	frames := st.Broadcasts[wire.KindDecision] - base.Broadcasts[wire.KindDecision]
	bytes := st.Bytes[wire.KindDecision] - base.Bytes[wire.KindDecision]
	delivered := st.Deliveries[wire.KindDecision] - base.Deliveries[wire.KindDecision]
	if frames == 0 {
		return 0, 0, c, "no decisions in measurement window"
	}
	allToAll = float64(delivered) * (float64(bytes) / float64(frames))
	return gossip, allToAll, c, ""
}
