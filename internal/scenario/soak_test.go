package scenario

import (
	"testing"

	"timewheel/internal/check"
)

// TestChaosSweep runs the randomized fault schedule across 500 seeds —
// the soak that historically surfaced most of the protocol races listed
// in EXPERIMENTS.md. Every run must end with the full group re-formed
// and zero invariant violations.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	bad := 0
	for seed := int64(0); seed < 500; seed++ {
		r := Chaos(DefaultChaos(5, seed))
		if r.Failed != "" {
			t.Errorf("seed %d: %s", seed, r.Failed)
			bad++
			continue
		}
		if res := check.All(r.Cluster); !res.OK() {
			t.Errorf("seed %d: %s", seed, res)
			bad++
		}
		if bad > 5 {
			t.Fatalf("too many bad seeds; aborting sweep")
		}
	}
}

// TestSurvivalAssumptionFallback pins the n-failure fallback: seed 424
// historically produced a run where the knowledge of "the last group"
// ended up split across two dead forks — no process could assemble a
// majority from its own last group, deadlocking every reconfiguration
// election (a violation of the paper's survival assumption). The
// fallback to the join protocol must resolve it.
func TestSurvivalAssumptionFallback(t *testing.T) {
	r := Chaos(DefaultChaos(5, 424))
	if r.Failed != "" {
		t.Fatalf("%s", r.Failed)
	}
	if res := check.All(r.Cluster); !res.OK() {
		t.Fatalf("invariants: %s", res)
	}
	if !agreedOn(r.Cluster, allIDs(5)) {
		t.Fatalf("full group not re-formed")
	}
}
