package scenario

// Sharded fabric scenario: the per-group engine sharding acceptance
// vehicle. Six groups over four hosts, every fabric node running its
// hosted engines on a 2-shard worker pool — so each shard carries
// multiple groups and the host runs multiple shards, the two ways
// cross-group interleaving could corrupt per-group state if dispatch
// were not strictly sequential per engine. Concurrent clients drive
// proposals into every group while one group loses a member mid-run
// (an election on one shard must not perturb its shard-mates). The
// §3 invariants must hold per group, and — the direct interleaving
// probe — every group's replicas must have delivered identical
// totally-ordered payload sequences.
//
// Real-time test over the memory hub, like TestFabricScenario (the
// netsim fabric is message-level and cannot carry grouped datagrams).
// CI runs it under -race with GOMAXPROCS=4 so shard goroutines truly
// interleave.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"timewheel"
	"timewheel/fabric"
	"timewheel/internal/check"
)

// shardFabParams is fabParams with roughly double the timing budget:
// shard sharing adds head-of-line dispatch delay (a shard-mate's
// handler runs first), which must fit inside the failure-detector
// budget or live members get wrongly suspected and the run measures
// recovery churn instead of sharded dispatch. The invariants proven
// here are timing-independent; the budget only keeps the run clean.
func shardFabParams() timewheel.Params {
	return timewheel.Params{
		Delta:   5 * time.Millisecond,
		D:       15 * time.Millisecond,
		Epsilon: time.Millisecond,
		Sigma:   time.Millisecond,
		SlotPad: time.Millisecond,
	}
}

// shardFabSpecs places six groups on four hosts: three groups per host,
// which on a 2-shard pool means at least two groups share a shard.
func shardFabSpecs() []fabric.GroupSpec {
	return []fabric.GroupSpec{
		{ID: 1, Replicas: []int{0, 1, 2}},
		{ID: 2, Replicas: []int{1, 2, 3}},
		{ID: 3, Replicas: []int{2, 3, 0}},
		{ID: 4, Replicas: []int{3, 0, 1}},
		{ID: 5, Replicas: []int{0, 2, 3}},
		{ID: 6, Replicas: []int{1, 3, 0}},
	}
}

// deliveryLog is the replicated application under test: per-(host,group)
// delivered payloads in delivery order. The sequence itself rides the
// snapshot/install hooks, so a member that rejoins warm after a wrong
// suspicion receives the deliveries it missed as state instead of
// silently gapping — making cross-replica sequence equality an exact
// probe for cross-shard interleaving.
type deliveryLog struct {
	mu  sync.Mutex
	seq map[string][]string // "host/gid" → payloads in delivery order
}

func (l *deliveryLog) record(host int) func(uint32, timewheel.Delivery) {
	return func(gid uint32, d timewheel.Delivery) {
		k := fmt.Sprintf("%d/%d", host, gid)
		l.mu.Lock()
		l.seq[k] = append(l.seq[k], string(d.Payload))
		l.mu.Unlock()
	}
}

func (l *deliveryLog) snapshot(host int) func(uint32) []byte {
	return func(gid uint32) []byte {
		l.mu.Lock()
		defer l.mu.Unlock()
		return []byte(strings.Join(l.seq[fmt.Sprintf("%d/%d", host, gid)], "\n"))
	}
}

func (l *deliveryLog) install(host int) func(uint32, []byte) {
	return func(gid uint32, state []byte) {
		k := fmt.Sprintf("%d/%d", host, gid)
		l.mu.Lock()
		defer l.mu.Unlock()
		if len(state) == 0 {
			l.seq[k] = nil
			return
		}
		l.seq[k] = strings.Split(string(state), "\n")
	}
}

func (l *deliveryLog) get(host int, gid uint32) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.seq[fmt.Sprintf("%d/%d", host, gid)]...)
}

func TestShardedFabricScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fabric scenario")
	}

	logs := &deliveryLog{seq: make(map[string][]string)}
	hub := timewheel.NewMemoryHub(timewheel.HubConfig{MaxDelay: 300 * time.Microsecond, Seed: 101})
	nodes := make([]*fabric.Node, fabHosts)
	for h := 0; h < fabHosts; h++ {
		fn, err := fabric.New(fabric.Config{
			Host:      h,
			Transport: hub.Transport(h),
			Groups:    shardFabSpecs(),
			Params:    shardFabParams(),
			Shards:    2, // 3 hosted groups per host: shards are shared AND plural
			OnDeliver: logs.record(h),
			Snapshot:  logs.snapshot(h),
			Install:   logs.install(h),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[h] = fn
	}
	for _, fn := range nodes {
		fn.Start()
	}
	defer func() {
		for _, fn := range nodes {
			fn.Stop()
		}
		hub.Close()
	}()

	served := make(map[uint32][]servedEngine)
	for _, s := range shardFabSpecs() {
		for idx, h := range s.Replicas {
			served[s.ID] = append(served[s.ID], servedEngine{idx, nodes[h].Group(s.ID)})
		}
	}

	waitUntil(t, 20*time.Second, "all six groups to form", func() bool {
		for _, s := range shardFabSpecs() {
			if !groupFormed(nodes, s.ID, fabReplicas) {
				return false
			}
		}
		return true
	})

	// Clients: one goroutine per group, proposing through any hosting
	// engine — concurrent load on every shard of every host.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	proposeInto := func(gid uint32, i int) {
		payload := []byte(fmt.Sprintf("g%d-p%d", gid, i))
		for _, fn := range nodes {
			if g := fn.Group(gid); g != nil {
				g.Propose(payload, timewheel.TotalOrder, timewheel.Strong) //nolint:errcheck // churn races proposals
				return
			}
		}
	}
	for _, s := range shardFabSpecs() {
		wg.Add(1)
		go func(gid uint32) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				proposeInto(gid, i)
				time.Sleep(2 * time.Millisecond)
			}
		}(s.ID)
	}

	// Mid-run churn: group 2 loses its host-3 member. The election and
	// reconfiguration run on host 1/2/3 shards that also carry other
	// groups — those groups must not notice.
	time.Sleep(400 * time.Millisecond)
	if err := nodes[3].RemoveGroup(2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 15*time.Second, "group 2 to converge on the surviving pair", func() bool {
		return groupFormed(nodes, 2, fabReplicas-1)
	})
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Drain in-flight decisions before snapshotting the logs.
	time.Sleep(300 * time.Millisecond)

	// Every group delivered something on every live replica; no replica
	// delivered a duplicate; and every pair of replicas agrees on the
	// relative order of the updates they both delivered — the §3 total
	// order, which cross-shard interleaving would corrupt first. (Exact
	// prefix equality is too strict live: a member that rode out a
	// wrong suspicion may hold a recovery-shaped gap.)
	for _, s := range shardFabSpecs() {
		var ref map[string]int // payload → position on the reference replica
		refHost := -1
		for _, h := range s.Replicas {
			if nodes[h].Group(s.ID) == nil {
				continue // the removed member
			}
			got := logs.get(h, s.ID)
			if len(got) == 0 {
				t.Errorf("group %d: host %d delivered nothing", s.ID, h)
				continue
			}
			pos := make(map[string]int, len(got))
			for i, p := range got {
				if prev, dup := pos[p]; dup {
					t.Errorf("group %d: host %d delivered %q twice (at %d and %d)", s.ID, h, p, prev, i)
				}
				pos[p] = i
			}
			if ref == nil {
				ref, refHost = pos, h
				continue
			}
			lastRef := -1
			for _, p := range got {
				r, ok := ref[p]
				if !ok {
					continue // not (yet) delivered on the reference replica
				}
				if r < lastRef {
					t.Fatalf("group %d: hosts %d and %d disagree on delivery order around %q",
						s.ID, refHost, h, p)
				}
				lastRef = r
			}
		}
		if ref != nil {
			t.Logf("group %d: %d deliveries on host %d, order agrees across replicas", s.ID, len(ref), refHost)
		}
	}

	// Each engine's live auditor streams every delivery through the §3
	// per-node checks (FIFO, duplicate, total/time order, view
	// monotonicity) — none may have tripped.
	for _, s := range shardFabSpecs() {
		for _, m := range served[s.ID] {
			if v, ok := m.node.CounterValue("timewheel_invariant_violations_total"); ok && v != 0 {
				t.Errorf("group %d member %d: %d live invariant violations (%+v)",
					s.ID, m.idx, v, m.node.Metrics())
			}
		}
	}

	// And the §3 membership invariants hold per group, full history.
	for _, s := range shardFabSpecs() {
		hs := liveHistories(served[s.ID])
		if res := check.LiveAll(fabReplicas, hs, 150*time.Millisecond); !res.OK() {
			t.Errorf("group %d invariants: %s", s.ID, res)
		}
	}
}
