//go:build linux

package transport

// sendmmsg arrived after the stdlib syscall number table froze, so the
// number is spelled out per arch (asm-generic table).
const sysSENDMMSG = 269
