package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// frame builds a decodable wire frame attributed to `from`, so the
// chaos wrapper can recover the sender.
func frame(from model.ProcessID) []byte {
	return wire.Encode(&wire.Nack{Header: wire.Header{From: from, SendTS: 1}})
}

func chaosPair(t *testing.T, net *ChaosNet) (a, b Transport, sa, sb *sink) {
	t.Helper()
	h := NewHub(HubOptions{})
	sa, sb = &sink{}, &sink{}
	a = net.Wrap(h.Attach(0))
	b = net.Wrap(h.Attach(1))
	a.SetReceiver(sa.recv)
	b.SetReceiver(sb.recv)
	return
}

func TestChaosTransparentByDefault(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	a, b, sa, sb := chaosPair(t, net)
	if err := a.Unicast(1, frame(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Unicast(0, frame(1)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sa, 1)
	waitCount(t, sb, 1)
	if s := net.Stats(); s.Delivered != 2 || s.Dropped+s.Blocked+s.Corrupted != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestChaosDropAll(t *testing.T) {
	net := NewChaosNet(1, Faults{Drop: 1})
	a, _, _, sb := chaosPair(t, net)
	for i := 0; i < 20; i++ {
		if err := a.Unicast(1, frame(0)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if sb.count() != 0 {
		t.Fatalf("%d frames survived Drop=1", sb.count())
	}
	if s := net.Stats(); s.Dropped != 20 {
		t.Fatalf("stats %+v", s)
	}
}

func TestChaosAsymmetricBlock(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	a, b, sa, sb := chaosPair(t, net)
	// 1 goes deaf to 0; 0 still hears 1.
	net.BlockLink(0, 1)
	if err := a.Unicast(1, frame(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Unicast(0, frame(1)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sa, 1)
	time.Sleep(10 * time.Millisecond)
	if sb.count() != 0 {
		t.Fatalf("blocked direction delivered")
	}
	if s := net.Stats(); s.Blocked != 1 {
		t.Fatalf("stats %+v", s)
	}
	net.UnblockLink(0, 1)
	if err := a.Unicast(1, frame(0)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 1)
}

func TestChaosPartitionAndHeal(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	h := NewHub(HubOptions{})
	sinks := make([]*sink, 4)
	ports := make([]Transport, 4)
	for i := range ports {
		sinks[i] = &sink{}
		ports[i] = net.Wrap(h.Attach(model.ProcessID(i)))
		ports[i].SetReceiver(sinks[i].recv)
	}
	net.Partition([]model.ProcessID{0, 1}, []model.ProcessID{2, 3})
	if err := ports[0].Broadcast(frame(0)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sinks[1], 1)
	time.Sleep(10 * time.Millisecond)
	if sinks[2].count()+sinks[3].count() != 0 {
		t.Fatalf("partition leaked")
	}
	net.Heal()
	if err := ports[0].Broadcast(frame(0)); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks[1:] {
		waitCount(t, s, 2-1) // 1 and the others each have >=1 now
	}
	waitCount(t, sinks[1], 2)
}

func TestChaosDuplicationAndCorruption(t *testing.T) {
	net := NewChaosNet(7, Faults{Duplicate: 1})
	a, _, _, sb := chaosPair(t, net)
	orig := frame(0)
	if err := a.Unicast(1, orig); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 2)
	if s := net.Stats(); s.Duplicated != 1 || s.Delivered != 2 {
		t.Fatalf("stats %+v", s)
	}

	net2 := NewChaosNet(7, Faults{Corrupt: 1})
	a2, _, _, sb2 := chaosPair(t, net2)
	if err := a2.Unicast(1, orig); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb2, 1)
	sb2.mu.Lock()
	got := sb2.frames[0]
	sb2.mu.Unlock()
	if bytes.Equal(got, orig) {
		t.Fatalf("corrupted frame identical to original")
	}
	if s := net2.Stats(); s.Corrupted != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestChaosReorderHoldsFrames(t *testing.T) {
	// Reorder=1 with a long hold: a frame sent first arrives after one
	// sent later through a second, transparent controller path. Here we
	// just assert the hold is applied (arrival is delayed past the
	// nominal max delay) and counted.
	net := NewChaosNet(3, Faults{Reorder: 1, ReorderDelay: 30 * time.Millisecond})
	a, _, _, sb := chaosPair(t, net)
	start := time.Now()
	if err := a.Unicast(1, frame(0)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 1)
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("reordered frame arrived after %v, hold not applied", el)
	}
	if s := net.Stats(); s.Reordered != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// The satellite scenario: one-way degradation via the sender-side
// stage. Node 0's sends are fully dropped before fan-out; node 0 keeps
// hearing node 1 (its receive path is untouched), while node 1 hears
// nothing from node 0 — asymmetric congestion at 0's NIC.
func TestChaosSendFaultsOneWayDegradedLink(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	a, b, sa, sb := chaosPair(t, net)
	net.SetSendFaults(0, Faults{Drop: 1})

	for i := 0; i < 10; i++ {
		if err := a.Broadcast(frame(0)); err != nil {
			t.Fatal(err)
		}
		if err := b.Unicast(0, frame(1)); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, sa, 10) // 0 still hears 1
	time.Sleep(20 * time.Millisecond)
	if sb.count() != 0 {
		t.Fatalf("%d frames from the degraded sender got through", sb.count())
	}
	s := net.Stats()
	if s.SendDropped != 10 {
		t.Fatalf("SendDropped = %d, want 10 (stats %+v)", s.SendDropped, s)
	}

	// Clearing the mix restores the link; other senders were never
	// affected.
	net.ClearSendFaults(0)
	if err := a.Broadcast(frame(0)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 1)
}

// Sender-side delay holds the datagram before fan-out; duplication
// emits the whole send twice.
func TestChaosSendFaultsDelayAndDuplicate(t *testing.T) {
	net := NewChaosNet(7, Faults{})
	a, _, _, sb := chaosPair(t, net)
	net.SetSendFaults(0, Faults{MinDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Duplicate: 1})

	if err := a.Unicast(1, frame(0)); err != nil {
		t.Fatal(err)
	}
	if got := sb.count(); got != 0 {
		t.Fatalf("delayed send arrived immediately (%d)", got)
	}
	waitCount(t, sb, 2) // duplicate: both copies arrive after the hold
	s := net.Stats()
	if s.SendDelivered != 2 || s.SendDuplicated != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// The token bucket lets the burst through unshaped, then turns
// sustained overload into growing queueing delay — and composes with
// the sender-side fault stage (the shaped datagram still rolls the
// send-fault dice after its hold).
func TestChaosSetRateShapesSustainedOverload(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	a, _, _, sb := chaosPair(t, net)
	f := frame(0)
	// Burst covers exactly two frames; rate drains one frame per ~20ms.
	rate := int64(len(f)) * 50
	net.SetRate(0, rate, int64(2*len(f)))

	start := time.Now()
	for i := 0; i < 6; i++ {
		if err := a.Unicast(1, f); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, sb, 6)
	// Frames 3..6 overdraw the bucket by 1..4 frames: the last one waits
	// ~4 frame-times = 80ms.
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("6 frames through a 2-frame bucket arrived in %v, shaping not applied", el)
	}
	s := net.Stats()
	if s.Shaped < 4 || s.ShapeDelay == 0 {
		t.Fatalf("stats %+v", s)
	}

	// Removing the limit restores immediate delivery.
	net.SetRate(0, 0, 0)
	start = time.Now()
	if err := a.Unicast(1, f); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 7)
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("unshaped frame took %v after SetRate(0)", el)
	}
}

// Shaping composes with a sender-side drop mix: held datagrams still
// roll the send-fault dice after the bucket delay, so Drop=1 eats them.
func TestChaosSetRateComposesWithSendFaults(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	a, _, _, sb := chaosPair(t, net)
	f := frame(0)
	net.SetRate(0, int64(len(f))*100, int64(len(f)))
	net.SetSendFaults(0, Faults{Drop: 1})

	for i := 0; i < 5; i++ {
		if err := a.Unicast(1, f); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(80 * time.Millisecond)
	if got := sb.count(); got != 0 {
		t.Fatalf("%d shaped frames escaped Drop=1", got)
	}
	if s := net.Stats(); s.SendDropped != 5 {
		t.Fatalf("stats %+v", s)
	}
}

func TestChaosUndecodableFramePassesThrough(t *testing.T) {
	net := NewChaosNet(1, Faults{Drop: 1}) // even Drop=1 must not eat it
	a, _, _, sb := chaosPair(t, net)
	if err := a.Unicast(1, []byte{0xff, 0xfe, 0xfd}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sb, 1)
	if s := net.Stats(); s.Undecoded != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestHubFaultKnobs(t *testing.T) {
	// Duplication: every frame twice.
	h := NewHub(HubOptions{DupProb: 1, Seed: 1})
	s1 := &sink{}
	p0, p1 := h.Attach(0), h.Attach(1)
	p1.SetReceiver(s1.recv)
	p0.SetReceiver(func([]byte) {})
	if err := p0.Unicast(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s1, 2)

	// Corruption: the delivered copy differs; the caller's buffer is
	// untouched.
	h2 := NewHub(HubOptions{CorruptProb: 1, Seed: 2})
	s2 := &sink{}
	q0, q1 := h2.Attach(0), h2.Attach(1)
	q1.SetReceiver(s2.recv)
	orig := []byte("untouched payload")
	if err := q0.Unicast(1, orig); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s2, 1)
	if !bytes.Equal(orig, []byte("untouched payload")) {
		t.Fatalf("sender's buffer was corrupted in place")
	}
	s2.mu.Lock()
	got := s2.frames[0]
	s2.mu.Unlock()
	if bytes.Equal(got, orig) {
		t.Fatalf("corrupted delivery identical to original")
	}

	// Reorder: the hold delays delivery.
	h3 := NewHub(HubOptions{ReorderProb: 1, ReorderDelay: 30 * time.Millisecond, Seed: 3})
	s3 := &sink{}
	r0, r1 := h3.Attach(0), h3.Attach(1)
	r1.SetReceiver(s3.recv)
	start := time.Now()
	if err := r0.Unicast(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s3, 1)
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("reorder hold not applied (%v)", el)
	}
}

func TestFaultsPlanDeterministic(t *testing.T) {
	f := Faults{MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		Drop: 0.2, Duplicate: 0.2, Corrupt: 0.2, Reorder: 0.2}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		pa, pb := f.plan(a), f.plan(b)
		if len(pa) != len(pb) {
			t.Fatalf("plan %d diverged", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("plan %d copy %d diverged", i, j)
			}
		}
	}
}

func TestRandomNemesisEndsHealed(t *testing.T) {
	ids := []model.ProcessID{0, 1, 2, 3, 4}
	steps := RandomNemesis(9, ids, 4, time.Second)
	if len(steps) != 8 {
		t.Fatalf("want 4 fault + 4 heal steps, got %d", len(steps))
	}
	last := steps[len(steps)-1]
	if last.Desc != "heal" {
		t.Fatalf("schedule ends with %q", last.Desc)
	}
	// Apply the whole schedule in order; afterwards nothing is blocked.
	net := NewChaosNet(9, Faults{})
	for _, s := range steps {
		s.Do(net)
	}
	net.mu.Lock()
	n := len(net.blocked)
	net.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d links still blocked after a full schedule", n)
	}
}

func TestRunScheduleStopCancelsPending(t *testing.T) {
	net := NewChaosNet(1, Faults{})
	fired := make(chan struct{}, 1)
	stop := net.RunSchedule([]NemesisStep{
		{After: time.Hour, Desc: "never", Do: func(*ChaosNet) { fired <- struct{}{} }},
	})
	stop()
	select {
	case <-fired:
		t.Fatalf("cancelled step fired")
	case <-time.After(10 * time.Millisecond):
	}
}
