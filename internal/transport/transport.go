// Package transport provides the real-time datagram carriers for
// timewheel nodes: an in-process memory hub (tests, examples,
// single-binary demos) and a UDP transport (stdlib net) mirroring the
// paper's Unix UDP broadcast socket deployment.
//
// Transports carry opaque encoded frames; the protocol's wire codec
// lives above (package wire).
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"timewheel/internal/model"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Receiver consumes received frames. It is called from the transport's
// receive goroutine; implementations hand off to an engine. The data
// slice is on loan from the transport for the duration of the call:
// implementations must decode or copy before returning and must not
// retain it (the UDP transport recycles receive buffers).
type Receiver func(data []byte)

// Transport is an unreliable datagram carrier with omission/performance
// failure semantics (no delivery, ordering or timeliness guarantees).
// Send calls do not retain data past their return: callers may recycle
// the encode buffer immediately (in-process transports copy per
// scheduled delivery; sockets hand the bytes to the kernel).
type Transport interface {
	// Self returns the local process ID.
	Self() model.ProcessID
	// Broadcast sends data to every other process.
	Broadcast(data []byte) error
	// Unicast sends data to one process.
	Unicast(to model.ProcessID, data []byte) error
	// SetReceiver installs the frame consumer; must be called before
	// any frame arrives (typically immediately after construction).
	SetReceiver(r Receiver)
	// Close releases resources; subsequent sends fail with ErrClosed.
	Close() error
}

// --- In-memory hub -----------------------------------------------------------

// HubOptions shape the memory hub's fault model, at parity with the
// simulator's (internal/netsim): delay, omission, duplication,
// corruption and reordering.
type HubOptions struct {
	// MinDelay/MaxDelay bound the uniform per-frame delivery delay.
	MinDelay, MaxDelay time.Duration
	// DropProb is the per-delivery omission probability.
	DropProb float64
	// DupProb is the probability a frame is delivered twice (UDP
	// duplicates).
	DupProb float64
	// CorruptProb is the probability a delivered frame has one byte
	// flipped (the wire codec rejects it, modelling a failed checksum).
	CorruptProb float64
	// ReorderProb is the probability a frame is held an extra
	// ReorderDelay so later frames overtake it.
	ReorderProb float64
	// ReorderDelay is the extra hold for reordered frames (default
	// 4*MaxDelay, min 1ms).
	ReorderDelay time.Duration
	// Seed makes the fault model reproducible.
	Seed int64
}

func (o HubOptions) faults() Faults {
	return Faults{
		MinDelay: o.MinDelay, MaxDelay: o.MaxDelay,
		Drop: o.DropProb, Duplicate: o.DupProb,
		Corrupt: o.CorruptProb, Reorder: o.ReorderProb,
		ReorderDelay: o.ReorderDelay,
	}
}

// Hub is an in-process datagram switchboard connecting memory
// transports. Safe for concurrent use.
type Hub struct {
	faults Faults

	mu     sync.Mutex
	rng    *rand.Rand
	ports  map[model.ProcessID]*MemTransport
	closed bool
}

// NewHub creates a hub with the given fault model.
func NewHub(opts HubOptions) *Hub {
	if opts.MaxDelay < opts.MinDelay {
		opts.MinDelay, opts.MaxDelay = opts.MaxDelay, opts.MinDelay
	}
	return &Hub{
		faults: opts.faults(),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		ports:  make(map[model.ProcessID]*MemTransport),
	}
}

// Attach creates (or returns) the transport for process id. A closed
// port is replaced with a fresh one, so a restarted process can rejoin
// under its old identity.
func (h *Hub) Attach(id model.ProcessID) *MemTransport {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.ports[id]; ok && !t.closed.Load() {
		return t
	}
	t := &MemTransport{hub: h, self: id}
	h.ports[id] = t
	return t
}

// Close shuts the hub and all attached transports.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
}

func (h *Hub) send(from, to model.ProcessID, data []byte) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	dst, ok := h.ports[to]
	if !ok || dst.closed.Load() {
		h.mu.Unlock()
		return
	}
	plans := h.faults.plan(h.rng)
	h.mu.Unlock()

	schedule(plans, data, func(cp []byte) {
		dst.mu.Lock()
		r := dst.recv
		dst.mu.Unlock()
		if r != nil && !dst.closed.Load() {
			r(cp)
		}
	})
}

func (h *Hub) peers(except model.ProcessID) []model.ProcessID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ProcessID, 0, len(h.ports))
	for id := range h.ports {
		if id != except {
			out = append(out, id)
		}
	}
	return out
}

// MemTransport is one process's port on a Hub.
type MemTransport struct {
	hub  *Hub
	self model.ProcessID

	mu     sync.Mutex
	recv   Receiver
	closed atomic.Bool
}

// Self implements Transport.
func (t *MemTransport) Self() model.ProcessID { return t.self }

// SetReceiver implements Transport.
func (t *MemTransport) SetReceiver(r Receiver) {
	t.mu.Lock()
	t.recv = r
	t.mu.Unlock()
}

// Broadcast implements Transport.
func (t *MemTransport) Broadcast(data []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	for _, to := range t.hub.peers(t.self) {
		t.hub.send(t.self, to, data)
	}
	return nil
}

// Unicast implements Transport.
func (t *MemTransport) Unicast(to model.ProcessID, data []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.hub.send(t.self, to, data)
	return nil
}

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.closed.Store(true)
	return nil
}

var _ Transport = (*MemTransport)(nil)

func (t *MemTransport) String() string {
	return fmt.Sprintf("mem(%v)", t.self)
}
