//go:build linux && (amd64 || arm64)

package transport

// Batched UDP syscalls: sendmmsg/recvmmsg via raw Syscall6 against the
// netpoller-managed descriptor. A flush of K destination datagrams is
// one kernel crossing instead of K, and the receive loop drains up to
// mmsgRecvBatch datagrams per wakeup into pooled buffers (preserving
// the Receiver on-loan contract). Restricted to 64-bit linux because
// struct mmsghdr's layout below hard-codes the 8-byte-aligned msghdr;
// everywhere else udp_mmsg_other.go provides the portable fallback.

import (
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"

	"timewheel/internal/model"
)

// mmsgRecvBatch is how many datagrams one recvmmsg call may drain. The
// buffers are pinned out of recvBufs for the life of the read loop, so
// the batch is kept modest.
const mmsgRecvBatch = 16

// mmsgHdr mirrors linux struct mmsghdr on 64-bit targets: a msghdr
// (56 bytes, 8-aligned) followed by the kernel-written msg_len and
// tail padding to the 64-byte stride sendmmsg expects.
type mmsgHdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// rawSockaddr is a pre-resolved peer address in kernel wire form, built
// once at transport creation so the send path never converts (or
// allocates) per datagram.
type rawSockaddr struct {
	buf  [syscall.SizeofSockaddrInet6]byte
	size uint32
}

type mmsgState struct {
	rc syscall.RawConn
	sa map[model.ProcessID]*rawSockaddr

	mu      sync.Mutex
	hdrs    []mmsgHdr
	iovs    []syscall.Iovec
	bcast   []BatchMsg
	off     int
	cnt     int
	writeFn func(fd uintptr) bool
}

func (u *UDP) initBatch() {
	rc, err := u.conn.SyscallConn()
	if err != nil {
		return // mm.rc stays nil: generic paths take over
	}
	m := &u.mm
	// A wildcard or v6 bind means an AF_INET6 socket: peers must be
	// addressed with v4-mapped v6 sockaddrs or the kernel rejects them.
	v6 := false
	if la, ok := u.conn.LocalAddr().(*net.UDPAddr); ok {
		v6 = la.IP.To4() == nil
	}
	m.sa = make(map[model.ProcessID]*rawSockaddr, len(u.peers))
	for id, a := range u.peers {
		if ra := rawAddrOf(a, v6); ra != nil {
			m.sa[id] = ra
		}
	}
	m.rc = rc
	// The one closure the hot path needs, allocated once. It advances
	// m.off across partial sends; returning false on EAGAIN parks the
	// goroutine on the netpoller until the socket is writable again.
	m.writeFn = func(fd uintptr) bool {
		for m.off < m.cnt {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&m.hdrs[m.off])), uintptr(m.cnt-m.off), 0, 0, 0)
			switch errno {
			case 0:
				m.off += int(r)
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false
			default:
				// Per-datagram failure (e.g. unreachable): omission
				// semantics — count, skip it, keep the rest moving.
				u.sendErrs.Add(1)
				m.off++
			}
		}
		return true
	}
}

func rawAddrOf(a *net.UDPAddr, v6 bool) *rawSockaddr {
	r := &rawSockaddr{}
	if ip4 := a.IP.To4(); ip4 != nil && !v6 {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.buf[0]))
		sa.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip4)
		r.size = syscall.SizeofSockaddrInet4
		return r
	}
	if ip16 := a.IP.To16(); ip16 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.buf[0]))
		sa.Family = syscall.AF_INET6
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(a.Port>>8), byte(a.Port)
		copy(sa.Addr[:], ip16)
		// Zoned (link-local) addresses are not supported on the fast
		// path; those peers fall back to WriteToUDP.
		if a.Zone != "" {
			return nil
		}
		r.size = syscall.SizeofSockaddrInet6
		return r
	}
	return nil
}

func (u *UDP) sendBatchImpl(msgs []BatchMsg) error {
	m := &u.mm
	if m.rc == nil {
		return u.sendBatchGeneric(msgs)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	err := u.sendBatchLocked(msgs)
	runtime.KeepAlive(msgs)
	return err
}

func (u *UDP) sendBatchLocked(msgs []BatchMsg) error {
	m := &u.mm
	if cap(m.hdrs) < len(msgs) {
		m.hdrs = make([]mmsgHdr, len(msgs))
		m.iovs = make([]syscall.Iovec, len(msgs))
	}
	k := 0
	for i := range msgs {
		if len(msgs[i].Data) == 0 {
			continue
		}
		ra := m.sa[msgs[i].To]
		if ra == nil {
			// No pre-resolved kernel sockaddr (unknown peer or zoned
			// address): portable per-datagram path, which also counts
			// the error if it fails.
			u.Unicast(msgs[i].To, msgs[i].Data) //nolint:errcheck
			continue
		}
		iov := &m.iovs[k]
		iov.Base = &msgs[i].Data[0]
		iov.Len = uint64(len(msgs[i].Data))
		h := &m.hdrs[k]
		*h = mmsgHdr{}
		h.hdr.Name = &ra.buf[0]
		h.hdr.Namelen = ra.size
		h.hdr.Iov = iov
		h.hdr.Iovlen = 1
		k++
	}
	if k == 0 {
		return nil
	}
	m.off, m.cnt = 0, k
	if err := m.rc.Write(m.writeFn); err != nil {
		// Whole-call failure (socket closed): everything unsent is lost.
		u.sendErrs.Add(uint64(m.cnt - m.off))
		return err
	}
	return nil
}

func (u *UDP) broadcastImpl(data []byte) {
	m := &u.mm
	if m.rc == nil || len(u.peers) < 2 {
		u.broadcastGeneric(data)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.bcast[:0]
	for id := range u.peers {
		b = append(b, BatchMsg{To: id, Data: data})
	}
	m.bcast = b
	u.sendBatchLocked(b) //nolint:errcheck
	runtime.KeepAlive(data)
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	if u.mm.rc == nil {
		u.readLoopGeneric()
		return
	}
	var (
		bufs  [mmsgRecvBatch]*[]byte
		hdrs  [mmsgRecvBatch]mmsgHdr
		iovs  [mmsgRecvBatch]syscall.Iovec
		names [mmsgRecvBatch]rawSockaddr
	)
	for i := range bufs {
		bufs[i] = recvBufs.Get().(*[]byte)
		iovs[i].Base = &(*bufs[i])[0]
		iovs[i].Len = maxDatagram
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		hdrs[i].hdr.Name = &names[i].buf[0]
		hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	defer func() {
		for i := range bufs {
			recvBufs.Put(bufs[i])
		}
	}()
	got := 0
	readFn := func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), mmsgRecvBatch,
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				got = int(r)
				return true
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false // park on the netpoller until readable
			default:
				got = -1
				return true
			}
		}
	}
	for {
		got = 0
		err := u.mm.rc.Read(readFn)
		if err != nil || got < 0 {
			if u.closed.Load() {
				return
			}
			continue // transient error: UDP is allowed to lose anyway
		}
		u.mu.Lock()
		r := u.recv
		u.mu.Unlock()
		for i := 0; i < got; i++ {
			n := int(hdrs[i].n)
			hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6 // kernel shrank it
			if r != nil && n > 0 {
				// Same on-loan contract as the generic loop: the buffer
				// is only borrowed for the duration of the call.
				r((*bufs[i])[:n])
			}
		}
	}
}
