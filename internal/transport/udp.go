package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"timewheel/internal/model"
)

// maxDatagram bounds received UDP frames. Timewheel control messages are
// small; decisions grow with the unstable-oal window, which truncation
// keeps bounded.
const maxDatagram = 64 * 1024

// BatchMsg is one destination/datagram pair for SendBatch.
type BatchMsg struct {
	To   model.ProcessID
	Data []byte
}

// UDP is a Transport over stdlib UDP sockets, one socket per process,
// mirroring the paper's Unix UDP deployment. "Broadcast" is realised as
// iterated unicast to the configured peer addresses, which behaves
// identically at the protocol level (the paper's Ethernet broadcast is
// an optimisation, not a semantic requirement).
//
// On linux/amd64 and linux/arm64 the send and receive paths use
// sendmmsg/recvmmsg so a flush of K datagrams is one kernel crossing;
// everywhere else the portable one-syscall-per-datagram path is used.
type UDP struct {
	self  model.ProcessID
	conn  *net.UDPConn
	peers map[model.ProcessID]*net.UDPAddr

	mu       sync.Mutex
	recv     Receiver
	closed   atomic.Bool
	wg       sync.WaitGroup
	sendErrs atomic.Uint64
	mm       mmsgState
}

// NewUDP binds the socket for process self at addrs[self] and remembers
// its peers. addrs maps every process ID to a "host:port" address.
func NewUDP(self model.ProcessID, addrs map[model.ProcessID]string) (*UDP, error) {
	selfAddr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for self (%v)", self)
	}
	laddr, err := net.ResolveUDPAddr("udp", selfAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve self: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	u := &UDP{
		self:  self,
		conn:  conn,
		peers: make(map[model.ProcessID]*net.UDPAddr, len(addrs)),
	}
	for id, a := range addrs {
		if id == self {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve %v: %w", id, err)
		}
		u.peers[id] = ua
	}
	u.initBatch() // platform hook: pre-resolves sockaddrs for the mmsg path
	u.wg.Add(1)
	go u.readLoop()
	return u, nil
}

// recvBufs recycles datagram receive buffers across read loops: steady
// state, the hot receive path allocates nothing per frame.
var recvBufs = sync.Pool{
	New: func() any {
		b := make([]byte, maxDatagram)
		return &b
	},
}

// readLoopGeneric is the portable receive path: one ReadFromUDP syscall
// per datagram. The linux readLoop falls back to it when the raw
// descriptor is unavailable.
func (u *UDP) readLoopGeneric() {
	for {
		bp := recvBufs.Get().(*[]byte)
		n, _, err := u.conn.ReadFromUDP(*bp)
		if err != nil {
			recvBufs.Put(bp)
			if u.closed.Load() {
				return
			}
			continue // transient error: UDP is allowed to lose anyway
		}
		u.mu.Lock()
		r := u.recv
		u.mu.Unlock()
		if r != nil {
			// The buffer is on loan for the duration of the call (the
			// Receiver contract); it is released once the receiver has
			// decoded/handed off — no per-frame copy.
			r((*bp)[:n])
		}
		recvBufs.Put(bp)
	}
}

// Self implements Transport.
func (u *UDP) Self() model.ProcessID { return u.self }

// SetReceiver implements Transport.
func (u *UDP) SetReceiver(r Receiver) {
	u.mu.Lock()
	u.recv = r
	u.mu.Unlock()
}

// Broadcast implements Transport. Omission failures are part of the
// model: per-peer send errors are counted in SendErrors, not fatal.
func (u *UDP) Broadcast(data []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	u.broadcastImpl(data)
	return nil
}

func (u *UDP) broadcastGeneric(data []byte) {
	for _, addr := range u.peers {
		if _, err := u.conn.WriteToUDP(data, addr); err != nil {
			u.sendErrs.Add(1)
		}
	}
}

// SendBatch sends each datagram to its destination, batching the whole
// flush into as few syscalls as the platform allows (one sendmmsg on
// linux). Per-destination failures are omissions: counted in
// SendErrors, never fatal. The Data slices are only borrowed for the
// duration of the call.
func (u *UDP) SendBatch(msgs []BatchMsg) error {
	if u.closed.Load() {
		return ErrClosed
	}
	return u.sendBatchImpl(msgs)
}

func (u *UDP) sendBatchGeneric(msgs []BatchMsg) error {
	for i := range msgs {
		if len(msgs[i].Data) == 0 {
			continue
		}
		addr, ok := u.peers[msgs[i].To]
		if !ok {
			u.sendErrs.Add(1)
			continue
		}
		if _, err := u.conn.WriteToUDP(msgs[i].Data, addr); err != nil {
			u.sendErrs.Add(1)
		}
	}
	return nil
}

// SendErrors reports how many datagram sends have failed since the
// transport was created (per-peer write errors and batch-send skips).
func (u *UDP) SendErrors() uint64 { return u.sendErrs.Load() }

// Unicast implements Transport.
func (u *UDP) Unicast(to model.ProcessID, data []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	addr, ok := u.peers[to]
	if !ok {
		u.sendErrs.Add(1)
		return fmt.Errorf("transport: unknown peer %v", to)
	}
	_, err := u.conn.WriteToUDP(data, addr)
	if err != nil {
		u.sendErrs.Add(1)
	}
	return err
}

// Close implements Transport.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

// LocalAddr returns the bound address (useful with ":0" test ports).
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

var _ Transport = (*UDP)(nil)
