package transport

// Demux fans one trunk transport out to many per-group virtual
// transports, the receive half of the multi-group fabric: every
// datagram on the shared socket is routed by the group-id in its v6
// envelope (wire.GroupMagic) to the engine hosting that group. The
// demux peeks only at envelope bytes — frame decoding stays above, in
// each group's own receive path — so the hot path is a magic check, a
// u32 read, one lock-free map lookup and the length-prefix walk:
// allocation-free end to end (CI-gated by BenchmarkFabricDemux).
//
// Untagged traffic (bare frames and legacy 0xC0 envelopes) is the
// implicit group 0, delivered whole to the group-0 port when one is
// registered: a v5 single-group peer keeps talking to a fabric node
// hosting its group at id 0. Datagrams for unregistered groups are
// counted and dropped — never delivered to some other group.

import (
	"sync"
	"sync/atomic"

	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// Demux routes datagrams from one trunk transport to per-group ports.
// Port registration is rare (group placement changes); routing is the
// per-datagram hot path, so the port table is a copy-on-write map
// behind an atomic — the receive goroutine never takes the lock.
type Demux struct {
	trunk Transport

	mu    sync.Mutex   // guards port-table rewrites
	ports atomic.Value // map[uint32]*Port, copy-on-write

	unknownGroup atomic.Uint64
	malformed    atomic.Uint64
}

// DemuxStats is a point-in-time snapshot of the demux drop counters.
type DemuxStats struct {
	// UnknownGroup counts datagrams addressed to a group with no
	// registered port (dropped, never cross-delivered).
	UnknownGroup uint64
	// Malformed counts datagrams with an unparseable group envelope.
	Malformed uint64
}

// NewDemux wraps trunk and installs itself as trunk's receiver. The
// trunk must not have another receiver; all delivery flows through
// per-group ports from here on.
func NewDemux(trunk Transport) *Demux {
	d := &Demux{trunk: trunk}
	d.ports.Store(map[uint32]*Port{})
	trunk.SetReceiver(d.route)
	return d
}

// route is the trunk receiver: envelope peek, table lookup, dispatch.
func (d *Demux) route(data []byte) {
	gid, ok := wire.GroupOf(data)
	if !ok {
		d.malformed.Add(1)
		return
	}
	p := d.ports.Load().(map[uint32]*Port)[gid]
	if p == nil {
		d.unknownGroup.Add(1)
		return
	}
	if wire.IsGrouped(data) {
		if err := wire.SplitGrouped(data, p.deliver); err != nil {
			d.malformed.Add(1)
		}
		return
	}
	// Bare frame or legacy 0xC0 envelope (implicit group 0): delivered
	// whole — the port's receiver understands both shapes already.
	p.deliver(data)
}

// Port returns the virtual transport for group gid, creating it if
// needed. A closed port is replaced by a fresh one, so a group moved
// away and back re-registers under its old id.
func (d *Demux) Port(gid uint32) *Port {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.ports.Load().(map[uint32]*Port)
	if p, ok := old[gid]; ok && !p.closed.Load() {
		return p
	}
	p := &Port{d: d, gid: gid}
	p.deliver = func(frame []byte) {
		if p.closed.Load() {
			return
		}
		if r, ok := p.recv.Load().(Receiver); ok {
			r(frame)
		}
	}
	next := make(map[uint32]*Port, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[gid] = p
	d.ports.Store(next)
	return p
}

// drop removes a closed port from the table (copy-on-write).
func (d *Demux) drop(p *Port) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.ports.Load().(map[uint32]*Port)
	if old[p.gid] != p {
		return // already replaced by a fresh port
	}
	next := make(map[uint32]*Port, len(old))
	for k, v := range old {
		if v != p {
			next[k] = v
		}
	}
	d.ports.Store(next)
}

// Stats snapshots the drop counters.
func (d *Demux) Stats() DemuxStats {
	return DemuxStats{
		UnknownGroup: d.unknownGroup.Load(),
		Malformed:    d.malformed.Load(),
	}
}

// Trunk returns the underlying shared transport.
func (d *Demux) Trunk() Transport { return d.trunk }

// Close closes the trunk transport. Per-group ports become inert.
func (d *Demux) Close() error { return d.trunk.Close() }

// Port is one group's view of the shared trunk: a full Transport whose
// sends go out on the trunk (already group-tagged by the group's
// coalescer) and whose receives are the sub-frames the demux routed
// here. Closing a port only deregisters it — the trunk is shared by
// every other group and stays open.
type Port struct {
	d       *Demux
	gid     uint32
	recv    atomic.Value // Receiver
	deliver Receiver     // stable closure: no per-datagram allocation
	closed  atomic.Bool
}

// Group returns the group-id this port is registered under.
func (p *Port) Group() uint32 { return p.gid }

// Self implements Transport.
func (p *Port) Self() model.ProcessID { return p.d.trunk.Self() }

// Broadcast implements Transport.
func (p *Port) Broadcast(data []byte) error {
	if p.closed.Load() {
		return ErrClosed
	}
	return p.d.trunk.Broadcast(data)
}

// Unicast implements Transport.
func (p *Port) Unicast(to model.ProcessID, data []byte) error {
	if p.closed.Load() {
		return ErrClosed
	}
	return p.d.trunk.Unicast(to, data)
}

// SetReceiver implements Transport.
func (p *Port) SetReceiver(r Receiver) {
	if r == nil {
		return
	}
	p.recv.Store(r)
}

// Close implements Transport: it deregisters the port from the demux
// and drops future deliveries, but leaves the shared trunk open.
func (p *Port) Close() error {
	if p.closed.CompareAndSwap(false, true) {
		p.d.drop(p)
	}
	return nil
}

var _ Transport = (*Port)(nil)
