// Chaos middleware: a deterministic, seed-driven fault injector that
// wraps any Transport (memory hub and UDP alike) and a scripted nemesis
// for partitions and link flapping. The simulator (internal/netsim)
// already torments the protocol under a virtual clock; this file is the
// same adversary for *live* nodes running on real goroutines, real
// timers and real (or in-memory) sockets — the regime the paper's
// timed asynchronous model is actually about.
//
// Per-link faults are applied on the inbound side of each wrapped
// transport: a broadcast is one send call on the sender but N link
// traversals, and per-link asymmetry (A hears B but B does not hear A)
// only exists at the receivers. The sender of an inbound frame is
// recovered by decoding its wire header.
//
// A second, per-sender fault stage (SetSendFaults) runs on the outbound
// side, before a broadcast fans out: it models congestion at the
// sender's own NIC — every receiver misses (or late-receives) the same
// datagram — which composes with the receive stage to make asymmetric
// one-way degradation expressible: degrade A's sends and A's peers stop
// hearing A while A still hears everyone. A token-bucket bandwidth
// shaper (SetRate) sits in front of the sender stage, turning sustained
// overload into steadily growing queueing delay — the slow-but-healthy
// link profile the adaptive failure detector is calibrated against.
package transport

import (
	"math/rand"
	"sync"
	"time"

	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// --- Shared per-frame fault model -------------------------------------------

// Faults is the seed-driven per-frame fault model shared by the memory
// hub and the Chaos wrapper: uniform delay, omission, duplication,
// single-byte corruption, and reordering (an extra hold that lets later
// frames overtake).
type Faults struct {
	// MinDelay/MaxDelay bound the uniform per-frame delivery delay.
	MinDelay, MaxDelay time.Duration
	// Drop, Duplicate, Corrupt, Reorder are independent per-frame
	// probabilities.
	Drop, Duplicate, Corrupt, Reorder float64
	// ReorderDelay is the extra hold for reordered frames (default
	// 4*MaxDelay, min 1ms).
	ReorderDelay time.Duration
}

// delivery is one planned copy of a frame.
type delivery struct {
	delay       time.Duration
	corruptAt   int  // byte index to flip, -1 for none
	corruptMask byte // non-zero xor mask
	reordered   bool
}

// plan rolls the dice for one frame: nil means dropped, otherwise one
// entry per copy to deliver. The caller must hold whatever lock guards
// rng.
func (f Faults) plan(rng *rand.Rand) []delivery {
	if f.Drop > 0 && rng.Float64() < f.Drop {
		return nil
	}
	copies := 1
	if f.Duplicate > 0 && rng.Float64() < f.Duplicate {
		copies = 2
	}
	hold := f.ReorderDelay
	if hold <= 0 {
		hold = 4 * f.MaxDelay
		if hold < time.Millisecond {
			hold = time.Millisecond
		}
	}
	plans := make([]delivery, copies)
	for i := range plans {
		d := delivery{delay: f.MinDelay, corruptAt: -1}
		if span := f.MaxDelay - f.MinDelay; span > 0 {
			d.delay += time.Duration(rng.Int63n(int64(span)))
		}
		if f.Reorder > 0 && rng.Float64() < f.Reorder {
			d.delay += hold
			d.reordered = true
		}
		if f.Corrupt > 0 && rng.Float64() < f.Corrupt {
			d.corruptAt = rng.Intn(1 << 16) // clamped to len(frame) at copy time
			d.corruptMask = byte(1 + rng.Intn(255))
		}
		plans[i] = d
	}
	return plans
}

// schedule delivers each planned copy of data to sink after its delay,
// applying corruption to the copy (never the caller's buffer).
func schedule(plans []delivery, data []byte, sink func([]byte)) {
	for _, p := range plans {
		cp := append([]byte(nil), data...)
		if p.corruptAt >= 0 && len(cp) > 0 {
			cp[p.corruptAt%len(cp)] ^= p.corruptMask
		}
		if p.delay <= 0 {
			go sink(cp)
		} else {
			time.AfterFunc(p.delay, func() { sink(cp) })
		}
	}
}

// --- ChaosNet: the controller -------------------------------------------------

// ChaosStats counts what the middleware did to traffic.
type ChaosStats struct {
	Delivered  uint64 // frames handed to receivers (incl. duplicates)
	Dropped    uint64 // random omissions
	Blocked    uint64 // frames discarded by a partition or blocked link
	Duplicated uint64
	Corrupted  uint64
	Reordered  uint64
	Undecoded  uint64 // inbound frames whose sender could not be decoded

	// Sender-side stage counters (SetSendFaults). A dropped send is one
	// whole datagram — for a broadcast, every receiver misses it.
	SendDropped    uint64
	SendDelivered  uint64 // send calls passed on (incl. duplicates)
	SendDuplicated uint64
	SendCorrupted  uint64
	SendReordered  uint64

	// Bandwidth-shaping stage counters (SetRate).
	Shaped     uint64        // datagrams held back by an empty token bucket
	ShapeDelay time.Duration // cumulative queueing delay the shaper added
}

// ChaosNet is the controller shared by all Chaos wrappers in one
// cluster: one seeded rng, one fault mix, one partition/link-block
// table, one stats block. Wrap each node's transport before handing it
// to the node; drive partitions and flapping via a nemesis schedule.
type ChaosNet struct {
	mu         sync.Mutex
	rng        *rand.Rand
	faults     Faults
	sendFaults map[model.ProcessID]Faults     // per-sender outbound stage
	rates      map[model.ProcessID]*rateLimit // per-sender token buckets
	blocked    map[[2]model.ProcessID]bool    // [from, to]: to must not hear from
	stats      ChaosStats
	stopped    bool
}

// rateLimit is one sender's token bucket. tokens is in bytes and may go
// negative: the deficit is the virtual queue behind the bottleneck, and
// deficit/rate is exactly the queueing delay the next datagram sees —
// sustained overload therefore produces steadily growing delays rather
// than a fixed per-frame hold, which is what a real saturated uplink
// does to a timeliness estimator.
type rateLimit struct {
	bytesPerSec float64
	burst       float64
	tokens      float64
	last        time.Time
}

// NewChaosNet creates a controller with a deterministic seed and an
// initial fault mix (zero Faults means a transparent wrapper until the
// nemesis acts).
func NewChaosNet(seed int64, faults Faults) *ChaosNet {
	return &ChaosNet{
		rng:        rand.New(rand.NewSource(seed)),
		faults:     faults,
		sendFaults: make(map[model.ProcessID]Faults),
		rates:      make(map[model.ProcessID]*rateLimit),
		blocked:    make(map[[2]model.ProcessID]bool),
	}
}

// SetRate installs a token-bucket bandwidth limit on from's outbound
// datagrams: sustained throughput is capped at bytesPerSec with up to
// burst bytes passing unshaped (burst <= 0 defaults to one second's
// worth). The bucket runs before the per-sender fault mix, so the
// shaper's queueing delay composes with SetSendFaults drop/delay/
// reorder and with the receive-side mix. bytesPerSec <= 0 removes the
// limit.
func (c *ChaosNet) SetRate(from model.ProcessID, bytesPerSec, burst int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytesPerSec <= 0 {
		delete(c.rates, from)
		return
	}
	if burst <= 0 {
		burst = bytesPerSec
	}
	c.rates[from] = &rateLimit{
		bytesPerSec: float64(bytesPerSec),
		burst:       float64(burst),
		tokens:      float64(burst),
	}
}

// shapeDelay charges one outbound datagram of n bytes against from's
// token bucket and returns how long the sender's link holds it (0 when
// no limit is installed or the bucket covers it).
func (c *ChaosNet) shapeDelay(from model.ProcessID, n int) time.Duration {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.rates[from]
	if !ok {
		return 0
	}
	if !r.last.IsZero() {
		r.tokens += now.Sub(r.last).Seconds() * r.bytesPerSec
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
	}
	r.last = now
	r.tokens -= float64(n)
	if r.tokens >= 0 {
		return 0
	}
	d := time.Duration(-r.tokens / r.bytesPerSec * float64(time.Second))
	c.stats.Shaped++
	c.stats.ShapeDelay += d
	return d
}

// SetFaults replaces the random per-link fault mix.
func (c *ChaosNet) SetFaults(f Faults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

// SetSendFaults installs (or replaces) a sender-side fault mix for
// frames sent by from. The mix is applied once per send call, before a
// broadcast fans out — a dropped or delayed datagram affects every
// receiver identically, modelling congestion at the sender's NIC
// rather than independent per-link loss. Composing it with the
// receive-side mix gives one-way-degraded links.
func (c *ChaosNet) SetSendFaults(from model.ProcessID, f Faults) {
	c.mu.Lock()
	c.sendFaults[from] = f
	c.mu.Unlock()
}

// ClearSendFaults removes from's sender-side fault mix.
func (c *ChaosNet) ClearSendFaults(from model.ProcessID) {
	c.mu.Lock()
	delete(c.sendFaults, from)
	c.mu.Unlock()
}

// onSend runs the sender-side stage for one outbound datagram. It
// reports whether the stage took responsibility for the send: false
// means no mix is installed and the caller should send directly. emit
// is invoked once per surviving copy, possibly delayed, with a private
// (possibly corrupted) copy of data.
func (c *ChaosNet) onSend(self model.ProcessID, data []byte, emit func([]byte)) bool {
	c.mu.Lock()
	f, ok := c.sendFaults[self]
	if !ok {
		c.mu.Unlock()
		return false
	}
	plans := f.plan(c.rng)
	if plans == nil {
		c.stats.SendDropped++
		c.mu.Unlock()
		return true
	}
	c.stats.SendDelivered += uint64(len(plans))
	if len(plans) > 1 {
		c.stats.SendDuplicated++
	}
	for _, p := range plans {
		if p.corruptAt >= 0 {
			c.stats.SendCorrupted++
		}
		if p.reordered {
			c.stats.SendReordered++
		}
	}
	c.mu.Unlock()
	schedule(plans, data, emit)
	return true
}

// BlockLink makes `to` deaf to `from` (one direction only).
func (c *ChaosNet) BlockLink(from, to model.ProcessID) {
	c.mu.Lock()
	c.blocked[[2]model.ProcessID{from, to}] = true
	c.mu.Unlock()
}

// UnblockLink restores one direction of a link.
func (c *ChaosNet) UnblockLink(from, to model.ProcessID) {
	c.mu.Lock()
	delete(c.blocked, [2]model.ProcessID{from, to})
	c.mu.Unlock()
}

// Partition splits the cluster in two: every cross-side link is blocked
// in both directions.
func (c *ChaosNet) Partition(sideA, sideB []model.ProcessID) {
	c.mu.Lock()
	for _, a := range sideA {
		for _, b := range sideB {
			c.blocked[[2]model.ProcessID{a, b}] = true
			c.blocked[[2]model.ProcessID{b, a}] = true
		}
	}
	c.mu.Unlock()
}

// PartitionOneWay blocks only the sideA->sideB direction — the
// asymmetric failure (paper §2: "p can receive messages from q but not
// vice versa") that heartbeat schemes notoriously mishandle.
func (c *ChaosNet) PartitionOneWay(sideA, sideB []model.ProcessID) {
	c.mu.Lock()
	for _, a := range sideA {
		for _, b := range sideB {
			c.blocked[[2]model.ProcessID{a, b}] = true
		}
	}
	c.mu.Unlock()
}

// Heal unblocks every link.
func (c *ChaosNet) Heal() {
	c.mu.Lock()
	c.blocked = make(map[[2]model.ProcessID]bool)
	c.mu.Unlock()
}

// Stats snapshots the middleware counters.
func (c *ChaosNet) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Wrap interposes the chaos middleware on t. The wrapper is what the
// node must be given; t keeps carrying the (now-tormented) frames.
func (c *ChaosNet) Wrap(t Transport) *Chaos {
	return &Chaos{net: c, inner: t}
}

// --- Chaos: the per-node wrapper ----------------------------------------------

// Chaos is one node's chaos-wrapped transport. Per-link faults hit
// inbound frames, where per-link identity (and thus asymmetry) exists;
// the optional per-sender stage (SetSendFaults) torments outbound
// datagrams before fan-out.
type Chaos struct {
	net   *ChaosNet
	inner Transport
}

// Self implements Transport.
func (t *Chaos) Self() model.ProcessID { return t.inner.Self() }

// SetRate caps this node's sustained outbound throughput at bytesPerSec
// with up to burst bytes of slack — see ChaosNet.SetRate.
func (t *Chaos) SetRate(bytesPerSec, burst int64) {
	t.net.SetRate(t.inner.Self(), bytesPerSec, burst)
}

// sendVia runs the outbound stages in order — token-bucket shaping,
// then the per-sender fault mix — and finally forwards the datagram. A
// shaped or faulted send's error is swallowed: from the protocol's
// viewpoint a lost datagram is an omission failure, which is in-model.
func (t *Chaos) sendVia(data []byte, forward func([]byte) error) error {
	self := t.inner.Self()
	if d := t.net.shapeDelay(self, len(data)); d > 0 {
		cp := append([]byte(nil), data...)
		time.AfterFunc(d, func() {
			if !t.net.onSend(self, cp, func(b []byte) { forward(b) }) { //nolint:errcheck
				forward(cp) //nolint:errcheck
			}
		})
		return nil
	}
	if t.net.onSend(self, data, func(b []byte) { forward(b) }) { //nolint:errcheck
		return nil
	}
	return forward(data)
}

// Broadcast implements Transport. Sender-side stages (bandwidth shaping
// and the fault mix, if installed for this node) apply once,
// pre-fan-out.
func (t *Chaos) Broadcast(data []byte) error {
	return t.sendVia(data, t.inner.Broadcast)
}

// Unicast implements Transport.
func (t *Chaos) Unicast(to model.ProcessID, data []byte) error {
	return t.sendVia(data, func(b []byte) error { return t.inner.Unicast(to, b) })
}

// SetReceiver implements Transport.
func (t *Chaos) SetReceiver(r Receiver) {
	self := t.inner.Self()
	t.inner.SetReceiver(func(data []byte) { t.net.onFrame(self, data, r) })
}

// Close implements Transport.
func (t *Chaos) Close() error { return t.inner.Close() }

var _ Transport = (*Chaos)(nil)

func (c *ChaosNet) onFrame(self model.ProcessID, data []byte, r Receiver) {
	from, ok := frameSender(data)
	if !ok {
		// Can't attribute a sender (e.g. already corrupted upstream):
		// pass it through untormented; the node drops it anyway.
		c.mu.Lock()
		c.stats.Undecoded++
		c.mu.Unlock()
		r(data)
		return
	}

	c.mu.Lock()
	if c.blocked[[2]model.ProcessID{from, self}] {
		c.stats.Blocked++
		c.mu.Unlock()
		return
	}
	plans := c.faults.plan(c.rng)
	if plans == nil {
		c.stats.Dropped++
		c.mu.Unlock()
		return
	}
	c.stats.Delivered += uint64(len(plans))
	if len(plans) > 1 {
		c.stats.Duplicated++
	}
	for _, p := range plans {
		if p.corruptAt >= 0 {
			c.stats.Corrupted++
		}
		if p.reordered {
			c.stats.Reordered++
		}
	}
	c.mu.Unlock()

	schedule(plans, data, r)
}

// frameSender attributes an inbound datagram to its sending process. A
// coalesced datagram (wire.CoalesceMagic) is one network traversal, so
// the per-link fault roll applies to the envelope as a whole; all its
// sub-frames share one sender, recovered from the first.
func frameSender(data []byte) (model.ProcessID, bool) {
	if wire.IsCoalesced(data) {
		var first []byte
		if err := wire.SplitCoalesced(data, func(frame []byte) {
			if first == nil {
				first = frame
			}
		}); err != nil {
			return model.NoProcess, false
		}
		data = first
	}
	msg, err := wire.Decode(data)
	if err != nil {
		return model.NoProcess, false
	}
	return msg.Hdr().From, true
}

// --- Nemesis: scripted link failures -------------------------------------------

// NemesisStep is one act in a chaos schedule, executed After the
// schedule starts.
type NemesisStep struct {
	After time.Duration
	Desc  string
	Do    func(*ChaosNet)
}

// RunSchedule executes the steps against the controller on their own
// timers and returns a stop function (idempotent; pending steps are
// cancelled).
func (c *ChaosNet) RunSchedule(steps []NemesisStep) (stop func()) {
	timers := make([]*time.Timer, 0, len(steps))
	for _, s := range steps {
		s := s
		timers = append(timers, time.AfterFunc(s.After, func() {
			c.mu.Lock()
			dead := c.stopped
			c.mu.Unlock()
			if !dead {
				s.Do(c)
			}
		}))
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.stopped = true
			c.mu.Unlock()
			for _, t := range timers {
				t.Stop()
			}
		})
	}
}

// RandomNemesis builds a deterministic schedule of n partition and
// link-flap events spread over total, against a cluster of ids. Only
// minority partitions are created (the majority side can keep making
// progress, so protocol invariants stay checkable), every fault is
// healed before the next strikes, and the schedule ends fully healed.
func RandomNemesis(seed int64, ids []model.ProcessID, n int, total time.Duration) []NemesisStep {
	rng := rand.New(rand.NewSource(seed))
	if n <= 0 || len(ids) < 2 || total <= 0 {
		return nil
	}
	period := total / time.Duration(n+1)
	steps := make([]NemesisStep, 0, 2*n)
	at := period
	for i := 0; i < n; i++ {
		// A minority side: up to (len-1)/2 members, at least 1.
		maxSide := (len(ids) - 1) / 2
		if maxSide < 1 {
			maxSide = 1
		}
		k := 1 + rng.Intn(maxSide)
		perm := rng.Perm(len(ids))
		side := make([]model.ProcessID, 0, k)
		rest := make([]model.ProcessID, 0, len(ids)-k)
		for j, p := range perm {
			if j < k {
				side = append(side, ids[p])
			} else {
				rest = append(rest, ids[p])
			}
		}
		kind := rng.Intn(3)
		steps = append(steps, NemesisStep{
			After: at,
			Desc:  nemesisDesc(kind),
			Do: func(c *ChaosNet) {
				switch kind {
				case 0:
					c.Partition(side, rest)
				case 1:
					c.PartitionOneWay(side, rest)
				default: // flap: block one direction of one link
					c.BlockLink(rest[0], side[0])
				}
			},
		})
		// Heal midway to the next strike.
		steps = append(steps, NemesisStep{
			After: at + period/2,
			Desc:  "heal",
			Do:    func(c *ChaosNet) { c.Heal() },
		})
		at += period
	}
	return steps
}

func nemesisDesc(kind int) string {
	switch kind {
	case 0:
		return "partition (two-way)"
	case 1:
		return "partition (one-way)"
	default:
		return "link flap"
	}
}
