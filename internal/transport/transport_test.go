package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"timewheel/internal/model"
)

type sink struct {
	mu     sync.Mutex
	frames [][]byte
}

func (s *sink) recv(data []byte) {
	s.mu.Lock()
	s.frames = append(s.frames, data)
	s.mu.Unlock()
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func waitCount(t *testing.T, s *sink, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", s.count(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestHubBroadcastAndUnicast(t *testing.T) {
	h := NewHub(HubOptions{})
	sinks := make([]*sink, 3)
	ports := make([]*MemTransport, 3)
	for i := range ports {
		sinks[i] = &sink{}
		ports[i] = h.Attach(model.ProcessID(i))
		ports[i].SetReceiver(sinks[i].recv)
	}
	if err := ports[0].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sinks[1], 1)
	waitCount(t, sinks[2], 1)
	if sinks[0].count() != 0 {
		t.Fatalf("sender received its own broadcast")
	}
	if err := ports[1].Unicast(2, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, sinks[2], 2)
	if ports[0].Self() != 0 || ports[0].String() == "" {
		t.Fatalf("identity accessors")
	}
}

func TestHubFramesAreCopies(t *testing.T) {
	h := NewHub(HubOptions{})
	s := &sink{}
	a := h.Attach(0)
	b := h.Attach(1)
	b.SetReceiver(s.recv)
	buf := []byte("mutate-me")
	a.Broadcast(buf)
	buf[0] = 'X'
	waitCount(t, s, 1)
	if string(s.frames[0]) != "mutate-me" {
		t.Fatalf("frame shared storage: %q", s.frames[0])
	}
}

func TestHubDelayAndDrop(t *testing.T) {
	h := NewHub(HubOptions{MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, DropProb: 0.5, Seed: 7})
	s := &sink{}
	a := h.Attach(0)
	b := h.Attach(1)
	b.SetReceiver(s.recv)
	const total = 200
	for i := 0; i < total; i++ {
		a.Broadcast([]byte{byte(i)})
	}
	time.Sleep(50 * time.Millisecond)
	got := s.count()
	if got == 0 || got == total {
		t.Fatalf("50%% drop delivered %d/%d", got, total)
	}
}

func TestClosedTransportRejectsSends(t *testing.T) {
	h := NewHub(HubOptions{})
	a := h.Attach(0)
	h.Attach(1)
	a.Close()
	if err := a.Broadcast([]byte("x")); err != ErrClosed {
		t.Fatalf("broadcast after close: %v", err)
	}
	if err := a.Unicast(1, []byte("x")); err != ErrClosed {
		t.Fatalf("unicast after close: %v", err)
	}
}

func TestClosedReceiverGetsNothing(t *testing.T) {
	h := NewHub(HubOptions{})
	s := &sink{}
	a := h.Attach(0)
	b := h.Attach(1)
	b.SetReceiver(s.recv)
	b.Close()
	a.Broadcast([]byte("x"))
	time.Sleep(5 * time.Millisecond)
	if s.count() != 0 {
		t.Fatalf("closed receiver got a frame")
	}
}

func TestHubCloseStopsTraffic(t *testing.T) {
	h := NewHub(HubOptions{})
	s := &sink{}
	a := h.Attach(0)
	b := h.Attach(1)
	b.SetReceiver(s.recv)
	h.Close()
	a.Broadcast([]byte("x"))
	time.Sleep(5 * time.Millisecond)
	if s.count() != 0 {
		t.Fatalf("hub delivered after close")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	// Bind two sockets on loopback with kernel-assigned ports.
	bootstrapAddrs := map[model.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	u0, err := NewUDP(0, bootstrapAddrs)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer u0.Close()
	u1b, err := NewUDP(1, bootstrapAddrs)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	// Rebuild with the real addresses so the peers can reach each other.
	addr0, addr1 := u0.LocalAddr(), u1b.LocalAddr()
	u0.Close()
	u1b.Close()
	addrs := map[model.ProcessID]string{0: addr0, 1: addr1}
	u0, err = NewUDP(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer u0.Close()
	u1, err := NewUDP(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer u1.Close()

	s0, s1 := &sink{}, &sink{}
	u0.SetReceiver(s0.recv)
	u1.SetReceiver(s1.recv)

	if err := u0.Broadcast([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s1, 1)
	if string(s1.frames[0]) != "ping" {
		t.Fatalf("frame: %q", s1.frames[0])
	}
	if err := u1.Unicast(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s0, 1)
	if err := u1.Unicast(9, []byte("x")); err == nil {
		t.Fatalf("unicast to unknown peer succeeded")
	}
	if u0.Self() != 0 {
		t.Fatalf("self: %v", u0.Self())
	}
}

func TestUDPCloseIdempotentAndRejects(t *testing.T) {
	u, err := NewUDP(0, map[model.ProcessID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := u.Broadcast([]byte("x")); err != ErrClosed {
		t.Fatalf("broadcast after close: %v", err)
	}
}

func TestUDPBadConfig(t *testing.T) {
	if _, err := NewUDP(0, map[model.ProcessID]string{1: "127.0.0.1:0"}); err == nil {
		t.Fatalf("missing self address accepted")
	}
	if _, err := NewUDP(0, map[model.ProcessID]string{0: "not-an-address"}); err == nil {
		t.Fatalf("bad self address accepted")
	}
	if _, err := NewUDP(0, map[model.ProcessID]string{0: "127.0.0.1:0", 1: "bad::::addr"}); err == nil {
		t.Fatalf("bad peer address accepted")
	}
}

func TestManyConcurrentSenders(t *testing.T) {
	h := NewHub(HubOptions{})
	const n = 8
	sinks := make([]*sink, n)
	ports := make([]*MemTransport, n)
	for i := range ports {
		sinks[i] = &sink{}
		ports[i] = h.Attach(model.ProcessID(i))
		ports[i].SetReceiver(sinks[i].recv)
	}
	var wg sync.WaitGroup
	const per = 100
	for i := range ports {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				ports[i].Broadcast([]byte(fmt.Sprintf("%d-%d", i, k)))
			}
		}()
	}
	wg.Wait()
	for i := range sinks {
		waitCount(t, sinks[i], per*(n-1))
	}
}
