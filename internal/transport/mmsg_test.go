package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"timewheel/internal/model"
)

// collectingReceiver copies delivered frames (the on-loan contract says
// we must not retain the buffer).
type collectingReceiver struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collectingReceiver) deliver(b []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), b...))
	c.mu.Unlock()
}

func (c *collectingReceiver) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func udpPair(t *testing.T) (*UDP, *UDP, *collectingReceiver) {
	t.Helper()
	a, err := NewUDP(0, map[model.ProcessID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(1, map[model.ProcessID]string{
		1: "127.0.0.1:0",
		0: a.LocalAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	sink := &collectingReceiver{}
	a.SetReceiver(sink.deliver)
	return a, b, sink
}

func waitFrames(t *testing.T, sink *collectingReceiver, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d frames before timeout", sink.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// SendBatch must deliver every datagram intact — on linux via one
// sendmmsg, elsewhere via the portable loop; the test is identical.
func TestSendBatchDelivers(t *testing.T) {
	_, b, sink := udpPair(t)

	const k = 12
	msgs := make([]BatchMsg, k)
	for i := range msgs {
		msgs[i] = BatchMsg{To: 0, Data: []byte(fmt.Sprintf("frame-%02d-padding-to-make-it-nontrivial", i))}
	}
	if err := b.SendBatch(msgs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	waitFrames(t, sink, k)
	sink.mu.Lock()
	defer sink.mu.Unlock()
	seen := map[string]bool{}
	for _, f := range sink.frames {
		seen[string(f)] = true
	}
	for i := range msgs {
		if !seen[string(msgs[i].Data)] {
			t.Fatalf("frame %d not delivered intact", i)
		}
	}
	if got := b.SendErrors(); got != 0 {
		t.Fatalf("SendErrors = %d after clean batch", got)
	}
}

func TestSendBatchCountsUnknownPeer(t *testing.T) {
	_, b, sink := udpPair(t)

	msgs := []BatchMsg{
		{To: 0, Data: []byte("good")},
		{To: 42, Data: []byte("no such peer")},
	}
	if err := b.SendBatch(msgs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	waitFrames(t, sink, 1)
	if got := b.SendErrors(); got != 1 {
		t.Fatalf("SendErrors = %d, want 1 (unknown peer)", got)
	}
}

func TestBroadcastDeliversAndCountsNothing(t *testing.T) {
	_, b, sink := udpPair(t)

	for i := 0; i < 5; i++ {
		if err := b.Broadcast([]byte("bcast")); err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
	}
	waitFrames(t, sink, 5)
	if got := b.SendErrors(); got != 0 {
		t.Fatalf("SendErrors = %d after clean broadcasts", got)
	}
}
