package transport

import (
	"testing"

	"timewheel/internal/model"
	"timewheel/internal/wire"
)

// stubTrunk is a loopback Transport: Inject feeds the installed
// receiver directly, sends are recorded.
type stubTrunk struct {
	self model.ProcessID
	recv Receiver
	sent int
}

func (s *stubTrunk) Self() model.ProcessID { return s.self }
func (s *stubTrunk) Broadcast(data []byte) error {
	s.sent++
	return nil
}
func (s *stubTrunk) Unicast(to model.ProcessID, data []byte) error {
	s.sent++
	return nil
}
func (s *stubTrunk) SetReceiver(r Receiver) { s.recv = r }
func (s *stubTrunk) Close() error           { return nil }

func groupedDatagram(t testing.TB, gid uint32, n int) []byte {
	t.Helper()
	var c wire.Coalescer
	c.SetGroup(gid)
	for i := 0; i < n; i++ {
		if !c.TryAppend(&wire.Nack{Header: wire.Header{From: model.ProcessID(i), SendTS: model.Time(i)}}) {
			t.Fatal("TryAppend refused")
		}
	}
	return append([]byte(nil), c.Datagram()...)
}

func TestDemuxRoutesByGroup(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	got := map[uint32]int{}
	for _, gid := range []uint32{3, 7} {
		gid := gid
		d.Port(gid).SetReceiver(func(frame []byte) {
			if _, err := wire.Decode(frame); err != nil {
				t.Errorf("group %d received undecodable frame: %v", gid, err)
			}
			got[gid]++
		})
	}
	trunk.recv(groupedDatagram(t, 3, 2))
	trunk.recv(groupedDatagram(t, 7, 3))
	trunk.recv(groupedDatagram(t, 3, 1))
	if got[3] != 3 || got[7] != 3 {
		t.Fatalf("delivery counts = %v, want 3 to each group", got)
	}
	if st := d.Stats(); st.UnknownGroup != 0 || st.Malformed != 0 {
		t.Fatalf("unexpected drops: %+v", st)
	}
}

func TestDemuxUnknownGroupDroppedNotCrossDelivered(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	delivered := 0
	d.Port(3).SetReceiver(func([]byte) { delivered++ })
	trunk.recv(groupedDatagram(t, 99, 2))
	if delivered != 0 {
		t.Fatal("unknown-group datagram cross-delivered")
	}
	if st := d.Stats(); st.UnknownGroup != 1 {
		t.Fatalf("UnknownGroup = %d, want 1", st.UnknownGroup)
	}
}

func TestDemuxMalformedCounted(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	d.Port(3).SetReceiver(func([]byte) { t.Fatal("malformed datagram delivered") })
	trunk.recv([]byte{wire.GroupMagic, 3, 0}) // truncated header
	trunk.recv([]byte{wire.GroupMagic, 3, 0, 0, 0, 2, 1}) // bad sub-frame walk
	if st := d.Stats(); st.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2", st.Malformed)
	}
}

func TestDemuxLegacyTrafficIsGroupZero(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	got := 0
	d.Port(0).SetReceiver(func(data []byte) { got++ })
	bare := wire.Encode(&wire.Nack{Header: wire.Header{From: 1, SendTS: 2}})
	trunk.recv(bare)
	var c wire.Coalescer
	c.TryAppend(&wire.Nack{Header: wire.Header{From: 1, SendTS: 2}})
	c.TryAppend(&wire.Nack{Header: wire.Header{From: 3, SendTS: 4}})
	trunk.recv(c.Datagram())
	// Legacy datagrams arrive whole (the engine splits 0xC0 itself).
	if got != 2 {
		t.Fatalf("group-0 deliveries = %d, want 2", got)
	}
}

func TestPortCloseDeregistersOnly(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	p := d.Port(3)
	delivered := 0
	p.SetReceiver(func([]byte) { delivered++ })
	trunk.recv(groupedDatagram(t, 3, 1))
	if delivered != 1 {
		t.Fatal("pre-close delivery missing")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Broadcast(nil); err != ErrClosed {
		t.Fatalf("Broadcast on closed port: %v, want ErrClosed", err)
	}
	trunk.recv(groupedDatagram(t, 3, 1))
	if delivered != 1 {
		t.Fatal("closed port still receiving")
	}
	if st := d.Stats(); st.UnknownGroup != 1 {
		t.Fatalf("UnknownGroup = %d, want 1", st.UnknownGroup)
	}
	// Re-registration under the old id gets a fresh, working port.
	p2 := d.Port(3)
	if p2 == p {
		t.Fatal("Port returned the closed port")
	}
	p2.SetReceiver(func([]byte) { delivered++ })
	trunk.recv(groupedDatagram(t, 3, 1))
	if delivered != 2 {
		t.Fatal("re-registered port not receiving")
	}
}

func TestPortSendsShareTrunk(t *testing.T) {
	trunk := &stubTrunk{self: 4}
	d := NewDemux(trunk)
	p := d.Port(9)
	if p.Self() != 4 {
		t.Fatalf("Self = %v, want trunk self 4", p.Self())
	}
	if err := p.Broadcast([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Unicast(2, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if trunk.sent != 2 {
		t.Fatalf("trunk sends = %d, want 2", trunk.sent)
	}
}

// TestDemuxRouteZeroAlloc pins the routing hot path: steady-state
// demultiplexing of grouped datagrams must not allocate.
func TestDemuxRouteZeroAlloc(t *testing.T) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	sink := 0
	d.Port(3).SetReceiver(func(frame []byte) { sink += len(frame) })
	data := groupedDatagram(t, 3, 4)
	unknown := groupedDatagram(t, 99, 1)
	allocs := testing.AllocsPerRun(200, func() {
		trunk.recv(data)
		trunk.recv(unknown)
	})
	if allocs != 0 {
		t.Fatalf("demux route allocates %.1f/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("receiver never ran")
	}
}

// BenchmarkFabricDemux measures the fabric receive hot path: a grouped
// datagram of 4 frames routed through the demux to its port receiver.
// Wired into `twbench -json` (cmd/twbench) with a 0-alloc CI gate.
func BenchmarkFabricDemux(b *testing.B) {
	trunk := &stubTrunk{self: 1}
	d := NewDemux(trunk)
	sink := 0
	d.Port(3).SetReceiver(func(frame []byte) { sink += len(frame) })
	data := groupedDatagram(b, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trunk.recv(data)
	}
	_ = sink
	_ = d
}
