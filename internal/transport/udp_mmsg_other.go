//go:build !linux || !(amd64 || arm64)

package transport

// Portable fallback for platforms without the sendmmsg/recvmmsg fast
// path: one syscall per datagram, identical semantics.

type mmsgState struct{}

func (u *UDP) initBatch() {}

func (u *UDP) sendBatchImpl(msgs []BatchMsg) error { return u.sendBatchGeneric(msgs) }

func (u *UDP) broadcastImpl(data []byte) { u.broadcastGeneric(data) }

func (u *UDP) readLoop() {
	defer u.wg.Done()
	u.readLoopGeneric()
}
