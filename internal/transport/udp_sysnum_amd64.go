//go:build linux

package transport

// sendmmsg arrived after the stdlib syscall number table froze, so the
// number is spelled out per arch (x86_64 table).
const sysSENDMMSG = 307
