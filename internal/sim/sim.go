// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol tests and experiments run on this kernel: virtual time
// advances only when the event queue is drained up to the next scheduled
// instant, so a run is a pure function of its seed and scripted faults.
// Ties are broken by insertion order, making runs bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"timewheel/internal/model"
)

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduled functions run on the caller's goroutine
// inside Run.
type Sim struct {
	now    model.Time
	queue  eventHeap
	nextID uint64
	rng    *rand.Rand

	// Stats.
	executed uint64
}

// New creates a simulator whose virtual clock starts at 0 and whose
// random stream is seeded deterministically.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() model.Time { return s.now }

// Rand returns the simulator's deterministic random stream.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events run so far.
func (s *Sim) Executed() uint64 { return s.executed }

// Pending returns the number of events still queued.
func (s *Sim) Pending() int { return s.queue.Len() }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired
// or been stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// At returns the virtual time at which the timer fires.
func (t *Timer) At() model.Time {
	if t == nil || t.ev == nil {
		return model.Infinity
	}
	return t.ev.at
}

// Schedule queues fn to run at virtual time at. Scheduling in the past
// (before Now) panics: it indicates a protocol bug, not a recoverable
// condition.
func (s *Sim) Schedule(at model.Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After queues fn to run d after Now.
func (s *Sim) After(d model.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), fn)
}

// Step runs the earliest pending event, advancing virtual time to it. It
// reports whether an event was run.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in order until virtual time would exceed until, or
// the queue empties. Events scheduled exactly at until are executed. On
// return the clock reads until (if the horizon was reached) or the time of
// the last event.
func (s *Sim) Run(until model.Time) {
	for {
		ev := s.peek()
		if ev == nil {
			break
		}
		if ev.at > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunFor advances the simulation by d.
func (s *Sim) RunFor(d model.Duration) { s.Run(s.now.Add(d)) }

// RunUntilIdle executes events until none remain. It panics after limit
// events as a runaway guard; pass 0 for the default of 10 million.
func (s *Sim) RunUntilIdle(limit uint64) {
	if limit == 0 {
		limit = 10_000_000
	}
	for n := uint64(0); s.Step(); n++ {
		if n >= limit {
			panic("sim: RunUntilIdle exceeded event limit")
		}
	}
}

func (s *Sim) peek() *event {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&s.queue)
	}
	return nil
}

type event struct {
	at        model.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
