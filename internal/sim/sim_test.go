package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timewheel/internal/model"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.RunUntilIdle(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("now %v, want 30", s.Now())
	}
	if s.Executed() != 3 {
		t.Fatalf("executed %d", s.Executed())
	}
}

func TestTiesBreakByInsertionOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.RunUntilIdle(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order: %v", got)
		}
	}
}

func TestSchedulingFromHandlers(t *testing.T) {
	s := New(1)
	var got []model.Time
	s.Schedule(10, func() {
		got = append(got, s.Now())
		s.After(5, func() { got = append(got, s.Now()) })
		s.Schedule(12, func() { got = append(got, s.Now()) })
	})
	s.RunUntilIdle(0)
	if len(got) != 3 || got[0] != 10 || got[1] != 12 || got[2] != 15 {
		t.Fatalf("times: %v", got)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(10, func() { ran++ })
	s.Schedule(20, func() { ran++ })
	s.Schedule(21, func() { ran++ })
	s.Run(20)
	if ran != 2 {
		t.Fatalf("ran %d, want 2 (event at horizon included)", ran)
	}
	if s.Now() != 20 {
		t.Fatalf("now %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
	s.RunFor(1)
	if ran != 3 || s.Now() != 21 {
		t.Fatalf("after RunFor: ran=%d now=%v", ran, s.Now())
	}
}

func TestRunAdvancesClockOnEmptyQueue(t *testing.T) {
	s := New(1)
	s.Run(100)
	if s.Now() != 100 {
		t.Fatalf("now %v, want 100", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.Schedule(10, func() { ran = true })
	if tm.At() != 10 {
		t.Fatalf("At: %v", tm.At())
	}
	if !tm.Stop() {
		t.Fatalf("Stop reported already-stopped")
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
	s.RunUntilIdle(0)
	if ran {
		t.Fatalf("cancelled event ran")
	}
	// Stopping after firing reports false.
	tm2 := s.Schedule(s.Now().Add(1), func() {})
	s.RunUntilIdle(0)
	if tm2.Stop() {
		t.Fatalf("Stop after fire should report false")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Fatalf("nil timer Stop should report false")
	}
	if nilTimer.At() != model.Infinity {
		t.Fatalf("nil timer At should be Infinity")
	}
}

func TestCancelledEventsSkippedByPeek(t *testing.T) {
	s := New(1)
	t1 := s.Schedule(10, func() {})
	s.Schedule(20, func() {})
	t1.Stop()
	s.Run(15)
	// The cancelled head should have been discarded without running and
	// without blocking the horizon scan.
	if s.Now() != 15 {
		t.Fatalf("now %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(10, func() {})
	s.RunUntilIdle(0)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic scheduling in the past")
		}
	}()
	s.Schedule(5, func() {})
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New(1)
	s.Schedule(10, func() {})
	s.RunUntilIdle(0)
	fired := false
	s.After(-5, func() { fired = true })
	s.RunUntilIdle(0)
	if !fired || s.Now() != 10 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntilIdleLimit(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected runaway panic")
		}
	}()
	s.RunUntilIdle(100)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if s.Now() < 100 {
				s.After(model.Duration(1+s.Rand().Int63n(10)), tick)
			}
		}
		s.After(0, tick)
		s.RunUntilIdle(0)
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical traces")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(seed int64, rawDelays []uint16) bool {
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		var fired []model.Time
		for _, d := range rawDelays {
			at := model.Time(rng.Int63n(1000))
			_ = d
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		s.RunUntilIdle(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(rawDelays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
