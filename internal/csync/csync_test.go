package csync

import (
	"testing"

	"timewheel/internal/clock"
	"timewheel/internal/model"
	"timewheel/internal/sim"
)

// cluster wires N sync services over the simulation kernel with a simple
// broadcast medium: each beacon reaches every live peer after a uniform
// delay in [minD, maxD], unless the destination is isolated.
type cluster struct {
	s        *sim.Sim
	params   model.Params
	svcs     []*Service
	crashed  []bool
	isolated []bool
	minD     model.Duration
	maxD     model.Duration
}

func newCluster(n int, seed int64) *cluster {
	params := model.DefaultParams(n)
	s := sim.New(seed)
	c := &cluster{
		s:        s,
		params:   params,
		svcs:     make([]*Service, n),
		crashed:  make([]bool, n),
		isolated: make([]bool, n),
		minD:     params.Delta / 10,
		maxD:     params.Delta / 2,
	}
	for i := 0; i < n; i++ {
		hw := clock.NewRandomHardware(s.Rand(), 50*model.Millisecond, params.RhoPPM)
		c.svcs[i] = New(model.ProcessID(i), params, DefaultConfig(params), clock.NewAdjusted(hw))
	}
	for i := 0; i < n; i++ {
		i := i
		var tick func()
		tick = func() {
			if !c.crashed[i] {
				b := c.svcs[i].Tick(s.Now())
				c.broadcast(i, b)
			}
			s.After(c.svcs[i].cfg.Interval, tick)
		}
		// Stagger initial ticks to avoid artificial lockstep.
		s.Schedule(model.Time(int64(i)*1000), tick)
	}
	return c
}

func (c *cluster) broadcast(from int, b Beacon) {
	if c.isolated[from] {
		return
	}
	for j := range c.svcs {
		if j == from || c.crashed[j] || c.isolated[j] {
			continue
		}
		j := j
		d := c.minD + model.Duration(c.s.Rand().Int63n(int64(c.maxD-c.minD)+1))
		c.s.After(d, func() {
			if !c.crashed[j] && !c.isolated[j] {
				c.svcs[j].OnBeacon(c.s.Now(), b)
			}
		})
	}
}

// maxDeviation returns the worst pairwise deviation among synchronized
// processes at the current instant.
func (c *cluster) maxDeviation() model.Duration {
	var readings []model.Time
	for i, svc := range c.svcs {
		if !c.crashed[i] && svc.Synced() {
			readings = append(readings, svc.Now(c.s.Now()))
		}
	}
	var worst model.Duration
	for i := range readings {
		for j := i + 1; j < len(readings); j++ {
			d := readings[i].Sub(readings[j])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func (c *cluster) warmup() {
	c.s.RunFor(model.Duration(10) * c.svcs[0].cfg.Interval)
}

func TestAllProcessesSynchronize(t *testing.T) {
	c := newCluster(5, 42)
	c.warmup()
	for i, svc := range c.svcs {
		if !svc.Synced() {
			t.Errorf("p%d not synchronized after warmup", i)
		}
	}
}

func TestDeviationBounded(t *testing.T) {
	c := newCluster(5, 43)
	c.warmup()
	// Beacons travel in [delta/10, delta/2] while the correction assumes
	// delta/2, so per-sample error is bounded by ~delta/2; drift between
	// beacons adds a hair. The synchronized deviation must stay within
	// delta (our epsilon-scale bound for these delays).
	bound := c.params.Delta
	for k := 0; k < 50; k++ {
		c.s.RunFor(c.svcs[0].cfg.Interval)
		if dev := c.maxDeviation(); dev > bound {
			t.Fatalf("deviation %v exceeds bound %v at %v", dev, bound, c.s.Now())
		}
	}
}

func TestFollowersTrackMasterNotViceVersa(t *testing.T) {
	c := newCluster(3, 44)
	c.warmup()
	// p0 is the lowest ID and hence master everywhere.
	for i, svc := range c.svcs {
		if got := svc.Master(c.s.Now()); got != 0 {
			t.Errorf("p%d master = %v, want p0", i, got)
		}
	}
	// Master never adopts samples; followers do.
	_, _, adopted0 := c.svcs[0].Stats()
	if adopted0 != 0 {
		t.Errorf("master adopted %d samples", adopted0)
	}
	_, _, adopted1 := c.svcs[1].Stats()
	if adopted1 == 0 {
		t.Errorf("follower adopted no samples")
	}
}

func TestMasterFailover(t *testing.T) {
	c := newCluster(5, 45)
	c.warmup()
	c.crashed[0] = true
	// After the timeout, p1 becomes everyone's master and the rest stay
	// synchronized.
	c.s.RunFor(2 * c.svcs[0].cfg.Timeout)
	for i := 1; i < 5; i++ {
		if got := c.svcs[i].Master(c.s.Now()); got != 1 {
			t.Errorf("p%d master = %v, want p1", i, got)
		}
		if !c.svcs[i].Synced() {
			t.Errorf("p%d lost sync after master failover", i)
		}
	}
}

func TestMinorityPartitionDesyncs(t *testing.T) {
	c := newCluster(5, 46)
	c.warmup()
	// Isolate p3 and p4: a two-process side of a five-process team has
	// no majority, so fail-awareness must mark both unsynchronized.
	c.isolated[3] = true
	c.isolated[4] = true
	c.s.RunFor(3 * c.svcs[0].cfg.Timeout)
	for _, i := range []int{3, 4} {
		if c.svcs[i].Synced() {
			t.Errorf("isolated p%d still claims synchronization", i)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if !c.svcs[i].Synced() {
			t.Errorf("majority member p%d lost sync", i)
		}
	}
	// Healing re-synchronizes the minority.
	c.isolated[3] = false
	c.isolated[4] = false
	c.s.RunFor(3 * c.svcs[0].cfg.Timeout)
	for _, i := range []int{3, 4} {
		if !c.svcs[i].Synced() {
			t.Errorf("p%d did not resynchronize after heal", i)
		}
	}
	re3, de3, _ := c.svcs[3].Stats()
	if re3 < 2 || de3 < 1 {
		t.Errorf("p3 resync/desync counters: %d/%d", re3, de3)
	}
}

func TestFollowerAloneIsNotSynced(t *testing.T) {
	params := model.DefaultParams(3)
	svc := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	b := svc.Tick(0)
	if b.Synced || svc.Synced() {
		t.Fatalf("lone process claims sync")
	}
	if b.From != 1 {
		t.Fatalf("beacon from %v", b.From)
	}
}

func TestFreshMajorityWithoutMasterSampleIsNotSynced(t *testing.T) {
	// p1 hears p0 (master) and p2, but p0's beacons are never marked
	// synced, so p1 must not claim synchronization: it has no base.
	params := model.DefaultParams(3)
	svc := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	svc.OnBeacon(10, Beacon{From: 0, Reading: 10, Synced: false})
	svc.OnBeacon(10, Beacon{From: 2, Reading: 10, Synced: true})
	if svc.Tick(20).Synced {
		t.Fatalf("follower synced without any adopted master sample")
	}
	// Now a synced master beacon arrives: adopt and claim sync.
	svc.OnBeacon(30, Beacon{From: 0, Reading: 123456, Synced: true})
	if !svc.Tick(40).Synced {
		t.Fatalf("follower not synced after master sample")
	}
}

func TestLowestIDIsMasterEvenIfSelf(t *testing.T) {
	params := model.DefaultParams(3)
	svc := New(0, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	svc.OnBeacon(0, Beacon{From: 1, Reading: 0, Synced: true})
	svc.OnBeacon(0, Beacon{From: 2, Reading: 0, Synced: true})
	if got := svc.Master(0); got != 0 {
		t.Fatalf("master %v, want self", got)
	}
	if !svc.Tick(1).Synced {
		t.Fatalf("master with fresh majority not synced")
	}
	// Master ignores higher-ID beacons for correction.
	if svc.Clock().Correction != 0 {
		t.Fatalf("master adopted a correction: %v", svc.Clock().Correction)
	}
}

func TestOwnBeaconIgnored(t *testing.T) {
	params := model.DefaultParams(3)
	svc := New(1, params, DefaultConfig(params), clock.NewAdjusted(&clock.Hardware{}))
	svc.OnBeacon(5, Beacon{From: 1, Reading: 99999, Synced: true})
	if len(svc.lastHeard) != 0 {
		t.Fatalf("own beacon recorded")
	}
}

func TestForget(t *testing.T) {
	c := newCluster(3, 47)
	c.warmup()
	svc := c.svcs[2]
	if !svc.Synced() {
		t.Fatalf("not synced before Forget")
	}
	svc.Forget()
	if svc.Synced() {
		t.Fatalf("synced right after Forget")
	}
	if svc.freshCount(c.s.Now()) != 1 {
		t.Fatalf("freshness survived Forget")
	}
	// Recovery: after more beacons it resynchronizes.
	c.s.RunFor(3 * svc.cfg.Timeout)
	if !svc.Synced() {
		t.Fatalf("did not resync after Forget")
	}
}

func TestDefaultConfig(t *testing.T) {
	p := model.DefaultParams(5)
	cfg := DefaultConfig(p)
	if cfg.Interval <= 0 || cfg.Timeout <= cfg.Interval || cfg.MinFresh != 3 {
		t.Fatalf("bad default config: %+v", cfg)
	}
	// Degenerate D still yields a positive interval.
	p.D = 1
	cfg = DefaultConfig(p)
	if cfg.Interval <= 0 {
		t.Fatalf("degenerate interval: %v", cfg.Interval)
	}
	// New with a zero config falls back to defaults.
	svc := New(0, p, Config{}, clock.NewAdjusted(&clock.Hardware{}))
	if svc.cfg.Interval <= 0 {
		t.Fatalf("zero config not defaulted")
	}
	if svc.String() == "" {
		t.Fatalf("String empty")
	}
}
