package csync

import (
	"timewheel/internal/model"
)

// The round-trip mode implements the core mechanism of fail-aware clock
// synchronization [Fetzer & Cristian 1996]: a follower measures the
// master's clock through a probe/echo round trip, and the half-round-trip
// bounds the reading's error — so every adopted correction has a *known*
// error bound, and readings whose bound exceeds the target precision are
// rejected rather than trusted (fail-awareness at the reading level).
//
// Compared with the beacon mode (one-way, midpoint assumption), the
// round-trip mode costs one extra message per sample but turns the error
// from an assumption into a measurement.

// SetRoundTripOnly makes beacons serve election and freshness only:
// clock corrections then come exclusively from probe/echo rounds with
// measured error bounds.
func (s *Service) SetRoundTripOnly(v bool) { s.roundTripOnly = v }

// Probe is a follower's time request.
type Probe struct {
	From model.ProcessID
	// Nonce correlates the echo with the probe (the follower's local
	// hardware reading at send also serves as the RTT base).
	Nonce uint64
	// SentAtLocal is the follower's local clock at probe send, echoed
	// back verbatim so the follower needs no outstanding-probe table.
	SentAtLocal model.Time
}

// Echo is the master's reply to a probe.
type Echo struct {
	From model.ProcessID // the responding master
	To   model.ProcessID
	// Nonce and SentAtLocal are copied from the probe.
	Nonce       uint64
	SentAtLocal model.Time
	// Reading is the master's synchronized-clock value when it processed
	// the probe.
	Reading model.Time
	// Synced reports whether the master considered itself synchronized.
	Synced bool
}

// MakeProbe builds a probe addressed at the current master, or ok=false
// when this process IS the master (nothing to measure). now is real
// time; the RTT base is the local synchronized reading at send.
func (s *Service) MakeProbe(now model.Time) (Probe, model.ProcessID, bool) {
	master := s.Master(now)
	if master == s.id {
		return Probe{}, model.NoProcess, false
	}
	s.probeNonce++
	return Probe{From: s.id, Nonce: s.probeNonce, SentAtLocal: s.adj.Read(now)}, master, true
}

// OnProbe answers a probe at real time now; every process answers (the
// prober decides whom to trust).
func (s *Service) OnProbe(now model.Time, p Probe) Echo {
	return Echo{
		From:        s.id,
		To:          p.From,
		Nonce:       p.Nonce,
		SentAtLocal: p.SentAtLocal,
		Reading:     s.adj.Read(now),
		Synced:      s.adj.Synced,
	}
}

// OnEcho processes a master's echo received at real time now. The
// reading is adopted only if it came from the current master, the master
// was synchronized, and the measured error bound (half the round trip,
// plus the configured precision slack) is within epsilon — otherwise the
// round is rejected, which is the fail-aware discipline: never adopt a
// reading whose error you cannot bound.
//
// It returns the measured error bound and whether the reading was
// adopted.
func (s *Service) OnEcho(now model.Time, e Echo) (bound model.Duration, adopted bool) {
	local := s.adj.Read(now)
	rtt := local.Sub(e.SentAtLocal)
	if rtt < 0 {
		return 0, false // clock stepped mid-round: reject
	}
	bound = rtt / 2
	s.lastHeard[e.From] = now
	if !e.Synced || e.From != s.Master(now) || e.From >= s.id {
		return bound, false
	}
	if bound > s.params.Epsilon {
		s.rejectedRounds++
		return bound, false
	}
	// The master's clock read e.Reading roughly rtt/2 before our `local`
	// reading; slew our correction by the measured offset.
	sample := e.Reading.Add(bound).Sub(local)
	s.adj.Correction += sample
	s.lastAdopt = now
	s.adopted++
	return bound, true
}

// RejectedRounds returns how many round-trip readings were rejected for
// exceeding the epsilon error bound.
func (s *Service) RejectedRounds() uint64 { return s.rejectedRounds }
